// Learning Ethernet switch with static multicast groups.
//
// Reproduces the paper's Figure-2 fabric: client, primary, backup and
// gateway all hang off one switch; a static multicast group (multiEA) fans
// client→serviceIP frames out to both servers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.h"
#include "net/link.h"
#include "sim/world.h"

namespace sttcp::net {

class EthernetSwitch {
 public:
  struct Stats {
    std::uint64_t forwarded = 0;  // unicast to a learned port
    std::uint64_t flooded = 0;    // unknown unicast / broadcast
    std::uint64_t multicast = 0;  // static-group fan-out
  };

  EthernetSwitch(sim::World& world, std::string name);

  /// Bind one side of a link to a new switch port; returns the port index.
  int add_port(Link::Port& link_port);

  /// Install a static multicast group: frames to `group` go to `ports`.
  void add_multicast_group(MacAddr group, std::vector<int> ports);

  /// Mirror every frame egressing `src_port` to `dst_port` as well. Used to
  /// emulate the ORIGINAL ST-TCP architecture, where the backup also tapped
  /// the primary->client traffic (paper §3 replaced this with counters in
  /// the heartbeat).
  void add_egress_mirror(int src_port, int dst_port);

  /// Forget a learned MAC (used by failure tests to force flooding).
  void flush_fdb() { fdb_.clear(); }

  /// Observe every frame at switch ingress — each LAN frame traverses the
  /// switch exactly once, so this is the natural capture point for the PCAP
  /// export (obs::PcapWriter) and any diagnostic tap. The tap sees the same
  /// shared buffer the egress ports forward; it may retain the Frame but
  /// must not assume the bytes are private.
  using FrameTap = std::function<void(sim::SimTime at, const Frame& frame)>;
  void set_frame_tap(FrameTap tap) { frame_tap_ = std::move(tap); }
  /// The installed tap (empty if none) — lets a second observer chain itself
  /// in front of an existing one (e.g. the invariant checker alongside pcap).
  const FrameTap& frame_tap() const { return frame_tap_; }

  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  struct SwitchPort final : FrameSink {
    EthernetSwitch* sw = nullptr;
    int index = 0;
    Link::Port* out = nullptr;
    void deliver_frame(Frame frame) override { sw->on_frame(index, std::move(frame)); }
  };

  void on_frame(int ingress, Frame frame);
  void send_out(int port, const Frame& frame);

  sim::World& world_;
  std::string name_;
  sim::Logger log_;
  std::vector<std::unique_ptr<SwitchPort>> ports_;
  std::unordered_map<MacAddr, int> fdb_;  // learned source MAC -> port
  std::unordered_map<MacAddr, std::vector<int>> multicast_groups_;
  std::unordered_map<int, int> egress_mirrors_;  // src egress port -> mirror port
  FrameTap frame_tap_;
  Stats stats_;
};

}  // namespace sttcp::net
