// Ref-counted immutable Ethernet frame.
//
// A Frame is a view (offset + length) into a shared, immutable byte buffer.
// Copying a Frame bumps a reference count instead of copying the payload, so
// the switch's multicast/flood fan-out, the egress mirror, and the backup's
// multicast tap all share the single buffer the sender serialized into.
//
// Ownership contract:
//  - The underlying buffer is immutable from the moment a Frame wraps it.
//    Anyone holding a Frame (links in flight, the pcap tap, a host's CPU
//    queue, test sinks) may keep it indefinitely; nobody may mutate it.
//  - Parsing works on `view()` (a BytesView into the shared buffer); no
//    per-hop copies are made. Code that needs a mutable or outliving copy
//    takes one explicitly via `clone()`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "net/bytes.h"

namespace sttcp::net {

class Frame {
 public:
  /// Empty frame (no buffer).
  Frame() = default;

  /// Take ownership of `bytes` as the shared immutable buffer. Implicit on
  /// purpose: handing a Bytes to a send path reads as "materialize one frame
  /// from these bytes" — the single copy happens here, at the source.
  Frame(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : buf_(std::make_shared<const Bytes>(std::move(bytes))), len_(buf_->size()) {}

  /// Copy `v` into a fresh shared buffer.
  static Frame copy_of(BytesView v) { return Frame(to_bytes(v)); }

  const std::uint8_t* data() const { return buf_ ? buf_->data() + off_ : nullptr; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return (*buf_)[off_ + i]; }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }

  /// View into the shared buffer; valid as long as any Frame referencing the
  /// buffer is alive.
  BytesView view() const { return buf_ ? BytesView(data(), len_) : BytesView(); }

  /// Sub-view sharing the same buffer (no copy).
  Frame subframe(std::size_t off, std::size_t n) const {
    Frame f(*this);
    if (off > len_) off = len_;
    if (n > len_ - off) n = len_ - off;
    f.off_ += off;
    f.len_ = n;
    return f;
  }

  /// Detached mutable copy (the only way to get mutable bytes back out).
  Bytes clone() const { return to_bytes(view()); }

  /// Number of Frames sharing this buffer (diagnostics / tests).
  long use_count() const { return buf_.use_count(); }

  friend bool operator==(const Frame& a, const Frame& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::shared_ptr<const Bytes> buf_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

}  // namespace sttcp::net
