#include "net/nic.h"

#include "net/headers.h"

namespace sttcp::net {

Nic::Nic(sim::World& world, std::string name, MacAddr mac)
    : world_(world), name_(std::move(name)), mac_(mac) {}

void Nic::attach(Link::Port& port) {
  port_ = &port;
  port.set_sink(this);
}

bool Nic::send(Frame frame) {
  if (failed_ || port_ == nullptr) {
    ++stats_.dropped_down;
    return false;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += frame.size();
  port_->send(std::move(frame));
  return true;
}

void Nic::deliver_frame(Frame frame) {
  if (failed_) {
    ++stats_.dropped_down;
    return;
  }
  if (frame.size() < EthernetHeader::kSize) {
    ++stats_.rx_filtered;
    return;
  }
  // Peek at the destination MAC without a full parse.
  std::array<std::uint8_t, 6> d{};
  std::copy(frame.begin(), frame.begin() + 6, d.begin());
  const MacAddr dst{d};
  const bool accept = promiscuous_ || dst == mac_ || dst.is_broadcast() ||
                      (dst.is_group() && multicast_.count(dst) != 0);
  if (!accept) {
    ++stats_.rx_filtered;
    return;
  }
  ++stats_.rx_frames;
  stats_.rx_bytes += frame.size();
  if (host_sink_) host_sink_(std::move(frame));
}

}  // namespace sttcp::net
