// RFC 1071 Internet checksum, including the TCP/UDP pseudo-header form.
#pragma once

#include <cstdint>

#include "net/addr.h"
#include "net/bytes.h"

namespace sttcp::net {

/// One's-complement sum accumulator. Feed spans, then `finish()`.
///
/// The sum lives in a uint64: 16-bit big-endian words are accumulated
/// without intermediate folding (safe for spans up to ~2^48 bytes), and the
/// carries are folded once in finish(). Word-aligned fields added while no
/// odd dangling byte is pending skip the byte path entirely.
class ChecksumAccumulator {
 public:
  void add(BytesView data);
  void add_u16(std::uint16_t v) {
    if (!odd_) {
      sum_ += v;
      return;
    }
    const std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                               static_cast<std::uint8_t>(v)};
    add(BytesView(b, 2));
  }
  void add_u32(std::uint32_t v) {
    if (!odd_) {
      sum_ += (v >> 16) + (v & 0xffff);
      return;
    }
    add_u16(static_cast<std::uint16_t>(v >> 16));
    add_u16(static_cast<std::uint16_t>(v));
  }
  /// Final one's-complement checksum, ready to store in a header field.
  std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // dangling high byte from an odd-length span
};

/// Checksum of a single contiguous buffer.
std::uint16_t internet_checksum(BytesView data);

/// TCP/UDP checksum over pseudo-header + transport segment.
/// `protocol` is the IP protocol number (6 = TCP, 17 = UDP).
std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 BytesView segment);

}  // namespace sttcp::net
