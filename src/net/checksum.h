// RFC 1071 Internet checksum, including the TCP/UDP pseudo-header form.
#pragma once

#include <cstdint>

#include "net/addr.h"
#include "net/bytes.h"

namespace sttcp::net {

/// One's-complement sum accumulator. Feed spans, then `finish()`.
class ChecksumAccumulator {
 public:
  void add(BytesView data);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v) {
    add_u16(static_cast<std::uint16_t>(v >> 16));
    add_u16(static_cast<std::uint16_t>(v));
  }
  /// Final one's-complement checksum, ready to store in a header field.
  std::uint16_t finish() const;

 private:
  std::uint32_t sum_ = 0;
  bool odd_ = false;  // dangling high byte from an odd-length span
};

/// Checksum of a single contiguous buffer.
std::uint16_t internet_checksum(BytesView data);

/// TCP/UDP checksum over pseudo-header + transport segment.
/// `protocol` is the IP protocol number (6 = TCP, 17 = UDP).
std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 BytesView segment);

}  // namespace sttcp::net
