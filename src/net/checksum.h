// RFC 1071 Internet checksum, including the TCP/UDP pseudo-header form.
#pragma once

#include <cstdint>

#include "net/addr.h"
#include "net/bytes.h"

namespace sttcp::net {

/// One's-complement sum accumulator. Feed spans, then `finish()`.
///
/// The sum lives in a uint64: 16-bit big-endian words are accumulated
/// without intermediate folding (safe for spans up to ~2^48 bytes), and the
/// carries are folded once in finish(). Word-aligned fields added while no
/// odd dangling byte is pending skip the byte path entirely.
class ChecksumAccumulator {
 public:
  void add(BytesView data);
  void add_u16(std::uint16_t v) {
    if (!odd_) {
      sum_ += v;
      return;
    }
    const std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                               static_cast<std::uint8_t>(v)};
    add(BytesView(b, 2));
  }
  void add_u32(std::uint32_t v) {
    if (!odd_) {
      sum_ += (v >> 16) + (v & 0xffff);
      return;
    }
    add_u16(static_cast<std::uint16_t>(v >> 16));
    add_u16(static_cast<std::uint16_t>(v));
  }
  /// Final one's-complement checksum, ready to store in a header field.
  std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // dangling high byte from an odd-length span
};

/// Checksum of a single contiguous buffer.
std::uint16_t internet_checksum(BytesView data);

/// TCP/UDP checksum over pseudo-header + transport segment.
/// `protocol` is the IP protocol number (6 = TCP, 17 = UDP).
std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 BytesView segment);

/// RFC 1624 incremental update (Eqn. 3): given the checksum field `hc` of a
/// message in which the 16-bit word `old_word` is replaced by `new_word`,
/// return the new checksum field without re-summing the message.
///
///   HC' = ~(~HC + ~m + m')
///
/// Matches a full RFC 1071 recomputation bit-for-bit as long as the
/// message's one's-complement sum is nonzero — always true for a transport
/// checksum, whose pseudo-header contributes a nonzero protocol word. (The
/// earlier RFC 1141 formula fails on the -0/+0 corner; Eqn. 3 does not.)
inline std::uint16_t checksum_update(std::uint16_t hc, std::uint16_t old_word,
                                     std::uint16_t new_word) {
  std::uint32_t sum = static_cast<std::uint16_t>(~hc);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  sum = (sum & 0xffff) + (sum >> 16);
  sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

/// 32-bit field variant: applies checksum_update to both halves.
inline std::uint16_t checksum_update32(std::uint16_t hc, std::uint32_t old_word,
                                       std::uint32_t new_word) {
  hc = checksum_update(hc, static_cast<std::uint16_t>(old_word >> 16),
                       static_cast<std::uint16_t>(new_word >> 16));
  return checksum_update(hc, static_cast<std::uint16_t>(old_word),
                         static_cast<std::uint16_t>(new_word));
}

}  // namespace sttcp::net
