// Bounds-checked big-endian byte serialization helpers used by all codecs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace sttcp::net {

/// Raw byte buffer flowing through the simulated network.
using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends big-endian fields to a Bytes buffer.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  /// Pre-size the buffer for `n` more bytes (one allocation up front).
  void reserve(std::size_t n) { out_.reserve(out_.size() + n); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(BytesView b) { out_.insert(out_.end(), b.begin(), b.end()); }

  std::size_t size() const { return out_.size(); }
  /// Patch a previously-written 16-bit field at absolute offset `at`.
  void patch_u16(std::size_t at, std::uint16_t v) {
    out_.at(at) = static_cast<std::uint8_t>(v >> 8);
    out_.at(at + 1) = static_cast<std::uint8_t>(v);
  }

 private:
  Bytes& out_;
};

/// Consumes big-endian fields from a view. Throws std::out_of_range on
/// underrun — in this simulator a short packet is a codec bug, not a
/// recoverable condition.
class ByteReader {
 public:
  explicit ByteReader(BytesView in) : in_(in) {}

  std::uint8_t u8() {
    need(1);
    return in_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = (std::uint16_t{in_[pos_]} << 8) | in_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  BytesView bytes(std::size_t n) {
    need(n);
    BytesView v = in_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  BytesView rest() { return bytes(remaining()); }
  void skip(std::size_t n) { (void)bytes(n); }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > in_.size()) {
      throw std::out_of_range("ByteReader: truncated buffer");
    }
  }
  BytesView in_;
  std::size_t pos_ = 0;
};

inline Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }
inline Bytes to_bytes(const char* s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s),
               reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

}  // namespace sttcp::net
