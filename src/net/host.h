// Host: the hardware + OS model a protocol stack runs on.
//
// A Host owns NICs, a static ARP table, a set of local IP addresses
// (including aliases — the serviceIP in ST-TCP's setup is an IP alias on
// both servers), an ICMP echo responder/client, UDP sockets, and a pluggable
// L4 handler slot that the TCP stack binds to.
//
// Failure model (paper §4): crash() stops the whole machine — nothing is
// sent or received again (HW/OS crash, or being powered down by the peer's
// STONITH action). Individual NICs can fail()/heal() while the host stays up
// (Table 1 row 4).
//
// An optional per-packet CPU cost models a slower machine: received frames
// queue behind a busy CPU, which is how a backup "starts lagging behind the
// primary" (paper §3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.h"
#include "net/headers.h"
#include "net/nic.h"
#include "sim/clock_domain.h"
#include "sim/world.h"

namespace sttcp::net {

class Host {
 public:
  using UdpHandler =
      std::function<void(Ipv4Addr src_ip, std::uint16_t src_port, BytesView payload)>;
  using L4Handler = std::function<void(const Ipv4Header& ip, BytesView l4)>;
  using PingCallback = std::function<void(bool success, sim::Duration rtt)>;
  using CrashHook = std::function<void()>;
  using RxTap = std::function<void(const Frame& frame)>;

  Host(sim::World& world, std::string name);
  ~Host();
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  sim::World& world() { return world_; }
  sim::Logger& logger() { return log_; }

  // --- hardware -----------------------------------------------------------
  /// Create and own a NIC. The first NIC added is the default route.
  Nic& add_nic(MacAddr mac);
  Nic& nic(std::size_t i = 0) { return *nics_.at(i); }
  std::size_t nic_count() const { return nics_.size(); }

  // --- configuration ------------------------------------------------------
  /// Register a local IP (primary address or alias such as serviceIP).
  void add_ip(Ipv4Addr ip);
  bool has_ip(Ipv4Addr ip) const;
  /// The host's own (first-registered) address.
  Ipv4Addr first_ip() const { return local_ips_.empty() ? Ipv4Addr() : local_ips_.front(); }
  /// Static ARP entry (the demo setup maps serviceIP to the multicast EA on
  /// the client/gateway).
  void arp_set(Ipv4Addr ip, MacAddr mac);
  /// Default route: destinations with no ARP entry are framed toward this
  /// MAC (the subnet's router port) instead of being dropped. Hosts keep no
  /// routing table — same-subnet peers get explicit ARP entries, everything
  /// else goes to the gateway. Unset keeps the strict single-subnet model.
  void set_default_gateway(MacAddr mac) {
    gateway_mac_ = mac;
    has_gateway_ = true;
  }
  /// Per-received-packet CPU time; zero (default) processes inline.
  void set_cpu_packet_time(sim::Duration d) { cpu_packet_time_ = d; }
  /// This host's CPU clock domain — the grey-failure stall hook. While a
  /// LagProfile is active, received TCP frames and every timer routed
  /// through the domain (the TCP stack's) slide out of the stall windows;
  /// UDP/ICMP receive and the ST-TCP daemon's own timers stay on schedule,
  /// modeling the paper's real-time-priority heartbeat daemon. Healthy
  /// domains are pure passthrough, so unfaulted runs are bit-identical.
  sim::ClockDomain& cpu_domain() { return cpu_domain_; }
  /// Observe every frame this host actually processes (after the NIC filter,
  /// the CPU queue, and the alive check — i.e. exactly the frames the
  /// protocol layers see). Diagnostics/invariant accounting; one null check
  /// when unset.
  void set_rx_tap(RxTap tap) { rx_tap_ = std::move(tap); }

  // --- lifecycle ----------------------------------------------------------
  bool alive() const { return alive_; }
  /// Hard stop: HW/OS crash or external power-off. All NICs go down, all
  /// pending received packets are lost, crash hooks fire.
  void crash(const std::string& reason);
  /// Bring a crashed host back up: NICs heal, the CPU queue is empty, and
  /// boot hooks fire in registration order so bound services can reinitialise
  /// (the simulated machine reboots with blank RAM but its software
  /// reinstalls itself). No-op on a live host.
  void power_on();
  /// Invoked on every crash (lets bound services cancel timers). Hooks are
  /// persistent: a host that crashes, reboots, and crashes again fires them
  /// each time.
  void add_crash_hook(CrashHook hook) { crash_hooks_.push_back(std::move(hook)); }
  /// Invoked on every power_on(), in registration order (services register at
  /// construction, so lower layers reset before the ones stacked on them).
  void add_boot_hook(CrashHook hook) { boot_hooks_.push_back(std::move(hook)); }

  // --- sending ------------------------------------------------------------
  /// Route + ARP + frame + transmit an IP packet. Returns false if the host
  /// is down, has no usable NIC, or lacks an ARP entry for dst.
  bool send_ip(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol, BytesView l4);

  // --- UDP ----------------------------------------------------------------
  void udp_bind(std::uint16_t port, UdpHandler handler);
  void udp_unbind(std::uint16_t port);
  bool udp_send(Ipv4Addr src, std::uint16_t src_port, Ipv4Addr dst,
                std::uint16_t dst_port, BytesView payload);

  // --- ICMP ---------------------------------------------------------------
  /// Send an echo request; `cb` fires with success=true on the first reply
  /// or success=false after `timeout`.
  void ping(Ipv4Addr src, Ipv4Addr dst, sim::Duration timeout, PingCallback cb);

  // --- L4 hook (TCP) ------------------------------------------------------
  /// The TCP stack registers itself here for protocol 6 packets. The handler
  /// sees every TCP packet the NICs accept — including multicast-tapped
  /// frames whose destination IP is a local alias.
  void set_l4_handler(std::uint8_t protocol, L4Handler handler);

  struct Stats {
    std::uint64_t packets_in = 0;
    std::uint64_t packets_out = 0;
    std::uint64_t arp_misses = 0;
    std::uint64_t not_local = 0;  // IP packets for addresses we do not own
    std::uint64_t udp_checksum_drops = 0;  // incl. truncated oversize datagrams
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_nic_frame(Frame frame);
  void dispatch_frame(Frame frame);
  void process_frame(const Frame& frame);
  void handle_icmp(const Ipv4Header& ip, BytesView l4);
  void handle_udp(const Ipv4Header& ip, BytesView l4);

  sim::World& world_;
  std::string name_;
  sim::Logger log_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<Ipv4Addr> local_ips_;
  std::unordered_map<Ipv4Addr, MacAddr> arp_;
  MacAddr gateway_mac_;
  bool has_gateway_ = false;
  std::unordered_map<std::uint16_t, UdpHandler> udp_handlers_;
  std::unordered_map<std::uint8_t, L4Handler> l4_handlers_;
  std::vector<CrashHook> crash_hooks_;
  std::vector<CrashHook> boot_hooks_;
  RxTap rx_tap_;

  struct PendingPing {
    PingCallback cb;
    sim::SimTime sent_at;
    sim::TimerId timeout_timer = 0;
  };
  std::unordered_map<std::uint16_t, PendingPing> pending_pings_;
  std::uint16_t next_ping_id_ = 1;
  std::uint16_t next_ip_id_ = 1;

  sim::Duration cpu_packet_time_ = sim::Duration::zero();
  sim::SimTime cpu_busy_until_;
  sim::ClockDomain cpu_domain_;
  bool alive_ = true;
  Stats stats_;
};

/// Out-of-band power controller (the paper's remote power switch used for
/// STONITH: "the backup also powers the primary down to prevent any danger
/// of dual active servers"). Commands travel out-of-band, so they work even
/// when the victim's network is gone; they are no-ops on already-dead hosts.
class PowerController {
 public:
  explicit PowerController(sim::World& world);

  void register_host(Host& host);
  /// Force `name` off. Returns false if the controller is disabled or the
  /// host is unknown. Powering off a dead host succeeds trivially.
  bool power_off(const std::string& name);
  /// A disabled controller models a management-network fault (tests only).
  void set_functional(bool on) { functional_ = on; }

  std::uint64_t power_off_count() const { return power_off_count_; }

 private:
  sim::World& world_;
  sim::Logger log_;
  std::unordered_map<std::string, Host*> hosts_;
  bool functional_ = true;
  std::uint64_t power_off_count_ = 0;
};

}  // namespace sttcp::net
