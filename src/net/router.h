// IP router: the box that turns one ST-TCP cell into a routed fabric.
//
// A Router owns N ports, each attached to one side of a Link (so it plugs
// into a switch exactly like a host does). Each port has its own MAC and an
// interface IP — the subnet's gateway address. Forwarding is classic IPv4:
//
//   * frames addressed to a port's MAC (or broadcast) are accepted;
//   * packets for one of the router's own interface IPs are delivered
//     locally (ICMP echo is answered, so ST-TCP's NIC-failure arbitration
//     can ping its gateway across the fabric);
//   * everything else is looked up in the routing table by longest-prefix
//     match, TTL is decremented (expired packets are dropped and counted —
//     no ICMP time-exceeded is generated, matching the drop-accounting
//     style of the rest of the simulator), the IP header checksum is
//     rewritten, and the frame is re-framed with the egress port's source
//     MAC and the next hop's destination MAC.
//
// The next-hop MAC comes from a per-port static ARP table. This is also how
// the ST-TCP multicast tap crosses subnets: the egress port's ARP entry for
// a cell's service IP maps to the cell's multicast group address, so a
// client->service packet travels unicast to the router and is re-expanded
// into the L2 multicast fan-out on the final hop (see docs/ROUTING.md).
//
// Failure model: crash() drops everything until restore() — the "router
// death" scenario class. Individual ports can also fail via their links.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/addr.h"
#include "net/link.h"
#include "sim/world.h"

namespace sttcp::net {

/// One routing-table entry: destination prefix -> egress port (+ optional
/// next-hop gateway; zero means the destination is directly connected and
/// the packet is ARP'd for its own destination IP).
struct Route {
  Ipv4Addr prefix;
  int prefix_len = 0;  // 0..32; 0 is the default route
  int port = 0;
  Ipv4Addr next_hop;  // zero = directly connected
};

/// Longest-prefix-match routing table, separable from the Router so the
/// match logic is unit-testable without any topology.
class RoutingTable {
 public:
  void add(Route route);
  void clear() { routes_.clear(); }

  /// Longest-prefix match; nullptr when no route (not even a default)
  /// covers `dst`. Among equal-length prefixes the first added wins.
  const Route* lookup(Ipv4Addr dst) const;

  std::size_t size() const { return routes_.size(); }

 private:
  std::vector<Route> routes_;  // kept sorted by descending prefix_len
};

class Router {
 public:
  struct Stats {
    std::uint64_t forwarded = 0;      // routed and re-framed out a port
    std::uint64_t delivered_local = 0;  // for one of our interface IPs
    std::uint64_t no_route = 0;       // LPM found nothing (dropped)
    std::uint64_t ttl_expired = 0;    // TTL hit zero in transit (dropped)
    std::uint64_t arp_miss = 0;       // no MAC for the next hop (dropped)
    std::uint64_t not_ip = 0;         // non-IPv4 ethertype (ignored)
    std::uint64_t dropped_down = 0;   // received while crashed
  };

  Router(sim::World& world, std::string name);

  /// Create a port with its own MAC and interface IP, attached to one side
  /// of a link. Returns the port index (dense, starting at 0).
  int add_port(Link::Port& link_port, MacAddr mac, Ipv4Addr ip);

  /// Install a route (see RoutingTable).
  void add_route(Route route);
  /// Convenience: directly-connected subnet out `port`.
  void add_connected(Ipv4Addr prefix, int prefix_len, int port);
  RoutingTable& table() { return table_; }

  /// Static ARP on a port's subnet. Mapping a service IP to a multicast
  /// group MAC here is what carries the ST-TCP tap across the router.
  void arp_set(int port, Ipv4Addr ip, MacAddr mac);

  /// Router death / repair (the fabric's new failure class).
  void crash();
  void restore();
  bool alive() const { return alive_; }

  int port_count() const { return static_cast<int>(ports_.size()); }
  MacAddr port_mac(int port) const { return ports_[port]->mac; }
  Ipv4Addr port_ip(int port) const { return ports_[port]->ip; }

  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

 private:
  struct RouterPort final : FrameSink {
    Router* router = nullptr;
    int index = 0;
    MacAddr mac;
    Ipv4Addr ip;
    Link::Port* out = nullptr;
    std::unordered_map<Ipv4Addr, MacAddr> arp;
    void deliver_frame(Frame frame) override {
      router->on_frame(index, std::move(frame));
    }
  };

  void on_frame(int ingress, Frame frame);
  void deliver_local(int ingress, const Frame& frame);
  bool has_ip(Ipv4Addr ip) const;

  sim::World& world_;
  std::string name_;
  sim::Logger log_;
  std::vector<std::unique_ptr<RouterPort>> ports_;
  RoutingTable table_;
  bool alive_ = true;
  Stats stats_;
};

}  // namespace sttcp::net
