// Link-layer and network-layer addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace sttcp::net {

/// 48-bit IEEE 802 MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> b) : b_(b) {}
  /// Build from the low 48 bits of `v` (deterministic test addresses).
  static constexpr MacAddr from_u64(std::uint64_t v) {
    return MacAddr({static_cast<std::uint8_t>(v >> 40), static_cast<std::uint8_t>(v >> 32),
                    static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
                    static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)});
  }
  static constexpr MacAddr broadcast() {
    return MacAddr({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }
  /// A locally-administered multicast group address (I/G bit set), as used by
  /// ST-TCP's multiEA: both servers subscribe to it and the gateway's static
  /// ARP entry maps the service IP to it.
  static constexpr MacAddr multicast_group(std::uint32_t id) {
    return MacAddr({0x03, 0x53, 0x54, static_cast<std::uint8_t>(id >> 16),
                    static_cast<std::uint8_t>(id >> 8), static_cast<std::uint8_t>(id)});
  }

  constexpr const std::array<std::uint8_t, 6>& bytes() const { return b_; }
  constexpr bool is_broadcast() const { return *this == broadcast(); }
  /// True for group (multicast/broadcast) addresses: I/G bit of first octet.
  constexpr bool is_group() const { return (b_[0] & 0x01) != 0; }
  constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto x : b_) v = (v << 8) | x;
    return v;
  }

  constexpr auto operator<=>(const MacAddr&) const = default;

  std::string str() const;  ///< "aa:bb:cc:dd:ee:ff"

 private:
  std::array<std::uint8_t, 6> b_{};
};

/// IPv4 address.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : v_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr bool is_zero() const { return v_ == 0; }

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  std::string str() const;  ///< dotted quad

 private:
  std::uint32_t v_ = 0;
};

/// Convenience: a transport endpoint (IP, port).
struct SocketAddr {
  Ipv4Addr ip;
  std::uint16_t port = 0;
  auto operator<=>(const SocketAddr&) const = default;
  std::string str() const;
};

}  // namespace sttcp::net

template <>
struct std::hash<sttcp::net::MacAddr> {
  std::size_t operator()(const sttcp::net::MacAddr& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};

template <>
struct std::hash<sttcp::net::Ipv4Addr> {
  std::size_t operator()(const sttcp::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<sttcp::net::SocketAddr> {
  std::size_t operator()(const sttcp::net::SocketAddr& s) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{s.ip.value()} << 16) | s.port);
  }
};
