// Point-to-point Ethernet link with latency, bandwidth serialization,
// deterministic random loss, and fail/heal control.
//
// A Link has two ports (0 and 1). Whatever is attached to a port (a NIC or a
// switch port) implements FrameSink to receive frames and calls
// Port::send() to transmit toward the other side.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/bytes.h"
#include "net/frame.h"
#include "net/impairment.h"
#include "obs/metrics.h"
#include "sim/world.h"

namespace sttcp::net {

/// Anything that can receive an Ethernet frame from a link. The Frame shares
/// its buffer with every other holder; sinks must not assume exclusivity.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void deliver_frame(Frame frame) = 0;
};

class Link {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;      // accepted for transmission
    std::uint64_t frames_delivered = 0; // arrived at the far sink
    std::uint64_t frames_dropped = 0;   // random loss / burst loss / link down
    std::uint64_t bytes_delivered = 0;
  };

  /// `bandwidth_bps` == 0 means infinite (no serialization delay).
  Link(sim::World& world, sim::Duration latency, std::uint64_t bandwidth_bps,
       double drop_probability = 0.0);

  class Port {
   public:
    void set_sink(FrameSink* sink) { sink_ = sink; }
    /// Whatever is attached to this port (null before attachment). The
    /// cross-shard channel uses this to inject frames into the attachee as
    /// if they had crossed the link in-world.
    FrameSink* sink() const { return sink_; }
    /// Transmit a frame toward the other side of the link. Sending the same
    /// Frame out several ports shares one buffer (refcount, not copy).
    void send(Frame frame) { link_->transmit(index_, std::move(frame)); }

   private:
    friend class Link;
    Link* link_ = nullptr;
    int index_ = 0;
    FrameSink* sink_ = nullptr;
  };

  Port& port(int i) { return ports_[i]; }

  void fail() { failed_ = true; }
  void heal() { failed_ = false; }
  bool failed() const { return failed_; }

  /// Drop the next `n` frames in each direction (models a temporary fault
  /// such as a NIC buffer overflow; used by the missed-byte recovery tests).
  void drop_next(int n) { burst_drop_ = n; }

  /// Change random loss probability at runtime.
  void set_drop_probability(double p) { drop_probability_ = p; }

  /// Selective fault injection: frames matching the predicate are dropped
  /// (e.g. "frames longer than 200 bytes" models a fault that loses bulk
  /// data while small control traffic survives). nullptr clears it.
  using DropFilter = std::function<bool(const Frame& frame)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }

  /// Adversarial impairment engine (burst loss, corruption, duplication,
  /// reordering, jitter — see net/impairment.h). Created on first access
  /// with an Rng forked from the world; a link that never asks for it pays
  /// one null check per frame and consumes no randomness, so pre-existing
  /// seed-tuned scenarios stay bit-identical.
  Impairment& impairment();
  /// The engine if it was ever created, else null (stats export).
  const Impairment* impairment_ptr() const { return impairment_.get(); }

  sim::Duration latency() const { return latency_; }
  const Stats& stats() const { return stats_; }

  /// Bind live telemetry under `prefix` (e.g. "net.link.client"): a
  /// serialization-queue delay histogram and an in-flight depth gauge.
  /// Cumulative frame/byte/drop counters are exported from Stats by the
  /// harness snapshot instead. No-op cost when never called.
  void bind_metrics(obs::MetricsRegistry& registry, const std::string& prefix);

 private:
  void transmit(int from_port, Frame frame);

  sim::World& world_;
  sim::Duration latency_;
  std::uint64_t bandwidth_bps_;
  double drop_probability_;
  sim::Rng rng_;
  Port ports_[2];
  sim::SimTime busy_until_[2];  // per-direction serialization queue tail
  sim::SimTime last_arrival_[2];  // order-preserving clamp for jittered frames
  std::unique_ptr<Impairment> impairment_;
  int burst_drop_ = 0;
  DropFilter drop_filter_;
  bool failed_ = false;
  Stats stats_;

  // Telemetry (null unless bind_metrics was called).
  obs::Histogram* queue_delay_us_ = nullptr;
  obs::Gauge* in_flight_ = nullptr;
  int in_flight_count_ = 0;
};

}  // namespace sttcp::net
