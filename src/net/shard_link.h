// Cross-shard link endpoints: the only place two simulated worlds touch.
//
// A ShardChannel models one point-to-point cable whose two ends live in
// different shards (worlds) of a partitioned topology. Each end is a real
// net::Link owned by its own world — bandwidth serialization, drop
// probability and stats all behave exactly as on an in-world link — but
// instead of delivering inline to the far port's sink, the delivery event
// pushes the frame stamped `now + latency` onto a single-producer/
// single-consumer queue. The destination shard's drain step (run by the
// parallel executor at every window boundary, or inline in a 1-thread run)
// pops everything below the window horizon and schedules it into the
// destination loop at the recorded arrival time, delivering to whatever is
// attached to the far link's port — the receiver cannot tell the frame
// crossed a thread boundary.
//
// The cable's propagation latency is applied HERE, not on the member links
// (which are built with zero latency and model serialization only). That
// split is what makes the conservative window protocol sound: a frame is
// pushed at its producer-side transmit-completion time and stamped
// `latency` later, so every queue entry is visible at least one full
// lookahead before its timestamp. Any entry stamped inside window w was
// therefore pushed before window w-1's end-of-window barrier, and the drain
// at w's start deterministically sees it — independent of how worker
// threads interleave. (If the latency rode on the producer link instead,
// the push would happen AT the arrival timestamp and the drain would see a
// frame stamped inside the current window only if its producer shard
// happened to have run first — a thread-timing-dependent result.)
//
// Constraints the conservative engine relies on:
//   * each direction's latency must be >= the executor lookahead (the
//     lookahead is derived as the minimum trunk latency);
//   * arrival timestamps per direction are monotone — so the reordering /
//     jitter impairments must never be armed on a trunk link (the drain
//     consumes a timestamp-prefix of the queue).
#pragma once

#include <memory>

#include "net/frame.h"
#include "net/link.h"
#include "sim/spsc.h"
#include "sim/time.h"
#include "sim/world.h"

namespace sttcp::net {

class ShardChannel {
 public:
  /// `link_a` lives in `world_a` (shard A), `link_b` in `world_b`; both
  /// must be zero-latency (serialization-only) — `latency` is the one-way
  /// propagation delay the channel adds per direction. Side A attaches its
  /// device (router port, NIC, switch) to link_a->port(0) and transmits
  /// through it; deliveries pop out of link_b->port(0)'s sink in shard B,
  /// and vice versa. The channel claims port(1) of both links.
  ShardChannel(sim::World& world_a, sim::World& world_b, Link* link_a,
               Link* link_b, sim::Duration latency);

  /// The ports devices attach to (exactly like an in-world link).
  Link::Port& port_a() { return link_a_->port(0); }
  Link::Port& port_b() { return link_b_->port(0); }

  Link& link_a() { return *link_a_; }
  Link& link_b() { return *link_b_; }

  /// Inject every queued frame with arrival time < horizon into the
  /// destination shard's loop. Must be called from the thread that owns the
  /// destination shard, with no concurrent access to that shard.
  void drain_into_a(sim::SimTime horizon);
  void drain_into_b(sim::SimTime horizon);

 private:
  struct Timestamped {
    sim::SimTime at;
    Frame frame;
  };
  /// The far-port sink of the producer-side link: stamps the frame with
  /// `transmit completion + propagation latency` and hands it to the queue.
  /// Pushing at completion time (not arrival time) is the lookahead margin
  /// the executor's windows depend on — see the file comment.
  struct QueueSink final : FrameSink {
    sim::World* world = nullptr;
    sim::SpscQueue<Timestamped>* queue = nullptr;
    sim::Duration latency;
    void deliver_frame(Frame frame) override {
      queue->push({world->now() + latency, std::move(frame)});
    }
  };

  static void drain(sim::SpscQueue<Timestamped>& queue, sim::World& world,
                    Link::Port& deliver_port, sim::SimTime horizon);

  sim::World& world_a_;
  sim::World& world_b_;
  Link* link_a_;
  Link* link_b_;
  sim::SpscQueue<Timestamped> to_b_;  // produced by shard A, consumed by B
  sim::SpscQueue<Timestamped> to_a_;
  QueueSink sink_to_b_;  // attached to link_a_->port(1)
  QueueSink sink_to_a_;  // attached to link_b_->port(1)
};

}  // namespace sttcp::net
