#include "net/switch.h"

namespace sttcp::net {

EthernetSwitch::EthernetSwitch(sim::World& world, std::string name)
    : world_(world), name_(std::move(name)), log_(world.logger(name_)) {}

int EthernetSwitch::add_port(Link::Port& link_port) {
  auto p = std::make_unique<SwitchPort>();
  p->sw = this;
  p->index = static_cast<int>(ports_.size());
  p->out = &link_port;
  link_port.set_sink(p.get());
  ports_.push_back(std::move(p));
  return ports_.back()->index;
}

void EthernetSwitch::add_multicast_group(MacAddr group, std::vector<int> ports) {
  multicast_groups_[group] = std::move(ports);
}

void EthernetSwitch::add_egress_mirror(int src_port, int dst_port) {
  egress_mirrors_[src_port] = dst_port;
}

void EthernetSwitch::on_frame(int ingress, Frame frame) {
  if (frame.size() < 12) return;  // runt; silently discarded
  if (frame_tap_) frame_tap_(world_.now(), frame);
  std::array<std::uint8_t, 6> b{};
  std::copy(frame.begin(), frame.begin() + 6, b.begin());
  const MacAddr dst{b};
  std::copy(frame.begin() + 6, frame.begin() + 12, b.begin());
  const MacAddr src{b};

  // Learn the source address (unless it is a group address, which can only
  // appear as a destination in well-formed traffic).
  if (!src.is_group()) fdb_[src] = ingress;

  if (dst.is_group()) {
    auto g = multicast_groups_.find(dst);
    if (g != multicast_groups_.end()) {
      ++stats_.multicast;
      for (int p : g->second) {
        if (p != ingress) send_out(p, frame);
      }
      return;
    }
    // Broadcast or unknown multicast: flood.
    ++stats_.flooded;
    for (const auto& p : ports_) {
      if (p->index != ingress) send_out(p->index, frame);
    }
    return;
  }

  auto it = fdb_.find(dst);
  if (it != fdb_.end()) {
    ++stats_.forwarded;
    if (it->second != ingress) send_out(it->second, frame);
    return;
  }
  ++stats_.flooded;
  for (const auto& p : ports_) {
    if (p->index != ingress) send_out(p->index, frame);
  }
}

void EthernetSwitch::send_out(int port, const Frame& frame) {
  // Each egress (and the mirror) shares the ingress buffer: a Frame copy is
  // a refcount bump, never a payload copy.
  ports_[static_cast<std::size_t>(port)]->out->send(frame);
  auto m = egress_mirrors_.find(port);
  if (m != egress_mirrors_.end()) {
    ports_[static_cast<std::size_t>(m->second)]->out->send(frame);
  }
}

}  // namespace sttcp::net
