#include "net/headers.h"

#include <stdexcept>

#include "net/checksum.h"

namespace sttcp::net {

void EthernetHeader::write(ByteWriter& w) const {
  w.bytes(BytesView(dst.bytes().data(), 6));
  w.bytes(BytesView(src.bytes().data(), 6));
  w.u16(ethertype);
}

EthernetHeader EthernetHeader::read(ByteReader& r) {
  EthernetHeader h;
  std::array<std::uint8_t, 6> b{};
  BytesView d = r.bytes(6);
  std::copy(d.begin(), d.end(), b.begin());
  h.dst = MacAddr(b);
  d = r.bytes(6);
  std::copy(d.begin(), d.end(), b.begin());
  h.src = MacAddr(b);
  h.ethertype = r.u16();
  return h;
}

void Ipv4Header::write(ByteWriter& w, std::size_t payload_len) const {
  const std::size_t start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(tos);
  w.u16(static_cast<std::uint16_t>(kSize + payload_len));
  w.u16(identification);
  w.u16(0);  // flags / fragment offset: DF not modeled, never fragmented
  w.u8(ttl);
  w.u8(protocol);
  const std::size_t ck_at = w.size();
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  // Compute header checksum over the 20 bytes just written.
  ChecksumAccumulator acc;
  acc.add_u16(0x4500 | tos);
  acc.add_u16(static_cast<std::uint16_t>(kSize + payload_len));
  acc.add_u16(identification);
  acc.add_u16(0);
  acc.add_u16((std::uint16_t{ttl} << 8) | protocol);
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  w.patch_u16(ck_at, acc.finish());
  (void)start;
}

Ipv4Header Ipv4Header::read(ByteReader& r) {
  Ipv4Header h;
  const std::uint8_t vihl = r.u8();
  if (vihl != 0x45) throw std::runtime_error("Ipv4Header: unsupported version/IHL");
  h.tos = r.u8();
  h.total_length = r.u16();
  h.identification = r.u16();
  (void)r.u16();  // flags/frag
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.checksum = r.u16();
  h.src = Ipv4Addr(r.u32());
  h.dst = Ipv4Addr(r.u32());
  // Verify: re-add all fields including the stored checksum; result must be 0.
  ChecksumAccumulator acc;
  acc.add_u16(0x4500 | h.tos);
  acc.add_u16(h.total_length);
  acc.add_u16(h.identification);
  acc.add_u16(0);
  acc.add_u16((std::uint16_t{h.ttl} << 8) | h.protocol);
  acc.add_u16(h.checksum);
  acc.add_u32(h.src.value());
  acc.add_u32(h.dst.value());
  if (acc.finish() != 0) {
    throw std::runtime_error("Ipv4Header: bad checksum");
  }
  return h;
}

void UdpHeader::write(ByteWriter& w, std::size_t payload_len) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(static_cast<std::uint16_t>(kSize + payload_len));
  w.u16(0);  // checksum patched by build_udp_frame (needs pseudo-header)
}

UdpHeader UdpHeader::read(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  return h;
}

Bytes IcmpEcho::serialize() const {
  Bytes out;
  ByteWriter w(out);
  w.reserve(8);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);  // code
  w.u16(0);  // checksum placeholder
  w.u16(id);
  w.u16(seq);
  w.patch_u16(2, internet_checksum(out));
  return out;
}

std::optional<IcmpEcho> IcmpEcho::parse(BytesView data) {
  if (data.size() < 8) return std::nullopt;
  if (internet_checksum(data) != 0) return std::nullopt;
  ByteReader r(data);
  IcmpEcho e;
  const std::uint8_t type = r.u8();
  if (type != 0 && type != 8) return std::nullopt;
  e.type = static_cast<IcmpType>(type);
  (void)r.u8();   // code
  (void)r.u16();  // checksum (verified above)
  e.id = r.u16();
  e.seq = r.u16();
  return e;
}

Bytes build_udp_frame(MacAddr eth_dst, MacAddr eth_src, Ipv4Addr ip_src,
                      Ipv4Addr ip_dst, std::uint16_t src_port, std::uint16_t dst_port,
                      BytesView payload) {
  // Serialize the UDP segment first so the pseudo-header checksum can cover it.
  Bytes seg;
  ByteWriter sw(seg);
  UdpHeader uh{src_port, dst_port, 0, 0};
  uh.write(sw, payload.size());
  sw.bytes(payload);
  sw.patch_u16(6, transport_checksum(ip_src, ip_dst, kIpProtoUdp, seg));
  return build_ip_frame(eth_dst, eth_src, ip_src, ip_dst, kIpProtoUdp, seg);
}

Bytes build_ip_frame(MacAddr eth_dst, MacAddr eth_src, Ipv4Addr ip_src,
                     Ipv4Addr ip_dst, std::uint8_t protocol, BytesView l4) {
  Bytes out;
  out.reserve(EthernetHeader::kSize + Ipv4Header::kSize + l4.size());
  ByteWriter w(out);
  EthernetHeader eh{eth_dst, eth_src, kEtherTypeIpv4};
  eh.write(w);
  Ipv4Header ih;
  ih.protocol = protocol;
  ih.src = ip_src;
  ih.dst = ip_dst;
  ih.write(w, l4.size());
  w.bytes(l4);
  return out;
}

ParsedFrame parse_frame(BytesView frame) {
  ByteReader r(frame);
  ParsedFrame p;
  p.eth = EthernetHeader::read(r);
  if (p.eth.ethertype == kEtherTypeIpv4) {
    p.ip = Ipv4Header::read(r);
    const std::size_t l4_len = p.ip->total_length - Ipv4Header::kSize;
    p.l4 = r.bytes(l4_len);
  } else {
    p.l4 = r.rest();
  }
  return p;
}

}  // namespace sttcp::net
