#include "net/serial_link.h"

namespace sttcp::net {

bool SerialPort::send(Bytes message) {
  if (link_ == nullptr) return false;
  link_->transmit(index_, std::move(message));
  return true;
}

SerialLink::SerialLink(sim::World& world, std::uint64_t baud)
    : world_(world), baud_(baud) {
  for (int i = 0; i < 2; ++i) {
    ports_[i].link_ = this;
    ports_[i].index_ = i;
  }
}

sim::Duration SerialLink::queue_delay(int from_port) const {
  const sim::SimTime b = busy_until_[from_port];
  if (b <= world_.now()) return sim::Duration::zero();
  return b - world_.now();
}

void SerialLink::set_noise(double corrupt_p, double truncate_p) {
  corrupt_p_ = corrupt_p;
  truncate_p_ = truncate_p;
  if ((corrupt_p_ > 0.0 || truncate_p_ > 0.0) && !noise_rng_armed_) {
    noise_rng_armed_ = true;
    noise_rng_ = world_.rng().fork();
  }
}

void SerialLink::transmit(int from_port, Bytes message) {
  ++stats_.messages_sent;
  if (failed_) {
    ++stats_.messages_dropped;
    return;
  }
  if (noise_rng_armed_ && !message.empty()) {
    if (truncate_p_ > 0.0 && noise_rng_.chance(truncate_p_)) {
      // Mid-message cut: the receiver's framing resynchronizes on the next
      // message, so only a (possibly empty) prefix of this one arrives.
      message.resize(static_cast<std::size_t>(noise_rng_.below(message.size())));
      ++stats_.messages_truncated;
    }
    if (corrupt_p_ > 0.0 && !message.empty() && noise_rng_.chance(corrupt_p_)) {
      message[noise_rng_.below(message.size())] ^=
          static_cast<std::uint8_t>(1u << noise_rng_.below(8));
      ++stats_.messages_corrupted;
    }
  }
  sim::SimTime start = world_.now();
  if (busy_until_[from_port] > start) start = busy_until_[from_port];
  const std::uint64_t wire_bits =
      (message.size() + kFramingBytes) * static_cast<std::uint64_t>(kBitsPerByte);
  const auto tx = sim::Duration::nanos(
      static_cast<std::int64_t>(wire_bits * 1000000000ull / baud_));
  busy_until_[from_port] = start + tx;

  const int to_port = 1 - from_port;
  world_.loop().schedule_at(
      busy_until_[from_port], [this, to_port, message = std::move(message)]() mutable {
        if (failed_) {
          ++stats_.messages_dropped;
          return;
        }
        SerialPort& p = ports_[to_port];
        if (!p.handler_) {
          ++stats_.messages_dropped;
          return;
        }
        ++stats_.messages_delivered;
        stats_.bytes_delivered += message.size();
        p.handler_(std::move(message));
      });
}

}  // namespace sttcp::net
