#include "net/addr.h"

#include <cstdio>

namespace sttcp::net {

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", b_[0], b_[1],
                b_[2], b_[3], b_[4], b_[5]);
  return buf;
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v_ >> 24) & 0xff, (v_ >> 16) & 0xff,
                (v_ >> 8) & 0xff, v_ & 0xff);
  return buf;
}

std::string SocketAddr::str() const { return ip.str() + ":" + std::to_string(port); }

}  // namespace sttcp::net
