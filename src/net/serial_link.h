// RS-232 null-modem serial link.
//
// The paper's secondary heartbeat channel: two machines' serial ports wired
// together with a null-modem cable, 115.2 kbps. We model a message-framed
// byte pipe (each write is delivered as one message) with start/stop-bit
// overhead (10 wire bits per byte), FIFO serialization, and fail/heal — the
// bandwidth ceiling is what limits the number of connections one serial HB
// channel can carry (paper §3).
#pragma once

#include <cstdint>
#include <functional>

#include "net/bytes.h"
#include "sim/random.h"
#include "sim/world.h"

namespace sttcp::net {

class SerialLink;

/// One end of the cable. Obtained from SerialLink::port().
class SerialPort {
 public:
  using Handler = std::function<void(Bytes message)>;

  void set_handler(Handler h) { handler_ = std::move(h); }
  /// Queue a message for transmission. Returns false when the link is down
  /// (the caller cannot detect this in real RS-232 either, but tests can).
  bool send(Bytes message);

 private:
  friend class SerialLink;
  SerialLink* link_ = nullptr;
  int index_ = 0;
  Handler handler_;
};

class SerialLink {
 public:
  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t messages_dropped = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t messages_corrupted = 0;  // line-noise bit flips
    std::uint64_t messages_truncated = 0;  // mid-message cuts
  };

  static constexpr std::uint64_t kDefaultBaud = 115200;
  /// RS-232 8N1: 1 start + 8 data + 1 stop bits per byte.
  static constexpr int kBitsPerByte = 10;
  /// Per-message framing overhead (length prefix + delimiter), in bytes.
  static constexpr int kFramingBytes = 3;

  explicit SerialLink(sim::World& world, std::uint64_t baud = kDefaultBaud);

  SerialPort& port(int i) { return ports_[i]; }

  void fail() { failed_ = true; }
  void heal() { failed_ = false; }
  bool failed() const { return failed_; }

  /// Line noise: each message is independently bit-flipped with probability
  /// `corrupt_p` and cut mid-message (a random-length prefix is delivered,
  /// possibly empty) with probability `truncate_p`. RS-232 has no FCS, so
  /// damaged messages reach the receiver — the heartbeat codec's own
  /// checksum is what must reject them. The noise Rng is forked from the
  /// world lazily on first arming, so unarmed scenarios draw nothing.
  void set_noise(double corrupt_p, double truncate_p);

  /// Transmission queue depth in bytes for one direction — lets tests verify
  /// the channel saturates beyond ~100 connections as the paper predicts.
  sim::Duration queue_delay(int from_port) const;

  std::uint64_t baud() const { return baud_; }
  const Stats& stats() const { return stats_; }

 private:
  friend class SerialPort;
  void transmit(int from_port, Bytes message);

  sim::World& world_;
  std::uint64_t baud_;
  SerialPort ports_[2];
  sim::SimTime busy_until_[2];
  bool failed_ = false;
  double corrupt_p_ = 0.0;
  double truncate_p_ = 0.0;
  bool noise_rng_armed_ = false;
  sim::Rng noise_rng_;
  Stats stats_;
};

}  // namespace sttcp::net
