// Byte-exact codecs for the L2-L4 headers used in the simulation:
// Ethernet II, IPv4 (no options), UDP, and ICMP echo.
//
// The TCP header codec lives in src/tcp/segment.h next to the TCP machinery;
// it uses the same ByteWriter/ByteReader and transport_checksum helpers.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.h"
#include "net/bytes.h"

namespace sttcp::net {

// EtherType values.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

// IP protocol numbers.
inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = kEtherTypeIpv4;

  void write(ByteWriter& w) const;
  static EthernetHeader read(ByteReader& r);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // filled by serializer
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // filled by serializer
  Ipv4Addr src;
  Ipv4Addr dst;

  /// Writes the header with length/checksum computed for `payload_len`.
  void write(ByteWriter& w, std::size_t payload_len) const;
  /// Parses and verifies the header checksum (throws on corruption).
  static Ipv4Header read(ByteReader& r);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    // filled by serializer
  std::uint16_t checksum = 0;  // filled by serializer

  void write(ByteWriter& w, std::size_t payload_len) const;
  static UdpHeader read(ByteReader& r);
};

enum class IcmpType : std::uint8_t { kEchoReply = 0, kEchoRequest = 8 };

struct IcmpEcho {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;

  /// Serializes type/code/checksum/id/seq (no payload).
  Bytes serialize() const;
  static std::optional<IcmpEcho> parse(BytesView data);
};

/// Assembled Ethernet/IPv4/UDP datagram ready for the wire.
Bytes build_udp_frame(MacAddr eth_dst, MacAddr eth_src, Ipv4Addr ip_src,
                      Ipv4Addr ip_dst, std::uint16_t src_port, std::uint16_t dst_port,
                      BytesView payload);

/// Assembled Ethernet/IPv4 frame around an already-serialized L4 segment.
Bytes build_ip_frame(MacAddr eth_dst, MacAddr eth_src, Ipv4Addr ip_src,
                     Ipv4Addr ip_dst, std::uint8_t protocol, BytesView l4);

/// Parsed view of a received frame (headers by value, payload as offsets into
/// the original buffer — callers keep the frame alive while using it).
struct ParsedFrame {
  EthernetHeader eth;
  std::optional<Ipv4Header> ip;     // present when ethertype is IPv4
  BytesView l4;                     // transport segment (header + payload)
};

/// Parses a frame. Throws std::out_of_range / std::runtime_error on
/// malformed input (a simulator bug, not expected in operation).
ParsedFrame parse_frame(BytesView frame);

}  // namespace sttcp::net
