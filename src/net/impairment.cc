#include "net/impairment.h"

#include "net/headers.h"

namespace sttcp::net {

Impairment::Plan Impairment::plan(int direction, Frame frame) {
  Plan p;
  p.frame = std::move(frame);
  if (!cfg_.any()) return p;

  // One-way NIC loss: a single i.i.d. draw, only for directions it is armed
  // on (an unarmed direction consumes no randomness, so arming one side
  // leaves the other side's stream untouched).
  if (cfg_.oneway_drop[direction & 1] > 0.0 &&
      rng_.chance(cfg_.oneway_drop[direction & 1])) {
    ++stats_.oneway_dropped;
    p.drop = true;
    return p;
  }

  // Gilbert–Elliott: step the chain once per frame, then (maybe) lose the
  // frame if this direction is in the Bad state.
  bool& bad = burst_bad_[direction & 1];
  if (cfg_.burst_p_enter > 0.0 || bad) {
    if (!bad) {
      if (rng_.chance(cfg_.burst_p_enter)) bad = true;
    } else if (rng_.chance(cfg_.burst_p_exit)) {
      bad = false;
    }
    if (bad && rng_.chance(cfg_.burst_loss)) {
      ++stats_.burst_dropped;
      p.drop = true;
      return p;
    }
  }

  if (cfg_.corrupt_probability > 0.0 &&
      p.frame.size() > EthernetHeader::kSize &&
      rng_.chance(cfg_.corrupt_probability)) {
    corrupt(p.frame);
  }

  if (cfg_.duplicate_probability > 0.0 && rng_.chance(cfg_.duplicate_probability)) {
    ++stats_.duplicated;
    p.copies = 2;
  }

  if (cfg_.reorder_probability > 0.0 && rng_.chance(cfg_.reorder_probability)) {
    ++stats_.reordered;
    p.reordered = true;
    p.extra_delay = cfg_.reorder_delay;
  } else if (!cfg_.jitter_max.is_zero()) {
    p.extra_delay = sim::Duration::nanos(
        static_cast<std::int64_t>(rng_.below(static_cast<std::uint64_t>(cfg_.jitter_max.ns()))));
  }
  return p;
}

void Impairment::corrupt(Frame& frame) {
  // Copy-on-write single-bit flip past the Ethernet header: every other
  // holder of the original buffer keeps the clean bytes.
  Bytes bytes = frame.clone();
  const std::size_t off =
      EthernetHeader::kSize +
      static_cast<std::size_t>(rng_.below(bytes.size() - EthernetHeader::kSize));
  bytes[off] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
  frame = Frame(std::move(bytes));
  ++stats_.corrupted;
  if (corrupt_tap_) corrupt_tap_(frame, off);
}

}  // namespace sttcp::net
