// Adversarial link impairments: a deterministic per-link, per-direction
// engine modeling what real LANs do to frames beyond clean loss —
//
//  * Gilbert–Elliott burst loss: a two-state Markov chain (Good/Bad) stepped
//    once per frame; frames are lost with `burst_loss` probability while the
//    direction is in the Bad state, so losses arrive in bursts instead of
//    the uniform i.i.d. loss `Link::set_drop_probability` models.
//  * Bit corruption: exactly ONE bit is flipped, at a byte offset past the
//    Ethernet header. One flip always changes the 16-bit Internet checksum
//    (a ±2^k delta never cancels modulo 0xffff), so every corrupted IP/UDP/
//    TCP frame is provably detectable — which is what makes the
//    "corrupted segments are never ACKed" invariant exactly checkable.
//    Offsets inside the Ethernet header are excluded because real NICs drop
//    FCS-failing frames (equivalent to loss, which Gilbert–Elliott covers).
//    The flip is copy-on-write: the shared ref-counted buffer is cloned,
//    flipped, and rewrapped as a fresh Frame, so every other holder of the
//    original buffer (fan-out copies, the pcap tap) still sees clean bytes.
//  * Duplication: the frame is delivered twice (the second copy is a
//    refcount bump, not a byte copy) and occupies the wire twice.
//  * Bounded reordering: selected frames get `reorder_delay` of extra
//    latency and are exempted from the link's order-preserving clamp, so
//    they genuinely arrive behind their successors.
//  * Latency jitter: uniform extra delay in [0, jitter_max), clamped by the
//    link so jitter alone never reorders (reordering is its own knob).
//
// All randomness comes from an Rng forked from the scenario world, so an
// impaired run is a pure function of the seed. An idle engine (all knobs
// zero) draws nothing, keeping pre-existing seed-tuned tests bit-identical.
#pragma once

#include <cstdint>
#include <functional>

#include "net/frame.h"
#include "sim/random.h"
#include "sim/time.h"

namespace sttcp::net {

struct ImpairmentConfig {
  // Gilbert–Elliott burst loss.
  double burst_p_enter = 0.0;  // P(Good -> Bad), stepped per frame
  double burst_p_exit = 0.0;   // P(Bad -> Good), stepped per frame
  double burst_loss = 1.0;     // loss probability while Bad

  // One-way i.i.d. loss per direction — the "NIC whose receive (or transmit)
  // side silently drops a fraction of frames" grey failure. Unlike burst
  // loss this is direction-asymmetric by construction: Fault::SlowNic arms
  // exactly one of the two (index = Link port the frames travel TOWARD).
  double oneway_drop[2] = {0.0, 0.0};

  double corrupt_probability = 0.0;
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  sim::Duration reorder_delay;  // extra latency for reordered frames
  sim::Duration jitter_max;     // uniform [0, jitter_max) extra latency

  bool any() const {
    return burst_p_enter > 0.0 || oneway_drop[0] > 0.0 || oneway_drop[1] > 0.0 ||
           corrupt_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || !jitter_max.is_zero();
  }
};

class Impairment {
 public:
  struct Stats {
    std::uint64_t burst_dropped = 0;
    std::uint64_t oneway_dropped = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
  };

  /// Verdict for one frame offered to an impaired direction.
  struct Plan {
    bool drop = false;
    bool reordered = false;      // exempt from the order-preserving clamp
    int copies = 1;              // 2 when duplicated
    sim::Duration extra_delay;   // jitter or reorder delay
    Frame frame;                 // possibly a corrupted copy-on-write clone
  };

  /// Observes every corrupted frame (the post-flip bytes and the flipped
  /// byte's offset). The invariant checker uses this to account for exactly
  /// which wire bytes must be dropped by a receiver checksum.
  using CorruptTap = std::function<void(const Frame& frame, std::size_t offset)>;

  explicit Impairment(sim::Rng rng) : rng_(rng) {}

  /// Live-tunable knobs; fault builders set individual fields and zero them
  /// when their window closes.
  ImpairmentConfig& config() { return cfg_; }
  const ImpairmentConfig& config() const { return cfg_; }
  bool active() const { return cfg_.any(); }
  /// Forget Gilbert–Elliott state (call when a burst-loss window closes, so
  /// a direction stuck in Bad cannot outlive its fault).
  void reset_burst_state() { burst_bad_[0] = burst_bad_[1] = false; }

  void set_corrupt_tap(CorruptTap tap) { corrupt_tap_ = std::move(tap); }
  const Stats& stats() const { return stats_; }

  /// Decide the fate of one frame traveling in `direction` (0 or 1).
  /// Consumes no randomness when the engine is idle.
  Plan plan(int direction, Frame frame);

 private:
  void corrupt(Frame& frame);

  sim::Rng rng_;
  ImpairmentConfig cfg_;
  bool burst_bad_[2] = {false, false};
  CorruptTap corrupt_tap_;
  Stats stats_;
};

}  // namespace sttcp::net
