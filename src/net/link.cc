#include "net/link.h"

namespace sttcp::net {

Link::Link(sim::World& world, sim::Duration latency, std::uint64_t bandwidth_bps,
           double drop_probability)
    : world_(world),
      latency_(latency),
      bandwidth_bps_(bandwidth_bps),
      drop_probability_(drop_probability),
      rng_(world.rng().fork()) {
  for (int i = 0; i < 2; ++i) {
    ports_[i].link_ = this;
    ports_[i].index_ = i;
  }
}

void Link::bind_metrics(obs::MetricsRegistry& registry, const std::string& prefix) {
  queue_delay_us_ = &registry.histogram(prefix + ".queue_delay_us");
  in_flight_ = &registry.gauge(prefix + ".in_flight_frames");
}

Impairment& Link::impairment() {
  if (impairment_ == nullptr) {
    impairment_ = std::make_unique<Impairment>(world_.rng().fork());
  }
  return *impairment_;
}

void Link::transmit(int from_port, Frame frame) {
  ++stats_.frames_sent;
  if (failed_) {
    ++stats_.frames_dropped;
    return;
  }
  if (burst_drop_ > 0) {
    --burst_drop_;
    ++stats_.frames_dropped;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.chance(drop_probability_)) {
    ++stats_.frames_dropped;
    return;
  }
  if (drop_filter_ && drop_filter_(frame)) {
    ++stats_.frames_dropped;
    return;
  }

  // Adversarial impairments (burst loss / corruption / duplication /
  // reordering / jitter). The engine only exists once someone armed it.
  int copies = 1;
  sim::Duration extra = sim::Duration::zero();
  bool preserve_order = false;
  if (impairment_ != nullptr && impairment_->active()) {
    Impairment::Plan p = impairment_->plan(from_port, std::move(frame));
    if (p.drop) {
      ++stats_.frames_dropped;
      return;
    }
    frame = std::move(p.frame);
    copies = p.copies;
    extra = p.extra_delay;
    preserve_order = !p.reordered;
    if (copies > 1) stats_.frames_sent += copies - 1;
  }

  for (int c = 0; c < copies; ++c) {
    // Serialization: each direction is a FIFO pipe; a frame occupies the
    // transmitter for size/bandwidth, queued behind earlier frames. A
    // duplicated frame occupies the wire twice.
    sim::SimTime start = world_.now();
    if (busy_until_[from_port] > start) start = busy_until_[from_port];
    sim::Duration tx_time = sim::Duration::zero();
    if (bandwidth_bps_ != 0) {
      tx_time = sim::Duration::nanos(
          static_cast<std::int64_t>(frame.size()) * 8 * 1000000000 /
          static_cast<std::int64_t>(bandwidth_bps_));
    }
    busy_until_[from_port] = start + tx_time;
    sim::SimTime arrive = busy_until_[from_port] + latency_ + extra;
    if (preserve_order) {
      // Jitter must not reorder by itself (reordering is an explicit knob):
      // clamp the arrival to the latest one already scheduled. Reordered
      // frames skip the clamp AND leave it untouched, so the frames behind
      // them genuinely overtake.
      if (arrive < last_arrival_[from_port]) arrive = last_arrival_[from_port];
      last_arrival_[from_port] = arrive;
    }

    if (queue_delay_us_ != nullptr) {
      queue_delay_us_->record(
          static_cast<std::uint64_t>((start - world_.now()).us()));
    }
    if (in_flight_ != nullptr) in_flight_->set(++in_flight_count_);

    const int to_port = 1 - from_port;
    // The duplicate shares the buffer: copying the Frame bumps a refcount.
    Frame out = (c + 1 < copies) ? frame : std::move(frame);
    world_.loop().schedule_at(arrive, [this, to_port, frame = std::move(out)]() mutable {
      if (in_flight_ != nullptr) in_flight_->set(--in_flight_count_);
      // A failure while the frame was in flight kills it: a dead cable
      // delivers nothing.
      if (failed_) {
        ++stats_.frames_dropped;
        return;
      }
      FrameSink* sink = ports_[to_port].sink_;
      if (sink == nullptr) {
        ++stats_.frames_dropped;
        return;
      }
      ++stats_.frames_delivered;
      stats_.bytes_delivered += frame.size();
      sink->deliver_frame(std::move(frame));
    });
  }
}

}  // namespace sttcp::net
