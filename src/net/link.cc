#include "net/link.h"

namespace sttcp::net {

Link::Link(sim::World& world, sim::Duration latency, std::uint64_t bandwidth_bps,
           double drop_probability)
    : world_(world),
      latency_(latency),
      bandwidth_bps_(bandwidth_bps),
      drop_probability_(drop_probability),
      rng_(world.rng().fork()) {
  for (int i = 0; i < 2; ++i) {
    ports_[i].link_ = this;
    ports_[i].index_ = i;
  }
}

void Link::bind_metrics(obs::MetricsRegistry& registry, const std::string& prefix) {
  queue_delay_us_ = &registry.histogram(prefix + ".queue_delay_us");
  in_flight_ = &registry.gauge(prefix + ".in_flight_frames");
}

void Link::transmit(int from_port, Frame frame) {
  ++stats_.frames_sent;
  if (failed_) {
    ++stats_.frames_dropped;
    return;
  }
  if (burst_drop_ > 0) {
    --burst_drop_;
    ++stats_.frames_dropped;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.chance(drop_probability_)) {
    ++stats_.frames_dropped;
    return;
  }
  if (drop_filter_ && drop_filter_(frame)) {
    ++stats_.frames_dropped;
    return;
  }

  // Serialization: each direction is a FIFO pipe; a frame occupies the
  // transmitter for size/bandwidth, queued behind earlier frames.
  sim::SimTime start = world_.now();
  if (busy_until_[from_port] > start) start = busy_until_[from_port];
  sim::Duration tx_time = sim::Duration::zero();
  if (bandwidth_bps_ != 0) {
    tx_time = sim::Duration::nanos(
        static_cast<std::int64_t>(frame.size()) * 8 * 1000000000 /
        static_cast<std::int64_t>(bandwidth_bps_));
  }
  busy_until_[from_port] = start + tx_time;
  const sim::SimTime arrive = busy_until_[from_port] + latency_;

  if (queue_delay_us_ != nullptr) {
    queue_delay_us_->record(
        static_cast<std::uint64_t>((start - world_.now()).us()));
  }
  if (in_flight_ != nullptr) in_flight_->set(++in_flight_count_);

  const int to_port = 1 - from_port;
  world_.loop().schedule_at(arrive, [this, to_port, frame = std::move(frame)]() mutable {
    if (in_flight_ != nullptr) in_flight_->set(--in_flight_count_);
    // A failure while the frame was in flight kills it: a dead cable
    // delivers nothing.
    if (failed_) {
      ++stats_.frames_dropped;
      return;
    }
    FrameSink* sink = ports_[to_port].sink_;
    if (sink == nullptr) {
      ++stats_.frames_dropped;
      return;
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.size();
    sink->deliver_frame(std::move(frame));
  });
}

}  // namespace sttcp::net
