#include "net/router.h"

#include <algorithm>

#include "net/headers.h"

namespace sttcp::net {

namespace {

/// Network mask for a prefix length (0 -> 0, 32 -> all ones).
constexpr std::uint32_t prefix_mask(int len) {
  return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
}

}  // namespace

void RoutingTable::add(Route route) {
  // Keep descending by prefix length so lookup's first hit is the longest
  // match; equal lengths stay in insertion order (stable).
  const auto pos = std::find_if(routes_.begin(), routes_.end(), [&](const Route& r) {
    return r.prefix_len < route.prefix_len;
  });
  routes_.insert(pos, route);
}

const Route* RoutingTable::lookup(Ipv4Addr dst) const {
  for (const Route& r : routes_) {
    const std::uint32_t mask = prefix_mask(r.prefix_len);
    if ((dst.value() & mask) == (r.prefix.value() & mask)) return &r;
  }
  return nullptr;
}

Router::Router(sim::World& world, std::string name)
    : world_(world), name_(std::move(name)), log_(world.logger(name_)) {}

int Router::add_port(Link::Port& link_port, MacAddr mac, Ipv4Addr ip) {
  auto p = std::make_unique<RouterPort>();
  p->router = this;
  p->index = static_cast<int>(ports_.size());
  p->mac = mac;
  p->ip = ip;
  p->out = &link_port;
  link_port.set_sink(p.get());
  ports_.push_back(std::move(p));
  return ports_.back()->index;
}

void Router::add_route(Route route) { table_.add(route); }

void Router::add_connected(Ipv4Addr prefix, int prefix_len, int port) {
  table_.add({prefix, prefix_len, port, Ipv4Addr()});
}

void Router::arp_set(int port, Ipv4Addr ip, MacAddr mac) {
  ports_.at(static_cast<std::size_t>(port))->arp[ip] = mac;
}

void Router::crash() {
  if (!alive_) return;
  alive_ = false;
  log_.warn("router crashed");
  world_.trace().record(name_, "router_crash");
}

void Router::restore() {
  if (alive_) return;
  alive_ = true;
  log_.info("router restored");
  world_.trace().record(name_, "router_restore");
}

bool Router::has_ip(Ipv4Addr ip) const {
  for (const auto& p : ports_) {
    if (p->ip == ip) return true;
  }
  return false;
}

void Router::on_frame(int ingress, Frame frame) {
  if (!alive_) {
    ++stats_.dropped_down;
    return;
  }
  ParsedFrame p;
  try {
    p = parse_frame(frame.view());
  } catch (const std::exception& e) {
    log_.warn("malformed frame: ", e.what());
    return;
  }
  const RouterPort& in = *ports_[static_cast<std::size_t>(ingress)];
  // Routers only process frames addressed to them; a switch may still flood
  // unknown unicast (or multicast) our way.
  if (p.eth.dst != in.mac && !p.eth.dst.is_broadcast()) return;
  if (!p.ip.has_value()) {
    ++stats_.not_ip;
    return;
  }
  const Ipv4Header& ip = *p.ip;

  if (has_ip(ip.dst)) {
    deliver_local(ingress, frame);
    return;
  }

  // TTL check happens before the route lookup, as in a real forwarding path.
  // No ICMP time-exceeded is generated; the drop is accounted instead.
  if (ip.ttl <= 1) {
    ++stats_.ttl_expired;
    world_.trace().record(name_, "ttl_expired", ip.dst.str());
    return;
  }
  const Route* route = table_.lookup(ip.dst);
  if (route == nullptr) {
    ++stats_.no_route;
    log_.debug("no route to ", ip.dst.str());
    return;
  }

  Ipv4Header fwd = ip;
  --fwd.ttl;
  Bytes out;
  out.reserve(EthernetHeader::kSize + Ipv4Header::kSize + p.l4.size());
  ByteWriter w(out);
  const RouterPort& egress = *ports_[static_cast<std::size_t>(route->port)];
  const Ipv4Addr arp_for = route->next_hop.is_zero() ? ip.dst : route->next_hop;
  const auto a = egress.arp.find(arp_for);
  if (a == egress.arp.end()) {
    ++stats_.arp_miss;
    log_.warn("no ARP entry for ", arp_for.str(), " on port ", route->port);
    return;
  }
  EthernetHeader{a->second, egress.mac, kEtherTypeIpv4}.write(w);
  fwd.write(w, p.l4.size());
  w.bytes(p.l4);
  ++stats_.forwarded;
  egress.out->send(Frame(std::move(out)));
}

void Router::deliver_local(int ingress, const Frame& frame) {
  ++stats_.delivered_local;
  ParsedFrame p = parse_frame(frame.view());
  const Ipv4Header& ip = *p.ip;
  if (ip.protocol != kIpProtoIcmp) return;  // only ICMP echo is terminated here
  const auto echo = IcmpEcho::parse(p.l4);
  if (!echo.has_value() || echo->type != IcmpType::kEchoRequest) return;

  // Answer from the pinged interface IP, routed back toward the source. The
  // common case (ST-TCP gateway arbitration) is a same-subnet ping, where
  // the route resolves to the ingress port.
  const Route* route = table_.lookup(ip.src);
  if (route == nullptr) {
    ++stats_.no_route;
    return;
  }
  const RouterPort& egress = *ports_[static_cast<std::size_t>(route->port)];
  const Ipv4Addr arp_for = route->next_hop.is_zero() ? ip.src : route->next_hop;
  const auto a = egress.arp.find(arp_for);
  if (a == egress.arp.end()) {
    ++stats_.arp_miss;
    return;
  }
  const IcmpEcho reply{IcmpType::kEchoReply, echo->id, echo->seq};
  Bytes out = build_ip_frame(a->second, egress.mac, ip.dst, ip.src, kIpProtoIcmp,
                             reply.serialize());
  egress.out->send(Frame(std::move(out)));
  (void)ingress;
}

}  // namespace sttcp::net
