#include "net/host.h"

#include <algorithm>

#include "net/checksum.h"

namespace sttcp::net {

namespace {
/// Ethertype IPv4 + protocol TCP, straight off the wire bytes — cheap enough
/// to ask about every frame while a grey fault is active, never consulted
/// otherwise.
bool is_tcp_frame(const Frame& f) {
  return f.size() >= EthernetHeader::kSize + Ipv4Header::kSize &&
         f[12] == 0x08 && f[13] == 0x00 && f[EthernetHeader::kSize + 9] == 6;
}
}  // namespace

Host::Host(sim::World& world, std::string name)
    : world_(world), name_(std::move(name)), log_(world.logger(name_)),
      cpu_domain_(world.loop()) {}

Host::~Host() = default;

Nic& Host::add_nic(MacAddr mac) {
  auto n = std::make_unique<Nic>(world_, name_ + "/nic" + std::to_string(nics_.size()),
                                 mac);
  n->set_host_sink([this](Frame frame) { on_nic_frame(std::move(frame)); });
  nics_.push_back(std::move(n));
  return *nics_.back();
}

void Host::add_ip(Ipv4Addr ip) {
  if (!has_ip(ip)) local_ips_.push_back(ip);
}

bool Host::has_ip(Ipv4Addr ip) const {
  return std::find(local_ips_.begin(), local_ips_.end(), ip) != local_ips_.end();
}

void Host::arp_set(Ipv4Addr ip, MacAddr mac) { arp_[ip] = mac; }

void Host::crash(const std::string& reason) {
  if (!alive_) return;
  alive_ = false;
  log_.warn("crashed: ", reason);
  world_.trace().record(name_, "host_crash", reason);
  for (auto& n : nics_) n->fail();
  for (auto& [id, p] : pending_pings_) world_.loop().cancel(p.timeout_timer);
  pending_pings_.clear();
  cpu_domain_.clear();  // stalled queued work dies with the machine
  for (auto& hook : crash_hooks_) hook();
}

void Host::power_on() {
  if (alive_) return;
  alive_ = true;
  cpu_busy_until_ = sim::SimTime();
  cpu_domain_.clear();  // a fresh boot is healthy: no lag profile survives
  pending_pings_.clear();
  log_.info("powered on");
  world_.trace().record(name_, "host_boot");
  for (auto& n : nics_) n->heal();
  for (auto& hook : boot_hooks_) hook();
}

bool Host::send_ip(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol, BytesView l4) {
  if (!alive_ || nics_.empty()) return false;
  auto a = arp_.find(dst);
  MacAddr dst_mac;
  if (a != arp_.end()) {
    dst_mac = a->second;
  } else if (has_gateway_) {
    dst_mac = gateway_mac_;
  } else {
    ++stats_.arp_misses;
    log_.warn("no ARP entry for ", dst.str());
    return false;
  }
  Nic& out = *nics_.front();
  Bytes frame = build_ip_frame(dst_mac, out.mac(), src, dst, protocol, l4);
  ++stats_.packets_out;
  return out.send(std::move(frame));
}

void Host::udp_bind(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::udp_unbind(std::uint16_t port) { udp_handlers_.erase(port); }

bool Host::udp_send(Ipv4Addr src, std::uint16_t src_port, Ipv4Addr dst,
                    std::uint16_t dst_port, BytesView payload) {
  if (!alive_ || nics_.empty()) return false;
  auto a = arp_.find(dst);
  MacAddr dst_mac;
  if (a != arp_.end()) {
    dst_mac = a->second;
  } else if (has_gateway_) {
    dst_mac = gateway_mac_;
  } else {
    ++stats_.arp_misses;
    return false;
  }
  Nic& out = *nics_.front();
  Bytes frame =
      build_udp_frame(dst_mac, out.mac(), src, dst, src_port, dst_port, payload);
  ++stats_.packets_out;
  return out.send(std::move(frame));
}

void Host::ping(Ipv4Addr src, Ipv4Addr dst, sim::Duration timeout, PingCallback cb) {
  if (!alive_) {
    return;  // a dead host issues nothing; callers are dead too
  }
  const std::uint16_t id = next_ping_id_++;
  IcmpEcho echo{IcmpType::kEchoRequest, id, 1};
  const bool sent = send_ip(src, dst, kIpProtoIcmp, echo.serialize());
  PendingPing p;
  p.cb = std::move(cb);
  p.sent_at = world_.now();
  p.timeout_timer = world_.loop().schedule_after(timeout, [this, id] {
    auto it = pending_pings_.find(id);
    if (it == pending_pings_.end()) return;
    PingCallback cb = std::move(it->second.cb);
    pending_pings_.erase(it);
    cb(false, sim::Duration::zero());
  });
  pending_pings_.emplace(id, std::move(p));
  if (!sent) {
    // The request never left (NIC down); the timeout will report failure.
    log_.debug("ping to ", dst.str(), " could not be transmitted");
  }
}

void Host::set_l4_handler(std::uint8_t protocol, L4Handler handler) {
  l4_handlers_[protocol] = std::move(handler);
}

void Host::on_nic_frame(Frame frame) {
  if (!alive_) return;
  // Grey-failure CPU stall: while the domain is lagged, TCP frames wait for
  // the CPU like the rest of the data path (they surface, in arrival order,
  // when the stall window ends). UDP and ICMP stay inline: the heartbeat
  // daemon runs at real-time priority (paper §3), which is exactly what
  // makes a stalled host *grey* — it keeps heartbeating while the progress
  // counters carried in those heartbeats freeze.
  if (cpu_domain_.lagged() && is_tcp_frame(frame)) {
    cpu_domain_.schedule_at(world_.now(), [this, frame = std::move(frame)] {
      if (alive_) dispatch_frame(frame);
    });
    return;
  }
  dispatch_frame(std::move(frame));
}

void Host::dispatch_frame(Frame frame) {
  if (cpu_packet_time_.is_zero()) {
    process_frame(frame);
    return;
  }
  // Model a busy CPU: packets are processed serially, each costing
  // cpu_packet_time_ — a slower host falls behind under load. Queueing the
  // Frame keeps the shared buffer alive without copying it.
  sim::SimTime start = world_.now();
  if (cpu_busy_until_ > start) start = cpu_busy_until_;
  cpu_busy_until_ = start + cpu_packet_time_;
  world_.loop().schedule_at(cpu_busy_until_, [this, frame = std::move(frame)] {
    if (alive_) process_frame(frame);
  });
}

void Host::process_frame(const Frame& frame) {
  if (rx_tap_) rx_tap_(frame);
  ParsedFrame p;
  try {
    p = parse_frame(frame.view());
  } catch (const std::exception& e) {
    log_.warn("malformed frame: ", e.what());
    return;
  }
  if (!p.ip.has_value()) return;  // only IPv4 is modeled
  const Ipv4Header& ip = *p.ip;
  if (!has_ip(ip.dst)) {
    ++stats_.not_local;
    return;
  }
  ++stats_.packets_in;
  switch (ip.protocol) {
    case kIpProtoIcmp:
      handle_icmp(ip, p.l4);
      break;
    case kIpProtoUdp:
      handle_udp(ip, p.l4);
      break;
    default: {
      auto it = l4_handlers_.find(ip.protocol);
      if (it != l4_handlers_.end()) it->second(ip, p.l4);
      break;
    }
  }
}

void Host::handle_icmp(const Ipv4Header& ip, BytesView l4) {
  auto echo = IcmpEcho::parse(l4);
  if (!echo.has_value()) return;
  if (echo->type == IcmpType::kEchoRequest) {
    IcmpEcho reply{IcmpType::kEchoReply, echo->id, echo->seq};
    send_ip(ip.dst, ip.src, kIpProtoIcmp, reply.serialize());
    return;
  }
  // Echo reply: complete a pending ping.
  auto it = pending_pings_.find(echo->id);
  if (it == pending_pings_.end()) return;
  world_.loop().cancel(it->second.timeout_timer);
  PingCallback cb = std::move(it->second.cb);
  const sim::Duration rtt = world_.now() - it->second.sent_at;
  pending_pings_.erase(it);
  cb(true, rtt);
}

void Host::handle_udp(const Ipv4Header& ip, BytesView l4) {
  ByteReader r(l4);
  UdpHeader uh;
  try {
    uh = UdpHeader::read(r);
  } catch (const std::exception&) {
    return;
  }
  if (uh.checksum != 0) {
    if (transport_checksum(ip.src, ip.dst, kIpProtoUdp, l4) != 0) {
      ++stats_.udp_checksum_drops;
      log_.warn("bad UDP checksum from ", ip.src.str());
      return;
    }
  }
  auto it = udp_handlers_.find(uh.dst_port);
  if (it == udp_handlers_.end()) return;
  it->second(ip.src, uh.src_port, r.rest());
}

PowerController::PowerController(sim::World& world)
    : world_(world), log_(world.logger("power")) {}

void PowerController::register_host(Host& host) { hosts_[host.name()] = &host; }

bool PowerController::power_off(const std::string& name) {
  if (!functional_) {
    log_.warn("power controller not functional; cannot power off ", name);
    return false;
  }
  auto it = hosts_.find(name);
  if (it == hosts_.end()) return false;
  ++power_off_count_;
  world_.trace().record("power", "power_off", name);
  it->second->crash("powered off (STONITH)");
  return true;
}

}  // namespace sttcp::net
