#include "net/checksum.h"

#include <bit>
#include <cstring>

namespace sttcp::net {

namespace {

/// 64-bit one's-complement addition: the wraparound re-enters at bit 0
/// (end-around carry), which keeps the value congruent mod 2^16 - 1 — the
/// property RFC 1071 folding relies on.
inline std::uint64_t oc_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s + (s < b);
}

}  // namespace

void ChecksumAccumulator::add(BytesView data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t s = sum_;
  if (odd_ && n != 0) {
    // Pair the dangling high byte with this span's first byte.
    s += *p++;
    --n;
    odd_ = false;
  }
  // Bulk path: one's-complement-sum the span 8 bytes per load in NATIVE word
  // order, four independent lanes for ILP (the end-around carry would
  // otherwise serialize every add). The folded 16-bit result is then
  // byte-swapped into the accumulator's big-endian word space — legal
  // because a one's-complement sum is byte-order independent (RFC 1071
  // §2.B): swapping every input word swaps the sum.
  if (n >= 8) {
    std::uint64_t l0 = 0, l1 = 0, l2 = 0, l3 = 0;
    while (n >= 32) {
      std::uint64_t x0, x1, x2, x3;
      std::memcpy(&x0, p, 8);
      std::memcpy(&x1, p + 8, 8);
      std::memcpy(&x2, p + 16, 8);
      std::memcpy(&x3, p + 24, 8);
      l0 = oc_add(l0, x0);
      l1 = oc_add(l1, x1);
      l2 = oc_add(l2, x2);
      l3 = oc_add(l3, x3);
      p += 32;
      n -= 32;
    }
    std::uint64_t s64 = oc_add(oc_add(l0, l1), oc_add(l2, l3));
    while (n >= 8) {
      std::uint64_t x;
      std::memcpy(&x, p, 8);
      s64 = oc_add(s64, x);
      p += 8;
      n -= 8;
    }
    std::uint64_t f = (s64 & 0xffffffffull) + (s64 >> 32);
    f = (f & 0xffff) + (f >> 16);
    f = (f & 0xffff) + (f >> 16);
    f = (f & 0xffff) + (f >> 16);
    if constexpr (std::endian::native == std::endian::little) {
      f = ((f & 0xff) << 8) | (f >> 8);
    }
    s += f;
  }
  while (n >= 2) {
    s += (std::uint64_t{p[0]} << 8) | p[1];
    p += 2;
    n -= 2;
  }
  if (n != 0) {
    s += std::uint64_t{*p} << 8;
    odd_ = true;
  }
  sum_ = s;
}

std::uint16_t ChecksumAccumulator::finish() const {
  std::uint64_t s = sum_;
  s = (s & 0xffffffffULL) + (s >> 32);
  s = (s & 0xffff) + (s >> 16);
  s = (s & 0xffff) + (s >> 16);
  s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s);
}

std::uint16_t internet_checksum(BytesView data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 BytesView segment) {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(protocol);
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace sttcp::net
