#include "net/checksum.h"

namespace sttcp::net {

void ChecksumAccumulator::add(BytesView data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Pair the dangling byte with this span's first byte.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += std::uint32_t{data[i]} << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v)};
  add(BytesView(b, 2));
}

std::uint16_t ChecksumAccumulator::finish() const {
  std::uint32_t s = sum_;
  while ((s >> 16) != 0) s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s);
}

std::uint16_t internet_checksum(BytesView data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 BytesView segment) {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(protocol);
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace sttcp::net
