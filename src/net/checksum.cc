#include "net/checksum.h"

namespace sttcp::net {

void ChecksumAccumulator::add(BytesView data) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t s = sum_;
  if (odd_ && n != 0) {
    // Pair the dangling high byte with this span's first byte.
    s += *p++;
    --n;
    odd_ = false;
  }
  // The pair loop is kept in this exact shape because the compiler
  // auto-vectorizes it (SIMD widening adds); a manually unrolled 64-bit
  // version measures ~2.4x slower at -O3. The 32-bit lane accumulator is
  // spilled into the 64-bit sum every 64 KiB, long before it can overflow
  // (32 Ki words of 0xffff stay under 2^31).
  while (n >= 2) {
    const std::size_t chunk = n < 65536 ? (n & ~std::size_t{1}) : 65536;
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i + 1 < chunk; i += 2) {
      acc += (std::uint32_t{p[i]} << 8) | p[i + 1];
    }
    s += acc;
    p += chunk;
    n -= chunk;
  }
  if (n != 0) {
    s += std::uint64_t{*p} << 8;
    odd_ = true;
  }
  sum_ = s;
}

std::uint16_t ChecksumAccumulator::finish() const {
  std::uint64_t s = sum_;
  s = (s & 0xffffffffULL) + (s >> 32);
  s = (s & 0xffff) + (s >> 16);
  s = (s & 0xffff) + (s >> 16);
  s = (s & 0xffff) + (s >> 16);
  return static_cast<std::uint16_t>(~s);
}

std::uint16_t internet_checksum(BytesView data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

std::uint16_t transport_checksum(Ipv4Addr src, Ipv4Addr dst, std::uint8_t protocol,
                                 BytesView segment) {
  ChecksumAccumulator acc;
  acc.add_u32(src.value());
  acc.add_u32(dst.value());
  acc.add_u16(protocol);
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace sttcp::net
