#include "net/shard_link.h"

namespace sttcp::net {

ShardChannel::ShardChannel(sim::World& world_a, sim::World& world_b,
                           Link* link_a, Link* link_b, sim::Duration latency)
    : world_a_(world_a), world_b_(world_b), link_a_(link_a), link_b_(link_b) {
  sink_to_b_.world = &world_a_;
  sink_to_b_.queue = &to_b_;
  sink_to_b_.latency = latency;
  link_a_->port(1).set_sink(&sink_to_b_);
  sink_to_a_.world = &world_b_;
  sink_to_a_.queue = &to_a_;
  sink_to_a_.latency = latency;
  link_b_->port(1).set_sink(&sink_to_a_);
}

void ShardChannel::drain(sim::SpscQueue<Timestamped>& queue, sim::World& world,
                         Link::Port& deliver_port, sim::SimTime horizon) {
  while (Timestamped* head = queue.front()) {
    if (head->at >= horizon) break;  // monotone queue: nothing earlier behind
    FrameSink* sink = deliver_port.sink();
    if (sink != nullptr) {
      world.loop().schedule_at(
          head->at, [sink, frame = std::move(head->frame)]() mutable {
            sink->deliver_frame(std::move(frame));
          });
    }
    queue.pop();
  }
}

void ShardChannel::drain_into_a(sim::SimTime horizon) {
  drain(to_a_, world_a_, link_a_->port(0), horizon);
}

void ShardChannel::drain_into_b(sim::SimTime horizon) {
  drain(to_b_, world_b_, link_b_->port(0), horizon);
}

}  // namespace sttcp::net
