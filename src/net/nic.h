// Network interface card model.
//
// A Nic sits between a Host and one side of a Link. It filters received
// frames by destination MAC (own unicast address, broadcast, or a subscribed
// multicast group — the mechanism ST-TCP uses to tap client traffic on the
// backup), and can fail/heal independently of its host, which is exactly the
// "NIC or cable failure" row of the paper's Table 1.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>

#include "net/addr.h"
#include "net/link.h"
#include "sim/world.h"

namespace sttcp::net {

class Nic final : public FrameSink {
 public:
  struct Stats {
    std::uint64_t tx_frames = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t rx_frames = 0;     // accepted and handed to the host
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_filtered = 0;   // wrong destination MAC
    std::uint64_t dropped_down = 0;  // tx or rx attempted while failed
  };

  using HostSink = std::function<void(Frame frame)>;

  Nic(sim::World& world, std::string name, MacAddr mac);

  /// Bind this NIC to one side of a link.
  void attach(Link::Port& port);

  /// Where accepted frames go (the owning Host's input path).
  void set_host_sink(HostSink sink) { host_sink_ = std::move(sink); }

  MacAddr mac() const { return mac_; }
  const std::string& name() const { return name_; }

  /// Join an Ethernet multicast group (e.g. ST-TCP's multiEA).
  void subscribe_multicast(MacAddr group) { multicast_.insert(group); }
  void unsubscribe_multicast(MacAddr group) { multicast_.erase(group); }

  /// Accept every frame regardless of destination (diagnostic taps).
  void set_promiscuous(bool on) { promiscuous_ = on; }

  /// Transmit a frame. Returns false (and counts a drop) when failed or
  /// unattached. A Bytes argument converts implicitly — that conversion is
  /// the single per-frame buffer allocation; every hop after it shares it.
  bool send(Frame frame);

  void fail() { failed_ = true; }
  void heal() { failed_ = false; }
  bool failed() const { return failed_; }

  const Stats& stats() const { return stats_; }

  // FrameSink: frame arriving from the link.
  void deliver_frame(Frame frame) override;

 private:
  sim::World& world_;
  std::string name_;
  MacAddr mac_;
  Link::Port* port_ = nullptr;
  HostSink host_sink_;
  std::unordered_set<MacAddr> multicast_;
  bool promiscuous_ = false;
  bool failed_ = false;
  Stats stats_;
};

}  // namespace sttcp::net
