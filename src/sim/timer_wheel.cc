#include "sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace sttcp::sim {

TimerWheel::TimerWheel() = default;

void TimerWheel::push(WheelEntry e) {
  ++size_;
  place(std::move(e));
}

void TimerWheel::place(WheelEntry e) {
  const std::int64_t tick = tick_of(e.at);
  if (tick <= cursor_) {
    // Current granule (or the sub-granule remainder of it): ordered by the
    // explicit (at, seq) heap.
    due_.push_back(std::move(e));
    std::push_heap(due_.begin(), due_.end(), DueOrder{});
    return;
  }
  // Level = the highest 6-bit group where tick and cursor differ. All higher
  // groups agree, so the slot is in the cursor's current frame at this
  // level; tick > cursor_ makes its index strictly ahead of the cursor's.
  // When the cursor later enters this slot, re-placed entries differ from it
  // only in lower groups — every cascade strictly decreases the level.
  const std::uint64_t diff =
      static_cast<std::uint64_t>(tick) ^ static_cast<std::uint64_t>(cursor_);
  const int level = (63 - std::countl_zero(diff)) / kLevelBits;
  const auto index = static_cast<int>(
      (static_cast<std::uint64_t>(tick) >> (kLevelBits * level)) & kSlotMask);
  levels_[level][index].push_back(std::move(e));
  occupancy_[level] |= std::uint64_t{1} << index;
}

std::int64_t TimerWheel::slot_floor_tick(int level, int index) const {
  const int shift = kLevelBits * level;
  const std::int64_t frame = cursor_ >> (shift + kLevelBits);
  const std::int64_t start = ((frame << kLevelBits) | index) << shift;
  // The slot containing the cursor starts before it, but every entry obeys
  // tick >= cursor_ (push clamps to now).
  return start > cursor_ ? start : cursor_;
}

void TimerWheel::fill_due() {
  while (due_.empty()) {
    int best_level = -1;
    int best_index = -1;
    std::int64_t best_tick = std::numeric_limits<std::int64_t>::max();
    for (int level = 0; level < kLevels; ++level) {
      const std::uint64_t occ = occupancy_[level];
      if (occ == 0) continue;
      // Occupied slots all sit at or ahead of the cursor's index in the
      // current frame (place() guarantees it), so the first set bit from the
      // cursor's position is this level's earliest slot.
      const auto c = static_cast<int>((cursor_ >> (kLevelBits * level)) & kSlotMask);
      const std::uint64_t upper = occ >> c;
      const int index = upper != 0 ? c + std::countr_zero(upper)
                                   : std::countr_zero(occ);
      const std::int64_t floor = slot_floor_tick(level, index);
      if (floor < best_tick) {
        best_tick = floor;
        best_level = level;
        best_index = index;
      }
    }
    if (best_level < 0) return;  // nothing anywhere (size_ == 0)
    std::vector<WheelEntry>& bucket = levels_[best_level][best_index];
    occupancy_[best_level] &= ~(std::uint64_t{1} << best_index);
    cursor_ = best_tick;
    if (best_level == 0) {
      // One granule of entries: order them by (at, seq).
      due_.swap(bucket);
      std::make_heap(due_.begin(), due_.end(), DueOrder{});
    } else {
      // Cascade: redistribute into strictly lower levels.
      std::vector<WheelEntry> moved;
      moved.swap(bucket);
      for (WheelEntry& e : moved) place(std::move(e));
    }
  }
}

const WheelEntry& TimerWheel::peek_min() {
  fill_due();
  return due_.front();
}

WheelEntry TimerWheel::pop_min() {
  fill_due();
  std::pop_heap(due_.begin(), due_.end(), DueOrder{});
  WheelEntry e = std::move(due_.back());
  due_.pop_back();
  --size_;
  return e;
}

void TimerWheel::sweep(const std::function<bool(const WheelEntry&)>& stale,
                       const std::function<void(const WheelEntry&)>& reclaim) {
  const auto filter = [&](std::vector<WheelEntry>& v, bool heap) {
    std::size_t kept = 0;
    for (WheelEntry& e : v) {
      if (stale(e)) {
        reclaim(e);
        --size_;
      } else {
        v[kept++] = std::move(e);
      }
    }
    const bool changed = kept != v.size();
    v.resize(kept);
    if (heap && changed) std::make_heap(v.begin(), v.end(), DueOrder{});
  };
  filter(due_, /*heap=*/true);
  for (int level = 0; level < kLevels; ++level) {
    if (occupancy_[level] == 0) continue;
    for (std::uint64_t occ = occupancy_[level]; occ != 0; occ &= occ - 1) {
      const int index = std::countr_zero(occ);
      filter(levels_[level][index], /*heap=*/false);
      if (levels_[level][index].empty()) {
        occupancy_[level] &= ~(std::uint64_t{1} << index);
      }
    }
  }
}

}  // namespace sttcp::sim
