#include "sim/time.h"

#include <cinttypes>
#include <cstdio>

namespace sttcp::sim {

std::string Duration::str() const {
  char buf[64];
  const std::int64_t a = ns_ < 0 ? -ns_ : ns_;
  if (a == 0) {
    return "0s";
  }
  if (a < 1000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns_);
  } else if (a < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns_) / 1e3);
  } else if (a < 1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns_) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns_) / 1e9);
  }
  return buf;
}

std::string SimTime::str() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6fs", static_cast<double>(ns_) / 1e9);
  return buf;
}

}  // namespace sttcp::sim
