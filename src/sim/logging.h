// Sim-time-stamped logging.
//
// A LogSink is shared by a whole simulated world; each component creates a
// cheap Logger facade tagged with its name. Logging below the sink's level
// costs one branch, so hot paths may log freely at kTrace/kDebug.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/strings.h"
#include "sim/time.h"

namespace sttcp::sim {

class EventLoop;

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* to_string(LogLevel level);

/// Owns the output stream and the global level threshold.
class LogSink {
 public:
  /// `loop` supplies timestamps; `out` defaults to stderr. Does not own `out`.
  explicit LogSink(const EventLoop& loop, std::ostream* out = nullptr,
                   LogLevel level = LogLevel::kWarn);

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  bool enabled(LogLevel level) const { return level >= level_; }
  void write(LogLevel level, const std::string& component, const std::string& msg);

 private:
  const EventLoop& loop_;
  std::ostream* out_;
  LogLevel level_;
};

/// Per-component facade. Copyable; holds a pointer to the shared sink.
/// A default-constructed Logger discards everything (useful in unit tests of
/// leaf classes that do not care about logging).
class Logger {
 public:
  Logger() = default;
  Logger(LogSink* sink, std::string component)
      : sink_(sink), component_(std::move(component)) {}

  /// Derive a logger for a sub-component: "primary" -> "primary/tcp".
  Logger child(const std::string& suffix) const {
    return Logger(sink_, component_.empty() ? suffix : component_ + "/" + suffix);
  }

  bool enabled(LogLevel level) const { return sink_ != nullptr && sink_->enabled(level); }

  template <typename... Args>
  void log(LogLevel level, const Args&... args) const {
    if (enabled(level)) sink_->write(level, component_, cat(args...));
  }
  template <typename... Args>
  void trace(const Args&... args) const { log(LogLevel::kTrace, args...); }
  template <typename... Args>
  void debug(const Args&... args) const { log(LogLevel::kDebug, args...); }
  template <typename... Args>
  void info(const Args&... args) const { log(LogLevel::kInfo, args...); }
  template <typename... Args>
  void warn(const Args&... args) const { log(LogLevel::kWarn, args...); }
  template <typename... Args>
  void error(const Args&... args) const { log(LogLevel::kError, args...); }

  const std::string& component() const { return component_; }

 private:
  LogSink* sink_ = nullptr;
  std::string component_;
};

}  // namespace sttcp::sim
