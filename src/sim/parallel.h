// Conservative parallel discrete-event executor.
//
// Runs N independent EventLoops ("shards") side by side, each advancing
// through fixed windows of `lookahead` virtual time with one barrier per
// window:
//
//   window k = [T0 + k*L, T0 + (k+1)*L)
//
//   per window, every shard:  1. drain  — inject cross-shard arrivals with
//                                         timestamp < window end;
//                             2. run    — execute its own events with
//                                         timestamp < window end
//                                         (EventLoop::run_before);
//                             3. barrier.
//
// Safety (why one barrier per window suffices): every cross-shard message
// sent at time s arrives no earlier than s + L (the lookahead is the minimum
// cross-shard link latency). A message arriving inside window k+1 therefore
// left its producer strictly before the end of window k — i.e. before the
// producer passed barrier k — so the consumer's drain at the start of window
// k+1 observes it. No shard can receive an event in its past.
//
// Determinism (why thread count cannot change results): window boundaries
// are a pure function of (T0, L, t) — never of thread timing — so each
// shard executes exactly the same event prefix per window regardless of how
// windows interleave across threads, and each drain injects exactly the same
// arrivals in the same queue order. Within a shard the EventLoop's strict
// (timestamp, seq) order does the rest: a 1-thread run and an N-thread run
// are bit-identical, which determinism_test enforces.
//
// The final window is inclusive (EventLoop::run_until), matching the
// classic serial `run_for` contract at the call boundary; arrivals stamped
// exactly at the final boundary whose producer ran inside the last window
// stay queued and are injected by the next call's first drain (still at
// their correct timestamp — the clock is exactly there).
#pragma once

#include <functional>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace sttcp::sim {

class ParallelExecutor {
 public:
  struct Shard {
    EventLoop* loop = nullptr;
    /// Inject every queued cross-shard arrival with timestamp < horizon into
    /// `loop` (in fixed channel order). Called once per window on the thread
    /// that owns the shard for that window; null when the shard has no
    /// inbound channels.
    std::function<void(SimTime horizon)> drain;
  };

  /// `lookahead` must be positive and no larger than the minimum cross-shard
  /// link latency. `threads` is clamped to [1, shards.size()]; shard i is
  /// owned by thread (i % threads) for the whole run.
  ParallelExecutor(std::vector<Shard> shards, Duration lookahead, int threads);

  /// Advance every shard to exactly `t`. All loops must share the same
  /// current time (the executor keeps them in lockstep between calls).
  void run_until(SimTime t);

  int threads() const { return threads_; }
  Duration lookahead() const { return lookahead_; }

 private:
  void worker(int index, SimTime start, SimTime t, void* barrier);

  std::vector<Shard> shards_;
  Duration lookahead_;
  int threads_;
};

}  // namespace sttcp::sim
