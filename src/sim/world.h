// World: the shared context every simulated component hangs off.
//
// Bundles the event loop, RNG root, log sink, and trace recorder so
// constructors take one `World&` instead of four references.
#pragma once

#include <ostream>

#include "sim/event_loop.h"
#include "sim/logging.h"
#include "sim/random.h"
#include "sim/trace.h"

namespace sttcp::obs {
class MetricsRegistry;
}  // namespace sttcp::obs

namespace sttcp::sim {

class World {
 public:
  explicit World(std::uint64_t seed = 1, std::ostream* log_out = nullptr,
                 LogLevel log_level = LogLevel::kWarn)
      : rng_(seed), sink_(loop_, log_out, log_level), trace_(loop_) {}

  EventLoop& loop() { return loop_; }
  const EventLoop& loop() const { return loop_; }
  SimTime now() const { return loop_.now(); }

  Rng& rng() { return rng_; }
  LogSink& sink() { return sink_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  Logger logger(const std::string& component) { return Logger(&sink_, component); }

  /// Optional telemetry (src/obs/). Null by default: components bind their
  /// instruments only when a registry is attached, so an un-instrumented
  /// world pays nothing. Attach BEFORE constructing instrumented components.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  EventLoop loop_;
  Rng rng_;
  LogSink sink_;
  TraceRecorder trace_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace sttcp::sim
