// Per-host virtual-clock skew: the grey-failure primitive.
//
// A ClockDomain sits between one host's CPU-bound components (TCP timers,
// deferred frame processing) and the world's single EventLoop. While the
// domain is healthy it is a pure passthrough — schedule/cancel go straight
// to the loop and return the loop's own TimerIds, so a world with no grey
// faults armed is bit-identical to one built before this file existed.
//
// When a LagProfile is activated, the domain models a host whose event loop
// has fallen behind: every callback scheduled through the domain is pushed
// out of the profile's stall windows to the next instant the host's CPU is
// running again. The rest of the world keeps the shared clock; only this
// host's work slides. The profile is a pure function of (anchor, time), so
// the deferral pattern is deterministic and bit-identical under replay.
//
// What deliberately does NOT go through a domain: the ST-TCP endpoint's
// heartbeat/ping timers and UDP/ICMP receive processing. The 2005 paper runs
// the heartbeat daemon at real-time priority precisely so that a loaded or
// stalled server keeps heartbeating — which is what makes grey failures grey:
// the peer keeps hearing "alive" while the per-connection progress counters
// in those same heartbeats freeze. Conviction then has to come from counter
// stagnation (src/sttcp/lag.h), not heartbeat silence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace sttcp::sim {

/// A deterministic CPU-availability schedule, anchored at activation time:
/// repeat [run_for healthy, stall_for stalled] `cycles` times (0 = forever).
/// With run_for == 0 the host stalls immediately; with cycles == 0 on top of
/// that, it never runs again (wedged-but-powered, the AppHang-adjacent case).
struct LagProfile {
  Duration run_for = Duration::zero();
  Duration stall_for = Duration::zero();
  std::uint64_t cycles = 1;

  static LagProfile none() { return LagProfile{Duration::zero(), Duration::zero(), 1}; }
  /// One solid stall of `d` starting at activation.
  static LagProfile stall(Duration d) { return LagProfile{Duration::zero(), d, 1}; }
  /// Duty-cycled stutter: run `run`, stall `stall`, `cycles` times (0 = forever).
  static LagProfile pulses(Duration run, Duration stall, std::uint64_t cycles = 0) {
    return LagProfile{run, stall, cycles};
  }

  bool active() const { return stall_for > Duration::zero(); }

  /// Earliest instant >= t at which the CPU is running, for a profile
  /// anchored at `anchor`. Returns t unchanged outside every stall window;
  /// SimTime::never() for the permanently wedged profile once it stalls.
  SimTime release(SimTime anchor, SimTime t) const;

  /// e.g. "stall(6s)" / "pulses(100ms/400ms x8)" — used in fault labels.
  std::string str() const;
};

/// One host's scheduling facade over the world EventLoop. See file comment.
class ClockDomain {
 public:
  explicit ClockDomain(EventLoop& loop) : loop_(loop) {}
  ClockDomain(const ClockDomain&) = delete;
  ClockDomain& operator=(const ClockDomain&) = delete;

  EventLoop& loop() { return loop_; }
  SimTime now() const { return loop_.now(); }

  /// Activate `p` anchored at the current time. Replaces any prior profile;
  /// callbacks already deferred keep re-checking against the new profile
  /// when they surface.
  void set_lag(LagProfile p);
  /// Drop the profile (fresh boot / stall over): back to pure passthrough.
  void clear();

  /// True while a profile is active and the current time has not passed its
  /// final stall window.
  bool lagged() const;
  /// Earliest instant >= t the domain's CPU is running (t itself if healthy).
  SimTime release(SimTime t) const {
    return profile_.active() ? profile_.release(anchor_, t) : t;
  }

  /// Schedule through the domain. Healthy: forwarded verbatim to the loop
  /// (loop TimerId returned). Lagged: the callback surfaces at release(t),
  /// re-checking the then-current profile, and the returned TimerId has bit
  /// 63 set so cancel() can route it back here.
  TimerId schedule_at(SimTime t, EventLoop::Callback cb);
  TimerId schedule_after(Duration d, EventLoop::Callback cb) {
    return schedule_at(now() + (d.is_negative() ? Duration::zero() : d), std::move(cb));
  }
  /// Cancels either kind of TimerId this domain has issued.
  bool cancel(TimerId id);

  /// Callbacks that have been pushed out of at least one stall window.
  std::uint64_t deferred() const { return deferred_; }

 private:
  // Domain-issued handles: bit 63 | (slot << 32) | generation, mirroring the
  // EventLoop's scheme in a private slot table. The extra indirection exists
  // because a deferred callback may be re-armed on the loop several times
  // (once per re-check); the domain id stays stable across those hops so
  // OneShotTimer-style cancel/re-arm keeps working mid-stall.
  static constexpr TimerId kDomainBit = TimerId{1} << 63;

  struct Slot {
    std::uint32_t gen = 1;
    TimerId inner = 0;  // current loop event carrying this slot's callback
    EventLoop::Callback cb;
  };

  TimerId defer(SimTime want, EventLoop::Callback cb);
  void surface(std::uint32_t slot, std::uint32_t gen);

  EventLoop& loop_;
  LagProfile profile_ = LagProfile::none();
  SimTime anchor_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t deferred_ = 0;
};

}  // namespace sttcp::sim
