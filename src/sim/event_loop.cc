#include "sim/event_loop.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace sttcp::sim {

TimerId EventLoop::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  const TimerId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventLoop::cancel(TimerId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    auto c = cancelled_.find(e.id);
    if (c != cancelled_.end()) {
      cancelled_.erase(c);
      continue;
    }
    auto it = callbacks_.find(e.id);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = e.at;
    ++executed_;
    if (budget_ != 0 && executed_ > budget_) {
      std::fprintf(stderr, "EventLoop: event budget (%llu) exceeded at t=%s\n",
                   static_cast<unsigned long long>(budget_), now_.str().c_str());
      std::abort();
    }
    cb();
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(SimTime t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && !queue_.empty()) {
    // Skip over cancelled entries to find the true next timestamp.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) != 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().at > t) break;
    if (step()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

void OneShotTimer::arm(Duration d, EventLoop::Callback cb) {
  arm_at(loop_.now() + (d.is_negative() ? Duration::zero() : d), std::move(cb));
}

void OneShotTimer::arm_at(SimTime t, EventLoop::Callback cb) {
  cancel();
  deadline_ = t;
  // Clear id_ before invoking so the callback can re-arm this same timer.
  id_ = loop_.schedule_at(t, [this, cb = std::move(cb)]() {
    id_ = 0;
    cb();
  });
}

void OneShotTimer::cancel() {
  if (id_ != 0) {
    loop_.cancel(id_);
    id_ = 0;
  }
}

void PeriodicTimer::start(Duration period, EventLoop::Callback cb) {
  stop();
  period_ = period;
  cb_ = std::move(cb);
  id_ = loop_.schedule_after(period_, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (id_ != 0) {
    loop_.cancel(id_);
    id_ = 0;
  }
  cb_ = nullptr;
}

void PeriodicTimer::fire() {
  // Reschedule first: cb_ may call stop(), which must cancel the next shot.
  id_ = loop_.schedule_after(period_, [this] { fire(); });
  cb_();
}

}  // namespace sttcp::sim
