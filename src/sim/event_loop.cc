#include "sim/event_loop.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/clock_domain.h"

namespace sttcp::sim {

TimerId EventLoop::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    cbs_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(gens_.size());
    gens_.push_back(1);  // generation 0 is never issued, so no TimerId is 0
    meta_.emplace_back();
    cbs_.push_back(std::move(cb));
  }
  const std::uint32_t gen = gens_[slot];
  const std::uint64_t seq = next_seq_++;
  meta_[slot] = SlotMeta{t, seq, gen};
  wheel_.push(WheelEntry{t, seq, slot, gen});
  ++live_;
  return (static_cast<TimerId>(slot) << 32) | gen;
}

std::vector<EventLoop::ReadyEvent> EventLoop::ready_events(SimTime horizon) const {
  std::vector<ReadyEvent> out;
  for (std::uint32_t slot = 0; slot < gens_.size(); ++slot) {
    const SlotMeta& m = meta_[slot];
    if (m.gen == 0 || m.gen != gens_[slot] || m.at > horizon) continue;
    out.push_back(ReadyEvent{(static_cast<TimerId>(slot) << 32) | m.gen, m.at, m.seq});
  }
  std::sort(out.begin(), out.end(), [](const ReadyEvent& a, const ReadyEvent& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });
  return out;
}

SimTime EventLoop::next_event_at() {
  drop_stale_top();
  return wheel_.empty() ? SimTime::never() : wheel_.peek_min().at;
}

bool EventLoop::run_event(TimerId id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (slot >= gens_.size() || gens_[slot] != gen || gen == 0) return false;
  // Consume like cancel(): bump the generation so the wheel entry is
  // recognised as stale when it surfaces (which also recycles the slot).
  const Callback cb = std::move(cbs_[slot]);
  if (++gens_[slot] == 0) gens_[slot] = 1;
  --live_;
  if (meta_[slot].at > now_) now_ = meta_[slot].at;
  ++executed_;
  cb();
  return true;
}

bool EventLoop::cancel(TimerId id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (slot >= gens_.size() || gens_[slot] != gen || gen == 0) return false;
  // Invalidate: the wheel entry (still bucketed) no longer matches and will
  // be discarded when it surfaces; the slot is recycled at that point.
  if (++gens_[slot] == 0) gens_[slot] = 1;
  --live_;
  // Bound the dead-entry backlog: when stale entries dominate the wheel,
  // sweep them out instead of waiting for each to surface.
  if (wheel_.size() >= 64 && wheel_.size() > 2 * (live_ + 32)) compact();
  return true;
}

void EventLoop::compact() {
  wheel_.sweep(
      [this](const WheelEntry& e) { return gens_[e.slot] != e.gen; },
      [this](const WheelEntry& e) {
        cbs_[e.slot] = nullptr;  // destroy the cancelled callback's captures
        free_slots_.push_back(e.slot);
      });
}

WheelEntry EventLoop::pop_top() {
  const WheelEntry e = wheel_.pop_min();
  // The slot's only wheel entry is gone: retire the generation (so the
  // original TimerId can no longer cancel anything) and free the slot.
  if (gens_[e.slot] == e.gen) {
    if (++gens_[e.slot] == 0) gens_[e.slot] = 1;
  }
  free_slots_.push_back(e.slot);
  return e;
}

void EventLoop::drop_stale_top() {
  while (!wheel_.empty()) {
    const WheelEntry& top = wheel_.peek_min();
    if (gens_[top.slot] == top.gen) break;
    const WheelEntry e = pop_top();
    cbs_[e.slot] = nullptr;  // destroy the cancelled callback's captures now
  }
}

bool EventLoop::step() {
  while (!wheel_.empty()) {
    const WheelEntry& top = wheel_.peek_min();
    const bool was_live = gens_[top.slot] == top.gen;
    const WheelEntry e = pop_top();
    // Take the callback out before running it: it may reuse the freed slot.
    const Callback cb = std::move(cbs_[e.slot]);
    if (!was_live) continue;  // cancelled: discard silently
    --live_;
    now_ = e.at;
    ++executed_;
    if (budget_ != 0 && executed_ > budget_) {
      std::fprintf(stderr, "EventLoop: event budget (%llu) exceeded at t=%s\n",
                   static_cast<unsigned long long>(budget_), now_.str().c_str());
      std::abort();
    }
    cb();
    return true;
  }
  return false;
}

std::uint64_t EventLoop::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t EventLoop::run_until(SimTime t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    // Skip over cancelled entries to find the true next timestamp.
    drop_stale_top();
    if (wheel_.empty() || wheel_.peek_min().at > t) break;
    if (step()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::uint64_t EventLoop::run_before(SimTime t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    drop_stale_top();
    if (wheel_.empty() || wheel_.peek_min().at >= t) break;
    if (step()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

OneShotTimer::OneShotTimer(ClockDomain& domain)
    : loop_(domain.loop()), domain_(&domain) {}

void OneShotTimer::arm(Duration d, EventLoop::Callback cb) {
  arm_at(loop_.now() + (d.is_negative() ? Duration::zero() : d), std::move(cb));
}

void OneShotTimer::arm_at(SimTime t, EventLoop::Callback cb) {
  cancel();
  deadline_ = t;
  // Clear id_ before invoking so the callback can re-arm this same timer.
  auto wrapped = [this, cb = std::move(cb)]() {
    id_ = 0;
    cb();
  };
  id_ = domain_ ? domain_->schedule_at(t, std::move(wrapped))
                : loop_.schedule_at(t, std::move(wrapped));
}

void OneShotTimer::cancel() {
  if (id_ != 0) {
    if (domain_) {
      domain_->cancel(id_);
    } else {
      loop_.cancel(id_);
    }
    id_ = 0;
  }
}

PeriodicTimer::PeriodicTimer(ClockDomain& domain)
    : loop_(domain.loop()), domain_(&domain) {}

void PeriodicTimer::start(Duration period, EventLoop::Callback cb) {
  stop();
  period_ = period;
  cb_ = std::move(cb);
  id_ = schedule_next();
}

void PeriodicTimer::stop() {
  if (id_ != 0) {
    if (domain_) {
      domain_->cancel(id_);
    } else {
      loop_.cancel(id_);
    }
    id_ = 0;
  }
  cb_ = nullptr;
}

TimerId PeriodicTimer::schedule_next() {
  auto shot = [this] { fire(); };
  return domain_ ? domain_->schedule_after(period_, shot)
                 : loop_.schedule_after(period_, shot);
}

void PeriodicTimer::fire() {
  // Reschedule first: cb_ may call stop(), which must cancel the next shot.
  id_ = schedule_next();
  cb_();
}

}  // namespace sttcp::sim
