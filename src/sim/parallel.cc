#include "sim/parallel.h"

#include <barrier>
#include <stdexcept>
#include <thread>

namespace sttcp::sim {

ParallelExecutor::ParallelExecutor(std::vector<Shard> shards, Duration lookahead,
                                   int threads)
    : shards_(std::move(shards)), lookahead_(lookahead) {
  if (shards_.empty()) throw std::logic_error("ParallelExecutor: no shards");
  if (lookahead_ <= Duration::zero()) {
    throw std::logic_error("ParallelExecutor: lookahead must be positive");
  }
  threads_ = threads < 1 ? 1 : threads;
  if (threads_ > static_cast<int>(shards_.size())) {
    threads_ = static_cast<int>(shards_.size());
  }
}

void ParallelExecutor::worker(int index, SimTime start, SimTime t, void* barrier) {
  auto* bar = static_cast<std::barrier<>*>(barrier);
  SimTime end = start;
  while (end < t) {
    SimTime next = end + lookahead_;
    if (next > t) next = t;
    const bool final_window = next == t;
    // The drain horizon is always exclusive: an arrival stamped exactly at a
    // window boundary may still be racing out of its producer (sent at the
    // first instant of the same window), so taking it now would depend on
    // thread timing. It is injected by the next window's (or next call's)
    // drain instead, still at its own timestamp.
    for (std::size_t i = static_cast<std::size_t>(index); i < shards_.size();
         i += static_cast<std::size_t>(threads_)) {
      Shard& s = shards_[i];
      if (s.drain) s.drain(next);
      if (final_window) {
        s.loop->run_until(t);
      } else {
        s.loop->run_before(next);
      }
    }
    if (bar != nullptr) bar->arrive_and_wait();
    end = next;
  }
}

void ParallelExecutor::run_until(SimTime t) {
  SimTime start = shards_.front().loop->now();
  for (const Shard& s : shards_) {
    if (s.loop->now() != start) {
      throw std::logic_error("ParallelExecutor: shard clocks out of lockstep");
    }
  }
  if (t <= start) return;
  if (threads_ == 1) {
    worker(0, start, t, nullptr);
    return;
  }
  std::barrier<> bar(threads_);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    pool.emplace_back([this, w, start, t, &bar] { worker(w, start, t, &bar); });
  }
  worker(0, start, t, &bar);
  for (std::thread& th : pool) th.join();
}

}  // namespace sttcp::sim
