#include "sim/random.h"

#include <cmath>

namespace sttcp::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace sttcp::sim
