#include "sim/trace.h"

#include <sstream>

#include "sim/event_loop.h"

namespace sttcp::sim {

void TraceRecorder::record(std::string_view component, std::string_view event,
                           std::string_view detail, std::int64_t value) {
  entries_.push_back(TraceEntry{loop_->now(), std::string(component),
                                std::string(event), std::string(detail), value});
}

std::size_t TraceRecorder::count(std::string_view event) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.event == event) ++n;
  }
  return n;
}

std::size_t TraceRecorder::count(std::string_view component,
                                 std::string_view event) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.component == component && e.event == event) ++n;
  }
  return n;
}

std::optional<SimTime> TraceRecorder::first_time(std::string_view event) const {
  const TraceEntry* e = first(event);
  if (e == nullptr) return std::nullopt;
  return e->at;
}

std::optional<SimTime> TraceRecorder::last_time(std::string_view event) const {
  const TraceEntry* e = last(event);
  if (e == nullptr) return std::nullopt;
  return e->at;
}

const TraceEntry* TraceRecorder::first(std::string_view event) const {
  for (const auto& e : entries_) {
    if (e.event == event) return &e;
  }
  return nullptr;
}

const TraceEntry* TraceRecorder::last(std::string_view event) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->event == event) return &*it;
  }
  return nullptr;
}

std::vector<TraceEntry> TraceRecorder::all(std::string_view event) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_) {
    if (e.event == event) out.push_back(e);
  }
  return out;
}

bool TraceRecorder::strictly_before(std::string_view a, std::string_view b) const {
  // Entry order, not timestamps: events recorded in one causal chain share a
  // timestamp but have a definite order.
  std::ptrdiff_t last_a = -1;
  std::ptrdiff_t first_b = -1;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].event == a) last_a = static_cast<std::ptrdiff_t>(i);
    if (first_b < 0 && entries_[i].event == b) first_b = static_cast<std::ptrdiff_t>(i);
  }
  if (last_a < 0) return false;
  if (first_b < 0) return true;
  return last_a < first_b;
}

std::string TraceRecorder::dump() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << e.at.str() << " " << e.component << " " << e.event;
    if (!e.detail.empty()) os << " [" << e.detail << "]";
    if (e.value != 0) os << " value=" << e.value;
    os << "\n";
  }
  return os.str();
}

}  // namespace sttcp::sim
