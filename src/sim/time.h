// Simulated time for the discrete-event kernel.
//
// All simulation components share a single virtual clock owned by the
// EventLoop. Time is a signed 64-bit nanosecond count wrapped in strong types
// so durations and absolute instants cannot be mixed up. The range (~292
// years) is far beyond any scenario in this repository.
#pragma once

#include <cstdint>
#include <string>

namespace sttcp::sim {

/// A span of simulated time. Nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration micros(std::int64_t n) { return Duration(n * 1000); }
  static constexpr Duration millis(std::int64_t n) { return Duration(n * 1000000); }
  static constexpr Duration seconds(std::int64_t n) { return Duration(n * 1000000000); }
  static constexpr Duration minutes(std::int64_t n) { return seconds(n * 60); }
  /// Duration from a floating-point second count (rounds to nearest ns).
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration zero() { return Duration(0); }
  /// Sentinel larger than any scenario length; safe to add to any scenario time.
  static constexpr Duration infinite() { return Duration(std::int64_t{1} << 62); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr std::int64_t us() const { return ns_ / 1000; }
  constexpr std::int64_t ms() const { return ns_ / 1000000; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr std::int64_t operator/(Duration o) const { return ns_ / o.ns_; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "1.500ms".
  std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulation clock. The epoch (t = 0) is the
/// moment the EventLoop was constructed.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime from_ns(std::int64_t n) { return SimTime(n); }
  static constexpr SimTime zero() { return SimTime(0); }
  /// Sentinel beyond any scenario end; used as "never".
  static constexpr SimTime never() { return SimTime(std::int64_t{1} << 62); }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr bool is_never() const { return ns_ >= (std::int64_t{1} << 62); }

  constexpr SimTime operator+(Duration d) const { return SimTime(ns_ + d.ns()); }
  constexpr SimTime operator-(Duration d) const { return SimTime(ns_ - d.ns()); }
  constexpr Duration operator-(SimTime o) const { return Duration::nanos(ns_ - o.ns_); }
  constexpr SimTime& operator+=(Duration d) { ns_ += d.ns(); return *this; }
  constexpr auto operator<=>(const SimTime&) const = default;

  /// Human-readable rendering as seconds, e.g. "12.345678s".
  std::string str() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// Duration literals: `2_s`, `500_ms`, `50_us`. Opt-in via
/// `using namespace sttcp::sim::literals;` (the fault-injection DSL's
/// natural spelling: `Fault::Crash(Node::kPrimary).at(2_s)`).
namespace literals {
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::seconds(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::millis(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::micros(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace sttcp::sim
