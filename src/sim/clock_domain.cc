#include "sim/clock_domain.h"

#include <cstdio>
#include <utility>

namespace sttcp::sim {

SimTime LagProfile::release(SimTime anchor, SimTime t) const {
  if (!active() || t < anchor) return t;
  if (run_for.is_zero()) {
    // The stall begins at the anchor itself. cycles > 1 just concatenates.
    if (cycles == 0) return SimTime::never();  // wedged forever
    const SimTime end = anchor + stall_for * static_cast<std::int64_t>(cycles);
    return t < end ? end : t;
  }
  const Duration cycle = run_for + stall_for;
  const std::int64_t k = (t - anchor) / cycle;
  if (cycles != 0 && k >= static_cast<std::int64_t>(cycles)) return t;
  const Duration off = (t - anchor) - cycle * k;
  if (off < run_for) return t;  // inside this cycle's healthy window
  return anchor + cycle * (k + 1);
}

std::string LagProfile::str() const {
  if (!active()) return "none";
  char buf[96];
  if (run_for.is_zero() && cycles == 1) {
    std::snprintf(buf, sizeof buf, "stall(%s)", stall_for.str().c_str());
  } else if (cycles == 0) {
    std::snprintf(buf, sizeof buf, "pulses(%s/%s)", run_for.str().c_str(),
                  stall_for.str().c_str());
  } else {
    std::snprintf(buf, sizeof buf, "pulses(%s/%s x%llu)", run_for.str().c_str(),
                  stall_for.str().c_str(), static_cast<unsigned long long>(cycles));
  }
  return buf;
}

void ClockDomain::set_lag(LagProfile p) {
  profile_ = p;
  anchor_ = now();
}

void ClockDomain::clear() {
  profile_ = LagProfile::none();
  // Drop every pending deferred callback: clear() models a power transition
  // (crash / fresh boot), after which the stalled host's queued work is gone.
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    Slot& s = slots_[slot];
    if (s.inner == 0) continue;
    loop_.cancel(s.inner);
    s.inner = 0;
    s.cb = nullptr;
    if (++s.gen == 0) s.gen = 1;
    free_slots_.push_back(slot);
  }
}

bool ClockDomain::lagged() const {
  if (!profile_.active()) return false;
  if (profile_.cycles == 0) return true;
  const Duration cycle = profile_.run_for + profile_.stall_for;
  return now() < anchor_ + cycle * static_cast<std::int64_t>(profile_.cycles);
}

TimerId ClockDomain::schedule_at(SimTime t, EventLoop::Callback cb) {
  if (t < now()) t = now();
  if (release(t) <= t) return loop_.schedule_at(t, std::move(cb));
  return defer(t, std::move(cb));
}

TimerId ClockDomain::defer(SimTime want, EventLoop::Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  const std::uint32_t gen = s.gen;
  s.inner = loop_.schedule_at(release(want),
                              [this, slot, gen] { surface(slot, gen); });
  ++deferred_;
  return kDomainBit | (static_cast<TimerId>(slot) << 32) | gen;
}

void ClockDomain::surface(std::uint32_t slot, std::uint32_t gen) {
  Slot& s = slots_[slot];
  if (s.gen != gen) return;  // cancelled between arming and surfacing
  // Re-check against the *current* profile: set_lag() may have extended the
  // stall since this hop was armed.
  const SimTime r = release(now());
  if (r > now()) {
    s.inner = loop_.schedule_at(r, [this, slot, gen] { surface(slot, gen); });
    return;
  }
  // Retire the slot before running so the callback can re-arm through us.
  EventLoop::Callback cb = std::move(s.cb);
  s.cb = nullptr;
  s.inner = 0;
  if (++s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
  cb();
}

bool ClockDomain::cancel(TimerId id) {
  if ((id & kDomainBit) == 0) return loop_.cancel(id);
  const auto slot = static_cast<std::uint32_t>((id >> 32) & 0x7fffffff);
  const auto gen = static_cast<std::uint32_t>(id);
  if (slot >= slots_.size() || slots_[slot].gen != gen || gen == 0) return false;
  Slot& s = slots_[slot];
  loop_.cancel(s.inner);
  s.inner = 0;
  s.cb = nullptr;
  if (++s.gen == 0) s.gen = 1;
  free_slots_.push_back(slot);
  return true;
}

}  // namespace sttcp::sim
