#include "sim/logging.h"

#include <iostream>

#include "sim/event_loop.h"

namespace sttcp::sim {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

LogSink::LogSink(const EventLoop& loop, std::ostream* out, LogLevel level)
    : loop_(loop), out_(out != nullptr ? out : &std::cerr), level_(level) {}

void LogSink::write(LogLevel level, const std::string& component,
                    const std::string& msg) {
  (*out_) << "[" << loop_.now().str() << "] " << to_string(level) << " "
          << component << ": " << msg << "\n";
}

}  // namespace sttcp::sim
