// Unbounded single-producer/single-consumer queue (Vyukov-style linked
// list). The cross-shard frame channels of the parallel executor are SPSC by
// construction: exactly one shard's worker thread transmits into a channel
// and exactly one drains it, and the executor's window barrier bounds how
// stale the consumer's view may be — so two relaxed ends with one
// release/acquire edge per node are all the synchronization needed.
//
// Producer calls push(); consumer calls front()/pop(). No other sharing.
#pragma once

#include <atomic>
#include <utility>

namespace sttcp::sim {

template <typename T>
class SpscQueue {
 public:
  SpscQueue() : head_(new Node), tail_(head_) {}
  ~SpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side: enqueue a value.
  void push(T value) {
    Node* n = new Node;
    n->value = std::move(value);
    // Publish: the consumer's acquire load of `next` sees the fully
    // constructed node.
    head_->next.store(n, std::memory_order_release);
    head_ = n;
  }

  /// Consumer side: the oldest value, or nullptr when the queue looks empty
  /// (a concurrent push may be in flight; the executor's barrier decides
  /// when emptiness is authoritative).
  T* front() {
    Node* next = tail_->next.load(std::memory_order_acquire);
    return next != nullptr ? &next->value : nullptr;
  }

  /// Consumer side: discard the value front() exposed. Precondition: a
  /// preceding front() returned non-null.
  void pop() {
    Node* next = tail_->next.load(std::memory_order_acquire);
    Node* old = tail_;
    tail_ = next;
    delete old;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* head_;  // producer-owned (points at the most recently pushed node)
  Node* tail_;  // consumer-owned (stub; tail_->next is the oldest value)
};

}  // namespace sttcp::sim
