// Structured event trace.
//
// Protocol components emit named events ("takeover", "fin_suppressed", ...)
// with a timestamp, the emitting component, and an optional integer value /
// detail string. Tests and benchmarks assert on the trace instead of poking
// into private state, and the harness derives metrics (e.g. failover time)
// from it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace sttcp::sim {

class EventLoop;

struct TraceEntry {
  SimTime at;
  std::string component;
  std::string event;
  std::string detail;
  std::int64_t value = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const EventLoop& loop) : loop_(&loop) {}

  void record(std::string_view component, std::string_view event,
              std::string_view detail = {}, std::int64_t value = 0);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Number of entries whose event name equals `event`.
  std::size_t count(std::string_view event) const;
  /// Number of matching entries from a specific component.
  std::size_t count(std::string_view component, std::string_view event) const;

  /// Timestamp of the first/last entry with this event name.
  std::optional<SimTime> first_time(std::string_view event) const;
  std::optional<SimTime> last_time(std::string_view event) const;

  /// First matching entry, if any.
  const TraceEntry* first(std::string_view event) const;
  const TraceEntry* last(std::string_view event) const;

  /// All entries with this event name (copies).
  std::vector<TraceEntry> all(std::string_view event) const;

  /// True if `a` occurs at least once and every `a` precedes every `b` in
  /// recording order (events in one causal chain share timestamps).
  bool strictly_before(std::string_view a, std::string_view b) const;

  /// Render the full trace, one line per entry (diagnostics in test failures).
  std::string dump() const;

 private:
  const EventLoop* loop_;
  std::vector<TraceEntry> entries_;
};

}  // namespace sttcp::sim
