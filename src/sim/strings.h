// Tiny string-building helpers (the toolchain lacks std::format).
#pragma once

#include <sstream>
#include <string>

namespace sttcp::sim {

namespace detail {
inline void cat_one(std::ostringstream&) {}
template <typename T, typename... Rest>
void cat_one(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  cat_one(os, rest...);
}
}  // namespace detail

/// Concatenate any streamable values into a string: cat("x=", 3, "ms").
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  detail::cat_one(os, args...);
  return os.str();
}

}  // namespace sttcp::sim
