// Hierarchical timing wheel: the EventLoop's priority queue.
//
// The capacity workloads arm, cancel, and re-arm timers at enormous rates —
// every ACK re-arms an RTO, every delivered segment may touch a delayed-ACK
// or persist timer, and 10k+ churning connections keep 10k+ timers armed at
// once. A binary heap pays O(log n) per arm and a periodic O(n) sweep to
// shed lazily-cancelled entries; the wheel makes arm O(1) (a bucket append)
// and cancel O(1) (the EventLoop's generation bump), while preserving the
// loop's total execution order exactly.
//
// Structure (a classic hashed hierarchical wheel, Varghese & Lauck style):
//
//   * time is bucketed into granules of 2^10 ns (1.024 us);
//   * nine levels of 64 slots cover 54 bits of granules — the entire
//     representable simulation time, so there is no overflow path;
//   * an entry's level is the highest 6-bit granule-index group in which it
//     differs from the cursor (NOT its raw delta: a delta-based rule can map
//     an entry into the slot the cursor currently occupies, and then cascade
//     it back into that same slot forever). With the XOR rule the target
//     slot is always in the cursor's current frame, strictly ahead of it,
//     and every cascade strictly decreases the level;
//   * per-level occupancy bitmaps make "earliest non-empty slot" a couple of
//     ctz instructions, so idle gaps are skipped without scanning granules;
//   * expiring a higher-level slot cascades its entries into lower levels;
//     each entry cascades at most (levels-1) times over its lifetime;
//   * entries within the current granule are ordered by an explicit little
//     (at, seq) heap ("due heap", at most a granule's worth of events), which
//     is what keeps execution order bit-identical to the old global heap:
//     (at, seq) is a total order, so pop order is independent of bucketing.
//
// The wheel stores entries by value and knows nothing about cancellation:
// the EventLoop's slot/generation table decides staleness when an entry
// surfaces (pop) or when the loop asks for a sweep (compaction).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace sttcp::sim {

/// One scheduled event as the wheel sees it: when, the FIFO tie-break, and
/// the owning EventLoop's callback-slot coordinates.
struct WheelEntry {
  SimTime at;
  std::uint64_t seq = 0;   // tie-break: FIFO among equal timestamps
  std::uint32_t slot = 0;  // EventLoop callback slot
  std::uint32_t gen = 0;   // generation the slot had when scheduled
};

class TimerWheel {
 public:
  TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Insert an entry. `e.at` must be >= the `at` of the most recently popped
  /// entry's granule (the EventLoop clamps past times to now(), which
  /// guarantees this).
  void push(WheelEntry e);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// The earliest entry in (at, seq) order, stale or not. May cascade
  /// internally (amortized O(1)); the reference is valid until the next
  /// mutating call. Precondition: !empty().
  const WheelEntry& peek_min();

  /// Remove and return the earliest entry in (at, seq) order.
  WheelEntry pop_min();

  /// Remove every entry for which `stale` returns true, invoking `reclaim`
  /// on each removed entry (the EventLoop frees the callback slot there).
  /// O(total entries); called only when stale entries dominate.
  void sweep(const std::function<bool(const WheelEntry&)>& stale,
             const std::function<void(const WheelEntry&)>& reclaim);

 private:
  static constexpr int kGranuleBits = 10;  // 1.024 us granules
  static constexpr int kLevelBits = 6;     // 64 slots per level
  static constexpr int kLevels = 9;        // 9*6 = 54 bits: all of sim time
  static constexpr std::uint64_t kSlotsPerLevel = std::uint64_t{1} << kLevelBits;
  static constexpr std::uint64_t kSlotMask = kSlotsPerLevel - 1;

  static std::int64_t tick_of(SimTime t) { return t.ns() >> kGranuleBits; }

  /// Bucket an entry relative to cursor_: due heap (current granule or
  /// earlier) or a wheel slot picked by the XOR level rule.
  void place(WheelEntry e);
  /// Make the due heap non-empty by advancing the cursor to the earliest
  /// occupied granule, cascading higher-level slots as needed.
  void fill_due();
  /// Earliest possibly-occupied absolute tick covered by `level`'s slot at
  /// `index`, given the cursor (handles the level frame wrapping).
  std::int64_t slot_floor_tick(int level, int index) const;

  struct DueOrder {
    bool operator()(const WheelEntry& a, const WheelEntry& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap via std::*_heap
      return a.seq > b.seq;
    }
  };

  std::vector<WheelEntry> due_;  // (at, seq) min-heap: current granule
  std::vector<WheelEntry> levels_[kLevels][kSlotsPerLevel];
  std::uint64_t occupancy_[kLevels] = {};  // bit s set = slot s non-empty
  std::int64_t cursor_ = 0;      // granule the due heap corresponds to
  std::size_t size_ = 0;
};

}  // namespace sttcp::sim
