// Discrete-event simulation loop.
//
// A single EventLoop owns the virtual clock for a whole simulated world.
// Components schedule callbacks at absolute or relative times; the loop
// executes them in strict timestamp order, breaking ties by scheduling order
// so that a given scenario is bit-for-bit reproducible.
//
// The loop is strictly single-threaded; no synchronization is needed or
// provided.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"
#include "sim/timer_wheel.h"

namespace sttcp::sim {

/// Opaque handle to a scheduled event, usable to cancel it.
/// Value 0 is reserved and never issued. Internally (slot << 32) | generation
/// — the slot indexes a generation table, so cancellation is an array compare
/// instead of hash-map traffic, and a stale handle can never cancel a
/// later event that reused its slot.
using TimerId = std::uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time. Advances only while events execute.
  SimTime now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t`. Times in the past run at the
  /// current time (immediately after already-queued events for `now()`).
  TimerId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` to run `d` after the current time.
  TimerId schedule_after(Duration d, Callback cb) {
    return schedule_at(now_ + (d.is_negative() ? Duration::zero() : d), std::move(cb));
  }

  /// Cancel a pending event. Returns true if the event had not yet run.
  bool cancel(TimerId id);

  /// Execute the next pending event, if any. Returns false when idle.
  bool step();

  /// Run until the queue drains or `stop()` is called. Returns events run.
  std::uint64_t run();

  /// Run all events with timestamp <= t, then set the clock to exactly t.
  std::uint64_t run_until(SimTime t);

  /// Run all events with timestamp strictly < t, then set the clock to
  /// exactly t. Events at t itself stay pending (they run first on the next
  /// call). This is the conservative parallel executor's window primitive:
  /// a window [a, b) must not execute boundary events that could still
  /// receive same-timestamp cross-shard injections at b.
  std::uint64_t run_before(SimTime t);

  /// Run all events within the next `d` of virtual time.
  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Make `run()`/`run_until()` return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_; }

  /// Total events executed since construction (diagnostics / runaway guard).
  std::uint64_t events_executed() const { return executed_; }

  /// Abort the process if a single run executes more than this many events.
  /// Guards against accidental infinite event ping-pong in tests. 0 disables.
  void set_event_budget(std::uint64_t budget) { budget_ = budget; }

  // --- interleaving-explorer hooks ---------------------------------------
  // The exhaustive schedule explorer (src/harness/explore.h) needs to see
  // the loop's ready set and force a chosen event to run out of timestamp
  // order, modeling bounded delivery/scheduling delay. Normal runs never
  // call these; they add two stores per schedule_at and nothing else.

  /// One pending event as the explorer sees it.
  struct ReadyEvent {
    TimerId id;
    SimTime at;
    std::uint64_t seq;
  };

  /// All live pending events with `at` <= horizon, in (at, seq) order.
  /// O(slots) — intended for tiny exploration worlds, not hot paths.
  std::vector<ReadyEvent> ready_events(SimTime horizon) const;

  /// Earliest live pending timestamp, or SimTime::never() when idle.
  SimTime next_event_at();

  /// Force the given pending event to run now, advancing the clock to
  /// max(now, its timestamp) — an event executed *after* a later-stamped one
  /// runs late, which is exactly the delivery-delay semantics the explorer
  /// enumerates. Returns false if the id is stale. Execution order within a
  /// chosen sequence of run_event calls is total, so a replayed choice
  /// vector is bit-identical.
  bool run_event(TimerId id);

 private:
  // Pending events live in a hierarchical timing wheel (sim/timer_wheel.h)
  // as small POD entries; the callback lives in a slot-indexed side vector.
  // Arm and cancel are O(1): cancel() bumps the slot's generation so the
  // wheel entry is recognized as stale and discarded when it surfaces. A
  // slot is returned to the free list only when its entry leaves the wheel,
  // so at most one wheel entry ever references a slot. The wheel pops in
  // strict (at, seq) order — the same total order the old binary heap used,
  // so scenarios are bit-identical across the swap.

  /// Pop the earliest wheel entry and release its slot; returns the entry.
  WheelEntry pop_top();
  /// Discard stale (cancelled) entries at the front of the wheel.
  void drop_stale_top();
  /// Remove every stale entry from the wheel in one pass. Lazy cancellation
  /// leaves one dead entry per cancel until it surfaces; workloads that
  /// re-arm timers constantly (an RTO re-armed on every ACK across thousands
  /// of churning connections) would otherwise grow the wheel far past the
  /// live event count. Sweeping cannot change execution order: (at, seq) is
  /// a total order, so pop order is independent of bucket contents.
  void compact();

  /// Side metadata for the explorer hooks: what (at, seq) a slot's pending
  /// entry carries, valid only while `gen` matches the slot's live
  /// generation (cancel/pop bump the generation, invalidating this lazily).
  struct SlotMeta {
    SimTime at;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;  // 0 never matches a live generation
  };

  SimTime now_;
  TimerWheel wheel_;
  std::vector<std::uint32_t> gens_;  // slot -> current live generation
  std::vector<SlotMeta> meta_;       // slot -> pending (at, seq) snapshot
  std::vector<Callback> cbs_;        // slot -> pending callback
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t budget_ = 0;
  bool stopped_ = false;
};

/// A restartable one-shot timer bound to an EventLoop. Convenience wrapper
/// used by protocol state machines for retransmission / heartbeat / delay
/// timers: re-arming implicitly cancels the previous shot, and destruction
/// cancels any pending shot (no callbacks into destroyed objects).
class ClockDomain;  // sim/clock_domain.h — per-host grey-failure skew

class OneShotTimer {
 public:
  explicit OneShotTimer(EventLoop& loop) : loop_(loop) {}
  /// Bind to a host's ClockDomain instead: while the domain is healthy this
  /// is identical to the EventLoop form; under an active LagProfile the
  /// timer's callbacks slide out of the stall windows with the host's CPU.
  explicit OneShotTimer(ClockDomain& domain);
  ~OneShotTimer() { cancel(); }
  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// Arm (or re-arm) to fire `d` from now.
  void arm(Duration d, EventLoop::Callback cb);
  /// Arm (or re-arm) to fire at absolute time `t`.
  void arm_at(SimTime t, EventLoop::Callback cb);
  void cancel();
  bool armed() const { return id_ != 0; }
  /// Absolute expiry time, or SimTime::never() when unarmed.
  SimTime deadline() const { return id_ != 0 ? deadline_ : SimTime::never(); }

 private:
  EventLoop& loop_;
  ClockDomain* domain_ = nullptr;  // set iff constructed from a ClockDomain
  TimerId id_ = 0;
  SimTime deadline_;
};

/// A periodic timer: fires every `period` until stopped or destroyed.
class PeriodicTimer {
 public:
  explicit PeriodicTimer(EventLoop& loop) : loop_(loop) {}
  /// ClockDomain-bound form; see OneShotTimer.
  explicit PeriodicTimer(ClockDomain& domain);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Start firing `cb` every `period`, first shot after `period`.
  void start(Duration period, EventLoop::Callback cb);
  void stop();
  bool running() const { return id_ != 0; }
  Duration period() const { return period_; }

 private:
  void fire();
  TimerId schedule_next();

  EventLoop& loop_;
  ClockDomain* domain_ = nullptr;  // set iff constructed from a ClockDomain
  TimerId id_ = 0;
  Duration period_;
  EventLoop::Callback cb_;
};

}  // namespace sttcp::sim
