// Deterministic pseudo-random source for simulations.
//
// xoshiro256** seeded through splitmix64 — fast, high quality, and fully
// reproducible from a single 64-bit seed. Every stochastic element of a
// scenario (link loss, jitter, payload generation) draws from an Rng so a
// scenario is a pure function of its seed.
#pragma once

#include <cstdint>

namespace sttcp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5717cf00d5ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform over [0, n). n == 0 returns 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform over the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Derive an independent child stream (for per-component RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace sttcp::sim
