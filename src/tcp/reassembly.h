// Receive-side reassembly buffer.
//
// Tracks the next expected absolute payload offset, holds out-of-order
// fragments, and exposes an in-order byte queue to the application. The
// advertised receive window is derived from the free capacity.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "net/bytes.h"

namespace sttcp::tcp {

class ReassemblyBuffer {
 public:
  explicit ReassemblyBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Offer payload starting at absolute offset `at`. Bytes outside
  /// [next_expected, next_expected + window) are clipped. Returns the number
  /// of *new in-order* bytes that became readable as a result.
  std::size_t insert(std::uint64_t at, net::BytesView data);

  /// Read up to `max` in-order bytes (application recv()).
  net::Bytes read(std::size_t max);

  /// Copy the in-order readable bytes without consuming them. A connection
  /// snapshot (ST-TCP reintegration) ships these to the rejoining replica so
  /// its buffer matches ours byte for byte.
  net::Bytes peek() const { return net::Bytes(ready_.begin(), ready_.end()); }

  /// Re-base an empty buffer so the next expected absolute offset is
  /// `offset`: a replica adopted mid-stream starts counting where the
  /// snapshot left off instead of at zero. Only valid while nothing is
  /// buffered.
  void reset_to(std::uint64_t offset) {
    if (!ready_.empty() || !ooo_.empty()) return;
    next_ = offset;
  }

  /// Bytes available for the application right now.
  std::size_t readable() const { return ready_.size(); }

  /// Next absolute payload offset we expect from the wire (== total in-order
  /// bytes received since the start of the stream).
  std::uint64_t next_expected() const { return next_; }

  /// Current advertised window: capacity minus everything buffered.
  std::size_t window() const;

  /// True if there is buffered data beyond a gap (a hole exists). ST-TCP's
  /// backup uses this as one trigger for missed-byte recovery.
  bool has_gap() const { return !ooo_.empty(); }
  /// Absolute offset of the first missing byte when a gap exists.
  std::uint64_t gap_start() const { return next_; }
  /// Absolute offset where buffered out-of-order data begins (gap end).
  std::uint64_t gap_end() const { return ooo_.empty() ? next_ : ooo_.begin()->first; }

  std::size_t capacity() const { return capacity_; }

  /// Total payload currently buffered: in-order unread + out-of-order
  /// fragments. Feeds the per-connection memory audit under churn.
  std::size_t buffered_bytes() const { return ready_.size() + ooo_bytes(); }

  /// Observe every byte the moment it becomes in-order readable
  /// (absolute offset of the first byte + the data). ST-TCP's primary feeds
  /// its hold buffer from this tap.
  using DeliverTap = std::function<void(std::uint64_t offset, net::BytesView data)>;
  void set_deliver_tap(DeliverTap tap) { deliver_tap_ = std::move(tap); }

 private:
  void deliver(std::uint64_t offset, net::BytesView data) {
    if (deliver_tap_) deliver_tap_(offset, data);
    ready_.insert(ready_.end(), data.begin(), data.end());
  }

  std::size_t ooo_bytes() const;

  std::size_t capacity_;
  std::uint64_t next_ = 0;                       // next expected absolute offset
  std::deque<std::uint8_t> ready_;               // in-order, unread bytes
  std::map<std::uint64_t, net::Bytes> ooo_;      // offset -> fragment (disjoint)
  DeliverTap deliver_tap_;
};

}  // namespace sttcp::tcp
