// Send-side byte buffer: holds bytes from snd_una (oldest unacknowledged)
// through the newest byte the application has written. Addressed by
// absolute stream offset (byte 0 = first payload byte after the SYN).
#pragma once

#include <cstdint>
#include <deque>

#include "net/bytes.h"

namespace sttcp::tcp {

class SendBuffer {
 public:
  explicit SendBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Append as much of `data` as fits; returns bytes accepted.
  std::size_t append(net::BytesView data);

  /// Acknowledge everything below absolute payload offset `upto`.
  /// Returns bytes released.
  std::size_t ack_to(std::uint64_t upto);

  /// Copy out up to `len` bytes starting at absolute offset `from` (must be
  /// within [una_offset, end_offset)). Used for transmission and
  /// retransmission alike.
  net::Bytes slice(std::uint64_t from, std::size_t len) const;

  /// Oldest unacknowledged payload offset.
  std::uint64_t una_offset() const { return una_; }
  /// One past the newest byte written by the application.
  std::uint64_t end_offset() const { return una_ + data_.size(); }

  /// Re-base an empty buffer so the oldest unacknowledged offset is `offset`
  /// (mid-stream replica adoption: the snapshot's acked prefix is not
  /// re-buffered). Only valid while the buffer holds no data.
  void reset_to(std::uint64_t offset) {
    if (!data_.empty()) return;
    una_ = offset;
  }

  std::size_t size() const { return data_.size(); }
  std::size_t free_space() const { return capacity_ - data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::uint64_t una_ = 0;           // absolute offset of data_.front()
  std::deque<std::uint8_t> data_;   // bytes [una_, una_ + size)
};

}  // namespace sttcp::tcp
