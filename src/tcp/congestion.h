// Congestion control: slow start, congestion avoidance (AIMD), and the
// window adjustments for fast retransmit / RTO, in the style of RFC 5681.
#pragma once

#include <algorithm>
#include <cstdint>

#include "tcp/config.h"

namespace sttcp::tcp {

class CongestionControl {
 public:
  CongestionControl(const TcpConfig& cfg)
      : mss_(cfg.mss),
        enabled_(cfg.congestion_control),
        cwnd_(cfg.initial_cwnd_segments * cfg.mss),
        ssthresh_(~std::uint64_t{0}) {}

  /// Usable congestion window in bytes (unbounded when disabled).
  std::uint64_t cwnd() const { return enabled_ ? cwnd_ : ~std::uint64_t{0}; }
  std::uint64_t ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

  /// New data acknowledged.
  void on_ack(std::uint64_t acked_bytes) {
    if (!enabled_ || acked_bytes == 0) return;
    if (in_slow_start()) {
      cwnd_ += std::min<std::uint64_t>(acked_bytes, mss_);
    } else {
      // Congestion avoidance: ~one MSS per RTT.
      cwnd_ += std::max<std::uint64_t>(1, mss_ * mss_ / cwnd_);
    }
  }

  /// Triple-duplicate-ACK loss signal (fast retransmit).
  void on_fast_retransmit(std::uint64_t flight_bytes) {
    if (!enabled_) return;
    ssthresh_ = std::max<std::uint64_t>(flight_bytes / 2, 2 * mss_);
    cwnd_ = ssthresh_ + 3 * mss_;
  }

  /// Retransmission timeout: collapse to one segment.
  void on_rto(std::uint64_t flight_bytes) {
    if (!enabled_) return;
    ssthresh_ = std::max<std::uint64_t>(flight_bytes / 2, 2 * mss_);
    cwnd_ = mss_;
  }

 private:
  std::uint64_t mss_;
  bool enabled_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_;
};

}  // namespace sttcp::tcp
