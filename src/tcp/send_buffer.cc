#include "tcp/send_buffer.h"

#include <algorithm>

namespace sttcp::tcp {

std::size_t SendBuffer::append(net::BytesView data) {
  const std::size_t n = std::min(data.size(), free_space());
  data_.insert(data_.end(), data.begin(), data.begin() + n);
  return n;
}

std::size_t SendBuffer::ack_to(std::uint64_t upto) {
  if (upto <= una_) return 0;
  const std::size_t n =
      std::min(static_cast<std::size_t>(upto - una_), data_.size());
  data_.erase(data_.begin(), data_.begin() + n);
  una_ += n;
  return n;
}

net::Bytes SendBuffer::slice(std::uint64_t from, std::size_t len) const {
  net::Bytes out;
  if (from < una_ || from >= end_offset()) return out;
  const std::size_t start = static_cast<std::size_t>(from - una_);
  const std::size_t n = std::min(len, data_.size() - start);
  out.reserve(n);
  out.insert(out.end(), data_.begin() + start, data_.begin() + start + n);
  return out;
}

}  // namespace sttcp::tcp
