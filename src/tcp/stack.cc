#include "tcp/stack.h"

#include <algorithm>

namespace sttcp::tcp {

TcpStack::TcpStack(net::Host& host, TcpConfig config)
    : host_(host),
      cfg_(config),
      log_(host.logger().child("tcp")),
      isn_rng_(host.world().rng().fork()) {
  host_.set_l4_handler(net::kIpProtoTcp,
                       [this](const net::Ipv4Header& ip, net::BytesView l4) {
                         on_packet(ip, l4);
                       });
  host_.add_boot_hook([this] { reset_for_boot(); });
}

void TcpStack::reset_for_boot() {
  conns_.clear();
  std::fill(demux_.begin(), demux_.end(), DemuxSlot{});
  pending_.clear();
  pending_syn_time_.clear();
  replica_mode_ = false;
}

TcpStack::~TcpStack() = default;

void TcpStack::listen(std::uint16_t port, AcceptHandler handler) {
  listeners_[port] = std::move(handler);
}

TcpConnection& TcpStack::connect(net::Ipv4Addr local_ip, net::SocketAddr remote,
                                 TcpConnection::Callbacks callbacks) {
  FourTuple t;
  t.remote = remote;
  // Allocate an ephemeral port within [49152, 65535], wrapping and skipping
  // tuples still in use — long churn runs cycle the range many times, and a
  // port can linger in TIME_WAIT from an earlier connection to the same
  // server. The guard bound equals the range size; exhausting it would need
  // 16,384 live connections to one remote address.
  for (int guard = 0; guard < 16384; ++guard) {
    t.local = net::SocketAddr{local_ip, next_ephemeral_};
    next_ephemeral_ =
        next_ephemeral_ == 65535 ? 49152 : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    if (conns_.find(t) == conns_.end()) break;
  }
  TcpConnection& conn = create_connection(t);
  conn.set_callbacks(std::move(callbacks));
  ++stats_.connections_initiated;
  conn.start_connect();
  return conn;
}

TcpConnection& TcpStack::create_replica(const FourTuple& tuple,
                                        TcpConnection::ReplicaInit init) {
  if (TcpConnection* existing = find(tuple)) return *existing;
  TcpConnection& conn = create_connection(tuple);
  ++stats_.replicas_created;
  // The listener's accept handler attaches the (replica) application when
  // the connection establishes — identically to the primary.
  TcpConnection::Callbacks cb;
  cb.on_established = [this, &conn] { dispatch_accept(conn); };
  conn.set_callbacks(std::move(cb));
  conn.start_replica(init);
  // Replay anything tapped before the announcement arrived.
  pending_syn_time_.erase(tuple);
  auto it = pending_.find(tuple);
  if (it != pending_.end()) {
    std::vector<TcpSegment> segs = std::move(it->second);
    pending_.erase(it);
    for (const TcpSegment& s : segs) {
      if (!conn.is_open()) break;
      conn.on_segment(s);
    }
  }
  return conn;
}

TcpConnection* TcpStack::find(const FourTuple& tuple) {
  DemuxSlot& slot = demux_[demux_slot_index(tuple)];
  if (slot.conn != nullptr && slot.key == tuple) {
    ++stats_.demux_cache_hits;
    return slot.conn;
  }
  auto it = conns_.find(tuple);
  if (it == conns_.end()) return nullptr;
  slot = DemuxSlot{tuple, it->second.get()};
  return it->second.get();
}

void TcpStack::for_each(const std::function<void(TcpConnection&)>& fn) {
  // The demux table is unordered; visit in 4-tuple order so callers (the
  // reintegration snapshot sweep in particular) see a deterministic sequence.
  std::vector<TcpConnection*> ordered;
  ordered.reserve(conns_.size());
  for (auto& [t, c] : conns_) ordered.push_back(c.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const TcpConnection* a, const TcpConnection* b) {
              return a->tuple() < b->tuple();
            });
  for (TcpConnection* c : ordered) fn(*c);
}

void TcpStack::set_replica_mode(bool on) {
  replica_mode_ = on;
  if (!on) {
    // Segments buffered for tuples that were never announced are useless
    // after takeover: no replica exists to replay them into, and the client
    // retransmits its SYN anyway, reaching the listener directly.
    pending_.clear();
    pending_syn_time_.clear();
  }
}

std::size_t TcpStack::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [t, c] : conns_) total += c->memory_bytes();
  for (const auto& [t, q] : pending_) {
    for (const TcpSegment& s : q) total += sizeof(TcpSegment) + s.payload.size();
  }
  return total;
}

bool TcpStack::emit(const FourTuple& tuple, const TcpSegment& seg,
                    TcpSegment::ChecksumMemo* memo) {
  if (!alive()) return false;
  net::Bytes l4 = memo != nullptr
                      ? seg.serialize(tuple.local.ip, tuple.remote.ip, *memo)
                      : seg.serialize(tuple.local.ip, tuple.remote.ip);
  return host_.send_ip(tuple.local.ip, tuple.remote.ip, net::kIpProtoTcp, l4);
}

void TcpStack::on_connection_finished(TcpConnection& conn, CloseReason reason) {
  if (observer_ != nullptr) observer_->on_finished(conn, reason);
  schedule_gc(conn.tuple());
}

void TcpStack::on_packet(const net::Ipv4Header& ip, net::BytesView l4) {
  if (!alive()) return;
  ++stats_.segments_in;
  auto seg = TcpSegment::parse(ip.src, ip.dst, l4, cfg_.verify_checksums);
  if (!seg.has_value()) {
    ++stats_.bad_checksum;
    world().trace().record(host_.name(), "checksum_drop", ip.src.str(),
                           static_cast<std::int64_t>(l4.size()));
    log_.warn("dropping malformed/corrupt TCP segment from ", ip.src.str());
    return;
  }
  FourTuple t;
  t.local = net::SocketAddr{ip.dst, seg->dst_port};
  t.remote = net::SocketAddr{ip.src, seg->src_port};

  if (TcpConnection* conn = find(t)) {
    ++stats_.segments_demuxed;
    conn->on_segment(*seg);
    return;
  }

  if (replica_mode_) {
    // Hold segments until ST-TCP announces the connection (ISS/IRS).
    auto& q = pending_[t];
    if (q.size() < kMaxBufferedSegments) {
      q.push_back(*seg);
      ++stats_.segments_buffered;
    }
    if (seg->flags.syn && !seg->flags.ack) {
      pending_syn_time_[t] = world().now();
      if (inference_ && accept_isn_fn_) {
        // Deterministic accept ISN: the primary's ISS is a pure function of
        // the tuple, so the replica can be seeded from the SYN alone and
        // complete the handshake passively — even if the primary dies before
        // either its SYN-ACK or its announce leaves the machine.
        inference_(t, accept_isn_fn_(t), seg->seq, /*established=*/false);
      }
    } else if (inference_ && seg->flags.ack && !seg->flags.rst &&
               seg->payload.empty()) {
      // ISN inference: the first pure ACK tapped hard on the heels of the
      // client's SYN is its handshake ACK, so ack-1 is the primary's ISS.
      // The time window guards against mistaking a later data ACK (which
      // would infer a corrupting ISS) for the handshake ACK.
      auto st = pending_syn_time_.find(t);
      if (st != pending_syn_time_.end() &&
          world().now() - st->second <= cfg_.replica_isn_inference_window) {
        SeqWire irs = 0;
        for (const TcpSegment& b : q) {
          if (b.flags.syn) {
            irs = b.seq;
            break;
          }
        }
        pending_syn_time_.erase(st);
        inference_(t, seg->ack - 1, irs, /*established=*/true);
      } else if (st != pending_syn_time_.end()) {
        pending_syn_time_.erase(st);  // window expired: never infer
      }
    }
    return;
  }

  if (seg->flags.syn && !seg->flags.ack) {
    auto l = listeners_.find(seg->dst_port);
    if (l != listeners_.end() && host_.has_ip(ip.dst)) {
      TcpConnection& conn = create_connection(t);
      ++stats_.connections_accepted;
      TcpConnection::Callbacks cb;
      cb.on_established = [this, &conn] { dispatch_accept(conn); };
      conn.set_callbacks(std::move(cb));
      conn.start_accept(seg->seq);
      return;
    }
  }
  send_rst_for(ip, *seg);
}

TcpConnection& TcpStack::create_connection(const FourTuple& tuple) {
  auto conn = std::make_unique<TcpConnection>(*this, tuple, cfg_,
                                              log_.child(tuple.remote.str()));
  TcpConnection& ref = *conn;
  conns_.emplace(tuple, std::move(conn));
  return ref;
}

void TcpStack::dispatch_accept(TcpConnection& conn) {
  auto l = listeners_.find(conn.tuple().local.port);
  if (l != listeners_.end() && l->second) {
    l->second(conn);  // application installs its callbacks here
  }
  if (observer_ != nullptr) observer_->on_accepted(conn);
}

void TcpStack::send_rst_for(const net::Ipv4Header& ip, const TcpSegment& seg) {
  if (seg.flags.rst) return;  // never RST a RST
  log_.debug("RST for unknown segment ", seg.str(), " from ", ip.src.str(), ":",
             seg.src_port, " to port ", seg.dst_port);
  TcpSegment rst;
  rst.src_port = seg.dst_port;
  rst.dst_port = seg.src_port;
  rst.flags.rst = true;
  if (seg.flags.ack) {
    rst.seq = seg.ack;
  } else {
    rst.seq = 0;
    rst.flags.ack = true;
    rst.ack = seg.seq + seg.seq_len();
  }
  ++stats_.rst_sent;
  net::Bytes l4 = rst.serialize(ip.dst, ip.src);
  host_.send_ip(ip.dst, ip.src, net::kIpProtoTcp, l4);
}

void TcpStack::schedule_gc(const FourTuple& tuple) {
  // Defer destruction: finish() may be deep inside the connection's own
  // call stack.
  domain().schedule_after(sim::Duration::zero(), [this, tuple] {
    auto it = conns_.find(tuple);
    if (it != conns_.end() && it->second->state() == TcpState::kClosed) {
      demux_invalidate(tuple);
      conns_.erase(it);
    }
  });
}

}  // namespace sttcp::tcp
