#include "tcp/segment.h"

#include "net/checksum.h"
#include "net/headers.h"
#include "sim/strings.h"

namespace sttcp::tcp {

std::string TcpFlags::str() const {
  std::string s;
  auto add = [&s](const char* f) {
    if (!s.empty()) s += "|";
    s += f;
  };
  if (syn) add("SYN");
  if (fin) add("FIN");
  if (rst) add("RST");
  if (psh) add("PSH");
  if (ack) add("ACK");
  if (s.empty()) s = "-";
  return s;
}

namespace {

std::uint16_t pack_off_flags(const TcpFlags& flags) {
  std::uint16_t off_flags = std::uint16_t{5} << 12;  // data offset = 5 words
  if (flags.fin) off_flags |= 0x001;
  if (flags.syn) off_flags |= 0x002;
  if (flags.rst) off_flags |= 0x004;
  if (flags.psh) off_flags |= 0x008;
  if (flags.ack) off_flags |= 0x010;
  return off_flags;
}

}  // namespace

net::Bytes TcpSegment::serialize(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip) const {
  net::Bytes out;
  out.reserve(kHeaderSize + payload.size());
  net::ByteWriter w(out);
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u16(pack_off_flags(flags));
  w.u16(window);
  const std::size_t ck_at = w.size();
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.bytes(payload);
  w.patch_u16(ck_at, net::transport_checksum(src_ip, dst_ip, net::kIpProtoTcp, out));
  return out;
}

net::Bytes TcpSegment::serialize(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                                 ChecksumMemo& memo) const {
  net::Bytes out;
  out.reserve(kHeaderSize + payload.size());
  net::ByteWriter w(out);
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  const std::uint16_t off_flags = pack_off_flags(flags);
  w.u16(off_flags);
  w.u16(window);
  const std::size_t ck_at = w.size();
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  w.bytes(payload);

  std::uint16_t ck;
  if (memo.valid && memo.seq == seq && memo.off_flags == off_flags &&
      memo.payload_len == payload.size()) {
    // Same byte range, same shape: only ack and window can have moved.
    ck = net::checksum_update32(memo.sum, memo.ack, ack);
    ck = net::checksum_update(ck, memo.window, window);
  } else {
    ck = net::transport_checksum(src_ip, dst_ip, net::kIpProtoTcp, out);
  }
  memo = ChecksumMemo{true, seq, ack, window, off_flags, payload.size(), ck};
  w.patch_u16(ck_at, ck);
  return out;
}

std::optional<TcpSegment> TcpSegment::parse(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                                            net::BytesView data, bool verify_checksum) {
  if (data.size() < kHeaderSize) return std::nullopt;
  if (verify_checksum &&
      net::transport_checksum(src_ip, dst_ip, net::kIpProtoTcp, data) != 0) {
    return std::nullopt;
  }
  net::ByteReader r(data);
  TcpSegment s;
  s.src_port = r.u16();
  s.dst_port = r.u16();
  s.seq = r.u32();
  s.ack = r.u32();
  const std::uint16_t off_flags = r.u16();
  const std::size_t header_len = std::size_t{4} * ((off_flags >> 12) & 0xf);
  if (header_len < kHeaderSize || header_len > data.size()) return std::nullopt;
  s.flags.fin = (off_flags & 0x001) != 0;
  s.flags.syn = (off_flags & 0x002) != 0;
  s.flags.rst = (off_flags & 0x004) != 0;
  s.flags.psh = (off_flags & 0x008) != 0;
  s.flags.ack = (off_flags & 0x010) != 0;
  s.window = r.u16();
  (void)r.u16();  // checksum (verified above)
  (void)r.u16();  // urgent pointer
  r.skip(header_len - kHeaderSize);  // options ignored
  s.payload = net::to_bytes(r.rest());
  return s;
}

std::string TcpSegment::str() const {
  return sim::cat(flags.str(), " seq=", seq, " ack=", ack, " len=", payload.size(),
                  " win=", window);
}

}  // namespace sttcp::tcp
