#include "tcp/rto.h"

#include <algorithm>

namespace sttcp::tcp {

void RtoEstimator::sample(sim::Duration rtt) {
  if (rtt.is_negative()) return;
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = sim::Duration::nanos(rtt.ns() / 2);
    has_sample_ = true;
  } else {
    // RTTVAR <- 3/4 RTTVAR + 1/4 |SRTT - R'|; SRTT <- 7/8 SRTT + 1/8 R'.
    const std::int64_t err =
        srtt_.ns() > rtt.ns() ? srtt_.ns() - rtt.ns() : rtt.ns() - srtt_.ns();
    rttvar_ = sim::Duration::nanos((3 * rttvar_.ns() + err) / 4);
    srtt_ = sim::Duration::nanos((7 * srtt_.ns() + rtt.ns()) / 8);
  }
  const std::int64_t var_term = std::max(cfg_.rto_granularity.ns(), 4 * rttvar_.ns());
  rto_ = sim::Duration::nanos(srtt_.ns() + var_term);
}

sim::Duration RtoEstimator::rto() const {
  std::int64_t ns = rto_.ns();
  ns = std::max(ns, cfg_.min_rto.ns());
  // Apply backoff, clamping to max_rto (and guarding shift overflow).
  for (int i = 0; i < backoff_shift_ && ns < cfg_.max_rto.ns(); ++i) ns *= 2;
  ns = std::min(ns, cfg_.max_rto.ns());
  return sim::Duration::nanos(ns);
}

}  // namespace sttcp::tcp
