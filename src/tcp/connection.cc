#include "tcp/connection.h"

#include <algorithm>

#include "tcp/stack.h"

namespace sttcp::tcp {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

const char* to_string(CloseReason r) {
  switch (r) {
    case CloseReason::kGraceful: return "graceful";
    case CloseReason::kReset: return "reset";
    case CloseReason::kTimeout: return "timeout";
    case CloseReason::kAborted: return "aborted";
  }
  return "?";
}

TcpConnection::TcpConnection(TcpStack& stack, FourTuple tuple, const TcpConfig& cfg,
                             sim::Logger log)
    : stack_(stack),
      tuple_(tuple),
      cfg_(cfg),
      log_(std::move(log)),
      send_buf_(cfg.send_buffer),
      reasm_(cfg.recv_buffer),
      rto_(cfg),
      cc_(cfg),
      retrans_timer_(stack.domain()),
      persist_timer_(stack.domain()),
      time_wait_timer_(stack.domain()),
      writable_notify_timer_(stack.domain()),
      keepalive_timer_(stack.domain()),
      ack_flush_timer_(stack.domain()) {
  reasm_.set_deliver_tap([this](std::uint64_t off, net::BytesView data) {
    if (rx_tap_) rx_tap_(off, data);
  });
  if (obs::MetricsRegistry* m = stack.world().metrics()) {
    const std::string prefix = "tcp." + stack.host().name();
    m_retransmissions_ = &m->counter(prefix + ".retransmissions");
    m_rto_expiries_ = &m->counter(prefix + ".rto_expiries");
    m_fast_retransmissions_ = &m->counter(prefix + ".fast_retransmissions");
    m_srtt_us_ = &m->histogram(prefix + ".srtt_us");
    m_cwnd_bytes_ = &m->histogram(prefix + ".cwnd_bytes");
  }
}

void TcpConnection::record_cwnd() {
  const std::uint64_t w = cc_.cwnd();
  // cwnd() reports "infinite" when congestion control is disabled.
  if (m_cwnd_bytes_ != nullptr && w != ~std::uint64_t{0}) m_cwnd_bytes_->record(w);
}

TcpConnection::~TcpConnection() = default;

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

std::size_t TcpConnection::send(net::BytesView data) {
  if (app_closed_) return 0;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return 0;
  const std::size_t n = send_buf_.append(data);
  app_written_ += n;
  transmit_pending();
  return n;
}

net::Bytes TcpConnection::read(std::size_t max) {
  const std::size_t before_window = reasm_.window();
  net::Bytes out = reasm_.read(max);
  app_read_ += out.size();
  // Window update: if the advertised window was effectively closed and the
  // read reopened it, tell the sender so it does not sit in persist.
  if (!out.empty() && before_window < cfg_.mss && reasm_.window() >= cfg_.mss &&
      is_open() && state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    emit_ack();
  }
  return out;
}

std::size_t TcpConnection::send_space() const {
  if (app_closed_) return 0;
  return send_buf_.free_space();
}

void TcpConnection::close() {
  if (app_closed_ || state_ == TcpState::kClosed) return;
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd) {
    finish(CloseReason::kAborted);
    return;
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return;
  app_closed_ = true;
  fin_generated_ = true;  // TCP will produce a FIN: heartbeat notice
  log_.debug("close(): FIN generated");
  transmit_pending();
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  app_closed_ = true;
  rst_pending_ = true;
  rst_generated_ = true;
  log_.debug("abort(): RST generated");
  transmit_pending();
}

void TcpConnection::release_fin() {
  fin_released_ = true;
  transmit_pending();
}

// ---------------------------------------------------------------------------
// Opens
// ---------------------------------------------------------------------------

void TcpConnection::start_connect() {
  iss_ = stack_.choose_isn();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynSent;
  emit_control(TcpFlags{.syn = true}, wire(iss_));
  arm_retransmit();
}

void TcpConnection::start_accept(SeqWire client_isn) {
  irs_ = client_isn;
  rcv_nxt_ = irs_ + 1;
  iss_ = stack_.choose_accept_isn(tuple_);
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynRcvd;
  emit_control(TcpFlags{.syn = true, .ack = true}, wire(iss_));
  arm_retransmit();
}

void TcpConnection::start_replica(const ReplicaInit& init) {
  replica_ = true;
  suppressed_ = true;
  iss_ = init.iss;
  irs_ = init.irs;
  if (init.midstream) {
    // Warm start from a survivor's snapshot (reintegration). The sequence
    // pointers resume exactly where the survivor's connection stands: the
    // unacked tail refills the send buffer (a later takeover retransmits it
    // from here), the unread tail refills the receive queue (application
    // reads stay byte-exact), and everything below those tails is treated as
    // already delivered. All of this must be in place before on_established
    // fires — the adopting application may write immediately.
    state_ = TcpState::kEstablished;
    payload_acked_ = init.acked;
    send_buf_.reset_to(init.acked);
    send_buf_.append(init.tx_data);
    app_written_ = send_buf_.end_offset();
    snd_una_ = iss_ + 1 + init.acked;
    snd_nxt_ = iss_ + 1 + send_buf_.end_offset();
    highest_sent_ = snd_nxt_;
    snd_wnd_ = 65535;  // refreshed by the first tapped client ACK
    reasm_.reset_to(init.read);
    app_read_ = init.read;
    if (!init.rx_data.empty()) reasm_.insert(init.read, init.rx_data);
    rcv_nxt_ = irs_ + 1 + reasm_.next_expected();
    if (init.peer_fin && !peer_fin_offset_.has_value()) {
      peer_fin_offset_ = init.peer_fin_offset;
      maybe_consume_peer_fin();
    }
    last_rx_at_ = stack_.world().now();
    arm_keepalive();
    log_.debug("replica adopted mid-stream at acked=", init.acked,
               " written=", app_written_, " read=", init.read,
               " received=", reasm_.next_expected());
    if (cb_.on_established) cb_.on_established();
    return;
  }
  rcv_nxt_ = irs_ + 1;
  snd_nxt_ = iss_ + 1;
  if (init.established) {
    snd_una_ = iss_ + 1;
    state_ = TcpState::kEstablished;
    last_rx_at_ = stack_.world().now();
    arm_keepalive();
    if (cb_.on_established) cb_.on_established();
  } else {
    // Seeded from a tapped client SYN: the client's handshake ACK will
    // complete establishment, exactly as it does on the primary. No SYN-ACK
    // is emitted (output is suppressed regardless).
    snd_una_ = iss_;
    state_ = TcpState::kSynRcvd;
    arm_retransmit();
  }
}

// ---------------------------------------------------------------------------
// Output engine
// ---------------------------------------------------------------------------

std::uint16_t TcpConnection::advertised_window() const {
  return static_cast<std::uint16_t>(std::min<std::size_t>(reasm_.window(), 65535));
}

void TcpConnection::transmit_pending() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kTimeWait) return;

  if (rst_pending_) {
    const bool allowed = fin_released_ || !close_gate_ || close_gate_(true);
    if (allowed) {
      emit_control(TcpFlags{.ack = true, .rst = true}, wire(snd_nxt_));
      finish(CloseReason::kAborted);
    }
    return;
  }

  const bool can_send_data =
      state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait;
  if (can_send_data) {
    const std::uint64_t effective_wnd = std::min<std::uint64_t>(snd_wnd_, cc_.cwnd());
    while (true) {
      if (snd_nxt_ < iss_ + 1) break;  // handshake not complete
      const std::uint64_t nxt_po = send_payload_offset(snd_nxt_);
      if (nxt_po >= send_buf_.end_offset()) break;  // nothing unsent
      const std::uint64_t flight = flight_size();
      if (flight >= effective_wnd) break;
      const std::size_t len = static_cast<std::size_t>(
          std::min<std::uint64_t>({cfg_.mss, send_buf_.end_offset() - nxt_po,
                                   effective_wnd - flight}));
      if (len == 0) break;
      emit_data_segment(snd_nxt_, len, /*retransmit=*/false);
      snd_nxt_ += len;
    }
    try_emit_fin_or_rst();
  }

  if (flight_size() > 0) {
    if (!retrans_timer_.armed()) arm_retransmit();
  } else {
    retrans_timer_.cancel();
    retries_ = 0;
  }
  arm_persist_if_needed();
  if (replica_) apply_deferred_ack();
}

bool TcpConnection::try_emit_fin_or_rst() {
  if (!app_closed_ || rst_pending_ || fin_seq_.has_value()) return false;
  // FIN goes out only after all data has been transmitted.
  if (snd_nxt_ < iss_ + 1) return false;
  if (send_payload_offset(snd_nxt_) < send_buf_.end_offset()) return false;
  const bool allowed = fin_released_ || !close_gate_ || close_gate_(false);
  if (!allowed) {
    log_.debug("FIN withheld by close gate");
    return false;
  }
  fin_released_ = true;
  fin_seq_ = snd_nxt_;
  snd_nxt_ += 1;
  emit_control(TcpFlags{.ack = true, .fin = true}, wire(*fin_seq_));
  if (state_ == TcpState::kEstablished) {
    state_ = TcpState::kFinWait1;
  } else if (state_ == TcpState::kCloseWait) {
    state_ = TcpState::kLastAck;
  }
  log_.debug("FIN sent, state=", to_string(state_));
  arm_retransmit();
  return true;
}

void TcpConnection::emit_data_segment(std::uint64_t seq_abs, std::size_t len,
                                      bool retransmit) {
  TcpSegment seg;
  seg.seq = wire(seq_abs);
  seg.ack = wire(rcv_nxt_);
  seg.flags.ack = true;
  seg.flags.psh = true;
  seg.payload = send_buf_.slice(send_payload_offset(seq_abs), len);
  if (seg.payload.empty()) {
    // The bytes were already acknowledged and released (stale retransmit).
    return;
  }
  if (retransmit) {
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
    rtt_pending_ = false;  // Karn: never sample a retransmitted range
  } else if (!rtt_pending_ && seq_abs >= highest_sent_) {
    // Karn's rule also covers go-back-N rewinds: bytes at or below the
    // high-water mark have been transmitted before and are never sampled.
    rtt_pending_ = true;
    rtt_seq_ = seq_abs + seg.payload.size() - 1;
    rtt_sent_at_ = stack_.world().now();
  }
  if (seq_abs + seg.payload.size() > highest_sent_) {
    highest_sent_ = seq_abs + seg.payload.size();
  }
  send_segment(std::move(seg), /*counts_payload=*/true,
               retransmit ? &retrans_memo_ : nullptr);
}

void TcpConnection::emit_control(TcpFlags flags, SeqWire seq_wire) {
  TcpSegment seg;
  seg.seq = seq_wire;
  seg.flags = flags;
  if (flags.ack) seg.ack = wire(rcv_nxt_);
  send_segment(std::move(seg), /*counts_payload=*/false);
}

void TcpConnection::emit_ack() {
  emit_control(TcpFlags{.ack = true}, wire(snd_nxt_));
}

void TcpConnection::schedule_ack() {
  if (ack_pending_) return;
  ack_pending_ = true;
  ack_flush_timer_.arm(sim::Duration::zero(), [this] {
    if (!ack_pending_) return;  // superseded by an ACK-bearing segment
    ack_pending_ = false;
    if (state_ == TcpState::kClosed) return;
    emit_ack();
  });
}

void TcpConnection::send_segment(TcpSegment&& seg, bool counts_payload,
                                 TcpSegment::ChecksumMemo* memo) {
  seg.src_port = tuple_.local.port;
  seg.dst_port = tuple_.remote.port;
  seg.window = advertised_window();
  if (seg.flags.ack && ack_pending_) {
    // This segment carries the cumulative ACK; the deferred pure ACK would
    // be a duplicate.
    ack_pending_ = false;
    ack_flush_timer_.cancel();
  }
  if (counts_payload) stats_.bytes_sent += seg.payload.size();
  if (suppressed_) {
    ++stats_.segments_suppressed;
    return;
  }
  ++stats_.segments_sent;
  stack_.emit(tuple_, seg, memo);
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

void TcpConnection::on_segment(const TcpSegment& seg) {
  if (state_ == TcpState::kClosed) return;
  ++stats_.segments_received;
  last_rx_at_ = stack_.world().now();
  keepalive_unanswered_ = 0;

  if (state_ == TcpState::kSynSent) {
    on_segment_synsent(seg);
    return;
  }

  if (state_ == TcpState::kTimeWait) {
    // Re-ACK a retransmitted FIN; otherwise stay quiet.
    if (seg.flags.fin) emit_ack();
    return;
  }

  const SeqAbs seq_abs = unwrap32(seg.seq, rcv_nxt_);

  if (seg.flags.rst) {
    // Accept the reset if it falls in (or at the edge of) our window.
    const std::uint64_t win = std::max<std::uint64_t>(reasm_.window(), 1);
    if (seq_abs >= rcv_nxt_ - 1 && seq_abs < rcv_nxt_ + win) {
      log_.debug("RST received");
      finish(CloseReason::kReset);
    }
    return;
  }

  if (seg.flags.syn) {
    // Duplicate SYN from the client while we are (or were) in the handshake.
    if (state_ == TcpState::kSynRcvd && seq_abs == irs_) {
      emit_control(TcpFlags{.syn = true, .ack = true}, wire(iss_));
      return;
    }
    // Anything else: challenge-ACK and drop.
    emit_ack();
    return;
  }

  process_ack(seg);
  if (state_ == TcpState::kClosed) return;  // RST/finish during ACK processing

  const SeqAbs rcv_before = rcv_nxt_;
  bool want_ack = false;
  if (!seg.payload.empty()) {
    process_payload(seg);
    want_ack = true;
  }
  // An empty segment below rcv_nxt is a keepalive / stale probe: answer it
  // so the prober knows we are alive.
  if (seg.payload.empty() && !seg.flags.syn && !seg.flags.fin &&
      seq_abs < rcv_nxt_) {
    want_ack = true;
  }

  if (seg.flags.fin) {
    const std::uint64_t fin_po =
        recv_payload_offset(seq_abs + seg.payload.size());
    if (!peer_fin_offset_.has_value()) {
      peer_fin_offset_ = fin_po;
      log_.debug("peer FIN at payload offset ", fin_po);
    }
    want_ack = true;
  }
  maybe_consume_peer_fin();

  if (want_ack && state_ != TcpState::kClosed) {
    // In-order data that advanced rcv_nxt_ coalesces into one end-of-tick
    // cumulative ACK (see schedule_ack). Everything else — out-of-order or
    // duplicate payload, probes, a FIN — keeps the classic per-segment ACK,
    // so the sender's duplicate-ACK accounting and close handshake see
    // exactly the segments they did before.
    if (rcv_nxt_ > rcv_before && !seg.flags.fin) {
      schedule_ack();
    } else {
      emit_ack();
    }
  }
}

void TcpConnection::on_segment_synsent(const TcpSegment& seg) {
  if (seg.flags.rst) {
    if (seg.flags.ack && unwrap32(seg.ack, snd_nxt_) == snd_nxt_) {
      finish(CloseReason::kReset);
    }
    return;
  }
  if (!seg.flags.syn || !seg.flags.ack) return;  // simultaneous open: unsupported
  const SeqAbs ack_abs = unwrap32(seg.ack, snd_nxt_);
  if (ack_abs != iss_ + 1) return;  // bad handshake ACK
  irs_ = unwrap32(seg.seq, iss_);   // any reference works for the first contact
  rcv_nxt_ = irs_ + 1;
  snd_una_ = iss_ + 1;
  snd_wnd_ = seg.window;
  snd_wl1_ = irs_;
  snd_wl2_ = ack_abs;
  retries_ = 0;
  rto_.on_ack();
  become_established();
  emit_ack();
  transmit_pending();
}

void TcpConnection::process_ack(const TcpSegment& seg) {
  if (!seg.flags.ack) return;
  const SeqAbs ack_abs = unwrap32(seg.ack, snd_nxt_);
  const SeqAbs seq_abs = unwrap32(seg.seq, rcv_nxt_);

  // Acceptance bound: a go-back-N rewind can leave snd_nxt_ below data the
  // peer already received from the original transmissions, so judge ACKs
  // against the high-water mark.
  SeqAbs sent_limit = std::max(snd_nxt_, highest_sent_);
  if (fin_seq_.has_value()) sent_limit = std::max(sent_limit, *fin_seq_ + 1);
  if (ack_abs > sent_limit) {
    // Acknowledges data we have never sent. On a replica this is the normal
    // case of the client acking the primary's transmissions ahead of our
    // own (suppressed) sends: remember and apply once we catch up. The
    // window update must still happen — a replica that never sees an
    // "acceptable" ACK (e.g. the handshake ACK was lost on its tap) would
    // otherwise keep snd_wnd_ == 0 and never be able to transmit at all.
    if (replica_) {
      deferred_ack_ = std::max(deferred_ack_, ack_abs);
      if (snd_wl1_ < seq_abs || (snd_wl1_ == seq_abs && snd_wl2_ <= ack_abs)) {
        snd_wnd_ = seg.window;
        snd_wl1_ = seq_abs;
        snd_wl2_ = ack_abs;
      }
      if (state_ == TcpState::kSynRcvd && ack_abs > iss_ + 1) {
        // A replica seeded from the tapped SYN whose handshake ACK was lost
        // on the tap: the client acking past ISS+1 proves the primary's
        // handshake completed, so establish now — otherwise every later ACK
        // lands here and the replica is stuck in SYN_RCVD for good.
        snd_una_ = iss_ + 1;
        retries_ = 0;
        retrans_timer_.cancel();
        become_established();
      }
      transmit_pending();
    } else {
      emit_ack();
    }
    return;
  }

  if (ack_abs > snd_una_) {
    // The ACK may overtake a rewound snd_nxt_: that range is delivered and
    // must not be resent.
    if (ack_abs > snd_nxt_) snd_nxt_ = ack_abs;
    // --- new data acknowledged ---
    const std::uint64_t payload_end =
        fin_seq_.has_value() ? std::min(ack_abs, *fin_seq_) : ack_abs;
    if (payload_end > iss_ + 1) {
      const std::uint64_t acked_po = payload_end - iss_ - 1;
      if (acked_po > payload_acked_) {
        cc_.on_ack(acked_po - payload_acked_);
        record_cwnd();
        payload_acked_ = acked_po;
        send_buf_.ack_to(acked_po);
      }
    }
    if (fin_seq_.has_value() && ack_abs >= *fin_seq_ + 1) fin_acked_ = true;
    snd_una_ = ack_abs;
    retries_ = 0;
    dup_acks_ = 0;
    rto_.on_ack();
    if (rtt_pending_ && ack_abs > rtt_seq_) {
      rto_.sample(stack_.world().now() - rtt_sent_at_);
      rtt_pending_ = false;
      if (m_srtt_us_ != nullptr) {
        m_srtt_us_->record(static_cast<std::uint64_t>(rto_.srtt().us()));
      }
      record_cwnd();
    }
    // Restart (or clear) the retransmission timer for remaining flight.
    retrans_timer_.cancel();
    if (flight_size() > 0) arm_retransmit();

    switch (state_) {
      case TcpState::kSynRcvd:
        if (snd_una_ >= iss_ + 1) become_established();
        break;
      case TcpState::kFinWait1:
        if (fin_acked_) {
          state_ = peer_fin_consumed_ ? TcpState::kTimeWait : TcpState::kFinWait2;
          if (state_ == TcpState::kTimeWait) enter_time_wait();
        }
        break;
      case TcpState::kClosing:
        if (fin_acked_) {
          state_ = TcpState::kTimeWait;
          enter_time_wait();
        }
        break;
      case TcpState::kLastAck:
        if (fin_acked_) {
          finish(CloseReason::kGraceful);
          return;
        }
        break;
      default:
        break;
    }
    notify_writable();
  } else if (ack_abs == snd_una_ && seg.payload.empty() && !seg.flags.fin &&
             flight_size() > 0) {
    ++dup_acks_;
    ++stats_.dup_acks_received;
    if (dup_acks_ == 3) {
      ++stats_.fast_retransmissions;
      if (m_fast_retransmissions_ != nullptr) m_fast_retransmissions_->inc();
      cc_.on_fast_retransmit(flight_size());
      record_cwnd();
      if (fin_seq_.has_value() && snd_una_ == *fin_seq_) {
        emit_control(TcpFlags{.ack = true, .fin = true}, wire(*fin_seq_));
      } else {
        emit_data_segment(snd_una_, cfg_.mss, /*retransmit=*/true);
      }
    }
  }

  // Window update (RFC 793 WL1/WL2 rule).
  if (snd_wl1_ < seq_abs || (snd_wl1_ == seq_abs && snd_wl2_ <= ack_abs)) {
    const std::uint64_t old_wnd = snd_wnd_;
    snd_wnd_ = seg.window;
    snd_wl1_ = seq_abs;
    snd_wl2_ = ack_abs;
    if (old_wnd == 0 && snd_wnd_ > 0) {
      // Window reopened: leave persist mode and resend stalled flight now.
      persist_shift_ = 0;
      persist_timer_.cancel();
      if (flight_size() > 0 && !fin_seq_.has_value()) {
        emit_data_segment(snd_una_, cfg_.mss, /*retransmit=*/true);
      }
    }
  }

  transmit_pending();
}

void TcpConnection::process_payload(const TcpSegment& seg) {
  const SeqAbs seq_abs = unwrap32(seg.seq, rcv_nxt_);
  // Clip anything at or before the SYN (retransmitted handshake overlap).
  std::uint64_t start = seq_abs;
  net::BytesView data(seg.payload);
  if (start < irs_ + 1) {
    const std::uint64_t skip = irs_ + 1 - start;
    if (skip >= data.size()) return;
    data = data.subspan(static_cast<std::size_t>(skip));
    start = irs_ + 1;
  }
  const bool receiving_state =
      state_ == TcpState::kEstablished || state_ == TcpState::kSynRcvd ||
      state_ == TcpState::kFinWait1 || state_ == TcpState::kFinWait2;
  if (!receiving_state) return;

  if (start > rcv_nxt_) {
    // Data above the expected position — record the lowest such start even
    // when it falls outside the window and is discarded (this is the only
    // evidence of an unfillable hole after a takeover; see rx_future_floor).
    const std::uint64_t po = start - irs_ - 1;
    if (!future_floor_.has_value() || po < *future_floor_) future_floor_ = po;
  }
  const std::size_t delivered = reasm_.insert(start - irs_ - 1, data);
  rcv_nxt_ = irs_ + 1 + reasm_.next_expected() + (peer_fin_consumed_ ? 1 : 0);
  if (future_floor_.has_value() && reasm_.next_expected() >= *future_floor_) {
    future_floor_.reset();
  }
  if (delivered > 0 && cb_.on_readable) cb_.on_readable();
}

std::size_t TcpConnection::inject_stream_bytes(std::uint64_t offset,
                                               net::BytesView data) {
  const std::size_t delivered = reasm_.insert(offset, data);
  rcv_nxt_ = irs_ + 1 + reasm_.next_expected() + (peer_fin_consumed_ ? 1 : 0);
  if (future_floor_.has_value() && reasm_.next_expected() >= *future_floor_) {
    future_floor_.reset();
  }
  maybe_consume_peer_fin();
  if (delivered > 0 && cb_.on_readable) cb_.on_readable();
  return delivered;
}

void TcpConnection::maybe_consume_peer_fin() {
  if (!peer_fin_offset_.has_value() || peer_fin_consumed_) return;
  if (reasm_.next_expected() < *peer_fin_offset_) return;  // data still missing
  peer_fin_consumed_ = true;
  rcv_nxt_ = irs_ + 1 + reasm_.next_expected() + 1;
  log_.debug("peer FIN consumed");
  switch (state_) {
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      state_ = fin_acked_ ? TcpState::kTimeWait : TcpState::kClosing;
      if (state_ == TcpState::kTimeWait) enter_time_wait();
      break;
    case TcpState::kFinWait2:
      state_ = TcpState::kTimeWait;
      enter_time_wait();
      break;
    default:
      break;
  }
  if (cb_.on_peer_closed) cb_.on_peer_closed();
}

void TcpConnection::apply_deferred_ack() {
  if (deferred_ack_ <= snd_una_) return;
  const SeqAbs target = std::min(deferred_ack_, snd_nxt_);
  if (target <= snd_una_) return;
  const std::uint64_t payload_end =
      fin_seq_.has_value() ? std::min(target, *fin_seq_) : target;
  if (payload_end > iss_ + 1) {
    const std::uint64_t acked_po = payload_end - iss_ - 1;
    if (acked_po > payload_acked_) {
      cc_.on_ack(acked_po - payload_acked_);
      payload_acked_ = acked_po;
      send_buf_.ack_to(acked_po);
    }
  }
  if (fin_seq_.has_value() && target >= *fin_seq_ + 1) fin_acked_ = true;
  snd_una_ = target;
  retries_ = 0;
  rto_.on_ack();
  retrans_timer_.cancel();
  if (flight_size() > 0) arm_retransmit();
  notify_writable();
}

void TcpConnection::notify_writable() {
  if (writable_notify_timer_.armed()) return;
  if (app_closed_ || send_buf_.free_space() == 0) return;
  writable_notify_timer_.arm(sim::Duration::zero(), [this] {
    if (state_ == TcpState::kClosed || app_closed_) return;
    if (cb_.on_writable && send_buf_.free_space() > 0) cb_.on_writable();
  });
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

void TcpConnection::arm_retransmit() {
  retrans_timer_.arm(rto_.rto(), [this] { on_retransmit_timeout(); });
}

void TcpConnection::on_retransmit_timeout() {
  if (!stack_.alive() || state_ == TcpState::kClosed) return;
  if (flight_size() == 0) return;
  if (m_rto_expiries_ != nullptr) m_rto_expiries_->inc();

  const bool handshake =
      state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd;
  const int limit = handshake ? cfg_.syn_retries : cfg_.max_retries;
  // Zero-window probing must not kill the connection: the peer is alive,
  // just full (this is exactly the application-hang scenario ST-TCP detects
  // at a higher layer).
  const bool counts = !(snd_wnd_ == 0 && !handshake);
  if (counts) ++retries_;
  if (retries_ > limit) {
    log_.debug("retransmission limit reached");
    finish(CloseReason::kTimeout);
    return;
  }

  rtt_pending_ = false;  // Karn
  rto_.on_timeout();
  if (state_ == TcpState::kSynSent) {
    emit_control(TcpFlags{.syn = true}, wire(iss_));
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
  } else if (state_ == TcpState::kSynRcvd) {
    emit_control(TcpFlags{.syn = true, .ack = true}, wire(iss_));
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
  } else if (fin_seq_.has_value() && snd_una_ == *fin_seq_) {
    emit_control(TcpFlags{.ack = true, .fin = true}, wire(*fin_seq_));
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
  } else {
    cc_.on_rto(flight_size());
    record_cwnd();
    // Go-back-N: everything beyond snd_una_ is presumed lost. Rewind
    // snd_nxt_ so the normal output engine resends the whole range under
    // the post-loss congestion window (one segment now, ramping with the
    // returning ACKs). Without this, recovery after a long outage would
    // crawl at one segment per timeout.
    ++stats_.retransmissions;
    if (m_retransmissions_ != nullptr) m_retransmissions_->inc();
    if (fin_seq_.has_value() && !fin_acked_) {
      // The FIN (never acknowledged) rides behind the resent data again;
      // undo its emission bookkeeping and the close-progress transition.
      fin_seq_.reset();
      if (state_ == TcpState::kFinWait1) {
        state_ = TcpState::kEstablished;
      } else if (state_ == TcpState::kClosing || state_ == TcpState::kLastAck) {
        state_ = TcpState::kCloseWait;
      }
    }
    snd_nxt_ = snd_una_;
    transmit_pending();
  }
  arm_retransmit();
}

void TcpConnection::arm_persist_if_needed() {
  if (persist_timer_.armed()) return;
  if (snd_wnd_ != 0 || flight_size() != 0) return;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) return;
  if (snd_nxt_ < iss_ + 1) return;
  if (send_payload_offset(snd_nxt_) >= send_buf_.end_offset()) return;  // no data
  sim::Duration d = cfg_.persist_base;
  for (int i = 0; i < persist_shift_ && d < cfg_.persist_max; ++i) d = d * 2;
  if (d > cfg_.persist_max) d = cfg_.persist_max;
  persist_timer_.arm(d, [this] { on_persist_timeout(); });
}

void TcpConnection::on_persist_timeout() {
  if (!stack_.alive() || state_ == TcpState::kClosed) return;
  if (snd_wnd_ != 0) {
    transmit_pending();
    return;
  }
  if (snd_nxt_ < iss_ + 1 ||
      send_payload_offset(snd_nxt_) >= send_buf_.end_offset()) {
    return;
  }
  // Send one byte beyond the window as a probe; the receiver will discard
  // it while full and re-advertise its window in the ACK.
  ++stats_.probes_sent;
  ++persist_shift_;
  emit_data_segment(snd_nxt_, 1, /*retransmit=*/false);
  snd_nxt_ += 1;
  arm_retransmit();
}

void TcpConnection::arm_keepalive() {
  if (!cfg_.keepalive) return;
  keepalive_timer_.arm(cfg_.keepalive_idle, [this] { on_keepalive_timeout(); });
}

void TcpConnection::on_keepalive_timeout() {
  if (!stack_.alive() || !is_open()) return;
  const sim::Duration idle = stack_.world().now() - last_rx_at_;
  if (idle < cfg_.keepalive_idle) {
    // Traffic happened since arming; wait out the remainder.
    keepalive_timer_.arm(cfg_.keepalive_idle - idle, [this] { on_keepalive_timeout(); });
    return;
  }
  if (keepalive_unanswered_ >= cfg_.keepalive_probes) {
    log_.debug("keepalive probes exhausted");
    finish(CloseReason::kTimeout);
    return;
  }
  // Classic probe: an empty segment one sequence number below snd_nxt
  // provokes an ACK from a live peer.
  ++keepalive_unanswered_;
  ++stats_.keepalives_sent;
  log_.debug("keepalive probe #", keepalive_unanswered_);
  emit_control(TcpFlags{.ack = true}, wire(snd_nxt_ - 1));
  keepalive_timer_.arm(cfg_.keepalive_interval, [this] { on_keepalive_timeout(); });
}

void TcpConnection::enter_time_wait() {
  retrans_timer_.cancel();
  persist_timer_.cancel();
  keepalive_timer_.cancel();
  time_wait_timer_.arm(cfg_.msl * 2, [this] { finish(CloseReason::kGraceful); });
}

// ---------------------------------------------------------------------------
// Transitions
// ---------------------------------------------------------------------------

void TcpConnection::become_established() {
  state_ = TcpState::kEstablished;
  last_rx_at_ = stack_.world().now();
  arm_keepalive();
  log_.debug("established");
  if (cb_.on_established) cb_.on_established();
}

void TcpConnection::finish(CloseReason reason) {
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
  retrans_timer_.cancel();
  persist_timer_.cancel();
  time_wait_timer_.cancel();
  keepalive_timer_.cancel();
  log_.debug("closed (", to_string(reason), ")");
  if (cb_.on_closed) cb_.on_closed(reason);
  stack_.on_connection_finished(*this, reason);
}

void TcpConnection::on_takeover(bool immediate_retransmit) {
  suppressed_ = false;
  if (state_ == TcpState::kTimeWait) {
    // Not gated on immediate_retransmit — this is masking, not an
    // optimization. The peer's FIN may have been consumed silently while we
    // were a suppressed replica: the dying primary never ACKed it, and the
    // peer is still retransmitting its FIN from LAST_ACK. Complete the
    // close handshake now, and restart the 2*MSL clock so that if this ACK
    // is lost the retransmitted FIN still finds a connection to re-answer
    // it (expiring on the pre-takeover schedule would greet it with a RST).
    emit_ack();
    enter_time_wait();
    return;
  }
  if (!immediate_retransmit) return;
  // Optimization beyond the paper's prototype: do not wait for the next
  // retransmission timer — resync the client immediately.
  rto_.on_ack();
  retries_ = 0;
  if (flight_size() > 0) {
    if (fin_seq_.has_value() && snd_una_ == *fin_seq_) {
      emit_control(TcpFlags{.ack = true, .fin = true}, wire(*fin_seq_));
    } else {
      emit_data_segment(snd_una_, cfg_.mss, /*retransmit=*/true);
    }
    arm_retransmit();
  }
  if (is_open() && state_ != TcpState::kSynSent && state_ != TcpState::kSynRcvd) {
    emit_ack();
  }
  transmit_pending();
}

}  // namespace sttcp::tcp
