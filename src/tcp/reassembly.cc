#include "tcp/reassembly.h"

#include <algorithm>

namespace sttcp::tcp {

std::size_t ReassemblyBuffer::ooo_bytes() const {
  std::size_t n = 0;
  for (const auto& [off, frag] : ooo_) n += frag.size();
  return n;
}

std::size_t ReassemblyBuffer::window() const {
  const std::size_t used = ready_.size() + ooo_bytes();
  return used >= capacity_ ? 0 : capacity_ - used;
}

std::size_t ReassemblyBuffer::insert(std::uint64_t at, net::BytesView data) {
  if (data.empty()) return 0;
  const std::uint64_t win_end = next_ + window();
  std::uint64_t start = at;
  std::uint64_t end = at + data.size();

  // Clip to [next_, win_end): duplicates below next_ and bytes beyond the
  // window are discarded (the sender will retransmit the latter).
  if (start < next_) start = next_;
  if (end > win_end) end = win_end;
  if (start >= end) return 0;
  data = data.subspan(static_cast<std::size_t>(start - at),
                      static_cast<std::size_t>(end - start));

  if (start == next_) {
    // In-order: append directly, then drain any now-contiguous fragments.
    deliver(next_, data);
    next_ += data.size();
    std::size_t delivered = data.size();
    while (!ooo_.empty()) {
      auto it = ooo_.begin();
      const std::uint64_t frag_start = it->first;
      const std::uint64_t frag_end = frag_start + it->second.size();
      if (frag_start > next_) break;
      if (frag_end > next_) {
        const std::size_t skip = static_cast<std::size_t>(next_ - frag_start);
        deliver(next_, net::BytesView(it->second).subspan(skip));
        delivered += it->second.size() - skip;
        next_ = frag_end;
      }
      ooo_.erase(it);
    }
    return delivered;
  }

  // Out of order: store, trimming overlap with existing fragments.
  // Find the fragment at or before `start` to trim the front.
  auto after = ooo_.lower_bound(start);
  if (after != ooo_.begin()) {
    auto prev = std::prev(after);
    const std::uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end > start) {
      if (prev_end >= end) return 0;  // fully covered
      data = data.subspan(static_cast<std::size_t>(prev_end - start));
      start = prev_end;
    }
  }
  // Trim or absorb fragments that begin inside [start, end).
  net::Bytes frag(data.begin(), data.end());
  while (after != ooo_.end() && after->first < end) {
    const std::uint64_t next_start = after->first;
    const std::uint64_t next_end = next_start + after->second.size();
    if (next_end <= end) {
      // Existing fragment fully covered by the new one: drop it.
      after = ooo_.erase(after);
      continue;
    }
    // Partial overlap: keep only our non-overlapping prefix.
    frag.resize(static_cast<std::size_t>(next_start - start));
    break;
  }
  if (!frag.empty()) ooo_.emplace(start, std::move(frag));
  return 0;
}

net::Bytes ReassemblyBuffer::read(std::size_t max) {
  const std::size_t n = std::min(max, ready_.size());
  net::Bytes out;
  out.reserve(n);
  out.insert(out.end(), ready_.begin(), ready_.begin() + n);
  ready_.erase(ready_.begin(), ready_.begin() + n);
  return out;
}

}  // namespace sttcp::tcp
