// TCP stack: demultiplexes segments to connections, owns listeners and
// connection lifetimes, and exposes the socket-style API plus the ST-TCP
// seams (replica mode, replica creation, connection observer).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/host.h"
#include "tcp/config.h"
#include "tcp/connection.h"

namespace sttcp::tcp {

class TcpStack {
 public:
  /// Invoked when a passively-opened connection (including a replica on the
  /// backup) reaches ESTABLISHED. The handler installs the application's
  /// callbacks on the connection.
  using AcceptHandler = std::function<void(TcpConnection&)>;

  /// ST-TCP's view of connection lifecycle on this stack.
  class ConnectionObserver {
   public:
    virtual ~ConnectionObserver() = default;
    /// A passively-accepted connection became ESTABLISHED (primary uses this
    /// to announce the connection to the backup).
    virtual void on_accepted(TcpConnection& conn) = 0;
    /// A connection fully finished and is about to be destroyed.
    virtual void on_finished(TcpConnection& conn, CloseReason reason) = 0;
  };

  struct Stats {
    std::uint64_t segments_in = 0;
    std::uint64_t segments_demuxed = 0;
    std::uint64_t segments_buffered = 0;   // replica mode, pre-announce
    std::uint64_t bad_checksum = 0;
    std::uint64_t rst_sent = 0;            // RSTs for unknown connections
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_initiated = 0;
    std::uint64_t replicas_created = 0;
    std::uint64_t demux_cache_hits = 0;    // served from the flat slot array
  };

  TcpStack(net::Host& host, TcpConfig config);
  ~TcpStack();
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // --- socket API -----------------------------------------------------------
  void listen(std::uint16_t port, AcceptHandler handler);
  /// Active open. `local_ip` must be one of the host's addresses. Returns the
  /// connection (owned by the stack; valid until on_closed fires and the
  /// event loop turns over).
  TcpConnection& connect(net::Ipv4Addr local_ip, net::SocketAddr remote,
                         TcpConnection::Callbacks callbacks);

  // --- ST-TCP seams -----------------------------------------------------------
  /// In replica mode the stack never answers SYNs or unknown segments; it
  /// buffers them per 4-tuple until ST-TCP announces the connection. Leaving
  /// replica mode (takeover) discards segments buffered for never-announced
  /// tuples — new SYNs take the normal listener path from then on.
  void set_replica_mode(bool on);
  bool replica_mode() const { return replica_mode_; }

  /// Create a replica connection from the primary's announcement. Buffered
  /// segments for the tuple are replayed into it. If a tapped client SYN was
  /// buffered, the replica completes the handshake passively.
  TcpConnection& create_replica(const FourTuple& tuple,
                                TcpConnection::ReplicaInit init);

  /// Replica-mode ISN inference (paper §2: "during TCP connection
  /// initialization, the backup changes its initial sequence number to match
  /// that of the primary"). When the tap has seen both the client's SYN
  /// (yielding IRS) and its handshake ACK (whose ack field is ISS+1), the
  /// stack can reconstruct the primary's ISN without any announcement —
  /// which also covers a primary that dies before its announce arrives.
  /// `established` is true when inference came from the handshake ACK (the
  /// primary's connection is established by then) and false when it came
  /// from the SYN alone via the deterministic accept-ISN function (the
  /// replica completes the handshake passively, like the primary does).
  using ReplicaInference = std::function<void(
      const FourTuple& tuple, SeqWire iss, SeqWire irs, bool established)>;
  void set_replica_inference(ReplicaInference fn) { inference_ = std::move(fn); }

  /// Deterministic accept-side ISN (RFC 6528 shape: a keyed function of the
  /// 4-tuple). When primary and backup share this function, a replica can
  /// reconstruct the primary's ISS from the tapped client SYN alone — no
  /// announcement, no handshake-ACK race — which closes the masking hole for
  /// connections the primary accepts in its last moments under load, when
  /// both the announce heartbeat and the SYN-ACK can die in a backlogged
  /// egress queue. isn_override still wins (tests pin exact ISNs with it).
  using AcceptIsnFn = std::function<SeqWire(const FourTuple&)>;
  void set_accept_isn_fn(AcceptIsnFn fn) { accept_isn_fn_ = std::move(fn); }

  void set_observer(ConnectionObserver* obs) { observer_ = obs; }

  /// Forget all connection state (a crashed host rebooted with blank RAM).
  /// Listeners survive — the boot re-runs the same software, so the same
  /// services are listening again. Registered as a Host boot hook.
  void reset_for_boot();

  // --- lookup ------------------------------------------------------------------
  TcpConnection* find(const FourTuple& tuple);
  /// Visit every connection in 4-tuple order. The order is part of the
  /// deterministic contract: reintegration's snapshot sweep derives replica
  /// id assignment from it.
  void for_each(const std::function<void(TcpConnection&)>& fn);
  std::size_t connection_count() const { return conns_.size(); }
  /// Total heap footprint of all connections plus replica-mode buffered
  /// segments (see TcpConnection::memory_bytes). Churn-scale memory audit.
  std::size_t memory_bytes() const;
  /// Replica-mode segments currently held awaiting an announce (per-tuple
  /// occupancy, capped at max_buffered_segments() each) — lets the chaos
  /// invariants assert replica memory stays bounded.
  std::size_t pending_segments() const {
    std::size_t n = 0;
    for (const auto& [t, q] : pending_) n += q.size();
    return n;
  }
  static constexpr std::size_t max_buffered_segments() { return kMaxBufferedSegments; }

  // --- plumbing (used by TcpConnection) ----------------------------------------
  sim::World& world() { return host_.world(); }
  /// The owning host's CPU clock domain: every stack/connection timer is
  /// scheduled through it, so a grey CPU stall (sim/clock_domain.h) slides
  /// the whole TCP data path — RTOs, delayed ACKs, deferred accepts — while
  /// the world clock runs on. Healthy domains forward verbatim to the loop.
  sim::ClockDomain& domain() { return host_.cpu_domain(); }
  bool alive() const { return host_.alive(); }
  const TcpConfig& config() const { return cfg_; }
  SeqWire choose_isn() {
    if (cfg_.isn_override.has_value()) return *cfg_.isn_override;
    return static_cast<SeqWire>(isn_rng_.next_u64());
  }
  /// ISN for a passively-opened (accepted) connection: the deterministic
  /// accept function when installed, the random draw otherwise.
  SeqWire choose_accept_isn(const FourTuple& t) {
    if (cfg_.isn_override.has_value()) return *cfg_.isn_override;
    if (accept_isn_fn_) return accept_isn_fn_(t);
    return static_cast<SeqWire>(isn_rng_.next_u64());
  }
  /// Serialize and hand the segment to the host's IP layer. `memo`, when
  /// non-null, enables the RFC 1624 retransmit fast path (see
  /// TcpSegment::ChecksumMemo) — the connection passes its own memo for
  /// retransmissions and null for first transmissions.
  bool emit(const FourTuple& tuple, const TcpSegment& seg,
            TcpSegment::ChecksumMemo* memo = nullptr);
  void on_connection_finished(TcpConnection& conn, CloseReason reason);

  const Stats& stats() const { return stats_; }
  net::Host& host() { return host_; }

 private:
  void on_packet(const net::Ipv4Header& ip, net::BytesView l4);
  TcpConnection& create_connection(const FourTuple& tuple);
  void dispatch_accept(TcpConnection& conn);
  void send_rst_for(const net::Ipv4Header& ip, const TcpSegment& seg);
  void schedule_gc(const FourTuple& tuple);

  net::Host& host_;
  TcpConfig cfg_;
  sim::Logger log_;
  sim::Rng isn_rng_;
  // Unordered: demux is one hash lookup per segment regardless of the
  // connection count (a red-black tree walk costs ~15 tuple comparisons at
  // 2,000+ churning connections). All ordered iteration goes via for_each.
  std::unordered_map<FourTuple, std::unique_ptr<TcpConnection>> conns_;

  // Flat direct-mapped demux cache in front of conns_: the steady-state
  // receive path (data/ACK on an established connection) resolves with one
  // cheap multiplicative hash and one tuple compare, no hash-table probe.
  // Filled on a find() miss, invalidated slot-wise when a connection is
  // GC-erased and wholesale on boot; a stale or colliding slot fails the
  // full-tuple compare and falls through to the map.
  struct DemuxSlot {
    FourTuple key{};
    TcpConnection* conn = nullptr;
  };
  static constexpr std::size_t kDemuxSlots = 2048;  // power of two
  static std::size_t demux_slot_index(const FourTuple& t) {
    std::uint64_t h = (std::uint64_t{t.remote.ip.value()} << 32) ^
                      (std::uint64_t{t.remote.port} << 16) ^ t.local.port;
    h *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 53);  // top 11 bits
  }
  void demux_invalidate(const FourTuple& t) {
    DemuxSlot& s = demux_[demux_slot_index(t)];
    if (s.conn != nullptr && s.key == t) s = DemuxSlot{};
  }
  std::vector<DemuxSlot> demux_ = std::vector<DemuxSlot>(kDemuxSlots);
  std::map<std::uint16_t, AcceptHandler> listeners_;
  ConnectionObserver* observer_ = nullptr;

  // Replica mode: segments seen before the primary's announcement.
  static constexpr std::size_t kMaxBufferedSegments = 256;
  std::unordered_map<FourTuple, std::vector<TcpSegment>> pending_;
  std::unordered_map<FourTuple, sim::SimTime> pending_syn_time_;

  ReplicaInference inference_;
  AcceptIsnFn accept_isn_fn_;
  bool replica_mode_ = false;
  std::uint16_t next_ephemeral_ = 49152;
  Stats stats_;
};

}  // namespace sttcp::tcp
