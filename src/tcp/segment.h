// TCP segment representation and byte-exact codec (20-byte header, no
// options), checksummed with the standard pseudo-header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/addr.h"
#include "net/bytes.h"
#include "tcp/seq.h"

namespace sttcp::tcp {

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  std::string str() const;
};

struct TcpSegment {
  static constexpr std::size_t kHeaderSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  SeqWire seq = 0;
  SeqWire ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;
  net::Bytes payload;

  /// Sequence space the segment occupies (payload + SYN + FIN).
  std::uint32_t seq_len() const {
    return static_cast<std::uint32_t>(payload.size()) + (flags.syn ? 1 : 0) +
           (flags.fin ? 1 : 0);
  }

  /// Memo of the last full serialization of a retransmitted byte range.
  /// Between two retransmissions of the same (seq, payload) the only header
  /// words that may differ are ack and window, so a memo hit derives the new
  /// checksum from the remembered one with two RFC 1624 incremental updates
  /// instead of re-summing the payload. The caller owns one memo per
  /// retransmit stream (the connection); a mismatch on seq, flags, or length
  /// falls back to the full sum and refreshes the memo.
  struct ChecksumMemo {
    bool valid = false;
    SeqWire seq = 0;
    SeqWire ack = 0;
    std::uint16_t window = 0;
    std::uint16_t off_flags = 0;
    std::size_t payload_len = 0;
    std::uint16_t sum = 0;
  };

  /// Serialize header+payload with a valid checksum.
  net::Bytes serialize(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip) const;

  /// Serialize with the RFC 1624 retransmit fast path. Produces bytes
  /// identical to the plain overload; `memo` must describe the same payload
  /// bytes whenever (seq, flags, length) match — true for TCP retransmits,
  /// where a sequence range's bytes are immutable.
  net::Bytes serialize(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                       ChecksumMemo& memo) const;

  /// Parse and (optionally) verify the checksum. Returns nullopt on a
  /// malformed or corrupt segment.
  static std::optional<TcpSegment> parse(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                                         net::BytesView data, bool verify_checksum);

  /// Compact rendering for logs: "SYN|ACK seq=x ack=y len=n win=w".
  std::string str() const;
};

}  // namespace sttcp::tcp
