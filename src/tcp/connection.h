// TCP connection state machine.
//
// Implements the RFC 793 state machine with RFC 6298 retransmission timing,
// RFC 5681-style congestion control, zero-window persist probing, and
// out-of-order reassembly, over the simulated network substrate.
//
// ST-TCP seams (all inert unless configured — the stack is a complete plain
// TCP implementation without them):
//  * suppression        — segments are fully built and accounted for, then
//                         dropped at the stack->NIC boundary (the backup's
//                         "network stack does not send them to the client");
//  * replica creation   — a connection can be instantiated from the
//                         primary's announced (ISS, IRS) instead of a local
//                         handshake, and applies client ACKs that arrive
//                         ahead of its own (suppressed) transmissions;
//  * close gate         — FIN/RST emission asks a gate first, so ST-TCP can
//                         delay a FIN by MaxDelayFIN or discard it;
//  * rx tap             — in-order client payload is mirrored to a tap (the
//                         primary's hold buffer feeds from this);
//  * stream injection   — missed-byte recovery inserts payload as if it had
//                         arrived from the wire;
//  * takeover           — drop suppression and (optionally) retransmit
//                         immediately instead of waiting for the timer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/addr.h"
#include "obs/metrics.h"
#include "sim/world.h"
#include "tcp/config.h"
#include "tcp/congestion.h"
#include "tcp/reassembly.h"
#include "tcp/rto.h"
#include "tcp/segment.h"
#include "tcp/send_buffer.h"

namespace sttcp::tcp {

class TcpStack;

/// Connection identity: local and remote transport endpoints.
struct FourTuple {
  net::SocketAddr local;
  net::SocketAddr remote;
  auto operator<=>(const FourTuple&) const = default;
  std::string str() const { return local.str() + "<->" + remote.str(); }
};

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* to_string(TcpState s);

enum class CloseReason {
  kGraceful,   // normal FIN/FIN close completed
  kReset,      // peer sent RST
  kTimeout,    // retransmissions exhausted / handshake timed out
  kAborted,    // local abort()
};

const char* to_string(CloseReason r);

class TcpConnection {
 public:
  struct Callbacks {
    std::function<void()> on_established;
    std::function<void()> on_readable;            // new in-order data
    std::function<void()> on_writable;            // send space available
    std::function<void()> on_peer_closed;         // peer FIN consumed (EOF)
    std::function<void(CloseReason)> on_closed;   // connection fully gone
  };

  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_suppressed = 0;
    std::uint64_t segments_received = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t fast_retransmissions = 0;
    std::uint64_t dup_acks_received = 0;
    std::uint64_t bytes_sent = 0;        // payload bytes, incl. retransmits
    std::uint64_t probes_sent = 0;       // zero-window probes
    std::uint64_t keepalives_sent = 0;
  };

  /// How a replica connection is seeded from the primary's announcement.
  struct ReplicaInit {
    SeqWire iss = 0;  // primary's initial send sequence
    SeqWire irs = 0;  // client's initial sequence
    /// True when the connection is known established (announce arrived after
    /// the handshake); false when seeded from a tapped client SYN.
    bool established = false;

    /// Mid-stream adoption (ST-TCP reintegration): a rejoining backup warm-
    /// starts the replica from the survivor's snapshot instead of from the
    /// connection's beginning. All offsets are absolute payload offsets.
    bool midstream = false;
    std::uint64_t acked = 0;   // payload bytes the client has acknowledged
    std::uint64_t read = 0;    // payload bytes the application has read
    net::Bytes tx_data;        // sent-but-unacked bytes [acked, written)
    net::Bytes rx_data;        // received-but-unread bytes [read, received)
    bool peer_fin = false;     // client FIN already received by the survivor
    std::uint64_t peer_fin_offset = 0;  // its payload offset when peer_fin
  };

  TcpConnection(TcpStack& stack, FourTuple tuple, const TcpConfig& cfg,
                sim::Logger log);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- application API ------------------------------------------------------
  /// Write bytes; returns how many were accepted (send-buffer space).
  std::size_t send(net::BytesView data);
  /// Read up to `max` in-order received bytes.
  net::Bytes read(std::size_t max);
  std::size_t readable() const { return reasm_.readable(); }
  std::size_t send_space() const;
  /// Graceful close: flush pending data, then FIN (subject to the close gate).
  void close();
  /// Hard abort: RST (subject to the close gate).
  void abort();
  bool peer_half_closed() const { return peer_fin_consumed_; }

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  // --- identity & state -----------------------------------------------------
  const FourTuple& tuple() const { return tuple_; }
  TcpState state() const { return state_; }
  bool is_open() const {
    return state_ != TcpState::kClosed && state_ != TcpState::kTimeWait;
  }
  SeqWire iss() const { return wire(iss_); }
  SeqWire irs() const { return wire(irs_); }

  // --- replication counters (the four fields ST-TCP's heartbeat carries) ----
  /// LastByteReceived: contiguous client payload bytes received by TCP.
  std::uint64_t bytes_received() const { return reasm_.next_expected(); }
  /// LastAckReceived: payload bytes the client has acknowledged.
  std::uint64_t bytes_acked_by_peer() const { return payload_acked_; }
  /// LastAppByteWritten: payload bytes the application wrote to the socket.
  std::uint64_t app_bytes_written() const { return app_written_; }
  /// LastAppByteRead: payload bytes the application read from the socket.
  std::uint64_t app_bytes_read() const { return app_read_; }

  /// FIN/RST generation notices for the heartbeat (set when the local side
  /// produced one, whether or not it has been released to the wire).
  bool fin_generated() const { return fin_generated_; }
  bool rst_generated() const { return rst_generated_; }

  const Stats& stats() const { return stats_; }

  // --- ST-TCP seams ----------------------------------------------------------
  void set_suppressed(bool on) { suppressed_ = on; }
  bool suppressed() const { return suppressed_; }

  /// Gate consulted before emitting a FIN (is_rst=false) or RST (is_rst=true).
  /// Returning false withholds the segment until release_fin() / the gate
  /// later returns true. Data queued before the FIN still flows.
  using CloseGate = std::function<bool(bool is_rst)>;
  void set_close_gate(CloseGate gate) { close_gate_ = std::move(gate); }
  /// Stop gating and emit the withheld FIN/RST (MaxDelayFIN expired).
  void release_fin();

  /// Observe every in-order payload byte as it is accepted from the wire
  /// (absolute payload offset of the first byte + data).
  using RxTap = std::function<void(std::uint64_t offset, net::BytesView data)>;
  void set_rx_tap(RxTap tap) { rx_tap_ = std::move(tap); }

  /// Missed-byte recovery: insert client payload as if received in sequence.
  /// Returns newly contiguous bytes.
  std::size_t inject_stream_bytes(std::uint64_t offset, net::BytesView data);

  /// Backup takes over the client connection: stop suppressing; when
  /// `immediate_retransmit`, reset backoff and retransmit/ACK right away
  /// instead of waiting for the next timer (paper behaviour is waiting).
  void on_takeover(bool immediate_retransmit);

  /// Initialize as a replica (see ReplicaInit). Called by the stack instead
  /// of a handshake.
  void start_replica(const ReplicaInit& init);

  // --- reintegration snapshot accessors --------------------------------------
  /// Sent-but-unacknowledged payload bytes [acked, written); the survivor
  /// ships these so a later takeover by the rejoiner can retransmit them.
  net::Bytes unacked_send_data() const {
    return send_buf_.slice(send_buf_.una_offset(), send_buf_.size());
  }
  /// Received-but-unread payload bytes [read, received); the rejoiner's
  /// application resumes reading exactly where the survivor's stands.
  net::Bytes unread_recv_data() const { return reasm_.peek(); }
  /// Payload offset of the client's FIN, if one has been received.
  std::optional<std::uint64_t> peer_fin_payload_offset() const {
    return peer_fin_offset_;
  }

  /// Receive-side gap introspection (ST-TCP recovery): true when
  /// out-of-order data is buffered beyond a hole; rx_gap_end() is the
  /// payload offset where that buffered data begins.
  bool has_rx_gap() const { return reasm_.has_gap(); }
  std::uint64_t rx_gap_end() const { return reasm_.gap_end(); }
  /// Lowest payload offset of data the peer has sent strictly above
  /// rcv_nxt (even if it fell outside our window). After a takeover this
  /// reveals the sender's snd_una: everything below it was acknowledged by
  /// the dead primary and will never be retransmitted — the logger target.
  std::optional<std::uint64_t> rx_future_floor() const { return future_floor_; }

  /// Peer's current advertised window (diagnostics / tests).
  std::uint64_t peer_window() const { return snd_wnd_; }
  /// Bytes in flight (sent, unacknowledged).
  std::uint64_t flight_size() const { return snd_nxt_ - snd_una_; }
  /// Approximate heap footprint: the object plus buffered payload in both
  /// directions. The capacity bench audits the sum across thousands of
  /// churning connections to catch per-connection memory creep.
  std::size_t memory_bytes() const {
    return sizeof(TcpConnection) + send_buf_.size() + reasm_.buffered_bytes();
  }

  // --- driven by the stack ----------------------------------------------------
  void start_connect();                      // active open (client)
  void start_accept(SeqWire client_isn);     // passive open: got SYN, send SYN-ACK
  void on_segment(const TcpSegment& seg);

 private:
  friend class TcpStack;

  // Output engine.
  void transmit_pending();
  bool try_emit_fin_or_rst();
  void emit_data_segment(std::uint64_t seq_abs, std::size_t len, bool retransmit);
  void emit_control(TcpFlags flags, SeqWire seq_wire);
  void emit_ack();
  /// Defer a cumulative ACK to the end of the current event-loop tick: every
  /// in-order segment processed in the same tick is covered by one ACK, and
  /// any ACK-bearing segment sent meanwhile (a piggybacked data segment, an
  /// immediate ACK) cancels the pending pure ACK outright. Out-of-order and
  /// probe segments never take this path — their duplicate ACKs stay
  /// per-segment so the sender's fast-retransmit counting (RFC 5681) is
  /// unaffected. The flush runs at the same simulated instant the segments
  /// arrived, so no delayed-ACK timer semantics are introduced.
  void schedule_ack();
  void send_segment(TcpSegment&& seg, bool counts_payload,
                    TcpSegment::ChecksumMemo* memo = nullptr);

  // Input processing.
  void on_segment_synsent(const TcpSegment& seg);
  void process_ack(const TcpSegment& seg);
  void process_payload(const TcpSegment& seg);
  void maybe_consume_peer_fin();
  void apply_deferred_ack();

  void notify_writable();

  // Timers.
  void arm_keepalive();
  void on_keepalive_timeout();
  void arm_retransmit();
  void on_retransmit_timeout();
  void arm_persist_if_needed();
  void on_persist_timeout();
  void enter_time_wait();

  // Transitions.
  void become_established();
  void finish(CloseReason reason);

  std::uint64_t send_payload_offset(std::uint64_t seq_abs) const {
    return seq_abs - iss_ - 1;
  }
  std::uint64_t recv_payload_offset(std::uint64_t seq_abs) const {
    return seq_abs - irs_ - 1;
  }
  std::uint16_t advertised_window() const;

  TcpStack& stack_;
  FourTuple tuple_;
  const TcpConfig& cfg_;
  sim::Logger log_;
  Callbacks cb_;

  TcpState state_ = TcpState::kClosed;

  // Send side (absolute 64-bit sequence space).
  SeqAbs iss_ = 0;
  SeqAbs snd_una_ = 0;
  SeqAbs snd_nxt_ = 0;
  SeqAbs highest_sent_ = 0;  // high-water mark (Karn: no samples below it)
  std::uint64_t snd_wnd_ = 0;
  SeqAbs snd_wl1_ = 0;  // seq of last window update
  SeqAbs snd_wl2_ = 0;  // ack of last window update
  SendBuffer send_buf_;
  std::optional<SeqAbs> fin_seq_;  // sequence our FIN occupies, once queued
  bool fin_acked_ = false;

  // Receive side.
  SeqAbs irs_ = 0;
  SeqAbs rcv_nxt_ = 0;  // mirrors irs_ + 1 + reasm_.next_expected() (+1 w/ FIN)
  ReassemblyBuffer reasm_;
  std::optional<std::uint64_t> future_floor_;     // see rx_future_floor()
  std::optional<std::uint64_t> peer_fin_offset_;  // payload offset of peer FIN
  bool peer_fin_consumed_ = false;

  // Application counters.
  std::uint64_t app_written_ = 0;
  std::uint64_t app_read_ = 0;
  std::uint64_t payload_acked_ = 0;

  // Close bookkeeping.
  bool app_closed_ = false;      // close() called
  bool fin_generated_ = false;   // TCP produced a FIN (HB notice)
  bool rst_generated_ = false;
  bool fin_released_ = false;    // gate passed / release_fin() called
  bool rst_pending_ = false;

  // Replica / ST-TCP.
  bool replica_ = false;
  bool suppressed_ = false;
  SeqAbs deferred_ack_ = 0;  // highest client ACK seen beyond snd_nxt_
  CloseGate close_gate_;
  RxTap rx_tap_;

  // Loss recovery.
  RtoEstimator rto_;
  CongestionControl cc_;
  sim::OneShotTimer retrans_timer_;
  sim::OneShotTimer persist_timer_;
  sim::OneShotTimer time_wait_timer_;
  int retries_ = 0;
  int persist_shift_ = 0;
  int dup_acks_ = 0;

  // Deferred, coalesced on_writable delivery: notifying synchronously from
  // inside the application's own send() (via the replica deferred-ACK path)
  // would re-enter the app's write loop.
  sim::OneShotTimer writable_notify_timer_;

  // Keepalive.
  sim::OneShotTimer keepalive_timer_;
  sim::SimTime last_rx_at_;
  int keepalive_unanswered_ = 0;

  // ACK coalescing (see schedule_ack).
  sim::OneShotTimer ack_flush_timer_;
  bool ack_pending_ = false;

  // RFC 1624 retransmit checksum memo: retransmissions of the same byte
  // range reuse the previous serialization's checksum (see
  // TcpSegment::ChecksumMemo).
  TcpSegment::ChecksumMemo retrans_memo_;

  // RTT sampling (one in-flight sample, Karn's rule).
  bool rtt_pending_ = false;
  SeqAbs rtt_seq_ = 0;
  sim::SimTime rtt_sent_at_;

  Stats stats_;

  // Telemetry (bound per host in the constructor when the World carries a
  // registry; all null otherwise — a single branch per event when off).
  void record_cwnd();
  obs::Counter* m_retransmissions_ = nullptr;
  obs::Counter* m_rto_expiries_ = nullptr;
  obs::Counter* m_fast_retransmissions_ = nullptr;
  obs::Histogram* m_srtt_us_ = nullptr;
  obs::Histogram* m_cwnd_bytes_ = nullptr;
};

}  // namespace sttcp::tcp

/// Hash for unordered demux tables. The stack's per-segment lookup is the
/// hottest map operation at thousands of concurrent connections.
template <>
struct std::hash<sttcp::tcp::FourTuple> {
  std::size_t operator()(const sttcp::tcp::FourTuple& t) const noexcept {
    const std::uint64_t a =
        (static_cast<std::uint64_t>(t.local.ip.value()) << 16) | t.local.port;
    const std::uint64_t b =
        (static_cast<std::uint64_t>(t.remote.ip.value()) << 16) | t.remote.port;
    return std::hash<std::uint64_t>{}(a * 0x9e3779b97f4a7c15ULL ^ b);
  }
};
