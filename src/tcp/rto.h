// RFC 6298 retransmission timeout estimator with Karn's algorithm and
// exponential backoff.
#pragma once

#include "sim/time.h"
#include "tcp/config.h"

namespace sttcp::tcp {

class RtoEstimator {
 public:
  explicit RtoEstimator(const TcpConfig& cfg)
      : cfg_(cfg), rto_(cfg.initial_rto) {}

  /// Record an RTT sample from a segment that was NOT retransmitted
  /// (Karn's algorithm: callers must not sample retransmitted segments).
  void sample(sim::Duration rtt);

  /// Current timeout for the next (re)transmission, including backoff.
  sim::Duration rto() const;

  /// Timer expired: double the backoff (clamped to max_rto).
  void on_timeout() { backoff_shift_ = backoff_shift_ >= 12 ? 12 : backoff_shift_ + 1; }

  /// New ACK advanced snd_una: collapse the backoff.
  void on_ack() { backoff_shift_ = 0; }

  int backoff_shift() const { return backoff_shift_; }
  bool has_samples() const { return has_sample_; }
  sim::Duration srtt() const { return srtt_; }
  sim::Duration rttvar() const { return rttvar_; }

 private:
  const TcpConfig& cfg_;
  sim::Duration srtt_;
  sim::Duration rttvar_;
  sim::Duration rto_;  // base (un-backed-off) timeout
  int backoff_shift_ = 0;
  bool has_sample_ = false;
};

}  // namespace sttcp::tcp
