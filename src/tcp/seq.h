// TCP sequence-number arithmetic.
//
// On the wire sequence numbers are 32-bit and wrap; internally the stack
// tracks *absolute* 64-bit sequence positions (SeqAbs) so window and buffer
// logic never has to reason about wraparound. unwrap32() maps a wire value
// to the absolute position closest to a reference — the standard trick for
// extending a wrapping counter.
#pragma once

#include <cstdint>

namespace sttcp::tcp {

/// Absolute (unwrapped) sequence position. Low 32 bits are the wire value.
using SeqAbs = std::uint64_t;

/// Wire (wrapping) sequence number.
using SeqWire = std::uint32_t;

inline constexpr SeqWire wire(SeqAbs abs) { return static_cast<SeqWire>(abs); }

/// Map wire value `s` to the SeqAbs with the same low 32 bits that is
/// closest to `reference`. Correct as long as the true value is within
/// +/- 2^31 of the reference, which TCP's window rules guarantee.
inline constexpr SeqAbs unwrap32(SeqWire s, SeqAbs reference) {
  const SeqWire ref_low = static_cast<SeqWire>(reference);
  const std::int32_t delta = static_cast<std::int32_t>(s - ref_low);
  return reference + static_cast<std::int64_t>(delta);
}

// Classic mod-2^32 comparisons, used by the few places that must reason
// about raw wire values (e.g. validating a wire ACK before unwrapping).
inline constexpr bool seq_lt(SeqWire a, SeqWire b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline constexpr bool seq_le(SeqWire a, SeqWire b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline constexpr bool seq_gt(SeqWire a, SeqWire b) { return seq_lt(b, a); }
inline constexpr bool seq_ge(SeqWire a, SeqWire b) { return seq_le(b, a); }

}  // namespace sttcp::tcp
