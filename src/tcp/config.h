// Tunables for the userspace TCP stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "sim/time.h"

namespace sttcp::tcp {

struct TcpConfig {
  /// Maximum payload bytes per segment (Ethernet MTU 1500 - 20 IP - 20 TCP).
  std::size_t mss = 1460;

  /// Send buffer capacity (unacked + unsent bytes).
  std::size_t send_buffer = 256 * 1024;
  /// Receive buffer capacity; also caps the advertised window (<= 65535
  /// because window scaling is not implemented).
  std::size_t recv_buffer = 64 * 1024;

  // RFC 6298 retransmission timing.
  sim::Duration initial_rto = sim::Duration::seconds(1);
  sim::Duration min_rto = sim::Duration::millis(200);
  sim::Duration max_rto = sim::Duration::seconds(60);
  /// Clock granularity G in the RTO formula.
  sim::Duration rto_granularity = sim::Duration::millis(1);

  /// SYN / SYN-ACK retransmission attempts before giving up.
  int syn_retries = 6;
  /// Data retransmission attempts before the connection is declared dead
  /// (maps to Linux tcp_retries2; the plain-TCP baseline in Demo 1 relies on
  /// this to show the client-visible connection failure).
  int max_retries = 15;

  /// Maximum segment lifetime; TIME_WAIT lasts 2*MSL.
  sim::Duration msl = sim::Duration::seconds(1);

  // Keepalive (off by default, like BSD sockets). When enabled, an idle
  // connection is probed; a peer that answers nothing is declared dead.
  bool keepalive = false;
  sim::Duration keepalive_idle = sim::Duration::seconds(30);
  sim::Duration keepalive_interval = sim::Duration::seconds(5);
  int keepalive_probes = 4;

  /// Zero-window persist probe timing.
  sim::Duration persist_base = sim::Duration::millis(500);
  sim::Duration persist_max = sim::Duration::seconds(60);

  // Congestion control (slow start + AIMD + fast retransmit).
  bool congestion_control = true;
  std::uint32_t initial_cwnd_segments = 10;

  /// Verify TCP/IP checksums on receive (on by default; benches may disable
  /// to isolate protocol costs).
  bool verify_checksums = true;

  /// Fixed initial sequence number for locally-opened connections
  /// (tests: e.g. force wraparound by starting near 2^32). Random when unset.
  std::optional<std::uint32_t> isn_override;

  /// Replica-mode ISN inference window: a pure ACK tapped within this long
  /// of the client's SYN is trusted to be the handshake ACK (ack = ISS+1).
  /// Later pure ACKs could be data acknowledgments and would infer a wrong,
  /// stream-corrupting ISS — so they are never used. Size to a few RTTs.
  sim::Duration replica_isn_inference_window = sim::Duration::millis(5);
};

}  // namespace sttcp::tcp
