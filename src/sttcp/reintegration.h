// Reintegration: returning to fault tolerance after a failover.
//
// The paper leaves rejoin undefined — after any takeover or non-FT
// transition the survivor runs unprotected forever. This module closes the
// loop with a snapshot-transfer protocol over the existing channels:
//
//   rejoiner boots ──heartbeat(rejoin_request, epoch)──► survivor
//   survivor: registers any unregistered connections, re-arms taps/hold
//             buffers, enters kReintegrating, streams a snapshot over the
//             control channel:
//               SnapshotBegin  epoch, conn count, app checkpoint length
//               SnapshotData   app checkpoint bytes (chunked)
//               SnapshotConn   per-connection identity + ISS/IRS + counters
//               SnapshotData   unacked send bytes / unread receive bytes
//               SnapshotEnd
//   rejoiner: buffers the snapshot, applies it atomically at SnapshotEnd —
//             stages the app checkpoint, warm-starts suppressed replica
//             connections mid-stream (tcp::ReplicaInit::midstream), then
//   rejoiner ──heartbeat(rejoin_ready, epoch)──► survivor
//   survivor ──RejoinCommit(epoch)──► rejoiner; both enter kReplicating.
//
// Client transfers stay in flight throughout: the rejoiner's stack taps and
// buffers live segments from the moment it boots, the replay at adoption
// plus ordinary missed-byte recovery against the survivor's re-armed hold
// buffer close any gap, and the snapshot's epoch makes every retry
// idempotent (all snapshot datagrams are unreliable UDP).
#pragma once

#include <cstdint>
#include <map>

#include "net/bytes.h"
#include "sim/world.h"
#include "sttcp/messages.h"
#include "tcp/connection.h"

namespace sttcp::sttcp {

class StTcpEndpoint;

class Reintegrator {
 public:
  explicit Reintegrator(StTcpEndpoint& ep);
  ~Reintegrator();
  Reintegrator(const Reintegrator&) = delete;
  Reintegrator& operator=(const Reintegrator&) = delete;

  // --- rejoiner side ---------------------------------------------------------
  /// Host boot hook: this node just came back from a crash. Re-enter the
  /// pair as a backup and start soliciting a snapshot.
  void enter_rejoin();
  /// Heartbeat flags the endpoint should carry this period.
  bool rejoin_request_flag() const;
  bool rejoin_ready_flag() const;
  std::uint32_t epoch() const { return epoch_; }
  /// The snapshot has been applied (replicas adopted); heartbeat records
  /// from the survivor are meaningful again.
  bool snapshot_applied() const { return applied_; }

  // --- survivor side ---------------------------------------------------------
  /// A peer heartbeat carried rejoin_request. Group mode passes the sender's
  /// member index (the snapshot targets ITS address; one rejoiner at a time);
  /// pair mode leaves it at -1 and the peer address is used.
  void on_rejoin_request(std::uint32_t epoch, int member = -1);
  /// A peer heartbeat carried rejoin_ready.
  void on_rejoin_ready(std::uint32_t epoch, int member = -1);

  /// Control-channel datagrams with type >= kSnapshotBegin land here.
  void on_control(net::BytesView payload);

 private:
  // Survivor.
  void begin_reintegration();
  void capture_and_send_snapshot();
  void arm_retry();
  void abandon();
  void send_commit(std::uint32_t epoch);

  // Rejoiner.
  void on_snapshot_begin(net::ByteReader& r);
  void on_snapshot_conn(net::ByteReader& r);
  void on_snapshot_data(net::ByteReader& r);
  void on_snapshot_end(net::ByteReader& r);
  void on_commit(net::ByteReader& r);
  void apply_snapshot();
  void send_control(const net::Bytes& payload);

  StTcpEndpoint& ep_;
  sim::OneShotTimer retry_timer_;

  std::uint32_t epoch_ = 0;            // epoch currently being negotiated
  std::uint32_t committed_epoch_ = 0;  // survivor: last completed epoch
  bool have_committed_ = false;
  int attempts_ = 0;                   // survivor: snapshots sent this epoch
  // Group mode, survivor side: which member the snapshot flows to (and its
  // address). -1 / zero in pair mode — send_control falls back to peer_ip.
  int rejoin_member_ = -1;
  net::Ipv4Addr rejoin_ip_;

  // Rejoiner: partial snapshot, applied atomically at SnapshotEnd.
  struct SnapConn {
    tcp::FourTuple tuple;
    std::uint32_t iss = 0;
    std::uint32_t irs = 0;
    bool peer_fin = false;
    std::uint64_t peer_fin_offset = 0;
    std::uint64_t received = 0, acked = 0, written = 0, read = 0;
    std::uint32_t tx_len = 0, rx_len = 0;
    net::Bytes tx, rx;
  };
  bool rx_active_ = false;
  std::uint32_t rx_epoch_ = 0;
  std::uint16_t rx_expected_conns_ = 0;
  net::Bytes rx_app_;  // assembled from kKindApp chunks; must reach rx_app_len_
  std::uint32_t rx_app_len_ = 0;
  std::map<std::uint16_t, SnapConn> rx_conns_;
  bool applied_ = false;
};

}  // namespace sttcp::sttcp
