#include "sttcp/reintegration.h"

#include <algorithm>
#include <vector>

#include "sttcp/endpoint.h"

namespace sttcp::sttcp {

namespace {
constexpr std::uint8_t kKindTx = 0;  // SnapshotData carries unacked send bytes
constexpr std::uint8_t kKindRx = 1;  // SnapshotData carries unread receive bytes
constexpr std::uint8_t kKindApp = 2;  // SnapshotData carries app checkpoint bytes
}  // namespace

Reintegrator::Reintegrator(StTcpEndpoint& ep)
    : ep_(ep), retry_timer_(ep.world_.loop()) {}

Reintegrator::~Reintegrator() = default;

bool Reintegrator::rejoin_request_flag() const {
  return ep_.mode_ == StTcpEndpoint::Mode::kRejoining && !applied_;
}

bool Reintegrator::rejoin_ready_flag() const {
  return ep_.mode_ == StTcpEndpoint::Mode::kRejoining && applied_;
}

void Reintegrator::send_control(const net::Bytes& payload) {
  // Pair mode: the one peer. Group mode: the member whose rejoin we serve.
  const net::Ipv4Addr dst =
      rejoin_ip_.value() != 0 ? rejoin_ip_ : ep_.cfg_.peer_ip;
  ep_.host_.udp_send(ep_.cfg_.my_ip, ep_.cfg_.control_port, dst,
                     ep_.cfg_.control_port, payload);
}

// ---------------------------------------------------------------------------
// Rejoiner side
// ---------------------------------------------------------------------------

void Reintegrator::enter_rejoin() {
  if (!ep_.started_) return;
  // Epoch: unique per boot. The sim clock is strictly later than at any
  // previous boot; the original role salts the low bit so both nodes booting
  // in the same microsecond cannot collide.
  const std::uint64_t boot_us =
      static_cast<std::uint64_t>((ep_.world_.now() - sim::SimTime()).us());
  if (ep_.group_mode()) {
    // Any subset of a group can reboot in the same microsecond; salt with
    // the member index instead of the (two-valued) role.
    epoch_ = static_cast<std::uint32_t>(
                 boot_us * 8 + static_cast<std::uint64_t>(ep_.my_member())) |
             1u << 31;
  } else {
    epoch_ = static_cast<std::uint32_t>(
                 boot_us * 2 + (ep_.role_ == Role::kPrimary ? 1 : 0)) |
             1u << 31;  // never zero, disjoint from the default
  }

  ep_.mode_ = StTcpEndpoint::Mode::kRejoining;
  ep_.role_ = Role::kBackup;
  ep_.conns_.clear();
  ep_.id_by_tuple_.clear();
  ep_.local_app_suspect_ = false;
  ep_.peer_app_suspect_ = false;
  ep_.ping_loop_active_ = false;
  ep_.my_ping_valid_ = false;
  ep_.my_ping_ok_ = false;
  ep_.peer_ping_fail_streak_ = 0;
  ep_.last_rx_ip_ = ep_.world_.now();
  ep_.last_rx_serial_ = ep_.world_.now();
  if (ep_.group_mode()) {
    // A crashed member's promotion/arbitration state died with it.
    ep_.awaiting_leader_ = false;
    ep_.ballot_.reset();
    ep_.promote_timer_.cancel();
    ep_.stonith_pending_.clear();
    ep_.have_granted_ = false;
    for (auto& p : ep_.peers_) {
      p.last_rx_ip = ep_.world_.now();
      p.last_rx_serial = ep_.world_.now();
      p.seen_hb = false;
      p.app_suspect = false;
      p.ping_fail_streak = 0;
    }
  }
  applied_ = false;
  rx_active_ = false;
  rx_app_.clear();
  rx_app_len_ = 0;
  rx_conns_.clear();

  // Replica mode must be on BEFORE the first tapped client frame arrives —
  // a non-replica stack answers segments of the live (unknown to it)
  // connection with a RST straight at the client.
  ep_.install_replica_seams();

  ep_.hb_timer_.start(ep_.cfg_.hb_period, [&ep = ep_] {
    ep.send_heartbeat();
    ep.detector_tick();
  });
  ep_.world_.trace().record(ep_.host_.name(), "rejoin_start");
  ep_.log_.info("rejoining as backup (epoch ", epoch_, ")");
  ep_.send_heartbeat(/*include_serial=*/false);
}

void Reintegrator::on_control(net::BytesView payload) {
  try {
    net::ByteReader r(payload);
    switch (static_cast<ControlType>(r.u8())) {
      case ControlType::kSnapshotBegin: on_snapshot_begin(r); break;
      case ControlType::kSnapshotConn: on_snapshot_conn(r); break;
      case ControlType::kSnapshotData: on_snapshot_data(r); break;
      case ControlType::kSnapshotEnd: on_snapshot_end(r); break;
      case ControlType::kRejoinCommit: on_commit(r); break;
      default: break;
    }
  } catch (const std::exception&) {
    // Truncated/garbled datagram: drop it; the survivor's retry timer will
    // resend the whole snapshot under the same epoch.
  }
}

void Reintegrator::on_snapshot_begin(net::ByteReader& r) {
  if (ep_.mode_ != StTcpEndpoint::Mode::kRejoining || applied_) return;
  const std::uint32_t e = r.u32();
  if (e != epoch_) return;  // a stale snapshot from a previous life
  rx_active_ = true;
  rx_epoch_ = e;
  rx_expected_conns_ = r.u16();
  // The checkpoint itself follows as kKindApp data chunks: a UDP datagram's
  // length field is 16-bit, so a large checkpoint cannot travel inline here.
  rx_app_len_ = r.u32();
  rx_app_.clear();
  rx_conns_.clear();  // a re-sent snapshot restarts accumulation
}

void Reintegrator::on_snapshot_conn(net::ByteReader& r) {
  if (!rx_active_ || applied_) return;
  const std::uint32_t e = r.u32();
  if (e != rx_epoch_) return;
  const std::uint16_t id = r.u16();
  SnapConn sc;
  const net::Ipv4Addr client_ip(r.u32());
  const std::uint16_t client_port = r.u16();
  const std::uint16_t local_port = r.u16();
  sc.tuple.local = net::SocketAddr{ep_.cfg_.service_ip, local_port};
  sc.tuple.remote = net::SocketAddr{client_ip, client_port};
  sc.iss = r.u32();
  sc.irs = r.u32();
  sc.peer_fin = r.u8() != 0;
  sc.peer_fin_offset = r.u64();
  sc.received = r.u64();
  sc.acked = r.u64();
  sc.written = r.u64();
  sc.read = r.u64();
  sc.tx_len = r.u32();
  sc.rx_len = r.u32();
  sc.tx.reserve(sc.tx_len);
  sc.rx.reserve(sc.rx_len);
  rx_conns_[id] = std::move(sc);
}

void Reintegrator::on_snapshot_data(net::ByteReader& r) {
  if (!rx_active_ || applied_) return;
  const std::uint32_t e = r.u32();
  if (e != rx_epoch_) return;
  const std::uint16_t id = r.u16();
  const std::uint8_t kind = r.u8();
  const std::uint64_t off = r.u64();
  const std::uint32_t len = r.u32();
  const net::BytesView data = r.bytes(len);
  if (kind == kKindApp) {
    if (off == rx_app_.size()) rx_app_.insert(rx_app_.end(), data.begin(), data.end());
    return;
  }
  auto it = rx_conns_.find(id);
  if (it == rx_conns_.end()) return;
  SnapConn& sc = it->second;
  net::Bytes& buf = kind == kKindTx ? sc.tx : sc.rx;
  const std::uint64_t base = kind == kKindTx ? sc.acked : sc.read;
  // Chunks arrive in order on the FIFO link; anything else (a drop upstream)
  // leaves the buffer short and SnapshotEnd will reject the attempt.
  if (off != base + buf.size()) return;
  buf.insert(buf.end(), data.begin(), data.end());
}

void Reintegrator::on_snapshot_end(net::ByteReader& r) {
  if (!rx_active_ || applied_) return;
  const std::uint32_t e = r.u32();
  if (e != rx_epoch_) return;
  const std::uint16_t count = r.u16();
  if (count != rx_expected_conns_ || rx_conns_.size() != count) return;
  if (rx_app_.size() != rx_app_len_) return;  // checkpoint chunk lost upstream
  for (const auto& [id, sc] : rx_conns_) {
    if (sc.tx.size() != sc.tx_len || sc.rx.size() != sc.rx_len) return;
  }
  apply_snapshot();
}

void Reintegrator::apply_snapshot() {
  // Atomic from the application's point of view: checkpoint staged first,
  // then every replica adopted (adoption calls into the app synchronously).
  if (ep_.checkpoint_restorer_) ep_.checkpoint_restorer_(rx_app_);
  std::size_t adopted = 0;
  for (auto& [id, sc] : rx_conns_) {
    // Opened during our rejoin window and already adopted via ISN inference
    // (the whole handshake was tapped): that replica is complete, keep it.
    if (ep_.id_by_tuple_.count(sc.tuple) != 0) continue;
    if (id < 0x8000) {
      ep_.next_id_ = std::max<std::uint16_t>(
          ep_.next_id_, static_cast<std::uint16_t>(id + 1));
    } else {
      ep_.next_inferred_id_ = std::max<std::uint16_t>(
          ep_.next_inferred_id_, static_cast<std::uint16_t>(id + 1));
    }
    auto rc = std::make_unique<StTcpEndpoint::ReplConn>(ep_.world_.loop(), ep_.cfg_);
    rc->id = id;
    rc->tuple = sc.tuple;
    rc->registered_at = ep_.world_.now();
    rc->peer_valid = true;
    rc->announce_confirmed = true;
    rc->p_received = sc.received;
    rc->p_acked = sc.acked;
    rc->p_written = sc.written;
    rc->p_read = sc.read;
    StTcpEndpoint::ReplConn* raw = rc.get();
    ep_.conns_.emplace(id, std::move(rc));
    ep_.id_by_tuple_[sc.tuple] = id;

    tcp::TcpConnection::ReplicaInit init;
    init.iss = sc.iss;
    init.irs = sc.irs;
    init.established = true;
    init.midstream = true;
    init.acked = sc.acked;
    init.read = sc.read;
    init.tx_data = std::move(sc.tx);
    init.rx_data = std::move(sc.rx);
    init.peer_fin = sc.peer_fin;
    init.peer_fin_offset = sc.peer_fin_offset;
    raw->conn = &ep_.stack_.create_replica(sc.tuple, std::move(init));
    ++ep_.stats_.replicas_created;
    ++ep_.stats_.snapshot_conns_adopted;
    ++adopted;
    ep_.world_.trace().record(ep_.host_.name(), "replica_adopted",
                              sc.tuple.str(), id);
  }
  rx_conns_.clear();
  rx_app_.clear();
  rx_active_ = false;
  applied_ = true;
  ep_.world_.trace().record(ep_.host_.name(), "snapshot_applied", "",
                            static_cast<std::int64_t>(adopted));
  ep_.log_.info("snapshot applied: ", adopted, " connection(s) adopted");
  // Signal readiness now rather than waiting out the heartbeat period.
  ep_.send_heartbeat(/*include_serial=*/false);
}

void Reintegrator::on_commit(net::ByteReader& r) {
  const std::uint32_t e = r.u32();
  if (ep_.mode_ != StTcpEndpoint::Mode::kRejoining || !applied_ || e != epoch_) {
    return;
  }
  ep_.mode_ = StTcpEndpoint::Mode::kReplicating;
  ep_.sync_decision_log();
  ++ep_.stats_.rejoins;
  ep_.last_rx_ip_ = ep_.world_.now();
  ep_.last_rx_serial_ = ep_.world_.now();
  if (ep_.timeline_ != nullptr) {
    ep_.timeline_->mark(obs::Milestone::kReintegrationComplete, ep_.world_.now());
  }
  ep_.world_.trace().record(ep_.host_.name(), "rejoin_complete");
  ep_.log_.info("rejoin complete (epoch ", e, "): replicating as backup");
}

// ---------------------------------------------------------------------------
// Survivor side
// ---------------------------------------------------------------------------

void Reintegrator::on_rejoin_request(std::uint32_t epoch, int member) {
  using Mode = StTcpEndpoint::Mode;
  const Mode m = ep_.mode_;
  if (m == Mode::kRejoining || m == Mode::kDead) return;
  if (have_committed_ && epoch == committed_epoch_) return;  // stale retry
  if (m == Mode::kReintegrating && epoch == epoch_) return;  // in progress
  if (m == Mode::kReintegrating && ep_.group_mode() && member != rejoin_member_) {
    return;  // one rejoiner at a time; the other keeps soliciting
  }
  if (m == Mode::kReplicating && ep_.role_ != Role::kPrimary) {
    // A replicating backup cannot serve a snapshot — its connections are
    // suppressed replicas. The detector will promote us first (the
    // requesting peer is by definition not heartbeating normally).
    return;
  }
  epoch_ = epoch;
  attempts_ = 0;
  rejoin_member_ = member;
  rejoin_ip_ = member >= 0 ? ep_.cfg_.group[static_cast<std::size_t>(member)].ip
                           : net::Ipv4Addr();
  begin_reintegration();
}

void Reintegrator::begin_reintegration() {
  using Mode = StTcpEndpoint::Mode;
  if (ep_.mode_ != Mode::kReintegrating) {
    // A group leader still replicating to live backups keeps all of its
    // per-member state: its holds, lag history and seams protect the OTHER
    // members. Only the pair-survivor / last-man-standing path re-arms from
    // scratch below.
    const bool live_group_leader = ep_.group_mode() &&
                                   ep_.mode_ == Mode::kReplicating &&
                                   ep_.view_.order.size() > 1;
    ep_.mode_ = Mode::kReintegrating;
    ep_.role_ = Role::kPrimary;  // the survivor serves; the rejoiner taps
    if (live_group_leader) {
      if (ep_.timeline_ != nullptr) {
        ep_.timeline_->mark(obs::Milestone::kReintegrationStart,
                            ep_.world_.now());
      }
      ep_.world_.trace().record(ep_.host_.name(), "reintegration_start");
      ep_.log_.info("reintegration started (epoch ", epoch_,
                    "), still replicating to live backups");
      capture_and_send_snapshot();
      arm_retry();
      return;
    }

    // Fresh peer-liveness and arbitration state: the rejoiner's heartbeats
    // start the clock over.
    ep_.last_rx_ip_ = ep_.world_.now();
    ep_.last_rx_serial_ = ep_.world_.now();
    ep_.peer_app_suspect_ = false;
    ep_.peer_ping_fail_streak_ = 0;
    ep_.ping_loop_active_ = false;
    ep_.my_ping_valid_ = false;
    ep_.ping_timer_.cancel();

    // A former backup's table mixes the dead primary's ids with inferred
    // ids; new registrations must collide with neither range.
    for (const auto& [id, rc] : ep_.conns_) {
      if (id < 0x8000) {
        ep_.next_id_ = std::max<std::uint16_t>(
            ep_.next_id_, static_cast<std::uint16_t>(id + 1));
      } else {
        ep_.next_inferred_id_ = std::max<std::uint16_t>(
            ep_.next_inferred_id_, static_cast<std::uint16_t>(id + 1));
      }
    }

    // Sweep in connections accepted while we ran unprotected (on_accepted
    // ignores them outside replication).
    std::vector<tcp::TcpConnection*> fresh;
    ep_.stack_.for_each([&](tcp::TcpConnection& c) {
      if (c.tuple().local.ip != ep_.cfg_.service_ip ||
          c.tuple().local.port != ep_.cfg_.service_port) {
        return;
      }
      if (!c.is_open()) return;
      if (ep_.id_by_tuple_.count(c.tuple()) != 0) return;
      fresh.push_back(&c);
    });
    for (tcp::TcpConnection* c : fresh) ep_.register_primary_conn(*c);

    // (Re-)arm taps, close gates and hold buffers on every live connection:
    // a former backup never had them, and go_non_ft tore them down.
    for (auto& [id, rc] : ep_.conns_) {
      rc->hold.clear();
      rc->lag_read.reset();
      rc->lag_written.reset();
      rc->lag_received.reset();
      rc->lag_acked.reset();
      rc->peer_valid = false;
      if (rc->conn != nullptr) ep_.install_primary_seams(*rc->conn, id);
    }
    ep_.recompute_hold_total();

    ep_.hb_timer_.start(ep_.cfg_.hb_period, [&ep = ep_] {
      ep.send_heartbeat();
      ep.detector_tick();
    });
    if (ep_.timeline_ != nullptr) {
      ep_.timeline_->mark(obs::Milestone::kReintegrationStart, ep_.world_.now());
    }
    ep_.world_.trace().record(ep_.host_.name(), "reintegration_start");
    ep_.log_.info("reintegration started (epoch ", epoch_, ")");
  }
  capture_and_send_snapshot();
  arm_retry();
}

void Reintegrator::capture_and_send_snapshot() {
  ++attempts_;
  // Retention must be on BEFORE the checkpoint is cut: every decision made
  // after the serialize point must reach the rejoiner via heartbeats (its
  // restored cursor starts exactly there).
  ep_.sync_decision_log();
  const net::Bytes app =
      ep_.checkpoint_provider_ ? ep_.checkpoint_provider_() : net::Bytes{};

  // Capture everything in one pass: identity, sequence basis, counters, and
  // the unacked/unread byte tails. Connections already closing (local FIN or
  // RST generated) are not re-protected — they are about to disappear.
  struct Item {
    StTcpEndpoint::ReplConn* rc;
    std::uint32_t iss, irs;
    bool peer_fin;
    std::uint64_t peer_fin_offset;
    std::uint64_t received, acked, written, read;
    net::Bytes tx, rx;
  };
  std::vector<Item> items;
  for (auto& [id, rc] : ep_.conns_) {
    // The snapshot IS the announcement: suppress heartbeat announces for
    // everything present at capture time (including skipped dying
    // connections — the rejoiner must not cold-start replicas for them).
    rc->announce_confirmed = true;
    tcp::TcpConnection* c = rc->conn;
    if (c == nullptr || !c->is_open() || c->fin_generated() ||
        c->rst_generated()) {
      continue;
    }
    Item it;
    it.rc = rc.get();
    it.iss = c->iss();
    it.irs = c->irs();
    const auto fin = c->peer_fin_payload_offset();
    it.peer_fin = fin.has_value();
    it.peer_fin_offset = fin.value_or(0);
    it.received = c->bytes_received();
    it.acked = c->bytes_acked_by_peer();
    it.written = c->app_bytes_written();
    it.read = c->app_bytes_read();
    it.tx = c->unacked_send_data();
    it.rx = c->unread_recv_data();
    // Baseline the peer counters: the rejoiner's heartbeat records resume
    // from exactly these values.
    rc->p_received = it.received;
    rc->p_acked = it.acked;
    rc->p_written = it.written;
    rc->p_read = it.read;
    rc->peer_valid = true;
    items.push_back(std::move(it));
  }

  {
    net::Bytes out;
    net::ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(ControlType::kSnapshotBegin));
    w.u32(epoch_);
    w.u16(static_cast<std::uint16_t>(items.size()));
    w.u32(static_cast<std::uint32_t>(app.size()));
    send_control(out);
  }
  // The app checkpoint travels chunked like connection data (id unused).
  for (std::size_t off = 0; off < app.size();) {
    const std::size_t n = std::min(app.size() - off, ep_.cfg_.recovery_chunk);
    net::Bytes msg;
    net::ByteWriter w(msg);
    w.u8(static_cast<std::uint8_t>(ControlType::kSnapshotData));
    w.u32(epoch_);
    w.u16(0);
    w.u8(kKindApp);
    w.u64(off);
    w.u32(static_cast<std::uint32_t>(n));
    w.bytes(net::BytesView(app).subspan(off, n));
    send_control(msg);
    off += n;
  }
  for (const Item& it : items) {
    {
      net::Bytes out;
      net::ByteWriter w(out);
      w.u8(static_cast<std::uint8_t>(ControlType::kSnapshotConn));
      w.u32(epoch_);
      w.u16(it.rc->id);
      w.u32(it.rc->tuple.remote.ip.value());
      w.u16(it.rc->tuple.remote.port);
      w.u16(it.rc->tuple.local.port);
      w.u32(it.iss);
      w.u32(it.irs);
      w.u8(it.peer_fin ? 1 : 0);
      w.u64(it.peer_fin_offset);
      w.u64(it.received);
      w.u64(it.acked);
      w.u64(it.written);
      w.u64(it.read);
      w.u32(static_cast<std::uint32_t>(it.tx.size()));
      w.u32(static_cast<std::uint32_t>(it.rx.size()));
      send_control(out);
    }
    ++ep_.stats_.snapshot_conns_sent;
    const auto send_chunks = [this, &it](std::uint8_t kind,
                                         const net::Bytes& data,
                                         std::uint64_t base) {
      std::size_t off = 0;
      while (off < data.size()) {
        const std::size_t n =
            std::min(data.size() - off, ep_.cfg_.recovery_chunk);
        net::Bytes msg;
        net::ByteWriter w(msg);
        w.u8(static_cast<std::uint8_t>(ControlType::kSnapshotData));
        w.u32(epoch_);
        w.u16(it.rc->id);
        w.u8(kind);
        w.u64(base + off);
        w.u32(static_cast<std::uint32_t>(n));
        w.bytes(net::BytesView(data).subspan(off, n));
        send_control(msg);
        off += n;
      }
    };
    send_chunks(kKindTx, it.tx, it.acked);
    send_chunks(kKindRx, it.rx, it.read);
  }
  {
    net::Bytes out;
    net::ByteWriter w(out);
    w.u8(static_cast<std::uint8_t>(ControlType::kSnapshotEnd));
    w.u32(epoch_);
    w.u16(static_cast<std::uint16_t>(items.size()));
    send_control(out);
  }
  ep_.world_.trace().record(ep_.host_.name(), "snapshot_sent", "",
                            static_cast<std::int64_t>(items.size()));
}

void Reintegrator::arm_retry() {
  retry_timer_.arm(ep_.cfg_.reintegration_retry, [this] {
    if (ep_.mode_ != StTcpEndpoint::Mode::kReintegrating) return;
    if (attempts_ >= ep_.cfg_.reintegration_max_attempts) {
      abandon();
      return;
    }
    capture_and_send_snapshot();
    arm_retry();
  });
}

void Reintegrator::abandon() {
  ep_.world_.trace().record(ep_.host_.name(), "reintegration_abandoned");
  rejoin_member_ = -1;
  rejoin_ip_ = net::Ipv4Addr();
  if (ep_.group_mode() && ep_.view_.order.size() > 1) {
    // Other backups still replicate from us: drop back to group leadership
    // instead of running unprotected. A fresh rejoin_request restarts.
    ep_.log_.warn("reintegration abandoned after ", attempts_,
                  " snapshot attempts; still replicating to live backups");
    ep_.mode_ = StTcpEndpoint::Mode::kReplicating;
    return;
  }
  ep_.log_.warn("reintegration abandoned after ", attempts_,
                " snapshot attempts; continuing unprotected");
  ep_.mode_ = StTcpEndpoint::Mode::kTakenOver;
  ep_.sync_decision_log();
  ep_.hb_timer_.stop();
  for (auto& [id, rc] : ep_.conns_) rc->hold.clear();
  ep_.recompute_hold_total();
  // A fresh rejoin_request starts the whole protocol over.
}

void Reintegrator::on_rejoin_ready(std::uint32_t epoch, int member) {
  using Mode = StTcpEndpoint::Mode;
  if (ep_.group_mode() && member != rejoin_member_) return;
  if (ep_.mode_ == Mode::kReintegrating && epoch == epoch_) {
    retry_timer_.cancel();
    ep_.mode_ = Mode::kReplicating;
    ep_.sync_decision_log();
    committed_epoch_ = epoch;
    have_committed_ = true;
    ++ep_.stats_.reintegrations;
    // The rejoiner may still be a few tapped segments behind: restart lag
    // history so the catch-up is not mistaken for an application failure.
    for (auto& [id, rc] : ep_.conns_) {
      rc->lag_read.reset();
      rc->lag_written.reset();
      rc->lag_received.reset();
      rc->lag_acked.reset();
    }
    if (ep_.timeline_ != nullptr) {
      ep_.timeline_->mark(obs::Milestone::kReintegrationComplete,
                          ep_.world_.now());
    }
    ep_.world_.trace().record(ep_.host_.name(), "reintegration_complete");
    ep_.log_.info("reintegration complete (epoch ", epoch, "): FT restored");
    send_commit(epoch);
    if (ep_.group_mode() && member >= 0) {
      // Admit the rejoiner at the lowest promotion rank and announce the
      // widened view to every member.
      ep_.group_commit_rejoin(static_cast<std::uint8_t>(member));
    }
    return;
  }
  if (have_committed_ && epoch == committed_epoch_) {
    send_commit(epoch);  // the commit datagram was lost; repeat it
  }
}

void Reintegrator::send_commit(std::uint32_t epoch) {
  net::Bytes out;
  net::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(ControlType::kRejoinCommit));
  w.u32(epoch);
  send_control(out);
}

}  // namespace sttcp::sttcp
