#include "sttcp/hold_buffer.h"

#include <algorithm>

namespace sttcp::sttcp {

bool HoldBuffer::append(std::uint64_t at, net::BytesView data) {
  if (data.empty()) return true;
  if (data_.empty()) {
    start_ = at;
  } else if (at != end_offset()) {
    // The rx tap is contiguous by construction; a mismatch is a logic error
    // upstream. Treat defensively as overflow so the endpoint reacts.
    overflowed_ = true;
    return false;
  }
  if (data_.size() + data.size() > capacity_) {
    overflowed_ = true;
    return false;
  }
  data_.insert(data_.end(), data.begin(), data.end());
  return true;
}

void HoldBuffer::release_to(std::uint64_t upto) {
  if (upto <= start_) return;
  const std::size_t n =
      std::min(static_cast<std::size_t>(upto - start_), data_.size());
  data_.erase(data_.begin(), data_.begin() + n);
  start_ += n;
}

net::Bytes HoldBuffer::slice(std::uint64_t from, std::size_t len) const {
  net::Bytes out;
  if (from < start_ || from >= end_offset()) return out;
  const std::size_t begin = static_cast<std::size_t>(from - start_);
  const std::size_t n = std::min(len, data_.size() - begin);
  out.insert(out.end(), data_.begin() + begin, data_.begin() + begin + n);
  return out;
}

void HoldBuffer::clear() {
  data_.clear();
  overflowed_ = false;
}

}  // namespace sttcp::sttcp
