#include "sttcp/endpoint.h"

#include <algorithm>

#include "sttcp/logger.h"
#include "sttcp/reintegration.h"

namespace sttcp::sttcp {

StTcpEndpoint::StTcpEndpoint(net::Host& host, tcp::TcpStack& stack,
                             net::PowerController& power, net::SerialPort* serial,
                             Role role, StTcpConfig config)
    : host_(host),
      stack_(stack),
      power_(power),
      serial_(serial),
      role_(role),
      cfg_(std::move(config)),
      log_(host.logger().child("sttcp")),
      world_(host.world()),
      hb_timer_(host.world().loop()),
      promote_timer_(host.world().loop()),
      ping_timer_(host.world().loop()),
      logger_timer_(host.world().loop()) {
  reintegrator_ = std::make_unique<Reintegrator>(*this);
}

StTcpEndpoint::~StTcpEndpoint() = default;

void StTcpEndpoint::start() {
  started_ = true;
  last_rx_ip_ = world_.now();
  last_rx_serial_ = world_.now();

  if (auto* reg = world_.metrics()) {
    const std::string prefix = "sttcp." + host_.name();
    m_hb_gap_ip_us_ = &reg->histogram(prefix + ".hb_interarrival_us.ip");
    m_hb_gap_serial_us_ = &reg->histogram(prefix + ".hb_interarrival_us.serial");
    m_hold_bytes_ = &reg->gauge(prefix + ".hold_buffer_bytes");
    m_recovery_bytes_ = &reg->counter(prefix + ".recovery_bytes");
    m_app_lag_bytes_ = &reg->gauge(prefix + ".app_lag_bytes");
    if (group_mode()) {
      m_rank_ = &reg->gauge(prefix + ".rank");
      m_epoch_ = &reg->gauge(prefix + ".view_epoch");
    }
    timeline_ = &reg->timeline();
  }

  if (group_mode()) {
    // Initial view: every configured member, in configured rank order.
    view_.epoch = 0;
    view_.order.clear();
    peers_.clear();
    for (std::size_t i = 0; i < cfg_.group.size(); ++i) {
      view_.order.push_back(static_cast<std::uint8_t>(i));
      if (static_cast<int>(i) == cfg_.my_member) continue;
      GroupPeer p;
      p.member = static_cast<std::uint8_t>(i);
      p.ip = cfg_.group[i].ip;
      p.name = cfg_.group[i].name;
      p.has_serial = cfg_.group[i].serial &&
                     cfg_.group[static_cast<std::size_t>(cfg_.my_member)].serial;
      p.last_rx_ip = world_.now();
      p.last_rx_serial = world_.now();
      peers_.push_back(p);
    }
    update_group_gauges();
  }

  stack_.set_observer(this);
  if (cfg_.deterministic_isn) {
    // Both roles install the same keyed ISN function: the primary uses it to
    // pick the ISS in its SYN-ACK, the backup to reconstruct that ISS from a
    // tapped SYN, and a promoted backup keeps using it for fresh accepts.
    stack_.set_accept_isn_fn([this](const tcp::FourTuple& t) {
      if (t.local.ip == cfg_.service_ip && t.local.port == cfg_.service_port) {
        return service_isn(t);
      }
      return stack_.choose_isn();  // non-service listeners: random as before
    });
  }
  if (role_ == Role::kBackup) install_replica_seams();

  host_.udp_bind(cfg_.hb_port, [this](net::Ipv4Addr, std::uint16_t,
                                      net::BytesView payload) {
    on_hb_datagram(payload, /*via_serial=*/false);
  });
  host_.udp_bind(cfg_.control_port,
                 [this](net::Ipv4Addr src, std::uint16_t, net::BytesView payload) {
                   on_control_datagram(src, payload);
                 });
  if (serial_ != nullptr) {
    serial_->set_handler([this](net::Bytes msg) {
      on_hb_datagram(msg, /*via_serial=*/true);
    });
  }
  host_.add_crash_hook([this] {
    mode_ = Mode::kDead;
    hb_timer_.stop();
    ping_timer_.cancel();
    promote_timer_.cancel();
  });
  // Reintegration: a powered-on host re-enters the pair as a rejoining
  // backup. Runs after the stack's own boot hook (registered in the stack
  // ctor, before this endpoint existed), so the stack is already blank.
  host_.add_boot_hook([this] {
    if (started_) reintegrator_->enter_rejoin();
  });

  hb_timer_.start(cfg_.hb_period, [this] {
    send_heartbeat();
    detector_tick();
  });
  log_.info("ST-TCP ", to_string(role_), " started (hb=", cfg_.hb_period.str(), ")");
}

void StTcpEndpoint::install_replica_seams() {
  stack_.set_replica_mode(true);
  stack_.set_replica_inference([this](const tcp::FourTuple& t, tcp::SeqWire iss,
                                      tcp::SeqWire irs, bool established) {
    create_replica_inferred(t, iss, irs, established);
  });
}

bool StTcpEndpoint::ip_channel_alive() const {
  const sim::Duration deadline =
      cfg_.hb_period * cfg_.hb_miss_threshold + cfg_.hb_period / 2;
  return world_.now() - last_rx_ip_ <= deadline;
}

bool StTcpEndpoint::serial_channel_alive() const {
  const sim::Duration deadline =
      cfg_.hb_period * cfg_.hb_miss_threshold + cfg_.hb_period / 2;
  return world_.now() - last_rx_serial_ <= deadline;
}

// ---------------------------------------------------------------------------
// Heartbeat
// ---------------------------------------------------------------------------

HeartbeatMsg StTcpEndpoint::make_hb_header() {
  HeartbeatMsg msg;
  msg.role = role_;
  msg.hb_seq = hb_seq_++;
  msg.ping_valid = my_ping_valid_;
  msg.ping_ok = my_ping_ok_;
  msg.app_suspect = local_app_suspect_;
  msg.rejoin_request = reintegrator_->rejoin_request_flag();
  msg.rejoin_ready = reintegrator_->rejoin_ready_flag();
  msg.rejoin_epoch = reintegrator_->epoch();
  if (group_mode()) {
    msg.group_valid = true;
    msg.member = my_member();
    msg.view_epoch = view_.epoch;
    msg.view_order = view_.order;
  }
  // Logged-decision block (pair mode only, docs/APPLICATION.md): cumulative
  // ack of the peer's decision stream + our own unacked records, capped so
  // a burst cannot blow the UDP byte budget — periodic beats retransmit the
  // remainder oldest-first until acked.
  if (decision_log_ != nullptr && !group_mode() &&
      replicating_or_reintegrating()) {
    constexpr std::size_t kMaxDecisionsPerBeat = 512;
    msg.decisions_valid = true;
    msg.decision_ack = decision_log_->rx_cursor();
    msg.decisions = decision_log_->unacked(kMaxDecisionsPerBeat);
  }
  return msg;
}

HbRecord StTcpEndpoint::make_record(std::uint16_t id, const ReplConn& rc,
                                    int peer_idx) const {
  HbRecord rec;
  rec.repl_id = id;
  rec.fin_generated = rc.fin();
  rec.rst_generated = rc.rst();
  rec.closed = rc.local_closed;
  rec.bytes_received = rc.received();
  rec.acked_by_peer = rc.acked();
  rec.app_written = rc.written();
  rec.app_read = rc.read();
  // Group mode announces are per-member: each member keeps seeing the
  // announce until IT has echoed the id (pair mode keeps the shared flag).
  const bool announce_needed =
      peer_idx < 0 ? !rc.announce_confirmed
                   : !(static_cast<std::size_t>(peer_idx) < rc.gp.size() &&
                       rc.gp[static_cast<std::size_t>(peer_idx)].echoed);
  if (role_ == Role::kPrimary && announce_needed && rc.conn != nullptr) {
    rec.announce = true;
    rec.established = true;
    rec.client_ip = rc.tuple.remote.ip;
    rec.client_port = rc.tuple.remote.port;
    rec.local_port = rc.tuple.local.port;
    rec.iss = rc.conn->iss();
    rec.irs = rc.conn->irs();
  }
  if (role_ == Role::kBackup && id >= 0x8000 && rc.conn != nullptr) {
    // A replica still under an inferred id: the primary cannot match the
    // record by id, so carry the tuple (announce extension) and let it match
    // by connection identity. Under load the primary's own announce can sit
    // behind seconds of queued client data on its uplink — this leg rides
    // the backup's idle uplink, so "peer never replicated" stays quiet.
    rec.announce = true;
    rec.established = rc.conn->state() != tcp::TcpState::kSynRcvd;
    rec.client_ip = rc.tuple.remote.ip;
    rec.client_port = rc.tuple.remote.port;
    rec.local_port = rc.tuple.local.port;
    rec.iss = rc.conn->iss();
    rec.irs = rc.conn->irs();
  }
  return rec;
}

void StTcpEndpoint::send_heartbeat(bool include_serial) {
  if (!host_.alive() || mode_ == Mode::kDead) return;
  if (mode_ == Mode::kTakenOver || mode_ == Mode::kNonFaultTolerant) return;
  if (group_mode()) {
    send_group_heartbeat(include_serial);
    return;
  }

  HeartbeatMsg msg = make_hb_header();
  msg.records.reserve(conns_.size());
  for (auto& [id, rc] : conns_) msg.records.push_back(make_record(id, *rc));
  std::size_t total = 0;
  for (const auto& r : msg.records) total += r.wire_size();
  emit_heartbeat(msg, total, cfg_.peer_ip, include_serial ? serial_ : nullptr,
                 udp_rr_next_id_, serial_rr_next_id_);
  ++stats_.hb_sent;
}

void StTcpEndpoint::send_group_heartbeat(bool include_serial) {
  // One copy per member, each with ITS view of the announces and ITS
  // rotation cursors: a record's window position for member A must not
  // advance because a copy went to member B (a shared cursor would starve
  // every record at fan-out > 1 under budget pressure).
  for (GroupPeer& p : peers_) {
    const int pi = static_cast<int>(&p - peers_.data());
    HeartbeatMsg msg = make_hb_header();
    msg.records.reserve(conns_.size());
    for (auto& [id, rc] : conns_) msg.records.push_back(make_record(id, *rc, pi));
    std::size_t total = 0;
    for (const auto& r : msg.records) total += r.wire_size();
    net::SerialPort* sp = include_serial && p.has_serial ? serial_ : nullptr;
    emit_heartbeat(msg, total, p.ip, sp, p.udp_rr_next_id, p.serial_rr_next_id);
  }
  ++stats_.hb_sent;
}

void StTcpEndpoint::emit_heartbeat(const HeartbeatMsg& msg, std::size_t total_bytes,
                                   net::Ipv4Addr dst, net::SerialPort* serial,
                                   std::uint16_t& udp_cursor,
                                   std::uint16_t& serial_cursor) {
  // An IPv4 datagram caps at 65,535 bytes; with every record carrying an
  // announce (35 B) that is ~1,870 connections. Past it the 16-bit
  // total_length wraps silently and the peer drops the frame on UDP
  // checksum — the IP heartbeat channel goes dead exactly when the pair is
  // busiest, and the peer falsely convicts ("never replicated"). Budget the
  // UDP copy well under the limit with a rotating window, so every record
  // still crosses within ceil(total/budget) periods. Urgent records never
  // wait for the window: announces and FIN/RST notices also travel as
  // single-record event heartbeats the moment they happen.
  constexpr std::size_t kUdpRecordBudget = 60'000;

  // Rotation cursors are connection ids, not vector positions: conns_ is
  // id-ordered, so records[] is sorted by repl_id, and an id survives the
  // churn of inserts/erases between beats. A positional cursor drifts when
  // the vector recomposes and can starve a record indefinitely — exactly
  // long enough for the peer's replica-setup grace timer to convict.
  const auto start_index = [&](std::uint16_t next_id) -> std::size_t {
    auto it = std::lower_bound(
        msg.records.begin(), msg.records.end(), next_id,
        [](const HbRecord& r, std::uint16_t id) { return r.repl_id < id; });
    return it == msg.records.end() ? 0 : static_cast<std::size_t>(it - msg.records.begin());
  };

  net::Bytes wire_msg;
  if (total_bytes <= kUdpRecordBudget) {
    wire_msg = msg.serialize();
  } else {
    HeartbeatMsg umsg = msg;
    umsg.records.clear();
    umsg.records.reserve(msg.records.size());
    const std::size_t start = start_index(udp_cursor);
    std::size_t used = 0;
    for (std::size_t k = 0; k < msg.records.size(); ++k) {
      const std::size_t i = (start + k) % msg.records.size();
      const HbRecord& r = msg.records[i];
      if (used + r.wire_size() > kUdpRecordBudget) {
        udp_cursor = r.repl_id;
        break;
      }
      used += r.wire_size();
      umsg.records.push_back(r);
    }
    wire_msg = umsg.serialize();
  }
  host_.udp_send(cfg_.my_ip, cfg_.hb_port, dst, cfg_.hb_port, wire_msg);
  if (serial != nullptr) {
    const std::size_t cap = cfg_.serial_max_records;
    if (cap == 0 || msg.records.size() <= cap) {
      // Under the cap the UDP copy was not truncated either (the serial cap
      // is far below the UDP byte budget), so the bytes can be shared.
      serial->send(total_bytes <= kUdpRecordBudget ? wire_msg : msg.serialize());
    } else {
      // Serial copy carries a rotating window of `cap` records (same header
      // and hb_seq), so every connection's counters ride the line within
      // ceil(n/cap) periods while the channel-liveness beat stays on time.
      HeartbeatMsg smsg = msg;
      smsg.records.clear();
      const std::size_t start = start_index(serial_cursor);
      for (std::size_t k = 0; k < cap; ++k) {
        smsg.records.push_back(msg.records[(start + k) % msg.records.size()]);
      }
      serial_cursor =
          static_cast<std::uint16_t>(
              msg.records[(start + cap) % msg.records.size()].repl_id);
      serial->send(smsg.serialize());
    }
  }
}

void StTcpEndpoint::send_event_heartbeat(std::uint16_t id) {
  if (!host_.alive() || mode_ == Mode::kDead) return;
  if (mode_ == Mode::kTakenOver || mode_ == Mode::kNonFaultTolerant) return;
  if (group_mode()) {
    for (GroupPeer& p : peers_) {
      const int pi = static_cast<int>(&p - peers_.data());
      HeartbeatMsg msg = make_hb_header();
      if (const ReplConn* rc = by_id(id)) {
        msg.records.push_back(make_record(id, *rc, pi));
      }
      host_.udp_send(cfg_.my_ip, cfg_.hb_port, p.ip, cfg_.hb_port, msg.serialize());
    }
    ++stats_.hb_sent;
    return;
  }
  HeartbeatMsg msg = make_hb_header();
  if (const ReplConn* rc = by_id(id)) msg.records.push_back(make_record(id, *rc));
  host_.udp_send(cfg_.my_ip, cfg_.hb_port, cfg_.peer_ip, cfg_.hb_port,
                 msg.serialize());
  ++stats_.hb_sent;
}

// ---------------------------------------------------------------------------
// Logged-decision channel (decision.h, docs/APPLICATION.md)
// ---------------------------------------------------------------------------

void StTcpEndpoint::set_decision_log(DecisionLog* log) {
  decision_log_ = log;
  if (log != nullptr) {
    // The application flushed a batch of choices: put them on the wire now.
    // Every heartbeat retransmits the unacked window, so a lost flush only
    // costs latency, never correctness.
    log->set_flush_hook([this] { send_decision_heartbeat(); });
  }
}

void StTcpEndpoint::send_decision_heartbeat() {
  if (!host_.alive() || decision_log_ == nullptr || group_mode()) return;
  if (!replicating_or_reintegrating()) return;
  // A records-free header still carries the decision block — the cheap
  // event-style beat for both directions (primary: fresh records; backup:
  // a fresh cumulative ack the primary's output gate is waiting on). Rides
  // the IP channel only, like other event heartbeats: the serial line is
  // too slow for per-request traffic.
  HeartbeatMsg msg = make_hb_header();
  host_.udp_send(cfg_.my_ip, cfg_.hb_port, cfg_.peer_ip, cfg_.hb_port,
                 msg.serialize());
  ++stats_.hb_sent;
  ++stats_.decision_hb_sent;
}

void StTcpEndpoint::process_decisions(const HeartbeatMsg& msg) {
  if (decision_log_ == nullptr || !msg.decisions_valid) return;
  decision_log_->on_peer_ack(msg.decision_ack);
  if (decision_log_->ingest(msg.decisions)) {
    // Our replay cursor advanced: ack promptly instead of waiting out the
    // heartbeat period — the primary's output-commit gate holds client
    // responses until this ack lands. No storm: the ack beat carries no new
    // records, so the peer's ingest cannot advance and echo back.
    send_decision_heartbeat();
  }
}

void StTcpEndpoint::sync_decision_log() {
  if (decision_log_ == nullptr) return;
  switch (mode_) {
    case Mode::kReplicating:
      decision_log_->set_standalone(false, /*retain=*/true);
      break;
    case Mode::kReintegrating:
      // Commit without the rejoiner (clients must not stall behind a
      // snapshot transfer) but retain every record: the rejoiner's restored
      // cursor skips the ones its checkpoint already folds in and replays
      // the rest.
      decision_log_->set_standalone(true, /*retain=*/true);
      break;
    case Mode::kTakenOver:
    case Mode::kNonFaultTolerant:
      decision_log_->set_standalone(true, /*retain=*/false);
      break;
    case Mode::kRejoining:
    case Mode::kDead:
      break;
  }
}

void StTcpEndpoint::on_hb_datagram(net::BytesView payload, bool via_serial) {
  if (!host_.alive() || mode_ == Mode::kDead) return;
  auto msg = HeartbeatMsg::parse(payload);
  if (!msg.has_value()) {
    ++stats_.hb_malformed;
    world_.trace().record(host_.name(), "hb_malformed",
                          via_serial ? "serial" : "ip");
    log_.warn("malformed heartbeat (", via_serial ? "serial" : "ip", ")");
    return;
  }
  on_heartbeat(*msg, via_serial);
}

void StTcpEndpoint::on_heartbeat(const HeartbeatMsg& msg, bool via_serial) {
  if (group_mode()) {
    on_group_heartbeat(msg, via_serial);
    return;
  }
  // Rejoin solicitations are handled BEFORE the role-reflection guard: a
  // former backup that survived a takeover still calls itself backup, and so
  // does the rejoiner — identical roles must not drop the request. A
  // replicating backup ignores it (the detector promotes us first; the
  // requesting peer is by definition not heartbeating normally).
  if (msg.rejoin_request &&
      (mode_ == Mode::kTakenOver || mode_ == Mode::kNonFaultTolerant ||
       mode_ == Mode::kReintegrating ||
       (mode_ == Mode::kReplicating && role_ == Role::kPrimary))) {
    reintegrator_->on_rejoin_request(msg.rejoin_epoch);
  }
  if (msg.role == role_) return;  // our own reflection; should not happen
  if (via_serial) {
    if (m_hb_gap_serial_us_ != nullptr) {
      m_hb_gap_serial_us_->record(
          static_cast<std::uint64_t>((world_.now() - last_rx_serial_).us()));
    }
    last_rx_serial_ = world_.now();
    ++stats_.hb_received_serial;
  } else {
    if (m_hb_gap_ip_us_ != nullptr) {
      m_hb_gap_ip_us_->record(
          static_cast<std::uint64_t>((world_.now() - last_rx_ip_).us()));
    }
    last_rx_ip_ = world_.now();
    ++stats_.hb_received_ip;
  }
  if (timeline_ != nullptr) timeline_->heartbeat_seen(world_.now());
  // Bounded-reorder guard: a duplicated or link-reordered heartbeat still
  // proves the channel is alive (counted above), but its state must not
  // rewind newer arbitration input (ping streaks, rejoin handshakes). A
  // small backward sequence jump is a stale copy; a large one is a rebooted
  // peer restarting its sequence and is accepted as a fresh stream.
  const auto seq_delta =
      static_cast<std::int32_t>(msg.hb_seq - last_peer_hb_seq_);
  if (seen_peer_hb_ && seq_delta < 0 && seq_delta > -4096) {
    ++stats_.hb_stale;
    return;
  }
  seen_peer_hb_ = true;
  last_peer_hb_seq_ = msg.hb_seq;
  if (msg.rejoin_ready) reintegrator_->on_rejoin_ready(msg.rejoin_epoch);
  if (!replicating_or_reintegrating()) return;

  if (msg.ping_valid) {
    peer_ping_fail_streak_ = msg.ping_ok ? 0 : peer_ping_fail_streak_ + 1;
  }
  // A suspicion raised mid-reintegration must not convict the peer the
  // instant replication resumes; only assimilate it in steady state.
  if (msg.app_suspect && mode_ == Mode::kReplicating) peer_app_suspect_ = true;

  // A rejoiner that has not yet applied the snapshot cannot interpret
  // records (it has no connections, and an announce would cold-start a
  // from-scratch replica for a mid-stream connection) nor decisions (the
  // checkpoint it is waiting for jumps the replay cursor past them).
  if (mode_ == Mode::kRejoining && !reintegrator_->snapshot_applied()) return;

  process_decisions(msg);
  sync_decision_log();

  for (const HbRecord& rec : msg.records) {
    // A record may have triggered a failover action.
    if (!replicating_or_reintegrating()) break;
    process_record(rec);
  }
}

void StTcpEndpoint::process_record(const HbRecord& rec, int peer_idx) {
  ReplConn* rc = by_id(rec.repl_id);
  bool matched_by_id = rc != nullptr;
  if (rc == nullptr) {
    if (role_ == Role::kBackup && rec.announce) {
      create_replica_from(rec);
      rc = by_id(rec.repl_id);
      matched_by_id = rc != nullptr;
    } else if (role_ == Role::kPrimary && rec.announce &&
               rec.repl_id >= 0x8000) {
      // The backup built this replica on its own (deterministic accept ISN)
      // and has not yet adopted our id — our announce is still queued behind
      // client data on the uplink. Its record carries the tuple instead:
      // match by connection identity so its progress counters count and the
      // replica-setup grace timer does not convict a healthy backup.
      tcp::FourTuple t;
      t.local = net::SocketAddr{cfg_.service_ip, rec.local_port};
      t.remote = net::SocketAddr{rec.client_ip, rec.client_port};
      rc = by_tuple(t);
    }
    if (rc == nullptr) return;
  }

  // Only an id echo confirms the announce: a tuple-matched record means the
  // backup still does not know our id, so the announce must keep flowing.
  if (role_ == Role::kPrimary && matched_by_id && !rc->announce_confirmed) {
    rc->announce_confirmed = true;
    ++stats_.announces_confirmed;
    world_.trace().record(host_.name(), "announce_confirmed", rc->tuple.str());
  }

  // Group mode: keep the per-member mirror the record's sender owns. The
  // shared p_* fields below become the max across members (unwrap_counter
  // ignores regressions), which is what the backup-side detectors want; the
  // per-member values feed hold release and FIN agreement on the leader.
  ReplConn::PeerProgress* g = nullptr;
  if (group_mode() && peer_idx >= 0) {
    ensure_group_progress(*rc);
    g = &rc->gp[static_cast<std::size_t>(peer_idx)];
    g->valid = true;
    if (matched_by_id) g->echoed = true;
    g->received = unwrap_counter(static_cast<std::uint32_t>(rec.bytes_received),
                                 g->received);
    g->fin = g->fin || rec.fin_generated;
    g->rst = g->rst || rec.rst_generated;
    g->closed = g->closed || rec.closed;
  }

  // Unwrap the 32-bit wire counters against the previous values.
  rc->p_received = unwrap_counter(static_cast<std::uint32_t>(rec.bytes_received),
                                  rc->p_received);
  rc->p_acked =
      unwrap_counter(static_cast<std::uint32_t>(rec.acked_by_peer), rc->p_acked);
  rc->p_written =
      unwrap_counter(static_cast<std::uint32_t>(rec.app_written), rc->p_written);
  rc->p_read = unwrap_counter(static_cast<std::uint32_t>(rec.app_read), rc->p_read);
  rc->p_fin = rc->p_fin || rec.fin_generated;
  rc->p_rst = rc->p_rst || rec.rst_generated;
  rc->p_closed = rc->p_closed || rec.closed;
  rc->peer_valid = true;

  // Grey-failure watch: note the peer's total progress. Stagnation is
  // evaluated on the detector tick (it needs the clock even when a record's
  // values are unchanged); here we only timestamp changes.
  rc->progress.observe(rc->p_received + rc->p_acked + rc->p_written + rc->p_read,
                       world_.now());

  // Primary: the backup has confirmed receipt through p_received — release
  // the hold buffer below that point. Group leader: only below the MINIMUM
  // confirmed across every live member; a member without a record yet pins
  // the buffer entirely (its replica may still need every held byte).
  if (role_ == Role::kPrimary) {
    std::uint64_t release = rc->p_received;
    if (g != nullptr) {
      std::size_t live = 0;
      bool all_valid = true;
      std::uint64_t min_rx = rc->p_received;
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (!view_.contains(peers_[i].member)) continue;
        ++live;
        if (!rc->gp[i].valid) {
          all_valid = false;
          break;
        }
        min_rx = std::min(min_rx, rc->gp[i].received);
      }
      release = live == 0 ? rc->p_received : (all_valid ? min_rx : 0);
    }
    const std::size_t before = rc->hold.size();
    rc->hold.release_to(release);
    note_hold_change(before, rc->hold.size());

    // A group leader's "peer closed" means EVERY live member closed its
    // replica — GC must not reap the final-counter record while a slower
    // member still reconciles against it.
    if (g != nullptr) {
      bool all_closed = true;
      std::size_t live = 0;
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (!view_.contains(peers_[i].member)) continue;
        ++live;
        if (!(rc->gp[i].valid && rc->gp[i].closed)) {
          all_closed = false;
          break;
        }
      }
      if (live > 0) rc->p_closed = all_closed;
    }
  }

  // FIN arbitration: the peer generated a FIN/RST. A group leader holding a
  // withheld FIN settles only on full agreement (every live member FINed);
  // a lone member's FIN with no local counterpart still arms the
  // disagreement timer below via on_peer_fin_notice.
  if (rc->p_fin || rc->p_rst) {
    const bool group_leader = g != nullptr && role_ == Role::kPrimary;
    if (!group_leader || !rc->fin_withheld || group_fins_agree(*rc)) {
      on_peer_fin_notice(*rc);
    }
  }

  const sim::SimTime now = world_.now();

  // Application-failure detection (§4.2.1). Detection stays ACTIVE while a
  // FIN disagreement is pending — the paper makes the delayed-FIN window
  // "identical to the one described in Section 4.2.1". Only an AGREED close
  // (both sides produced a FIN/RST) or a finished connection disables it;
  // replicas behave identically during a normal close, so a lone FIN on the
  // healthy side never creates false lag.
  // While the IP heartbeat is down (local network failure, §4.3), app-level
  // lag is a symptom of the network fault, not of the application: leave the
  // diagnosis to the NIC arbitration below.
  // A lone peer close (FIN/RST/closed with our side still open) is NOT
  // benign — its frozen counters are exactly the §4.2.1 symptom.
  const bool local_closing = rc->conn == nullptr || rc->conn->fin_generated() ||
                             rc->conn->rst_generated();
  const bool peer_closing = rc->p_fin || rc->p_rst || rc->p_closed;
  // While we are actively serving missed bytes to the peer, its app lag is
  // explained by the gap being repaired — do not convict until the recovery
  // has had a couple of heartbeats to land.
  const bool recovering_peer =
      rc->ever_served && now - rc->last_served_at < cfg_.hb_period * 3;
  // No lag conviction while a reintegration is in flight: the rejoiner is
  // still catching up by design. Trackers are reset when FT resumes.
  // Channel liveness is per-member in group mode: the endpoint-level stamps
  // mix every member's beats, so a single member's dead NIC would vanish in
  // the aggregate.
  const bool peer_ip_ok = peer_idx < 0
                              ? ip_channel_alive()
                              : peer_ip_alive(peers_[static_cast<std::size_t>(peer_idx)]);
  const bool peer_serial_ok =
      peer_idx < 0 ? serial_channel_alive()
                   : peer_serial_alive(peers_[static_cast<std::size_t>(peer_idx)]);
  const bool detection_eligible = mode_ == Mode::kReplicating &&
                                  rc->conn != nullptr && !rc->local_closed &&
                                  !(local_closing && peer_closing) &&
                                  !recovering_peer && peer_ip_ok;
  if (detection_eligible) {
    const auto v_read = rc->lag_read.update(rc->read(), rc->p_read, now);
    const auto v_written = rc->lag_written.update(rc->written(), rc->p_written, now);
    // Export the worst current byte lag before any conviction fires, so the
    // grey benches can read how far the peer fell behind.
    const std::uint64_t lag =
        std::max(rc->lag_read.lag_bytes(), rc->lag_written.lag_bytes());
    if (lag > app_lag_peak_bytes_) app_lag_peak_bytes_ = lag;
    if (m_app_lag_bytes_ != nullptr) {
      m_app_lag_bytes_->set(static_cast<std::int64_t>(lag));
    }
    if (v_read.failed) {
      convict_from_record(peer_idx, sim::cat("app read lag: ", v_read.reason),
                          "app_failure_detected");
      return;
    }
    if (v_written.failed) {
      convict_from_record(peer_idx, sim::cat("app write lag: ", v_written.reason),
                          "app_failure_detected");
      return;
    }
  }

  // NIC-failure detection via LastByteReceived / LastAckReceived comparison
  // (§4.3) — only meaningful while the IP channel is dead and the serial
  // channel carries the heartbeat.
  if (mode_ == Mode::kReplicating && !peer_ip_ok && peer_serial_ok &&
      rc->conn != nullptr && !rc->local_closed && !rc->p_closed) {
    const auto v_rx = rc->lag_received.update(rc->received(), rc->p_received, now);
    const auto v_ack = rc->lag_acked.update(rc->acked(), rc->p_acked, now);
    if (v_rx.failed || v_ack.failed) {
      convict_from_record(peer_idx,
                          sim::cat("NIC failure (client-byte comparison): ",
                                   v_rx.failed ? v_rx.reason : v_ack.reason),
                          "nic_failure_detected");
      return;
    }
  }

  // Backup: missed-byte recovery (§4.3 temporary failures).
  if (role_ == Role::kBackup) maybe_request_missed(*rc);
}

void StTcpEndpoint::detector_tick() {
  if (group_mode()) {
    group_detector_tick();
    return;
  }
  if (!active()) return;
  gc_closed_conns();

  const bool ip_alive = ip_channel_alive();
  const bool serial_alive = serial_channel_alive();

  if (!ip_alive && !serial_alive) {
    // Table 1 row 1: HB failure on both links => peer crashed.
    world_.trace().record(host_.name(), "hb_both_links_dead");
    peer_failed("heartbeat failure on both links", "peer_dead");
    return;
  }

  if (!ip_alive && serial_alive) {
    // Table 1 row 4 territory: local network failure somewhere. Start (or
    // continue) gateway-ping arbitration; conviction happens here or in
    // process_record via the byte-count comparison.
    if (!ping_loop_active_) {
      ping_loop_active_ = true;
      world_.trace().record(host_.name(), "nic_arbitration_start");
      update_ping_loop();
    }
    evaluate_nic_arbitration();
  } else if (ping_loop_active_) {
    ping_loop_active_ = false;
    my_ping_valid_ = false;
    peer_ping_fail_streak_ = 0;
    ping_timer_.cancel();
  }

  if (peer_app_suspect_) {
    peer_failed("watchdog reported peer application failure", "watchdog_failure");
    return;
  }

  // Grey-failure conviction: progress-counter stagnation (lag.h
  // ProgressWatch). Only meaningful while heartbeats still arrive — silence
  // is the classic detector's jurisdiction — and only evaluated by the
  // backup: a stalled PRIMARY freezes both sides' counters at the same
  // value, so the relative lag trackers above never trip, while a stalled
  // backup is already caught by the primary's write-lag tracker. Gating the
  // absolute criterion to one role also means a grey host can never convict
  // its healthy peer with it (the healthy primary's counters freeze only
  // when the client stops acknowledging — which the demand test requires).
  if (role_ == Role::kBackup && ip_alive) {
    const sim::SimTime now = world_.now();
    for (auto& [id, rc] : conns_) {
      if (!rc->progress.enabled()) break;  // same config for every conn
      if (rc->conn == nullptr || rc->local_closed || !rc->peer_valid) continue;
      if (rc->p_fin || rc->p_rst || rc->p_closed) continue;
      if (rc->conn->fin_generated() || rc->conn->rst_generated()) continue;
      if (now - rc->registered_at <= cfg_.replica_setup_grace) continue;
      // Demand: this replica holds bytes the client has not acknowledged —
      // if the primary were healthy, SOME counter would be moving.
      const bool demand = rc->written() > rc->acked();
      const auto v = rc->progress.check(demand, now);
      if (v.failed) {
        if (timeline_ != nullptr) {
          timeline_->mark(obs::Milestone::kProgressStall, now);
        }
        peer_failed(sim::cat("progress stall on ", rc->tuple.str(), ": ", v.reason),
                    "progress_stall_detected");
        return;
      }
    }
  }

  // A connection the peer never started replicating within the grace period
  // means the peer application is not accepting (e.g. it crashed between
  // connections).
  for (auto& [id, rc] : conns_) {
    if (!rc->peer_valid && rc->conn != nullptr && !rc->local_closed &&
        world_.now() - rc->registered_at > cfg_.replica_setup_grace) {
      peer_failed(sim::cat("peer never replicated connection ", rc->tuple.str()),
                  "app_failure_detected");
      return;
    }
    // Deferred hold-buffer overflow (set from the rx tap).
    if (rc->hold.overflowed()) {
      peer_failed("hold buffer overflow: backup cannot catch up", "hold_overflow");
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

void StTcpEndpoint::on_accepted(tcp::TcpConnection& conn) {
  // A reintegrating survivor keeps registering (and announcing) new
  // connections; the rejoiner adopts them via the snapshot retry or, once
  // applied, via the ordinary announce path.
  if (mode_ != Mode::kReplicating && mode_ != Mode::kReintegrating) return;
  if (conn.tuple().local.ip != cfg_.service_ip ||
      conn.tuple().local.port != cfg_.service_port) {
    return;  // not the replicated service
  }
  if (role_ == Role::kPrimary) {
    register_primary_conn(conn);
  }
  // Backup replicas are registered in create_replica_from(); nothing here.
}

void StTcpEndpoint::on_finished(tcp::TcpConnection& conn, tcp::CloseReason) {
  ReplConn* rc = by_tuple(conn.tuple());
  if (rc == nullptr || rc->conn != &conn) return;
  rc->f_received = conn.bytes_received();
  rc->f_acked = conn.bytes_acked_by_peer();
  rc->f_written = conn.app_bytes_written();
  rc->f_read = conn.app_bytes_read();
  rc->f_fin = conn.fin_generated();
  rc->f_rst = conn.rst_generated();
  rc->conn = nullptr;
  rc->local_closed = true;
  rc->closed_at = world_.now();
  rc->fin_delay_timer.cancel();
  rc->peer_fin_timer.cancel();
}

std::uint16_t StTcpEndpoint::alloc_primary_id() {
  for (int guard = 0; guard < 0x8000; ++guard) {
    const std::uint16_t id = next_id_;
    next_id_ = next_id_ >= 0x7fff ? 1 : static_cast<std::uint16_t>(next_id_ + 1);
    if (conns_.find(id) == conns_.end()) return id;
  }
  return 0;  // unreachable: would need 32k live replicated connections
}

std::uint16_t StTcpEndpoint::alloc_inferred_id() {
  for (int guard = 0; guard < 0x8000; ++guard) {
    const std::uint16_t id = next_inferred_id_;
    next_inferred_id_ = next_inferred_id_ == 0xffff
                            ? 0x8000
                            : static_cast<std::uint16_t>(next_inferred_id_ + 1);
    if (conns_.find(id) == conns_.end()) return id;
  }
  return 0;
}

void StTcpEndpoint::register_primary_conn(tcp::TcpConnection& conn) {
  const std::uint16_t id = alloc_primary_id();
  auto rc = std::make_unique<ReplConn>(world_.loop(), cfg_);
  rc->id = id;
  rc->tuple = conn.tuple();
  rc->conn = &conn;
  rc->registered_at = world_.now();
  conns_.emplace(id, std::move(rc));
  id_by_tuple_[conn.tuple()] = id;
  if (group_mode()) ensure_group_progress(*conns_[id]);

  install_primary_seams(conn, id);

  world_.trace().record(host_.name(), "conn_registered", conn.tuple().str(), id);
  // Announce immediately rather than waiting out the period (IP channel
  // only, and only this connection's record: the periodic beat carries the
  // full list, on serial too).
  send_event_heartbeat(id);
}

void StTcpEndpoint::install_primary_seams(tcp::TcpConnection& conn,
                                          std::uint16_t id) {
  conn.set_rx_tap([this, id](std::uint64_t off, net::BytesView data) {
    ReplConn* r = by_id(id);
    // The hold buffer also feeds the rejoiner during a reintegration — a
    // gap at adoption is recovered against it.
    if (r == nullptr ||
        (mode_ != Mode::kReplicating && mode_ != Mode::kReintegrating)) {
      return;
    }
    const std::size_t before = r->hold.size();
    r->hold.append(off, data);
    if (r->hold.size() > hold_peak_bytes_) hold_peak_bytes_ = r->hold.size();
    note_hold_change(before, r->hold.size());
    // Overflow is handled (deferred) by detector_tick: reacting here would
    // tear down hooks while this very callback executes.
  });
  conn.set_close_gate([this, id](bool is_rst) { return close_gate(id, is_rst); });
}

void StTcpEndpoint::create_replica_from(const HbRecord& rec) {
  tcp::FourTuple tuple;
  tuple.local = net::SocketAddr{cfg_.service_ip, rec.local_port};
  tuple.remote = net::SocketAddr{rec.client_ip, rec.client_port};

  // The tuple may already be tracked under an inferred id (ISN inference
  // beat the announcement): remap it to the primary's id so heartbeat
  // records line up, and keep the existing connection.
  auto existing = id_by_tuple_.find(tuple);
  if (existing != id_by_tuple_.end()) {
    const std::uint16_t old_id = existing->second;
    ReplConn* old = by_id(old_id);
    if (old != nullptr && old->local_closed) {
      // Not the same connection: the client recycled its ephemeral port
      // while the closed record lingered for final counter exchange. The
      // announce is for a NEW incarnation of the tuple — displace the stale
      // record entirely (it may even share the announced id) and build a
      // fresh replica below.
      note_hold_change(old->hold.size(), 0);
      conns_.erase(old_id);
      id_by_tuple_.erase(existing);
      world_.trace().record(host_.name(), "replica_displaced_stale",
                            tuple.str(), old_id);
    } else {
      if (old_id == rec.repl_id) return;
      auto node = conns_.extract(old_id);
      if (!node.empty()) {
        node.key() = rec.repl_id;
        node.mapped()->id = rec.repl_id;
        conns_.insert(std::move(node));
        existing->second = rec.repl_id;
        world_.trace().record(host_.name(), "replica_id_remapped", tuple.str(),
                              rec.repl_id);
        // Echo the adopted id right away. The periodic heartbeat may be
        // rotating under load, and the primary's replica-setup grace timer
        // is running until it sees a record under its own id.
        send_event_heartbeat(rec.repl_id);
      }
      return;
    }
  }

  auto rc = std::make_unique<ReplConn>(world_.loop(), cfg_);
  rc->id = rec.repl_id;
  rc->tuple = tuple;
  rc->registered_at = world_.now();
  conns_.emplace(rec.repl_id, std::move(rc));
  id_by_tuple_[tuple] = rec.repl_id;

  tcp::TcpConnection::ReplicaInit init;
  init.iss = rec.iss;
  init.irs = rec.irs;
  init.established = rec.established;
  tcp::TcpConnection& conn = stack_.create_replica(tuple, init);
  conns_[rec.repl_id]->conn = &conn;
  ++stats_.replicas_created;
  world_.trace().record(host_.name(), "replica_created", tuple.str(), rec.repl_id);
  // Mirror the primary's announce-immediately behaviour: confirm the new
  // replica with a single-record event heartbeat instead of waiting for the
  // periodic beat (which may be a rotating window under high connection
  // counts — the grace timer must not race the rotation).
  send_event_heartbeat(rec.repl_id);
}

tcp::SeqWire StTcpEndpoint::service_isn(const tcp::FourTuple& t) const {
  // FNV-1a over the 4-tuple under a fixed key. A deployment would key this
  // with a boot-time secret shared between the pair (RFC 6528 adds a clock
  // component against cross-incarnation reuse); in the simulation the tuple
  // space is guarded by the client's own TIME_WAIT.
  std::uint64_t h = 0x53545443'50495346ull;  // "STTCPISF"
  const auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  mix(t.remote.ip.value());
  mix(t.remote.port);
  mix(t.local.ip.value());
  mix(t.local.port);
  return static_cast<tcp::SeqWire>(h ^ (h >> 32));
}

void StTcpEndpoint::create_replica_inferred(const tcp::FourTuple& tuple,
                                            tcp::SeqWire iss, tcp::SeqWire irs,
                                            bool established) {
  // kRejoining: a connection OPENING during the rejoin window is fully
  // observable from the tap (SYN + handshake ACK) — adopt it directly; the
  // snapshot only has to carry connections older than the rejoiner's boot.
  if (mode_ != Mode::kReplicating && mode_ != Mode::kRejoining) return;
  if (tuple.local.ip != cfg_.service_ip || tuple.local.port != cfg_.service_port) {
    return;  // only the replicated service is adopted
  }
  auto existing = id_by_tuple_.find(tuple);
  if (existing != id_by_tuple_.end()) {
    // A live replica on this tuple means the SYN is a retransmit — nothing
    // to do. A closed, lingering record means the client recycled the
    // ephemeral port: displace the stale incarnation and adopt the new one.
    ReplConn* old = by_id(existing->second);
    if (old == nullptr || !old->local_closed) return;
    note_hold_change(old->hold.size(), 0);
    conns_.erase(existing->second);
    id_by_tuple_.erase(existing);
    world_.trace().record(host_.name(), "replica_displaced_stale", tuple.str());
  }
  const std::uint16_t id = alloc_inferred_id();
  auto rc = std::make_unique<ReplConn>(world_.loop(), cfg_);
  rc->id = id;
  rc->tuple = tuple;
  rc->registered_at = world_.now();
  // The inferred replica has no peer record yet; the announce (if the
  // primary lives long enough to send one) will remap the id.
  rc->peer_valid = true;  // suppress the setup-grace detector: we self-made it
  conns_.emplace(id, std::move(rc));
  id_by_tuple_[tuple] = id;

  tcp::TcpConnection::ReplicaInit init;
  init.iss = iss;
  init.irs = irs;
  init.established = established;
  tcp::TcpConnection& conn = stack_.create_replica(tuple, init);
  conns_[id]->conn = &conn;
  ++stats_.replicas_created;
  world_.trace().record(host_.name(), "replica_created", tuple.str(), id);
  world_.trace().record(host_.name(), "replica_inferred", tuple.str(), id);
}

// ---------------------------------------------------------------------------
// FIN arbitration (§4.2.2)
// ---------------------------------------------------------------------------

bool StTcpEndpoint::close_gate(std::uint16_t id, bool is_rst) {
  if (mode_ != Mode::kReplicating) return true;
  ReplConn* rc = by_id(id);
  if (rc == nullptr || rc->conn == nullptr) return true;

  // "The primary always immediately sends out a FIN if it has already
  // received a FIN from the client."
  if (rc->conn->peer_half_closed()) return true;

  // Agreement: the peer generated one too => normal closure. A group leader
  // needs EVERY live member to have produced the FIN/RST — one healthy
  // member's silence keeps the arbitration open.
  const bool agreed = group_mode() && role_ == Role::kPrimary
                          ? group_fins_agree(*rc)
                          : (rc->p_fin || rc->p_rst);
  if (agreed) {
    ++stats_.fin_agreed;
    world_.trace().record(host_.name(), "fin_agreed", rc->tuple.str());
    return true;
  }

  // Disagreement (so far): withhold for MaxDelayFIN. The peer's notice may
  // arrive within a heartbeat; failure detection may also fire first.
  if (!rc->fin_withheld) {
    rc->fin_withheld = true;
    ++stats_.fin_delayed;
    world_.trace().record(host_.name(), is_rst ? "rst_delayed" : "fin_delayed",
                          rc->tuple.str());
    rc->fin_delay_timer.arm(cfg_.max_delay_fin, [this, id] {
      ReplConn* r = by_id(id);
      if (r == nullptr || r->conn == nullptr) return;
      // MaxDelayFIN expired with no failure detected: trust our own close
      // as the correct behaviour and send the FIN to the client.
      world_.trace().record(host_.name(), "fin_released_after_delay",
                            r->tuple.str());
      r->conn->release_fin();
    });
    // Tell the peer about our FIN right away ("...should immediately
    // communicate the FIN to the other server through the HB").
    send_event_heartbeat(id);
  }
  return false;
}

void StTcpEndpoint::on_peer_fin_notice(ReplConn& rc) {
  if (rc.conn == nullptr) return;

  // If our own FIN is withheld, the peer's notice settles the arbitration:
  // both closed => normal closure, send it.
  if (rc.fin_withheld) {
    rc.fin_withheld = false;
    rc.fin_delay_timer.cancel();
    ++stats_.fin_agreed;
    world_.trace().record(host_.name(), "fin_agreed", rc.tuple.str());
    rc.conn->release_fin();
    return;
  }

  // Peer FINed, we did not (and our app hasn't closed): suspicious. Give the
  // lag detectors MaxDelayFIN to convict; on the primary an expiry convicts
  // the backup (its FIN was a failure artifact); on the backup an expiry
  // means the primary will send its FIN — nothing for us to do.
  if (!rc.conn->fin_generated() && !rc.conn->rst_generated() &&
      !rc.peer_fin_timer.armed()) {
    const std::uint16_t id = rc.id;
    world_.trace().record(host_.name(), "peer_fin_disagreement", rc.tuple.str());
    rc.peer_fin_timer.arm(cfg_.max_delay_fin, [this, id] {
      if (!active()) return;
      ReplConn* r = by_id(id);
      if (r == nullptr || r->conn == nullptr) return;
      if (r->conn->fin_generated() || r->conn->rst_generated()) return;  // agreed since
      if (role_ == Role::kPrimary) {
        if (group_mode()) {
          // Convict the member whose lone FIN/RST started the disagreement.
          for (std::size_t i = 0; i < peers_.size(); ++i) {
            if (!view_.contains(peers_[i].member)) continue;
            if (i < r->gp.size() && (r->gp[i].fin || r->gp[i].rst)) {
              member_failed(i,
                            "member generated FIN/RST with no local counterpart",
                            "fin_disagreement");
              return;
            }
          }
          return;
        }
        peer_failed("backup generated FIN/RST with no local counterpart",
                    "fin_disagreement");
      } else {
        world_.trace().record(host_.name(), "fin_disagreement_expired",
                              r->tuple.str());
      }
    });
  }
}

// ---------------------------------------------------------------------------
// NIC arbitration (§4.3)
// ---------------------------------------------------------------------------

void StTcpEndpoint::update_ping_loop() {
  if (!ping_loop_active_ || !active()) return;
  host_.ping(cfg_.my_ip, cfg_.gateway_ip, cfg_.ping_timeout,
             [this](bool ok, sim::Duration) {
               my_ping_valid_ = true;
               my_ping_ok_ = ok;
               // A promotion candidate's win may be gated only on this
               // result (quorum-over-IP: votes are in, gateway pending).
               if (ballot_.active) try_win_promotion();
             });
  ping_timer_.arm(cfg_.ping_interval, [this] { update_ping_loop(); });
}

void StTcpEndpoint::evaluate_nic_arbitration() {
  if (my_ping_valid_ && my_ping_ok_ &&
      peer_ping_fail_streak_ >= cfg_.ping_fail_threshold) {
    peer_failed(sim::cat("gateway ping arbitration: peer failed ",
                         peer_ping_fail_streak_, " consecutive pings"),
                "nic_failure_detected");
  }
}

// ---------------------------------------------------------------------------
// Missed-byte recovery (§4.3 temporary failures)
// ---------------------------------------------------------------------------

void StTcpEndpoint::maybe_request_missed(ReplConn& rc) {
  if (rc.conn == nullptr) return;
  // Only the leader holds the bytes; a fenced-out or leaderless view has no
  // one to ask (the promotion settles first).
  const net::Ipv4Addr dst = group_mode() ? group_leader_ip() : cfg_.peer_ip;
  if (dst.is_zero()) return;
  const std::uint64_t mine = rc.conn->bytes_received();
  if (rc.p_received <= mine) return;
  if (world_.now() - rc.last_request_at < cfg_.recovery_request_delay &&
      rc.last_request_offset == mine) {
    return;  // request outstanding for the same gap
  }
  MissedBytesRequest req;
  req.repl_id = rc.id;
  req.offset = mine;
  req.length = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(rc.p_received - mine, 512 * 1024));
  rc.last_request_at = world_.now();
  rc.last_request_offset = mine;
  ++stats_.missed_requests_sent;
  world_.trace().record(host_.name(), "missed_bytes_request", rc.tuple.str(),
                        static_cast<std::int64_t>(req.length));
  host_.udp_send(cfg_.my_ip, cfg_.control_port, dst, cfg_.control_port,
                 req.serialize());
}

void StTcpEndpoint::on_control_datagram(net::Ipv4Addr src, net::BytesView payload) {
  if (!host_.alive() || mode_ == Mode::kDead) return;
  if (src == cfg_.peer_ip || peer_index_by_ip(src) >= 0) {
    // Snapshot-transfer datagrams (reintegration) are routed before
    // ControlMsg::parse, which only understands the recovery messages.
    if (!payload.empty() &&
        payload[0] >= static_cast<std::uint8_t>(ControlType::kSnapshotBegin) &&
        payload[0] <= static_cast<std::uint8_t>(ControlType::kRejoinCommit)) {
      reintegrator_->on_control(payload);
      return;
    }
    auto msg = ControlMsg::parse(payload);
    if (!msg.has_value()) {
      ++stats_.control_malformed;
      return;
    }
    switch (msg->type) {
      case ControlType::kMissedBytesRequest:
        serve_missed(msg->request, src);
        break;
      case ControlType::kMissedBytesReply:
        apply_missed(msg->reply);
        break;
      case ControlType::kPromoteRequest:
        on_promote_request(src, msg->promote_request);
        break;
      case ControlType::kPromoteAck:
        on_promote_ack(msg->promote_ack);
        break;
      case ControlType::kViewAnnounce:
        maybe_adopt_view(msg->view_announce.epoch, msg->view_announce.order);
        break;
      default:  // snapshot types are routed above, never parsed here
        break;
    }
    return;
  }
  if (!cfg_.logger_ip.is_zero() && src == cfg_.logger_ip) {
    auto rep = LoggerReply::parse(payload);
    if (!rep.has_value() || rep->data.empty()) return;
    tcp::FourTuple t;
    t.local = net::SocketAddr{cfg_.service_ip, rep->service_port};
    t.remote = net::SocketAddr{rep->client_ip, rep->client_port};
    ReplConn* rc = by_tuple(t);
    if (rc == nullptr || rc->conn == nullptr) return;
    const std::size_t injected =
        rc->conn->inject_stream_bytes(rep->offset, rep->data);
    stats_.logger_bytes_injected += injected;
    if (injected > 0) {
      world_.trace().record(host_.name(), "logger_injected", rc->tuple.str(),
                            static_cast<std::int64_t>(injected));
      // Chain immediately while the gap persists.
      logger_recovery_tick();
    }
  }
}

void StTcpEndpoint::serve_missed(const MissedBytesRequest& req,
                                 net::Ipv4Addr requester) {
  ReplConn* rc = by_id(req.repl_id);
  if (rc == nullptr) return;
  ++stats_.missed_requests_served;
  rc->last_served_at = world_.now();
  rc->ever_served = true;
  std::uint64_t off = req.offset;
  std::uint64_t remaining = req.length;
  while (remaining > 0) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, cfg_.recovery_chunk));
    MissedBytesReply rep;
    rep.repl_id = req.repl_id;
    rep.offset = off;
    rep.data = rc->hold.slice(off, chunk);
    if (rep.data.empty()) {
      log_.warn("missed-byte request for [", off, ", +", chunk,
                ") outside hold buffer [", rc->hold.start_offset(), ", ",
                rc->hold.end_offset(), ")");
      break;
    }
    world_.trace().record(host_.name(), "missed_bytes_served", rc->tuple.str(),
                          static_cast<std::int64_t>(rep.data.size()));
    const std::uint64_t served = rep.data.size();
    host_.udp_send(cfg_.my_ip, cfg_.control_port, requester, cfg_.control_port,
                   rep.serialize());
    off += served;
    remaining -= std::min<std::uint64_t>(remaining, served);
    if (served < chunk) break;  // ran out of held bytes
  }
}

void StTcpEndpoint::apply_missed(const MissedBytesReply& rep) {
  ReplConn* rc = by_id(rep.repl_id);
  if (rc == nullptr || rc->conn == nullptr) return;
  const std::size_t injected = rc->conn->inject_stream_bytes(rep.offset, rep.data);
  stats_.missed_bytes_injected += injected;
  if (m_recovery_bytes_ != nullptr) m_recovery_bytes_->inc(injected);
  if (injected > 0) {
    world_.trace().record(host_.name(), "missed_bytes_injected", rc->tuple.str(),
                          static_cast<std::int64_t>(injected));
    // Chain: if the gap is still open (more was lost than one request
    // covers), ask again immediately instead of waiting for the next
    // heartbeat record.
    maybe_request_missed(*rc);
  }
}

// ---------------------------------------------------------------------------
// Failure reactions
// ---------------------------------------------------------------------------

void StTcpEndpoint::peer_failed(const std::string& reason, const char* trace_event) {
  if (!active()) return;
  if (timeline_ != nullptr) {
    timeline_->mark(obs::Milestone::kChannelDead, world_.now());
    timeline_->set_conviction(trace_event, app_lag_peak_bytes_);
  }
  if (auto* reg = world_.metrics()) {
    // One counter per conviction criterion: the grey bench sums these to
    // prove convictions came from progress counters, not heartbeat silence.
    reg->counter("sttcp." + host_.name() + ".conviction." + trace_event).inc();
  }
  world_.trace().record(host_.name(), trace_event, reason);
  // Uniform marker (detail = the criterion event): the grey invariant check
  // counts convictions without enumerating every criterion name.
  world_.trace().record(host_.name(), "peer_convicted", trace_event);
  log_.warn("peer declared failed: ", reason);
  if (role_ == Role::kBackup) {
    takeover(reason);
  } else {
    stonith_peer();
    go_non_ft(reason);
  }
}

void StTcpEndpoint::takeover(const std::string& reason) {
  ++stats_.takeovers;
  mode_ = Mode::kTakenOver;
  // Power the primary down BEFORE assuming the connection — no dual-active.
  stonith_peer();
  stack_.set_replica_mode(false);
  // Promote the decision log BEFORE unsuppressing: the app's promote hook
  // drains the replayed backlog, and any response it releases must see the
  // log already in standalone-record mode.
  if (decision_log_ != nullptr) decision_log_->promote();
  for (auto& [id, rc] : conns_) {
    if (rc->conn != nullptr) {
      rc->conn->on_takeover(cfg_.immediate_retransmit_on_takeover);
    }
  }
  hb_timer_.stop();
  ping_timer_.cancel();
  if (timeline_ != nullptr) timeline_->mark(obs::Milestone::kTakeover, world_.now());
  world_.trace().record(host_.name(), "takeover", reason);
  log_.warn("TOOK OVER as active server: ", reason);
  // Output-commit fallback: any receive gap whose bytes the dead primary
  // already acknowledged can only be filled by the stream logger now.
  if (!cfg_.logger_ip.is_zero()) {
    logger_attempts_ = 0;
    logger_recovery_tick();
  }
}

void StTcpEndpoint::logger_recovery_tick() {
  if (!host_.alive()) return;
  bool any_gap = false;
  for (auto& [id, rc] : conns_) {
    if (rc->conn == nullptr) continue;
    const std::uint64_t mine = rc->conn->bytes_received();
    std::uint64_t target = rc->p_received;
    if (rc->conn->has_rx_gap()) {
      target = std::max(target, rc->conn->rx_gap_end());
    }
    // The client retransmitting from above our rcv_nxt proves the dead
    // primary acknowledged the bytes in between; only the logger has them.
    if (const auto floor = rc->conn->rx_future_floor()) {
      target = std::max(target, *floor);
    }
    if (target <= mine) continue;
    any_gap = true;
    LoggerRequest req;
    req.client_ip = rc->tuple.remote.ip;
    req.client_port = rc->tuple.remote.port;
    req.service_port = rc->tuple.local.port;
    req.offset = mine;
    req.length = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        target - mine, cfg_.recovery_chunk));
    ++stats_.logger_requests_sent;
    world_.trace().record(host_.name(), "logger_request", rc->tuple.str(),
                          static_cast<std::int64_t>(req.length));
    host_.udp_send(cfg_.my_ip, cfg_.control_port, cfg_.logger_ip,
                   cfg_.logger_port, req.serialize());
  }
  if (any_gap && ++logger_attempts_ < 200) {
    logger_timer_.arm(cfg_.hb_period / 2, [this] { logger_recovery_tick(); });
  }
}

void StTcpEndpoint::go_non_ft(const std::string& reason) {
  mode_ = Mode::kNonFaultTolerant;
  sync_decision_log();
  for (auto& [id, rc] : conns_) {
    rc->hold.clear();
    if (rc->conn != nullptr) {
      rc->conn->set_rx_tap(nullptr);
      rc->conn->set_close_gate(nullptr);
      rc->conn->release_fin();  // any withheld FIN goes out now
    }
    rc->fin_delay_timer.cancel();
    rc->peer_fin_timer.cancel();
  }
  recompute_hold_total();
  hb_timer_.stop();
  ping_timer_.cancel();
  if (timeline_ != nullptr) timeline_->mark(obs::Milestone::kTakeover, world_.now());
  world_.trace().record(host_.name(), "non_ft_mode", reason);
  log_.warn("running NON-FAULT-TOLERANT: ", reason);
}

void StTcpEndpoint::stonith_peer() {
  if (timeline_ != nullptr) timeline_->mark(obs::Milestone::kStonith, world_.now());
  world_.trace().record(host_.name(), "stonith", cfg_.peer_name);
  if (!power_.power_off(cfg_.peer_name)) {
    log_.warn("STONITH of ", cfg_.peer_name, " failed (power controller)");
  }
}

// ---------------------------------------------------------------------------
// 1+N groups (group.h, docs/GROUPS.md)
// ---------------------------------------------------------------------------

StTcpEndpoint::GroupPeer* StTcpEndpoint::peer_by_member(std::uint8_t m) {
  for (GroupPeer& p : peers_) {
    if (p.member == m) return &p;
  }
  return nullptr;
}

int StTcpEndpoint::peer_index_by_ip(net::Ipv4Addr ip) const {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].ip == ip) return static_cast<int>(i);
  }
  return -1;
}

bool StTcpEndpoint::peer_ip_alive(const GroupPeer& p) const {
  const sim::Duration deadline =
      cfg_.hb_period * cfg_.hb_miss_threshold + cfg_.hb_period / 2;
  return world_.now() - p.last_rx_ip <= deadline;
}

bool StTcpEndpoint::peer_serial_alive(const GroupPeer& p) const {
  if (!p.has_serial) return false;
  const sim::Duration deadline =
      cfg_.hb_period * cfg_.hb_miss_threshold + cfg_.hb_period / 2;
  return world_.now() - p.last_rx_serial <= deadline;
}

void StTcpEndpoint::ensure_group_progress(ReplConn& rc) {
  while (rc.gp.size() < peers_.size()) {
    ReplConn::PeerProgress g;
    g.since = world_.now();
    rc.gp.push_back(g);
  }
}

void StTcpEndpoint::update_group_gauges() {
  if (m_rank_ != nullptr) m_rank_->set(promotion_rank());
  if (m_epoch_ != nullptr) m_epoch_->set(static_cast<std::int64_t>(view_.epoch));
}

net::Ipv4Addr StTcpEndpoint::group_leader_ip() const {
  if (view_.order.empty() || view_.leader() == my_member()) return net::Ipv4Addr();
  return cfg_.group[view_.leader()].ip;
}

bool StTcpEndpoint::group_fins_agree(const ReplConn& rc) const {
  std::size_t live = 0;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (!view_.contains(peers_[i].member)) continue;
    ++live;
    if (i >= rc.gp.size()) return false;
    if (!rc.gp[i].valid || !(rc.gp[i].fin || rc.gp[i].rst)) return false;
  }
  return live > 0;
}

void StTcpEndpoint::on_group_heartbeat(const HeartbeatMsg& msg, bool via_serial) {
  if (!msg.group_valid || msg.member == my_member()) return;
  GroupPeer* p = peer_by_member(msg.member);
  if (p == nullptr) return;
  const int pi = static_cast<int>(p - peers_.data());

  // Rejoin solicitations: the group leader serves them while replicating; a
  // survivor that fell out of replication (last one standing) serves them
  // like the classic pair.
  if (msg.rejoin_request &&
      (mode_ == Mode::kTakenOver || mode_ == Mode::kNonFaultTolerant ||
       mode_ == Mode::kReintegrating ||
       (mode_ == Mode::kReplicating && view_.is_leader(my_member())))) {
    reintegrator_->on_rejoin_request(msg.rejoin_epoch, msg.member);
  }

  if (via_serial) {
    if (m_hb_gap_serial_us_ != nullptr) {
      m_hb_gap_serial_us_->record(
          static_cast<std::uint64_t>((world_.now() - p->last_rx_serial).us()));
    }
    p->last_rx_serial = world_.now();
    last_rx_serial_ = world_.now();
    ++stats_.hb_received_serial;
  } else {
    if (m_hb_gap_ip_us_ != nullptr) {
      m_hb_gap_ip_us_->record(
          static_cast<std::uint64_t>((world_.now() - p->last_rx_ip).us()));
    }
    p->last_rx_ip = world_.now();
    last_rx_ip_ = world_.now();
    ++stats_.hb_received_ip;
  }
  if (timeline_ != nullptr) timeline_->heartbeat_seen(world_.now());

  // Per-peer bounded-reorder guard (see the pair path in on_heartbeat).
  const auto seq_delta = static_cast<std::int32_t>(msg.hb_seq - p->last_hb_seq);
  if (p->seen_hb && seq_delta < 0 && seq_delta > -4096) {
    ++stats_.hb_stale;
    return;
  }
  p->seen_hb = true;
  p->last_hb_seq = msg.hb_seq;

  // Conviction revert: we convicted this member, yet here it is — alive and
  // claiming leadership with a view at least as new as ours. The conviction
  // was wrong (a grey channel, not a dead host); reinstate it before its
  // queued STONITH can ever fire.
  if (awaiting_leader_ && !view_.contains(msg.member) &&
      !msg.view_order.empty() && msg.view_order.front() == msg.member &&
      msg.view_epoch >= view_.epoch) {
    view_.order.insert(view_.order.begin(), msg.member);
    stonith_pending_.erase(
        std::remove(stonith_pending_.begin(), stonith_pending_.end(), msg.member),
        stonith_pending_.end());
    awaiting_leader_ = false;
    ballot_.reset();
    promote_timer_.cancel();
    world_.trace().record(host_.name(), "conviction_reverted", p->name);
  }

  maybe_adopt_view(msg.view_epoch, msg.view_order);  // may fence us into rejoin

  if (msg.rejoin_ready &&
      (mode_ == Mode::kReintegrating ||
       (mode_ == Mode::kReplicating && view_.is_leader(my_member())))) {
    reintegrator_->on_rejoin_ready(msg.rejoin_epoch, msg.member);
  }
  if (!replicating_or_reintegrating()) return;

  if (msg.ping_valid) {
    p->ping_fail_streak = msg.ping_ok ? 0 : p->ping_fail_streak + 1;
  }
  if (msg.app_suspect && mode_ == Mode::kReplicating && view_.contains(msg.member)) {
    p->app_suspect = true;
  }

  if (mode_ == Mode::kRejoining && !reintegrator_->snapshot_applied()) return;

  // Records count only on the leader<->backup axis: a backup hears another
  // backup's heartbeats for liveness and promotion, not for replication.
  const bool process_records = view_.is_leader(my_member()) ||
                               view_.is_leader(msg.member) ||
                               mode_ == Mode::kRejoining;
  if (!process_records) return;
  for (const HbRecord& rec : msg.records) {
    if (!replicating_or_reintegrating()) break;
    process_record(rec, pi);
  }
}

void StTcpEndpoint::group_detector_tick() {
  if (!host_.alive()) return;
  if (mode_ != Mode::kReplicating && mode_ != Mode::kReintegrating) return;
  if (mode_ == Mode::kReplicating) gc_closed_conns();

  for (std::size_t i = 0; i < peers_.size(); ++i) {
    GroupPeer& p = peers_[i];
    if (!view_.contains(p.member)) continue;
    // For a pairing without a shared RS-232 cable the IP channel is the only
    // channel — peer_serial_alive() is constantly false there, so the
    // classic "both links dead" collapses to IP silence as intended.
    if (!peer_ip_alive(p) && !peer_serial_alive(p)) {
      world_.trace().record(host_.name(), "hb_both_links_dead", p.name);
      member_failed(i, sim::cat("heartbeat failure on all channels to ", p.name),
                    "peer_dead");
      return;  // one conviction per tick; the next period re-evaluates
    }
    if (p.app_suspect) {
      member_failed(i, sim::cat("watchdog reported application failure on ", p.name),
                    "watchdog_failure");
      return;
    }
  }

  // Gateway-ping arbitration window: a live member is IP-silent while its
  // serial beat still arrives (Table 1 row 4, lifted to the group).
  bool nic_window = false;
  for (const GroupPeer& p : peers_) {
    if (!view_.contains(p.member)) continue;
    if (!peer_ip_alive(p) && peer_serial_alive(p)) {
      nic_window = true;
      break;
    }
  }
  if (nic_window) {
    if (!ping_loop_active_) {
      ping_loop_active_ = true;
      world_.trace().record(host_.name(), "nic_arbitration_start");
      update_ping_loop();
    }
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      GroupPeer& p = peers_[i];
      if (!view_.contains(p.member)) continue;
      if (!peer_ip_alive(p) && peer_serial_alive(p) && my_ping_valid_ &&
          my_ping_ok_ && p.ping_fail_streak >= cfg_.ping_fail_threshold) {
        member_failed(i,
                      sim::cat("gateway ping arbitration: ", p.name, " failed ",
                               p.ping_fail_streak, " consecutive pings"),
                      "nic_failure_detected");
        return;
      }
    }
  } else if (ping_loop_active_ && !ballot_.active) {
    // Candidates keep the loop running — their win is gated on it.
    ping_loop_active_ = false;
    my_ping_valid_ = false;
    ping_timer_.cancel();
  }

  if (mode_ != Mode::kReplicating) return;
  const bool leader = view_.is_leader(my_member());

  if (leader) {
    for (auto& [id, rc] : conns_) {
      if (rc->conn == nullptr || rc->local_closed) continue;
      ensure_group_progress(*rc);
      // Never-replicated grace, per member: the baseline restarts when the
      // member (re)joined the tracking, not just when the connection opened.
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        if (!view_.contains(peers_[i].member)) continue;
        const auto& g = rc->gp[i];
        const sim::SimTime base =
            g.since < rc->registered_at ? rc->registered_at : g.since;
        if (!g.valid && world_.now() - base > cfg_.replica_setup_grace) {
          member_failed(i,
                        sim::cat("member ", peers_[i].name,
                                 " never replicated connection ", rc->tuple.str()),
                        "app_failure_detected");
          return;
        }
      }
      if (rc->hold.overflowed()) {
        // The buffer is pinned by the slowest live member: convict it.
        int slow = -1;
        std::uint64_t slow_rx = 0;
        for (std::size_t i = 0; i < peers_.size(); ++i) {
          if (!view_.contains(peers_[i].member)) continue;
          const std::uint64_t rx = rc->gp[i].valid ? rc->gp[i].received : 0;
          if (slow < 0 || rx < slow_rx) {
            slow = static_cast<int>(i);
            slow_rx = rx;
          }
        }
        if (slow >= 0) {
          member_failed(static_cast<std::size_t>(slow),
                        "hold buffer overflow: slowest member cannot catch up",
                        "hold_overflow");
          return;
        }
      }
    }
  } else {
    // Backup: grey-failure progress stall against the leader (the same
    // criterion and gating as the pair path in detector_tick).
    const sim::SimTime now = world_.now();
    for (auto& [id, rc] : conns_) {
      if (!rc->progress.enabled()) break;  // same config for every conn
      if (rc->conn == nullptr || rc->local_closed || !rc->peer_valid) continue;
      if (rc->p_fin || rc->p_rst || rc->p_closed) continue;
      if (rc->conn->fin_generated() || rc->conn->rst_generated()) continue;
      if (now - rc->registered_at <= cfg_.replica_setup_grace) continue;
      const bool demand = rc->written() > rc->acked();
      const auto v = rc->progress.check(demand, now);
      if (v.failed) {
        if (timeline_ != nullptr) {
          timeline_->mark(obs::Milestone::kProgressStall, now);
        }
        GroupPeer* lp = peer_by_member(view_.leader());
        if (lp != nullptr) {
          member_failed(static_cast<std::size_t>(lp - peers_.data()),
                        sim::cat("progress stall on ", rc->tuple.str(), ": ",
                                 v.reason),
                        "progress_stall_detected");
        }
        return;
      }
    }
  }

  if (awaiting_leader_ && mode_ == Mode::kReplicating) evaluate_promotion();
}

void StTcpEndpoint::convict_from_record(int peer_idx, const std::string& reason,
                                        const char* trace_event) {
  if (group_mode() && peer_idx >= 0) {
    member_failed(static_cast<std::size_t>(peer_idx), reason, trace_event);
  } else {
    peer_failed(reason, trace_event);
  }
}

void StTcpEndpoint::member_failed(std::size_t peer_idx, const std::string& reason,
                                  const char* trace_event) {
  if (mode_ != Mode::kReplicating && mode_ != Mode::kReintegrating) return;
  if (peer_idx >= peers_.size()) return;
  GroupPeer& p = peers_[peer_idx];
  if (!view_.contains(p.member)) return;

  if (timeline_ != nullptr) {
    timeline_->mark(obs::Milestone::kChannelDead, world_.now());
    timeline_->set_conviction(trace_event, app_lag_peak_bytes_, p.name);
  }
  if (auto* reg = world_.metrics()) {
    const std::string prefix = "sttcp." + host_.name();
    reg->counter(prefix + ".conviction." + trace_event).inc();
    reg->counter(prefix + ".convicted_member." + p.name).inc();
  }
  world_.trace().record(host_.name(), trace_event, reason);
  world_.trace().record(host_.name(), "peer_convicted", trace_event);
  world_.trace().record(host_.name(), "member_convicted", p.name);
  log_.warn("member ", p.name, " declared failed: ", reason);

  // "Leader" here means the ESTABLISHED leader, not a front-of-view member
  // whose promotion is still unresolved: a candidate that convicts its last
  // surviving voter must fall through to the promotion path (its ballot just
  // became vacuous), never to the leader's keep-serving/non-FT path.
  const bool i_was_leader = view_.is_leader(my_member()) && !awaiting_leader_;
  const bool victim_was_leader = view_.is_leader(p.member);
  view_.remove(p.member);
  if (std::find(stonith_pending_.begin(), stonith_pending_.end(), p.member) ==
      stonith_pending_.end()) {
    stonith_pending_.push_back(p.member);
  }

  if (i_was_leader) {
    // The leader convicts a backup: STONITH and fence it out immediately —
    // bump the epoch, announce the shrunk view, keep replicating with the
    // remaining members (or continue alone, non-fault-tolerant).
    flush_stonith_pending();
    ++view_.epoch;
    ++stats_.view_changes;
    announce_view();
    update_group_gauges();
    for (auto& [id, rc] : conns_) {
      if (peer_idx < rc->gp.size()) {
        rc->gp[peer_idx] = ReplConn::PeerProgress{};
        rc->gp[peer_idx].since = world_.now();
      }
    }
    if (view_.order.size() <= 1 && mode_ == Mode::kReplicating) {
      go_non_ft(reason);
    }
    return;
  }

  // A backup convicted a member. If the leader is now gone (this conviction
  // or an earlier one), run the ranked-promotion protocol; a conviction of a
  // fellow backup merely shrinks the local view (the leader's next announce
  // is authoritative either way).
  if (victim_was_leader) awaiting_leader_ = true;
  if (ballot_.active) ballot_.reset();  // voter set changed; recompute
  update_group_gauges();
  if (awaiting_leader_ && mode_ == Mode::kReplicating) evaluate_promotion();
}

void StTcpEndpoint::evaluate_promotion() {
  if (!group_mode() || mode_ != Mode::kReplicating || !awaiting_leader_) return;
  if (view_.order.empty()) return;
  if (view_.is_leader(my_member())) {
    become_candidate();
    return;
  }
  // A lower-ranked member should win. Defer, bounded: a dead candidate must
  // not stall the group forever.
  if (!promote_timer_.armed()) {
    world_.trace().record(host_.name(), "promote_defer",
                          sim::cat("rank ", view_.rank_of(my_member()),
                                   " defers to member ",
                                   static_cast<int>(view_.leader())));
    promote_timer_.arm(cfg_.promote_defer, [this] { on_defer_expired(); });
  }
}

void StTcpEndpoint::on_defer_expired() {
  if (!awaiting_leader_ || mode_ != Mode::kReplicating) return;
  if (view_.order.empty()) return;
  if (view_.is_leader(my_member())) {
    become_candidate();
    return;
  }
  const std::uint8_t cand = view_.leader();
  GroupPeer* p = peer_by_member(cand);
  if (p != nullptr && (peer_ip_alive(*p) || peer_serial_alive(*p))) {
    // The candidate is alive but has not won yet (its own quorum may still
    // be settling). NEVER convict a live candidate — re-arm and keep waiting.
    promote_timer_.arm(cfg_.promote_defer, [this] { on_defer_expired(); });
    return;
  }
  if (p != nullptr) {
    member_failed(static_cast<std::size_t>(p - peers_.data()),
                  sim::cat("promotion candidate ", p->name, " silent past defer"),
                  "promote_defer_expired");
  }
}

void StTcpEndpoint::become_candidate() {
  promote_timer_.cancel();
  // One-grant-per-epoch binds our own candidacy too: having granted another
  // still-live candidate this epoch, we wait for its announce instead.
  if (have_granted_ && granted_epoch_ == view_.epoch &&
      granted_candidate_ != my_member() && view_.contains(granted_candidate_)) {
    promote_timer_.arm(cfg_.promote_retry, [this] { evaluate_promotion(); });
    return;
  }
  if (!ballot_.active || ballot_.epoch != view_.epoch) {
    ballot_.reset();
    ballot_.active = true;
    ballot_.epoch = view_.epoch;
    for (const std::uint8_t m : view_.order) {
      if (m != my_member()) ballot_.voters.push_back(m);
    }
    world_.trace().record(host_.name(), "promote_candidate", view_.str());
  }
  // Gateway reachability is part of the win condition (quorum-over-IP): a
  // candidate whose own NIC is the real fault must not take the service.
  if (!ping_loop_active_) {
    ping_loop_active_ = true;
    update_ping_loop();
  }
  PromoteRequest pr;
  pr.epoch = ballot_.epoch;
  pr.candidate = my_member();
  for (const std::uint8_t m : ballot_.voters) {
    if (ballot_.granted_by(m)) continue;
    GroupPeer* p = peer_by_member(m);
    if (p == nullptr) continue;
    host_.udp_send(cfg_.my_ip, cfg_.control_port, p->ip, cfg_.control_port,
                   pr.serialize());
  }
  // Requests and acks ride lossy UDP: keep soliciting until the ballot
  // completes or the view changes under us.
  promote_timer_.arm(cfg_.promote_retry, [this] {
    if (awaiting_leader_ && mode_ == Mode::kReplicating) become_candidate();
  });
  try_win_promotion();
}

void StTcpEndpoint::try_win_promotion() {
  if (!ballot_.active || !awaiting_leader_ || mode_ != Mode::kReplicating) return;
  for (const std::uint8_t m : ballot_.voters) {
    if (!ballot_.granted_by(m)) return;
  }
  // Unanimity over the live voter set (vacuous after a double failure left
  // us alone). Last gate: our own gateway reachability — the IP network
  // standing in as the arbiter the 2-host serial cable used to be.
  if (!my_ping_valid_) return;  // ping in flight; its callback re-checks
  if (!my_ping_ok_) {
    world_.trace().record(host_.name(), "promotion_blocked_gateway");
    return;
  }
  win_promotion();
}

void StTcpEndpoint::win_promotion() {
  promote_timer_.cancel();
  ballot_.reset();
  awaiting_leader_ = false;
  ping_loop_active_ = false;
  my_ping_valid_ = false;
  ping_timer_.cancel();

  ++stats_.takeovers;
  ++stats_.promotions;
  // STONITH every convicted member BEFORE any replica is unsuppressed: even
  // a mis-convicted, actually-live leader is powered off before this node
  // can emit a single segment with the service identity (dual-active guard).
  flush_stonith_pending();
  ++view_.epoch;
  ++stats_.view_changes;
  view_.remove(my_member());
  view_.order.insert(view_.order.begin(), my_member());
  role_ = Role::kPrimary;
  if (timeline_ != nullptr) {
    timeline_->mark(obs::Milestone::kTakeover, world_.now());
    timeline_->set_promotion(host_.name(), my_member(), view_.epoch);
  }
  world_.trace().record(host_.name(), "takeover",
                        sim::cat("promoted to leader: ", view_.str()));
  world_.trace().record(host_.name(), "promoted", view_.str());
  log_.warn("PROMOTED to group leader: ", view_.str());

  stack_.set_replica_mode(false);
  for (auto& [id, rc] : conns_) {
    if (rc->conn != nullptr) {
      rc->conn->on_takeover(cfg_.immediate_retransmit_on_takeover);
    }
  }

  if (view_.order.size() > 1) {
    // Survivors remain: stay in replicating mode as the new leader. Fresh
    // per-member mirrors and lag baselines (the survivors' counters restart
    // relative to OURS now), and primary-side seams on every live replica.
    for (auto& [id, rc] : conns_) {
      rc->gp.clear();
      ensure_group_progress(*rc);
      rc->lag_read.reset();
      rc->lag_written.reset();
      rc->lag_received.reset();
      rc->lag_acked.reset();
      rc->progress.reset();
      if (rc->conn != nullptr && !rc->local_closed) {
        install_primary_seams(*rc->conn, id);
      }
    }
    announce_view();
    update_group_gauges();
    send_heartbeat(/*include_serial=*/false);  // immediate beat as leader
  } else {
    mode_ = Mode::kTakenOver;
    hb_timer_.stop();
    announce_view();
    update_group_gauges();
  }
  if (!cfg_.logger_ip.is_zero()) {
    logger_attempts_ = 0;
    logger_recovery_tick();
  }
}

void StTcpEndpoint::on_promote_request(net::Ipv4Addr src, const PromoteRequest& pr) {
  if (!group_mode() || mode_ != Mode::kReplicating) return;
  PromoteAck ack;
  ack.epoch = pr.epoch;
  ack.candidate = pr.candidate;
  ack.voter = my_member();
  const int crank = view_.rank_of(pr.candidate);
  const int myrank = view_.rank_of(my_member());
  // One grant per epoch: free if we never granted this epoch, are re-acking
  // the same candidate, or the prior grantee has since been convicted.
  const bool grant_free = !have_granted_ || granted_epoch_ != view_.epoch ||
                          granted_candidate_ == pr.candidate ||
                          !view_.contains(granted_candidate_);
  ack.granted = pr.epoch == view_.epoch && crank >= 0 && myrank >= 0 &&
                crank < myrank && grant_free;
  if (ack.granted) {
    have_granted_ = true;
    granted_epoch_ = view_.epoch;
    granted_candidate_ = pr.candidate;
    ++stats_.votes_granted;
    world_.trace().record(host_.name(), "promote_grant",
                          sim::cat("member ", static_cast<int>(pr.candidate),
                                   " epoch ", pr.epoch));
    // Granting restarts our defer: the candidate earned a fresh window to
    // finish its quorum before we may convict it for silence.
    if (awaiting_leader_) {
      promote_timer_.arm(cfg_.promote_defer, [this] { on_defer_expired(); });
    }
  } else {
    ++stats_.votes_denied;
    world_.trace().record(host_.name(), "promote_deny",
                          sim::cat("member ", static_cast<int>(pr.candidate),
                                   " epoch ", pr.epoch, " (view ", view_.str(),
                                   ")"));
  }
  host_.udp_send(cfg_.my_ip, cfg_.control_port, src, cfg_.control_port,
                 ack.serialize());
}

void StTcpEndpoint::on_promote_ack(const PromoteAck& ack) {
  if (!group_mode() || mode_ != Mode::kReplicating) return;
  if (!ballot_.active || ack.candidate != my_member() ||
      ack.epoch != ballot_.epoch) {
    return;
  }
  if (!ack.granted) {
    // A voter knows a view we do not (or granted someone else). Step back
    // and wait for the winner's announce; the defer path retries.
    world_.trace().record(host_.name(), "promotion_denied",
                          sim::cat("by member ", static_cast<int>(ack.voter)));
    ballot_.reset();
    if (awaiting_leader_) {
      promote_timer_.arm(cfg_.promote_defer, [this] { on_defer_expired(); });
    }
    return;
  }
  if (!ballot_.granted_by(ack.voter)) ballot_.grants.push_back(ack.voter);
  try_win_promotion();
}

void StTcpEndpoint::announce_view() {
  ViewAnnounce va;
  va.epoch = view_.epoch;
  va.order = view_.order;
  // Every configured member hears it, including ones fenced out of the view:
  // a mis-convicted survivor must learn its fate quickly (and rejoin).
  for (const GroupPeer& p : peers_) {
    host_.udp_send(cfg_.my_ip, cfg_.control_port, p.ip, cfg_.control_port,
                   va.serialize());
  }
  world_.trace().record(host_.name(), "view_announced", view_.str());
}

void StTcpEndpoint::flush_stonith_pending() {
  for (const std::uint8_t m : stonith_pending_) {
    const std::string& name = cfg_.group[m].name;
    if (timeline_ != nullptr) {
      timeline_->mark(obs::Milestone::kStonith, world_.now());
    }
    world_.trace().record(host_.name(), "stonith", name);
    if (!power_.power_off(name)) {
      log_.warn("STONITH of ", name, " failed (power controller)");
    }
  }
  stonith_pending_.clear();
}

void StTcpEndpoint::maybe_adopt_view(std::uint32_t epoch,
                                     const std::vector<std::uint8_t>& order) {
  if (!group_mode() || order.empty()) return;
  if (static_cast<std::int32_t>(epoch - view_.epoch) <= 0) return;
  view_.epoch = epoch;
  view_.order = order;
  ++stats_.view_changes;
  // The announced view supersedes every local arbitration in flight. In
  // particular any pending STONITH: the announcer already powered off what
  // it convicted BEFORE announcing, and our own convictions are overruled.
  awaiting_leader_ = false;
  ballot_.reset();
  promote_timer_.cancel();
  stonith_pending_.clear();
  if (ping_loop_active_) {
    ping_loop_active_ = false;
    my_ping_valid_ = false;
    ping_timer_.cancel();
  }
  world_.trace().record(host_.name(), "view_adopted", view_.str());
  if (!view_.contains(my_member())) {
    update_group_gauges();
    if (mode_ == Mode::kReplicating) {
      // Fenced out: the group moved on without us (we were convicted and the
      // STONITH missed, or our channels were grey). Re-enter from scratch.
      world_.trace().record(host_.name(), "fenced_by_view", view_.str());
      role_ = Role::kBackup;
      reintegrator_->enter_rejoin();
    }
    return;
  }
  if (mode_ == Mode::kReplicating) {
    role_ = view_.is_leader(my_member()) ? Role::kPrimary : Role::kBackup;
  }
  update_group_gauges();
}

void StTcpEndpoint::group_commit_rejoin(std::uint8_t member) {
  view_.append_lowest(member);
  ++view_.epoch;
  ++stats_.view_changes;
  GroupPeer* p = peer_by_member(member);
  if (p != nullptr) {
    const std::size_t pi = static_cast<std::size_t>(p - peers_.data());
    p->last_rx_ip = world_.now();
    p->last_rx_serial = world_.now();
    p->seen_hb = false;
    p->app_suspect = false;
    p->ping_fail_streak = 0;
    for (auto& [id, rc] : conns_) {
      ensure_group_progress(*rc);
      rc->gp[pi] = ReplConn::PeerProgress{};
      rc->gp[pi].since = world_.now();
    }
  }
  announce_view();
  update_group_gauges();
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

void StTcpEndpoint::update_hold_gauge() {
  if (m_hold_bytes_ == nullptr) return;
  m_hold_bytes_->set(static_cast<std::int64_t>(hold_total_bytes_));
}

void StTcpEndpoint::note_hold_change(std::size_t before, std::size_t after) {
  hold_total_bytes_ += after;
  hold_total_bytes_ -= before;
  update_hold_gauge();
}

void StTcpEndpoint::recompute_hold_total() {
  // Cold-path resync after bulk clears (non-FT fallback, reintegration
  // re-arm/abandon); the hot paths adjust incrementally.
  hold_total_bytes_ = 0;
  for (const auto& [id, rc] : conns_) hold_total_bytes_ += rc->hold.size();
  update_hold_gauge();
}

StTcpEndpoint::ReplConn* StTcpEndpoint::by_id(std::uint16_t id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

StTcpEndpoint::ReplConn* StTcpEndpoint::by_tuple(const tcp::FourTuple& t) {
  auto it = id_by_tuple_.find(t);
  return it == id_by_tuple_.end() ? nullptr : by_id(it->second);
}

void StTcpEndpoint::gc_closed_conns() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    ReplConn& rc = *it->second;
    const bool expired = rc.local_closed &&
                         (rc.p_closed || world_.now() - rc.closed_at > cfg_.closed_linger);
    if (expired) {
      note_hold_change(rc.hold.size(), 0);
      // Only drop the tuple mapping if it still points at THIS record. Under
      // heavy churn the client's ephemeral ports recycle, and a new
      // incarnation of the tuple may have been registered while this closed
      // record lingered — erasing its mapping would orphan the live
      // connection (on_finished could no longer find it to clear conn,
      // leaving a dangling pointer once the stack frees the connection).
      auto t = id_by_tuple_.find(rc.tuple);
      if (t != id_by_tuple_.end() && t->second == it->first) id_by_tuple_.erase(t);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sttcp::sttcp
