#include "sttcp/messages.h"

#include "net/checksum.h"

namespace sttcp::sttcp {

namespace {
constexpr std::uint8_t kHbMagic = 0x48;  // 'H'
// magic(1) + checksum(2): offset of the checksum field within the message.
constexpr std::size_t kHbChecksumOffset = 1;

constexpr std::uint8_t kFlagFin = 0x01;
constexpr std::uint8_t kFlagRst = 0x02;
constexpr std::uint8_t kFlagClosed = 0x04;
constexpr std::uint8_t kFlagAnnounce = 0x08;
constexpr std::uint8_t kFlagEstablished = 0x10;

constexpr std::uint8_t kHdrPingValid = 0x01;
constexpr std::uint8_t kHdrPingOk = 0x02;
constexpr std::uint8_t kHdrAppSuspect = 0x04;
constexpr std::uint8_t kHdrRejoinRequest = 0x08;
constexpr std::uint8_t kHdrRejoinReady = 0x10;
constexpr std::uint8_t kHdrGroup = 0x20;
constexpr std::uint8_t kHdrDecisions = 0x40;
}  // namespace

const char* to_string(Role r) {
  return r == Role::kPrimary ? "primary" : "backup";
}

net::Bytes HeartbeatMsg::serialize() const {
  net::Bytes out;
  out.reserve(11 + records.size() * 19);
  net::ByteWriter w(out);
  w.u8(kHbMagic);
  // Internet checksum over the whole message (field zeroed while summing),
  // patched below. The serial channel has no FCS: without this, a line-noise
  // bit flip in a counter field would parse "successfully" and feed garbage
  // progress counters into failover arbitration.
  w.u16(0);
  w.u8(static_cast<std::uint8_t>(role));
  w.u32(hb_seq);
  std::uint8_t hf = 0;
  if (ping_valid) hf |= kHdrPingValid;
  if (ping_ok) hf |= kHdrPingOk;
  if (app_suspect) hf |= kHdrAppSuspect;
  if (rejoin_request) hf |= kHdrRejoinRequest;
  if (rejoin_ready) hf |= kHdrRejoinReady;
  if (group_valid) hf |= kHdrGroup;
  if (decisions_valid) hf |= kHdrDecisions;
  w.u8(hf);
  // The epoch rides only on rejoin-flagged heartbeats, so the steady-state
  // record math ("<20 bytes per connection") is untouched.
  if (rejoin_request || rejoin_ready) w.u32(rejoin_epoch);
  // Group-view block: sender member, view epoch, rank-ordered member list.
  // Gated on the flag, so classic pair heartbeats stay byte-identical.
  if (group_valid) {
    w.u8(member);
    w.u32(view_epoch);
    w.u8(static_cast<std::uint8_t>(view_order.size()));
    for (const std::uint8_t m : view_order) w.u8(m);
  }
  // Decision block: cumulative ack + the sender's unacked records. Gated on
  // the flag like the group block, so decision-free pairs pay zero bytes.
  if (decisions_valid) {
    w.u64(decision_ack);
    w.u16(static_cast<std::uint16_t>(decisions.size()));
    for (const DecisionRecord& d : decisions) {
      w.u64(d.seq);
      w.u8(d.kind);
      w.u64(d.value);
    }
  }
  w.u16(static_cast<std::uint16_t>(records.size()));
  for (const HbRecord& r : records) {
    w.u16(r.repl_id);
    std::uint8_t f = 0;
    if (r.fin_generated) f |= kFlagFin;
    if (r.rst_generated) f |= kFlagRst;
    if (r.closed) f |= kFlagClosed;
    if (r.announce) f |= kFlagAnnounce;
    if (r.established) f |= kFlagEstablished;
    w.u8(f);
    w.u32(static_cast<std::uint32_t>(r.bytes_received));
    w.u32(static_cast<std::uint32_t>(r.acked_by_peer));
    w.u32(static_cast<std::uint32_t>(r.app_written));
    w.u32(static_cast<std::uint32_t>(r.app_read));
    if (r.announce) {
      w.u32(r.client_ip.value());
      w.u16(r.client_port);
      w.u16(r.local_port);
      w.u32(r.iss);
      w.u32(r.irs);
    }
  }
  // Summed from the checksum field onward so the field sits word-aligned in
  // the summed region (at its natural offset 1 it would straddle two 16-bit
  // words and the complement trick would not cancel). The magic byte is
  // excluded but checked by value on parse.
  const std::uint16_t c = net::internet_checksum(
      net::BytesView(out).subspan(kHbChecksumOffset));
  out[kHbChecksumOffset] = static_cast<std::uint8_t>(c >> 8);
  out[kHbChecksumOffset + 1] = static_cast<std::uint8_t>(c);
  return out;
}

std::optional<HeartbeatMsg> HeartbeatMsg::parse(net::BytesView data) {
  try {
    net::ByteReader r(data);
    if (r.u8() != kHbMagic) return std::nullopt;
    // A valid message checksums to zero from the field onward (the stored
    // field complements the rest). Rejects bit flips AND truncations.
    if (net::internet_checksum(data.subspan(kHbChecksumOffset)) != 0) {
      return std::nullopt;
    }
    HeartbeatMsg m;
    r.u16();  // checksum, verified above
    const std::uint8_t role_byte = r.u8();
    if (role_byte > static_cast<std::uint8_t>(Role::kBackup)) return std::nullopt;
    m.role = static_cast<Role>(role_byte);
    m.hb_seq = r.u32();
    const std::uint8_t hf = r.u8();
    m.ping_valid = (hf & kHdrPingValid) != 0;
    m.ping_ok = (hf & kHdrPingOk) != 0;
    m.app_suspect = (hf & kHdrAppSuspect) != 0;
    m.rejoin_request = (hf & kHdrRejoinRequest) != 0;
    m.rejoin_ready = (hf & kHdrRejoinReady) != 0;
    m.group_valid = (hf & kHdrGroup) != 0;
    m.decisions_valid = (hf & kHdrDecisions) != 0;
    if (m.rejoin_request || m.rejoin_ready) m.rejoin_epoch = r.u32();
    if (m.group_valid) {
      m.member = r.u8();
      m.view_epoch = r.u32();
      const std::uint8_t n = r.u8();
      if (n > r.remaining()) return std::nullopt;
      m.view_order.reserve(n);
      for (std::uint8_t i = 0; i < n; ++i) m.view_order.push_back(r.u8());
    }
    if (m.decisions_valid) {
      m.decision_ack = r.u64();
      const std::uint16_t dn = r.u16();
      if (static_cast<std::size_t>(dn) * DecisionRecord::kWireSize >
          r.remaining()) {
        return std::nullopt;
      }
      m.decisions.reserve(dn);
      for (std::uint16_t i = 0; i < dn; ++i) {
        DecisionRecord d;
        d.seq = r.u64();
        d.kind = r.u8();
        d.value = r.u64();
        m.decisions.push_back(d);
      }
    }
    const std::uint16_t count = r.u16();
    // Reject an impossible record count before reserving for it: each record
    // is at least 19 wire bytes, so count is bounded by what is left.
    if (static_cast<std::size_t>(count) * 19 > r.remaining()) return std::nullopt;
    m.records.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      HbRecord rec;
      rec.repl_id = r.u16();
      const std::uint8_t f = r.u8();
      rec.fin_generated = (f & kFlagFin) != 0;
      rec.rst_generated = (f & kFlagRst) != 0;
      rec.closed = (f & kFlagClosed) != 0;
      rec.announce = (f & kFlagAnnounce) != 0;
      rec.established = (f & kFlagEstablished) != 0;
      rec.bytes_received = r.u32();
      rec.acked_by_peer = r.u32();
      rec.app_written = r.u32();
      rec.app_read = r.u32();
      if (rec.announce) {
        rec.client_ip = net::Ipv4Addr(r.u32());
        rec.client_port = r.u16();
        rec.local_port = r.u16();
        rec.iss = r.u32();
        rec.irs = r.u32();
      }
      m.records.push_back(rec);
    }
    return m;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::uint64_t unwrap_counter(std::uint32_t wire_value, std::uint64_t previous) {
  const std::uint32_t prev_low = static_cast<std::uint32_t>(previous);
  const std::int32_t delta = static_cast<std::int32_t>(wire_value - prev_low);
  if (delta < 0) {
    // Counters never regress; a small negative delta is a stale heartbeat.
    return previous;
  }
  return previous + static_cast<std::uint64_t>(delta);
}

net::Bytes MissedBytesRequest::serialize() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.reserve(15);
  w.u8(static_cast<std::uint8_t>(ControlType::kMissedBytesRequest));
  w.u16(repl_id);
  w.u64(offset);
  w.u32(length);
  return out;
}

net::Bytes MissedBytesReply::serialize() const {
  net::Bytes out;
  out.reserve(15 + data.size());
  net::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(ControlType::kMissedBytesReply));
  w.u16(repl_id);
  w.u64(offset);
  w.u32(static_cast<std::uint32_t>(data.size()));
  w.bytes(data);
  return out;
}

net::Bytes PromoteRequest::serialize() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.reserve(6);
  w.u8(static_cast<std::uint8_t>(ControlType::kPromoteRequest));
  w.u32(epoch);
  w.u8(candidate);
  return out;
}

net::Bytes PromoteAck::serialize() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.reserve(8);
  w.u8(static_cast<std::uint8_t>(ControlType::kPromoteAck));
  w.u32(epoch);
  w.u8(candidate);
  w.u8(voter);
  w.u8(granted ? 1 : 0);
  return out;
}

net::Bytes ViewAnnounce::serialize() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.reserve(6 + order.size());
  w.u8(static_cast<std::uint8_t>(ControlType::kViewAnnounce));
  w.u32(epoch);
  w.u8(static_cast<std::uint8_t>(order.size()));
  for (const std::uint8_t m : order) w.u8(m);
  return out;
}

std::optional<ControlMsg> ControlMsg::parse(net::BytesView data) {
  try {
    net::ByteReader r(data);
    ControlMsg m{};
    const std::uint8_t t = r.u8();
    if (t == static_cast<std::uint8_t>(ControlType::kMissedBytesRequest)) {
      m.type = ControlType::kMissedBytesRequest;
      m.request.repl_id = r.u16();
      m.request.offset = r.u64();
      m.request.length = r.u32();
      return m;
    }
    if (t == static_cast<std::uint8_t>(ControlType::kMissedBytesReply)) {
      m.type = ControlType::kMissedBytesReply;
      m.reply.repl_id = r.u16();
      m.reply.offset = r.u64();
      const std::uint32_t len = r.u32();
      m.reply.data = net::to_bytes(r.bytes(len));
      return m;
    }
    if (t == static_cast<std::uint8_t>(ControlType::kPromoteRequest)) {
      m.type = ControlType::kPromoteRequest;
      m.promote_request.epoch = r.u32();
      m.promote_request.candidate = r.u8();
      return m;
    }
    if (t == static_cast<std::uint8_t>(ControlType::kPromoteAck)) {
      m.type = ControlType::kPromoteAck;
      m.promote_ack.epoch = r.u32();
      m.promote_ack.candidate = r.u8();
      m.promote_ack.voter = r.u8();
      m.promote_ack.granted = r.u8() != 0;
      return m;
    }
    if (t == static_cast<std::uint8_t>(ControlType::kViewAnnounce)) {
      m.type = ControlType::kViewAnnounce;
      m.view_announce.epoch = r.u32();
      const std::uint8_t n = r.u8();
      if (n > r.remaining()) return std::nullopt;
      m.view_announce.order.reserve(n);
      for (std::uint8_t i = 0; i < n; ++i) m.view_announce.order.push_back(r.u8());
      return m;
    }
    return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace sttcp::sttcp
