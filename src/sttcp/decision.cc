#include "sttcp/decision.h"

namespace sttcp::sttcp {

const char* to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kSession: return "session";
    case DecisionKind::kTime: return "time";
    case DecisionKind::kOrder: return "order";
    case DecisionKind::kEvict: return "evict";
    case DecisionKind::kFlush: return "flush";
  }
  return "?";
}

std::uint64_t DecisionLog::choose(DecisionKind kind,
                                  const std::function<std::uint64_t()>& gen) {
  // Post-promotion drain: replayed records the dead primary committed are
  // consumed before any fresh choice is generated (choices and execution
  // order both come out of the backlog until it is empty).
  if (!queue_.empty() &&
      queue_.front().kind == static_cast<std::uint8_t>(kind)) {
    const DecisionRecord rec = queue_.front();
    queue_.pop_front();
    next_consume_ = rec.seq + 1;
    ++stats_.replayed;
    return rec.value;
  }
  DecisionRecord rec;
  rec.seq = next_seq_++;
  rec.kind = static_cast<std::uint8_t>(kind);
  rec.value = gen();
  ++stats_.appended;
  if (!standalone_ || retain_) unacked_.push_back(rec);
  if (standalone_ && commit_hook_) commit_hook_();
  return rec.value;
}

void DecisionLog::set_standalone(bool standalone, bool retain) {
  const bool commit_advanced = standalone && !standalone_;
  standalone_ = standalone;
  retain_ = retain;
  if (standalone_ && !retain_) unacked_.clear();
  if (commit_advanced && commit_hook_) commit_hook_();
}

void DecisionLog::on_peer_ack(std::uint64_t cum) {
  if (cum <= peer_acked_) return;
  peer_acked_ = cum;
  while (!unacked_.empty() && unacked_.front().seq <= cum) unacked_.pop_front();
  if (commit_hook_) commit_hook_();
}

std::vector<DecisionRecord> DecisionLog::unacked(std::size_t max) const {
  std::vector<DecisionRecord> out;
  out.reserve(std::min(max, unacked_.size()));
  for (const DecisionRecord& r : unacked_) {
    if (out.size() >= max) break;
    out.push_back(r);
  }
  return out;
}

bool DecisionLog::ingest(const std::vector<DecisionRecord>& recs) {
  const std::uint64_t before = rx_cursor_;
  for (const DecisionRecord& r : recs) {
    if (r.seq < next_consume_ + queue_.size()) {
      // Below the cursor: consumed already, restored via checkpoint, or a
      // heartbeat-retransmitted copy of a queued record.
      ++(r.seq >= next_consume_ ? stats_.duplicates : stats_.stale);
      continue;
    }
    if (r.seq == next_consume_ + queue_.size()) {
      queue_.push_back(r);
      ++stats_.ingested;
      // The hole this record filled may unpark successors.
      auto it = parked_.find(r.seq + 1);
      while (it != parked_.end()) {
        queue_.push_back(it->second);
        parked_.erase(it);
        it = parked_.find(queue_.back().seq + 1);
      }
    } else if (parked_.emplace(r.seq, r).second) {
      ++stats_.ingested;
    } else {
      ++stats_.duplicates;
    }
    if (r.seq > max_seen_) max_seen_ = r.seq;
  }
  advance_rx_cursor();
  const bool advanced = rx_cursor_ > before;
  if (advanced && ingest_hook_) ingest_hook_();
  return advanced;
}

void DecisionLog::advance_rx_cursor() {
  const std::uint64_t contiguous = next_consume_ + queue_.size() - 1;
  if (contiguous > rx_cursor_) rx_cursor_ = contiguous;
}

const DecisionRecord* DecisionLog::peek() const {
  return queue_.empty() ? nullptr : &queue_.front();
}

const DecisionRecord* DecisionLog::peek_ahead(std::size_t offset) const {
  return offset < queue_.size() ? &queue_[offset] : nullptr;
}

bool DecisionLog::try_take(DecisionKind kind, std::uint64_t* value) {
  if (queue_.empty() ||
      queue_.front().kind != static_cast<std::uint8_t>(kind)) {
    return false;
  }
  if (value != nullptr) *value = queue_.front().value;
  next_consume_ = queue_.front().seq + 1;
  queue_.pop_front();
  ++stats_.replayed;
  return true;
}

void DecisionLog::promote() {
  if (mode_ == Mode::kRecord) return;
  mode_ = Mode::kRecord;
  // queue_ is the contiguous prefix by construction; parked_ records sit
  // past a gap the cumulative ack never covered, so no response depending
  // on them ever left the dead primary — fresh choices are safe.
  stats_.promote_kept += queue_.size();
  stats_.promote_dropped += parked_.size();
  parked_.clear();
  // Number fresh decisions above everything ever seen: a rejoiner that later
  // restores from our checkpoint must never see a seq reused with a
  // different value.
  next_seq_ = std::max(max_seen_, next_consume_ + queue_.size() - 1) + 1;
  peer_acked_ = 0;
  standalone_ = true;
  retain_ = false;
  unacked_.clear();
  if (promote_hook_) promote_hook_();
  if (commit_hook_) commit_hook_();
}

void DecisionLog::reset(Mode mode) {
  mode_ = mode;
  next_seq_ = 1;
  peer_acked_ = 0;
  standalone_ = false;
  retain_ = true;
  unacked_.clear();
  queue_.clear();
  parked_.clear();
  rx_cursor_ = 0;
  next_consume_ = 1;
  max_seen_ = 0;
}

net::Bytes DecisionLog::serialize() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.u64(next_seq_);
  return out;
}

bool DecisionLog::restore(net::BytesView data) {
  try {
    net::ByteReader r(data);
    const std::uint64_t next = r.u64();
    // The checkpoint folds every decision below `next` into the application
    // state it travels with; replay resumes exactly there.
    queue_.clear();
    parked_.clear();
    next_consume_ = next;
    rx_cursor_ = next - 1;
    max_seen_ = next - 1;
    next_seq_ = next;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace sttcp::sttcp
