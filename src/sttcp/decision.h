// Logged-decision channel: the determinism backbone for stateful
// applications (docs/APPLICATION.md).
//
// ST-TCP replicates the INPUT stream; the application must derive every
// output byte from it deterministically. A real application cannot: cache
// eviction victims, writeback scheduling, session-id draws and timestamps
// are all invisible to the byte stream. The LLFT line of work (PAPERS.md)
// closes the gap by logging each such choice on the primary and replaying
// the log on the backup. This class is that channel's endpoint-agnostic
// core: the primary appends DecisionRecords as it makes choices, the
// StTcpEndpoint piggybacks unacked records on heartbeats (messages.h, the
// 0x40 header flag), and the backup consumes them in sequence order.
//
// Output commit: a primary response may encode a decision the backup never
// received — if the primary then dies, the promoted backup would re-decide
// differently and the client would observe two histories. The application
// therefore holds response bytes until commit_through() covers every
// decision the response depends on (the backup's cumulative ack, carried on
// the same heartbeat block). In standalone mode (no live peer: non-FT or
// post-takeover) everything commits immediately.
//
// Promotion: a backup taking over keeps the contiguous prefix of ingested,
// not-yet-consumed records — the dead primary may have released responses
// built from them, so they MUST still be replayed — and drops everything
// after the first sequence gap: a gap means the cumulative ack never covered
// those records, so the output-commit gate provably kept every dependent
// response inside the dead primary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/bytes.h"

namespace sttcp::sttcp {

/// What kind of nondeterministic choice a record pins down. The log itself
/// is application-agnostic; these kinds belong to app::BlockStoreServer but
/// live here so the wire codec and tooling can name them.
enum class DecisionKind : std::uint8_t {
  kSession = 1,  // session-id draw (value = the id)
  kTime = 2,     // response timestamp (value = microseconds)
  kOrder = 3,    // cross-connection execution order (value = client key)
  kEvict = 4,    // cache eviction victim (value = block id)
  kFlush = 5,    // writeback batch (value = page count)
};

const char* to_string(DecisionKind k);

struct DecisionRecord {
  std::uint64_t seq = 0;  // 1-based, contiguous per primary incarnation
  std::uint8_t kind = 0;  // DecisionKind
  std::uint64_t value = 0;

  /// Wire size inside the heartbeat decision block.
  static constexpr std::size_t kWireSize = 17;  // seq(8) kind(1) value(8)
};

class DecisionLog {
 public:
  enum class Mode {
    kRecord,  // primary: generate choices, append, await acks
    kReplay,  // backup: ingest from heartbeats, consume in order
  };

  struct Stats {
    std::uint64_t appended = 0;  // records generated (record mode)
    std::uint64_t replayed = 0;  // records consumed (replay mode)
    std::uint64_t ingested = 0;  // records accepted from the peer
    std::uint64_t duplicates = 0;    // ingests dropped as already-seen
    std::uint64_t stale = 0;         // ingests below the replay cursor
    std::uint64_t promote_kept = 0;  // contiguous prefix kept at promotion
    std::uint64_t promote_dropped = 0;  // post-gap records dropped
  };

  explicit DecisionLog(Mode mode) : mode_(mode) { reset(mode); }

  Mode mode() const { return mode_; }
  bool recording() const { return mode_ == Mode::kRecord; }
  const Stats& stats() const { return stats_; }

  // --- record side -----------------------------------------------------------
  /// Make (or replay) one choice. In record mode with no pending replay
  /// backlog, `gen` runs and its value is appended. A freshly promoted
  /// primary still holding replayed-but-unconsumed records consumes those
  /// first — the dead primary may have released responses built on them.
  std::uint64_t choose(DecisionKind kind, const std::function<std::uint64_t()>& gen);
  /// Highest seq this side has appended.
  std::uint64_t last_seq() const { return next_seq_ - 1; }
  /// Highest seq whose dependents may be released to clients: everything
  /// (standalone) or the peer's cumulative ack.
  std::uint64_t commit_through() const {
    return standalone_ ? last_seq() : peer_acked_;
  }
  /// No live peer: commit everything immediately. `retain` keeps appended
  /// records queued for a (future) rejoiner — the reintegrating survivor
  /// sets it so decisions made while the snapshot streams still reach the
  /// rejoiner; a lone non-FT server drops them on append.
  void set_standalone(bool standalone, bool retain);
  bool standalone() const { return standalone_; }
  /// Peer acknowledged every seq <= cum (from the heartbeat decision block).
  void on_peer_ack(std::uint64_t cum);
  /// Oldest unacked records, capped (heartbeat retransmission window).
  std::vector<DecisionRecord> unacked(std::size_t max) const;
  /// The application finished a batch of choices and wants them on the wire
  /// now instead of at the next periodic beat (fires the endpoint's hook).
  void request_flush() {
    if (flush_hook_) flush_hook_();
  }

  // --- replay side -----------------------------------------------------------
  /// Accept records from a heartbeat block; duplicates and records below the
  /// replay cursor are dropped. Returns true when the contiguous rx cursor
  /// advanced (the endpoint acks promptly; the app re-pumps its executor).
  bool ingest(const std::vector<DecisionRecord>& recs);
  /// Highest contiguously ingested-or-consumed seq: the cumulative ack.
  std::uint64_t rx_cursor() const { return rx_cursor_; }
  /// Next record due for consumption, or nullptr if it has not arrived.
  const DecisionRecord* peek() const;
  /// Like peek, but looking `offset` records past the next one — the
  /// executor pre-checks a request's full decision demand before mutating.
  const DecisionRecord* peek_ahead(std::size_t offset) const;
  /// Consume the next record iff it matches `kind`. Returns false (and
  /// leaves the queue untouched) on a kind mismatch or absence.
  bool try_take(DecisionKind kind, std::uint64_t* value);
  /// Replayed-but-unconsumed backlog (a promoted primary drains this first).
  std::size_t pending_replay() const { return queue_.size(); }

  // --- role transitions ------------------------------------------------------
  /// Backup -> primary at takeover: keep the contiguous queued prefix, drop
  /// everything past the first gap (see file comment), continue numbering
  /// above every seq ever seen.
  void promote();
  /// Fresh process (host boot hook) — everything forgotten.
  void reset(Mode mode);

  // --- checkpoint (reintegration snapshot payload) ---------------------------
  /// Record-side state a rejoiner needs: the next sequence number. Restored
  /// state below this seq is already folded into the application checkpoint.
  net::Bytes serialize() const;
  bool restore(net::BytesView data);

  // --- hooks -----------------------------------------------------------------
  /// Endpoint: request_flush() wants a decision heartbeat sent now.
  void set_flush_hook(std::function<void()> fn) { flush_hook_ = std::move(fn); }
  /// Application: commit_through() advanced — release gated responses.
  void set_commit_hook(std::function<void()> fn) { commit_hook_ = std::move(fn); }
  /// Application: replay records arrived — re-pump the executor.
  void set_ingest_hook(std::function<void()> fn) { ingest_hook_ = std::move(fn); }
  /// Application: the log switched replay -> record (takeover) — arm
  /// primary-side machinery (writeback timer, backlog drain).
  void set_promote_hook(std::function<void()> fn) { promote_hook_ = std::move(fn); }

 private:
  void advance_rx_cursor();

  Mode mode_;
  std::uint64_t next_seq_ = 1;     // record side: next seq to assign
  std::uint64_t peer_acked_ = 0;   // record side: peer's cumulative ack
  bool standalone_ = false;
  bool retain_ = true;
  std::deque<DecisionRecord> unacked_;  // record side, oldest first

  std::deque<DecisionRecord> queue_;  // replay side: in-order, contiguous
  /// Ingested out of order (a heartbeat gap): parked until the hole fills.
  std::map<std::uint64_t, DecisionRecord> parked_;
  std::uint64_t rx_cursor_ = 0;       // highest contiguous seq ingested/consumed
  std::uint64_t next_consume_ = 1;    // seq of the next record to consume
  std::uint64_t max_seen_ = 0;        // highest seq ever ingested

  std::function<void()> flush_hook_;
  std::function<void()> commit_hook_;
  std::function<void()> ingest_hook_;
  std::function<void()> promote_hook_;
  Stats stats_;
};

}  // namespace sttcp::sttcp
