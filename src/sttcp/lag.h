// Peer-lag tracking: implements the paper's two application-failure
// criteria (§4.2.1) over a pair of monotonic counters —
//   * AppMaxLagBytes: peer trails the local counter by more than N bytes,
//     sustained for a short grace period;
//   * AppMaxLagTime:  a position reached locally at time T has still not
//     been reached by the peer after the configured duration.
// The same machinery, with different thresholds, drives the
// LastByteReceived comparison used for NIC-failure arbitration (§4.3).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace sttcp::sttcp {

class LagTracker {
 public:
  struct Verdict {
    bool failed = false;
    std::string reason;  // human-readable, recorded in the trace
  };

  LagTracker(std::uint64_t max_lag_bytes, sim::Duration bytes_grace,
             sim::Duration max_lag_time)
      : max_lag_bytes_(max_lag_bytes),
        bytes_grace_(bytes_grace),
        max_lag_time_(max_lag_time) {}

  /// Feed the current local and peer counter values; returns the verdict.
  /// Call regularly (each heartbeat) — time-based criteria need the clock.
  Verdict update(std::uint64_t mine, std::uint64_t peer, sim::SimTime now);

  /// Forget history (e.g. when a failover resets roles).
  void reset();

  /// Current byte lag as of the last update.
  std::uint64_t lag_bytes() const { return lag_bytes_; }

 private:
  std::uint64_t max_lag_bytes_;
  sim::Duration bytes_grace_;
  sim::Duration max_lag_time_;

  // Time criterion: snapshot of the local counter; refreshed whenever the
  // peer catches up to the snapshot.
  std::uint64_t snap_value_ = 0;
  sim::SimTime snap_time_;
  bool snap_valid_ = false;

  // Byte criterion: when the lag first exceeded the threshold.
  sim::SimTime bytes_exceeded_since_;
  bool bytes_exceeded_ = false;

  std::uint64_t lag_bytes_ = 0;
};

}  // namespace sttcp::sttcp
