// Peer-lag tracking: implements the paper's two application-failure
// criteria (§4.2.1) over a pair of monotonic counters —
//   * AppMaxLagBytes: peer trails the local counter by more than N bytes,
//     sustained for a short grace period;
//   * AppMaxLagTime:  a position reached locally at time T has still not
//     been reached by the peer after the configured duration.
// The same machinery, with different thresholds, drives the
// LastByteReceived comparison used for NIC-failure arbitration (§4.3).
//
// ProgressWatch generalizes the idea to grey failures: instead of comparing
// the peer against the local counter (which is blind when a CPU stall
// freezes BOTH sides' counters at the same value — neither "lags" the
// other), it convicts on absolute stagnation of the peer's counter sum
// while there is demonstrable demand (unacknowledged bytes owed to the
// client) and heartbeats are still arriving. That is the grey signature:
// alive by heartbeat, dead by progress.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace sttcp::sttcp {

class LagTracker {
 public:
  struct Verdict {
    bool failed = false;
    std::string reason;  // human-readable, recorded in the trace
  };

  LagTracker(std::uint64_t max_lag_bytes, sim::Duration bytes_grace,
             sim::Duration max_lag_time)
      : max_lag_bytes_(max_lag_bytes),
        bytes_grace_(bytes_grace),
        max_lag_time_(max_lag_time) {}

  /// Feed the current local and peer counter values; returns the verdict.
  /// Call regularly (each heartbeat) — time-based criteria need the clock.
  Verdict update(std::uint64_t mine, std::uint64_t peer, sim::SimTime now);

  /// Forget history (e.g. when a failover resets roles).
  void reset();

  /// Current byte lag as of the last update.
  std::uint64_t lag_bytes() const { return lag_bytes_; }

 private:
  std::uint64_t max_lag_bytes_;
  sim::Duration bytes_grace_;
  sim::Duration max_lag_time_;

  // Time criterion: snapshot of the local counter; refreshed whenever the
  // peer catches up to the snapshot.
  std::uint64_t snap_value_ = 0;
  sim::SimTime snap_time_;
  bool snap_valid_ = false;

  // Byte criterion: when the lag first exceeded the threshold.
  sim::SimTime bytes_exceeded_since_;
  bool bytes_exceeded_ = false;

  std::uint64_t lag_bytes_ = 0;
};

/// Progress-counter stagnation detector (grey failures). Feed the peer's
/// counter sum from every heartbeat record via observe(); ask check() on
/// every detector tick. Conviction requires all three simultaneously, for
/// longer than `stall_time`:
///   * the peer's counters are frozen (observe() sees the same sum),
///   * there is local demand (the caller supplies it: bytes written but not
///     yet acknowledged — an idle connection is not evidence),
///   * the detector keeps being called (the endpoint gates on heartbeats
///     still arriving; silence is the classic detector's job, not ours).
/// A zero stall_time disables the watch entirely (the default — classic
/// deployments keep their exact seed-tuned behavior).
class ProgressWatch {
 public:
  struct Verdict {
    bool failed = false;
    std::string reason;
  };

  explicit ProgressWatch(sim::Duration stall_time) : stall_time_(stall_time) {}

  bool enabled() const { return stall_time_ > sim::Duration::zero(); }

  /// Record the peer counter sum carried by a heartbeat record.
  void observe(std::uint64_t counter_sum, sim::SimTime now);

  /// Evaluate stagnation as of `now`. `demand` = this node is owed progress
  /// (e.g. app_bytes_written > bytes_acked_by_peer).
  Verdict check(bool demand, sim::SimTime now);

  /// Forget history (role swap / reintegration resume).
  void reset();

  std::uint64_t last_value() const { return last_value_; }
  /// How long the peer counter has been frozen under demand, as of the last
  /// check(); zero while healthy.
  sim::Duration stalled_for() const { return stalled_for_; }

 private:
  sim::Duration stall_time_;
  std::uint64_t last_value_ = 0;
  sim::SimTime last_change_;
  bool seen_ = false;
  sim::SimTime demand_since_;
  bool demand_valid_ = false;
  sim::Duration stalled_for_;
};

}  // namespace sttcp::sttcp
