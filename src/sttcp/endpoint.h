// StTcpEndpoint: the per-server ST-TCP engine (the paper's primary
// contribution).
//
// One endpoint runs on the primary and one on the backup. Each:
//  * exchanges heartbeats every hb_period on TWO channels — UDP over the IP
//    link and the RS-232 serial link (§3) — carrying the per-connection
//    progress counters, FIN/RST notices, connection announcements and
//    gateway-ping results;
//  * tracks per-channel liveness (hb_miss_threshold consecutive silent
//    periods kill a channel);
//  * detects and reacts to every single-failure row of Table 1:
//      1. HW/OS crash        — both channels dead             → takeover / non-FT
//      2. app hang (no FIN)  — AppMaxLagBytes / AppMaxLagTime → takeover / non-FT
//      3. app crash (FIN)    — FIN disagreement + MaxDelayFIN → takeover / non-FT
//      4. NIC/cable failure  — IP dead + serial alive, LastByteReceived
//                              comparison + gateway-ping arbitration
//      5. temporary loss     — backup recovers missed bytes from the
//                              primary's hold buffer over the control channel
//  * on the primary: feeds the hold buffer from the connection rx tap,
//    releases it as the backup confirms receipt, gates FIN/RST emission for
//    arbitration, and announces new connections (ISS/IRS) to the backup;
//  * on the backup: creates replica connections from announcements, keeps
//    them suppressed, and performs the takeover — STONITH the primary, leave
//    replica mode, stop suppressing (paper: wait for the next natural
//    retransmission; optionally retransmit immediately).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/serial_link.h"
#include "obs/metrics.h"
#include "sttcp/config.h"
#include "sttcp/group.h"
#include "sttcp/hold_buffer.h"
#include "sttcp/lag.h"
#include "sttcp/messages.h"
#include "tcp/stack.h"

namespace sttcp::sttcp {

class Reintegrator;

class StTcpEndpoint final : public tcp::TcpStack::ConnectionObserver {
 public:
  enum class Mode {
    kReplicating,       // normal operation, peer believed healthy
    kNonFaultTolerant,  // primary continuing alone (backup declared failed)
    kTakenOver,         // backup now owns the client connections
    kReintegrating,     // survivor: streaming its snapshot to a rejoiner
    kRejoining,         // freshly booted: asking the survivor for a snapshot
    kDead,              // this host crashed
  };

  struct Stats {
    std::uint64_t hb_sent = 0;
    std::uint64_t hb_received_ip = 0;
    std::uint64_t hb_received_serial = 0;
    std::uint64_t hb_malformed = 0;       // rejected by the codec (noise/garbage)
    std::uint64_t hb_stale = 0;           // reordered/duplicated old heartbeats
    std::uint64_t control_malformed = 0;  // control datagrams the codec rejected
    std::uint64_t announces_confirmed = 0;
    std::uint64_t replicas_created = 0;
    std::uint64_t missed_requests_sent = 0;
    std::uint64_t missed_requests_served = 0;
    std::uint64_t missed_bytes_injected = 0;
    std::uint64_t logger_requests_sent = 0;
    std::uint64_t logger_bytes_injected = 0;
    std::uint64_t decision_hb_sent = 0;  // event-style decision/ack beats
    std::uint64_t fin_delayed = 0;
    std::uint64_t fin_agreed = 0;
    std::uint64_t takeovers = 0;
    std::uint64_t promotions = 0;            // group mode: promotion wins
    std::uint64_t votes_granted = 0;         // group mode: PromoteAck grants sent
    std::uint64_t votes_denied = 0;          // group mode: PromoteAck denials sent
    std::uint64_t view_changes = 0;          // group mode: epochs adopted/announced
    std::uint64_t reintegrations = 0;        // survivor side: completed
    std::uint64_t rejoins = 0;               // rejoiner side: completed
    std::uint64_t snapshot_conns_sent = 0;
    std::uint64_t snapshot_conns_adopted = 0;
  };

  StTcpEndpoint(net::Host& host, tcp::TcpStack& stack, net::PowerController& power,
                net::SerialPort* serial, Role role, StTcpConfig config);
  ~StTcpEndpoint() override;
  StTcpEndpoint(const StTcpEndpoint&) = delete;
  StTcpEndpoint& operator=(const StTcpEndpoint&) = delete;

  /// Bind channels and begin heartbeating. Call once topology is wired.
  void start();

  Role role() const { return role_; }
  Mode mode() const { return mode_; }
  const StTcpConfig& config() const { return cfg_; }
  const Stats& stats() const { return stats_; }

  /// Channel liveness as currently believed (tests / benches).
  bool ip_channel_alive() const;
  bool serial_channel_alive() const;
  /// Replicated connections currently tracked.
  std::size_t replicated_connections() const { return conns_.size(); }
  /// High-water mark of any single connection's hold buffer, in bytes —
  /// the chaos invariants assert this never exceeds the configured capacity.
  std::size_t hold_peak_bytes() const { return hold_peak_bytes_; }
  /// Current total bytes across all hold buffers (maintained incrementally;
  /// the churn invariants audit it against the per-connection capacity sum).
  std::uint64_t hold_total_bytes() const { return hold_total_bytes_; }

  /// Watchdog extension: the application layer reports a suspicion that the
  /// LOCAL application has failed; relayed to the peer via the heartbeat.
  void report_local_app_suspect() { local_app_suspect_ = true; }

  // --- 1+N groups (docs/GROUPS.md) -------------------------------------------
  /// True when cfg.group names a replication group; false = classic pair
  /// mode, whose behaviour is preserved bit-for-bit.
  bool group_mode() const { return !cfg_.group.empty(); }
  /// Current group view (rank-ordered member list + epoch).
  const GroupView& view() const { return view_; }
  /// This member's rank in its current view (0 = leader; -1 = fenced out).
  int promotion_rank() const {
    return group_mode() ? view_.rank_of(my_member()) : (role_ == Role::kPrimary ? 0 : 1);
  }
  bool is_group_leader() const {
    return group_mode() && view_.is_leader(my_member());
  }

  // --- reintegration (beyond the paper) --------------------------------------
  /// The application's checkpoint: serialized by the survivor into the
  /// rejoin snapshot, staged on the rejoiner before replica adoption. The
  /// endpoint is application-agnostic — these are opaque bytes.
  using CheckpointProvider = std::function<net::Bytes()>;
  using CheckpointRestorer = std::function<void(net::BytesView)>;
  void set_checkpoint_provider(CheckpointProvider fn) {
    checkpoint_provider_ = std::move(fn);
  }
  void set_checkpoint_restorer(CheckpointRestorer fn) {
    checkpoint_restorer_ = std::move(fn);
  }

  // --- logged-decision channel (decision.h, docs/APPLICATION.md) -------------
  /// Attach the application's decision log. The endpoint piggybacks its
  /// unacked records and cumulative ack on every heartbeat (the 0x40 header
  /// block), acks promptly when ingest advances, promotes the log at
  /// takeover, and flips it standalone whenever the pair loses its peer.
  /// Pair-scoped: group (1+N) endpoints ignore the log.
  void set_decision_log(DecisionLog* log);
  DecisionLog* decision_log() const { return decision_log_; }
  /// Event-style decision-only heartbeat (IP channel, no connection
  /// records): the application flushed a batch of choices, or our replay
  /// cursor advanced and the primary is waiting on the ack to release
  /// gated responses.
  void send_decision_heartbeat();

  // --- tcp::TcpStack::ConnectionObserver -------------------------------------
  void on_accepted(tcp::TcpConnection& conn) override;
  void on_finished(tcp::TcpConnection& conn, tcp::CloseReason reason) override;

 private:
  struct ReplConn {
    std::uint16_t id = 0;
    tcp::FourTuple tuple;
    tcp::TcpConnection* conn = nullptr;

    HoldBuffer hold;  // primary only
    bool announce_confirmed = false;

    // Peer state from heartbeat records (unwrapped to 64 bits).
    bool peer_valid = false;
    std::uint64_t p_received = 0;
    std::uint64_t p_acked = 0;
    std::uint64_t p_written = 0;
    std::uint64_t p_read = 0;
    bool p_fin = false;
    bool p_rst = false;
    bool p_closed = false;

    // Lag detectors (peer app read / write; LastByteReceived and
    // LastAckReceived for NIC arbitration — the ACK comparison covers
    // download-heavy workloads where the client sends no data, §4.3).
    LagTracker lag_read;
    LagTracker lag_written;
    LagTracker lag_received;
    LagTracker lag_acked;
    // Grey-failure criterion: absolute stagnation of the peer counter sum
    // under local demand (see lag.h). Disabled unless
    // cfg.progress_stall_time > 0.
    ProgressWatch progress;

    // FIN arbitration.
    bool fin_withheld = false;
    sim::OneShotTimer fin_delay_timer;
    sim::OneShotTimer peer_fin_timer;  // peer FINed, we did not

    // Missed-byte recovery (backup side: request state; primary side: when
    // we last served this connection — explains the backup's transient lag).
    sim::SimTime last_request_at;
    std::uint64_t last_request_offset = 0;
    sim::SimTime last_served_at;
    bool ever_served = false;

    // Local close bookkeeping: final counters survive connection GC.
    bool local_closed = false;
    sim::SimTime closed_at;
    std::uint64_t f_received = 0, f_acked = 0, f_written = 0, f_read = 0;
    bool f_fin = false, f_rst = false;

    sim::SimTime registered_at;

    // Group mode, leader side: per-member progress mirror, indexed like
    // peers_. The shared p_* fields keep the most recent record's values
    // (sufficient for the backup side and for lag detection); hold release
    // and FIN agreement need the per-member minimum, which lives here.
    struct PeerProgress {
      bool valid = false;   // a record matched: the member's replica exists
      bool echoed = false;  // matched by OUR id: stop announcing to this member
      std::uint64_t received = 0;
      bool fin = false, rst = false, closed = false;
      sim::SimTime since;  // when tracking (re)started; setup-grace baseline
    };
    std::vector<PeerProgress> gp;

    ReplConn(sim::EventLoop& loop, const StTcpConfig& cfg)
        : hold(cfg.hold_buffer_capacity),
          lag_read(cfg.app_max_lag_bytes, cfg.app_lag_bytes_grace,
                   cfg.app_max_lag_time),
          lag_written(cfg.app_max_lag_bytes, cfg.app_lag_bytes_grace,
                      cfg.app_max_lag_time),
          lag_received(cfg.nic_lag_bytes, cfg.app_lag_bytes_grace, cfg.nic_lag_time),
          lag_acked(cfg.nic_lag_bytes, cfg.app_lag_bytes_grace, cfg.nic_lag_time),
          progress(cfg.progress_stall_time),
          fin_delay_timer(loop),
          peer_fin_timer(loop) {}

    // Current counter values: live connection or final snapshot.
    std::uint64_t received() const { return conn ? conn->bytes_received() : f_received; }
    std::uint64_t acked() const { return conn ? conn->bytes_acked_by_peer() : f_acked; }
    std::uint64_t written() const { return conn ? conn->app_bytes_written() : f_written; }
    std::uint64_t read() const { return conn ? conn->app_bytes_read() : f_read; }
    bool fin() const { return conn ? conn->fin_generated() : f_fin; }
    bool rst() const { return conn ? conn->rst_generated() : f_rst; }
  };

  // Heartbeat path. Periodic beats go out on BOTH channels; event-triggered
  // beats (connection announce, FIN notice) go out on the IP channel only —
  // a full heartbeat costs milliseconds of serial wire time, and a burst of
  // events (e.g. 100 connections arriving) must not back the serial link up.
  // Event beats carry ONLY the affected connection's record: a full record
  // scan per accept/FIN is O(n) serialization per event, which at thousands
  // of churning connections turns every accept into a 40 KB datagram.
  // The serial copy of the periodic beat can additionally be capped to
  // cfg_.serial_max_records records, rotated round-robin across periods
  // (the 115.2 kbps line cannot carry thousands of records per period).
  void send_heartbeat(bool include_serial = true);
  void send_event_heartbeat(std::uint16_t id);
  HeartbeatMsg make_hb_header();
  /// peer_idx >= 0: group mode — the announce decision is per-member (taken
  /// from rc.gp[peer_idx].echoed instead of rc.announce_confirmed).
  HbRecord make_record(std::uint16_t id, const ReplConn& rc, int peer_idx = -1) const;
  void on_hb_datagram(net::BytesView payload, bool via_serial);
  void on_heartbeat(const HeartbeatMsg& msg, bool via_serial);
  /// peer_idx >= 0: group mode, the peers_ index the record arrived from.
  void process_record(const HbRecord& rec, int peer_idx = -1);
  void detector_tick();
  /// Shared tail of send_heartbeat: emit the (possibly budget-rotated) UDP
  /// copy to `dst` and, when `serial` is non-null, the capped serial copy.
  /// The rotation cursors are the CALLER's — per peer in group mode, the
  /// endpoint-level pair cursors otherwise — so no peer's window is advanced
  /// by a copy sent to a different peer.
  void emit_heartbeat(const HeartbeatMsg& msg, std::size_t total_bytes,
                      net::Ipv4Addr dst, net::SerialPort* serial,
                      std::uint16_t& udp_cursor, std::uint16_t& serial_cursor);

  // Registration. Replica ids wrap within their range (primary [1, 0x8000),
  // inferred [0x8000, 0xffff]) and skip ids still tracked — a long churn run
  // cycles the 15-bit space many times over.
  std::uint16_t alloc_primary_id();
  std::uint16_t alloc_inferred_id();
  void register_primary_conn(tcp::TcpConnection& conn);
  /// Install the primary-side per-connection seams (rx tap feeding the hold
  /// buffer, close gate for FIN arbitration); used at registration and again
  /// when a reintegrating survivor re-arms a former backup's connections.
  void install_primary_seams(tcp::TcpConnection& conn, std::uint16_t id);
  void create_replica_from(const HbRecord& rec);
  /// `established` false = seeded from the tapped SYN via the deterministic
  /// accept-ISN function; the replica finishes the handshake passively.
  void create_replica_inferred(const tcp::FourTuple& tuple, tcp::SeqWire iss,
                               tcp::SeqWire irs, bool established);
  /// Keyed accept-side ISN for the service (cfg.deterministic_isn).
  tcp::SeqWire service_isn(const tcp::FourTuple& t) const;

  // FIN arbitration.
  bool close_gate(std::uint16_t id, bool is_rst);
  void on_peer_fin_notice(ReplConn& rc);

  // NIC arbitration.
  void update_ping_loop();
  void evaluate_nic_arbitration();

  // Recovery.
  void maybe_request_missed(ReplConn& rc);
  void on_control_datagram(net::Ipv4Addr src, net::BytesView payload);
  void serve_missed(const MissedBytesRequest& req, net::Ipv4Addr requester);
  // Logger fallback (§4.3 output-commit extension): after a takeover, fetch
  // client bytes the dead primary had acknowledged from the stream logger.
  void logger_recovery_tick();
  void apply_missed(const MissedBytesReply& rep);

  // Failure reactions.
  void peer_failed(const std::string& reason, const char* trace_event);
  void takeover(const std::string& reason);
  void go_non_ft(const std::string& reason);
  void stonith_peer();

  // --- 1+N group machinery (group.h, docs/GROUPS.md) -------------------------
  /// Liveness/arbitration state for one OTHER group member. Pair mode keeps
  /// this vector empty and uses the endpoint-level fields instead.
  struct GroupPeer {
    std::uint8_t member = 0;
    net::Ipv4Addr ip;
    std::string name;
    bool has_serial = false;  // shares the RS-232 cable with us (members 0/1)
    sim::SimTime last_rx_ip;
    sim::SimTime last_rx_serial;
    std::uint32_t last_hb_seq = 0;
    bool seen_hb = false;
    bool app_suspect = false;
    int ping_fail_streak = 0;
    // Per-peer rotating-window cursors (serial record cap and UDP byte
    // budget): each member's window advances only with copies sent to IT, so
    // a record cannot be starved on one channel by traffic to another.
    std::uint16_t serial_rr_next_id = 0;
    std::uint16_t udp_rr_next_id = 0;
  };

  std::uint8_t my_member() const { return static_cast<std::uint8_t>(cfg_.my_member); }
  GroupPeer* peer_by_member(std::uint8_t m);
  int peer_index_by_ip(net::Ipv4Addr ip) const;
  bool peer_ip_alive(const GroupPeer& p) const;
  bool peer_serial_alive(const GroupPeer& p) const;
  /// Lazily size rc.gp to peers_ and stamp fresh `since` baselines.
  void ensure_group_progress(ReplConn& rc);
  /// Group fan-out of the periodic / event heartbeat.
  void send_group_heartbeat(bool include_serial);
  void on_group_heartbeat(const HeartbeatMsg& msg, bool via_serial);
  void group_detector_tick();
  /// Adopt a strictly newer view (from a heartbeat or a ViewAnnounce). A
  /// view that excludes this member is a fence: re-enter via rejoin.
  void maybe_adopt_view(std::uint32_t epoch, const std::vector<std::uint8_t>& order);
  /// Record-driven conviction dispatch: pair mode -> peer_failed, group
  /// mode -> member_failed on the record's sender.
  void convict_from_record(int peer_idx, const std::string& reason,
                           const char* trace_event);
  /// Convict one group member: remove from the view, queue its STONITH, and
  /// either (leader) fence + announce immediately or (backup) start the
  /// ranked-promotion protocol.
  void member_failed(std::size_t peer_idx, const std::string& reason,
                     const char* trace_event);
  /// Ranked promotion: called after any view change while leaderless.
  void evaluate_promotion();
  void on_defer_expired();
  void become_candidate();
  void try_win_promotion();
  void win_promotion();
  void on_promote_request(net::Ipv4Addr src, const PromoteRequest& pr);
  void on_promote_ack(const PromoteAck& ack);
  /// Broadcast the current view to every configured member (control channel;
  /// the next heartbeats carry it too).
  void announce_view();
  /// STONITH every member convicted since the last flush — always BEFORE
  /// unsuppressing any replica (the dual-active guard).
  void flush_stonith_pending();
  /// Reintegration commit on the leader: re-admit `member` at the lowest
  /// rank, bump the epoch and announce.
  void group_commit_rejoin(std::uint8_t member);
  /// FIN/close agreement across every live member's mirror of `rc`.
  bool group_fins_agree(const ReplConn& rc) const;
  void update_group_gauges();
  net::Ipv4Addr group_leader_ip() const;

  ReplConn* by_id(std::uint16_t id);
  ReplConn* by_tuple(const tcp::FourTuple& t);
  void gc_closed_conns();
  bool active() const { return mode_ == Mode::kReplicating && host_.alive(); }
  /// Replication plumbing (taps, records, heartbeats) also runs while a
  /// reintegration is in flight on either side.
  bool replicating_or_reintegrating() const {
    return mode_ == Mode::kReplicating || mode_ == Mode::kReintegrating ||
           mode_ == Mode::kRejoining;
  }
  /// Install the backup-side stack seams (replica mode + ISN inference);
  /// used at start() and again when this node reboots into a rejoin.
  void install_replica_seams();

  /// Map the current mode onto the decision log's commit discipline:
  /// replicating = peer-acked commit; reintegrating = standalone commit but
  /// retain for the rejoiner; taken-over / non-FT = standalone, drop.
  /// Called after every mode transition site (takeover, go_non_ft, the
  /// reintegrator's handshakes) — idempotent.
  void sync_decision_log();
  void process_decisions(const HeartbeatMsg& msg);

  net::Host& host_;
  tcp::TcpStack& stack_;
  net::PowerController& power_;
  net::SerialPort* serial_;
  Role role_;
  StTcpConfig cfg_;
  sim::Logger log_;
  sim::World& world_;

  Mode mode_ = Mode::kReplicating;
  sim::PeriodicTimer hb_timer_;
  std::uint32_t hb_seq_ = 0;

  // Channel liveness.
  sim::SimTime last_rx_ip_;
  sim::SimTime last_rx_serial_;
  bool started_ = false;

  // Bounded-reorder guard over the peer's heartbeat sequence (see
  // on_heartbeat). A large backward jump is a rebooted peer, not staleness.
  std::uint32_t last_peer_hb_seq_ = 0;
  bool seen_peer_hb_ = false;

  std::size_t hold_peak_bytes_ = 0;
  // Running total across all hold buffers; adjusted at every mutation site
  // (rx tap, release, clear, GC) so the gauge update is O(1) per event, not
  // an O(n) rescan per heartbeat record (O(n²) per heartbeat at scale).
  std::uint64_t hold_total_bytes_ = 0;
  void note_hold_change(std::size_t before, std::size_t after);
  void recompute_hold_total();
  // Round-robin cursors for the truncated record windows (serial record cap
  // and UDP byte budget — the IPv4 64 KB datagram limit; see
  // send_heartbeat). Cursors hold the next connection id to send, not a
  // vector position: ids survive the churn of connections opening and
  // closing between beats, so no record can be starved by recomposition.
  std::uint16_t serial_rr_next_id_ = 0;
  std::uint16_t udp_rr_next_id_ = 0;

  // Group mode state (empty / idle in pair mode).
  std::vector<GroupPeer> peers_;  // every OTHER configured member
  GroupView view_;
  PromotionBallot ballot_;
  sim::OneShotTimer promote_timer_;
  /// Convicted members awaiting STONITH (flushed before any unsuppress).
  std::vector<std::uint8_t> stonith_pending_;
  /// True between convicting the leader and learning (or becoming) the next
  /// one; gates the candidacy / defer state machine.
  bool awaiting_leader_ = false;
  /// One-grant-per-epoch ledger (voter side).
  bool have_granted_ = false;
  std::uint32_t granted_epoch_ = 0;
  std::uint8_t granted_candidate_ = 0;

  // Gateway-ping arbitration.
  sim::OneShotTimer ping_timer_;
  // Logger fallback.
  sim::OneShotTimer logger_timer_;
  int logger_attempts_ = 0;
  bool ping_loop_active_ = false;
  bool my_ping_valid_ = false;
  bool my_ping_ok_ = false;
  int peer_ping_fail_streak_ = 0;
  bool peer_app_suspect_ = false;
  bool local_app_suspect_ = false;

  std::map<std::uint16_t, std::unique_ptr<ReplConn>> conns_;
  std::map<tcp::FourTuple, std::uint16_t> id_by_tuple_;
  std::uint16_t next_id_ = 1;
  /// Inferred (un-announced) replicas use a disjoint id range; they are
  /// remapped to the primary's id when its announce arrives.
  std::uint16_t next_inferred_id_ = 0x8000;

  // Observability (bound in start() when World::metrics() is set; null = off).
  void update_hold_gauge();
  obs::Histogram* m_hb_gap_ip_us_ = nullptr;
  obs::Histogram* m_hb_gap_serial_us_ = nullptr;
  obs::Gauge* m_hold_bytes_ = nullptr;
  obs::Counter* m_recovery_bytes_ = nullptr;
  /// Worst current byte lag across this node's app-lag trackers — the grey
  /// detection-latency signal, exported so bench output can graph how far a
  /// sick peer fell behind before conviction.
  obs::Gauge* m_app_lag_bytes_ = nullptr;
  /// Group mode: this member's current promotion rank and view epoch.
  obs::Gauge* m_rank_ = nullptr;
  obs::Gauge* m_epoch_ = nullptr;
  obs::FailoverTimeline* timeline_ = nullptr;
  /// Worst lag_bytes observed since start (survives tracker resets; stamped
  /// into the timeline's conviction record).
  std::uint64_t app_lag_peak_bytes_ = 0;

  // Reintegration engine (reintegration.cc); owns the rejoin protocol state
  // on both sides and reaches into this endpoint as a friend.
  friend class Reintegrator;
  std::unique_ptr<Reintegrator> reintegrator_;
  CheckpointProvider checkpoint_provider_;
  CheckpointRestorer checkpoint_restorer_;
  DecisionLog* decision_log_ = nullptr;

  Stats stats_;
};

}  // namespace sttcp::sttcp
