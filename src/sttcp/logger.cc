#include "sttcp/logger.h"

#include "tcp/seq.h"

namespace sttcp::sttcp {

namespace {
constexpr std::uint8_t kLoggerRequestType = 0x21;
constexpr std::uint8_t kLoggerReplyType = 0x22;
}  // namespace

net::Bytes LoggerRequest::serialize() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.u8(kLoggerRequestType);
  w.u32(client_ip.value());
  w.u16(client_port);
  w.u16(service_port);
  w.u64(offset);
  w.u32(length);
  return out;
}

std::optional<LoggerRequest> LoggerRequest::parse(net::BytesView data) {
  try {
    net::ByteReader r(data);
    if (r.u8() != kLoggerRequestType) return std::nullopt;
    LoggerRequest q;
    q.client_ip = net::Ipv4Addr(r.u32());
    q.client_port = r.u16();
    q.service_port = r.u16();
    q.offset = r.u64();
    q.length = r.u32();
    return q;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

net::Bytes LoggerReply::serialize() const {
  net::Bytes out;
  out.reserve(21 + data.size());
  net::ByteWriter w(out);
  w.u8(kLoggerReplyType);
  w.u32(client_ip.value());
  w.u16(client_port);
  w.u16(service_port);
  w.u64(offset);
  w.u32(static_cast<std::uint32_t>(data.size()));
  w.bytes(data);
  return out;
}

std::optional<LoggerReply> LoggerReply::parse(net::BytesView data) {
  try {
    net::ByteReader r(data);
    if (r.u8() != kLoggerReplyType) return std::nullopt;
    LoggerReply q;
    q.client_ip = net::Ipv4Addr(r.u32());
    q.client_port = r.u16();
    q.service_port = r.u16();
    q.offset = r.u64();
    const std::uint32_t len = r.u32();
    q.data = net::to_bytes(r.bytes(len));
    return q;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

StreamLogger::StreamLogger(net::Host& host, Config config)
    : host_(host), cfg_(config), log_(host.logger().child("logger")) {
  host_.set_l4_handler(net::kIpProtoTcp,
                       [this](const net::Ipv4Header& ip, net::BytesView l4) {
                         on_tcp(ip, l4);
                       });
  host_.udp_bind(cfg_.udp_port, [this](net::Ipv4Addr src, std::uint16_t sport,
                                       net::BytesView payload) {
    on_request(src, sport, payload);
  });
}

void StreamLogger::on_tcp(const net::Ipv4Header& ip, net::BytesView l4) {
  // Only the client->service direction is logged.
  if (ip.dst != cfg_.service_ip) return;
  auto seg = tcp::TcpSegment::parse(ip.src, ip.dst, l4, /*verify_checksum=*/true);
  if (!seg.has_value()) return;
  ++stats_.segments_seen;

  const StreamKey key{ip.src.value(), seg->src_port, seg->dst_port};
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    if (!seg->flags.syn) return;  // mid-stream capture unsupported: need IRS
    auto s = std::make_unique<Stream>(cfg_.window);
    s->have_irs = true;
    s->irs = seg->seq;
    it = streams_.emplace(key, std::move(s)).first;
    ++stats_.streams;
  }
  Stream& s = *it->second;
  if (seg->payload.empty()) return;
  const tcp::SeqAbs seq_abs =
      tcp::unwrap32(seg->seq, s.irs + 1 + s.reasm.next_expected());
  if (seq_abs < s.irs + 1) return;  // SYN-overlap edge
  const std::uint64_t offset = seq_abs - s.irs - 1;
  s.reasm.insert(offset, seg->payload);
  // Drain everything contiguous into the retention log.
  net::Bytes drained = s.reasm.read(1 << 30);
  if (!drained.empty()) {
    stats_.bytes_logged += drained.size();
    s.log.insert(s.log.end(), drained.begin(), drained.end());
    if (s.log.size() > cfg_.retention) {
      const std::size_t drop = s.log.size() - cfg_.retention;
      s.log.erase(s.log.begin(), s.log.begin() + static_cast<std::ptrdiff_t>(drop));
      s.log_start += drop;
    }
  }
}

std::uint64_t StreamLogger::logged_bytes(net::Ipv4Addr client_ip,
                                         std::uint16_t client_port,
                                         std::uint16_t service_port) const {
  auto it = streams_.find(StreamKey{client_ip.value(), client_port, service_port});
  if (it == streams_.end()) return 0;
  return it->second->log_start + it->second->log.size();
}

void StreamLogger::on_request(net::Ipv4Addr src, std::uint16_t src_port,
                              net::BytesView payload) {
  auto req = LoggerRequest::parse(payload);
  if (!req.has_value()) return;
  auto it = streams_.find(
      StreamKey{req->client_ip.value(), req->client_port, req->service_port});
  if (it == streams_.end()) return;
  const Stream& s = *it->second;

  LoggerReply rep;
  rep.client_ip = req->client_ip;
  rep.client_port = req->client_port;
  rep.service_port = req->service_port;
  rep.offset = req->offset;
  if (req->offset >= s.log_start &&
      req->offset < s.log_start + s.log.size()) {
    const std::size_t begin = static_cast<std::size_t>(req->offset - s.log_start);
    const std::size_t n =
        std::min<std::size_t>({req->length, s.log.size() - begin, 1200});
    rep.data.assign(s.log.begin() + static_cast<std::ptrdiff_t>(begin),
                    s.log.begin() + static_cast<std::ptrdiff_t>(begin + n));
  }
  ++stats_.requests_served;
  stats_.bytes_served += rep.data.size();
  host_.world().trace().record(host_.name(), "logger_served", "",
                               static_cast<std::int64_t>(rep.data.size()));
  host_.udp_send(host_.first_ip(), cfg_.udp_port, src, src_port, rep.serialize());
}

}  // namespace sttcp::sttcp
