// Application watchdog (the paper's §4.2.2 extension): the application
// sends the watchdog a heartbeat; if the heartbeats stop, the watchdog
// informs ST-TCP, which relays the suspicion to the peer so failures that
// produce neither lag nor a FIN (e.g. an idle-connection app crash) are
// still detected.
#pragma once

#include <functional>

#include "sim/world.h"

namespace sttcp::sttcp {

class StTcpEndpoint;

class Watchdog {
 public:
  /// `interval`: how often the application promises to call pet();
  /// `misses`: consecutive missed intervals before suspicion is raised.
  Watchdog(sim::World& world, StTcpEndpoint& endpoint, sim::Duration interval,
           int misses = 3);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Begin monitoring (the application is expected to start petting).
  void start();
  void stop();

  /// Application-side heartbeat.
  void pet();

  bool suspicious() const { return suspicious_; }

 private:
  void check();

  sim::World& world_;
  StTcpEndpoint& endpoint_;
  sim::Duration interval_;
  int misses_allowed_;
  sim::PeriodicTimer timer_;
  sim::SimTime last_pet_;
  bool suspicious_ = false;
  bool running_ = false;
};

}  // namespace sttcp::sttcp
