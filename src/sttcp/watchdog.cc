#include "sttcp/watchdog.h"

#include "sttcp/endpoint.h"

namespace sttcp::sttcp {

Watchdog::Watchdog(sim::World& world, StTcpEndpoint& endpoint, sim::Duration interval,
                   int misses)
    : world_(world),
      endpoint_(endpoint),
      interval_(interval),
      misses_allowed_(misses),
      timer_(world.loop()) {}

Watchdog::~Watchdog() = default;

void Watchdog::start() {
  running_ = true;
  last_pet_ = world_.now();
  timer_.start(interval_, [this] { check(); });
}

void Watchdog::stop() {
  running_ = false;
  timer_.stop();
}

void Watchdog::pet() {
  if (!running_) return;
  last_pet_ = world_.now();
}

void Watchdog::check() {
  if (suspicious_) return;
  if (world_.now() - last_pet_ > interval_ * misses_allowed_) {
    suspicious_ = true;
    world_.trace().record("watchdog", "app_suspect");
    endpoint_.report_local_app_suspect();
  }
}

}  // namespace sttcp::sttcp
