// Wire formats for the server-to-server protocol.
//
// Heartbeat (§3): sent every hb_period on BOTH channels (UDP over the IP
// link, and the RS-232 serial link). Carries, per connection, the four
// progress counters the paper lists —
//   LastByteReceived, LastAckReceived, LastAppByteWritten, LastAppByteRead —
// plus FIN/RST/closed notices and (while unconfirmed) the connection
// announcement with the primary's ISS and the client's IRS so the backup can
// seed its replica with matching sequence numbers.
//
// The steady-state record is 19 bytes — within the paper's "less than 20
// bytes per TCP connection", which is what makes ~100 connections fit on a
// 115.2 kbps serial channel at a 200 ms heartbeat. Counters travel as the
// low 32 bits of the 64-bit positions and are unwrapped against the
// receiver's previous value.
//
// Control messages (UDP, IP link only): missed-byte recovery (§4.3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/addr.h"
#include "net/bytes.h"
#include "sttcp/decision.h"

namespace sttcp::sttcp {

enum class Role : std::uint8_t { kPrimary = 0, kBackup = 1 };

const char* to_string(Role r);

/// Per-connection heartbeat record.
struct HbRecord {
  std::uint16_t repl_id = 0;

  // Flags.
  bool fin_generated = false;
  bool rst_generated = false;
  bool closed = false;
  bool announce = false;     // extended announce fields present
  bool established = false;  // (announce only) connection already established

  // The four progress counters, as absolute 64-bit stream positions. Only
  // the low 32 bits travel on the wire.
  std::uint64_t bytes_received = 0;    // LastByteReceived
  std::uint64_t acked_by_peer = 0;     // LastAckReceived
  std::uint64_t app_written = 0;       // LastAppByteWritten
  std::uint64_t app_read = 0;          // LastAppByteRead

  // Announce-only fields.
  net::Ipv4Addr client_ip;
  std::uint16_t client_port = 0;
  std::uint16_t local_port = 0;
  std::uint32_t iss = 0;
  std::uint32_t irs = 0;

  /// Wire size of this record.
  std::size_t wire_size() const { return announce ? 19 + 16 : 19; }
};

struct HeartbeatMsg {
  Role role = Role::kPrimary;
  std::uint32_t hb_seq = 0;

  // Gateway-ping arbitration (§4.3): result of the most recent ping, when
  // arbitration is active.
  bool ping_valid = false;
  bool ping_ok = false;

  /// Watchdog extension (§4.2.2 suggestion): the sender's application-level
  /// watchdog suspects the local application has failed.
  bool app_suspect = false;

  /// Reintegration (beyond the paper): a freshly-booted node asks to rejoin
  /// as backup (rejoin_request); a rejoiner that has applied the survivor's
  /// snapshot and caught up signals readiness (rejoin_ready). `rejoin_epoch`
  /// travels only when one of the flags is set (the steady-state heartbeat
  /// keeps its paper-sized wire format) and makes retries idempotent.
  bool rejoin_request = false;
  bool rejoin_ready = false;
  std::uint32_t rejoin_epoch = 0;

  /// Group-view extension (1+N groups, docs/GROUPS.md): the sender's member
  /// index, its view epoch and the rank-ordered member list (order[0] is the
  /// leader). Travels only when `group_valid` is set; classic pair endpoints
  /// never set it, so the paper-sized wire format is byte-identical.
  bool group_valid = false;
  std::uint8_t member = 0;
  std::uint32_t view_epoch = 0;
  std::vector<std::uint8_t> view_order;

  /// Logged-decision block (docs/APPLICATION.md): the sender's cumulative
  /// ack of the peer's decision stream plus its own unacked records. Gated
  /// on a header flag like the group block — endpoints without a decision
  /// log keep the paper-sized wire format byte-identical.
  bool decisions_valid = false;
  std::uint64_t decision_ack = 0;
  std::vector<DecisionRecord> decisions;

  std::vector<HbRecord> records;

  net::Bytes serialize() const;
  static std::optional<HeartbeatMsg> parse(net::BytesView data);
};

/// Unwrap a 32-bit wire counter against the previous 64-bit value.
/// Counters are monotonic, so the result is never allowed to go backwards.
std::uint64_t unwrap_counter(std::uint32_t wire_value, std::uint64_t previous);

// --- control channel ---------------------------------------------------------

enum class ControlType : std::uint8_t {
  kMissedBytesRequest = 1,
  kMissedBytesReply = 2,
  // Reintegration snapshot stream (serialized/parsed in reintegration.cc;
  // the endpoint routes types >= kSnapshotBegin to the Reintegrator).
  kSnapshotBegin = 3,   // epoch, connection count, application checkpoint
  kSnapshotConn = 4,    // one connection's identity, sequence basis, counters
  kSnapshotData = 5,    // a chunk of a connection's unacked/unread bytes
  kSnapshotEnd = 6,     // snapshot complete; rejoiner applies atomically
  kRejoinCommit = 7,    // survivor saw rejoin_ready: both re-enter FT mode
  // Group promotion (1+N, docs/GROUPS.md): quorum-over-IP arbitration.
  kPromoteRequest = 8,  // candidate asks a live voter for its epoch's grant
  kPromoteAck = 9,      // voter grants (or denies) one candidate per epoch
  kViewAnnounce = 10,   // new leader installs the post-promotion view
};

/// Candidate -> voter: "I convicted everyone ranked below me in epoch
/// `epoch`'s view; grant me the promotion."
struct PromoteRequest {
  std::uint32_t epoch = 0;
  std::uint8_t candidate = 0;  // member index of the requester

  net::Bytes serialize() const;
};

/// Voter -> candidate. A voter grants at most one candidate per epoch.
struct PromoteAck {
  std::uint32_t epoch = 0;
  std::uint8_t candidate = 0;
  std::uint8_t voter = 0;
  bool granted = false;

  net::Bytes serialize() const;
};

/// New leader -> every surviving member: the post-promotion (or post-
/// conviction / post-reintegration) view. order[0] is the leader.
struct ViewAnnounce {
  std::uint32_t epoch = 0;
  std::vector<std::uint8_t> order;

  net::Bytes serialize() const;
};

struct MissedBytesRequest {
  std::uint16_t repl_id = 0;
  std::uint64_t offset = 0;  // absolute payload offset of the first wanted byte
  std::uint32_t length = 0;

  net::Bytes serialize() const;
};

struct MissedBytesReply {
  std::uint16_t repl_id = 0;
  std::uint64_t offset = 0;
  net::Bytes data;

  net::Bytes serialize() const;
};

struct ControlMsg {
  ControlType type;
  MissedBytesRequest request;  // valid when type == kMissedBytesRequest
  MissedBytesReply reply;      // valid when type == kMissedBytesReply
  PromoteRequest promote_request;  // valid when type == kPromoteRequest
  PromoteAck promote_ack;          // valid when type == kPromoteAck
  ViewAnnounce view_announce;      // valid when type == kViewAnnounce

  static std::optional<ControlMsg> parse(net::BytesView data);
};

}  // namespace sttcp::sttcp
