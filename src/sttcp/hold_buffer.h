// The primary's extra receive buffer (paper §2): client bytes the primary
// has already ACKed to the client are retained here until the backup's
// heartbeat confirms their receipt, so a backup that missed segments can
// recover them from the primary instead of the client (which would not
// retransmit bytes the primary ACKed).
//
// Overflow means the backup has fallen too far behind to ever be caught up
// from this buffer — the paper's rule is to declare the backup failed and
// run non-fault-tolerantly (§4.3, "temporary local network failures").
#pragma once

#include <cstdint>
#include <deque>

#include "net/bytes.h"

namespace sttcp::sttcp {

class HoldBuffer {
 public:
  explicit HoldBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Append in-order stream bytes at absolute payload offset `at` (must
  /// equal end_offset(); the rx tap guarantees contiguity). Returns false —
  /// without storing — once the buffer would overflow.
  bool append(std::uint64_t at, net::BytesView data);

  /// Backup confirmed receipt through offset `upto`: release everything
  /// below it.
  void release_to(std::uint64_t upto);

  /// Copy out up to `len` bytes starting at `from`; clipped to what is held.
  /// An empty result means the range is entirely outside the buffer.
  net::Bytes slice(std::uint64_t from, std::size_t len) const;

  std::uint64_t start_offset() const { return start_; }
  std::uint64_t end_offset() const { return start_ + data_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool overflowed() const { return overflowed_; }
  /// Drop all contents (entering non-fault-tolerant mode).
  void clear();

 private:
  std::size_t capacity_;
  std::uint64_t start_ = 0;
  std::deque<std::uint8_t> data_;
  bool overflowed_ = false;
};

}  // namespace sttcp::sttcp
