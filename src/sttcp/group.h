// Group view and promotion bookkeeping for 1+N replication groups.
//
// A group is an ordered member list: order[0] is the leader, the rest are
// backups in promotion-rank order. Membership is presence in the order;
// conviction removes a member, reintegration re-appends it at the lowest
// rank. Every view change bumps the epoch, and the current leader announces
// the new view so the group converges (docs/GROUPS.md).
//
// The promotion protocol the endpoint drives with this state:
//
//   backup convicts leader -> remove from local view
//     lowest-ranked live member?  yes -> candidate: PromoteRequest to every
//                                       live voter; unanimous grants + own
//                                       gateway reachability => win: STONITH
//                                       every convicted member, epoch++,
//                                       self to rank 0, ViewAnnounce.
//                                 no  -> defer: wait promote_defer for the
//                                       lower candidate's ViewAnnounce; on
//                                       expiry convict the silent candidate
//                                       and re-evaluate.
//
// A voter grants at most one candidate per epoch; with the leader and the
// rank-1 backup both dead at N=3 the voter set is empty and the last member
// wins immediately — the quorum is over the *current view*, which is what
// lets two simultaneous failures be survived while one-grant-per-epoch plus
// mandatory STONITH-before-unsuppress keeps dual-active impossible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace sttcp::sttcp {

struct GroupView {
  std::uint32_t epoch = 0;
  /// Member indices (into StTcpConfig::group) in rank order; order[0] is the
  /// leader. Absence means convicted/departed.
  std::vector<std::uint8_t> order;

  bool contains(std::uint8_t m) const {
    return std::find(order.begin(), order.end(), m) != order.end();
  }
  /// Rank of member `m` in this view (0 = leader); -1 if not a member.
  int rank_of(std::uint8_t m) const {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == m) return static_cast<int>(i);
    }
    return -1;
  }
  std::uint8_t leader() const { return order.empty() ? 0 : order.front(); }
  bool is_leader(std::uint8_t m) const { return !order.empty() && order.front() == m; }

  /// Remove a convicted member (no epoch bump here — the caller decides when
  /// the change becomes an announced view).
  void remove(std::uint8_t m) {
    order.erase(std::remove(order.begin(), order.end(), m), order.end());
  }
  /// Reintegrated member re-enters at the lowest rank.
  void append_lowest(std::uint8_t m) {
    if (!contains(m)) order.push_back(m);
  }

  std::string str() const {
    std::string s = "epoch " + std::to_string(epoch) + " [";
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i != 0) s += ",";
      s += std::to_string(static_cast<int>(order[i]));
    }
    return s + "]";
  }
};

/// Candidate-side vote ledger for one promotion attempt.
struct PromotionBallot {
  std::uint32_t epoch = 0;             // view epoch the votes are for
  std::vector<std::uint8_t> voters;    // live members solicited
  std::vector<std::uint8_t> grants;    // voters that granted
  bool active = false;

  bool granted_by(std::uint8_t v) const {
    return std::find(grants.begin(), grants.end(), v) != grants.end();
  }
  /// Unanimity over the (possibly empty) live voter set.
  bool unanimous() const { return grants.size() >= voters.size(); }
  void reset() { *this = PromotionBallot{}; }
};

}  // namespace sttcp::sttcp
