#include "sttcp/lag.h"

#include "sim/strings.h"

namespace sttcp::sttcp {

LagTracker::Verdict LagTracker::update(std::uint64_t mine, std::uint64_t peer,
                                       sim::SimTime now) {
  Verdict v;
  lag_bytes_ = peer < mine ? mine - peer : 0;

  // --- AppMaxLagTime: has the peer reached our last snapshot yet? ---
  if (!snap_valid_ || peer >= snap_value_) {
    snap_value_ = mine;
    snap_time_ = now;
    snap_valid_ = true;
  } else if (max_lag_time_ > sim::Duration::zero() &&
             now - snap_time_ > max_lag_time_) {
    v.failed = true;
    v.reason = sim::cat("position ", snap_value_, " unreached by peer for ",
                        (now - snap_time_).str(), " (peer at ", peer, ")");
    return v;
  }

  // --- AppMaxLagBytes, sustained past the grace period ---
  if (max_lag_bytes_ > 0 && lag_bytes_ > max_lag_bytes_) {
    if (!bytes_exceeded_) {
      bytes_exceeded_ = true;
      bytes_exceeded_since_ = now;
    } else if (now - bytes_exceeded_since_ >= bytes_grace_) {
      v.failed = true;
      v.reason = sim::cat("peer lags ", lag_bytes_, " bytes (> ", max_lag_bytes_,
                          ") for ", (now - bytes_exceeded_since_).str());
      return v;
    }
  } else {
    bytes_exceeded_ = false;
  }
  return v;
}

void LagTracker::reset() {
  snap_valid_ = false;
  bytes_exceeded_ = false;
  lag_bytes_ = 0;
}

}  // namespace sttcp::sttcp
