#include "sttcp/lag.h"

#include "sim/strings.h"

namespace sttcp::sttcp {

LagTracker::Verdict LagTracker::update(std::uint64_t mine, std::uint64_t peer,
                                       sim::SimTime now) {
  Verdict v;
  lag_bytes_ = peer < mine ? mine - peer : 0;

  // --- AppMaxLagTime: has the peer reached our last snapshot yet? ---
  if (!snap_valid_ || peer >= snap_value_) {
    snap_value_ = mine;
    snap_time_ = now;
    snap_valid_ = true;
  } else if (max_lag_time_ > sim::Duration::zero() &&
             now - snap_time_ > max_lag_time_) {
    v.failed = true;
    v.reason = sim::cat("position ", snap_value_, " unreached by peer for ",
                        (now - snap_time_).str(), " (peer at ", peer, ")");
    return v;
  }

  // --- AppMaxLagBytes, sustained past the grace period ---
  if (max_lag_bytes_ > 0 && lag_bytes_ > max_lag_bytes_) {
    if (!bytes_exceeded_) {
      bytes_exceeded_ = true;
      bytes_exceeded_since_ = now;
    } else if (now - bytes_exceeded_since_ >= bytes_grace_) {
      v.failed = true;
      v.reason = sim::cat("peer lags ", lag_bytes_, " bytes (> ", max_lag_bytes_,
                          ") for ", (now - bytes_exceeded_since_).str());
      return v;
    }
  } else {
    bytes_exceeded_ = false;
  }
  return v;
}

void LagTracker::reset() {
  snap_valid_ = false;
  bytes_exceeded_ = false;
  lag_bytes_ = 0;
}

void ProgressWatch::observe(std::uint64_t counter_sum, sim::SimTime now) {
  if (!seen_ || counter_sum != last_value_) {
    last_value_ = counter_sum;
    last_change_ = now;
    seen_ = true;
  }
}

ProgressWatch::Verdict ProgressWatch::check(bool demand, sim::SimTime now) {
  Verdict v;
  stalled_for_ = sim::Duration::zero();
  if (!enabled() || !seen_) return v;
  if (!demand) {
    // No demand, no evidence: an idle peer is indistinguishable from a
    // stalled one by its counters alone.
    demand_valid_ = false;
    return v;
  }
  if (!demand_valid_) {
    demand_valid_ = true;
    demand_since_ = now;
  }
  // The stall clock starts when BOTH conditions became true: counters frozen
  // AND demand outstanding.
  const sim::SimTime since = last_change_ > demand_since_ ? last_change_ : demand_since_;
  stalled_for_ = now - since;
  if (stalled_for_ > stall_time_) {
    v.failed = true;
    v.reason = sim::cat("peer counters frozen at ", last_value_, " for ",
                        stalled_for_.str(), " with demand outstanding");
  }
  return v;
}

void ProgressWatch::reset() {
  seen_ = false;
  demand_valid_ = false;
  stalled_for_ = sim::Duration::zero();
}

}  // namespace sttcp::sttcp
