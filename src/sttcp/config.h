// ST-TCP configuration: every tunable the paper names (heartbeat period,
// AppMaxLagBytes, AppMaxLagTime, MaxDelayFIN, hold-buffer size, ping
// arbitration) plus the addressing of the server pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/addr.h"
#include "sim/time.h"

namespace sttcp::sttcp {

/// One member of a 1+N replication group, in initial-rank order (index 0 is
/// the leader, index 1 the first backup, ...). See docs/GROUPS.md.
struct GroupMemberCfg {
  std::string name;     // STONITH power-off target
  net::Ipv4Addr ip;     // management address (HB/control traffic)
  /// Member reachable over the RS-232 channel (only the classic pair —
  /// members 0 and 1 — share the serial cable; the rest are IP-only).
  bool serial = false;
};

struct StTcpConfig {
  // --- identity ------------------------------------------------------------
  /// The virtual service address clients connect to (an IP alias on both
  /// servers, ARP-mapped to the multicast Ethernet address).
  net::Ipv4Addr service_ip;
  std::uint16_t service_port = 80;
  /// This server's own (management) address, used for HB/control traffic.
  net::Ipv4Addr my_ip;
  /// The peer server's own address.
  net::Ipv4Addr peer_ip;
  /// Peer host name, for the STONITH power-off command.
  std::string peer_name;
  /// Gateway pinged during NIC-failure arbitration (§4.3).
  net::Ipv4Addr gateway_ip;
  /// 1+N replication group, ordered by initial promotion rank (index 0 =
  /// leader). Empty = classic pair mode: the pair is synthesized from
  /// my_ip/peer_ip/peer_name and every PR-before-groups behaviour is
  /// preserved bit-for-bit. With a group, `my_member` indexes this vector.
  std::vector<GroupMemberCfg> group;
  /// This endpoint's index into `group` (-1 in pair mode).
  int my_member = -1;
  /// Optional stream logger (§4.3 output-commit extension): the backup
  /// fetches client bytes the dead primary had already acknowledged from
  /// here after a takeover. Zero address disables the fallback.
  net::Ipv4Addr logger_ip;
  std::uint16_t logger_port = 7003;

  // --- heartbeat -------------------------------------------------------------
  std::uint16_t hb_port = 7001;
  std::uint16_t control_port = 7002;
  /// Heartbeat period (paper demos use 200 ms / 500 ms / 1 s).
  sim::Duration hb_period = sim::Duration::millis(200);
  /// Consecutive missed heartbeats before a channel is declared dead.
  int hb_miss_threshold = 3;
  /// Cap on per-connection records in the SERIAL copy of the periodic
  /// heartbeat; the excess rotates round-robin across periods. At 115.2 kbps
  /// a full record list for thousands of connections would take longer than
  /// the period to transmit, silently killing the serial channel. 0 = no cap
  /// (every record on every beat, the paper's ~100-connection regime). The
  /// IP copy always carries every record.
  std::size_t serial_max_records = 0;
  /// Derive the service's accept-side ISN from a keyed function of the
  /// 4-tuple (RFC 6528 shape) instead of a random draw. Primary and backup
  /// share the function, so the backup builds a replica from the tapped
  /// client SYN alone — closing the window where a primary under load
  /// accepts a connection and dies with both the announce heartbeat and the
  /// SYN-ACK still queued behind a data backlog (neither ever reaches the
  /// wire, and without this the client's retransmitted request draws an RST
  /// after takeover). Off = announce + handshake-ACK inference only, the
  /// paper's original mechanism.
  bool deterministic_isn = true;

  // --- application-failure detection (§4.2.1) ----------------------------------
  /// AppMaxLagBytes: peer app read/write position lagging by this many bytes…
  std::uint64_t app_max_lag_bytes = 64 * 1024;
  /// …sustained for this long ("a short duration of time") fails the peer.
  sim::Duration app_lag_bytes_grace = sim::Duration::millis(500);
  /// AppMaxLagTime: a byte processed locally but not by the peer for this
  /// long fails the peer.
  sim::Duration app_max_lag_time = sim::Duration::seconds(2);
  /// Don't evaluate app lag until the replica has had a chance to appear.
  sim::Duration replica_setup_grace = sim::Duration::seconds(1);
  /// Grey-failure criterion (beyond the paper's §4.2.1 pair): the backup
  /// convicts the primary when a connection's peer counter sum stays frozen
  /// this long while heartbeats keep arriving and the backup holds
  /// unacknowledged bytes for the client. Catches CPU stalls that freeze
  /// BOTH sides' counters at the same value — invisible to the relative
  /// lag trackers above. Zero (default) disables the criterion, keeping
  /// classic deployments bit-identical; the grey chaos harness arms it.
  sim::Duration progress_stall_time = sim::Duration::zero();

  // --- FIN arbitration (§4.2.2) --------------------------------------------------
  /// How long a disagreed FIN/RST is withheld before being trusted as a
  /// normal close (paper suggests ~1 minute).
  sim::Duration max_delay_fin = sim::Duration::seconds(60);

  // --- NIC-failure arbitration (§4.3) -----------------------------------------
  std::uint64_t nic_lag_bytes = 32 * 1024;
  sim::Duration nic_lag_time = sim::Duration::seconds(2);
  sim::Duration ping_interval = sim::Duration::millis(300);
  sim::Duration ping_timeout = sim::Duration::millis(250);
  /// Consecutive peer ping failures (with local pings succeeding) that
  /// convict the peer's NIC.
  int ping_fail_threshold = 3;

  // --- missed-byte recovery (§4.3 temporary failures) -----------------------------
  /// Extra receive buffer on the primary holding client bytes until the
  /// backup confirms them (§2). Overflow ⇒ backup considered failed.
  /// Sizing law (see bench_ablation_design): confirmations arrive once per
  /// heartbeat, so steady-state occupancy under sustained client upload is
  /// ~bandwidth x hb_period (2.5 MB at 100 Mbps / 200 ms) plus recovery
  /// backlog; size well above that.
  std::size_t hold_buffer_capacity = 8 * 1024 * 1024;
  /// How long a receive gap must persist before the backup asks the primary.
  sim::Duration recovery_request_delay = sim::Duration::millis(50);
  /// Payload bytes per MissedBytesReply datagram (fits a 1500-byte MTU).
  std::size_t recovery_chunk = 1200;

  // --- takeover --------------------------------------------------------------
  /// Paper behaviour: after takeover, wait for the next natural client/backup
  /// retransmission. Enabling this retransmits immediately instead (our
  /// extension; quantified by the ablation bench).
  bool immediate_retransmit_on_takeover = false;

  // --- group promotion (1+N, beyond the paper; docs/GROUPS.md) ---------------
  /// How long a higher-ranked backup waits for the lowest-ranked live
  /// candidate's ViewAnnounce after convicting the leader before convicting
  /// the silent candidate too and re-evaluating. Two heartbeat periods keeps
  /// the race window tight without tripping on ordinary jitter.
  sim::Duration promote_defer = sim::Duration::millis(400);
  /// Re-send cadence for unanswered PromoteRequest votes.
  sim::Duration promote_retry = sim::Duration::millis(100);

  // --- reintegration (beyond the paper) ----------------------------------------
  /// Survivor: how long to wait for the rejoiner's "ready" before re-sending
  /// the snapshot (snapshot datagrams are unreliable UDP).
  sim::Duration reintegration_retry = sim::Duration::millis(400);
  /// Survivor: snapshot attempts before abandoning the reintegration and
  /// falling back to unprotected single-server operation.
  int reintegration_max_attempts = 25;

  // --- housekeeping -----------------------------------------------------------
  /// Closed connections linger in heartbeat records this long (lets the peer
  /// observe the closed flag before the record disappears).
  sim::Duration closed_linger = sim::Duration::seconds(2);
};

}  // namespace sttcp::sttcp
