// StreamLogger: the paper's §4.3 output-commit extension.
//
// "If the primary crashes while the backup is retrieving missed bytes from
//  it, the backup has no way of obtaining these bytes, since primary has
//  already acked them. For critical applications, a logger can be added to
//  the system to address this output commit problem [2]; for other
//  applications, ST-TCP treats this failure as unrecoverable."
//
// The logger is a third machine on the switch that joins the multiEA
// multicast group and passively reassembles the client→service byte stream
// of every connection, exactly like the backup's tap but with no
// application on top. When the backup takes over with a receive gap whose
// bytes the dead primary had already acknowledged, it fetches them from the
// logger over a small UDP protocol.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "net/host.h"
#include "tcp/reassembly.h"
#include "tcp/segment.h"

namespace sttcp::sttcp {

/// Wire messages for the logger protocol (UDP). Requests address streams by
/// the client endpoint + service port (the logger knows nothing of
/// replication ids).
struct LoggerRequest {
  net::Ipv4Addr client_ip;
  std::uint16_t client_port = 0;
  std::uint16_t service_port = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;

  net::Bytes serialize() const;
  static std::optional<LoggerRequest> parse(net::BytesView data);
};

struct LoggerReply {
  net::Ipv4Addr client_ip;
  std::uint16_t client_port = 0;
  std::uint16_t service_port = 0;
  std::uint64_t offset = 0;
  net::Bytes data;

  net::Bytes serialize() const;
  static std::optional<LoggerReply> parse(net::BytesView data);
};

class StreamLogger {
 public:
  struct Config {
    net::Ipv4Addr service_ip;
    std::uint16_t udp_port = 7003;
    /// Retained bytes per connection (oldest released beyond this).
    std::size_t retention = 16 * 1024 * 1024;
    /// Reassembly window while capturing.
    std::size_t window = 1 * 1024 * 1024;
  };

  struct Stats {
    std::uint64_t segments_seen = 0;
    std::uint64_t bytes_logged = 0;
    std::uint64_t requests_served = 0;
    std::uint64_t bytes_served = 0;
    std::uint64_t streams = 0;
  };

  /// `host` must already be wired to the switch with its NIC subscribed to
  /// the multicast group (the Scenario does this when the logger is
  /// enabled). The logger claims the host's TCP L4 hook — a logger host
  /// runs no TCP stack of its own.
  StreamLogger(net::Host& host, Config config);

  const Stats& stats() const { return stats_; }

  /// Logged contiguous byte count for a stream (tests).
  std::uint64_t logged_bytes(net::Ipv4Addr client_ip, std::uint16_t client_port,
                             std::uint16_t service_port) const;

 private:
  struct Stream {
    explicit Stream(std::size_t window) : reasm(window) {}
    bool have_irs = false;
    tcp::SeqAbs irs = 0;
    tcp::ReassemblyBuffer reasm;
    // Contiguous log storage: bytes [log_start, log_start + log.size()).
    // A deque so retention trimming from the front stays O(dropped).
    std::uint64_t log_start = 0;
    std::deque<std::uint8_t> log;
  };

  struct StreamKey {
    std::uint32_t client_ip;
    std::uint16_t client_port;
    std::uint16_t service_port;
    auto operator<=>(const StreamKey&) const = default;
  };

  void on_tcp(const net::Ipv4Header& ip, net::BytesView l4);
  void on_request(net::Ipv4Addr src, std::uint16_t src_port, net::BytesView payload);

  net::Host& host_;
  Config cfg_;
  sim::Logger log_;
  std::map<StreamKey, std::unique_ptr<Stream>> streams_;
  Stats stats_;
};

}  // namespace sttcp::sttcp
