// Deterministic server applications.
//
// ST-TCP requires the primary application and its replica to be
// deterministic: fed the same input TCP stream, they make the same writes
// in the same order (§2). These servers derive every output byte from the
// connection's stream positions only — no clocks, no randomness — so a
// primary and backup instance stay byte-identical.
//
// Each server supports the paper's application-failure injections (§4.2):
//   hang()        — the process stops reading/writing but the socket stays
//                   open (crash WITHOUT cleanup: no FIN);
//   crash_clean() — the OS reaps the process and closes sockets (FIN);
//   crash_abort() — sockets are reset (RST).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "app/pattern.h"
#include "tcp/stack.h"

namespace sttcp::app {

/// Base: owns per-connection state, wires callbacks, applies crash modes.
class ServerApp {
 public:
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t connections_closed = 0;
  };

  ServerApp(tcp::TcpStack& stack, std::uint16_t port, std::string name);
  virtual ~ServerApp() = default;

  /// Application crash without cleanup: stop all activity, keep sockets.
  void hang();
  /// Application crash with OS cleanup: close all sockets (FIN).
  void crash_clean();
  /// Application crash with reset semantics: abort all sockets (RST).
  void crash_abort();

  bool hung() const { return hung_; }
  bool crashed() const { return crashed_; }
  const Stats& stats() const { return stats_; }

  /// Optional watchdog integration: invoked on every unit of application
  /// work while healthy.
  void set_heartbeat_hook(std::function<void()> hook) { hb_hook_ = std::move(hook); }

  // --- reintegration checkpoint ---------------------------------------------
  /// Serialize application state for the ST-TCP rejoin snapshot (carried
  /// opaquely). Base: per-connection serve/echo progress keyed by 4-tuple.
  /// Stateful servers (BlockStoreServer) override with their full state.
  virtual net::Bytes checkpoint() const;
  /// Stage a checkpoint received from the survivor. Applied per connection
  /// as the corresponding replica is adopted (its accept callback fires);
  /// adopted connections resume mid-stream instead of starting over.
  virtual void stage_restore(net::BytesView data);
  /// Fresh process after a host reboot: no connections, not hung/crashed.
  /// Registered as a Host boot hook.
  virtual void reset_for_boot();

 protected:
  struct Conn {
    tcp::TcpConnection* tcp = nullptr;
    std::uint64_t to_serve = 0;   // bytes remaining (FileServer)
    std::uint64_t served = 0;     // stream offset of the next byte to write
    net::Bytes echo_pending;      // EchoServer: bytes read but not yet echoed
    bool request_seen = false;
  };

  virtual void on_accept(Conn& c) = 0;
  virtual void on_data(Conn& c) = 0;
  virtual void on_writable(Conn& c) = 0;
  virtual void on_peer_closed(Conn& c);
  /// The TCP connection finished (any reason) and is about to be forgotten.
  /// Subclasses holding per-connection side state keyed on &c drop (or
  /// ghost) it here.
  virtual void on_conn_gone(Conn&) {}
  /// A connection adopted mid-stream from a staged checkpoint (reintegration)
  /// instead of freshly accepted. Default: resume writing where the
  /// checkpoint left off — correct for every pattern-serving server here.
  virtual void on_adopted(Conn& c) { on_writable(c); }

  /// Write pattern bytes [c.served, c.served+n) as buffer space allows.
  void serve_pattern(Conn& c, std::uint64_t budget);
  bool active() const { return !hung_ && !crashed_; }
  void beat() {
    if (hb_hook_) hb_hook_();
  }

  tcp::TcpStack& stack_;
  std::uint16_t port_;
  std::string name_;
  std::map<tcp::TcpConnection*, std::unique_ptr<Conn>> conns_;
  /// Checkpoint state awaiting its replica, keyed by 4-tuple (stage_restore).
  std::map<tcp::FourTuple, Conn> staged_;
  bool hung_ = false;
  bool crashed_ = false;
  std::function<void()> hb_hook_;
  Stats stats_;
};

/// Streams a fixed-size "file" of pattern bytes to every client as soon as
/// it connects, then closes. The Demo 1/2/3 workload.
class FileServer : public ServerApp {
 public:
  FileServer(tcp::TcpStack& stack, std::uint16_t port, std::uint64_t file_size);

 protected:
  void on_accept(Conn& c) override;
  void on_data(Conn& c) override;
  void on_writable(Conn& c) override;

 private:
  std::uint64_t file_size_;
};

/// Request/response record stream: the client sends 1-byte requests, the
/// server answers each with a fixed-size record of pattern bytes (offsets
/// continue across requests). Exercises the client->server direction too.
class StreamServer : public ServerApp {
 public:
  StreamServer(tcp::TcpStack& stack, std::uint16_t port, std::size_t record_size);

 protected:
  void on_accept(Conn& c) override;
  void on_data(Conn& c) override;
  void on_writable(Conn& c) override;

 private:
  std::size_t record_size_;
};

/// Reads and discards everything (an upload endpoint). With `verify` set it
/// checks the incoming bytes against the shared pattern, so integrity can be
/// asserted on the receiving application across a failover.
class SinkServer : public ServerApp {
 public:
  SinkServer(tcp::TcpStack& stack, std::uint16_t port, bool verify = false);

  bool corrupt() const { return corrupt_; }

 protected:
  void on_accept(Conn& c) override;
  void on_data(Conn& c) override;
  void on_writable(Conn& c) override;

 private:
  bool verify_;
  bool corrupt_ = false;
};

/// Serves exactly the byte count named in the client's fixed 8-byte
/// big-endian request, then closes. The churn workload's server: per-flow
/// heavy-tailed sizes need a per-connection length the replica derives from
/// the replicated input stream alone (keeping primary and backup instances
/// byte-identical), unlike FileServer's constructor-fixed size.
class SizedServer : public ServerApp {
 public:
  SizedServer(tcp::TcpStack& stack, std::uint16_t port);

  /// Wire size of the client's size request.
  static constexpr std::size_t kRequestBytes = 8;

 protected:
  void on_accept(Conn&) override {}
  void on_data(Conn& c) override;
  void on_writable(Conn& c) override;
};

/// Echoes everything it reads. The simplest deterministic app.
class EchoServer : public ServerApp {
 public:
  EchoServer(tcp::TcpStack& stack, std::uint16_t port);

 protected:
  void on_accept(Conn& c) override;
  void on_data(Conn& c) override;
  void on_writable(Conn& c) override;

 private:
  void pump(Conn& c);
};

}  // namespace sttcp::app
