// Length-prefixed envelope framing for the block-store protocol
// (docs/APPLICATION.md has the full wire table).
//
// Every request and response travels as one frame:
//
//   offset  size  field
//        0     2  magic        0xB10C
//        2     1  version      1
//        3     1  type         MsgType (responses set bit 0x80)
//        4     4  session id   0 before OPEN succeeds
//        8     4  request id   client-chosen, echoed verbatim in the reply
//       12     4  payload len  bytes following the header
//       16     2  checksum     internet checksum over header+payload
//       18     —  payload
//
// The checksum field sits at an even offset and the sum runs from offset 0,
// so the stored complement cancels in place (the word-alignment lesson from
// the PR-4 heartbeat codec bug). The decoder is incremental — envelopes
// straddle TCP segments freely — and fails CLOSED: a bad magic, version,
// checksum or an oversized length poisons the connection (kBad) rather than
// resyncing, because a desynced length-prefixed stream can alias arbitrary
// garbage into well-formed frames.
#pragma once

#include <cstdint>
#include <optional>

#include "net/bytes.h"

namespace sttcp::app {

enum class MsgType : std::uint8_t {
  kOpen = 1,    // payload: 8-byte auth token
  kGet = 2,     // payload: u32 block id
  kPut = 3,     // payload: u32 block id + data (<= block size)
  kDelete = 4,  // payload: u32 block id
  kClose = 5,   // payload: empty
};

enum class Status : std::uint8_t {
  kOk = 0,
  kAuthFailed = 1,
  kBadSession = 2,
  kBadRequest = 3,
  kNotFound = 4,
};

/// Response type bit: reply type = request type | kResponseBit.
constexpr std::uint8_t kResponseBit = 0x80;

struct Envelope {
  static constexpr std::uint16_t kMagic = 0xB10C;
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kHeaderSize = 18;
  static constexpr std::size_t kChecksumOffset = 16;

  std::uint8_t type = 0;
  std::uint32_t session = 0;
  std::uint32_t req_id = 0;
  net::Bytes payload;

  bool is_response() const { return (type & kResponseBit) != 0; }
  MsgType request_type() const {
    return static_cast<MsgType>(type & ~kResponseBit);
  }

  net::Bytes serialize() const;
};

/// Convenience builders.
Envelope make_request(MsgType t, std::uint32_t session, std::uint32_t req_id,
                      net::Bytes payload);
/// Response payload layout: status(1) + timestamp_us(8) + data.
Envelope make_response(const Envelope& req, Status status,
                       std::uint64_t timestamp_us, net::BytesView data);

/// Parsed response payload.
struct ResponseBody {
  Status status = Status::kOk;
  std::uint64_t timestamp_us = 0;
  net::Bytes data;
};
std::optional<ResponseBody> parse_response_body(const Envelope& e);

/// Incremental stream decoder. feed() buffers raw TCP bytes; next() pulls
/// complete envelopes out.
class Decoder {
 public:
  enum class Result {
    kOk,        // *out holds the next envelope
    kNeedMore,  // buffered bytes form only a frame prefix
    kBad,       // framing violation — the stream is poisoned (sticky)
  };

  /// Frames claiming a longer payload are rejected as kBad: the cap bounds
  /// both memory and how long a corrupted length field can stall detection.
  explicit Decoder(std::size_t max_payload = 64 * 1024)
      : max_payload_(max_payload) {}

  void feed(net::BytesView data);
  Result next(Envelope* out);

  bool poisoned() const { return poisoned_; }
  std::size_t buffered() const { return buf_.size(); }
  /// The undecoded backlog (a partial frame prefix) — carried verbatim in
  /// the reintegration checkpoint and re-fed on the rejoiner.
  net::BytesView buffered_bytes() const { return buf_; }

 private:
  std::size_t max_payload_;
  net::Bytes buf_;
  bool poisoned_ = false;
};

}  // namespace sttcp::app
