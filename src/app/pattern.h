// Deterministic payload generator shared by servers, clients, tests and
// benches: byte i of the stream is a pure function of i, so any receiver can
// verify integrity at any offset — including across an ST-TCP failover,
// where the bytes before the crash came from the primary and the bytes
// after it from the backup.
#pragma once

#include <cstdint>

#include "net/bytes.h"

namespace sttcp::app {

inline std::uint8_t pattern_byte(std::uint64_t offset) {
  return static_cast<std::uint8_t>((offset * 131) ^ (offset >> 8));
}

inline net::Bytes pattern_bytes(std::uint64_t offset, std::size_t n) {
  net::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = pattern_byte(offset + i);
  return b;
}

/// Verifies a chunk against the pattern; returns false on any mismatch.
inline bool pattern_verify(std::uint64_t offset, net::BytesView data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != pattern_byte(offset + i)) return false;
  }
  return true;
}

}  // namespace sttcp::app
