#include "app/block_store.h"

#include <algorithm>
#include <cstring>

namespace sttcp::app {

namespace {
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
std::uint64_t fold(std::uint64_t d, std::uint64_t v) { return (d ^ v) * kFnvPrime; }
std::uint64_t fold_bytes(std::uint64_t d, net::BytesView b) {
  for (const std::uint8_t x : b) d = fold(d, x);
  return d;
}
}  // namespace

// --- BlockDevice -------------------------------------------------------------

BlockDevice::BlockDevice(std::uint32_t blocks, std::uint32_t block_size)
    : blocks_(blocks),
      block_size_(block_size),
      allocated_(blocks, 0),
      data_(static_cast<std::size_t>(blocks) * block_size, 0) {}

void BlockDevice::write(std::uint32_t b, net::BytesView data) {
  std::uint8_t* dst = data_.data() + static_cast<std::size_t>(b) * block_size_;
  const std::size_t n = std::min<std::size_t>(data.size(), block_size_);
  std::memcpy(dst, data.data(), n);
  std::memset(dst + n, 0, block_size_ - n);
  allocated_[b] = 1;
}

net::BytesView BlockDevice::read(std::uint32_t b) const {
  return net::BytesView(data_).subspan(
      static_cast<std::size_t>(b) * block_size_, block_size_);
}

void BlockDevice::deallocate(std::uint32_t b) {
  allocated_[b] = 0;
  std::memset(data_.data() + static_cast<std::size_t>(b) * block_size_, 0,
              block_size_);
}

std::uint64_t BlockDevice::digest() const {
  std::uint64_t d = kFnvBasis;
  d = fold(d, blocks_);
  d = fold(d, block_size_);
  d = fold_bytes(d, allocated_);
  d = fold_bytes(d, data_);
  return d;
}

void BlockDevice::serialize(net::ByteWriter& w) const {
  w.u32(blocks_);
  w.u32(block_size_);
  // Sparse: only allocated blocks travel (the rest are zero by invariant).
  std::uint32_t count = 0;
  for (const std::uint8_t a : allocated_) count += a;
  w.u32(count);
  for (std::uint32_t b = 0; b < blocks_; ++b) {
    if (!allocated_[b]) continue;
    w.u32(b);
    w.bytes(read(b));
  }
}

bool BlockDevice::restore(net::ByteReader& r) {
  const std::uint32_t blocks = r.u32();
  const std::uint32_t bs = r.u32();
  if (blocks != blocks_ || bs != block_size_) return false;  // geometry pinned
  std::fill(allocated_.begin(), allocated_.end(), 0);
  std::fill(data_.begin(), data_.end(), 0);
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t b = r.u32();
    if (b >= blocks_) return false;
    write(b, r.bytes(block_size_));
  }
  return true;
}

// --- LruBlockCache -----------------------------------------------------------

LruBlockCache::LruBlockCache(std::size_t capacity, std::uint32_t block_size)
    : capacity_(capacity), block_size_(block_size) {}

void LruBlockCache::touch(std::uint32_t b, Page& p) {
  lru_.erase(p.lru_pos);
  lru_.push_front(b);
  p.lru_pos = lru_.begin();
}

const net::Bytes* LruBlockCache::get(std::uint32_t b) {
  auto it = pages_.find(b);
  if (it == pages_.end()) return nullptr;
  touch(b, it->second);
  return &it->second.data;
}

void LruBlockCache::put(std::uint32_t b, net::BytesView data) {
  auto it = pages_.find(b);
  if (it == pages_.end()) {
    Page p;
    p.data.assign(block_size_, 0);
    std::copy(data.begin(), data.end(), p.data.begin());
    p.dirty = true;
    lru_.push_front(b);
    p.lru_pos = lru_.begin();
    dirty_.push_back(b);
    p.dirty_pos = std::prev(dirty_.end());
    ++dirty_count_;
    pages_.emplace(b, std::move(p));
    return;
  }
  Page& p = it->second;
  std::fill(p.data.begin(), p.data.end(), 0);
  std::copy(data.begin(), data.end(), p.data.begin());
  if (!p.dirty) {
    p.dirty = true;
    dirty_.push_back(b);
    p.dirty_pos = std::prev(dirty_.end());
    ++dirty_count_;
  }
  touch(b, p);
}

void LruBlockCache::insert_clean(std::uint32_t b, net::BytesView data) {
  Page p;
  p.data.assign(data.begin(), data.end());
  p.data.resize(block_size_, 0);
  lru_.push_front(b);
  p.lru_pos = lru_.begin();
  pages_.emplace(b, std::move(p));
}

void LruBlockCache::drop(std::uint32_t b) {
  auto it = pages_.find(b);
  if (it == pages_.end()) return;
  lru_.erase(it->second.lru_pos);
  if (it->second.dirty) {
    dirty_.erase(it->second.dirty_pos);
    --dirty_count_;
  }
  pages_.erase(it);
}

std::vector<std::uint32_t> LruBlockCache::victim_candidates(std::size_t k) const {
  std::vector<std::uint32_t> out;
  out.reserve(std::min(k, lru_.size()));
  for (auto it = lru_.rbegin(); it != lru_.rend() && out.size() < k; ++it) {
    out.push_back(*it);
  }
  return out;
}

void LruBlockCache::evict(std::uint32_t b, BlockDevice& dev) {
  auto it = pages_.find(b);
  if (it == pages_.end()) return;
  if (it->second.dirty) dev.write(b, it->second.data);
  drop(b);
}

std::vector<std::uint32_t> LruBlockCache::oldest_dirty(std::size_t n) const {
  std::vector<std::uint32_t> out;
  out.reserve(std::min(n, dirty_.size()));
  for (auto it = dirty_.begin(); it != dirty_.end() && out.size() < n; ++it) {
    out.push_back(*it);
  }
  return out;
}

void LruBlockCache::flush(std::uint32_t b, BlockDevice& dev) {
  auto it = pages_.find(b);
  if (it == pages_.end() || !it->second.dirty) return;
  dev.write(b, it->second.data);
  it->second.dirty = false;
  dirty_.erase(it->second.dirty_pos);
  --dirty_count_;
}

std::size_t LruBlockCache::flush_all(BlockDevice& dev) {
  std::size_t n = 0;
  while (!dirty_.empty()) {
    flush(dirty_.front(), dev);
    ++n;
  }
  return n;
}

void LruBlockCache::drop_all_clean() {
  for (auto it = pages_.begin(); it != pages_.end();) {
    if (!it->second.dirty) {
      lru_.erase(it->second.lru_pos);
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t LruBlockCache::digest() const {
  // LRU and dirty order matter: equal digests must imply identical future
  // candidate sets and writeback batches.
  std::uint64_t d = kFnvBasis;
  for (const std::uint32_t b : lru_) {
    const Page& p = pages_.at(b);
    d = fold(d, b);
    d = fold(d, p.dirty ? 1 : 0);
    d = fold_bytes(d, p.data);
  }
  for (const std::uint32_t b : dirty_) d = fold(d, b);
  return d;
}

void LruBlockCache::serialize(net::ByteWriter& w) const {
  // Pages in LRU order (most recent first) + the dirty queue: a restore
  // rebuilds both orders exactly.
  w.u32(static_cast<std::uint32_t>(pages_.size()));
  for (const std::uint32_t b : lru_) {
    const Page& p = pages_.at(b);
    w.u32(b);
    w.u8(p.dirty ? 1 : 0);
    w.bytes(p.data);
  }
  w.u32(static_cast<std::uint32_t>(dirty_.size()));
  for (const std::uint32_t b : dirty_) w.u32(b);
}

bool LruBlockCache::restore(net::ByteReader& r) {
  pages_.clear();
  lru_.clear();
  dirty_.clear();
  dirty_count_ = 0;
  const std::uint32_t n = r.u32();
  if (n > capacity_) return false;
  // Serialized most-recent-first; inserting each at the BACK preserves it.
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t b = r.u32();
    Page p;
    p.dirty = r.u8() != 0;
    p.data = net::to_bytes(r.bytes(block_size_));
    lru_.push_back(b);
    p.lru_pos = std::prev(lru_.end());
    pages_.emplace(b, std::move(p));
  }
  const std::uint32_t dn = r.u32();
  for (std::uint32_t i = 0; i < dn; ++i) {
    const std::uint32_t b = r.u32();
    auto it = pages_.find(b);
    if (it == pages_.end() || !it->second.dirty) return false;
    dirty_.push_back(b);
    it->second.dirty_pos = std::prev(dirty_.end());
    ++dirty_count_;
  }
  return dirty_count_ == dn;
}

}  // namespace sttcp::app
