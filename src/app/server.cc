#include "app/server.h"

namespace sttcp::app {

ServerApp::ServerApp(tcp::TcpStack& stack, std::uint16_t port, std::string name)
    : stack_(stack), port_(port), name_(std::move(name)) {
  stack_.listen(port_, [this](tcp::TcpConnection& conn) {
    if (crashed_) return;  // a dead process accepts nothing
    auto c = std::make_unique<Conn>();
    c->tcp = &conn;
    Conn& ref = *c;
    conns_.emplace(&conn, std::move(c));
    ++stats_.connections_accepted;

    tcp::TcpConnection::Callbacks cb;
    cb.on_readable = [this, &ref] {
      if (active()) {
        beat();
        on_data(ref);
      }
    };
    cb.on_writable = [this, &ref] {
      if (active()) {
        beat();
        on_writable(ref);
      }
    };
    cb.on_peer_closed = [this, &ref] {
      if (active()) on_peer_closed(ref);
    };
    cb.on_closed = [this, &ref](tcp::CloseReason) {
      ++stats_.connections_closed;
      on_conn_gone(ref);
      conns_.erase(ref.tcp);
    };
    conn.set_callbacks(std::move(cb));

    // Reintegration: if a checkpoint is staged for this 4-tuple, this is a
    // mid-stream adoption, not a fresh client — resume where the survivor's
    // instance stands instead of serving from the beginning.
    if (auto it = staged_.find(conn.tuple()); it != staged_.end()) {
      ref.to_serve = it->second.to_serve;
      ref.served = it->second.served;
      ref.request_seen = it->second.request_seen;
      ref.echo_pending = std::move(it->second.echo_pending);
      staged_.erase(it);
      if (active()) {
        beat();
        on_adopted(ref);
      }
      return;
    }
    if (active()) {
      beat();
      on_accept(ref);
    }
  });
  stack_.host().add_boot_hook([this] { reset_for_boot(); });
}

void ServerApp::hang() { hung_ = true; }

void ServerApp::crash_clean() {
  if (crashed_) return;
  crashed_ = true;
  // The OS reaps the process: every socket is closed gracefully (FIN).
  for (auto& [tcp_conn, c] : conns_) tcp_conn->close();
}

void ServerApp::crash_abort() {
  if (crashed_) return;
  crashed_ = true;
  // Collect first: abort() can destroy entries under our feet.
  std::vector<tcp::TcpConnection*> victims;
  victims.reserve(conns_.size());
  for (auto& [tcp_conn, c] : conns_) victims.push_back(tcp_conn);
  for (auto* v : victims) v->abort();
}

net::Bytes ServerApp::checkpoint() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.u16(static_cast<std::uint16_t>(conns_.size()));
  for (const auto& [tcp_conn, c] : conns_) {
    const tcp::FourTuple& t = tcp_conn->tuple();
    w.u32(t.remote.ip.value());
    w.u16(t.remote.port);
    w.u32(t.local.ip.value());
    w.u16(t.local.port);
    w.u64(c->to_serve);
    w.u64(c->served);
    w.u8(c->request_seen ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(c->echo_pending.size()));
    w.bytes(c->echo_pending);
  }
  return out;
}

void ServerApp::stage_restore(net::BytesView data) {
  staged_.clear();
  if (data.empty()) return;
  try {
    net::ByteReader r(data);
    const std::uint16_t count = r.u16();
    for (std::uint16_t i = 0; i < count; ++i) {
      tcp::FourTuple t;
      const net::Ipv4Addr client_ip(r.u32());
      const std::uint16_t client_port = r.u16();
      t.remote = net::SocketAddr{client_ip, client_port};
      const net::Ipv4Addr local_ip(r.u32());
      const std::uint16_t local_port = r.u16();
      t.local = net::SocketAddr{local_ip, local_port};
      Conn c;
      c.to_serve = r.u64();
      c.served = r.u64();
      c.request_seen = r.u8() != 0;
      const std::uint32_t echo_len = r.u32();
      c.echo_pending = net::to_bytes(r.bytes(echo_len));
      staged_[t] = std::move(c);
    }
  } catch (const std::exception&) {
    staged_.clear();  // malformed checkpoint: adopt conservatively from zero
  }
}

void ServerApp::reset_for_boot() {
  conns_.clear();
  staged_.clear();
  hung_ = false;
  crashed_ = false;
}

void ServerApp::on_peer_closed(Conn& c) {
  // Default: when the client closes and we owe nothing more, close too.
  if (c.to_serve == 0) c.tcp->close();
}

void ServerApp::serve_pattern(Conn& c, std::uint64_t budget) {
  while (budget > 0) {
    // Generate only what the send buffer will actually accept: offering a
    // full 16 KiB chunk into a nearly-full buffer wastes pattern generation
    // on bytes that are immediately thrown away.
    std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(budget, 16384));
    chunk = std::min(chunk, c.tcp->send_space());
    if (chunk == 0) return;  // send buffer full; resume on_writable
    const std::size_t n = c.tcp->send(pattern_bytes(c.served, chunk));
    stats_.bytes_written += n;
    c.served += n;
    budget -= n;
    if (n < chunk) return;  // send buffer full; resume on_writable
  }
}

// --- FileServer --------------------------------------------------------------

FileServer::FileServer(tcp::TcpStack& stack, std::uint16_t port,
                       std::uint64_t file_size)
    : ServerApp(stack, port, "file_server"), file_size_(file_size) {}

void FileServer::on_accept(Conn& c) {
  c.to_serve = file_size_;
  on_writable(c);
}

void FileServer::on_data(Conn& c) {
  // A file server ignores (but drains) client chatter.
  stats_.bytes_read += c.tcp->read(1 << 20).size();
}

void FileServer::on_writable(Conn& c) {
  if (c.to_serve == 0) return;
  const std::uint64_t before = c.served;
  serve_pattern(c, c.to_serve);
  c.to_serve -= c.served - before;
  if (c.to_serve == 0) c.tcp->close();
}

// --- StreamServer ------------------------------------------------------------

StreamServer::StreamServer(tcp::TcpStack& stack, std::uint16_t port,
                           std::size_t record_size)
    : ServerApp(stack, port, "stream_server"), record_size_(record_size) {}

void StreamServer::on_accept(Conn&) {}

void StreamServer::on_data(Conn& c) {
  const net::Bytes reqs = c.tcp->read(1 << 20);
  stats_.bytes_read += reqs.size();
  // Each request byte buys one record.
  c.to_serve += reqs.size() * record_size_;
  on_writable(c);
}

void StreamServer::on_writable(Conn& c) {
  if (c.to_serve == 0) return;
  const std::uint64_t before = c.served;
  serve_pattern(c, c.to_serve);
  c.to_serve -= c.served - before;
}

// --- SinkServer --------------------------------------------------------------

SinkServer::SinkServer(tcp::TcpStack& stack, std::uint16_t port, bool verify)
    : ServerApp(stack, port, "sink_server"), verify_(verify) {}

void SinkServer::on_accept(Conn&) {}

void SinkServer::on_data(Conn& c) {
  const net::Bytes in = c.tcp->read(1 << 20);
  if (verify_ && !pattern_verify(c.served, in)) corrupt_ = true;
  c.served += in.size();  // read offset (SinkServer writes nothing)
  stats_.bytes_read += in.size();
}

void SinkServer::on_writable(Conn&) {}

// --- SizedServer -------------------------------------------------------------

SizedServer::SizedServer(tcp::TcpStack& stack, std::uint16_t port)
    : ServerApp(stack, port, "sized_server") {}

void SizedServer::on_data(Conn& c) {
  net::Bytes in = c.tcp->read(1 << 20);
  stats_.bytes_read += in.size();
  if (c.request_seen) return;  // trailing client bytes are ignored
  // Accumulate the 8-byte request; it may straddle segments. echo_pending is
  // reused as the accumulator so the reintegration checkpoint carries a
  // partial request across a snapshot without new fields.
  c.echo_pending.insert(c.echo_pending.end(), in.begin(), in.end());
  if (c.echo_pending.size() < kRequestBytes) return;
  std::uint64_t size = 0;
  for (std::size_t i = 0; i < kRequestBytes; ++i) {
    size = (size << 8) | c.echo_pending[i];
  }
  c.echo_pending.clear();
  c.request_seen = true;
  c.to_serve = size;
  on_writable(c);
}

void SizedServer::on_writable(Conn& c) {
  if (!c.request_seen) return;
  const std::uint64_t before = c.served;
  serve_pattern(c, c.to_serve);
  c.to_serve -= c.served - before;
  if (c.to_serve == 0) c.tcp->close();
}

// --- EchoServer --------------------------------------------------------------

EchoServer::EchoServer(tcp::TcpStack& stack, std::uint16_t port)
    : ServerApp(stack, port, "echo_server") {}

void EchoServer::on_accept(Conn&) {}

void EchoServer::on_data(Conn& c) {
  net::Bytes in = c.tcp->read(1 << 20);
  stats_.bytes_read += in.size();
  c.echo_pending.insert(c.echo_pending.end(), in.begin(), in.end());
  pump(c);
}

void EchoServer::on_writable(Conn& c) { pump(c); }

void EchoServer::pump(Conn& c) {
  if (c.echo_pending.empty()) return;
  const std::size_t n = c.tcp->send(c.echo_pending);
  stats_.bytes_written += n;
  c.echo_pending.erase(c.echo_pending.begin(), c.echo_pending.begin() + n);
}

}  // namespace sttcp::app
