#include "app/block_server.h"

#include <algorithm>

#include "net/host.h"
#include "sim/world.h"

namespace sttcp::app {

using sttcp::DecisionKind;
using sttcp::DecisionRecord;

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
std::uint64_t fold(std::uint64_t d, std::uint64_t v) { return (d ^ v) * kFnvPrime; }
std::uint64_t fold_bytes(std::uint64_t d, net::BytesView b) {
  for (const std::uint8_t x : b) d = fold(d, x);
  return d;
}

std::uint64_t be64(net::BytesView b) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}
std::uint32_t be32(net::BytesView b) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v = (v << 8) | b[i];
  return v;
}

/// The low 16 bits of a kOrder value carry the per-address request index;
/// the rest is the address key.
constexpr std::uint64_t kOrderAddrMask = ~std::uint64_t{0xFFFF};
}  // namespace

BlockStoreServer::BlockStoreServer(tcp::TcpStack& stack, std::uint16_t port,
                                   BlockStoreConfig cfg,
                                   sttcp::DecisionLog::Mode mode)
    : ServerApp(stack, port, "block_store"),
      cfg_(cfg),
      log_(mode),
      rng_(stack.host().world().rng().fork()),
      device_(cfg.blocks, cfg.block_size),
      cache_(cfg.cache_capacity, cfg.block_size),
      writeback_timer_(stack.host().cpu_domain()),
      emit_timer_(stack.host().cpu_domain()),
      drain_timer_(stack.host().cpu_domain()) {
  log_.set_commit_hook([this] { pump_all_send(); });
  log_.set_ingest_hook([this] { pump_exec(); });
  log_.set_promote_hook([this] { on_promoted(); });
  if (log_.recording()) {
    writeback_timer_.start(cfg_.writeback_period, [this] { writeback_tick(); });
  }
}

std::uint64_t BlockStoreServer::addr_key_of(const tcp::FourTuple& t) {
  return (static_cast<std::uint64_t>(t.remote.ip.value()) << 32) |
         (static_cast<std::uint64_t>(t.remote.port) << 16);
}

sim::SimTime BlockStoreServer::now() const {
  return const_cast<BlockStoreServer*>(this)->stack_.host().world().now();
}

std::uint64_t BlockStoreServer::now_us() const {
  return static_cast<std::uint64_t>(now().ns() / 1000);
}

BlockStoreServer::Side& BlockStoreServer::side_of(Conn& c) { return sides_[&c]; }

// --- connection lifecycle ----------------------------------------------------

void BlockStoreServer::on_accept(Conn& c) {
  Side& s = sides_[&c];
  s.addr_key = addr_key_of(c.tcp->tuple());
  by_addr_[s.addr_key] = &c;
  // Reintegration adoption: the snapshot staged this 4-tuple's mid-stream
  // protocol state (ServerApp's base staging is bypassed — checkpoint() is
  // fully overridden here).
  if (auto it = staged_sides_.find(c.tcp->tuple()); it != staged_sides_.end()) {
    s.session = it->second.session;
    s.peer_closed = it->second.peer_closed;
    if (!it->second.rx_buffered.empty()) s.decoder.feed(it->second.rx_buffered);
    if (!it->second.tx_backlog.empty()) {
      // Already-committed response bytes the survivor had not finished
      // writing: nothing to gate, emit as soon as the buffer drains.
      Pending p;
      p.wire = std::move(it->second.tx_backlog);
      p.commit_seq = 0;
      p.ready_at = now();
      s.tx.push_back(std::move(p));
    }
    staged_sides_.erase(it);
    pump_send(c, s);
  }
}

void BlockStoreServer::on_data(Conn& c) {
  const net::Bytes in = c.tcp->read(1 << 20);
  stats_.bytes_read += in.size();
  Side& s = side_of(c);
  if (s.decoder.poisoned()) return;
  s.decoder.feed(in);
  if (log_.recording() && !promote_draining_) {
    pump_record(c, s);
    return;
  }
  // Replay (or post-promotion drain): park parsed requests until their
  // kOrder decision schedules them.
  Envelope e;
  while (true) {
    const Decoder::Result res = s.decoder.next(&e);
    if (res == Decoder::Result::kOk) {
      s.queue.push_back(std::move(e));
      continue;
    }
    if (res == Decoder::Result::kBad && !s.protocol_error_counted) {
      s.protocol_error_counted = true;
      ++sstats_.protocol_errors;
    }
    break;
  }
  pump_exec();
}

void BlockStoreServer::on_writable(Conn& c) { pump_send(c, side_of(c)); }

void BlockStoreServer::on_peer_closed(Conn& c) {
  Side& s = side_of(c);
  s.peer_closed = true;
  pump_send(c, s);  // closes once tx and queue drain
}

void BlockStoreServer::on_conn_gone(Conn& c) {
  auto it = sides_.find(&c);
  if (it == sides_.end()) return;
  Side& s = it->second;
  if (!s.queue.empty()) {
    // Unexecuted replicated requests: their kOrder decisions are (or will
    // be) in the log and MUST still run for store convergence. Ghost them.
    Ghost& g = ghosts_[s.addr_key];
    while (!s.queue.empty()) {
      g.queue.push_back(std::move(s.queue.front()));
      s.queue.pop_front();
    }
    g.session = s.session;
  }
  if (auto ba = by_addr_.find(s.addr_key);
      ba != by_addr_.end() && ba->second == &c) {
    by_addr_.erase(ba);
  }
  sides_.erase(it);
}

// --- record path -------------------------------------------------------------

void BlockStoreServer::pump_record(Conn& c, Side& s) {
  Envelope e;
  bool any = false;
  while (true) {
    const Decoder::Result res = s.decoder.next(&e);
    if (res == Decoder::Result::kOk) {
      execute_one_record(c, s, e);
      any = true;
      continue;
    }
    if (res == Decoder::Result::kBad) {
      if (!s.protocol_error_counted) {
        s.protocol_error_counted = true;
        ++sstats_.protocol_errors;
      }
      // Fail closed: a desynced framing stream can alias garbage into valid
      // frames. The close replicates to the backup through the tap.
      c.tcp->close();
    }
    break;
  }
  if (any) log_.request_flush();
}

void BlockStoreServer::execute_one_record(Conn& c, Side& s, const Envelope& e) {
  const std::uint64_t key = s.addr_key;
  log_.choose(DecisionKind::kOrder,
              [&] { return key | (addr_seq_[key] & 0xFFFF); });
  ++addr_seq_[key];
  std::size_t misses = 0;
  std::uint32_t bound = s.session;
  const Envelope resp = execute(
      e, key, &bound,
      [this](DecisionKind k, const std::function<std::uint64_t()>& gen) {
        return log_.choose(k, gen);
      },
      &misses);
  s.session = bound;
  finish_response(&s, &c, resp, log_.last_seq(), misses);
}

// --- replay / drain path -----------------------------------------------------

void BlockStoreServer::pump_exec() {
  const bool draining = log_.recording();
  if (draining && !promote_draining_) return;
  while (true) {
    const DecisionRecord* r = log_.peek();
    if (r == nullptr) break;
    const auto kind = static_cast<DecisionKind>(r->kind);
    if (kind == DecisionKind::kFlush) {
      // Standalone at the queue head: a writeback pass between requests.
      std::uint64_t n = 0;
      log_.try_take(DecisionKind::kFlush, &n);
      const auto batch = cache_.oldest_dirty(static_cast<std::size_t>(n));
      for (const std::uint32_t b : batch) cache_.flush(b, device_);
      sstats_.writebacks += batch.size();
      continue;
    }
    if (kind != DecisionKind::kOrder) {
      // The head of a healthy log is always kOrder or kFlush (every other
      // kind is consumed mid-request). Consume to avoid livelock.
      ++sstats_.replay_mismatch;
      std::uint64_t v = 0;
      log_.try_take(kind, &v);
      continue;
    }
    const std::uint64_t key = r->value & kOrderAddrMask;
    const std::uint16_t idx = static_cast<std::uint16_t>(r->value & 0xFFFF);
    // Requests from an address's dead connection precede its live one.
    Ghost* g = nullptr;
    Conn* conn = nullptr;
    Side* s = nullptr;
    std::deque<Envelope>* q = nullptr;
    if (auto git = ghosts_.find(key);
        git != ghosts_.end() && !git->second.queue.empty()) {
      g = &git->second;
      q = &g->queue;
    } else if (auto cit = by_addr_.find(key); cit != by_addr_.end()) {
      conn = cit->second;
      if (auto sit = sides_.find(conn); sit != sides_.end()) {
        s = &sit->second;
        q = &s->queue;
      }
    }
    if (q == nullptr || q->empty()) {
      // Replay: the request bytes are still in flight on the replicated
      // stream. Drain: the client's TCP will retransmit them to us (the
      // promoted stack), or drain_timer_ gives up.
      break;
    }
    if ((addr_seq_[key] & 0xFFFF) != idx) ++sstats_.replay_mismatch;
    const Envelope e = q->front();
    std::uint32_t bound = (s != nullptr) ? s->session : g->session;
    if (!draining) {
      // Atomic execution: every decision this request will consume must be
      // queued before we mutate anything. (Post-promotion the backlog is a
      // complete contiguous prefix, and the chooser generates past its end.)
      std::vector<DecisionKind> demand;
      compute_demand(e, bound, &demand);
      bool stall = false;
      for (std::size_t i = 0; i < demand.size(); ++i) {
        const DecisionRecord* a = log_.peek_ahead(i + 1);
        if (a == nullptr) {
          stall = true;
          break;
        }
        if (a->kind != static_cast<std::uint8_t>(demand[i])) {
          ++sstats_.replay_mismatch;
        }
      }
      if (stall) break;
    }
    std::uint64_t v = 0;
    log_.try_take(DecisionKind::kOrder, &v);
    q->pop_front();
    ++addr_seq_[key];
    std::size_t misses = 0;
    const Chooser replay_ch =
        [this](DecisionKind k, const std::function<std::uint64_t()>& gen) {
          std::uint64_t val = 0;
          if (log_.try_take(k, &val)) return val;
          ++sstats_.replay_mismatch;
          return gen();
        };
    const Chooser drain_ch =
        [this](DecisionKind k, const std::function<std::uint64_t()>& gen) {
          return log_.choose(k, gen);
        };
    const Envelope resp =
        execute(e, key, &bound, draining ? drain_ch : replay_ch, &misses);
    ++sstats_.replay_executed;
    if (s != nullptr) {
      s->session = bound;
      finish_response(s, conn, resp, log_.last_seq(), misses);
    } else {
      g->session = bound;
      ++sstats_.ghost_executed;
      finish_response(nullptr, nullptr, resp, log_.last_seq(), misses);
      if (g->queue.empty()) ghosts_.erase(key);
    }
  }
  if (promote_draining_ && log_.recording() && log_.pending_replay() == 0) {
    finish_promote_drain();
  }
}

void BlockStoreServer::compute_demand(const Envelope& e,
                                      std::uint32_t bound_session,
                                      std::vector<DecisionKind>* out) const {
  out->push_back(DecisionKind::kTime);
  if (wants_session(e)) out->push_back(DecisionKind::kSession);
  if (wants_evict(e, bound_session)) out->push_back(DecisionKind::kEvict);
}

bool BlockStoreServer::session_ok(const Envelope& e,
                                  std::uint32_t bound_session) const {
  return e.session != 0 && e.session == bound_session &&
         sessions_.count(e.session) != 0;
}

bool BlockStoreServer::wants_session(const Envelope& e) const {
  return e.request_type() == MsgType::kOpen && e.payload.size() == 8 &&
         be64(e.payload) == cfg_.auth_token;
}

bool BlockStoreServer::wants_evict(const Envelope& e,
                                   std::uint32_t bound_session) const {
  if (!session_ok(e, bound_session) || !cache_.full()) return false;
  switch (e.request_type()) {
    case MsgType::kGet: {
      if (e.payload.size() != 4) return false;
      const std::uint32_t b = be32(e.payload);
      return b < device_.blocks() && !cache_.contains(b) &&
             device_.allocated(b);
    }
    case MsgType::kPut: {
      if (e.payload.size() < 4 || e.payload.size() - 4 > device_.block_size())
        return false;
      const std::uint32_t b = be32(e.payload);
      return b < device_.blocks() && !cache_.contains(b);
    }
    default:
      return false;
  }
}

void BlockStoreServer::do_evict(const Chooser& ch) {
  const std::uint64_t victim = ch(DecisionKind::kEvict, [this] {
    const auto cand = cache_.victim_candidates(cfg_.evict_candidates);
    return static_cast<std::uint64_t>(cand[rng_.below(cand.size())]);
  });
  cache_.evict(static_cast<std::uint32_t>(victim), device_);
  ++sstats_.evictions;
}

// --- request execution -------------------------------------------------------

Envelope BlockStoreServer::execute(const Envelope& req, std::uint64_t addr_key,
                                   std::uint32_t* bound_session,
                                   const Chooser& ch, std::size_t* misses) {
  ++sstats_.requests;
  const std::uint64_t ts =
      ch(DecisionKind::kTime, [this] { return now_us(); });
  Status st = Status::kOk;
  net::Bytes data;
  switch (req.request_type()) {
    case MsgType::kOpen: {
      ++sstats_.opens;
      if (req.payload.size() != 8) {
        st = Status::kBadRequest;
        break;
      }
      if (!wants_session(req)) {
        st = Status::kAuthFailed;
        break;
      }
      const std::uint32_t sid =
          static_cast<std::uint32_t>(ch(DecisionKind::kSession, [this] {
            std::uint64_t v = 0;
            do {
              v = rng_.next_u64() & 0xFFFFFFFFULL;
            } while (v == 0 || sessions_.count(static_cast<std::uint32_t>(v)));
            return v;
          }));
      sessions_[sid] = Session{addr_key, 0};
      *bound_session = sid;
      net::ByteWriter w(data);
      w.u32(sid);
      break;
    }
    case MsgType::kGet: {
      ++sstats_.gets;
      if (!session_ok(req, *bound_session)) {
        st = Status::kBadSession;
        break;
      }
      ++sessions_[req.session].ops;
      if (req.payload.size() != 4) {
        st = Status::kBadRequest;
        break;
      }
      const std::uint32_t b = be32(req.payload);
      if (b >= device_.blocks()) {
        st = Status::kBadRequest;
        break;
      }
      if (const net::Bytes* p = cache_.get(b)) {
        ++sstats_.cache_hits;
        data = *p;
        break;
      }
      if (!device_.allocated(b)) {
        st = Status::kNotFound;
        break;
      }
      if (cache_.full()) do_evict(ch);
      const net::BytesView dv = device_.read(b);
      data.assign(dv.begin(), dv.end());
      cache_.insert_clean(b, dv);
      ++sstats_.cache_misses;
      ++*misses;
      break;
    }
    case MsgType::kPut: {
      ++sstats_.puts;
      if (!session_ok(req, *bound_session)) {
        st = Status::kBadSession;
        break;
      }
      ++sessions_[req.session].ops;
      if (req.payload.size() < 4 ||
          req.payload.size() - 4 > device_.block_size()) {
        st = Status::kBadRequest;
        break;
      }
      const std::uint32_t b = be32(req.payload);
      if (b >= device_.blocks()) {
        st = Status::kBadRequest;
        break;
      }
      if (cache_.contains(b)) {
        ++sstats_.cache_hits;
      } else {
        if (cache_.full()) do_evict(ch);
        ++sstats_.cache_misses;
      }
      // Write-back: the page dirties in cache; the device sees it at the
      // next writeback pass or eviction. No device read -> no miss latency.
      cache_.put(b, net::BytesView(req.payload).subspan(4));
      break;
    }
    case MsgType::kDelete: {
      ++sstats_.deletes;
      if (!session_ok(req, *bound_session)) {
        st = Status::kBadSession;
        break;
      }
      ++sessions_[req.session].ops;
      if (req.payload.size() != 4) {
        st = Status::kBadRequest;
        break;
      }
      const std::uint32_t b = be32(req.payload);
      if (b >= device_.blocks()) {
        st = Status::kBadRequest;
        break;
      }
      if (!cache_.contains(b) && !device_.allocated(b)) {
        st = Status::kNotFound;
        break;
      }
      cache_.drop(b);
      device_.deallocate(b);
      break;
    }
    case MsgType::kClose: {
      ++sstats_.closes;
      if (!session_ok(req, *bound_session)) {
        st = Status::kBadSession;
        break;
      }
      sessions_.erase(req.session);
      *bound_session = 0;
      break;
    }
    default:
      st = Status::kBadRequest;
      break;
  }
  if (st != Status::kOk) ++sstats_.bad_status;
  return make_response(req, st, ts, data);
}

void BlockStoreServer::finish_response(Side* s, Conn* c, const Envelope& resp,
                                       std::uint64_t commit_seq,
                                       std::size_t misses) {
  net::Bytes wire = resp.serialize();
  fold_tx(wire);
  ++sstats_.responses;
  if (s == nullptr || c == nullptr) return;  // ghost: state converged, no peer
  Pending p;
  p.wire = std::move(wire);
  p.commit_seq = commit_seq;
  p.ready_at =
      now() + cfg_.device_read_latency * static_cast<std::int64_t>(misses);
  s->tx.push_back(std::move(p));
  pump_send(*c, *s);
}

// --- emission ----------------------------------------------------------------

void BlockStoreServer::pump_send(Conn& c, Side& s) {
  while (!s.tx.empty()) {
    Pending& p = s.tx.front();
    if (log_.recording()) {
      // Output commit: never release a response whose decisions the backup
      // has not acknowledged (standalone acks trivially), nor before the
      // modeled device reads complete.
      if (p.commit_seq > log_.commit_through()) break;
      if (now() < p.ready_at) {
        arm_emit_timer(p.ready_at);
        break;
      }
    }
    const net::BytesView rest = net::BytesView(p.wire).subspan(s.tx_off);
    const std::size_t n = c.tcp->send(rest);
    stats_.bytes_written += n;
    s.tx_off += n;
    if (s.tx_off < p.wire.size()) return;  // buffer full; resume on_writable
    s.tx.pop_front();
    s.tx_off = 0;
  }
  if (s.peer_closed && s.tx.empty() && s.queue.empty()) c.tcp->close();
}

void BlockStoreServer::pump_all_send() {
  // by_addr_ (not sides_): key order is deterministic, pointer order is not.
  std::vector<Conn*> conns;
  conns.reserve(by_addr_.size());
  for (const auto& [key, c] : by_addr_) conns.push_back(c);
  for (Conn* c : conns) {
    if (auto it = sides_.find(c); it != sides_.end()) pump_send(*c, it->second);
  }
}

void BlockStoreServer::arm_emit_timer(sim::SimTime when) {
  if (emit_timer_.armed() && emit_timer_.deadline() <= when) return;
  emit_timer_.arm_at(when, [this] { pump_all_send(); });
}

// --- primary-side machinery --------------------------------------------------

void BlockStoreServer::writeback_tick() {
  if (!log_.recording() || promote_draining_) return;
  const auto batch = cache_.oldest_dirty(cfg_.writeback_batch);
  if (batch.empty()) return;
  log_.choose(DecisionKind::kFlush,
              [&] { return static_cast<std::uint64_t>(batch.size()); });
  for (const std::uint32_t b : batch) cache_.flush(b, device_);
  sstats_.writebacks += batch.size();
  log_.request_flush();
}

void BlockStoreServer::flush_all_dirty() {
  if (!log_.recording() || promote_draining_) return;
  const std::size_t n = cache_.dirty_count();
  if (n == 0) return;
  log_.choose(DecisionKind::kFlush,
              [&] { return static_cast<std::uint64_t>(n); });
  sstats_.writebacks += cache_.flush_all(device_);
  log_.request_flush();
}

void BlockStoreServer::on_promoted() {
  promote_draining_ = true;
  cold_cache_pending_ = cfg_.drop_cache_on_takeover;
  if (!writeback_timer_.running()) {
    writeback_timer_.start(cfg_.writeback_period, [this] { writeback_tick(); });
  }
  pump_exec();  // may finish immediately if there is no backlog
  if (promote_draining_ && log_.pending_replay() > 0) {
    drain_timer_.arm(cfg_.promote_drain_grace, [this] {
      // Grace expired: the request bytes behind these decisions are never
      // coming (the client died with the primary). No dependent response
      // can have left the dead primary unacked responses aside — see the
      // promotion argument in sttcp/decision.h — so dropping is safe.
      while (const DecisionRecord* r = log_.peek()) {
        std::uint64_t v = 0;
        log_.try_take(static_cast<DecisionKind>(r->kind), &v);
        ++sstats_.drain_dropped;
      }
      pump_exec();
    });
  }
}

void BlockStoreServer::finish_promote_drain() {
  promote_draining_ = false;
  drain_timer_.cancel();
  for (const auto& [key, g] : ghosts_) sstats_.drain_dropped += g.queue.size();
  ghosts_.clear();
  if (cold_cache_pending_) {
    cold_cache_pending_ = false;
    apply_cold_cache();
  }
  // Requests parsed during the drain whose decisions were gap-dropped are
  // fresh primary work now; serve them in address order.
  std::vector<Conn*> conns;
  conns.reserve(by_addr_.size());
  for (const auto& [key, c] : by_addr_) conns.push_back(c);
  bool any = false;
  for (Conn* c : conns) {
    auto it = sides_.find(c);
    if (it == sides_.end()) continue;
    Side& s = it->second;
    while (!s.queue.empty()) {
      const Envelope e = std::move(s.queue.front());
      s.queue.pop_front();
      execute_one_record(*c, s, e);
      any = true;
    }
  }
  if (any) log_.request_flush();
  pump_all_send();
}

void BlockStoreServer::apply_cold_cache() {
  sstats_.writebacks += cache_.flush_all(device_);
  cache_.drop_all_clean();
}

// --- digests -----------------------------------------------------------------

void BlockStoreServer::fold_tx(const net::Bytes& wire) {
  tx_digest_ = fold_bytes(tx_digest_, wire);
}

std::uint64_t BlockStoreServer::state_digest() const {
  std::uint64_t d = 0xcbf29ce484222325ULL;
  d = fold(d, device_.digest());
  d = fold(d, cache_.digest());
  for (const auto& [sid, se] : sessions_) {
    d = fold(d, sid);
    d = fold(d, se.addr_key);
    d = fold(d, se.ops);
  }
  for (const auto& [key, n] : addr_seq_) {
    d = fold(d, key);
    d = fold(d, n);
  }
  return d;
}

// --- reintegration -----------------------------------------------------------

net::Bytes BlockStoreServer::checkpoint() const {
  net::Bytes out;
  net::ByteWriter w(out);
  w.u8(1);  // payload version
  const net::Bytes lg = log_.serialize();
  w.u32(static_cast<std::uint32_t>(lg.size()));
  w.bytes(lg);
  device_.serialize(w);
  cache_.serialize(w);
  w.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [sid, se] : sessions_) {
    w.u32(sid);
    w.u64(se.addr_key);
    w.u64(se.ops);
  }
  w.u32(static_cast<std::uint32_t>(addr_seq_.size()));
  for (const auto& [key, n] : addr_seq_) {
    w.u64(key);
    w.u64(n);
  }
  // Per-connection protocol state, in address order (deterministic bytes).
  w.u16(static_cast<std::uint16_t>(by_addr_.size()));
  for (const auto& [key, conn] : by_addr_) {
    const auto sit = sides_.find(conn);
    const Side& s = sit->second;
    const tcp::FourTuple& t = conn->tcp->tuple();
    w.u32(t.remote.ip.value());
    w.u16(t.remote.port);
    w.u32(t.local.ip.value());
    w.u16(t.local.port);
    w.u32(s.session);
    w.u8(s.peer_closed ? 1 : 0);
    const net::BytesView rx = s.decoder.buffered_bytes();
    w.u32(static_cast<std::uint32_t>(rx.size()));
    w.bytes(rx);
    net::Bytes txb;
    if (!s.tx.empty()) {
      const Pending& front = s.tx.front();
      txb.insert(txb.end(), front.wire.begin() + s.tx_off, front.wire.end());
      for (std::size_t i = 1; i < s.tx.size(); ++i) {
        txb.insert(txb.end(), s.tx[i].wire.begin(), s.tx[i].wire.end());
      }
    }
    w.u32(static_cast<std::uint32_t>(txb.size()));
    w.bytes(txb);
  }
  return out;
}

void BlockStoreServer::stage_restore(net::BytesView data) {
  staged_sides_.clear();
  if (data.empty()) return;
  try {
    net::ByteReader r(data);
    if (r.u8() != 1) return;
    const std::uint32_t ln = r.u32();
    log_.restore(r.bytes(ln));
    if (!device_.restore(r)) return;
    if (!cache_.restore(r)) return;
    sessions_.clear();
    const std::uint32_t sn = r.u32();
    for (std::uint32_t i = 0; i < sn; ++i) {
      const std::uint32_t sid = r.u32();
      Session se;
      se.addr_key = r.u64();
      se.ops = r.u64();
      sessions_[sid] = se;
    }
    addr_seq_.clear();
    const std::uint32_t an = r.u32();
    for (std::uint32_t i = 0; i < an; ++i) {
      const std::uint64_t key = r.u64();
      addr_seq_[key] = r.u64();
    }
    const std::uint16_t cn = r.u16();
    for (std::uint16_t i = 0; i < cn; ++i) {
      tcp::FourTuple t;
      const net::Ipv4Addr client_ip(r.u32());
      const std::uint16_t client_port = r.u16();
      t.remote = net::SocketAddr{client_ip, client_port};
      const net::Ipv4Addr local_ip(r.u32());
      const std::uint16_t local_port = r.u16();
      t.local = net::SocketAddr{local_ip, local_port};
      StagedSide ss;
      ss.session = r.u32();
      ss.peer_closed = r.u8() != 0;
      const std::uint32_t rxn = r.u32();
      ss.rx_buffered = net::to_bytes(r.bytes(rxn));
      const std::uint32_t txn = r.u32();
      ss.tx_backlog = net::to_bytes(r.bytes(txn));
      staged_sides_[t] = std::move(ss);
    }
  } catch (const std::exception&) {
    staged_sides_.clear();  // malformed checkpoint: adopt conservatively
  }
}

void BlockStoreServer::reset_for_boot() {
  ServerApp::reset_for_boot();
  // A rebooted node has lost the store; whatever it becomes next, it must
  // resync via the reintegration snapshot — so it always restarts as a
  // replayer and is promoted explicitly if it is ever to record again.
  log_.reset(sttcp::DecisionLog::Mode::kReplay);
  device_ = BlockDevice(cfg_.blocks, cfg_.block_size);
  cache_ = LruBlockCache(cfg_.cache_capacity, cfg_.block_size);
  sessions_.clear();
  addr_seq_.clear();
  sides_.clear();
  by_addr_.clear();
  ghosts_.clear();
  staged_sides_.clear();
  writeback_timer_.stop();
  emit_timer_.cancel();
  drain_timer_.cancel();
  cold_cache_pending_ = false;
  promote_draining_ = false;
  tx_digest_ = 0xcbf29ce484222325ULL;
}

}  // namespace sttcp::app
