// app::BlockStoreServer — the real replicated application (ROADMAP item 3,
// docs/APPLICATION.md).
//
// A request/response block service over the length-prefixed envelope
// protocol (envelope.h): OPEN authenticates a session, GET/PUT/DELETE run
// against a block device fronted by an LRU cache with dirty-page writeback
// (block_store.h), CLOSE retires the session. The same class runs on the
// primary (DecisionLog::Mode::kRecord) and the backup (kReplay):
//
//  * The primary executes requests in arrival order. Every nondeterministic
//    choice — cross-connection execution ORDER, session-id draw, response
//    TIMESTAMP, cache EVICTION victim, writeback FLUSH batches — is routed
//    through the decision log (sttcp/decision.h), which the StTcpEndpoint
//    piggybacks on heartbeats.
//  * The backup parses the identical replicated input stream into per-
//    connection queues and executes strictly in decision order: a kOrder
//    record names which connection's next request runs. Before mutating, it
//    pre-computes the request's full decision demand from current state and
//    stalls until every record is present — execution is atomic, so a
//    heartbeat boundary can never split one request's choices.
//  * Output commit: the primary holds each encoded response until the
//    backup's cumulative ack covers the response's last decision (plus a
//    modeled device-read latency per cache miss). A response the client has
//    seen is therefore always reproducible by the survivor.
//  * Takeover: the log promotes; the backlog of replayed-but-unconsumed
//    decisions drains first (the dead primary may have released responses
//    built on them), then fresh requests record fresh decisions. With
//    cfg.drop_cache_on_takeover the promoted cache flushes its dirty pages
//    and drops the rest — the cold-cache failover ablation.
//  * Reintegration: checkpoint()/stage_restore() carry the session table,
//    device, cache (dirty pages included), per-address order counters,
//    decision-log cursor and per-connection parse/response-backlog state —
//    the PR-3 snapshot's first real payload.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "app/block_store.h"
#include "app/envelope.h"
#include "app/server.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "sttcp/decision.h"

namespace sttcp::app {

struct BlockStoreConfig {
  std::uint32_t blocks = 256;        // device geometry
  std::uint32_t block_size = 512;
  std::size_t cache_capacity = 16;   // pages
  /// Eviction draws the victim at random from this many LRU-tail candidates
  /// (sampled-LRU, the modeled nondeterminism the decision log pins down).
  std::size_t evict_candidates = 4;
  sim::Duration writeback_period = sim::Duration::millis(50);
  std::size_t writeback_batch = 4;   // max pages per flush pass
  /// Modeled device read latency, charged per cache miss to the response's
  /// earliest release time (client-visible on a cold cache).
  sim::Duration device_read_latency = sim::Duration::micros(500);
  std::uint64_t auth_token = 0x5354544350415050ULL;  // "STTCPAPP"
  /// Cold-cache ablation: a promoted backup flushes dirty pages and drops
  /// the rest, so post-failover GETs pay device latency.
  bool drop_cache_on_takeover = false;
  /// How long a promoted primary waits for the bytes of replayed-but-
  /// unexecuted requests (client retransmission) before dropping the
  /// decision backlog.
  sim::Duration promote_drain_grace = sim::Duration::seconds(1);
};

class BlockStoreServer : public ServerApp {
 public:
  struct StoreStats {
    std::uint64_t requests = 0;    // executed (both modes)
    std::uint64_t responses = 0;   // computed (both modes)
    std::uint64_t opens = 0, gets = 0, puts = 0, deletes = 0, closes = 0;
    std::uint64_t bad_status = 0;  // non-OK responses
    std::uint64_t cache_hits = 0, cache_misses = 0;
    std::uint64_t evictions = 0, writebacks = 0;
    std::uint64_t protocol_errors = 0;  // poisoned request streams
    std::uint64_t replay_executed = 0;  // requests run off the decision log
    std::uint64_t replay_mismatch = 0;  // demand/log disagreement (must be 0)
    std::uint64_t ghost_executed = 0;   // replayed for already-closed conns
    std::uint64_t drain_dropped = 0;    // backlog dropped at promote grace
  };

  BlockStoreServer(tcp::TcpStack& stack, std::uint16_t port,
                   BlockStoreConfig cfg, sttcp::DecisionLog::Mode mode);

  /// Wire to the endpoint: ep->set_decision_log(&app.decisions()).
  sttcp::DecisionLog& decisions() { return log_; }
  const BlockStoreConfig& store_config() const { return cfg_; }
  const StoreStats& store_stats() const { return sstats_; }

  /// FNV fold of every response frame this instance COMPUTED (sent or not):
  /// primary and backup must agree at quiesce — the byte-determinism probe.
  std::uint64_t tx_digest() const { return tx_digest_; }
  /// Device + cache + sessions + order counters: equal digests mean the two
  /// instances would serve every future request identically.
  std::uint64_t state_digest() const;
  std::uint64_t store_digest() const { return device_.digest(); }
  std::uint64_t cache_digest() const { return cache_.digest(); }
  std::size_t open_sessions() const { return sessions_.size(); }

  /// Quiesce helper (primary): flush every dirty page through the decision
  /// log so a replaying backup converges to the same device state.
  void flush_all_dirty();

  // --- reintegration ---------------------------------------------------------
  net::Bytes checkpoint() const override;
  void stage_restore(net::BytesView data) override;
  void reset_for_boot() override;

 protected:
  void on_accept(Conn& c) override;
  void on_data(Conn& c) override;
  void on_writable(Conn& c) override;
  void on_peer_closed(Conn& c) override;
  void on_conn_gone(Conn& c) override;

 private:
  /// Encoded-response awaiting emission (primary: commit-gated).
  struct Pending {
    net::Bytes wire;
    std::uint64_t commit_seq = 0;  // last decision seq the response encodes
    sim::SimTime ready_at;         // modeled device latency gate
  };
  /// Per-connection protocol state (keyed off Conn; ghosted on close while
  /// replay work remains).
  struct Side {
    Decoder decoder;
    std::uint64_t addr_key = 0;   // client ip<<32 | port<<16
    std::uint32_t session = 0;    // session OPENed on this connection
    bool peer_closed = false;
    std::deque<Pending> tx;       // responses not yet fully written
    std::size_t tx_off = 0;       // bytes of tx.front() already written
    std::deque<Envelope> queue;   // replay mode: parsed, awaiting kOrder
    bool protocol_error_counted = false;
  };
  struct Session {
    std::uint64_t addr_key = 0;
    std::uint64_t ops = 0;
  };
  /// A closed connection's unexecuted replay queue: pending kOrder decisions
  /// must still execute (store-state convergence) even though the responses
  /// have nowhere to go.
  struct Ghost {
    std::deque<Envelope> queue;
    std::uint32_t session = 0;
  };
  /// choose()-compatible decision source: record generates, replay consumes.
  using Chooser =
      std::function<std::uint64_t(sttcp::DecisionKind,
                                  const std::function<std::uint64_t()>&)>;

  static std::uint64_t addr_key_of(const tcp::FourTuple& t);
  sim::SimTime now() const;
  std::uint64_t now_us() const;
  Side& side_of(Conn& c);

  // Record path: parse + execute in arrival order.
  void pump_record(Conn& c, Side& s);
  void execute_one_record(Conn& c, Side& s, const Envelope& e);
  // Replay path: execute in decision order across all queues/ghosts. Also
  // drives the post-promotion backlog drain (record mode, queue nonempty).
  void pump_exec();
  /// The decision demand (kinds after kOrder) request `e` will consume,
  /// computed from CURRENT state — identical on primary and backup by
  /// induction, which is what makes atomic pre-checked replay sound.
  void compute_demand(const Envelope& e, std::uint32_t bound_session,
                      std::vector<sttcp::DecisionKind>* out) const;
  /// Mirrors of execute()'s control flow, used by compute_demand — any edit
  /// to one must keep the other reachable-condition-identical.
  bool session_ok(const Envelope& e, std::uint32_t bound_session) const;
  bool wants_session(const Envelope& e) const;
  bool wants_evict(const Envelope& e, std::uint32_t bound_session) const;
  /// Execute one request against the store; all choices via `ch`.
  /// Returns the response; `misses` counts device reads incurred.
  Envelope execute(const Envelope& req, std::uint64_t addr_key,
                   std::uint32_t* bound_session, const Chooser& ch,
                   std::size_t* misses);
  void do_evict(const Chooser& ch);
  void finish_response(Side* s, Conn* c, const Envelope& resp,
                       std::uint64_t commit_seq, std::size_t misses);

  // Emission (commit + device-latency gated on the primary).
  void pump_send(Conn& c, Side& s);
  void pump_all_send();
  void arm_emit_timer(sim::SimTime when);

  // Primary-side machinery.
  void writeback_tick();
  void on_promoted();
  void finish_promote_drain();
  void apply_cold_cache();

  void fold_tx(const net::Bytes& wire);

  BlockStoreConfig cfg_;
  sttcp::DecisionLog log_;
  sim::Rng rng_;
  BlockDevice device_;
  LruBlockCache cache_;
  std::map<std::uint32_t, Session> sessions_;
  /// Per-client-address cumulative executed-request counter — the kOrder
  /// identity. Persists across that address's successive connections (a
  /// recycled ephemeral port continues its count on both replicas).
  std::map<std::uint64_t, std::uint64_t> addr_seq_;

  std::map<Conn*, Side> sides_;
  std::map<std::uint64_t, Conn*> by_addr_;
  std::map<std::uint64_t, Ghost> ghosts_;
  /// Checkpointed per-connection state awaiting replica adoption.
  struct StagedSide {
    std::uint32_t session = 0;
    bool peer_closed = false;
    net::Bytes rx_buffered;  // decoder backlog
    net::Bytes tx_backlog;   // flattened unsent response bytes
  };
  std::map<tcp::FourTuple, StagedSide> staged_sides_;

  sim::PeriodicTimer writeback_timer_;
  sim::OneShotTimer emit_timer_;
  sim::OneShotTimer drain_timer_;
  bool cold_cache_pending_ = false;
  /// Promoted but still consuming the replayed-decision backlog: incoming
  /// bytes keep routing through the replay queues until it empties.
  bool promote_draining_ = false;

  std::uint64_t tx_digest_ = 0xcbf29ce484222325ULL;
  StoreStats sstats_;
};

}  // namespace sttcp::app
