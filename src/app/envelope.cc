#include "app/envelope.h"

#include "net/checksum.h"

namespace sttcp::app {

net::Bytes Envelope::serialize() const {
  net::Bytes out;
  out.reserve(kHeaderSize + payload.size());
  net::ByteWriter w(out);
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(type);
  w.u32(session);
  w.u32(req_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u16(0);  // checksum, patched below
  w.bytes(payload);
  const std::uint16_t c = net::internet_checksum(out);
  out[kChecksumOffset] = static_cast<std::uint8_t>(c >> 8);
  out[kChecksumOffset + 1] = static_cast<std::uint8_t>(c);
  return out;
}

Envelope make_request(MsgType t, std::uint32_t session, std::uint32_t req_id,
                      net::Bytes payload) {
  Envelope e;
  e.type = static_cast<std::uint8_t>(t);
  e.session = session;
  e.req_id = req_id;
  e.payload = std::move(payload);
  return e;
}

Envelope make_response(const Envelope& req, Status status,
                       std::uint64_t timestamp_us, net::BytesView data) {
  Envelope e;
  e.type = req.type | kResponseBit;
  e.session = req.session;
  e.req_id = req.req_id;
  e.payload.reserve(9 + data.size());
  net::ByteWriter w(e.payload);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(timestamp_us);
  w.bytes(data);
  return e;
}

std::optional<ResponseBody> parse_response_body(const Envelope& e) {
  try {
    net::ByteReader r(e.payload);
    ResponseBody b;
    const std::uint8_t s = r.u8();
    if (s > static_cast<std::uint8_t>(Status::kNotFound)) return std::nullopt;
    b.status = static_cast<Status>(s);
    b.timestamp_us = r.u64();
    b.data = net::to_bytes(r.rest());
    return b;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void Decoder::feed(net::BytesView data) {
  if (poisoned_) return;  // a poisoned stream buffers nothing further
  buf_.insert(buf_.end(), data.begin(), data.end());
}

Decoder::Result Decoder::next(Envelope* out) {
  if (poisoned_) return Result::kBad;
  if (buf_.size() < Envelope::kHeaderSize) return Result::kNeedMore;
  net::ByteReader r(buf_);
  const std::uint16_t magic = r.u16();
  const std::uint8_t version = r.u8();
  const std::uint8_t type = r.u8();
  const std::uint32_t session = r.u32();
  const std::uint32_t req_id = r.u32();
  const std::uint32_t len = r.u32();
  if (magic != Envelope::kMagic || version != Envelope::kVersion ||
      len > max_payload_) {
    poisoned_ = true;
    return Result::kBad;
  }
  const std::size_t total = Envelope::kHeaderSize + len;
  if (buf_.size() < total) return Result::kNeedMore;
  // A valid frame checksums to zero over header+payload (the stored field
  // complements the rest). Rejects bit flips anywhere in the frame.
  if (net::internet_checksum(net::BytesView(buf_).first(total)) != 0) {
    poisoned_ = true;
    return Result::kBad;
  }
  out->type = type;
  out->session = session;
  out->req_id = req_id;
  r.u16();  // checksum, verified above
  out->payload = net::to_bytes(r.bytes(len));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  return Result::kOk;
}

}  // namespace sttcp::app
