#include "app/client.h"

namespace sttcp::app {

DownloadClient::DownloadClient(tcp::TcpStack& stack, net::Ipv4Addr local_ip,
                               std::vector<net::SocketAddr> servers, Options opt)
    : stack_(stack), local_ip_(local_ip), servers_(std::move(servers)), opt_(opt) {
  if (!opt_.stall_timeout.is_zero()) {
    stall_timer_ = std::make_unique<sim::OneShotTimer>(stack_.world().loop());
  }
  if (auto* reg = stack_.world().metrics()) failover_timeline_ = &reg->timeline();
}

DownloadClient::~DownloadClient() = default;


void DownloadClient::start() {
  started_at_ = stack_.world().now();
  timeline_.push_back(Sample{started_at_, 0});
  connect();
}

void DownloadClient::connect() {
  const net::SocketAddr target = servers_[next_server_ % servers_.size()];
  ++connects_;
  conn_received_ = 0;
  if (stall_timer_ != nullptr) {
    stall_timer_->arm(opt_.stall_timeout, [this] {
      if (complete_ || conn_ == nullptr) return;
      stack_.world().trace().record("client", "stall_timeout");
      conn_->abort();
    });
  }
  tcp::TcpConnection::Callbacks cb;
  cb.on_readable = [this] { on_readable(); };
  cb.on_peer_closed = [this] {
    // Server finished the file and closed; close our side.
    if (conn_ != nullptr) conn_->close();
    if (received_ >= opt_.expected_bytes && !complete_) {
      complete_ = true;
      completed_at_ = stack_.world().now();
    }
  };
  cb.on_closed = [this](tcp::CloseReason reason) { on_closed(reason); };
  conn_ = &stack_.connect(local_ip_, target, std::move(cb));
}

void DownloadClient::on_readable() {
  net::Bytes data = conn_->read(1 << 20);
  if (data.empty()) return;
  if (stall_timer_ != nullptr && !complete_) {
    stall_timer_->arm(opt_.stall_timeout, [this] {
      if (complete_ || conn_ == nullptr) return;
      stack_.world().trace().record("client", "stall_timeout");
      conn_->abort();
    });
  }
  if (!pattern_verify(conn_received_, data)) corrupt_ = true;
  conn_received_ += data.size();
  received_ += data.size();
  if (failover_timeline_ != nullptr) failover_timeline_->client_byte(stack_.world().now());
  timeline_.push_back(Sample{stack_.world().now(), received_});
  if (received_ >= opt_.expected_bytes && !complete_) {
    complete_ = true;
    completed_at_ = stack_.world().now();
  }
}

void DownloadClient::on_closed(tcp::CloseReason reason) {
  conn_ = nullptr;
  if (stall_timer_ != nullptr) stall_timer_->cancel();
  if (complete_) return;
  if (reason != tcp::CloseReason::kGraceful || received_ < opt_.expected_bytes) {
    ++connection_failures_;
    stack_.world().trace().record("client", "connection_failed",
                                  tcp::to_string(reason));
    if (opt_.reconnect) {
      // The baseline behaviour without ST-TCP: start over against the next
      // server. Progress restarts from zero (the FileServer is stateless).
      ++next_server_;
      received_ = 0;
      stack_.world().loop().schedule_after(opt_.reconnect_delay,
                                           [this] { connect(); });
    }
  }
}

sim::Duration DownloadClient::max_stall() const {
  sim::Duration worst = sim::Duration::zero();
  for (std::size_t i = 1; i < timeline_.size(); ++i) {
    const sim::Duration gap = timeline_[i].at - timeline_[i - 1].at;
    if (gap > worst) worst = gap;
  }
  return worst;
}

sim::SimTime DownloadClient::max_stall_start() const {
  sim::Duration worst = sim::Duration::zero();
  sim::SimTime start = started_at_;
  for (std::size_t i = 1; i < timeline_.size(); ++i) {
    const sim::Duration gap = timeline_[i].at - timeline_[i - 1].at;
    if (gap > worst) {
      worst = gap;
      start = timeline_[i - 1].at;
    }
  }
  return start;
}

// --- StreamClient ------------------------------------------------------------

StreamClient::StreamClient(tcp::TcpStack& stack, net::Ipv4Addr local_ip,
                           net::SocketAddr server, std::size_t record_size,
                           int pipeline)
    : stack_(stack),
      local_ip_(local_ip),
      server_(server),
      record_size_(record_size),
      pipeline_(static_cast<std::uint64_t>(pipeline)) {
  if (auto* reg = stack_.world().metrics()) failover_timeline_ = &reg->timeline();
}

void StreamClient::start() {
  tcp::TcpConnection::Callbacks cb;
  cb.on_established = [this] { maybe_request(); };
  cb.on_readable = [this] { on_readable(); };
  cb.on_closed = [this](tcp::CloseReason) {
    closed_ = true;
    conn_ = nullptr;
  };
  conn_ = &stack_.connect(local_ip_, server_, std::move(cb));
}

void StreamClient::stop() {
  stopping_ = true;
  if (conn_ != nullptr) conn_->close();
}

void StreamClient::maybe_request() {
  if (conn_ == nullptr || stopping_) return;
  const std::uint64_t outstanding = requested_ - received_ / record_size_;
  while (requested_ - received_ / record_size_ < pipeline_) {
    const net::Bytes one(1, 0x52);  // 'R'
    if (conn_->send(one) == 0) break;
    ++requested_;
  }
  (void)outstanding;
}

void StreamClient::on_readable() {
  net::Bytes data = conn_->read(1 << 20);
  if (data.empty()) return;
  if (!pattern_verify(received_, data)) corrupt_ = true;
  received_ += data.size();
  if (failover_timeline_ != nullptr) failover_timeline_->client_byte(stack_.world().now());
  rx_times_.push_back(stack_.world().now());
  maybe_request();
}

sim::Duration StreamClient::max_stall() const {
  sim::Duration worst = sim::Duration::zero();
  for (std::size_t i = 1; i < rx_times_.size(); ++i) {
    const sim::Duration gap = rx_times_[i] - rx_times_[i - 1];
    if (gap > worst) worst = gap;
  }
  return worst;
}

}  // namespace sttcp::app
