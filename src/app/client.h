// Client applications with built-in measurement.
//
// DownloadClient is the paper's GUI pie-chart client reduced to its
// observables: it records a (time, cumulative-bytes) timeline while
// downloading, verifies every byte against the shared pattern, counts
// connection failures, and can fail over to an alternate server address by
// reconnecting — the "without ST-TCP, the client would have to re-connect"
// baseline of Demo 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/pattern.h"
#include "obs/metrics.h"
#include "tcp/stack.h"

namespace sttcp::app {

class DownloadClient {
 public:
  struct Options {
    /// Stop (success) after this many bytes; the FileServer's close also
    /// completes the download.
    std::uint64_t expected_bytes = 0;
    /// On connection failure before completion, reconnect (to the next
    /// address in `servers`) after this delay. Zero disables reconnection.
    sim::Duration reconnect_delay = sim::Duration::zero();
    bool reconnect = false;
    /// Application-level liveness: if no bytes arrive for this long while
    /// the download is incomplete, abort the connection (the paper's GUI
    /// user watching a frozen pie chart). Zero disables.
    sim::Duration stall_timeout = sim::Duration::zero();
  };

  struct Sample {
    sim::SimTime at;
    std::uint64_t total_bytes;
  };

  DownloadClient(tcp::TcpStack& stack, net::Ipv4Addr local_ip,
                 std::vector<net::SocketAddr> servers, Options opt);
  ~DownloadClient();

  void start();

  // --- results ---------------------------------------------------------------
  bool complete() const { return complete_; }
  bool corrupt() const { return corrupt_; }
  std::uint64_t received() const { return received_; }
  /// Bytes received on the CURRENT connection (resets on reconnect).
  std::uint64_t received_this_conn() const { return conn_received_; }
  int connection_failures() const { return connection_failures_; }
  int connects() const { return connects_; }
  sim::SimTime completed_at() const { return completed_at_; }
  sim::SimTime started_at() const { return started_at_; }
  const std::vector<Sample>& timeline() const { return timeline_; }

  /// Longest gap between consecutive receive events strictly inside the
  /// transfer — the client-visible failover time (Demo 1/2).
  sim::Duration max_stall() const;
  /// When the longest stall began (lets benches correlate with the crash).
  sim::SimTime max_stall_start() const;

 private:
  void connect();
  void on_readable();
  void on_closed(tcp::CloseReason reason);

  tcp::TcpStack& stack_;
  net::Ipv4Addr local_ip_;
  std::vector<net::SocketAddr> servers_;
  Options opt_;
  tcp::TcpConnection* conn_ = nullptr;

  std::uint64_t received_ = 0;       // across reconnects (for progress)
  std::uint64_t conn_received_ = 0;  // verified against pattern per-connection
  bool corrupt_ = false;
  bool complete_ = false;
  int connection_failures_ = 0;
  int connects_ = 0;
  std::size_t next_server_ = 0;
  sim::SimTime started_at_;
  sim::SimTime completed_at_;
  std::vector<Sample> timeline_;
  std::unique_ptr<sim::OneShotTimer> stall_timer_;
  obs::FailoverTimeline* failover_timeline_ = nullptr;  // null = telemetry off
};

/// Drives a StreamServer: sends a request byte whenever fewer than
/// `pipeline` records are outstanding, verifies the response stream.
class StreamClient {
 public:
  StreamClient(tcp::TcpStack& stack, net::Ipv4Addr local_ip, net::SocketAddr server,
               std::size_t record_size, int pipeline = 4);

  void start();
  void stop();  // graceful close

  std::uint64_t records_completed() const { return received_ / record_size_; }
  std::uint64_t received() const { return received_; }
  bool corrupt() const { return corrupt_; }
  bool closed() const { return closed_; }
  sim::Duration max_stall() const;

 private:
  void maybe_request();
  void on_readable();

  tcp::TcpStack& stack_;
  net::Ipv4Addr local_ip_;
  net::SocketAddr server_;
  std::size_t record_size_;
  std::uint64_t pipeline_;
  tcp::TcpConnection* conn_ = nullptr;
  std::uint64_t requested_ = 0;  // records requested
  std::uint64_t received_ = 0;   // payload bytes verified
  bool corrupt_ = false;
  bool closed_ = false;
  bool stopping_ = false;
  std::vector<sim::SimTime> rx_times_;
  obs::FailoverTimeline* failover_timeline_ = nullptr;  // null = telemetry off
};

}  // namespace sttcp::app
