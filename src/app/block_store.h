// Block-device-backed store with an LRU page cache — the stateful half of
// app::BlockStoreServer (docs/APPLICATION.md).
//
// The device is a fixed array of fixed-size blocks with an allocation
// bitmap. The cache fronts it: GET misses read a block into a page, PUT
// dirties a page in place (write-back, not write-through), and a periodic
// writeback pass flushes the oldest dirty pages. Eviction deliberately
// models a nondeterministic policy — the victim is drawn at random from the
// K least-recently-used resident pages, the way sampled-LRU policies (e.g.
// redis) behave — so a primary and backup CANNOT stay identical by
// construction: the victim must travel through the logged-decision channel
// (sttcp/decision.h). Everything else here is deterministic given the same
// operation order.
//
// digest() folds content, allocation, dirtiness and LRU order into one
// value: two instances that report equal digests would also behave
// identically on every future operation.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "net/bytes.h"

namespace sttcp::app {

/// Fixed-geometry block device with an allocation bitmap.
class BlockDevice {
 public:
  BlockDevice(std::uint32_t blocks, std::uint32_t block_size);

  std::uint32_t blocks() const { return blocks_; }
  std::uint32_t block_size() const { return block_size_; }

  bool allocated(std::uint32_t b) const { return allocated_[b]; }
  void allocate(std::uint32_t b) { allocated_[b] = 1; }
  /// Overwrite one block (short data is zero-padded) and mark it allocated.
  void write(std::uint32_t b, net::BytesView data);
  net::BytesView read(std::uint32_t b) const;
  /// Deallocate and zero — a deleted block reads back as fresh.
  void deallocate(std::uint32_t b);

  std::uint64_t digest() const;
  void serialize(net::ByteWriter& w) const;
  bool restore(net::ByteReader& r);

 private:
  std::uint32_t blocks_;
  std::uint32_t block_size_;
  std::vector<std::uint8_t> allocated_;
  net::Bytes data_;  // blocks_ * block_size_, flat
};

/// LRU page cache over BlockDevice, dirty-page write-back.
class LruBlockCache {
 public:
  LruBlockCache(std::size_t capacity, std::uint32_t block_size);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return pages_.size(); }
  bool full() const { return pages_.size() >= capacity_; }
  std::size_t dirty_count() const { return dirty_count_; }

  bool contains(std::uint32_t b) const { return pages_.count(b) != 0; }
  /// Resident page data; touches LRU. nullptr on miss.
  const net::Bytes* get(std::uint32_t b);
  /// Overwrite/insert a page as dirty (short data zero-padded); touches LRU.
  /// Caller guarantees a free slot (evict first when full).
  void put(std::uint32_t b, net::BytesView data);
  /// Insert a clean page read from the device. Caller guarantees a slot.
  void insert_clean(std::uint32_t b, net::BytesView data);
  /// Drop a page without writeback (DELETE path). No-op if absent.
  void drop(std::uint32_t b);

  /// The K least-recently-used resident blocks, LRU-most first — the
  /// candidate set the primary draws its eviction victim from.
  std::vector<std::uint32_t> victim_candidates(std::size_t k) const;
  /// Write back if dirty, then drop. The victim came either from the local
  /// draw (primary) or the replayed kEvict decision (backup).
  void evict(std::uint32_t b, BlockDevice& dev);
  /// The n oldest-dirtied blocks in dirty order — the writeback batch.
  std::vector<std::uint32_t> oldest_dirty(std::size_t n) const;
  /// Write one page back, keep it resident and clean. No-op if not dirty.
  void flush(std::uint32_t b, BlockDevice& dev);
  /// Flush everything dirty (quiesce / pre-drop), dirty order.
  std::size_t flush_all(BlockDevice& dev);
  /// Drop every clean page — the cold-cache takeover ablation.
  void drop_all_clean();

  std::uint64_t digest() const;
  void serialize(net::ByteWriter& w) const;
  bool restore(net::ByteReader& r);

 private:
  struct Page {
    net::Bytes data;
    bool dirty = false;
    std::list<std::uint32_t>::iterator lru_pos;   // position in lru_
    std::list<std::uint32_t>::iterator dirty_pos; // position in dirty_ (if dirty)
  };
  void touch(std::uint32_t b, Page& p);

  std::size_t capacity_;
  std::uint32_t block_size_;
  std::map<std::uint32_t, Page> pages_;
  std::list<std::uint32_t> lru_;    // front = most recent
  std::list<std::uint32_t> dirty_;  // front = oldest dirtied
  std::size_t dirty_count_ = 0;
};

}  // namespace sttcp::app
