#include "obs/timeline.h"

#include <sstream>

namespace sttcp::obs {

namespace {
std::size_t idx(Milestone m) { return static_cast<std::size_t>(m); }
}  // namespace

const char* to_string(Milestone m) {
  switch (m) {
    case Milestone::kFaultInjected: return "fault_injected";
    case Milestone::kLastHeartbeat: return "last_heartbeat";
    case Milestone::kProgressStall: return "progress_stall";
    case Milestone::kChannelDead: return "channel_dead";
    case Milestone::kStonith: return "stonith";
    case Milestone::kTakeover: return "takeover";
    case Milestone::kFirstByteAfterTakeover: return "first_byte_after_takeover";
    case Milestone::kReintegrationStart: return "reintegration_start";
    case Milestone::kReintegrationComplete: return "reintegration_complete";
    case Milestone::kCount: break;
  }
  return "?";
}

void FailoverTimeline::mark(Milestone m, sim::SimTime at) {
  if (m == Milestone::kCount) return;
  if (!marks_[idx(m)].has_value()) marks_[idx(m)] = at;
}

void FailoverTimeline::heartbeat_seen(sim::SimTime at) {
  if (marks_[idx(Milestone::kChannelDead)].has_value()) return;  // frozen
  marks_[idx(Milestone::kLastHeartbeat)] = at;
}

void FailoverTimeline::client_byte(sim::SimTime at) {
  if (!marks_[idx(Milestone::kTakeover)].has_value()) return;
  mark(Milestone::kFirstByteAfterTakeover, at);
}

std::optional<sim::SimTime> FailoverTimeline::at(Milestone m) const {
  if (m == Milestone::kCount) return std::nullopt;
  return marks_[idx(m)];
}

bool FailoverTimeline::complete() const {
  return at(Milestone::kFaultInjected) && at(Milestone::kChannelDead) &&
         at(Milestone::kTakeover) && at(Milestone::kFirstByteAfterTakeover);
}

std::optional<FailoverTimeline::Segments> FailoverTimeline::segments() const {
  if (!complete()) return std::nullopt;
  const sim::SimTime fault = *at(Milestone::kFaultInjected);
  const sim::SimTime dead = *at(Milestone::kChannelDead);
  const sim::SimTime took = *at(Milestone::kTakeover);
  const sim::SimTime byte = *at(Milestone::kFirstByteAfterTakeover);
  Segments s;
  s.detection_ms = (dead - fault).to_millis();
  s.takeover_ms = (took - dead).to_millis();
  s.retransmission_ms = (byte - took).to_millis();
  s.total_ms = (byte - fault).to_millis();
  return s;
}

void FailoverTimeline::reset() {
  for (auto& m : marks_) m.reset();
  conviction_reason_.clear();
  conviction_lag_bytes_ = 0;
  convicted_member_.clear();
  promotion_winner_.clear();
  promotion_member_ = -1;
  promotion_epoch_ = 0;
}

void FailoverTimeline::set_conviction(const std::string& reason,
                                      std::uint64_t lag_bytes,
                                      const std::string& member) {
  if (!conviction_reason_.empty()) return;  // first conviction wins
  conviction_reason_ = reason;
  conviction_lag_bytes_ = lag_bytes;
  convicted_member_ = member;
}

void FailoverTimeline::set_promotion(const std::string& winner, int member,
                                     std::uint32_t epoch) {
  if (!promotion_winner_.empty()) return;  // first win is THE failover's
  promotion_winner_ = winner;
  promotion_member_ = member;
  promotion_epoch_ = epoch;
}

void FailoverTimeline::write_json(std::ostream& out) const {
  out << "{\"milestones_ms\":{";
  bool first = true;
  for (std::size_t i = 0; i < marks_.size(); ++i) {
    if (!marks_[i].has_value()) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << to_string(static_cast<Milestone>(i))
        << "\":" << marks_[i]->to_millis();
  }
  out << "}";
  if (!conviction_reason_.empty()) {
    out << ",\"conviction\":{\"reason\":\"" << conviction_reason_
        << "\",\"lag_bytes\":" << conviction_lag_bytes_;
    if (!convicted_member_.empty()) {
      out << ",\"member\":\"" << convicted_member_ << "\"";
    }
    out << "}";
  }
  if (!promotion_winner_.empty()) {
    out << ",\"promotion\":{\"winner\":\"" << promotion_winner_
        << "\",\"member\":" << promotion_member_
        << ",\"epoch\":" << promotion_epoch_ << "}";
  }
  if (const auto s = segments()) {
    out << ",\"segments_ms\":{\"detection\":" << s->detection_ms
        << ",\"takeover\":" << s->takeover_ms
        << ",\"retransmission\":" << s->retransmission_ms
        << ",\"total\":" << s->total_ms << "}";
  }
  out << "}";
}

std::string FailoverTimeline::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace sttcp::obs
