#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace sttcp::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  // Octave o = floor(log2(value)) >= 3; the 3 bits after the leading one
  // select the linear sub-bucket. For o == 3 the result equals `value`, so
  // the linear and log-linear regions meet without a gap.
  const int o = 63 - std::countl_zero(value);
  const int sub = static_cast<int>((value >> (o - 3)) & (kSubBuckets - 1));
  return kSubBuckets * (o - 3) + kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lower_bound(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int oct = (index - kSubBuckets) / kSubBuckets + 3;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  return (std::uint64_t{1} << oct) +
         static_cast<std::uint64_t>(sub) * (std::uint64_t{1} << (oct - 3));
}

void Histogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  buckets_[static_cast<std::size_t>(bucket_index(value))] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += count;
  sum_ += value * count;
}

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil), clamped into [1, count].
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      return std::min(std::max(bucket_lower_bound(i), min_), max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  for (int i = 0; i < kBucketCount; ++i) {
    buckets_[static_cast<std::size_t>(i)] += other.buckets_[static_cast<std::size_t>(i)];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << c.value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"value\":" << g.value() << ",\"max\":" << g.max()
        << ",\"min\":" << g.min() << "}";
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << h.count() << ",\"sum\":" << h.sum()
        << ",\"min\":" << h.min() << ",\"max\":" << h.max()
        << ",\"mean\":" << h.mean() << ",\"p50\":" << h.percentile(0.50)
        << ",\"p90\":" << h.percentile(0.90) << ",\"p99\":" << h.percentile(0.99)
        << "}";
  }
  out << "},\"timeline\":";
  timeline_.write_json(out);
  out << "}";
}

std::string MetricsRegistry::json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace sttcp::obs
