// Metrics: a zero-overhead-when-off observability registry.
//
// Components bind named instruments once (at construction / start), keeping a
// nullable pointer; with no registry attached to the World every hot-path
// update is a single null check. With a registry attached:
//  * Counter    — monotonically increasing event count;
//  * Gauge      — instantaneous level with max tracking (queue depths,
//                 hold-buffer occupancy);
//  * Histogram  — log-linear buckets (8 linear sub-buckets per octave, the
//                 HdrHistogram scheme) for latency / size distributions with
//                 constant-time record and cheap merge.
//
// Instruments live as long as the registry; references handed out by
// counter()/gauge()/histogram() are stable (node-based map storage). The
// whole registry serialises to JSON for the benches' structured output.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace sttcp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }
  void set(std::uint64_t v) { v_ = v; }  // snapshot import from a Stats struct

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) {
    v_ = v;
    if (samples_ == 0 || v > max_) max_ = v;
    if (samples_ == 0 || v < min_) min_ = v;
    ++samples_;
  }
  void add(std::int64_t delta) { set(v_ + delta); }

  std::int64_t value() const { return v_; }
  std::int64_t max() const { return max_; }
  std::int64_t min() const { return min_; }
  std::uint64_t samples() const { return samples_; }

 private:
  std::int64_t v_ = 0;
  std::int64_t max_ = 0;
  std::int64_t min_ = 0;
  std::uint64_t samples_ = 0;
};

/// Log-linear histogram of non-negative integer values. Values < 8 get exact
/// unit buckets; above that, each power-of-two octave is split into 8 linear
/// sub-buckets, bounding the relative bucket width at 12.5% across the full
/// 64-bit range (496 buckets total).
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;  // per octave; also the linear cutoff
  static constexpr int kBucketCount = 8 * 61 + kSubBuckets;  // octaves 3..63

  void record(std::uint64_t value, std::uint64_t count = 1);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0,1] (lower bound of the containing bucket;
  /// exact for values < 8).
  std::uint64_t percentile(double q) const;

  /// Pointwise sum of two histograms (e.g. per-connection -> per-host).
  void merge(const Histogram& other);

  /// Bucket index for a value, and the smallest value mapping to a bucket.
  static int bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lower_bound(int index);

  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;  // allocated on first record
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Look up or create. Returned references remain valid for the registry's
  /// lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  /// The scenario-wide failover timeline (see obs/timeline.h).
  FailoverTimeline& timeline() { return timeline_; }
  const FailoverTimeline& timeline() const { return timeline_; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  /// {"counters":{...},"gauges":{...},"histograms":{...},"timeline":{...}}
  void write_json(std::ostream& out) const;
  std::string json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  FailoverTimeline timeline_;
};

}  // namespace sttcp::obs
