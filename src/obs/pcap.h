// PcapWriter: serialise simulated Ethernet frames into a real libpcap
// capture file (the classic 24-byte-header format, LINKTYPE_ETHERNET),
// readable by Wireshark / tshark / tcpdump. Simulated nanoseconds map onto
// the epoch, so a capture of a scenario starts at 1970-01-01 00:00:00 and
// the timestamps ARE the simulation clock.
//
// PcapReader re-parses the format — the golden tests' (and, where tshark is
// unavailable, the acceptance check's) independent decoder.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sttcp::obs {

inline constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond stamps
inline constexpr std::uint16_t kPcapVersionMajor = 2;
inline constexpr std::uint16_t kPcapVersionMinor = 4;
inline constexpr std::uint32_t kPcapSnapLen = 65535;
inline constexpr std::uint32_t kLinkTypeEthernet = 1;

class PcapWriter {
 public:
  /// Write to a file (created/truncated). Check ok() afterwards.
  explicit PcapWriter(const std::string& path);
  /// Write to an externally-owned stream (tests); caller keeps it alive.
  explicit PcapWriter(std::ostream& out);
  ~PcapWriter();
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return out_ != nullptr && out_->good(); }

  /// Append one frame, stamped with the simulation clock.
  void record(sim::SimTime at, std::span<const std::uint8_t> frame);

  std::uint64_t frames_written() const { return frames_; }
  void flush();

 private:
  void write_file_header();

  std::unique_ptr<std::ofstream> owned_;  // set for the path constructor
  std::ostream* out_ = nullptr;
  std::uint64_t frames_ = 0;
};

struct PcapRecord {
  std::int64_t ts_ns = 0;  // microsecond precision (the format's limit)
  std::vector<std::uint8_t> frame;
};

struct PcapFile {
  std::uint32_t magic = 0;
  std::uint16_t version_major = 0;
  std::uint16_t version_minor = 0;
  std::uint32_t snaplen = 0;
  std::uint32_t linktype = 0;
  std::vector<PcapRecord> records;
};

class PcapReader {
 public:
  /// Parse an entire capture. nullopt on a malformed header or truncated
  /// record.
  static std::optional<PcapFile> parse(std::span<const std::uint8_t> data);
  static std::optional<PcapFile> parse_file(const std::string& path);
};

}  // namespace sttcp::obs
