// FailoverTimeline: the canonical ST-TCP failover milestones, stamped once
// per scenario so failover latency decomposes into its components:
//
//   fault ──────────► channel dead ───► takeover ───► first byte at client
//          detection               STONITH+switch   TCP retransmission wait
//
// Components stamp milestones as they happen (the endpoint on detection /
// STONITH / takeover, the client application on the first post-takeover
// byte); every mark is first-wins, so the record describes THE failover of
// the run. kLastHeartbeat is the exception: it tracks the most recent
// heartbeat arrival continuously and freezes when a channel is declared
// dead — the gap between it and kChannelDead is the raw detection latency
// the miss-threshold logic added.
#pragma once

#include <array>
#include <optional>
#include <ostream>
#include <string>

#include "sim/time.h"

namespace sttcp::obs {

enum class Milestone {
  kFaultInjected,           // the harness fired the fault
  kLastHeartbeat,           // last heartbeat received before conviction
  kProgressStall,           // grey failure: peer counters first seen frozen
                            // under demand (stamped when the stagnation
                            // detector fires; heartbeats were still arriving)
  kChannelDead,             // detector declared the peer failed
  kStonith,                 // power-off command issued
  kTakeover,                // backup assumed the connections (or primary
                            // entered non-FT mode)
  kFirstByteAfterTakeover,  // first payload byte reached the client again
  kReintegrationStart,      // survivor accepted a rejoin request and began
                            // streaming its snapshot
  kReintegrationComplete,   // pair back in FT mode (replication resumed)
  kCount,
};

const char* to_string(Milestone m);

class FailoverTimeline {
 public:
  /// Stamp a milestone (first occurrence wins).
  void mark(Milestone m, sim::SimTime at);

  /// Heartbeat arrivals overwrite kLastHeartbeat until kChannelDead is
  /// marked, after which the value freezes.
  void heartbeat_seen(sim::SimTime at);

  /// Client data arrival: stamps kFirstByteAfterTakeover on the first byte
  /// observed once kTakeover is marked; a no-op before the takeover.
  void client_byte(sim::SimTime at);

  std::optional<sim::SimTime> at(Milestone m) const;

  /// All of fault / dead / takeover / first-byte are stamped.
  bool complete() const;

  /// The failover decomposition, available once complete():
  ///   detection      = channel dead − fault injected
  ///   takeover       = takeover − channel dead
  ///   retransmission = first client byte − takeover
  ///   total          = first client byte − fault injected (== the sum)
  struct Segments {
    double detection_ms = 0;
    double takeover_ms = 0;
    double retransmission_ms = 0;
    double total_ms = 0;
  };
  std::optional<Segments> segments() const;

  void reset();

  /// Record WHY the peer was convicted (the detector's trace event, e.g.
  /// "progress_stall_detected") and the worst byte lag any tracker saw at
  /// that moment. First conviction wins, like every milestone. Group mode
  /// additionally names the convicted member so a multi-failure verdict can
  /// attribute who was convicted (and, via set_promotion, who won).
  void set_conviction(const std::string& reason, std::uint64_t lag_bytes,
                      const std::string& member = std::string());
  const std::string& conviction_reason() const { return conviction_reason_; }
  std::uint64_t conviction_lag_bytes() const { return conviction_lag_bytes_; }
  const std::string& convicted_member() const { return convicted_member_; }

  /// Group mode: record the ranked-promotion winner (host name, its member
  /// index, and the epoch its winning view announced). First win stamps the
  /// failover; later reintegration-era changes do not overwrite it.
  void set_promotion(const std::string& winner, int member, std::uint32_t epoch);
  const std::string& promotion_winner() const { return promotion_winner_; }
  int promotion_member() const { return promotion_member_; }
  std::uint32_t promotion_epoch() const { return promotion_epoch_; }

  /// {"milestones_ms":{...},"conviction":{...},"segments_ms":{...}}
  /// (conviction when a detector fired, segments when complete).
  void write_json(std::ostream& out) const;
  std::string json() const;

 private:
  std::array<std::optional<sim::SimTime>, static_cast<std::size_t>(Milestone::kCount)>
      marks_;
  std::string conviction_reason_;
  std::uint64_t conviction_lag_bytes_ = 0;
  std::string convicted_member_;
  std::string promotion_winner_;
  int promotion_member_ = -1;
  std::uint32_t promotion_epoch_ = 0;
};

}  // namespace sttcp::obs
