#include "obs/pcap.h"

#include <algorithm>
#include <iterator>

namespace sttcp::obs {

namespace {

// The pcap format is native-endian: the magic tells readers which. We write
// little-endian explicitly so the files are byte-identical across hosts.
void put_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v));
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
}

class LeReader {
 public:
  explicit LeReader(std::span<const std::uint8_t> data) : data_(data) {}
  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (!need(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

 private:
  bool need(std::size_t n) {
    if (pos_ + n > data_.size()) ok_ = false;
    return ok_;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

PcapWriter::PcapWriter(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::binary | std::ios::trunc)) {
  out_ = owned_.get();
  if (ok()) write_file_header();
}

PcapWriter::PcapWriter(std::ostream& out) : out_(&out) { write_file_header(); }

PcapWriter::~PcapWriter() { flush(); }

void PcapWriter::write_file_header() {
  std::vector<std::uint8_t> h;
  h.reserve(24);
  put_u32(h, kPcapMagic);
  put_u16(h, kPcapVersionMajor);
  put_u16(h, kPcapVersionMinor);
  put_u32(h, 0);  // thiszone
  put_u32(h, 0);  // sigfigs
  put_u32(h, kPcapSnapLen);
  put_u32(h, kLinkTypeEthernet);
  out_->write(reinterpret_cast<const char*>(h.data()),
              static_cast<std::streamsize>(h.size()));
}

void PcapWriter::record(sim::SimTime at, std::span<const std::uint8_t> frame) {
  if (!ok()) return;
  const std::int64_t ns = at.ns();
  const auto incl = static_cast<std::uint32_t>(
      std::min<std::size_t>(frame.size(), kPcapSnapLen));
  std::vector<std::uint8_t> h;
  h.reserve(16 + incl);
  put_u32(h, static_cast<std::uint32_t>(ns / 1'000'000'000));
  put_u32(h, static_cast<std::uint32_t>((ns % 1'000'000'000) / 1'000));
  put_u32(h, incl);
  put_u32(h, static_cast<std::uint32_t>(frame.size()));
  h.insert(h.end(), frame.begin(), frame.begin() + incl);
  out_->write(reinterpret_cast<const char*>(h.data()),
              static_cast<std::streamsize>(h.size()));
  ++frames_;
}

void PcapWriter::flush() {
  if (out_ != nullptr) out_->flush();
}

std::optional<PcapFile> PcapReader::parse(std::span<const std::uint8_t> data) {
  LeReader r(data);
  PcapFile f;
  f.magic = r.u32();
  f.version_major = r.u16();
  f.version_minor = r.u16();
  r.u32();  // thiszone
  r.u32();  // sigfigs
  f.snaplen = r.u32();
  f.linktype = r.u32();
  if (!r.ok() || f.magic != kPcapMagic) return std::nullopt;
  while (r.remaining() > 0) {
    const std::uint32_t ts_sec = r.u32();
    const std::uint32_t ts_usec = r.u32();
    const std::uint32_t incl = r.u32();
    const std::uint32_t orig = r.u32();
    if (!r.ok() || incl > f.snaplen || incl > orig) return std::nullopt;
    PcapRecord rec;
    rec.ts_ns = std::int64_t{ts_sec} * 1'000'000'000 + std::int64_t{ts_usec} * 1'000;
    rec.frame = r.bytes(incl);
    if (!r.ok()) return std::nullopt;
    f.records.push_back(std::move(rec));
  }
  return f;
}

std::optional<PcapFile> PcapReader::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  return parse(data);
}

}  // namespace sttcp::obs
