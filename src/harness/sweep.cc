#include "harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

namespace sttcp::harness {

namespace {

unsigned default_threads() {
  if (const char* env = std::getenv("STTCP_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads != 0 ? threads : default_threads()) {}

void SweepRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& job) const {
  if (count == 0) return;

  // Per-job exception slots: rethrowing the lowest failing index keeps error
  // behavior independent of which worker hit it first.
  std::vector<std::exception_ptr> errors(count);

  const auto worker = [&](std::atomic<std::size_t>& next) {
    for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      try {
        job(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::atomic<std::size_t> next{0};
  const std::size_t pool =
      std::min<std::size_t>(threads_, count);
  if (pool <= 1) {
    worker(next);  // inline: no thread spawn for serial sweeps
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) {
      workers.emplace_back([&] { worker(next); });
    }
    for (auto& w : workers) w.join();
  }

  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace sttcp::harness
