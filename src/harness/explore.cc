#include "harness/explore.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "app/client.h"
#include "app/server.h"
#include "harness/invariants.h"
#include "harness/scenario.h"
#include "sim/event_loop.h"

namespace sttcp::harness {

namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv_mix(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;

}  // namespace

Explorer::Explorer(ExploreOptions opts) : opts_(opts) {}

std::uint64_t Explorer::state_digest(sim::EventLoop& loop, Scenario& sc,
                                     const app::DownloadClient& client) {
  std::uint64_t h = kFnvBasis;
  // Pending events as offsets from now. Sequence numbers are excluded: they
  // encode allocation history, and two interleavings that converged to the
  // same semantic state differ only in history.
  const sim::SimTime now = loop.now();
  for (const auto& e : loop.ready_events(sim::SimTime::never())) {
    h = fnv_mix(h, static_cast<std::uint64_t>((e.at - now).ns()));
  }
  h = fnv_mix(h, client.received());
  // Liveness bitmap: client, primary, backups..., gateway. At one backup the
  // layout (and every later mix) is bit-identical to the historic pair form.
  std::uint64_t alive =
      (sc.client().alive() ? 1u : 0u) | (sc.primary().alive() ? 2u : 0u);
  std::uint64_t bit = 4;
  for (int b = 0; b < sc.backup_count(); ++b, bit <<= 1) {
    if (sc.backup_member(b).alive()) alive |= bit;
  }
  if (sc.gateway().alive()) alive |= bit;
  h = fnv_mix(h, alive);
  std::vector<tcp::TcpStack*> stacks = {&sc.client_stack(),
                                        &sc.primary_stack()};
  for (int b = 0; b < sc.backup_count(); ++b) {
    stacks.push_back(&sc.backup_member_stack(b));
  }
  for (tcp::TcpStack* s : stacks) {
    h = fnv_mix(h, s->connection_count());
    h = fnv_mix(h, s->pending_segments());
    h = fnv_mix(h, s->memory_bytes());
  }
  // Failover mode markers: these trace events fire at most once per run, so
  // their counts are state, not history.
  h = fnv_mix(h, sc.world().trace().count("takeover"));
  h = fnv_mix(h, sc.world().trace().count("stonith"));
  h = fnv_mix(h, sc.world().trace().count("non_ft_mode"));
  if (sc.backup_count() > 1) {
    // Promotion-race markers (group mode only, so pair digests are
    // unchanged): these distinguish "convicted, racing" from "promoted".
    h = fnv_mix(h, sc.world().trace().count("member_convicted"));
    h = fnv_mix(h, sc.world().trace().count("promoted"));
    h = fnv_mix(h, sc.world().trace().count("view_announced"));
  }
  return h;
}

Explorer::TrialResult Explorer::run_trial(std::vector<std::uint8_t>& choices,
                                          std::vector<std::uint8_t>& branches,
                                          bool extend, ExploreStats* stats) {
  ScenarioConfig cfg;
  cfg.seed = opts_.seed;
  cfg.sttcp.max_delay_fin = sim::Duration::seconds(20);
  cfg.extra_backups = opts_.extra_backups;
  Scenario sc(std::move(cfg));

  app::FileServer p_app(sc.primary_stack(), sc.service_port(), opts_.file_size);
  std::vector<std::unique_ptr<app::FileServer>> b_apps;
  for (int b = 0; b < sc.backup_count(); ++b) {
    b_apps.push_back(std::make_unique<app::FileServer>(
        sc.backup_member_stack(b), sc.service_port(), opts_.file_size));
  }
  app::DownloadClient::Options copt;
  copt.expected_bytes = opts_.file_size;
  app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                             {sc.connect_addr()}, copt);

  InvariantChecker::Options iopt;
  iopt.expected_bytes = opts_.file_size;
  iopt.expect_masked = true;
  InvariantChecker checker(sc, iopt);

  sc.inject(Fault::Crash(Node::kPrimary).at(opts_.crash_at));
  if (opts_.crash_rank1) {
    sc.inject(Fault::Crash(Node::kBackup).at(opts_.crash_at));
  }
  client.start();

  sim::EventLoop& loop = sc.world().loop();
  const sim::SimTime t0 = loop.now();
  const sim::SimTime win_start = t0 + opts_.crash_at + opts_.margin;
  sim::SimTime win_end = win_start + opts_.window;

  // Pre-window: fixed order — in-flight frames and the healthy prefix of the
  // transfer are not schedule choices.
  loop.run_until(win_start);

  std::size_t depth = 0;
  bool takeover_seen = false;
  while (true) {
    if (!takeover_seen && sc.world().trace().count("takeover") > 0) {
      takeover_seen = true;
      const sim::SimTime tail_end = loop.now() + opts_.takeover_tail;
      if (tail_end < win_end) win_end = tail_end;
    }
    const sim::SimTime t_next = loop.next_event_at();
    if (t_next.is_never() || t_next >= win_end) break;
    const auto ready = loop.ready_events(t_next + opts_.quantum);
    std::size_t pick = 0;
    const std::size_t branch = std::min(ready.size(), opts_.max_branch);
    if (branch > 1 && depth < opts_.max_depth) {
      if (depth < choices.size()) {
        pick = choices[depth];
        ++depth;
      } else if (extend) {
        const std::uint64_t d = state_digest(loop, sc, client);
        if (seen_.insert(d).second) {
          choices.push_back(0);
          branches.push_back(static_cast<std::uint8_t>(branch));
          ++depth;
        } else if (stats != nullptr) {
          ++stats->pruned;  // visited state: run on without forking
        }
      }
      // Replay past the recorded vector: take the earliest event, exactly
      // what the original run did at its pruned (unregistered) points.
    }
    loop.run_event(ready[pick].id);
    if (stats != nullptr) ++stats->events;
  }
  if (stats != nullptr) {
    if (depth > stats->max_depth) stats->max_depth = depth;
    if (depth >= opts_.max_depth) stats->truncated = true;
  }

  // Post-window: the schedule is fixed; let the failover finish normally.
  const sim::SimTime deadline = loop.now() + opts_.run_cap;
  while (!client.complete() && loop.now() < deadline) {
    sc.run_for(sim::Duration::millis(250));
  }
  sc.run_for(sim::Duration::seconds(1));

  TrialResult r;
  r.complete = client.complete();
  for (const Violation& v : checker.check(client)) {
    r.violations.push_back(v.str());
  }
  std::uint64_t h = kFnvBasis;
  h = fnv_mix(h, client.received());
  h = fnv_mix(h, r.complete ? 1 : 0);
  h = fnv_mix(h, sc.world().trace().count("takeover"));
  h = fnv_mix(h, sc.world().trace().count("non_ft_mode"));
  h = fnv_mix(h, static_cast<std::uint64_t>(
                     (loop.now() - sim::SimTime::zero()).ns()));
  for (const std::string& v : r.violations) h = fnv_mix(h, v);
  r.digest = h;
  return r;
}

ExploreStats Explorer::explore() {
  ExploreStats stats;
  stats.digest = kFnvBasis;
  seen_.clear();
  schedules_.clear();

  std::vector<std::uint8_t> choices;   // DFS path (prefix prescribed, rest grown)
  std::vector<std::uint8_t> branches;  // branching factor at each depth
  while (true) {
    TrialResult r = run_trial(choices, branches, /*extend=*/true, &stats);
    ++stats.schedules;
    stats.digest = fnv_mix(stats.digest, r.digest);
    ScheduleOutcome out;
    out.choices = choices;
    out.digest = r.digest;
    out.ok = r.violations.empty();
    if (!out.ok) {
      ++stats.violations;
      if (stats.violation_reports.size() < 5) {
        std::string rep = "schedule " + std::to_string(schedules_.size()) + " [";
        for (std::size_t i = 0; i < choices.size(); ++i) {
          if (i != 0) rep += ",";
          rep += std::to_string(static_cast<int>(choices[i]));
        }
        rep += "]:";
        for (const std::string& v : r.violations) rep += "\n  violated " + v;
        stats.violation_reports.push_back(std::move(rep));
      }
    }
    schedules_.push_back(std::move(out));

    if (stats.schedules >= opts_.max_schedules) {
      stats.truncated = true;
      break;
    }
    // Lexicographic advance: bump the deepest choice with siblings left.
    while (!choices.empty() && choices.back() + 1u >= branches.back()) {
      choices.pop_back();
      branches.pop_back();
    }
    if (choices.empty()) break;  // tree exhausted
    ++choices.back();
  }
  return stats;
}

std::uint64_t Explorer::replay(const std::vector<std::uint8_t>& choices) {
  std::vector<std::uint8_t> c = choices;
  std::vector<std::uint8_t> b;
  return run_trial(c, b, /*extend=*/false, nullptr).digest;
}

}  // namespace sttcp::harness
