// Runtime invariant checking for chaos scenarios.
//
// An InvariantChecker wires itself into a Scenario's observation points (the
// switch frame tap, per-host receive taps, the impairment corrupt taps) and
// watches the whole run, then renders a verdict. The invariants are the
// properties ST-TCP claims regardless of what the network does to it:
//
//   stream-exact     the byte stream the client observes is bit-identical to
//                    what the service wrote (complete, never corrupt, no
//                    connection failures) — when the plan is survivable;
//   no-client-rst    the client is never shown a RST that passes its own
//                    checksum verification;
//   checksum-drop    every wire-corrupted frame whose flip landed in the TCP
//                    segment is dropped by the receiving stack's checksum
//                    verification, and nothing else is: per host,
//                    stack.bad_checksum == frames we corrupted toward it.
//                    Fewer means a corrupted segment was ACCEPTED; more means
//                    an uncorrupted segment was rejected;
//   split-brain      at most one unsuppressed server talks to the client:
//                    once the backup transmits on the service connection, the
//                    primary must stay silent (beyond an in-flight grace);
//   bounded-memory   hold buffers and replica pending queues never exceed
//                    their configured caps, connection tables stay small —
//                    or, for a churn Workload, proportional to the
//                    configured concurrency with per-connection heap
//                    footprints inside the socket-buffer budget.
//
// The checker is pure observation: it never mutates traffic, draws no
// randomness, and adds no events, so a scenario behaves bit-identically with
// and without it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/fault.h"
#include "net/frame.h"
#include "net/host.h"
#include "net/link.h"
#include "net/switch.h"
#include "sim/time.h"
#include "sim/trace.h"
#include "sttcp/endpoint.h"
#include "tcp/stack.h"

namespace sttcp::app {
class DownloadClient;
}

namespace sttcp::harness {

class BlockWorkload;
class Scenario;
class Topology;
class Workload;

struct Violation {
  std::string invariant;  // e.g. "split-brain"
  std::string detail;

  std::string str() const { return invariant + ": " + detail; }
};

class InvariantChecker {
 public:
  struct Options {
    /// Bytes the workload intends to transfer (stream-exact invariant).
    std::uint64_t expected_bytes = 0;
    /// Assert the transfer completed. True for every FaultPlan::Adversarial
    /// schedule (survivable by construction); set false when deliberately
    /// injecting unsurvivable plans to exercise the checker itself.
    bool expect_masked = true;
    /// Frames from the suppressed server may still be in flight (or queued on
    /// a busy link) when the survivor first transmits; within this window
    /// they are not split-brain.
    sim::Duration split_brain_grace = sim::Duration::millis(25);
    /// Which cell the invariants are stated over. In a sharded fabric each
    /// shard gets its own checker (cell k, watching only shard-k links and
    /// the first stack-bearing client in that shard) — the checkers then run
    /// safely on the shard's own executor thread.
    int cell = 0;
  };

  /// Installs taps. Must be constructed before traffic starts and outlive the
  /// run. Pre-creates each link's Impairment (in fixed link order) so the
  /// rng fork order is independent of which faults a plan happens to arm.
  InvariantChecker(Scenario& sc, Options opt);

  /// Same checker against a Topology cell (the unit the invariants are
  /// stated over): the first stack-bearing plain host in the cell's shard is
  /// taken as the client, cell opt.cell as the watched pair. Impairments are
  /// pre-created on every shard-local link except a "logger" host's, in
  /// creation order — for a facade-shaped topology that is the classic
  /// client/primary/backup/gateway sequence. Throws std::logic_error if the
  /// topology has no such cell or no stack-bearing host in its shard.
  InvariantChecker(Topology& topo, Options opt);

  /// Evaluate end-of-run invariants and return everything that failed (the
  /// streaming ones — RST, split-brain — are folded in). Empty = clean run.
  std::vector<Violation> check(const app::DownloadClient& client);

  /// Churn-workload variant: every flow a Workload generated must have
  /// drained byte-exact with no client-visible reset (when expect_masked),
  /// and memory must have stayed proportional to the live connection count
  /// instead of the single-download bound. Call after the workload reports
  /// drained() plus a quiet margin of at least 2 x MSL, so TIME_WAIT
  /// connections have left the tables.
  std::vector<Violation> check(const Workload& workload);

  /// Block-store variant: response-exactness instead of stream-exactness.
  /// Oracle mismatches (acknowledged writes lost, phantom reads) violate
  /// regardless of the plan; masked plans additionally demand zero resets,
  /// zero failed sessions, zero unpredicted statuses and a clean drain.
  std::vector<Violation> check(const BlockWorkload& workload);

  /// Grey-failure verdict, evaluated over the run's trace. The invariants a
  /// slow-not-dead fault adds on top of the streaming ones:
  ///
  ///   grey-conviction        the grey node was convicted by its peer within
  ///                          `budget` of the first fault injection;
  ///   grey-criterion         that conviction came from a progress-counter
  ///                          criterion ("progress_stall_detected" or
  ///                          "app_failure_detected"), never from heartbeat
  ///                          silence ("peer_dead") — the grey host was
  ///                          heartbeating the whole time;
  ///   grey-false-conviction  the grey host itself convicted nobody: slow is
  ///                          not a licence to shoot the healthy peer.
  ///
  /// Appends to `out` so it composes with check().
  void check_grey(const sim::TraceRecorder& trace, Node grey,
                  sim::Duration budget, std::vector<Violation>& out) const;

  // --- accounting (for reports / tests) ----------------------------------
  std::uint64_t corrupted_frames() const { return corrupt_events_; }
  std::uint64_t expected_checksum_drops() const;

 private:
  /// Everything the checker watches, resolved once at construction so the
  /// checking logic is independent of how the topology was built.
  struct Scope {
    net::Ipv4Addr client_ip;
    net::Ipv4Addr service_ip;
    net::Host* client = nullptr;
    net::Host* primary = nullptr;
    net::Host* backup = nullptr;  // == backups.front()
    tcp::TcpStack* client_stack = nullptr;
    tcp::TcpStack* primary_stack = nullptr;
    tcp::TcpStack* backup_stack = nullptr;  // == backup_stacks.front()
    sttcp::StTcpEndpoint* primary_ep = nullptr;  // null without ST-TCP
    sttcp::StTcpEndpoint* backup_ep = nullptr;   // == backup_eps.front()
    /// All the cell's backups; size > 1 switches the split-brain audit to
    /// the group-aware speaker protocol over every tapped member MAC.
    std::vector<net::Host*> backups;
    std::vector<tcp::TcpStack*> backup_stacks;
    std::vector<sttcp::StTcpEndpoint*> backup_eps;
    net::EthernetSwitch* sw = nullptr;
    std::vector<net::Link*> links;  // impairment pre-fork order
    std::size_t hold_cap = 0;
    tcp::TcpConfig tcp;
  };
  static Scope scope_from(Topology& topo, const Options& opt);

  InvariantChecker(Scope scope, Options opt);

  void on_switch_frame(sim::SimTime at, const net::Frame& frame);
  void on_host_rx(int host_idx, const net::Frame& frame);
  void add_streamed(const std::string& invariant, const std::string& detail);

  /// 0 = primary, 1.. = backups, -1 = not a member MAC.
  int member_index(const net::MacAddr& mac) const;
  std::string member_name(int m) const;
  /// The watched hosts in rx-tap index order: client, primary, backups...
  std::vector<net::Host*> watched_hosts() const;
  std::vector<tcp::TcpStack*> watched_stacks() const;
  std::string watched_name(std::size_t i) const;

  // Shared between the two check() overloads.
  void collect_streamed(std::vector<Violation>& out) const;
  void check_checksums(std::vector<Violation>& out) const;
  void check_memory(std::vector<Violation>& out, std::size_t conn_table_cap) const;

  static std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n);

  Scope scope_;
  Options opt_;
  net::EthernetSwitch::FrameTap prev_tap_;

  // Corrupted-frame identity: FNV-1a of the post-flip bytes -> flip offset.
  // Multicast fan-out delivers one corrupted buffer to several hosts; each
  // delivery is recognised by hash on the host rx tap.
  std::unordered_map<std::uint64_t, std::size_t> corrupted_;
  std::uint64_t corrupt_events_ = 0;

  // Per-host (client=0, primary=1, backups=2...) deliveries of corrupted
  // frames whose flip landed inside the TCP segment — each must become
  // exactly one stack bad_checksum increment.
  std::vector<std::uint64_t> expected_bad_checksum_;

  // Split-brain bookkeeping over service->client TCP frames.
  // Pair mode (one backup): the classic first-backup-transmission clock.
  sim::SimTime first_backup_tx_ = sim::SimTime::never();
  // Group mode (> 1 backup): speaker protocol over member MACs. The member
  // whose transmission most recently began speaks; every member it
  // superseded must fall silent within the grace (a superseded member
  // transmitting later is dual-active). Member 0 = primary, 1.. = backups.
  int current_speaker_ = -1;
  sim::SimTime speaker_since_ = sim::SimTime::never();
  std::unordered_map<int, sim::SimTime> superseded_at_;

  std::vector<Violation> streamed_;
  std::unordered_map<std::string, int> streamed_counts_;
};

}  // namespace sttcp::harness
