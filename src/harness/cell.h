// Cell: one Figure-2 ST-TCP pair, stampable N times into a fabric.
//
// A cell is the unit the paper demonstrates once and this harness scales:
// primary + backup hosts sharing a service-IP alias, a switch multicast
// group fanning client traffic to both taps, a serial heartbeat cable, and
// the STONITH registration — everything between "client traffic arrives at
// the switch" and "a replicated TCP answers".
//
// Construction is two-phase so a multi-cell topology can reproduce the
// single-cell harness's RNG fork order bit-exactly:
//
//   * the constructor wires L2 only (hosts, NICs, links, switch ports,
//     multicast group, power registration) — the two Link constructors are
//     the only RNG forks;
//   * start() — called by TopologyBuilder::build() after every plain host's
//     stack exists — creates the serial link, the TCP stacks, and (when
//     enabled) the ST-TCP endpoints, and starts them.
//
// ARP wiring between cells, clients and routers is the topology's job (it
// knows who shares a subnet); a Cell never touches hosts it doesn't own.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/host.h"
#include "net/link.h"
#include "net/serial_link.h"
#include "sttcp/endpoint.h"
#include "tcp/stack.h"

namespace sttcp::harness {

class Topology;

/// Per-cell knobs. Zero/empty members fall back to topology defaults
/// (bandwidth, CPU times) or index-derived values (MACs, multicast group).
struct CellConfig {
  /// Host-name prefix: "" names the members "primary"/"backup" (the classic
  /// single-cell harness); "s0" names them "s0.primary"/"s0.backup". The
  /// prefix also namespaces STONITH targets and exported metrics.
  std::string name;

  net::Ipv4Addr primary_ip{10, 0, 0, 2};
  net::Ipv4Addr backup_ip{10, 0, 0, 3};
  net::Ipv4Addr service_ip{10, 0, 0, 100};
  /// What the endpoints ping for NIC-failure arbitration: the subnet's
  /// gateway — a plain host in the flat LAN, a router port in the fabric.
  net::Ipv4Addr gateway_ip{10, 0, 0, 254};

  net::MacAddr primary_mac;      // zero -> derived from the cell index
  net::MacAddr backup_mac;       // zero -> derived from the cell index
  net::MacAddr multicast_group;  // zero -> MacAddr::multicast_group(0x57 + index)

  std::uint64_t link_bandwidth_bps = 0;         // 0 -> topology default
  /// Override for the backup's port (0 = same as the primary's). Models the
  /// prototype's tap-overload mitigation ("an additional NIC and CPU").
  std::uint64_t backup_link_bandwidth_bps = 0;

  sim::Duration primary_cpu_packet_time = sim::Duration::zero();
  sim::Duration backup_cpu_packet_time = sim::Duration::zero();

  /// Backups beyond the classic one: 0 keeps the paper's 1+1 pair (and the
  /// pair wire protocol / RNG fork order bit-exactly); k > 0 builds a 1+N
  /// replication group with N = 1 + k backups. Extra backups ("backup2",
  /// "backup3", ...) take backup_ip + 1, + 2, ..., tap the same multicast
  /// group, and run IP-heartbeats only — the serial cable stays the
  /// primary/backup point-to-point RS-232 of the paper (see
  /// docs/GROUPS.md for why quorum-over-IP replaces serial at N > 2).
  int extra_backups = 0;

  /// ANDed with TopologyConfig::enable_sttcp: a disabled cell runs plain
  /// TCP on the primary (the Demo 1/3 baseline).
  bool enable_sttcp = true;
  /// Index of the STONITH controller this cell registers with. Each cell in
  /// a sharded fabric gets its own controller; the flat harness shares 0.
  int power_controller = 0;
};

class Cell {
 public:
  /// Phase 1: L2 wiring (see file comment). Forks the world RNG exactly
  /// twice (primary link, backup link).
  Cell(Topology& topo, int index, int switch_id, CellConfig cfg);
  ~Cell();
  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  /// Phase 2: serial link, TCP stacks, ST-TCP endpoints. Called once by
  /// TopologyBuilder::build() after all plain-host stacks exist.
  void start();

  const CellConfig& config() const { return cfg_; }
  int index() const { return index_; }
  int switch_id() const { return switch_id_; }
  /// The shard (world index) this cell was built into; 0 in a flat harness.
  int shard() const { return shard_; }
  const std::string& name() const { return cfg_.name; }

  net::Host& primary() { return *primary_; }
  net::Host& backup() { return *backup_; }
  net::Link& primary_link() { return *primary_link_; }
  net::Link& backup_link() { return *backup_link_; }
  /// Switch port indices (the multicast fan-out set; also what
  /// emulate_old_design_tap mirrors to).
  int primary_port() const { return primary_port_; }
  int backup_port() const { return backup_port_; }

  net::SerialLink& serial() { return *serial_; }
  tcp::TcpStack& primary_stack() { return *primary_stack_; }
  tcp::TcpStack& backup_stack() { return *backup_stack_; }
  sttcp::StTcpEndpoint* primary_endpoint() { return primary_ep_.get(); }
  sttcp::StTcpEndpoint* backup_endpoint() { return backup_ep_.get(); }

  // --- replication-group addressing (i = 0 is the classic backup) ----------
  int backup_count() const { return 1 + cfg_.extra_backups; }
  net::Host& backup_host(int i);
  net::Link& backup_link(int i);
  int backup_switch_port(int i) const;
  tcp::TcpStack& backup_stack(int i);
  sttcp::StTcpEndpoint* backup_endpoint(int i);
  net::Ipv4Addr backup_ip(int i) const {
    return net::Ipv4Addr(cfg_.backup_ip.value() + static_cast<std::uint32_t>(i));
  }
  net::MacAddr backup_mac(int i) const;

  net::Ipv4Addr primary_ip() const { return cfg_.primary_ip; }
  net::Ipv4Addr backup_ip() const { return cfg_.backup_ip; }
  net::Ipv4Addr service_ip() const { return cfg_.service_ip; }
  net::MacAddr multicast_mac() const { return multicast_mac_; }
  bool sttcp_enabled() const { return sttcp_enabled_; }

  std::uint16_t service_port() const;
  /// Where a client connects: the virtual service address with ST-TCP, the
  /// primary's own address without it.
  net::SocketAddr connect_addr() const;
  /// The baseline's reconnect target (the hot backup's own address).
  net::SocketAddr backup_addr() const;

 private:
  Topology& topo_;
  sim::World* world_;  // the owning shard's world, captured at construction
  CellConfig cfg_;
  int index_;
  int switch_id_;
  int shard_;
  bool sttcp_enabled_;
  net::MacAddr multicast_mac_;

  std::unique_ptr<net::Host> primary_, backup_;
  net::Link* primary_link_ = nullptr;  // owned by the Topology
  net::Link* backup_link_ = nullptr;
  int primary_port_ = -1, backup_port_ = -1;

  std::unique_ptr<net::SerialLink> serial_;
  std::unique_ptr<tcp::TcpStack> primary_stack_, backup_stack_;
  std::unique_ptr<sttcp::StTcpEndpoint> primary_ep_, backup_ep_;

  // Extra group backups, index 0 = "backup2". Built after the classic pair
  // so a k=0 cell's RNG fork order is untouched.
  std::vector<std::unique_ptr<net::Host>> extra_hosts_;
  std::vector<net::Link*> extra_links_;  // owned by the Topology
  std::vector<int> extra_ports_;
  std::vector<net::MacAddr> extra_macs_;
  std::vector<std::unique_ptr<tcp::TcpStack>> extra_stacks_;
  std::vector<std::unique_ptr<sttcp::StTcpEndpoint>> extra_eps_;
};

}  // namespace sttcp::harness
