#include "harness/block_workload.h"

#include <algorithm>

#include "harness/scenario.h"

namespace sttcp::harness {

using app::Decoder;
using app::Envelope;
using app::MsgType;
using app::Status;

BlockWorkload::BlockWorkload(Scenario& sc, BlockWorkloadConfig cfg)
    : BlockWorkload(sc.world(), sc.client_stack(), sc.client_ip(),
                    sc.connect_addr(), std::move(cfg)) {}

BlockWorkload::BlockWorkload(sim::World& world, tcp::TcpStack& stack,
                             net::Ipv4Addr client_ip, net::SocketAddr server,
                             BlockWorkloadConfig cfg)
    : cfg_(std::move(cfg)),
      stack_(stack),
      loop_(world.loop()),
      client_ip_(client_ip),
      server_(server),
      rng_(world.rng().fork()) {}

BlockWorkload::~BlockWorkload() {
  for (auto& c : clients_) {
    if (c->conn != nullptr) c->conn->set_callbacks({});
  }
}

void BlockWorkload::start() {
  started_ = true;
  gen_end_ = now() + cfg_.duration;
  clients_.reserve(cfg_.clients);
  for (std::size_t i = 0; i < cfg_.clients; ++i) {
    clients_.push_back(std::make_unique<Client>(loop_));
    // Stagger first connects so the run does not open with a SYN burst.
    clients_[i]->think.arm(draw_exp(cfg_.think_mean), [this, i] { spawn(i); });
  }
}

bool BlockWorkload::generation_done() const {
  return started_ && now() >= gen_end_;
}

sim::Duration BlockWorkload::draw_exp(sim::Duration mean) {
  const double s = rng_.exponential(mean.to_seconds());
  const sim::Duration d = sim::Duration::from_seconds(s);
  return d < sim::Duration::nanos(1) ? sim::Duration::nanos(1) : d;
}

void BlockWorkload::spawn(std::size_t i) {
  Client& c = *clients_[i];
  const std::uint64_t inc = ++c.incarnation;
  c.decoder = Decoder();
  c.session = 0;
  c.ops_done = 0;
  c.open_sent = false;
  c.close_sent = false;
  c.has_outstanding = false;
  c.tx.clear();
  ++stats_.sessions_started;
  ++open_conns_;

  // Callbacks capture (slot, incarnation), never the connection: a respawned
  // slot must ignore stragglers from its previous connection.
  const auto live = [this, i, inc]() -> Client* {
    Client& cl = *clients_[i];
    return (cl.incarnation == inc && cl.conn != nullptr) ? &cl : nullptr;
  };
  tcp::TcpConnection::Callbacks cb;
  cb.on_established = [this, i, live] {
    Client* cl = live();
    if (cl == nullptr || cl->open_sent) return;
    cl->open_sent = true;
    net::Bytes token(8);
    for (std::size_t k = 0; k < 8; ++k) {
      token[k] = static_cast<std::uint8_t>(cfg_.auth_token >> (8 * (7 - k)));
    }
    cl->has_outstanding = true;
    cl->out = Outstanding{MsgType::kOpen, 0, {}, now()};
    ++stats_.requests;
    send_frame(*cl, app::make_request(MsgType::kOpen, 0, ++cl->req_id,
                                      std::move(token)));
  };
  cb.on_readable = [this, i, live] {
    if (live() != nullptr) on_readable(i);
  };
  cb.on_writable = [this, i, live] {
    Client* cl = live();
    if (cl != nullptr) flush_tx(*cl);
  };
  cb.on_peer_closed = [this, i, live] {
    Client* cl = live();
    if (cl == nullptr) return;
    on_readable(i);
    cl = live();
    if (cl != nullptr) cl->conn->close();
  };
  cb.on_closed = [this, i, inc](tcp::CloseReason r) {
    if (clients_[i]->incarnation == inc) on_closed(i, r);
  };
  c.conn = &stack_.connect(client_ip_, server_, std::move(cb));
}

void BlockWorkload::arm_respawn(std::size_t i) {
  if (generation_done()) return;
  clients_[i]->think.arm(draw_exp(cfg_.think_mean), [this, i] { spawn(i); });
}

void BlockWorkload::send_next(std::size_t i) {
  Client& c = *clients_[i];
  if (c.close_sent || c.has_outstanding || c.session == 0) return;
  if (c.ops_done >= cfg_.ops_per_session) {
    c.close_sent = true;
    c.has_outstanding = true;
    c.out = Outstanding{MsgType::kClose, 0, {}, now()};
    ++stats_.requests;
    send_frame(c, app::make_request(MsgType::kClose, c.session, ++c.req_id, {}));
    return;
  }
  ++c.ops_done;
  const std::uint32_t block =
      static_cast<std::uint32_t>(i) * cfg_.blocks_per_client +
      static_cast<std::uint32_t>(rng_.below(cfg_.blocks_per_client));
  const double roll = rng_.uniform01();
  net::Bytes payload;
  net::ByteWriter w(payload);
  w.u32(block);
  if (roll < cfg_.put_prob) {
    const std::size_t len = 1 + static_cast<std::size_t>(
                                    rng_.below(cfg_.block_size));
    net::Bytes data(len);
    for (std::size_t k = 0; k < len; ++k) {
      data[k] = static_cast<std::uint8_t>(rng_.next_u64());
    }
    w.bytes(data);
    c.has_outstanding = true;
    c.out = Outstanding{MsgType::kPut, block, std::move(data), now()};
    ++stats_.requests;
    send_frame(c, app::make_request(MsgType::kPut, c.session, ++c.req_id,
                                    std::move(payload)));
  } else if (roll < cfg_.put_prob + cfg_.delete_prob) {
    c.has_outstanding = true;
    c.out = Outstanding{MsgType::kDelete, block, {}, now()};
    ++stats_.requests;
    send_frame(c, app::make_request(MsgType::kDelete, c.session, ++c.req_id,
                                    std::move(payload)));
  } else {
    c.has_outstanding = true;
    c.out = Outstanding{MsgType::kGet, block, {}, now()};
    ++stats_.requests;
    send_frame(c, app::make_request(MsgType::kGet, c.session, ++c.req_id,
                                    std::move(payload)));
  }
}

void BlockWorkload::send_frame(Client& c, const Envelope& e) {
  const net::Bytes wire = e.serialize();
  c.tx.insert(c.tx.end(), wire.begin(), wire.end());
  flush_tx(c);
}

void BlockWorkload::flush_tx(Client& c) {
  if (c.tx.empty() || c.conn == nullptr) return;
  const std::size_t n = c.conn->send(c.tx);
  c.tx.erase(c.tx.begin(), c.tx.begin() + static_cast<std::ptrdiff_t>(n));
}

void BlockWorkload::on_readable(std::size_t i) {
  Client& c = *clients_[i];
  const net::Bytes in = c.conn->read(1 << 20);
  if (c.decoder.poisoned()) return;
  c.decoder.feed(in);
  Envelope resp;
  while (true) {
    const Decoder::Result res = c.decoder.next(&resp);
    if (res == Decoder::Result::kNeedMore) break;
    if (res == Decoder::Result::kBad) {
      ++stats_.protocol_errors;
      if (c.conn != nullptr) c.conn->close();
      break;
    }
    on_response(i, resp);
    if (clients_[i]->conn == nullptr) break;  // response handling closed us
  }
}

void BlockWorkload::on_response(std::size_t i, const Envelope& resp) {
  Client& c = *clients_[i];
  if (!c.has_outstanding || !resp.is_response() ||
      resp.request_type() != c.out.type || resp.req_id != c.req_id) {
    ++stats_.protocol_errors;
    if (c.conn != nullptr) c.conn->close();
    return;
  }
  const auto body = app::parse_response_body(resp);
  if (!body) {
    ++stats_.protocol_errors;
    if (c.conn != nullptr) c.conn->close();
    return;
  }
  ++stats_.responses;
  request_us_.record(static_cast<std::uint64_t>((now() - c.out.sent_at).us()));
  c.has_outstanding = false;
  const Status st = body->status;
  const std::uint32_t b = c.out.block;
  fold(resp.req_id);
  fold(static_cast<std::uint64_t>(st));
  fold_bytes(body->data);

  // A block-size page as the oracle stores it (the server zero-pads).
  const auto padded = [this](net::BytesView d) {
    net::Bytes p(d.begin(), d.end());
    p.resize(cfg_.block_size, 0);
    return p;
  };

  switch (c.out.type) {
    case MsgType::kOpen:
      if (st == Status::kOk && body->data.size() == 4) {
        c.session = (static_cast<std::uint32_t>(body->data[0]) << 24) |
                    (static_cast<std::uint32_t>(body->data[1]) << 16) |
                    (static_cast<std::uint32_t>(body->data[2]) << 8) |
                    static_cast<std::uint32_t>(body->data[3]);
        ++stats_.ok;
      } else {
        ++stats_.bad_status;
        if (c.conn != nullptr) c.conn->close();
        return;
      }
      break;
    case MsgType::kGet: {
      if (unknown_.count(b) != 0) {
        // Re-learn a block orphaned by a dead connection.
        unknown_.erase(b);
        if (st == Status::kOk) {
          expected_[b] = body->data;
          ++stats_.ok;
        } else if (st == Status::kNotFound) {
          expected_.erase(b);
          ++stats_.expected_misses;
        } else {
          ++stats_.bad_status;
        }
        break;
      }
      const auto it = expected_.find(b);
      if (it != expected_.end()) {
        if (st == Status::kOk && body->data == it->second) {
          ++stats_.ok;
        } else {
          // Acknowledged bytes came back different (or vanished): the
          // failover lost or reordered committed state.
          ++stats_.mismatches;
        }
      } else {
        if (st == Status::kNotFound) {
          ++stats_.expected_misses;
        } else if (st == Status::kOk) {
          ++stats_.mismatches;  // phantom data for a never-written block
        } else {
          ++stats_.bad_status;
        }
      }
      break;
    }
    case MsgType::kPut:
      if (st == Status::kOk) {
        expected_[b] = padded(c.out.put_data);
        ++stats_.ok;
      } else {
        ++stats_.bad_status;
      }
      break;
    case MsgType::kDelete: {
      const bool existed = expected_.count(b) != 0;
      if (unknown_.count(b) != 0) {
        unknown_.erase(b);
        expected_.erase(b);
        if (st == Status::kOk || st == Status::kNotFound) {
          ++stats_.ok;
        } else {
          ++stats_.bad_status;
        }
      } else if (st == Status::kOk) {
        expected_.erase(b);
        ++stats_.ok;
      } else if (st == Status::kNotFound && !existed) {
        ++stats_.expected_misses;
      } else {
        ++stats_.bad_status;
      }
      break;
    }
    case MsgType::kClose:
      if (st == Status::kOk) {
        ++stats_.ok;
      } else {
        ++stats_.bad_status;
      }
      if (c.conn != nullptr) c.conn->close();
      return;
  }
  send_next(i);
}

void BlockWorkload::on_closed(std::size_t i, tcp::CloseReason reason) {
  Client& c = *clients_[i];
  c.conn = nullptr;
  --open_conns_;
  if (c.has_outstanding &&
      (c.out.type == MsgType::kPut || c.out.type == MsgType::kDelete)) {
    // The mutation may or may not have executed; only a future GET can say.
    unknown_.insert(c.out.block);
    expected_.erase(c.out.block);
    ++stats_.unknown_marks;
  }
  // Completed = every op answered, CLOSE acknowledged, graceful FIN.
  const bool completed = reason == tcp::CloseReason::kGraceful &&
                         c.close_sent && !c.has_outstanding;
  if (completed) {
    ++stats_.sessions_completed;
  } else {
    ++stats_.failed;
  }
  if (reason == tcp::CloseReason::kReset) ++stats_.resets;
  fold(c.incarnation);
  fold(static_cast<std::uint64_t>(reason) | (completed ? 0x100u : 0u));
  fold(static_cast<std::uint64_t>(now().ns()));
  arm_respawn(i);
}

std::uint64_t BlockWorkload::digest() const {
  std::uint64_t d = digest_;
  const auto mix = [&d](std::uint64_t v) { d = (d ^ v) * 0x100000001b3ULL; };
  mix(stats_.requests);
  mix(stats_.responses);
  mix(stats_.ok);
  mix(stats_.expected_misses);
  mix(stats_.bad_status);
  mix(stats_.mismatches);
  mix(stats_.sessions_started);
  mix(stats_.sessions_completed);
  mix(stats_.failed);
  mix(stats_.resets);
  mix(request_us_.count());
  mix(request_us_.sum());
  return d;
}

}  // namespace sttcp::harness
