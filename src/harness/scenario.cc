#include "harness/scenario.h"

namespace sttcp::harness {

namespace {
const net::MacAddr kClientMac = net::MacAddr::from_u64(0x020000000001ull);
const net::MacAddr kPrimaryMac = net::MacAddr::from_u64(0x020000000002ull);
const net::MacAddr kBackupMac = net::MacAddr::from_u64(0x020000000003ull);
const net::MacAddr kGatewayMac = net::MacAddr::from_u64(0x0200000000feull);
const net::MacAddr kLoggerMac = net::MacAddr::from_u64(0x020000000009ull);
const net::MacAddr kMultiEa = net::MacAddr::multicast_group(0x57);
}  // namespace

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)) {
  world_ = std::make_unique<sim::World>(cfg_.seed, cfg_.log_out, cfg_.log_level);
  switch_ = std::make_unique<net::EthernetSwitch>(*world_, "switch");
  power_ = std::make_unique<net::PowerController>(*world_);

  client_ = std::make_unique<net::Host>(*world_, "client");
  primary_ = std::make_unique<net::Host>(*world_, "primary");
  backup_ = std::make_unique<net::Host>(*world_, "backup");
  gateway_ = std::make_unique<net::Host>(*world_, "gateway");

  struct Wiring {
    net::Host* host;
    net::MacAddr mac;
    net::Ipv4Addr ip;
  };
  const Wiring wiring[] = {
      {client_.get(), kClientMac, client_ip()},
      {primary_.get(), kPrimaryMac, primary_ip()},
      {backup_.get(), kBackupMac, backup_ip()},
      {gateway_.get(), kGatewayMac, gateway_ip()},
  };

  std::vector<int> server_ports;
  for (const Wiring& w : wiring) {
    net::Nic& nic = w.host->add_nic(w.mac);
    w.host->add_ip(w.ip);
    std::uint64_t bw = cfg_.link_bandwidth_bps;
    if (w.host == backup_.get() && cfg_.backup_link_bandwidth_bps != 0) {
      bw = cfg_.backup_link_bandwidth_bps;
    }
    auto link = std::make_unique<net::Link>(*world_, cfg_.link_latency, bw);
    nic.attach(link->port(0));
    const int port = switch_->add_port(link->port(1));
    if (w.host == primary_.get() || w.host == backup_.get()) {
      server_ports.push_back(port);
    }
    links_.push_back(std::move(link));
    power_->register_host(*w.host);
  }

  // Full static ARP mesh between the four real addresses.
  for (const Wiring& a : wiring) {
    for (const Wiring& b : wiring) {
      if (a.host != b.host) a.host->arp_set(b.ip, b.mac);
    }
  }

  // The ST-TCP service address: an alias on both servers, reached through
  // the multicast group so both taps see every client packet.
  primary_->add_ip(service_ip());
  backup_->add_ip(service_ip());
  primary_->nic().subscribe_multicast(kMultiEa);
  backup_->nic().subscribe_multicast(kMultiEa);
  switch_->add_multicast_group(kMultiEa, server_ports);
  client_->arp_set(service_ip(), kMultiEa);
  gateway_->arp_set(service_ip(), kMultiEa);
  // The servers answer the client directly (its unicast MAC), with the
  // service IP as the source address.
  primary_->arp_set(client_ip(), kClientMac);
  backup_->arp_set(client_ip(), kClientMac);

  primary_->set_cpu_packet_time(cfg_.primary_cpu_packet_time);
  backup_->set_cpu_packet_time(cfg_.backup_cpu_packet_time);

  // Optional stream logger host (§4.3 output-commit extension): joins the
  // multicast group so it taps the same client traffic as the servers.
  if (cfg_.enable_logger) {
    logger_host_ = std::make_unique<net::Host>(*world_, "logger");
    net::Nic& lnic = logger_host_->add_nic(kLoggerMac);
    logger_host_->add_ip(logger_ip());
    // The logger owns the service alias too, so tapped client->service
    // packets pass its host's IP filter (a real tap would capture
    // promiscuously; the alias is the simulator's equivalent).
    logger_host_->add_ip(service_ip());
    auto llink = std::make_unique<net::Link>(*world_, cfg_.link_latency,
                                             cfg_.link_bandwidth_bps);
    lnic.attach(llink->port(0));
    const int lport = switch_->add_port(llink->port(1));
    links_.push_back(std::move(llink));
    lnic.subscribe_multicast(kMultiEa);
    server_ports.push_back(lport);
    switch_->add_multicast_group(kMultiEa, server_ports);  // re-install w/ logger
    for (const Wiring& w : wiring) {
      logger_host_->arp_set(w.ip, w.mac);
      w.host->arp_set(logger_ip(), kLoggerMac);
    }
    sttcp::StreamLogger::Config lc;
    lc.service_ip = service_ip();
    logger_ = std::make_unique<sttcp::StreamLogger>(*logger_host_, lc);
  }

  // Serial null-modem cable between the servers (port 0 = primary).
  serial_ = std::make_unique<net::SerialLink>(*world_, cfg_.serial_baud);

  client_stack_ = std::make_unique<tcp::TcpStack>(*client_, cfg_.tcp);
  primary_stack_ = std::make_unique<tcp::TcpStack>(*primary_, cfg_.tcp);
  backup_stack_ = std::make_unique<tcp::TcpStack>(*backup_, cfg_.tcp);

  if (cfg_.enable_sttcp) {
    sttcp::StTcpConfig pc = cfg_.sttcp;
    pc.service_ip = service_ip();
    pc.my_ip = primary_ip();
    pc.peer_ip = backup_ip();
    pc.peer_name = backup_->name();
    pc.gateway_ip = gateway_ip();
    if (cfg_.enable_logger) pc.logger_ip = logger_ip();
    sttcp::StTcpConfig bc = pc;
    bc.my_ip = backup_ip();
    bc.peer_ip = primary_ip();
    bc.peer_name = primary_->name();

    primary_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
        *primary_, *primary_stack_, *power_, &serial_->port(0),
        sttcp::Role::kPrimary, pc);
    backup_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
        *backup_, *backup_stack_, *power_, &serial_->port(1),
        sttcp::Role::kBackup, bc);
    primary_ep_->start();
    backup_ep_->start();
  }
}

Scenario::~Scenario() = default;

void Scenario::emulate_old_design_tap() {
  // Port order of construction: client=0, primary=1, backup=2, gateway=3.
  switch_->add_egress_mirror(/*src_port=*/0, /*dst_port=*/2);
  backup_->nic().set_promiscuous(true);
}

void Scenario::crash_primary_at(sim::Duration t) {
  world_->loop().schedule_after(t, [this] { primary_->crash("injected HW/OS crash"); });
}

void Scenario::crash_backup_at(sim::Duration t) {
  world_->loop().schedule_after(t, [this] { backup_->crash("injected HW/OS crash"); });
}

void Scenario::fail_primary_nic_at(sim::Duration t) {
  world_->loop().schedule_after(t, [this] {
    world_->trace().record("primary", "nic_failed");
    primary_->nic().fail();
  });
}

void Scenario::fail_backup_nic_at(sim::Duration t) {
  world_->loop().schedule_after(t, [this] {
    world_->trace().record("backup", "nic_failed");
    backup_->nic().fail();
  });
}

void Scenario::fail_serial_at(sim::Duration t) {
  world_->loop().schedule_after(t, [this] {
    world_->trace().record("serial", "serial_failed");
    serial_->fail();
  });
}

void Scenario::drop_backup_frames_at(sim::Duration t, int n) {
  world_->loop().schedule_after(t, [this, n] {
    world_->trace().record("backup", "frame_drop_burst", "", n);
    backup_link().drop_next(n);
  });
}

}  // namespace sttcp::harness
