#include "harness/scenario.h"

#include <iterator>

namespace sttcp::harness {

namespace {
const net::MacAddr kClientMac = net::MacAddr::from_u64(0x020000000001ull);
const net::MacAddr kPrimaryMac = net::MacAddr::from_u64(0x020000000002ull);
const net::MacAddr kBackupMac = net::MacAddr::from_u64(0x020000000003ull);
const net::MacAddr kGatewayMac = net::MacAddr::from_u64(0x0200000000feull);
const net::MacAddr kLoggerMac = net::MacAddr::from_u64(0x020000000009ull);
const net::MacAddr kMultiEa = net::MacAddr::multicast_group(0x57);
}  // namespace

ScenarioConfig ScenarioConfig::Paper2005() {
  ScenarioConfig cfg;
  cfg.link_latency = sim::Duration::micros(50);
  cfg.link_bandwidth_bps = 100'000'000;  // Fast Ethernet
  cfg.serial_baud = 115200;
  cfg.sttcp.hb_period = sim::Duration::millis(200);
  cfg.sttcp.hb_miss_threshold = 3;
  return cfg;
}

ScenarioConfig ScenarioConfig::FastNet() {
  ScenarioConfig cfg;
  cfg.link_latency = sim::Duration::micros(5);
  cfg.link_bandwidth_bps = 1'000'000'000;  // gigabit
  cfg.serial_baud = 1'000'000;
  cfg.sttcp.hb_period = sim::Duration::millis(50);
  cfg.sttcp.hb_miss_threshold = 3;
  return cfg;
}

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)) {
  world_ = std::make_unique<sim::World>(cfg_.seed, cfg_.log_out, cfg_.log_level);
  if (cfg_.enable_metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    world_->set_metrics(metrics_.get());  // components bind as they construct
  }
  switch_ = std::make_unique<net::EthernetSwitch>(*world_, "switch");
  if (!cfg_.pcap_path.empty()) {
    pcap_ = std::make_unique<obs::PcapWriter>(cfg_.pcap_path);
    switch_->set_frame_tap([this](sim::SimTime at, const net::Frame& frame) {
      pcap_->record(at, frame.view());
    });
  }
  power_ = std::make_unique<net::PowerController>(*world_);

  client_ = std::make_unique<net::Host>(*world_, "client");
  primary_ = std::make_unique<net::Host>(*world_, "primary");
  backup_ = std::make_unique<net::Host>(*world_, "backup");
  gateway_ = std::make_unique<net::Host>(*world_, "gateway");

  struct Wiring {
    net::Host* host;
    net::MacAddr mac;
    net::Ipv4Addr ip;
  };
  const Wiring wiring[] = {
      {client_.get(), kClientMac, client_ip()},
      {primary_.get(), kPrimaryMac, primary_ip()},
      {backup_.get(), kBackupMac, backup_ip()},
      {gateway_.get(), kGatewayMac, gateway_ip()},
  };

  std::vector<int> server_ports;
  for (const Wiring& w : wiring) {
    net::Nic& nic = w.host->add_nic(w.mac);
    w.host->add_ip(w.ip);
    std::uint64_t bw = cfg_.link_bandwidth_bps;
    if (w.host == backup_.get() && cfg_.backup_link_bandwidth_bps != 0) {
      bw = cfg_.backup_link_bandwidth_bps;
    }
    auto link = std::make_unique<net::Link>(*world_, cfg_.link_latency, bw);
    if (metrics_ != nullptr) {
      link->bind_metrics(*metrics_, "net.link." + w.host->name());
    }
    nic.attach(link->port(0));
    const int port = switch_->add_port(link->port(1));
    if (w.host == primary_.get() || w.host == backup_.get()) {
      server_ports.push_back(port);
    }
    links_.push_back(std::move(link));
    power_->register_host(*w.host);
  }

  // Full static ARP mesh between the four real addresses.
  for (const Wiring& a : wiring) {
    for (const Wiring& b : wiring) {
      if (a.host != b.host) a.host->arp_set(b.ip, b.mac);
    }
  }

  // The ST-TCP service address: an alias on both servers, reached through
  // the multicast group so both taps see every client packet.
  primary_->add_ip(service_ip());
  backup_->add_ip(service_ip());
  primary_->nic().subscribe_multicast(kMultiEa);
  backup_->nic().subscribe_multicast(kMultiEa);
  switch_->add_multicast_group(kMultiEa, server_ports);
  client_->arp_set(service_ip(), kMultiEa);
  gateway_->arp_set(service_ip(), kMultiEa);
  // The servers answer the client directly (its unicast MAC), with the
  // service IP as the source address.
  primary_->arp_set(client_ip(), kClientMac);
  backup_->arp_set(client_ip(), kClientMac);

  primary_->set_cpu_packet_time(cfg_.primary_cpu_packet_time);
  backup_->set_cpu_packet_time(cfg_.backup_cpu_packet_time);

  // Optional stream logger host (§4.3 output-commit extension): joins the
  // multicast group so it taps the same client traffic as the servers.
  if (cfg_.enable_logger) {
    logger_host_ = std::make_unique<net::Host>(*world_, "logger");
    net::Nic& lnic = logger_host_->add_nic(kLoggerMac);
    logger_host_->add_ip(logger_ip());
    // The logger owns the service alias too, so tapped client->service
    // packets pass its host's IP filter (a real tap would capture
    // promiscuously; the alias is the simulator's equivalent).
    logger_host_->add_ip(service_ip());
    auto llink = std::make_unique<net::Link>(*world_, cfg_.link_latency,
                                             cfg_.link_bandwidth_bps);
    if (metrics_ != nullptr) llink->bind_metrics(*metrics_, "net.link.logger");
    lnic.attach(llink->port(0));
    const int lport = switch_->add_port(llink->port(1));
    links_.push_back(std::move(llink));
    lnic.subscribe_multicast(kMultiEa);
    server_ports.push_back(lport);
    switch_->add_multicast_group(kMultiEa, server_ports);  // re-install w/ logger
    for (const Wiring& w : wiring) {
      logger_host_->arp_set(w.ip, w.mac);
      w.host->arp_set(logger_ip(), kLoggerMac);
    }
    sttcp::StreamLogger::Config lc;
    lc.service_ip = service_ip();
    logger_ = std::make_unique<sttcp::StreamLogger>(*logger_host_, lc);
  }

  // Serial null-modem cable between the servers (port 0 = primary).
  serial_ = std::make_unique<net::SerialLink>(*world_, cfg_.serial_baud);

  client_stack_ = std::make_unique<tcp::TcpStack>(*client_, cfg_.tcp);
  primary_stack_ = std::make_unique<tcp::TcpStack>(*primary_, cfg_.tcp);
  backup_stack_ = std::make_unique<tcp::TcpStack>(*backup_, cfg_.tcp);

  if (cfg_.enable_sttcp) {
    sttcp::StTcpConfig pc = cfg_.sttcp;
    pc.service_ip = service_ip();
    pc.my_ip = primary_ip();
    pc.peer_ip = backup_ip();
    pc.peer_name = backup_->name();
    pc.gateway_ip = gateway_ip();
    if (cfg_.enable_logger) pc.logger_ip = logger_ip();
    sttcp::StTcpConfig bc = pc;
    bc.my_ip = backup_ip();
    bc.peer_ip = primary_ip();
    bc.peer_name = primary_->name();

    primary_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
        *primary_, *primary_stack_, *power_, &serial_->port(0),
        sttcp::Role::kPrimary, pc);
    backup_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
        *backup_, *backup_stack_, *power_, &serial_->port(1),
        sttcp::Role::kBackup, bc);
    primary_ep_->start();
    backup_ep_->start();
  }
}

Scenario::~Scenario() = default;

void Scenario::emulate_old_design_tap() {
  // Port order of construction: client=0, primary=1, backup=2, gateway=3.
  switch_->add_egress_mirror(/*src_port=*/0, /*dst_port=*/2);
  backup_->nic().set_promiscuous(true);
}

void Scenario::inject(Fault fault) {
  const int times = fault.times_ < 1 ? 1 : fault.times_;
  for (int i = 0; i < times; ++i) {
    const sim::Duration when = fault.at_ + fault.interval_ * i;
    world_->loop().schedule_after(when, [this, fault] {
      world_->trace().record("harness", "fault_injected", fault.label_);
      if (metrics_ != nullptr) {
        metrics_->timeline().mark(obs::Milestone::kFaultInjected, world_->now());
      }
      fault.action_(*this);
    });
  }
}

void Scenario::inject(const FaultPlan& plan) {
  for (const Fault& f : plan.faults()) inject(f);
}

void Scenario::crash_primary_at(sim::Duration t) {
  inject(Fault::Crash(Node::kPrimary).at(t));
}

void Scenario::crash_backup_at(sim::Duration t) {
  inject(Fault::Crash(Node::kBackup).at(t));
}

void Scenario::fail_primary_nic_at(sim::Duration t) {
  inject(Fault::NicFailure(Node::kPrimary).at(t));
}

void Scenario::fail_backup_nic_at(sim::Duration t) {
  inject(Fault::NicFailure(Node::kBackup).at(t));
}

void Scenario::fail_serial_at(sim::Duration t) {
  inject(Fault::SerialCut().at(t));
}

void Scenario::drop_backup_frames_at(sim::Duration t, int n) {
  inject(Fault::FrameLoss(Node::kBackup, n).at(t));
}

void Scenario::export_metrics() {
  if (metrics_ == nullptr) return;
  obs::MetricsRegistry& reg = *metrics_;

  static constexpr const char* kLinkNames[] = {"client", "primary", "backup",
                                               "gateway", "logger"};
  for (std::size_t i = 0; i < links_.size() && i < std::size(kLinkNames); ++i) {
    const net::Link::Stats& s = links_[i]->stats();
    const std::string p = std::string("net.link.") + kLinkNames[i];
    reg.counter(p + ".frames_sent").set(s.frames_sent);
    reg.counter(p + ".frames_delivered").set(s.frames_delivered);
    reg.counter(p + ".frames_dropped").set(s.frames_dropped);
    reg.counter(p + ".bytes_delivered").set(s.bytes_delivered);
    // Impairment engines exist only on links a fault (or checker) touched.
    if (const net::Impairment* imp = links_[i]->impairment_ptr()) {
      const net::Impairment::Stats& is = imp->stats();
      reg.counter(p + ".impair.burst_dropped").set(is.burst_dropped);
      reg.counter(p + ".impair.corrupted").set(is.corrupted);
      reg.counter(p + ".impair.duplicated").set(is.duplicated);
      reg.counter(p + ".impair.reordered").set(is.reordered);
    }
  }

  const net::EthernetSwitch::Stats& sw = switch_->stats();
  reg.counter("net.switch.forwarded").set(sw.forwarded);
  reg.counter("net.switch.flooded").set(sw.flooded);
  reg.counter("net.switch.multicast").set(sw.multicast);

  const net::SerialLink::Stats& se = serial_->stats();
  reg.counter("net.serial.messages_sent").set(se.messages_sent);
  reg.counter("net.serial.messages_delivered").set(se.messages_delivered);
  reg.counter("net.serial.messages_dropped").set(se.messages_dropped);
  reg.counter("net.serial.bytes_delivered").set(se.bytes_delivered);
  reg.counter("net.serial.messages_corrupted").set(se.messages_corrupted);
  reg.counter("net.serial.messages_truncated").set(se.messages_truncated);

  struct StackRow {
    const tcp::TcpStack* stack;
    const char* host;
  };
  const StackRow stacks[] = {{client_stack_.get(), "client"},
                             {primary_stack_.get(), "primary"},
                             {backup_stack_.get(), "backup"}};
  for (const StackRow& row : stacks) {
    if (row.stack == nullptr) continue;
    const tcp::TcpStack::Stats& s = row.stack->stats();
    const std::string p = std::string("tcp.") + row.host;
    reg.counter(p + ".segments_in").set(s.segments_in);
    reg.counter(p + ".segments_demuxed").set(s.segments_demuxed);
    reg.counter(p + ".segments_buffered").set(s.segments_buffered);
    reg.counter(p + ".bad_checksum").set(s.bad_checksum);
    reg.counter(p + ".rst_sent").set(s.rst_sent);
    reg.counter(p + ".connections_accepted").set(s.connections_accepted);
    reg.counter(p + ".replicas_created").set(s.replicas_created);
  }

  struct EpRow {
    const sttcp::StTcpEndpoint* ep;
    const char* host;
  };
  const EpRow eps[] = {{primary_ep_.get(), "primary"}, {backup_ep_.get(), "backup"}};
  for (const EpRow& row : eps) {
    if (row.ep == nullptr) continue;
    const sttcp::StTcpEndpoint::Stats& s = row.ep->stats();
    const std::string p = std::string("sttcp.") + row.host;
    reg.counter(p + ".hb_sent").set(s.hb_sent);
    reg.counter(p + ".hb_received_ip").set(s.hb_received_ip);
    reg.counter(p + ".hb_received_serial").set(s.hb_received_serial);
    reg.counter(p + ".replicas_created").set(s.replicas_created);
    reg.counter(p + ".missed_bytes_injected").set(s.missed_bytes_injected);
    reg.counter(p + ".logger_bytes_injected").set(s.logger_bytes_injected);
    reg.counter(p + ".takeovers").set(s.takeovers);
    reg.counter(p + ".reintegrations").set(s.reintegrations);
    reg.counter(p + ".rejoins").set(s.rejoins);
    reg.counter(p + ".snapshot_conns_adopted").set(s.snapshot_conns_adopted);
    reg.counter(p + ".hb_malformed").set(s.hb_malformed);
    reg.counter(p + ".hb_stale").set(s.hb_stale);
    reg.counter(p + ".control_malformed").set(s.control_malformed);
    reg.counter(p + ".hold_peak_bytes").set(row.ep->hold_peak_bytes());
  }

  if (pcap_ != nullptr) {
    reg.counter("obs.pcap.frames_written").set(pcap_->frames_written());
  }
}

std::string Scenario::metrics_json() {
  if (metrics_ == nullptr) return "{}";
  export_metrics();
  return metrics_->json();
}

}  // namespace sttcp::harness
