#include "harness/scenario.h"

namespace sttcp::harness {

namespace {
const net::MacAddr kClientMac = net::MacAddr::from_u64(0x020000000001ull);
const net::MacAddr kPrimaryMac = net::MacAddr::from_u64(0x020000000002ull);
const net::MacAddr kBackupMac = net::MacAddr::from_u64(0x020000000003ull);
const net::MacAddr kGatewayMac = net::MacAddr::from_u64(0x0200000000feull);
const net::MacAddr kLoggerMac = net::MacAddr::from_u64(0x020000000009ull);
const net::MacAddr kMultiEa = net::MacAddr::multicast_group(0x57);
}  // namespace

ScenarioConfig ScenarioConfig::Paper2005() {
  ScenarioConfig cfg;
  cfg.link_latency = sim::Duration::micros(50);
  cfg.link_bandwidth_bps = 100'000'000;  // Fast Ethernet
  cfg.serial_baud = 115200;
  cfg.sttcp.hb_period = sim::Duration::millis(200);
  cfg.sttcp.hb_miss_threshold = 3;
  return cfg;
}

ScenarioConfig ScenarioConfig::FastNet() {
  ScenarioConfig cfg;
  cfg.link_latency = sim::Duration::micros(5);
  cfg.link_bandwidth_bps = 1'000'000'000;  // gigabit
  cfg.serial_baud = 1'000'000;
  cfg.sttcp.hb_period = sim::Duration::millis(50);
  cfg.sttcp.hb_miss_threshold = 3;
  return cfg;
}

TopologyConfig ScenarioConfig::topology_config() const {
  TopologyConfig tc;
  tc.seed = seed;
  tc.link_latency = link_latency;
  tc.link_bandwidth_bps = link_bandwidth_bps;
  tc.serial_baud = serial_baud;
  tc.tcp = tcp;
  tc.sttcp = sttcp;
  tc.enable_sttcp = enable_sttcp;
  if (enable_logger) tc.logger_ip = net::Ipv4Addr{10, 0, 0, 9};
  tc.log_out = log_out;
  tc.log_level = log_level;
  tc.enable_metrics = enable_metrics;
  tc.pcap_path = pcap_path;
  return tc;
}

Scenario::Scenario(ScenarioConfig cfg) : cfg_(std::move(cfg)) {
  // Stamp the classic Figure-2 LAN as a one-cell topology. Call order
  // matters: it reproduces the pre-facade harness construction (and RNG
  // fork) sequence exactly — links client, primary, backup, gateway,
  // [logger], then stacks client, primary, backup, then endpoint start.
  TopologyBuilder b(cfg_.topology_config());
  const int lan = b.add_switch("switch");

  HostOptions client_opt;
  client_opt.mac = kClientMac;
  client_opt.with_stack = true;
  b.add_host("client", client_ip(), lan, client_opt);

  CellConfig cc;
  cc.primary_ip = primary_ip();
  cc.backup_ip = backup_ip();
  cc.service_ip = service_ip();
  cc.gateway_ip = gateway_ip();
  cc.primary_mac = kPrimaryMac;
  cc.backup_mac = kBackupMac;
  cc.multicast_group = kMultiEa;
  cc.backup_link_bandwidth_bps = cfg_.backup_link_bandwidth_bps;
  cc.primary_cpu_packet_time = cfg_.primary_cpu_packet_time;
  cc.backup_cpu_packet_time = cfg_.backup_cpu_packet_time;
  cc.extra_backups = cfg_.extra_backups;
  b.add_cell(lan, cc);

  HostOptions gw_opt;
  gw_opt.mac = kGatewayMac;
  b.add_host("gateway", gateway_ip(), lan, gw_opt);

  // Optional stream logger host (§4.3 output-commit extension): joins the
  // multicast group so it taps the same client traffic as the servers.
  if (cfg_.enable_logger) {
    HostOptions lg_opt;
    lg_opt.mac = kLoggerMac;
    const int idx = b.add_host("logger", logger_ip(), lan, lg_opt);
    Topology::HostEntry& lh = b.topology().host(static_cast<std::size_t>(idx));
    // The logger owns the service alias too, so tapped client->service
    // packets pass its host's IP filter (a real tap would capture
    // promiscuously; the alias is the simulator's equivalent).
    lh.host->add_ip(service_ip());
    lh.host->nic().subscribe_multicast(kMultiEa);
    Cell& c = b.topology().cell(0);
    std::vector<int> ports = {c.primary_port()};
    for (int i = 0; i < c.backup_count(); ++i) ports.push_back(c.backup_switch_port(i));
    ports.push_back(lh.port);
    b.topology().ethernet_switch().add_multicast_group(kMultiEa, ports);
  }

  topo_ = b.build();

  if (cfg_.enable_logger) {
    sttcp::StreamLogger::Config lc;
    lc.service_ip = service_ip();
    logger_ = std::make_unique<sttcp::StreamLogger>(*topo_->host(2).host, lc);
  }
}

Scenario::~Scenario() = default;

void Scenario::emulate_old_design_tap() {
  // Port order of construction: client=0, primary=1, backup=2, gateway=3.
  ethernet_switch().add_egress_mirror(topo_->host(0).port, cell().backup_port());
  backup().nic().set_promiscuous(true);
}

void Scenario::inject(Fault fault) {
  const int times = fault.times_ < 1 ? 1 : fault.times_;
  for (int i = 0; i < times; ++i) {
    const sim::Duration when = fault.at_ + fault.interval_ * i;
    world().loop().schedule_after(when, [this, fault] {
      world().trace().record("harness", "fault_injected", fault.label_);
      if (metrics() != nullptr) {
        metrics()->timeline().mark(obs::Milestone::kFaultInjected, world().now());
      }
      fault.action_(*this);
    });
  }
}

void Scenario::inject(const FaultPlan& plan) {
  for (const Fault& f : plan.faults()) inject(f);
}

void Scenario::crash_primary_at(sim::Duration t) {
  inject(Fault::Crash(Node::kPrimary).at(t));
}

void Scenario::crash_backup_at(sim::Duration t) {
  inject(Fault::Crash(Node::kBackup).at(t));
}

void Scenario::fail_primary_nic_at(sim::Duration t) {
  inject(Fault::NicFailure(Node::kPrimary).at(t));
}

void Scenario::fail_backup_nic_at(sim::Duration t) {
  inject(Fault::NicFailure(Node::kBackup).at(t));
}

void Scenario::fail_serial_at(sim::Duration t) {
  inject(Fault::SerialCut().at(t));
}

void Scenario::drop_backup_frames_at(sim::Duration t, int n) {
  inject(Fault::FrameLoss(Node::kBackup, n).at(t));
}

}  // namespace sttcp::harness
