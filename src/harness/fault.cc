#include "harness/fault.h"

#include <cstdarg>
#include <cstdio>

#include "app/server.h"
#include "harness/scenario.h"
#include "sim/random.h"

namespace sttcp::harness {

namespace {

std::string fmt(const char* format, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof(buf), format, ap);
  va_end(ap);
  return buf;
}

// Group backups clamp to the highest existing one, so a group schedule
// remains injectable on a smaller roster (the negative-control replay).
int backup_index_of(Scenario& s, Node n) {
  const int want = n == Node::kBackup3 ? 2 : n == Node::kBackup2 ? 1 : 0;
  const int last = s.backup_count() - 1;
  return want < last ? want : last;
}

net::Host& host_of(Scenario& s, Node n) {
  switch (n) {
    case Node::kClient: return s.client();
    case Node::kPrimary: return s.primary();
    case Node::kBackup: return s.backup();
    case Node::kGateway: return s.gateway();
    case Node::kBackup2:
    case Node::kBackup3: return s.backup_member(backup_index_of(s, n));
  }
  return s.primary();  // unreachable
}

net::Link& link_of(Scenario& s, Node n) {
  switch (n) {
    case Node::kClient: return s.client_link();
    case Node::kPrimary: return s.primary_link();
    case Node::kBackup: return s.backup_link();
    case Node::kGateway: return s.gateway_link();
    case Node::kBackup2:
    case Node::kBackup3: return s.backup_member_link(backup_index_of(s, n));
  }
  return s.primary_link();  // unreachable
}

}  // namespace

const char* to_string(Node n) {
  switch (n) {
    case Node::kClient: return "client";
    case Node::kPrimary: return "primary";
    case Node::kBackup: return "backup";
    case Node::kGateway: return "gateway";
    case Node::kBackup2: return "backup2";
    case Node::kBackup3: return "backup3";
  }
  return "?";
}

Fault Fault::Crash(Node n) {
  Fault f;
  f.label_ = std::string("crash:") + to_string(n);
  f.action_ = [n](Scenario& s) { host_of(s, n).crash("injected HW/OS crash"); };
  return f;
}

Fault Fault::PowerOn(Node n) {
  Fault f;
  f.label_ = std::string("power_on:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "power_on");
    host_of(s, n).power_on();
  };
  return f;
}

Fault Fault::NicFailure(Node n) {
  Fault f;
  f.label_ = std::string("nic_failure:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "nic_failed");
    host_of(s, n).nic().fail();
  };
  return f;
}

Fault Fault::NicRestore(Node n) {
  Fault f;
  f.label_ = std::string("nic_restore:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "nic_restored");
    host_of(s, n).nic().heal();
  };
  return f;
}

Fault Fault::SerialCut() {
  Fault f;
  f.label_ = "serial_cut";
  f.action_ = [](Scenario& s) {
    s.world().trace().record("serial", "serial_failed");
    s.serial().fail();
  };
  return f;
}

Fault Fault::SerialRestore() {
  Fault f;
  f.label_ = "serial_restore";
  f.action_ = [](Scenario& s) {
    s.world().trace().record("serial", "serial_restored");
    s.serial().heal();
  };
  return f;
}

Fault Fault::FrameLoss(Node n, int frames) {
  Fault f;
  f.label_ = std::string("frame_loss:") + to_string(n);
  f.action_ = [n, frames](Scenario& s) {
    s.world().trace().record(to_string(n), "frame_drop_burst", "", frames);
    link_of(s, n).drop_next(frames);
  };
  return f;
}

Fault Fault::LinkDown(Node n) {
  Fault f;
  f.label_ = std::string("link_down:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "link_down");
    link_of(s, n).fail();
  };
  return f;
}

Fault Fault::LinkUp(Node n) {
  Fault f;
  f.label_ = std::string("link_up:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "link_up");
    link_of(s, n).heal();
  };
  return f;
}

Fault Fault::LinkFlap(Node n, sim::Duration down_for) {
  Fault f;
  f.label_ = std::string("link_flap:") + to_string(n);
  f.action_ = [n, down_for](Scenario& s) {
    s.world().trace().record(to_string(n), "link_down");
    link_of(s, n).fail();
    s.world().loop().schedule_after(down_for, [&s, n] {
      s.world().trace().record(to_string(n), "link_up");
      link_of(s, n).heal();
    });
  };
  return f;
}

namespace {

// Shared skeleton for the impairment builders: arm one knob on the node's
// switch link now, stamp paired trace events, and (for window > 0) schedule
// the disarm. `set` assigns the armed value, `clear` restores the idle one —
// both run against the same lazily-created Impairment, so a plan that arms
// several knobs on one link composes naturally.
Fault impairment_fault(std::string label, Node n, sim::Duration window,
                       std::function<void(net::Impairment&)> set,
                       std::function<void(net::Impairment&)> clear) {
  Fault f = Fault::Custom(
      std::move(label),
      [n, window, set = std::move(set), clear = std::move(clear)](Scenario& s) {
        s.world().trace().record(to_string(n), "impair_on", "",
                                 static_cast<std::int64_t>(window.ms()));
        set(link_of(s, n).impairment());
        if (!window.is_zero()) {
          s.world().loop().schedule_after(window, [&s, n, clear] {
            s.world().trace().record(to_string(n), "impair_off");
            clear(link_of(s, n).impairment());
          });
        }
      });
  return f;
}

}  // namespace

Fault Fault::Corrupt(Node n, double p, sim::Duration window) {
  return impairment_fault(
      fmt("corrupt:%s(p=%.4f,%s)", to_string(n), p, window.str().c_str()), n,
      window,
      [p](net::Impairment& i) { i.config().corrupt_probability = p; },
      [](net::Impairment& i) { i.config().corrupt_probability = 0.0; });
}

Fault Fault::Duplicate(Node n, double p, sim::Duration window) {
  return impairment_fault(
      fmt("duplicate:%s(p=%.4f,%s)", to_string(n), p, window.str().c_str()), n,
      window,
      [p](net::Impairment& i) { i.config().duplicate_probability = p; },
      [](net::Impairment& i) { i.config().duplicate_probability = 0.0; });
}

Fault Fault::Reorder(Node n, double p, sim::Duration delay,
                     sim::Duration window) {
  return impairment_fault(
      fmt("reorder:%s(p=%.4f,d=%s,%s)", to_string(n), p, delay.str().c_str(),
          window.str().c_str()),
      n, window,
      [p, delay](net::Impairment& i) {
        i.config().reorder_probability = p;
        i.config().reorder_delay = delay;
      },
      [](net::Impairment& i) {
        i.config().reorder_probability = 0.0;
        i.config().reorder_delay = sim::Duration::zero();
      });
}

Fault Fault::BurstLoss(Node n, double p_enter, double p_exit,
                       sim::Duration window) {
  return impairment_fault(
      fmt("burst_loss:%s(in=%.4f,out=%.3f,%s)", to_string(n), p_enter, p_exit,
          window.str().c_str()),
      n, window,
      [p_enter, p_exit](net::Impairment& i) {
        i.config().burst_p_enter = p_enter;
        i.config().burst_p_exit = p_exit;
        i.config().burst_loss = 1.0;
      },
      [](net::Impairment& i) {
        i.config().burst_p_enter = 0.0;
        i.config().burst_p_exit = 0.0;
        // A window may close mid-burst; a stuck Bad state would silently keep
        // losing frames with no armed knob to explain it.
        i.reset_burst_state();
      });
}

Fault Fault::Jitter(Node n, sim::Duration max_jitter, sim::Duration window) {
  return impairment_fault(
      fmt("jitter:%s(max=%s,%s)", to_string(n), max_jitter.str().c_str(),
          window.str().c_str()),
      n, window,
      [max_jitter](net::Impairment& i) { i.config().jitter_max = max_jitter; },
      [](net::Impairment& i) { i.config().jitter_max = sim::Duration::zero(); });
}

Fault Fault::CpuStall(Node n, sim::LagProfile profile) {
  Fault f;
  f.label_ = fmt("cpu_stall:%s(%s)", to_string(n), profile.str().c_str());
  f.action_ = [n, profile](Scenario& s) {
    s.world().trace().record(to_string(n), "cpu_stall", profile.str());
    host_of(s, n).cpu_domain().set_lag(profile);
  };
  return f;
}

Fault Fault::SlowNic(Node n, double p, sim::Duration window) {
  // Direction 1 = frames transmitted from the link's switch-side port
  // (topology wiring puts the NIC on port 0, the switch on port 1), i.e.
  // the switch->host direction: the node's RECEIVE path degrades while its
  // own transmissions — heartbeats included — go out clean.
  return impairment_fault(
      fmt("slow_nic:%s(p=%.3f,%s)", to_string(n), p, window.str().c_str()), n,
      window,
      [p](net::Impairment& i) { i.config().oneway_drop[1] = p; },
      [](net::Impairment& i) { i.config().oneway_drop[1] = 0.0; });
}

Fault Fault::AppHang(Node n) {
  Fault f;
  f.label_ = std::string("app_hang:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "app_hang");
    if (app::ServerApp* a = s.server_app(n)) a->hang();
  };
  return f;
}

Fault Fault::SerialCorrupt(double corrupt_p, double truncate_p,
                           sim::Duration window) {
  Fault f;
  f.label_ = fmt("serial_corrupt(c=%.3f,t=%.3f,%s)", corrupt_p, truncate_p,
                 window.str().c_str());
  f.action_ = [corrupt_p, truncate_p, window](Scenario& s) {
    s.world().trace().record("serial", "impair_on", "",
                             static_cast<std::int64_t>(window.ms()));
    s.serial().set_noise(corrupt_p, truncate_p);
    if (!window.is_zero()) {
      s.world().loop().schedule_after(window, [&s] {
        s.world().trace().record("serial", "impair_off");
        s.serial().set_noise(0.0, 0.0);
      });
    }
  };
  return f;
}

Fault Fault::Custom(std::string label, std::function<void(Scenario&)> action) {
  Fault f;
  f.label_ = std::move(label);
  f.action_ = std::move(action);
  return f;
}

Fault Fault::at(sim::Duration t) const {
  Fault f = *this;
  f.at_ = t;
  return f;
}

Fault Fault::repeat(int times, sim::Duration interval) const {
  Fault f = *this;
  f.times_ = times;
  f.interval_ = interval;
  return f;
}

FaultPlan FaultPlan::Adversarial(std::uint64_t seed) {
  // Own stream, decorrelated from the scenario world rng (which is usually
  // seeded with the same value): the plan must not shift when the scenario's
  // own draw order evolves.
  sim::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  FaultPlan plan;
  int slots = 2 + static_cast<int>(rng.below(3));  // 2..4 faults

  // At most one fatal server fault. Two of these at once (or a fatal fault on
  // both servers) is outside ST-TCP's single-failure model, so such a plan
  // could legitimately stall and would teach the fuzzer nothing.
  bool nic_major = false;
  if (rng.chance(0.6)) {
    const auto when = sim::Duration::millis(static_cast<std::int64_t>(rng.range(120, 600)));
    switch (rng.below(5)) {
      case 0: plan.add(Fault::Crash(Node::kPrimary).at(when)); break;
      case 1: plan.add(Fault::Crash(Node::kBackup).at(when)); break;
      case 2:
        plan.add(Fault::NicFailure(Node::kPrimary).at(when));
        nic_major = true;
        break;
      case 3:
        plan.add(Fault::NicFailure(Node::kBackup).at(when));
        nic_major = true;
        break;
      case 4: plan.add(Fault::SerialCut().at(when)); break;
    }
    --slots;
  }

  constexpr Node kNodes[] = {Node::kClient, Node::kPrimary, Node::kBackup,
                             Node::kGateway};
  bool corrupt_used = false;
  for (int i = 0; i < slots; ++i) {
    const Node n = kNodes[rng.below(4)];
    const auto at = sim::Duration::millis(static_cast<std::int64_t>(rng.range(50, 800)));
    const auto window =
        sim::Duration::millis(static_cast<std::int64_t>(rng.range(200, 1500)));
    std::uint64_t kind = rng.below(6);
    // A NIC-failure major already removes one heartbeat channel; noising the
    // serial channel on top would be a second simultaneous failure.
    if (kind == 5 && nic_major) kind = rng.below(5);
    // Corruption flips exactly one bit per frame, which the 16-bit Internet
    // checksum always catches — but flips on two different links can land in
    // the same frame and cancel. One corrupting link per plan keeps every
    // accepted-despite-corrupt frame a true invariant violation.
    if (kind == 0 && corrupt_used) kind = 1 + rng.below(4);
    switch (kind) {
      case 0:
        plan.add(Fault::Corrupt(n, 0.002 + 0.03 * rng.uniform01(), window).at(at));
        corrupt_used = true;
        break;
      case 1:
        plan.add(Fault::BurstLoss(n, 0.001 + 0.01 * rng.uniform01(),
                                  0.2 + 0.3 * rng.uniform01(), window)
                     .at(at));
        break;
      case 2:
        plan.add(Fault::Duplicate(n, 0.02 + 0.15 * rng.uniform01(), window).at(at));
        break;
      case 3:
        plan.add(Fault::Reorder(
                     n, 0.05 + 0.25 * rng.uniform01(),
                     sim::Duration::millis(static_cast<std::int64_t>(rng.range(1, 8))),
                     window)
                     .at(at));
        break;
      case 4:
        plan.add(Fault::Jitter(
                     n, sim::Duration::millis(static_cast<std::int64_t>(rng.range(1, 5))),
                     window)
                     .at(at));
        break;
      case 5:
        plan.add(Fault::SerialCorrupt(0.05 + 0.35 * rng.uniform01(),
                                      0.15 * rng.uniform01(), window)
                     .at(at));
        break;
    }
  }
  return plan;
}

namespace {

// One shared draw sequence for MultiFailure and MultiFailureInvolvesLeader:
// the victims, the instant, and the garnish depend on the seed only, never
// on the roster size — so a seed names the same schedule at every N.
struct MultiFailureDraw {
  bool leader_involved;
  int victim_a;  // backup index, or -1 for the leader
  int victim_b;  // backup index
  sim::Duration when;
  FaultPlan garnish;
};

MultiFailureDraw draw_multi_failure(std::uint64_t seed) {
  sim::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  MultiFailureDraw d;
  // Both victims die at the SAME instant — the schedule is the simultaneous
  // double failure the 1+1 pair cannot mask by definition.
  d.when = sim::Duration::millis(static_cast<std::int64_t>(rng.range(300, 1500)));
  d.leader_involved = rng.chance(0.65);
  if (d.leader_involved) {
    d.victim_a = -1;
    d.victim_b = static_cast<int>(rng.below(2));  // backup or backup2
  } else {
    d.victim_a = 0;
    d.victim_b = 1;
    (void)rng.below(2);  // keep the draw count identical across branches
  }

  // Garnish: 0–2 mild loss-free impairments (same palette as Grey; loss
  // would manufacture extra convictions the sweep asserts cannot happen).
  constexpr Node kNodes[] = {Node::kClient, Node::kPrimary, Node::kBackup,
                             Node::kBackup2};
  const int garnish = static_cast<int>(rng.below(3));
  for (int i = 0; i < garnish; ++i) {
    const Node n = kNodes[rng.below(4)];
    const auto at =
        sim::Duration::millis(static_cast<std::int64_t>(rng.range(50, 700)));
    const auto window =
        sim::Duration::millis(static_cast<std::int64_t>(rng.range(200, 900)));
    switch (rng.below(3)) {
      case 0:
        d.garnish.add(Fault::Jitter(
                          n,
                          sim::Duration::millis(
                              static_cast<std::int64_t>(rng.range(1, 4))),
                          window)
                          .at(at));
        break;
      case 1:
        d.garnish.add(
            Fault::Duplicate(n, 0.02 + 0.08 * rng.uniform01(), window).at(at));
        break;
      case 2:
        d.garnish.add(Fault::Reorder(
                          n, 0.05 + 0.15 * rng.uniform01(),
                          sim::Duration::millis(
                              static_cast<std::int64_t>(rng.range(1, 5))),
                          window)
                          .at(at));
        break;
    }
  }
  return d;
}

Node backup_node(int index) {
  return index >= 2   ? Node::kBackup3
         : index == 1 ? Node::kBackup2
                      : Node::kBackup;
}

}  // namespace

FaultPlan FaultPlan::MultiFailure(std::uint64_t seed, int n_backups) {
  if (n_backups < 1) n_backups = 1;
  const MultiFailureDraw d = draw_multi_failure(seed);
  // Clamp drawn backup indices to the roster; identical draws, smaller cast.
  const auto clamp = [n_backups](int i) {
    return i < n_backups ? i : n_backups - 1;
  };
  FaultPlan plan;
  if (d.victim_a < 0) {
    plan.add(Fault::Crash(Node::kPrimary).at(d.when));
  } else {
    plan.add(Fault::Crash(backup_node(clamp(d.victim_a))).at(d.when));
  }
  plan.add(Fault::Crash(backup_node(clamp(d.victim_b))).at(d.when));
  for (const Fault& f : d.garnish.faults()) plan.add(f);
  return plan;
}

bool FaultPlan::MultiFailureInvolvesLeader(std::uint64_t seed) {
  return draw_multi_failure(seed).leader_involved;
}

FaultPlan FaultPlan::Grey(std::uint64_t seed) {
  // Same stream decorrelation as Adversarial: the plan must not shift when
  // the scenario's own draw order evolves.
  sim::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  FaultPlan plan;

  // Exactly one convictable grey fault, always first in the plan. The CPU
  // stall is HARD (6–12 s, longer than any conviction budget): a duty-cycled
  // stutter lets counters advance between pulses, which TCP masks — that
  // case gets its own masked-no-conviction test, not a sweep slot.
  const Node victim = rng.chance(0.5) ? Node::kPrimary : Node::kBackup;
  const auto when =
      sim::Duration::millis(static_cast<std::int64_t>(rng.range(200, 800)));
  if (rng.chance(0.5)) {
    plan.add(Fault::AppHang(victim).at(when));
  } else {
    const auto stall =
        sim::Duration::millis(static_cast<std::int64_t>(rng.range(6000, 12000)));
    plan.add(Fault::CpuStall(victim, sim::LagProfile::stall(stall)).at(when));
  }

  // Garnish: 0–2 mild, bounded, loss-free impairments. No BurstLoss, no
  // SlowNic, no Corrupt (a checksum drop is loss too): dropped client ACKs
  // freeze the demand-side counters and dropped heartbeats blind a grey
  // host's view of its healthy peer — both manufacture false convictions on
  // a schedule this sweep asserts is clean.
  constexpr Node kNodes[] = {Node::kClient, Node::kPrimary, Node::kBackup,
                             Node::kGateway};
  const int garnish = static_cast<int>(rng.below(3));
  for (int i = 0; i < garnish; ++i) {
    const Node n = kNodes[rng.below(4)];
    const auto at =
        sim::Duration::millis(static_cast<std::int64_t>(rng.range(50, 700)));
    const auto window =
        sim::Duration::millis(static_cast<std::int64_t>(rng.range(200, 900)));
    switch (rng.below(3)) {
      case 0:
        plan.add(Fault::Jitter(
                     n, sim::Duration::millis(static_cast<std::int64_t>(rng.range(1, 4))),
                     window)
                     .at(at));
        break;
      case 1:
        plan.add(Fault::Duplicate(n, 0.02 + 0.08 * rng.uniform01(), window).at(at));
        break;
      case 2:
        plan.add(Fault::Reorder(
                     n, 0.05 + 0.15 * rng.uniform01(),
                     sim::Duration::millis(static_cast<std::int64_t>(rng.range(1, 5))),
                     window)
                     .at(at));
        break;
    }
  }
  return plan;
}

std::string FaultPlan::str() const {
  std::string out;
  for (const Fault& f : faults_) {
    if (!out.empty()) out += "; ";
    out += f.label();
    out += " @" + f.when().str();
    if (f.times() > 1) {
      out += fmt(" x%d/%s", f.times(), f.interval().str().c_str());
    }
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace sttcp::harness
