#include "harness/fault.h"

#include "harness/scenario.h"

namespace sttcp::harness {

namespace {

net::Host& host_of(Scenario& s, Node n) {
  switch (n) {
    case Node::kClient: return s.client();
    case Node::kPrimary: return s.primary();
    case Node::kBackup: return s.backup();
    case Node::kGateway: return s.gateway();
  }
  return s.primary();  // unreachable
}

net::Link& link_of(Scenario& s, Node n) {
  switch (n) {
    case Node::kClient: return s.client_link();
    case Node::kPrimary: return s.primary_link();
    case Node::kBackup: return s.backup_link();
    case Node::kGateway: return s.gateway_link();
  }
  return s.primary_link();  // unreachable
}

}  // namespace

const char* to_string(Node n) {
  switch (n) {
    case Node::kClient: return "client";
    case Node::kPrimary: return "primary";
    case Node::kBackup: return "backup";
    case Node::kGateway: return "gateway";
  }
  return "?";
}

Fault Fault::Crash(Node n) {
  Fault f;
  f.label_ = std::string("crash:") + to_string(n);
  f.action_ = [n](Scenario& s) { host_of(s, n).crash("injected HW/OS crash"); };
  return f;
}

Fault Fault::PowerOn(Node n) {
  Fault f;
  f.label_ = std::string("power_on:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "power_on");
    host_of(s, n).power_on();
  };
  return f;
}

Fault Fault::NicFailure(Node n) {
  Fault f;
  f.label_ = std::string("nic_failure:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "nic_failed");
    host_of(s, n).nic().fail();
  };
  return f;
}

Fault Fault::NicRestore(Node n) {
  Fault f;
  f.label_ = std::string("nic_restore:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "nic_restored");
    host_of(s, n).nic().heal();
  };
  return f;
}

Fault Fault::SerialCut() {
  Fault f;
  f.label_ = "serial_cut";
  f.action_ = [](Scenario& s) {
    s.world().trace().record("serial", "serial_failed");
    s.serial().fail();
  };
  return f;
}

Fault Fault::SerialRestore() {
  Fault f;
  f.label_ = "serial_restore";
  f.action_ = [](Scenario& s) {
    s.world().trace().record("serial", "serial_restored");
    s.serial().heal();
  };
  return f;
}

Fault Fault::FrameLoss(Node n, int frames) {
  Fault f;
  f.label_ = std::string("frame_loss:") + to_string(n);
  f.action_ = [n, frames](Scenario& s) {
    s.world().trace().record(to_string(n), "frame_drop_burst", "", frames);
    link_of(s, n).drop_next(frames);
  };
  return f;
}

Fault Fault::LinkDown(Node n) {
  Fault f;
  f.label_ = std::string("link_down:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "link_down");
    link_of(s, n).fail();
  };
  return f;
}

Fault Fault::LinkUp(Node n) {
  Fault f;
  f.label_ = std::string("link_up:") + to_string(n);
  f.action_ = [n](Scenario& s) {
    s.world().trace().record(to_string(n), "link_up");
    link_of(s, n).heal();
  };
  return f;
}

Fault Fault::LinkFlap(Node n, sim::Duration down_for) {
  Fault f;
  f.label_ = std::string("link_flap:") + to_string(n);
  f.action_ = [n, down_for](Scenario& s) {
    s.world().trace().record(to_string(n), "link_down");
    link_of(s, n).fail();
    s.world().loop().schedule_after(down_for, [&s, n] {
      s.world().trace().record(to_string(n), "link_up");
      link_of(s, n).heal();
    });
  };
  return f;
}

Fault Fault::Custom(std::string label, std::function<void(Scenario&)> action) {
  Fault f;
  f.label_ = std::move(label);
  f.action_ = std::move(action);
  return f;
}

Fault Fault::at(sim::Duration t) const {
  Fault f = *this;
  f.at_ = t;
  return f;
}

Fault Fault::repeat(int times, sim::Duration interval) const {
  Fault f = *this;
  f.times_ = times;
  f.interval_ = interval;
  return f;
}

}  // namespace sttcp::harness
