// Parallel scenario sweep runner.
//
// Each sim::World is strictly single-threaded, but a parameter sweep (the
// Table-1 scenario grid, heartbeat-frequency curves, ablations, config
// sweeps) is embarrassingly parallel: every job builds its own World from a
// config and runs it to completion, sharing nothing. SweepRunner maps such
// jobs across a small thread pool.
//
// Determinism contract: results are returned indexed by job, never by
// completion order, and each job's World is seeded from its own config — so
// the output is bit-identical whether the sweep ran on 1 thread or N.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace sttcp::harness {

class SweepRunner {
 public:
  /// `threads` == 0 picks a default: the STTCP_SWEEP_THREADS environment
  /// variable if set, else the hardware concurrency (at least 1).
  explicit SweepRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Run fn(0) .. fn(count-1) across the pool and return the results in job
  /// order. Blocks until every job finishes. If any job throws, the
  /// exception from the lowest-indexed failing job is rethrown (after all
  /// jobs have been allowed to finish), regardless of thread count.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn) const
      -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<R> results(count);
    run_indexed(count, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Convenience: one job per element of `items`, passing the element.
  template <typename T, typename Fn>
  auto map_items(const std::vector<T>& items, Fn&& fn) const
      -> std::vector<decltype(fn(std::declval<const T&>()))> {
    return map(items.size(), [&](std::size_t i) { return fn(items[i]); });
  }

  /// Untyped core: invoke job(i) for every i in [0, count). Jobs are claimed
  /// from an atomic counter, so scheduling is dynamic but the index space —
  /// and therefore which job computes which result — is fixed.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& job) const;

 private:
  unsigned threads_;
};

}  // namespace sttcp::harness
