// One chaos trial: adversarial multi-fault schedule + invariant verdict.
//
// run_chaos_seed(seed) is the unit the fuzzer, the replay path and the bench
// all share: build the Figure-2 scenario from `seed`, draw the 2–4-fault
// FaultPlan::Adversarial(seed) schedule, run the transfer under an
// InvariantChecker, and fold everything observable into a ChaosVerdict. The
// verdict carries a fingerprint of every outcome-relevant quantity, so
// "same seed => bit-identical verdict" is a testable property, and
// ChaosVerdict::report() prints the exact seed + schedule + replay command
// when anything is violated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/invariants.h"
#include "sim/time.h"

namespace sttcp::harness {

struct ChaosOptions {
  /// Transfer size. Big enough that every fault window in an adversarial
  /// schedule (faults land by 0.8 s, windows run up to 1.5 s) overlaps the
  /// live stream; small enough to keep 200 seeds cheap.
  std::uint64_t file_size = 8'000'000;
  /// Wall on simulated time; generous next to the ~1 s healthy transfer so
  /// retransmission storms and failovers have room to resolve.
  sim::Duration run_cap = sim::Duration::seconds(90);
  /// Passed through to InvariantChecker: adversarial plans are survivable by
  /// construction, so completion is part of the verdict.
  bool expect_masked = true;
};

struct ChaosVerdict {
  std::uint64_t seed = 0;
  std::string plan;
  std::vector<Violation> violations;

  // Outcome + impairment accounting (for reports and the bench table).
  bool complete = false;
  std::uint64_t received = 0;
  std::uint64_t corrupted = 0;      // frames corrupted on the wire
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t burst_dropped = 0;
  std::uint64_t checksum_drops = 0;  // stack-level drops across all hosts
  std::uint64_t takeovers = 0;
  std::uint64_t non_ft = 0;
  std::int64_t sim_ns = 0;  // simulated time consumed

  /// FNV-1a fold of every field above (violations included): two runs of the
  /// same seed must produce equal digests.
  std::uint64_t digest = 0;

  bool ok() const { return violations.empty(); }
  /// Multi-line failure report: seed, schedule, violations, and the
  /// one-command replay line.
  std::string report() const;
};

ChaosVerdict run_chaos_seed(std::uint64_t seed, const ChaosOptions& opts = {});

// --- grey failures ---------------------------------------------------------

struct GreyOptions {
  /// Big enough that the transfer is still mid-stream (demand outstanding)
  /// when the latest-landing grey fault has been convicted: the counter
  /// criteria need unacknowledged bytes to reason about.
  std::uint64_t file_size = 40'000'000;
  sim::Duration run_cap = sim::Duration::seconds(90);
  /// Absolute-stagnation conviction threshold armed on both endpoints
  /// (StTcpConfig::progress_stall_time). Must clear the heartbeat staleness
  /// and replica grace, and stay well under conviction_budget.
  sim::Duration progress_stall_time = sim::Duration::millis(1200);
  /// Fault injection -> conviction wall asserted by the grey invariants.
  sim::Duration conviction_budget = sim::Duration::seconds(3);
};

/// One grey trial: FaultPlan::Grey(seed) under the InvariantChecker plus the
/// grey-specific checks (counter-based conviction of the grey host within
/// budget, no conviction BY the grey host). The transfer must still complete
/// bit-exact — grey failures are survivable by construction.
struct GreyVerdict {
  std::uint64_t seed = 0;
  std::string plan;
  std::vector<Violation> violations;

  bool complete = false;
  std::uint64_t received = 0;
  std::string grey_node;            // "primary" | "backup"
  std::string conviction_event;     // criterion that convicted it ("" = none)
  double conviction_latency_ms = -1;  // fault_injected -> conviction
  std::uint64_t false_convictions = 0;  // convictions recorded BY the grey host
  std::uint64_t takeovers = 0;
  std::uint64_t non_ft = 0;
  std::int64_t sim_ns = 0;

  /// FNV-1a fold of every field above: same seed => same digest.
  std::uint64_t digest = 0;

  bool ok() const { return violations.empty(); }
  std::string report() const;
};

GreyVerdict run_grey_seed(std::uint64_t seed, const GreyOptions& opts = {});

/// The node FaultPlan::Grey(seed) greys (parsed from the plan's first,
/// always-convictable fault).
Node grey_victim(const FaultPlan& plan);

// --- simultaneous double failures (1+N groups) -----------------------------

struct MultiFailureOptions {
  /// Bigger than the chaos default: MultiFailure crashes land as late as
  /// 1.5 s, and the double failure must hit a LIVE stream (~2 s at Fast
  /// Ethernet) for the schedule — and the negative control — to mean
  /// anything.
  std::uint64_t file_size = 25'000'000;
  sim::Duration run_cap = sim::Duration::seconds(90);
  /// Backups in the replication group. 2 (an N=3 group) is the tentpole
  /// claim: every MultiFailure schedule — two members crashing at the same
  /// instant — is masked. 1 is the classic pair, run as the negative
  /// control: the same schedules MUST fail whenever the leader is one of
  /// the victims (MultiFailureInvolvesLeader), proving the sweep measures
  /// redundancy rather than scheduler luck.
  int backups = 2;
  /// Passed to the InvariantChecker. Keep true even for the negative
  /// control — the resulting stream-exact violation IS the expected
  /// failure the control asserts on.
  bool expect_masked = true;
};

/// One double-failure trial: FaultPlan::MultiFailure(seed, backups) against
/// a 1+`backups` group, with conviction/promotion attribution pulled
/// from the trace so reports can say WHO died and WHO won the promotion race.
struct MultiFailureVerdict {
  std::uint64_t seed = 0;
  std::string plan;
  std::vector<Violation> violations;

  bool complete = false;
  std::uint64_t received = 0;
  int backups = 0;
  /// The schedule names the leader as one victim (65% of seeds). At
  /// backups == 1 these are total outages — the negative control's target.
  bool leader_involved = false;
  std::vector<std::string> convicted;  // member host names, conviction order
  std::string promotion_winner;        // "" = nobody promoted
  std::uint64_t takeovers = 0;
  std::uint64_t non_ft = 0;
  std::int64_t sim_ns = 0;

  /// FNV-1a fold of every field above: same seed => same digest.
  std::uint64_t digest = 0;

  bool ok() const { return violations.empty(); }
  std::string report() const;
};

MultiFailureVerdict run_multi_failure_seed(
    std::uint64_t seed, const MultiFailureOptions& opts = {});

}  // namespace sttcp::harness
