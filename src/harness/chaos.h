// One chaos trial: adversarial multi-fault schedule + invariant verdict.
//
// run_chaos_seed(seed) is the unit the fuzzer, the replay path and the bench
// all share: build the Figure-2 scenario from `seed`, draw the 2–4-fault
// FaultPlan::Adversarial(seed) schedule, run the transfer under an
// InvariantChecker, and fold everything observable into a ChaosVerdict. The
// verdict carries a fingerprint of every outcome-relevant quantity, so
// "same seed => bit-identical verdict" is a testable property, and
// ChaosVerdict::report() prints the exact seed + schedule + replay command
// when anything is violated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/invariants.h"
#include "sim/time.h"

namespace sttcp::harness {

struct ChaosOptions {
  /// Transfer size. Big enough that every fault window in an adversarial
  /// schedule (faults land by 0.8 s, windows run up to 1.5 s) overlaps the
  /// live stream; small enough to keep 200 seeds cheap.
  std::uint64_t file_size = 8'000'000;
  /// Wall on simulated time; generous next to the ~1 s healthy transfer so
  /// retransmission storms and failovers have room to resolve.
  sim::Duration run_cap = sim::Duration::seconds(90);
  /// Passed through to InvariantChecker: adversarial plans are survivable by
  /// construction, so completion is part of the verdict.
  bool expect_masked = true;
};

struct ChaosVerdict {
  std::uint64_t seed = 0;
  std::string plan;
  std::vector<Violation> violations;

  // Outcome + impairment accounting (for reports and the bench table).
  bool complete = false;
  std::uint64_t received = 0;
  std::uint64_t corrupted = 0;      // frames corrupted on the wire
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t burst_dropped = 0;
  std::uint64_t checksum_drops = 0;  // stack-level drops across all hosts
  std::uint64_t takeovers = 0;
  std::uint64_t non_ft = 0;
  std::int64_t sim_ns = 0;  // simulated time consumed

  /// FNV-1a fold of every field above (violations included): two runs of the
  /// same seed must produce equal digests.
  std::uint64_t digest = 0;

  bool ok() const { return violations.empty(); }
  /// Multi-line failure report: seed, schedule, violations, and the
  /// one-command replay line.
  std::string report() const;
};

ChaosVerdict run_chaos_seed(std::uint64_t seed, const ChaosOptions& opts = {});

}  // namespace sttcp::harness
