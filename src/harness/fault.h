// Composable fault injection for Scenario.
//
// Faults are values: a factory names WHAT fails, builders say WHEN and how
// often, and Scenario::inject() arms it against the live topology:
//
//   using namespace sttcp::sim::literals;
//   scenario.inject(Fault::Crash(Node::kPrimary).at(2_s));
//   scenario.inject(Fault::FrameLoss(Node::kBackup, 40).at(1_s).repeat(3, 500_ms));
//   scenario.inject(Fault::LinkFlap(Node::kClient, 200_ms).at(4_s));
//
// Every injection stamps the fault_injected trace event and (when telemetry
// is enabled) the obs::FailoverTimeline kFaultInjected milestone, so the
// failover decomposition starts at the true fault time regardless of which
// fault class fired. A FaultPlan bundles several faults so a whole drill can
// be passed around as one object.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sttcp::harness {

class Scenario;

/// The four machines of the Figure-2 topology (the serial cable is addressed
/// by the Serial* faults; the optional logger host is not a fault target).
enum class Node { kClient, kPrimary, kBackup, kGateway };

const char* to_string(Node n);

class Fault {
 public:
  /// HW/OS crash: the host stops entirely (Table 1 row 1).
  static Fault Crash(Node n);
  /// Revive a crashed host: power restored, NICs healed, boot hooks run
  /// (blank TCP stack, fresh application, ST-TCP rejoin solicitation). The
  /// inverse of Crash; a no-op on a host that is already up.
  static Fault PowerOn(Node n);
  /// NIC/cable failure: the NIC goes down, the host keeps running (row 4).
  static Fault NicFailure(Node n);
  static Fault NicRestore(Node n);
  /// Cut / restore the RS-232 heartbeat cable.
  static Fault SerialCut();
  static Fault SerialRestore();
  /// Drop the next `frames` frames in each direction of the node's switch
  /// link (temporary loss; drives the missed-byte recovery path).
  static Fault FrameLoss(Node n, int frames);
  /// Take the node's switch link down / up (both directions, silent loss).
  static Fault LinkDown(Node n);
  static Fault LinkUp(Node n);
  /// LinkDown immediately followed by LinkUp after `down_for`.
  static Fault LinkFlap(Node n, sim::Duration down_for);
  /// Escape hatch: run an arbitrary action against the scenario. The label
  /// appears in the trace; used by the bench harness for app-level faults
  /// (hang, clean close, abort) that are not topology events.
  static Fault Custom(std::string label, std::function<void(Scenario&)> action);

  /// Fire at `t` (relative to injection time; default: immediately).
  Fault at(sim::Duration t) const;
  /// Fire `times` times in total, `interval` apart (default: once).
  Fault repeat(int times, sim::Duration interval) const;

  const std::string& label() const { return label_; }
  sim::Duration when() const { return at_; }
  int times() const { return times_; }
  sim::Duration interval() const { return interval_; }

 private:
  friend class Scenario;
  Fault() = default;

  std::string label_;
  std::function<void(Scenario&)> action_;
  sim::Duration at_ = sim::Duration::zero();
  int times_ = 1;
  sim::Duration interval_ = sim::Duration::zero();
};

/// An ordered bundle of faults; injected as one unit.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::initializer_list<Fault> faults) : faults_(faults) {}

  FaultPlan& add(Fault f) {
    faults_.push_back(std::move(f));
    return *this;
  }

  const std::vector<Fault>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }

 private:
  std::vector<Fault> faults_;
};

}  // namespace sttcp::harness
