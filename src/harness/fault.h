// Composable fault injection for Scenario.
//
// Faults are values: a factory names WHAT fails, builders say WHEN and how
// often, and Scenario::inject() arms it against the live topology:
//
//   using namespace sttcp::sim::literals;
//   scenario.inject(Fault::Crash(Node::kPrimary).at(2_s));
//   scenario.inject(Fault::FrameLoss(Node::kBackup, 40).at(1_s).repeat(3, 500_ms));
//   scenario.inject(Fault::LinkFlap(Node::kClient, 200_ms).at(4_s));
//
// Every injection stamps the fault_injected trace event and (when telemetry
// is enabled) the obs::FailoverTimeline kFaultInjected milestone, so the
// failover decomposition starts at the true fault time regardless of which
// fault class fired. A FaultPlan bundles several faults so a whole drill can
// be passed around as one object.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/clock_domain.h"
#include "sim/time.h"

namespace sttcp::harness {

class Scenario;

/// The four machines of the Figure-2 topology (the serial cable is addressed
/// by the Serial* faults; the optional logger host is not a fault target).
/// kBackup2/kBackup3 address the extra replication-group backups of an
/// extra_backups > 0 scenario; on a classic pair they alias kBackup so a
/// group schedule stays injectable as a negative control.
enum class Node { kClient, kPrimary, kBackup, kGateway, kBackup2, kBackup3 };

const char* to_string(Node n);

class Fault {
 public:
  /// HW/OS crash: the host stops entirely (Table 1 row 1).
  static Fault Crash(Node n);
  /// Revive a crashed host: power restored, NICs healed, boot hooks run
  /// (blank TCP stack, fresh application, ST-TCP rejoin solicitation). The
  /// inverse of Crash; a no-op on a host that is already up.
  static Fault PowerOn(Node n);
  /// NIC/cable failure: the NIC goes down, the host keeps running (row 4).
  static Fault NicFailure(Node n);
  static Fault NicRestore(Node n);
  /// Cut / restore the RS-232 heartbeat cable.
  static Fault SerialCut();
  static Fault SerialRestore();
  /// Drop the next `frames` frames in each direction of the node's switch
  /// link (temporary loss; drives the missed-byte recovery path).
  static Fault FrameLoss(Node n, int frames);
  /// Take the node's switch link down / up (both directions, silent loss).
  static Fault LinkDown(Node n);
  static Fault LinkUp(Node n);
  /// LinkDown immediately followed by LinkUp after `down_for`.
  static Fault LinkFlap(Node n, sim::Duration down_for);

  // --- adversarial impairments (net::Impairment on the node's switch link,
  // both directions). `window` bounds the impairment: the knob resets after
  // that long; zero means it stays armed until cleared by hand. ------------
  /// Single-bit frame corruption with probability `p` per frame.
  static Fault Corrupt(Node n, double p, sim::Duration window);
  /// Frame duplication with probability `p` per frame.
  static Fault Duplicate(Node n, double p, sim::Duration window);
  /// Bounded reordering: with probability `p` a frame is delayed `delay`
  /// extra and allowed to arrive behind its successors.
  static Fault Reorder(Node n, double p, sim::Duration delay, sim::Duration window);
  /// Gilbert–Elliott burst loss: per-frame P(enter Bad) / P(exit Bad); every
  /// frame offered while Bad is lost.
  static Fault BurstLoss(Node n, double p_enter, double p_exit, sim::Duration window);
  /// Uniform latency jitter in [0, max_jitter); never reorders by itself.
  static Fault Jitter(Node n, sim::Duration max_jitter, sim::Duration window);
  /// RS-232 line noise: per-message bit-flip / mid-message-cut probabilities.
  static Fault SerialCorrupt(double corrupt_p, double truncate_p, sim::Duration window);

  // --- grey failures: slow-not-dead, the host keeps heartbeating ----------
  /// CPU stall: the node's TCP/application processing freezes per `profile`
  /// (sim::ClockDomain) while interrupt-level work — the NIC, UDP/ICMP, and
  /// the ST-TCP endpoint's real-time-priority heartbeat daemon — keeps
  /// running. The peer keeps hearing "alive" with frozen progress counters:
  /// conviction must come from counter stagnation, not heartbeat silence.
  static Fault CpuStall(Node n, sim::LagProfile profile);
  /// Degraded NIC receive path: frames travelling TOWARD the node are
  /// dropped i.i.d. with probability `p` (the transmit side stays clean).
  /// TCP retransmission masks this class entirely; it must never be
  /// convicted on its own.
  static Fault SlowNic(Node n, double p, sim::Duration window);
  /// Application hang (paper §4.2): the node's server process stops
  /// consuming and producing, sockets stay open, the stack and heartbeat
  /// daemon keep running. Requires Scenario::register_server_app(n, ...);
  /// a no-op (with a trace record) when no app is registered for the node.
  static Fault AppHang(Node n);
  /// Escape hatch: run an arbitrary action against the scenario. The label
  /// appears in the trace; used by the bench harness for app-level faults
  /// (hang, clean close, abort) that are not topology events.
  static Fault Custom(std::string label, std::function<void(Scenario&)> action);

  /// Fire at `t` (relative to injection time; default: immediately).
  Fault at(sim::Duration t) const;
  /// Fire `times` times in total, `interval` apart (default: once).
  Fault repeat(int times, sim::Duration interval) const;

  const std::string& label() const { return label_; }
  sim::Duration when() const { return at_; }
  int times() const { return times_; }
  sim::Duration interval() const { return interval_; }

 private:
  friend class Scenario;
  Fault() = default;

  std::string label_;
  std::function<void(Scenario&)> action_;
  sim::Duration at_ = sim::Duration::zero();
  int times_ = 1;
  sim::Duration interval_ = sim::Duration::zero();
};

/// An ordered bundle of faults; injected as one unit.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::initializer_list<Fault> faults) : faults_(faults) {}

  FaultPlan& add(Fault f) {
    faults_.push_back(std::move(f));
    return *this;
  }

  /// Draw a 2–4-fault adversarial schedule from `seed`: at most one fatal
  /// server fault (crash / NIC failure / serial cut), the rest bounded-window
  /// link and serial impairments. Schedules are survivable by construction —
  /// combinations that amount to a simultaneous double failure (e.g. a NIC
  /// failure plus serial noise, which can blind both channels at once) are
  /// excluded, so every generated plan must be masked and the chaos fuzzer
  /// can assert completion. Same seed, same plan.
  static FaultPlan Adversarial(std::uint64_t seed);

  /// Draw a SIMULTANEOUS double-failure schedule from `seed`: two distinct
  /// replication-group members crash at the same instant in [300, 1500] ms —
  /// leader + a backup about 2/3 of the time, backup + backup otherwise —
  /// plus 0–2 mild loss-free garnish impairments. The RNG draw sequence is
  /// independent of `n_backups`, so the same seed yields the same schedule
  /// shape at every group size; member indices beyond the roster clamp to
  /// the highest existing backup (at N = 2 a leader+backup2 schedule becomes
  /// leader+backup — the negative control that MUST fail, while N = 3 masks
  /// it). Survivable by construction at n_backups >= 2 under quorum
  /// promotion: at least one member always survives. Same seed, same plan.
  static FaultPlan MultiFailure(std::uint64_t seed, int n_backups = 2);

  /// True when MultiFailure(seed, ...) draws a leader-involving schedule
  /// (the pair crashed = leader + one backup). Re-derivable from the seed
  /// alone so sweeps can select negative-control seeds without injecting.
  static bool MultiFailureInvolvesLeader(std::uint64_t seed);

  /// Draw a grey-failure schedule from `seed`: exactly ONE convictable grey
  /// fault — an application hang, or a hard CPU stall longer than any
  /// conviction budget — on the primary or the backup, landing at 200–800 ms,
  /// plus up to two mild bounded-window garnish impairments (jitter /
  /// duplication / reordering only). Schedules are survivable by
  /// construction: no loss of any kind is drawn, because frame loss can
  /// freeze counters (a client whose ACKs are dropped looks exactly like a
  /// stalled primary) or blind the grey host's own view of its healthy peer —
  /// either way manufacturing a false conviction the sweep would then have
  /// to tolerate. Same seed, same plan. The convictable fault is always
  /// faults().front().
  static FaultPlan Grey(std::uint64_t seed);

  const std::vector<Fault>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }

  /// Human-readable schedule ("corrupt:client(p=0.012,1.20s) @0.30s; ...")
  /// — printed next to the seed when a chaos run violates an invariant.
  std::string str() const;

 private:
  std::vector<Fault> faults_;
};

}  // namespace sttcp::harness
