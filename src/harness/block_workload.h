// Closed-loop block-store clients speaking the envelope protocol — the
// request/response counterpart of the byte-stream Workload.
//
// A fixed population of clients each loops:
//
//   connect -> OPEN(token) -> N ops (GET/PUT/DELETE, one outstanding)
//           -> CLOSE -> close -> think -> reconnect
//
// Every client owns a disjoint block range, so the per-workload ORACLE —
// the client-side model of what each block must contain — is race-free:
// after a PUT-OK the oracle expects those bytes, after a DELETE-OK it
// expects NotFound, and every GET response is checked byte-exact against
// it. The oracle persists across sessions and across failovers, which is
// exactly the point: a GET served by the promoted backup must return the
// bytes a PUT acknowledged by the dead primary wrote.
//
// Response-exactness under ST-TCP's output-commit gate makes the oracle
// sound: a mutation's response is released only once the backup holds its
// decisions, so an acknowledged write is never lost. The one ambiguity a
// client can face — a connection dying with a mutation outstanding — is
// handled the way a real client must: the block's content becomes UNKNOWN
// until the next successful GET re-learns it. In a masked (survivable)
// scenario that path should never trigger; `mismatches` must be zero in
// any scenario.
//
// Deterministic like everything in the harness: one forked Rng drives ops,
// payloads and think times, so (seed, config) -> bit-identical run.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "app/envelope.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "tcp/stack.h"

namespace sttcp::harness {

class Scenario;

struct BlockWorkloadConfig {
  /// Closed-loop population; client i owns blocks
  /// [i * blocks_per_client, (i+1) * blocks_per_client).
  std::size_t clients = 8;
  std::uint32_t blocks_per_client = 16;
  std::uint32_t block_size = 512;  // must match the server's geometry
  /// Ops per session between OPEN and CLOSE.
  std::uint32_t ops_per_session = 16;
  sim::Duration think_mean = sim::Duration::millis(20);
  sim::Duration duration = sim::Duration::seconds(5);
  /// Op mix: PUT with put_prob, DELETE with delete_prob, GET otherwise.
  double put_prob = 0.35;
  double delete_prob = 0.05;
  std::uint64_t auth_token = 0x5354544350415050ULL;  // BlockStoreConfig default
};

class BlockWorkload {
 public:
  struct Stats {
    std::uint64_t requests = 0;       // sent
    std::uint64_t responses = 0;      // received and parsed
    std::uint64_t ok = 0;             // Status::kOk
    std::uint64_t expected_misses = 0;  // kNotFound the oracle predicted
    std::uint64_t bad_status = 0;     // any status the oracle did not predict
    std::uint64_t mismatches = 0;     // GET data != oracle (NEVER allowed)
    std::uint64_t protocol_errors = 0;  // response framing violations
    std::uint64_t sessions_started = 0;
    std::uint64_t sessions_completed = 0;  // full op count + CLOSE-OK + FIN
    std::uint64_t failed = 0;         // sessions ended any other way
    std::uint64_t resets = 0;         // sessions closed by RST
    std::uint64_t unknown_marks = 0;  // mutations orphaned by a dead conn
  };

  BlockWorkload(Scenario& sc, BlockWorkloadConfig cfg);
  BlockWorkload(sim::World& world, tcp::TcpStack& stack,
                net::Ipv4Addr client_ip, net::SocketAddr server,
                BlockWorkloadConfig cfg);
  ~BlockWorkload();
  BlockWorkload(const BlockWorkload&) = delete;
  BlockWorkload& operator=(const BlockWorkload&) = delete;

  void start();

  bool generation_done() const;
  /// Generation finished AND every client's connection has closed.
  bool drained() const { return generation_done() && open_conns_ == 0; }

  const Stats& stats() const { return stats_; }
  const BlockWorkloadConfig& config() const { return cfg_; }

  /// Client-visible request latency (send -> response parsed), microseconds.
  /// The cold-cache failover scenario reads its tail from here.
  const obs::Histogram& request_us() const { return request_us_; }
  /// Order-sensitive fold of every response outcome plus final counters.
  std::uint64_t digest() const;

 private:
  struct Outstanding {
    app::MsgType type = app::MsgType::kOpen;
    std::uint32_t block = 0;
    net::Bytes put_data;  // kPut: bytes the oracle learns on OK
    sim::SimTime sent_at;
  };
  /// One closed-loop client (population slot). The slot survives across its
  /// successive sessions; the connection and session state do not.
  struct Client {
    Client(sim::EventLoop& loop) : think(loop) {}
    sim::OneShotTimer think;
    tcp::TcpConnection* conn = nullptr;
    std::uint64_t incarnation = 0;  // guards stale callbacks after respawn
    app::Decoder decoder;
    std::uint32_t session = 0;
    std::uint32_t req_id = 0;
    std::uint32_t ops_done = 0;
    bool open_sent = false;
    bool close_sent = false;
    bool has_outstanding = false;
    Outstanding out;
    net::Bytes tx;  // unsent request bytes (send-buffer backpressure)
  };

  sim::SimTime now() const { return loop_.now(); }
  sim::Duration draw_exp(sim::Duration mean);
  void spawn(std::size_t i);
  void arm_respawn(std::size_t i);
  void send_next(std::size_t i);
  void send_frame(Client& c, const app::Envelope& e);
  void flush_tx(Client& c);
  void on_readable(std::size_t i);
  void on_response(std::size_t i, const app::Envelope& resp);
  void on_closed(std::size_t i, tcp::CloseReason reason);
  void fold(std::uint64_t v) { digest_ = (digest_ ^ v) * 0x100000001b3ULL; }
  void fold_bytes(net::BytesView b) {
    for (const std::uint8_t x : b) fold(x);
  }

  BlockWorkloadConfig cfg_;
  tcp::TcpStack& stack_;
  sim::EventLoop& loop_;
  net::Ipv4Addr client_ip_;
  net::SocketAddr server_;
  sim::Rng rng_;

  std::vector<std::unique_ptr<Client>> clients_;
  std::size_t open_conns_ = 0;
  sim::SimTime gen_end_;
  bool started_ = false;

  /// The oracle: expected device content per block. Absent = NotFound.
  std::map<std::uint32_t, net::Bytes> expected_;
  /// Blocks orphaned by a connection that died with a mutation outstanding:
  /// any response is accepted once, and the oracle re-learns from it.
  std::set<std::uint32_t> unknown_;

  Stats stats_;
  obs::Histogram request_us_;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;
};

}  // namespace sttcp::harness
