#include "harness/topology.h"

#include <algorithm>
#include <stdexcept>

namespace sttcp::harness {

// --- Topology ---------------------------------------------------------------

Topology::Topology(TopologyConfig cfg) : cfg_(std::move(cfg)) {
  worlds_.push_back(
      std::make_unique<sim::World>(cfg_.seed, cfg_.log_out, cfg_.log_level));
  if (cfg_.enable_metrics) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    worlds_[0]->set_metrics(metrics_.get());  // components bind as they construct
  }
  power_.push_back(std::make_unique<net::PowerController>(*worlds_[0]));
  power_shards_.push_back(0);
}

Topology::~Topology() = default;

void Topology::run_for(sim::Duration d) {
  if (worlds_.size() == 1) {
    worlds_[0]->loop().run_for(d);
    return;
  }
  ensure_executor();
  executor_->run_until(worlds_[0]->loop().now() + d);
}

void Topology::set_threads(int n) {
  threads_ = n < 1 ? 1 : n;
  executor_.reset();  // rebuilt with the new pool on the next run_for
}

sim::Duration Topology::lookahead() const {
  sim::Duration la = sim::Duration::zero();
  for (const TrunkEntry& t : trunks_) {
    if (la == sim::Duration::zero() || t.latency < la) la = t.latency;
  }
  // Trunkless multi-shard fabrics never exchange messages; any positive
  // window works, so reuse the default link latency.
  return la == sim::Duration::zero() ? cfg_.link_latency : la;
}

void Topology::ensure_executor() {
  if (executor_ != nullptr) return;
  std::vector<sim::ParallelExecutor::Shard> shards;
  shards.reserve(worlds_.size());
  for (std::size_t k = 0; k < worlds_.size(); ++k) {
    sim::ParallelExecutor::Shard s;
    s.loop = &worlds_[k]->loop();
    // Drain every trunk ending in shard k, in trunk creation order — a fixed
    // injection order is part of the determinism contract.
    s.drain = [this, k](sim::SimTime horizon) {
      for (TrunkEntry& t : trunks_) {
        if (t.shard_a == static_cast<int>(k)) t.channel->drain_into_a(horizon);
        if (t.shard_b == static_cast<int>(k)) t.channel->drain_into_b(horizon);
      }
    };
    shards.push_back(std::move(s));
  }
  executor_ = std::make_unique<sim::ParallelExecutor>(std::move(shards),
                                                      lookahead(), threads_);
}

Topology::HostEntry* Topology::host_by_name(const std::string& name) {
  for (HostEntry& h : hosts_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

net::Link* Topology::make_link(const std::string& name, std::uint64_t bandwidth_bps) {
  auto link = std::make_unique<net::Link>(build_world(), cfg_.link_latency, bandwidth_bps);
  // The registry is single-threaded; only shard 0's components bind live
  // instruments (export_metrics still reads every shard's stats at rest).
  if (metrics_ != nullptr && build_shard_ == 0) {
    link->bind_metrics(*metrics_, "net.link." + name);
  }
  links_.push_back(std::move(link));
  link_names_.push_back(name);
  link_shards_.push_back(build_shard_);
  return links_.back().get();
}

void Topology::export_metrics() {
  if (metrics_ == nullptr) return;
  obs::MetricsRegistry& reg = *metrics_;

  for (std::size_t i = 0; i < links_.size(); ++i) {
    const net::Link::Stats& s = links_[i]->stats();
    const std::string p = "net.link." + link_names_[i];
    reg.counter(p + ".frames_sent").set(s.frames_sent);
    reg.counter(p + ".frames_delivered").set(s.frames_delivered);
    reg.counter(p + ".frames_dropped").set(s.frames_dropped);
    reg.counter(p + ".bytes_delivered").set(s.bytes_delivered);
    // Impairment engines exist only on links a fault (or checker) touched.
    if (const net::Impairment* imp = links_[i]->impairment_ptr()) {
      const net::Impairment::Stats& is = imp->stats();
      reg.counter(p + ".impair.burst_dropped").set(is.burst_dropped);
      reg.counter(p + ".impair.corrupted").set(is.corrupted);
      reg.counter(p + ".impair.duplicated").set(is.duplicated);
      reg.counter(p + ".impair.reordered").set(is.reordered);
    }
  }

  for (std::size_t i = 0; i < switches_.size(); ++i) {
    // Switch 0 keeps the classic un-qualified names.
    const std::string p =
        i == 0 ? "net.switch." : "net.switch." + switch_names_[i] + ".";
    const net::EthernetSwitch::Stats& sw = switches_[i]->stats();
    reg.counter(p + "forwarded").set(sw.forwarded);
    reg.counter(p + "flooded").set(sw.flooded);
    reg.counter(p + "multicast").set(sw.multicast);
  }

  for (const auto& r : routers_) {
    const std::string p = "net.router." + r->name() + ".";
    const net::Router::Stats& s = r->stats();
    reg.counter(p + "forwarded").set(s.forwarded);
    reg.counter(p + "delivered_local").set(s.delivered_local);
    reg.counter(p + "no_route").set(s.no_route);
    reg.counter(p + "ttl_expired").set(s.ttl_expired);
    reg.counter(p + "arp_miss").set(s.arp_miss);
    reg.counter(p + "dropped_down").set(s.dropped_down);
  }

  for (const auto& c : cells_) {
    const std::string p =
        c->name().empty() ? "net.serial." : "net.serial." + c->name() + ".";
    const net::SerialLink::Stats& se = c->serial().stats();
    reg.counter(p + "messages_sent").set(se.messages_sent);
    reg.counter(p + "messages_delivered").set(se.messages_delivered);
    reg.counter(p + "messages_dropped").set(se.messages_dropped);
    reg.counter(p + "bytes_delivered").set(se.bytes_delivered);
    reg.counter(p + "messages_corrupted").set(se.messages_corrupted);
    reg.counter(p + "messages_truncated").set(se.messages_truncated);
  }

  const auto export_stack = [&reg](const tcp::TcpStack& stack, const std::string& host) {
    const tcp::TcpStack::Stats& s = stack.stats();
    const std::string p = "tcp." + host;
    reg.counter(p + ".segments_in").set(s.segments_in);
    reg.counter(p + ".segments_demuxed").set(s.segments_demuxed);
    reg.counter(p + ".segments_buffered").set(s.segments_buffered);
    reg.counter(p + ".bad_checksum").set(s.bad_checksum);
    reg.counter(p + ".rst_sent").set(s.rst_sent);
    reg.counter(p + ".connections_accepted").set(s.connections_accepted);
    reg.counter(p + ".replicas_created").set(s.replicas_created);
  };
  for (HostEntry& h : hosts_) {
    if (h.stack != nullptr) export_stack(*h.stack, h.name);
  }
  for (const auto& c : cells_) {
    export_stack(c->primary_stack(), c->primary().name());
    for (int b = 0; b < c->backup_count(); ++b) {
      export_stack(c->backup_stack(b), c->backup_host(b).name());
    }
  }

  const auto export_ep = [&reg](const sttcp::StTcpEndpoint* ep, const std::string& host) {
    if (ep == nullptr) return;
    const sttcp::StTcpEndpoint::Stats& s = ep->stats();
    const std::string p = "sttcp." + host;
    reg.counter(p + ".hb_sent").set(s.hb_sent);
    reg.counter(p + ".hb_received_ip").set(s.hb_received_ip);
    reg.counter(p + ".hb_received_serial").set(s.hb_received_serial);
    reg.counter(p + ".replicas_created").set(s.replicas_created);
    reg.counter(p + ".missed_bytes_injected").set(s.missed_bytes_injected);
    reg.counter(p + ".logger_bytes_injected").set(s.logger_bytes_injected);
    reg.counter(p + ".takeovers").set(s.takeovers);
    reg.counter(p + ".reintegrations").set(s.reintegrations);
    reg.counter(p + ".rejoins").set(s.rejoins);
    reg.counter(p + ".snapshot_conns_adopted").set(s.snapshot_conns_adopted);
    reg.counter(p + ".hb_malformed").set(s.hb_malformed);
    reg.counter(p + ".hb_stale").set(s.hb_stale);
    reg.counter(p + ".control_malformed").set(s.control_malformed);
    reg.counter(p + ".hold_peak_bytes").set(ep->hold_peak_bytes());
    if (ep->group_mode()) {
      reg.counter(p + ".promotions").set(s.promotions);
      reg.counter(p + ".votes_granted").set(s.votes_granted);
      reg.counter(p + ".votes_denied").set(s.votes_denied);
      reg.counter(p + ".view_changes").set(s.view_changes);
    }
  };
  for (auto& c : cells_) {
    export_ep(c->primary_endpoint(), c->primary().name());
    for (int b = 0; b < c->backup_count(); ++b) {
      export_ep(c->backup_endpoint(b), c->backup_host(b).name());
    }
  }

  if (pcap_ != nullptr) {
    reg.counter("obs.pcap.frames_written").set(pcap_->frames_written());
  }
}

std::string Topology::metrics_json() {
  if (metrics_ == nullptr) return "{}";
  export_metrics();
  return metrics_->json();
}

// --- TopologyBuilder --------------------------------------------------------

TopologyBuilder::TopologyBuilder(TopologyConfig cfg)
    : topo_(new Topology(std::move(cfg))) {}

int TopologyBuilder::add_switch(std::string name) {
  const int id = static_cast<int>(topo_->switches_.size());
  topo_->switches_.push_back(
      std::make_unique<net::EthernetSwitch>(topo_->build_world(), name));
  topo_->switch_names_.push_back(std::move(name));
  topo_->switch_shards_.push_back(topo_->build_shard_);
  if (id == 0 && !topo_->cfg_.pcap_path.empty()) {
    topo_->pcap_ = std::make_unique<obs::PcapWriter>(topo_->cfg_.pcap_path);
    topo_->switches_[0]->set_frame_tap(
        [topo = topo_.get()](sim::SimTime at, const net::Frame& frame) {
          topo->pcap_->record(at, frame.view());
        });
  }
  return id;
}

int TopologyBuilder::add_host(std::string name, net::Ipv4Addr ip, int switch_id,
                              HostOptions opt) {
  Topology::HostEntry e;
  e.name = std::move(name);
  e.ip = ip;
  e.switch_id = switch_id;
  e.with_stack = opt.with_stack;
  e.shard = topo_->build_shard_;
  if (opt.mac == net::MacAddr()) {
    opt.mac = net::MacAddr::from_u64(0x02000000a001ull +
                                     static_cast<std::uint64_t>(auto_host_macs_++));
  }
  e.host = std::make_unique<net::Host>(topo_->build_world(), e.name);
  net::Nic& nic = e.host->add_nic(opt.mac);
  e.host->add_ip(ip);
  const std::uint64_t bw = opt.link_bandwidth_bps != 0 ? opt.link_bandwidth_bps
                                                       : topo_->cfg_.link_bandwidth_bps;
  e.link = topo_->make_link(e.name, bw);
  nic.attach(e.link->port(0));
  e.port = topo_->switches_.at(static_cast<std::size_t>(switch_id))
               ->add_port(e.link->port(1));
  topo_->power_.at(static_cast<std::size_t>(opt.power_controller))
      ->register_host(*e.host);
  topo_->hosts_.push_back(std::move(e));
  return static_cast<int>(topo_->hosts_.size() - 1);
}

int TopologyBuilder::add_cell(int switch_id, CellConfig cfg) {
  const int index = static_cast<int>(topo_->cells_.size());
  topo_->cells_.push_back(
      std::make_unique<Cell>(*topo_, index, switch_id, std::move(cfg)));
  return index;
}

int TopologyBuilder::add_power_controller() {
  topo_->power_.push_back(
      std::make_unique<net::PowerController>(topo_->build_world()));
  topo_->power_shards_.push_back(topo_->build_shard_);
  return static_cast<int>(topo_->power_.size() - 1);
}

int TopologyBuilder::add_router(std::string name) {
  topo_->routers_.push_back(
      std::make_unique<net::Router>(topo_->build_world(), std::move(name)));
  topo_->router_shards_.push_back(topo_->build_shard_);
  return static_cast<int>(topo_->routers_.size() - 1);
}

int TopologyBuilder::begin_shard() {
  const int k = static_cast<int>(topo_->worlds_.size());
  // Golden-ratio spread keeps derived seeds distinct for any base seed while
  // staying a pure function of (seed, shard) — reruns are reproducible.
  const std::uint64_t seed =
      topo_->cfg_.seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(k));
  topo_->worlds_.push_back(std::make_unique<sim::World>(
      seed, topo_->cfg_.log_out, topo_->cfg_.log_level));
  topo_->build_shard_ = k;
  return k;
}

std::pair<int, int> TopologyBuilder::add_trunk(int router_a, int router_b,
                                               net::Ipv4Addr ip_a,
                                               net::Ipv4Addr ip_b,
                                               TrunkOptions opt) {
  Topology& t = *topo_;
  const int shard_a = t.router_shards_.at(static_cast<std::size_t>(router_a));
  const int shard_b = t.router_shards_.at(static_cast<std::size_t>(router_b));
  if (shard_a == shard_b) {
    throw std::logic_error("add_trunk: routers are in the same shard");
  }
  net::Router& ra = *t.routers_.at(static_cast<std::size_t>(router_a));
  net::Router& rb = *t.routers_.at(static_cast<std::size_t>(router_b));
  const std::uint64_t bw =
      opt.bandwidth_bps != 0 ? opt.bandwidth_bps : t.cfg_.link_bandwidth_bps;

  // One real Link per side, each owned by its own world (the ShardChannel
  // claims port 1 of both; the routers attach to port 0). The side links
  // carry bandwidth serialization only; the propagation latency lives in
  // the channel itself so frames are queued a full lookahead ahead of their
  // arrival timestamps (see net/shard_link.h).
  const auto side_link = [&](net::Router& r, int shard) {
    auto link = std::make_unique<net::Link>(*t.worlds_[static_cast<std::size_t>(shard)],
                                            sim::Duration::zero(), bw);
    const std::string name = r.name() + ".t" + std::to_string(r.port_count());
    if (t.metrics_ != nullptr && shard == 0) {
      link->bind_metrics(*t.metrics_, "net.link." + name);
    }
    t.links_.push_back(std::move(link));
    t.link_names_.push_back(name);
    t.link_shards_.push_back(shard);
    return t.links_.back().get();
  };
  net::Link* la = side_link(ra, shard_a);
  net::Link* lb = side_link(rb, shard_b);

  auto channel = std::make_unique<net::ShardChannel>(
      *t.worlds_[static_cast<std::size_t>(shard_a)],
      *t.worlds_[static_cast<std::size_t>(shard_b)], la, lb, opt.latency);

  const auto trunk_mac = [](net::Router& r, int router_id) {
    return net::MacAddr::from_u64(0x0200000f0001ull +
                                  (static_cast<std::uint64_t>(router_id) << 8) +
                                  static_cast<std::uint64_t>(r.port_count()));
  };
  const net::MacAddr mac_a = trunk_mac(ra, router_a);
  const int rport_a = ra.add_port(channel->port_a(), mac_a, ip_a);
  const net::MacAddr mac_b = trunk_mac(rb, router_b);
  const int rport_b = rb.add_port(channel->port_b(), mac_b, ip_b);
  ra.add_connected(ip_a, opt.prefix_len, rport_a);
  rb.add_connected(ip_b, opt.prefix_len, rport_b);
  ra.arp_set(rport_a, ip_b, mac_b);
  rb.arp_set(rport_b, ip_a, mac_a);

  t.trunks_.push_back({shard_a, shard_b, std::move(channel), opt.latency});
  return {rport_a, rport_b};
}

int TopologyBuilder::connect_router(int router_id, int switch_id,
                                    net::Ipv4Addr port_ip, int prefix_len,
                                    net::MacAddr mac) {
  net::Router& r = *topo_->routers_.at(static_cast<std::size_t>(router_id));
  if (mac == net::MacAddr()) {
    mac = net::MacAddr::from_u64(0x0200000f0001ull +
                                 (static_cast<std::uint64_t>(router_id) << 8) +
                                 static_cast<std::uint64_t>(r.port_count()));
  }
  net::Link* link =
      topo_->make_link(r.name() + ".p" + std::to_string(r.port_count()),
                       topo_->cfg_.link_bandwidth_bps);
  const int sw_port = topo_->switches_.at(static_cast<std::size_t>(switch_id))
                          ->add_port(link->port(1));
  (void)sw_port;
  const int rport = r.add_port(link->port(0), mac, port_ip);
  r.add_connected(port_ip, prefix_len, rport);
  topo_->router_ports_.push_back({router_id, rport, switch_id, prefix_len});
  return rport;
}

std::unique_ptr<Topology> TopologyBuilder::build() {
  if (built_) throw std::logic_error("TopologyBuilder::build() called twice");
  built_ = true;
  Topology& t = *topo_;

  // One L2 "member" per host/NIC on a subnet, for the static ARP mesh.
  struct Member {
    net::Ipv4Addr ip;
    net::MacAddr mac;
    net::Host* host;
    const Cell* cell;  // null for plain hosts
  };
  for (std::size_t s = 0; s < t.switches_.size(); ++s) {
    const int sid = static_cast<int>(s);
    std::vector<Member> members;
    for (Topology::HostEntry& h : t.hosts_) {
      if (h.switch_id == sid) {
        members.push_back({h.ip, h.host->nic().mac(), h.host.get(), nullptr});
      }
    }
    for (const auto& c : t.cells_) {
      if (c->switch_id() != sid) continue;
      members.push_back({c->primary_ip(), c->config().primary_mac,
                         &c->primary(), c.get()});
      for (int b = 0; b < c->backup_count(); ++b) {
        members.push_back({c->backup_ip(b), c->backup_mac(b),
                           &c->backup_host(b), c.get()});
      }
    }

    // Full static ARP mesh between the subnet's real addresses.
    for (const Member& a : members) {
      for (const Member& b : members) {
        if (a.host != b.host) a.host->arp_set(b.ip, b.mac);
      }
    }
    // Service IPs resolve to the multicast group for every non-member on the
    // subnet (the classic client/gateway serviceIP -> multiEA entries).
    for (const auto& c : t.cells_) {
      if (c->switch_id() != sid) continue;
      for (const Member& m : members) {
        if (m.cell != c.get()) m.host->arp_set(c->service_ip(), c->multicast_mac());
      }
    }

    // Router wiring: router-side ARP for everything on the subnet, and the
    // first router port becomes every member's default gateway.
    bool gateway_set = false;
    for (const Topology::RouterPortEntry& rp : t.router_ports_) {
      if (rp.switch_id != sid) continue;
      net::Router& r = *t.routers_[static_cast<std::size_t>(rp.router)];
      for (const Member& m : members) {
        r.arp_set(rp.port, m.ip, m.mac);
        if (!gateway_set) m.host->set_default_gateway(r.port_mac(rp.port));
      }
      for (const auto& c : t.cells_) {
        if (c->switch_id() == sid) {
          r.arp_set(rp.port, c->service_ip(), c->multicast_mac());
        }
      }
      // Routers sharing a subnet can reach each other (multi-hop paths).
      for (const Topology::RouterPortEntry& other : t.router_ports_) {
        if (other.switch_id != sid || &other == &rp) continue;
        net::Router& o = *t.routers_[static_cast<std::size_t>(other.router)];
        r.arp_set(rp.port, o.port_ip(other.port), o.port_mac(other.port));
      }
      gateway_set = true;
    }
  }

  // Stacks, then cells, in creation order — this is the classic Scenario's
  // RNG fork order for a 1-cell topology (client stack, then serial +
  // primary/backup stacks + endpoints).
  for (Topology::HostEntry& h : t.hosts_) {
    if (h.with_stack) h.stack = std::make_unique<tcp::TcpStack>(*h.host, t.cfg_.tcp);
  }
  for (auto& c : t.cells_) c->start();

  return std::move(topo_);
}

// --- ShardDirector ----------------------------------------------------------

namespace {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

}  // namespace

ShardDirector::ShardDirector(Topology& topo, int vnodes) {
  targets_.reserve(topo.cell_count());
  for (std::size_t i = 0; i < topo.cell_count(); ++i) {
    targets_.push_back(topo.cell(i).connect_addr());
  }
  ring_.reserve(targets_.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t shard = 0; shard < targets_.size(); ++shard) {
    for (int v = 0; v < vnodes; ++v) {
      // Hash (service ip, vnode) so ring layout depends only on the cell
      // set, not on iteration order or pointer values.
      const std::uint64_t key =
          (std::uint64_t{targets_[shard].ip.value()} << 16) |
          static_cast<std::uint64_t>(v);
      ring_.push_back({fnv1a64(&key, sizeof(key), kFnvOffset), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::size_t ShardDirector::shard_for(std::uint64_t flow_id) const {
  if (ring_.empty()) throw std::logic_error("ShardDirector: no cells");
  const std::uint64_t h = fnv1a64(&flow_id, sizeof(flow_id), kFnvOffset);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->shard;
}

net::SocketAddr ShardDirector::target_for(std::uint64_t flow_id) const {
  return targets_.at(shard_for(flow_id));
}

}  // namespace sttcp::harness
