// Scenario: the paper's Figure-2 experimental setup, fully wired.
//
//                    ┌────────┐
//   client ──────────┤        ├────────── primary ──┐
//                    │ switch │                     │ serial (RS-232
//   gateway ─────────┤        ├────────── backup  ──┘  null-modem)
//                    └────────┘
//
// * serviceIP is an IP alias on both servers;
// * the switch carries a static multicast group (multiEA) fanning client
//   traffic to both servers;
// * client and gateway hold a static ARP entry serviceIP -> multiEA;
// * heartbeats run over UDP (IP link) and the serial link;
// * a PowerController provides the STONITH used before takeover.
//
// With `enable_sttcp = false` the same topology runs plain TCP: the backup
// neither taps nor replicates, and the client addresses the primary's own
// IP — the Demo 1 baseline ("even if a hot backup is available…") and the
// Demo 3 overhead comparison.
//
// \deprecated Scenario is now a thin compatibility facade over a one-cell
// Topology (harness/topology.h): it stamps the classic single-pair LAN with
// TopologyBuilder and forwards every accessor. Existing tests and benches
// keep working unchanged — construction order (and therefore every RNG
// fork) is bit-identical to the pre-facade harness, which
// tests/harness/topology_test.cc asserts. New code that needs more than one
// pair, routers, or custom wiring should use TopologyBuilder directly.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "harness/fault.h"
#include "harness/topology.h"
#include "sttcp/logger.h"

namespace sttcp::app {
class ServerApp;
}

namespace sttcp::harness {

struct ScenarioConfig {
  std::uint64_t seed = 1;

  // Network fabric.
  sim::Duration link_latency = sim::Duration::micros(50);
  std::uint64_t link_bandwidth_bps = 100'000'000;  // Fast Ethernet, as in 2005
  /// Override for the backup's port (0 = same as link_bandwidth_bps).
  /// Models the original prototype's mitigation of the tap overload:
  /// "adding an additional NIC and CPU" on the backup (paper §3).
  std::uint64_t backup_link_bandwidth_bps = 0;
  std::uint64_t serial_baud = net::SerialLink::kDefaultBaud;

  // Stacks.
  tcp::TcpConfig tcp;

  // ST-TCP (addresses are filled in by the scenario).
  sttcp::StTcpConfig sttcp;
  bool enable_sttcp = true;
  /// Backups beyond the classic one: 0 keeps the paper's 1+1 pair
  /// bit-exactly; k > 0 runs a 1+N replication group (N = 1 + k backups,
  /// "backup2" at 10.0.0.4, "backup3" at 10.0.0.5, IP heartbeats only).
  int extra_backups = 0;
  /// Add the §4.3 stream logger host (output-commit fallback).
  bool enable_logger = false;

  // Host CPU models (zero = infinitely fast).
  sim::Duration primary_cpu_packet_time = sim::Duration::zero();
  sim::Duration backup_cpu_packet_time = sim::Duration::zero();

  std::ostream* log_out = nullptr;
  sim::LogLevel log_level = sim::LogLevel::kOff;

  // Telemetry (src/obs). Off by default: instruments stay unbound and every
  // component pays only a null-pointer check.
  bool enable_metrics = false;
  /// Write every LAN frame (tapped at switch ingress) to this libpcap file;
  /// empty disables the capture. Readable by Wireshark/tshark.
  std::string pcap_path;

  /// The paper's 2005 testbed: Fast Ethernet, 115.2 kbps serial heartbeat
  /// cable, 200 ms heartbeat period (the demos' default).
  static ScenarioConfig Paper2005();
  /// A modern fabric: gigabit links, 5 µs latency, 1 Mbps serial, 50 ms
  /// heartbeats — shows how failover scales when detection is cheap.
  static ScenarioConfig FastNet();

  /// The equivalent topology-level config (everything but the logger host
  /// and CPU/bandwidth knobs, which are per-host/cell).
  TopologyConfig topology_config() const;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // --- topology access ---------------------------------------------------------
  sim::World& world() { return topo_->world(); }
  /// The one-cell Topology behind the facade.
  Topology& topology() { return *topo_; }
  net::Host& client() { return *topo_->host(0).host; }
  net::Host& primary() { return cell().primary(); }
  net::Host& backup() { return cell().backup(); }
  net::Host& gateway() { return *topo_->host(1).host; }
  net::Host* logger_host() {
    return cfg_.enable_logger ? topo_->host(2).host.get() : nullptr;
  }
  sttcp::StreamLogger* logger() { return logger_.get(); }
  net::Ipv4Addr logger_ip() const { return {10, 0, 0, 9}; }
  net::EthernetSwitch& ethernet_switch() { return topo_->ethernet_switch(); }
  net::PowerController& power() { return topo_->power(); }
  net::SerialLink& serial() { return cell().serial(); }
  net::Link& client_link() { return *topo_->host(0).link; }
  net::Link& primary_link() { return cell().primary_link(); }
  net::Link& backup_link() { return cell().backup_link(); }
  net::Link& gateway_link() { return *topo_->host(1).link; }

  tcp::TcpStack& client_stack() { return *topo_->host(0).stack; }
  tcp::TcpStack& primary_stack() { return cell().primary_stack(); }
  tcp::TcpStack& backup_stack() { return cell().backup_stack(); }
  sttcp::StTcpEndpoint* primary_endpoint() { return cell().primary_endpoint(); }
  sttcp::StTcpEndpoint* backup_endpoint() { return cell().backup_endpoint(); }

  // --- replication group (i = 0 is the classic backup) ---------------------
  int backup_count() { return cell().backup_count(); }
  net::Host& backup_member(int i) { return cell().backup_host(i); }
  net::Link& backup_member_link(int i) { return cell().backup_link(i); }
  tcp::TcpStack& backup_member_stack(int i) { return cell().backup_stack(i); }
  sttcp::StTcpEndpoint* backup_member_endpoint(int i) {
    return cell().backup_endpoint(i);
  }
  net::Ipv4Addr backup_member_ip(int i) const { return cell().backup_ip(i); }

  const ScenarioConfig& config() const { return cfg_; }

  // --- addressing ---------------------------------------------------------------
  net::Ipv4Addr client_ip() const { return {10, 0, 0, 1}; }
  net::Ipv4Addr primary_ip() const { return {10, 0, 0, 2}; }
  net::Ipv4Addr backup_ip() const { return {10, 0, 0, 3}; }
  net::Ipv4Addr gateway_ip() const { return {10, 0, 0, 254}; }
  net::Ipv4Addr service_ip() const { return {10, 0, 0, 100}; }
  std::uint16_t service_port() const { return cfg_.sttcp.service_port; }
  /// Where a client should connect: the virtual service address with
  /// ST-TCP, the primary's own address without it.
  net::SocketAddr connect_addr() const {
    return cfg_.enable_sttcp
               ? net::SocketAddr{service_ip(), service_port()}
               : net::SocketAddr{primary_ip(), service_port()};
  }
  /// The baseline's reconnect target (the hot backup's own address).
  net::SocketAddr backup_addr() const {
    return net::SocketAddr{backup_ip(), service_port()};
  }

  /// Emulate the ORIGINAL ST-TCP architecture (paper §3): the backup also
  /// receives all primary->client traffic (switch egress mirror + backup NIC
  /// in promiscuous mode). The new architecture replaced this with counters
  /// carried in the heartbeat; the ablation bench quantifies the difference.
  void emulate_old_design_tap();

  // --- failure injection ----------------------------------------------------------
  /// Arm a fault (see harness/fault.h). Each firing stamps the
  /// "fault_injected" trace event and the kFaultInjected timeline milestone.
  void inject(Fault fault);
  void inject(const FaultPlan& plan);

  /// Make the node's server application addressable by application-level
  /// faults (Fault::AppHang). The caller keeps ownership; the pointer must
  /// outlive the run. At most one app per node; re-registering replaces.
  void register_server_app(Node n, app::ServerApp* app) {
    server_apps_[static_cast<std::size_t>(n)] = app;
  }
  /// The registered app for `n`, or null.
  app::ServerApp* server_app(Node n) {
    return server_apps_[static_cast<std::size_t>(n)];
  }

  /// \deprecated Wrappers over inject(); use the Fault factories instead,
  /// e.g. inject(Fault::Crash(Node::kPrimary).at(t)).
  void crash_primary_at(sim::Duration t);
  /// \deprecated See crash_primary_at.
  void crash_backup_at(sim::Duration t);
  /// \deprecated See crash_primary_at.
  void fail_primary_nic_at(sim::Duration t);
  /// \deprecated See crash_primary_at.
  void fail_backup_nic_at(sim::Duration t);
  /// \deprecated See crash_primary_at.
  void fail_serial_at(sim::Duration t);
  /// \deprecated See crash_primary_at.
  void drop_backup_frames_at(sim::Duration t, int n);

  // --- telemetry ------------------------------------------------------------------
  /// Null unless cfg.enable_metrics.
  obs::MetricsRegistry* metrics() { return topo_->metrics(); }
  obs::PcapWriter* pcap() { return topo_->pcap(); }
  /// Snapshot the cumulative Stats counters (links, switch, serial, stacks,
  /// endpoints) into the registry; live instruments are already there.
  void export_metrics() { topo_->export_metrics(); }
  /// export_metrics() then serialise the whole registry (counters, gauges,
  /// histogram summaries, failover timeline) as one JSON object.
  std::string metrics_json() { return topo_->metrics_json(); }

  void run_for(sim::Duration d) { topo_->run_for(d); }

 private:
  Cell& cell() { return topo_->cell(0); }
  const Cell& cell() const { return const_cast<Scenario*>(this)->topo_->cell(0); }

  ScenarioConfig cfg_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<sttcp::StreamLogger> logger_;
  std::array<app::ServerApp*, 6> server_apps_{};  // indexed by Node
};

}  // namespace sttcp::harness
