// Minimal fixed-width table printer for the benchmark binaries — each bench
// prints rows shaped like the paper's demo results.
#pragma once

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace sttcp::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], r[i].size());
      }
    }
    print_row(os, headers_, widths);
    std::string sep;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      sep += std::string(widths[i] + 2, '-');
      if (i + 1 < widths.size()) sep += "+";
    }
    os << sep << "\n";
    for (const auto& r : rows_) print_row(os, r, widths);
  }

  /// Machine-readable form: a JSON array of row objects keyed by header.
  /// Cells that parse as numbers are emitted bare; everything else is a
  /// string. `name` labels the table in the enclosing object.
  void write_json(std::ostream& os, const std::string& name) const {
    os << "{\"table\": " << json_string(name) << ", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      os << (r == 0 ? "" : ", ") << "{";
      for (std::size_t i = 0; i < headers_.size(); ++i) {
        const std::string& cell = i < rows_[r].size() ? rows_[r][i] : "";
        os << (i == 0 ? "" : ", ") << json_string(headers_[i]) << ": "
           << (is_number(cell) ? cell : json_string(cell));
      }
      os << "}";
    }
    os << "]}\n";
  }

 private:
  static std::string json_string(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

  static bool is_number(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0';
  }
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(3) << v;
      return os.str();
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  static void print_row(std::ostream& os, const std::vector<std::string>& r,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      os << " " << std::left << std::setw(static_cast<int>(widths[i]))
         << (i < r.size() ? r[i] : "") << " ";
      if (i + 1 < widths.size()) os << "|";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sttcp::harness
