// Churn workload generator: thousands of concurrent client connections
// through the tapped pair.
//
// Each flow runs the full lifecycle connect -> request -> transfer -> close,
// then (closed-loop) is replaced after a think time. Arrival processes:
//  * kPoisson     — open loop, exponential inter-arrival gaps;
//  * kOnOff       — Poisson arrivals gated by an exponential on/off phase
//                   process (bursty load, the classic interrupted-Poisson
//                   model);
//  * kClosedLoop  — a fixed client population, each looping
//                   connect -> transfer -> close -> think -> repeat, so the
//                   concurrency level is pinned instead of the arrival rate.
// Flow sizes are bounded-Pareto (heavy-tailed, like real file/object sizes)
// via inverse-CDF sampling; min == max gives fixed-size flows.
//
// The generator pairs with app::SizedServer: each flow opens a connection to
// the service address, sends an 8-byte big-endian size request, verifies the
// returned pattern bytes, and records flow-completion time (first byte to
// last byte of payload plus connection setup) into log-linear histograms.
//
// Everything draws from a single forked Rng and runs on the simulation
// clock, so a fixed (seed, config) pair produces a bit-identical run —
// digest() folds every flow outcome (id, size, bytes, close reason, finish
// time) into one value the determinism tests compare across runs and
// SweepRunner thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/random.h"
#include "tcp/stack.h"

namespace sttcp::harness {

class Scenario;

struct WorkloadConfig {
  enum class Arrivals { kPoisson, kOnOff, kClosedLoop };
  Arrivals arrivals = Arrivals::kPoisson;

  /// Open-loop (kPoisson, kOnOff): mean new connections per second. For
  /// kOnOff this is the rate DURING an on phase.
  double arrival_rate_cps = 100.0;
  /// kOnOff: exponential mean duration of the on / off phases.
  sim::Duration on_mean = sim::Duration::millis(500);
  sim::Duration off_mean = sim::Duration::millis(500);

  /// kClosedLoop: population size and exponential mean think time between a
  /// flow finishing and its replacement connecting.
  std::size_t closed_clients = 100;
  sim::Duration think_mean = sim::Duration::millis(50);

  /// Bounded-Pareto flow sizes on [flow_min_bytes, flow_max_bytes] with
  /// shape alpha (smaller alpha = heavier tail). min == max is fixed-size.
  double pareto_alpha = 1.3;
  std::uint64_t flow_min_bytes = 4 * 1024;
  std::uint64_t flow_max_bytes = 1024 * 1024;

  /// Arrivals beyond this many concurrent flows are shed (counted, not
  /// started) — an open-loop overload guard, not a rate limiter.
  std::size_t max_concurrent = 4096;
  /// Stop generating after this many offered flows (0 = duration-limited).
  std::uint64_t max_flows = 0;
  /// Generation window: no new flows start after start() + duration.
  /// In-flight flows run to completion (see drained()).
  sim::Duration duration = sim::Duration::seconds(10);

  /// Per-flow connect target (a sharded fabric's front end — typically
  /// ShardDirector::target_for). Null connects every flow to the
  /// constructor's default address. The resolver must be deterministic in
  /// its arguments: it is part of the reproducible run.
  std::function<net::SocketAddr(std::uint64_t flow_id, std::size_t slot)> target_for;
};

class Workload {
 public:
  struct Stats {
    std::uint64_t offered = 0;    // arrivals generated (started + shed)
    std::uint64_t started = 0;    // connections actually opened
    std::uint64_t shed = 0;       // refused by the max_concurrent guard
    std::uint64_t completed = 0;  // graceful close, byte-exact, full size
    std::uint64_t failed = 0;     // anything else
    std::uint64_t corrupt = 0;    // flows with a pattern mismatch
    std::uint64_t resets = 0;     // flows closed by RST (client-visible!)
    std::uint64_t bytes_received = 0;
    std::size_t peak_concurrent = 0;
  };

  /// Flows for one target-per-flow, distinguishable per shard.
  struct TargetStats {
    std::uint64_t started = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t resets = 0;
    std::uint64_t bytes_received = 0;
    obs::Histogram fct_us;
  };

  Workload(Scenario& sc, WorkloadConfig cfg);
  /// Scenario-free form for TopologyBuilder fabrics: drive `stack` from
  /// `client_ip`, defaulting every flow to `server` unless cfg.target_for
  /// redirects it.
  Workload(sim::World& world, tcp::TcpStack& stack, net::Ipv4Addr client_ip,
           net::SocketAddr server, WorkloadConfig cfg);
  ~Workload();
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Begin generating arrivals. Call once; then Scenario::run_for() long
  /// enough to cover duration plus a drain margin.
  void start();

  /// No further flows will be generated.
  bool generation_done() const;
  /// Generation finished AND every started flow has closed.
  bool drained() const { return generation_done() && active_.empty(); }

  const Stats& stats() const { return stats_; }
  const WorkloadConfig& config() const { return cfg_; }
  std::size_t active_flows() const { return active_.size(); }

  /// Flow-completion time (connect() to last payload byte), microseconds.
  const obs::Histogram& fct_us() const { return fct_us_; }
  /// Connection setup time (connect() to ESTABLISHED), microseconds.
  const obs::Histogram& connect_us() const { return connect_us_; }
  /// Per-connect-target breakdown (one entry per shard in a fabric run;
  /// a single entry when no resolver is set). Ordered by address.
  const std::map<net::SocketAddr, TargetStats>& per_target() const {
    return per_target_;
  }

  /// Order-sensitive fold of every finished flow's (id, size, bytes
  /// received, close reason, corrupt flag, finish time) plus the final
  /// counters: two runs are behaviourally identical iff digests match.
  std::uint64_t digest() const;

 private:
  struct Flow {
    std::uint64_t id = 0;
    std::uint64_t size = 0;
    std::size_t slot = 0;  // closed-loop population slot
    net::SocketAddr target;
    tcp::TcpConnection* conn = nullptr;
    std::uint64_t received = 0;
    sim::SimTime started;
    bool corrupt = false;
    bool fct_recorded = false;
  };
  /// Closed-loop client: its think timer survives across its flows.
  struct Slot {
    explicit Slot(sim::EventLoop& loop) : timer(loop) {}
    sim::OneShotTimer timer;
  };

  sim::SimTime now() const { return loop_.now(); }
  std::uint64_t draw_size();
  sim::Duration draw_exp(sim::Duration mean);
  void schedule_next_arrival();
  void enter_phase(bool on);
  void launch_flow(std::size_t slot);
  void arm_respawn(std::size_t slot);
  void on_flow_established(std::uint64_t id);
  void on_flow_readable(std::uint64_t id);
  void on_flow_closed(std::uint64_t id, tcp::CloseReason reason);
  void fold(std::uint64_t v) { digest_ = (digest_ ^ v) * 0x100000001b3ULL; }

  WorkloadConfig cfg_;
  tcp::TcpStack& stack_;
  sim::EventLoop& loop_;
  net::Ipv4Addr client_ip_;
  net::SocketAddr server_;
  sim::Rng rng_;

  sim::SimTime gen_end_;
  bool started_ = false;
  bool on_ = false;  // kOnOff phase
  sim::OneShotTimer arrival_timer_;
  sim::OneShotTimer phase_timer_;
  std::vector<std::unique_ptr<Slot>> slots_;

  std::uint64_t next_flow_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Flow>> active_;
  Stats stats_;
  obs::Histogram fct_us_;
  obs::Histogram connect_us_;
  std::map<net::SocketAddr, TargetStats> per_target_;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace sttcp::harness
