#include "harness/cell.h"

#include "harness/topology.h"

namespace sttcp::harness {

namespace {

/// Derived member MACs: cell 0 gets the classic 02:00:00:00:00:02/03, cell k
/// shifts the fourth octet so stamped cells never collide.
net::MacAddr derived_mac(int cell_index, bool backup) {
  return net::MacAddr::from_u64(0x020000000002ull +
                                (static_cast<std::uint64_t>(cell_index) << 16) +
                                (backup ? 1 : 0));
}

std::string member_name(const std::string& prefix, const char* role) {
  return prefix.empty() ? role : prefix + "." + role;
}

}  // namespace

Cell::Cell(Topology& topo, int index, int switch_id, CellConfig cfg)
    : topo_(topo),
      world_(&topo.build_world()),
      cfg_(std::move(cfg)),
      index_(index),
      switch_id_(switch_id),
      shard_(topo.build_shard()),
      sttcp_enabled_(cfg_.enable_sttcp && topo.config().enable_sttcp) {
  const TopologyConfig& tc = topo_.config();
  if (cfg_.primary_mac == net::MacAddr()) cfg_.primary_mac = derived_mac(index_, false);
  if (cfg_.backup_mac == net::MacAddr()) cfg_.backup_mac = derived_mac(index_, true);
  multicast_mac_ = cfg_.multicast_group == net::MacAddr()
                       ? net::MacAddr::multicast_group(0x57 + static_cast<std::uint32_t>(index_))
                       : cfg_.multicast_group;

  sim::World& world = *world_;
  net::EthernetSwitch& sw = topo_.ethernet_switch(static_cast<std::size_t>(switch_id_));
  net::PowerController& power =
      topo_.power(static_cast<std::size_t>(cfg_.power_controller));

  const std::string pname = member_name(cfg_.name, "primary");
  const std::string bname = member_name(cfg_.name, "backup");
  const std::uint64_t pbw =
      cfg_.link_bandwidth_bps != 0 ? cfg_.link_bandwidth_bps : tc.link_bandwidth_bps;
  const std::uint64_t bbw =
      cfg_.backup_link_bandwidth_bps != 0 ? cfg_.backup_link_bandwidth_bps : pbw;

  primary_ = std::make_unique<net::Host>(world, pname);
  net::Nic& pnic = primary_->add_nic(cfg_.primary_mac);
  primary_->add_ip(cfg_.primary_ip);
  primary_link_ = topo_.make_link(pname, pbw);
  pnic.attach(primary_link_->port(0));
  primary_port_ = sw.add_port(primary_link_->port(1));
  power.register_host(*primary_);

  backup_ = std::make_unique<net::Host>(world, bname);
  net::Nic& bnic = backup_->add_nic(cfg_.backup_mac);
  backup_->add_ip(cfg_.backup_ip);
  backup_link_ = topo_.make_link(bname, bbw);
  bnic.attach(backup_link_->port(0));
  backup_port_ = sw.add_port(backup_link_->port(1));
  power.register_host(*backup_);

  // The ST-TCP service address: an alias on both servers, reached through
  // the multicast group so both taps see every client packet.
  primary_->add_ip(cfg_.service_ip);
  backup_->add_ip(cfg_.service_ip);
  pnic.subscribe_multicast(multicast_mac_);
  bnic.subscribe_multicast(multicast_mac_);
  sw.add_multicast_group(multicast_mac_, {primary_port_, backup_port_});

  primary_->set_cpu_packet_time(cfg_.primary_cpu_packet_time);
  backup_->set_cpu_packet_time(cfg_.backup_cpu_packet_time);
}

Cell::~Cell() = default;

void Cell::start() {
  const TopologyConfig& tc = topo_.config();
  // Serial null-modem cable between the servers (port 0 = primary).
  serial_ = std::make_unique<net::SerialLink>(*world_, tc.serial_baud);

  primary_stack_ = std::make_unique<tcp::TcpStack>(*primary_, tc.tcp);
  backup_stack_ = std::make_unique<tcp::TcpStack>(*backup_, tc.tcp);

  if (!sttcp_enabled_) return;

  net::PowerController& power =
      topo_.power(static_cast<std::size_t>(cfg_.power_controller));
  sttcp::StTcpConfig pc = tc.sttcp;
  pc.service_ip = cfg_.service_ip;
  pc.my_ip = cfg_.primary_ip;
  pc.peer_ip = cfg_.backup_ip;
  pc.peer_name = backup_->name();
  pc.gateway_ip = cfg_.gateway_ip;
  if (!tc.logger_ip.is_zero()) pc.logger_ip = tc.logger_ip;
  sttcp::StTcpConfig bc = pc;
  bc.my_ip = cfg_.backup_ip;
  bc.peer_ip = cfg_.primary_ip;
  bc.peer_name = primary_->name();

  primary_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
      *primary_, *primary_stack_, power, &serial_->port(0), sttcp::Role::kPrimary, pc);
  backup_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
      *backup_, *backup_stack_, power, &serial_->port(1), sttcp::Role::kBackup, bc);
  primary_ep_->start();
  backup_ep_->start();
}

std::uint16_t Cell::service_port() const { return topo_.config().sttcp.service_port; }

net::SocketAddr Cell::connect_addr() const {
  return sttcp_enabled_ ? net::SocketAddr{cfg_.service_ip, service_port()}
                        : net::SocketAddr{cfg_.primary_ip, service_port()};
}

net::SocketAddr Cell::backup_addr() const {
  return net::SocketAddr{cfg_.backup_ip, service_port()};
}

}  // namespace sttcp::harness
