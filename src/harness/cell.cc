#include "harness/cell.h"

#include "harness/topology.h"

namespace sttcp::harness {

namespace {

/// Derived member MACs: cell 0 gets the classic 02:00:00:00:00:02/03, cell k
/// shifts the fourth octet so stamped cells never collide. Extra group
/// backups continue the sequence (member 2 = ...:04, member 3 = ...:05).
net::MacAddr derived_mac(int cell_index, int member) {
  return net::MacAddr::from_u64(0x020000000002ull +
                                (static_cast<std::uint64_t>(cell_index) << 16) +
                                static_cast<std::uint64_t>(member));
}

std::string member_name(const std::string& prefix, const std::string& role) {
  return prefix.empty() ? role : prefix + "." + role;
}

/// "backup", "backup2", "backup3", ... (i = backup index, 0-based).
std::string backup_role(int i) {
  return i == 0 ? "backup" : "backup" + std::to_string(i + 1);
}

}  // namespace

Cell::Cell(Topology& topo, int index, int switch_id, CellConfig cfg)
    : topo_(topo),
      world_(&topo.build_world()),
      cfg_(std::move(cfg)),
      index_(index),
      switch_id_(switch_id),
      shard_(topo.build_shard()),
      sttcp_enabled_(cfg_.enable_sttcp && topo.config().enable_sttcp) {
  const TopologyConfig& tc = topo_.config();
  if (cfg_.primary_mac == net::MacAddr()) cfg_.primary_mac = derived_mac(index_, 0);
  if (cfg_.backup_mac == net::MacAddr()) cfg_.backup_mac = derived_mac(index_, 1);
  if (cfg_.extra_backups < 0) cfg_.extra_backups = 0;
  multicast_mac_ = cfg_.multicast_group == net::MacAddr()
                       ? net::MacAddr::multicast_group(0x57 + static_cast<std::uint32_t>(index_))
                       : cfg_.multicast_group;

  sim::World& world = *world_;
  net::EthernetSwitch& sw = topo_.ethernet_switch(static_cast<std::size_t>(switch_id_));
  net::PowerController& power =
      topo_.power(static_cast<std::size_t>(cfg_.power_controller));

  const std::string pname = member_name(cfg_.name, "primary");
  const std::string bname = member_name(cfg_.name, "backup");
  const std::uint64_t pbw =
      cfg_.link_bandwidth_bps != 0 ? cfg_.link_bandwidth_bps : tc.link_bandwidth_bps;
  const std::uint64_t bbw =
      cfg_.backup_link_bandwidth_bps != 0 ? cfg_.backup_link_bandwidth_bps : pbw;

  primary_ = std::make_unique<net::Host>(world, pname);
  net::Nic& pnic = primary_->add_nic(cfg_.primary_mac);
  primary_->add_ip(cfg_.primary_ip);
  primary_link_ = topo_.make_link(pname, pbw);
  pnic.attach(primary_link_->port(0));
  primary_port_ = sw.add_port(primary_link_->port(1));
  power.register_host(*primary_);

  backup_ = std::make_unique<net::Host>(world, bname);
  net::Nic& bnic = backup_->add_nic(cfg_.backup_mac);
  backup_->add_ip(cfg_.backup_ip);
  backup_link_ = topo_.make_link(bname, bbw);
  bnic.attach(backup_link_->port(0));
  backup_port_ = sw.add_port(backup_link_->port(1));
  power.register_host(*backup_);

  // The ST-TCP service address: an alias on both servers, reached through
  // the multicast group so both taps see every client packet.
  primary_->add_ip(cfg_.service_ip);
  backup_->add_ip(cfg_.service_ip);
  pnic.subscribe_multicast(multicast_mac_);
  bnic.subscribe_multicast(multicast_mac_);

  // Extra group backups after the classic pair: a k=0 cell forks the world
  // RNG exactly twice (the two Link constructors above), bit-identically to
  // every build before replication groups existed.
  std::vector<int> tap_ports = {primary_port_, backup_port_};
  for (int i = 1; i < backup_count(); ++i) {
    const std::string name = member_name(cfg_.name, backup_role(i));
    const net::MacAddr mac = derived_mac(index_, 1 + i);
    auto host = std::make_unique<net::Host>(world, name);
    net::Nic& nic = host->add_nic(mac);
    host->add_ip(backup_ip(i));
    net::Link* link = topo_.make_link(name, bbw);
    nic.attach(link->port(0));
    const int port = sw.add_port(link->port(1));
    power.register_host(*host);
    host->add_ip(cfg_.service_ip);
    nic.subscribe_multicast(multicast_mac_);
    host->set_cpu_packet_time(cfg_.backup_cpu_packet_time);
    tap_ports.push_back(port);
    extra_hosts_.push_back(std::move(host));
    extra_links_.push_back(link);
    extra_ports_.push_back(port);
    extra_macs_.push_back(mac);
  }
  sw.add_multicast_group(multicast_mac_, tap_ports);

  primary_->set_cpu_packet_time(cfg_.primary_cpu_packet_time);
  backup_->set_cpu_packet_time(cfg_.backup_cpu_packet_time);
}

Cell::~Cell() = default;

void Cell::start() {
  const TopologyConfig& tc = topo_.config();
  // Serial null-modem cable between the servers (port 0 = primary). It stays
  // a point-to-point pair cable even in group mode: extra backups heartbeat
  // over IP only (docs/GROUPS.md).
  serial_ = std::make_unique<net::SerialLink>(*world_, tc.serial_baud);

  primary_stack_ = std::make_unique<tcp::TcpStack>(*primary_, tc.tcp);
  backup_stack_ = std::make_unique<tcp::TcpStack>(*backup_, tc.tcp);
  for (auto& h : extra_hosts_) {
    extra_stacks_.push_back(std::make_unique<tcp::TcpStack>(*h, tc.tcp));
  }

  if (!sttcp_enabled_) return;

  net::PowerController& power =
      topo_.power(static_cast<std::size_t>(cfg_.power_controller));
  sttcp::StTcpConfig pc = tc.sttcp;
  pc.service_ip = cfg_.service_ip;
  pc.my_ip = cfg_.primary_ip;
  pc.peer_ip = cfg_.backup_ip;
  pc.peer_name = backup_->name();
  pc.gateway_ip = cfg_.gateway_ip;
  if (!tc.logger_ip.is_zero()) pc.logger_ip = tc.logger_ip;
  if (cfg_.extra_backups > 0) {
    // Group mode: every member carries the same roster; ranks start in
    // roster order (primary = rank 0).
    pc.group.push_back({primary_->name(), cfg_.primary_ip, /*serial=*/true});
    pc.group.push_back({backup_->name(), cfg_.backup_ip, /*serial=*/true});
    for (int i = 1; i < backup_count(); ++i) {
      pc.group.push_back(
          {extra_hosts_[static_cast<std::size_t>(i - 1)]->name(), backup_ip(i),
           /*serial=*/false});
    }
    pc.my_member = 0;
  }
  sttcp::StTcpConfig bc = pc;
  bc.my_ip = cfg_.backup_ip;
  bc.peer_ip = cfg_.primary_ip;
  bc.peer_name = primary_->name();
  bc.my_member = cfg_.extra_backups > 0 ? 1 : -1;

  primary_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
      *primary_, *primary_stack_, power, &serial_->port(0), sttcp::Role::kPrimary, pc);
  backup_ep_ = std::make_unique<sttcp::StTcpEndpoint>(
      *backup_, *backup_stack_, power, &serial_->port(1), sttcp::Role::kBackup, bc);
  for (int i = 1; i < backup_count(); ++i) {
    sttcp::StTcpConfig xc = pc;
    xc.my_ip = backup_ip(i);
    xc.peer_ip = cfg_.primary_ip;
    xc.peer_name = primary_->name();
    xc.my_member = 1 + i;
    extra_eps_.push_back(std::make_unique<sttcp::StTcpEndpoint>(
        *extra_hosts_[static_cast<std::size_t>(i - 1)],
        *extra_stacks_[static_cast<std::size_t>(i - 1)], power,
        /*serial=*/nullptr, sttcp::Role::kBackup, xc));
  }
  primary_ep_->start();
  backup_ep_->start();
  for (auto& ep : extra_eps_) ep->start();
}

net::Host& Cell::backup_host(int i) {
  return i == 0 ? *backup_ : *extra_hosts_.at(static_cast<std::size_t>(i - 1));
}

net::Link& Cell::backup_link(int i) {
  return i == 0 ? *backup_link_ : *extra_links_.at(static_cast<std::size_t>(i - 1));
}

int Cell::backup_switch_port(int i) const {
  return i == 0 ? backup_port_ : extra_ports_.at(static_cast<std::size_t>(i - 1));
}

tcp::TcpStack& Cell::backup_stack(int i) {
  return i == 0 ? *backup_stack_ : *extra_stacks_.at(static_cast<std::size_t>(i - 1));
}

sttcp::StTcpEndpoint* Cell::backup_endpoint(int i) {
  if (i == 0) return backup_ep_.get();
  const auto k = static_cast<std::size_t>(i - 1);
  return k < extra_eps_.size() ? extra_eps_[k].get() : nullptr;
}

net::MacAddr Cell::backup_mac(int i) const {
  return i == 0 ? cfg_.backup_mac : extra_macs_.at(static_cast<std::size_t>(i - 1));
}

std::uint16_t Cell::service_port() const { return topo_.config().sttcp.service_port; }

net::SocketAddr Cell::connect_addr() const {
  return sttcp_enabled_ ? net::SocketAddr{cfg_.service_ip, service_port()}
                        : net::SocketAddr{cfg_.primary_ip, service_port()};
}

net::SocketAddr Cell::backup_addr() const {
  return net::SocketAddr{cfg_.backup_ip, service_port()};
}

}  // namespace sttcp::harness
