#include "harness/chaos.h"

#include <cstdio>
#include <memory>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"
#include "net/impairment.h"

namespace sttcp::harness {

namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv_mix(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ChaosVerdict run_chaos_seed(std::uint64_t seed, const ChaosOptions& opts) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  // Chaos runs MUST verify TCP checksums: the checksum-drop invariant is
  // what turns wire corruption into accounted drops instead of silent
  // stream damage. The config default is already true; this is the audit.
  cfg.tcp.verify_checksums = true;
  // Crash schedules can leave one side's FIN arbitration waiting on a dead
  // peer; same allowance the existing chaos sweep makes.
  cfg.sttcp.max_delay_fin = sim::Duration::seconds(20);
  Scenario sc(std::move(cfg));

  app::FileServer p_app(sc.primary_stack(), sc.service_port(), opts.file_size);
  app::FileServer b_app(sc.backup_stack(), sc.service_port(), opts.file_size);
  app::DownloadClient::Options copt;
  copt.expected_bytes = opts.file_size;
  app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                             {sc.connect_addr()}, copt);

  InvariantChecker::Options iopt;
  iopt.expected_bytes = opts.file_size;
  iopt.expect_masked = opts.expect_masked;
  InvariantChecker checker(sc, iopt);

  const FaultPlan plan = FaultPlan::Adversarial(seed);
  sc.inject(plan);
  client.start();

  const sim::SimTime deadline = sc.world().now() + opts.run_cap;
  while (!client.complete() && sc.world().now() < deadline) {
    sc.run_for(sim::Duration::millis(250));
  }
  // Drain: FIN arbitration, hold-buffer release and replica GC settle before
  // the bounded-memory checks read their final state.
  sc.run_for(sim::Duration::seconds(1));

  ChaosVerdict v;
  v.seed = seed;
  v.plan = plan.str();
  v.violations = checker.check(client);
  v.complete = client.complete();
  v.received = client.received();
  const net::Link* links[4] = {&sc.client_link(), &sc.primary_link(),
                               &sc.backup_link(), &sc.gateway_link()};
  for (const net::Link* l : links) {
    if (const net::Impairment* imp = l->impairment_ptr()) {
      v.corrupted += imp->stats().corrupted;
      v.duplicated += imp->stats().duplicated;
      v.reordered += imp->stats().reordered;
      v.burst_dropped += imp->stats().burst_dropped;
    }
  }
  v.checksum_drops = sc.client_stack().stats().bad_checksum +
                     sc.primary_stack().stats().bad_checksum +
                     sc.backup_stack().stats().bad_checksum;
  v.takeovers = sc.world().trace().count("takeover");
  v.non_ft = sc.world().trace().count("non_ft_mode");
  v.sim_ns = (sc.world().now() - sim::SimTime::zero()).ns();

  std::uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, v.seed);
  h = fnv_mix(h, v.plan);
  for (const Violation& viol : v.violations) h = fnv_mix(h, viol.str());
  h = fnv_mix(h, v.complete ? 1 : 0);
  h = fnv_mix(h, v.received);
  h = fnv_mix(h, v.corrupted);
  h = fnv_mix(h, v.duplicated);
  h = fnv_mix(h, v.reordered);
  h = fnv_mix(h, v.burst_dropped);
  h = fnv_mix(h, v.checksum_drops);
  h = fnv_mix(h, v.takeovers);
  h = fnv_mix(h, v.non_ft);
  h = fnv_mix(h, static_cast<std::uint64_t>(v.sim_ns));
  v.digest = h;
  return v;
}

MultiFailureVerdict run_multi_failure_seed(std::uint64_t seed,
                                           const MultiFailureOptions& opts) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.tcp.verify_checksums = true;
  cfg.sttcp.max_delay_fin = sim::Duration::seconds(20);
  cfg.extra_backups = opts.backups > 1 ? opts.backups - 1 : 0;
  Scenario sc(std::move(cfg));

  app::FileServer p_app(sc.primary_stack(), sc.service_port(), opts.file_size);
  std::vector<std::unique_ptr<app::FileServer>> b_apps;
  for (int b = 0; b < sc.backup_count(); ++b) {
    b_apps.push_back(std::make_unique<app::FileServer>(
        sc.backup_member_stack(b), sc.service_port(), opts.file_size));
  }
  app::DownloadClient::Options copt;
  copt.expected_bytes = opts.file_size;
  app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                             {sc.connect_addr()}, copt);

  InvariantChecker::Options iopt;
  iopt.expected_bytes = opts.file_size;
  iopt.expect_masked = opts.expect_masked;
  InvariantChecker checker(sc, iopt);

  const FaultPlan plan = FaultPlan::MultiFailure(seed, opts.backups);
  sc.inject(plan);
  client.start();

  const sim::SimTime deadline = sc.world().now() + opts.run_cap;
  while (!client.complete() && sc.world().now() < deadline) {
    sc.run_for(sim::Duration::millis(250));
  }
  sc.run_for(sim::Duration::seconds(1));

  MultiFailureVerdict v;
  v.seed = seed;
  v.plan = plan.str();
  v.backups = opts.backups;
  v.leader_involved = FaultPlan::MultiFailureInvolvesLeader(seed);
  v.violations = checker.check(client);
  v.complete = client.complete();
  v.received = client.received();
  const sim::TraceRecorder& trace = sc.world().trace();
  for (const sim::TraceEntry& e : trace.entries()) {
    if (e.event == "member_convicted") v.convicted.push_back(e.detail);
    if (e.event == "promoted" && v.promotion_winner.empty()) {
      v.promotion_winner = e.component;
    }
  }
  v.takeovers = trace.count("takeover");
  v.non_ft = trace.count("non_ft_mode");
  v.sim_ns = (sc.world().now() - sim::SimTime::zero()).ns();

  std::uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, v.seed);
  h = fnv_mix(h, v.plan);
  for (const Violation& viol : v.violations) h = fnv_mix(h, viol.str());
  h = fnv_mix(h, v.complete ? 1 : 0);
  h = fnv_mix(h, v.received);
  h = fnv_mix(h, static_cast<std::uint64_t>(v.backups));
  h = fnv_mix(h, v.leader_involved ? 1 : 0);
  for (const std::string& c : v.convicted) h = fnv_mix(h, c);
  h = fnv_mix(h, v.promotion_winner);
  h = fnv_mix(h, v.takeovers);
  h = fnv_mix(h, v.non_ft);
  h = fnv_mix(h, static_cast<std::uint64_t>(v.sim_ns));
  v.digest = h;
  return v;
}

std::string MultiFailureVerdict::report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "multi-failure seed %llu (1+%d): %s\n",
                static_cast<unsigned long long>(seed), backups,
                ok() ? "all invariants held" : "INVARIANT VIOLATION");
  out += line;
  out += "  plan: " + plan + "\n";
  std::string who;
  for (const std::string& c : convicted) {
    if (!who.empty()) who += ",";
    who += c;
  }
  std::snprintf(line, sizeof(line),
                "  outcome: %s, %llu bytes; leader_involved=%d convicted=[%s] "
                "promoted=%s takeovers=%llu non_ft=%llu sim=%.3fs\n",
                complete ? "complete" : "INCOMPLETE",
                static_cast<unsigned long long>(received),
                leader_involved ? 1 : 0, who.c_str(),
                promotion_winner.empty() ? "(nobody)" : promotion_winner.c_str(),
                static_cast<unsigned long long>(takeovers),
                static_cast<unsigned long long>(non_ft),
                static_cast<double>(sim_ns) * 1e-9);
  out += line;
  for (const Violation& v : violations) out += "  violated " + v.str() + "\n";
  if (!ok()) {
    std::snprintf(line, sizeof(line),
                  "  replay: STTCP_MULTI_SEED=%llu "
                  "./build/tests/integration_multi_failure_test "
                  "--gtest_filter='*ReplaySeed*'\n",
                  static_cast<unsigned long long>(seed));
    out += line;
  }
  return out;
}

Node grey_victim(const FaultPlan& plan) {
  // By construction the convictable fault is first and names its node in the
  // label ("app_hang:backup", "cpu_stall:primary(stall(8.00s))").
  const std::string& l = plan.faults().front().label();
  return l.find(":backup") != std::string::npos ? Node::kBackup
                                                : Node::kPrimary;
}

GreyVerdict run_grey_seed(std::uint64_t seed, const GreyOptions& opts) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.tcp.verify_checksums = true;
  // Arm the absolute-stagnation criterion: this is the only sweep that sets
  // it, so every other suite keeps the bit-identical zero-default behaviour.
  cfg.sttcp.progress_stall_time = opts.progress_stall_time;
  // A convicted-then-STONITHed host can leave FIN arbitration pending on the
  // survivor; same allowance the adversarial sweep makes.
  cfg.sttcp.max_delay_fin = sim::Duration::seconds(20);
  Scenario sc(std::move(cfg));

  app::FileServer p_app(sc.primary_stack(), sc.service_port(), opts.file_size);
  app::FileServer b_app(sc.backup_stack(), sc.service_port(), opts.file_size);
  sc.register_server_app(Node::kPrimary, &p_app);
  sc.register_server_app(Node::kBackup, &b_app);
  app::DownloadClient::Options copt;
  copt.expected_bytes = opts.file_size;
  app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                             {sc.connect_addr()}, copt);

  InvariantChecker::Options iopt;
  iopt.expected_bytes = opts.file_size;
  iopt.expect_masked = true;
  InvariantChecker checker(sc, iopt);

  const FaultPlan plan = FaultPlan::Grey(seed);
  const Node victim = grey_victim(plan);
  sc.inject(plan);
  client.start();

  const sim::SimTime deadline = sc.world().now() + opts.run_cap;
  while (!client.complete() && sc.world().now() < deadline) {
    sc.run_for(sim::Duration::millis(250));
  }
  sc.run_for(sim::Duration::seconds(1));

  GreyVerdict v;
  v.seed = seed;
  v.plan = plan.str();
  v.grey_node = to_string(victim);
  v.violations = checker.check(client);
  checker.check_grey(sc.world().trace(), victim, opts.conviction_budget,
                     v.violations);
  v.complete = client.complete();
  v.received = client.received();

  const sim::TraceRecorder& trace = sc.world().trace();
  const std::string peer_name =
      victim == Node::kPrimary ? "backup" : "primary";
  const auto fault_at = trace.first_time("fault_injected");
  for (const sim::TraceEntry& e : trace.entries()) {
    if (e.event != "peer_convicted") continue;
    if (e.component == peer_name && v.conviction_event.empty()) {
      v.conviction_event = e.detail;
      if (fault_at.has_value()) {
        v.conviction_latency_ms = (e.at - *fault_at).to_millis();
      }
    } else if (e.component == to_string(victim)) {
      ++v.false_convictions;
    }
  }
  v.takeovers = trace.count("takeover");
  v.non_ft = trace.count("non_ft_mode");
  v.sim_ns = (sc.world().now() - sim::SimTime::zero()).ns();

  std::uint64_t h = 1469598103934665603ull;
  h = fnv_mix(h, v.seed);
  h = fnv_mix(h, v.plan);
  for (const Violation& viol : v.violations) h = fnv_mix(h, viol.str());
  h = fnv_mix(h, v.complete ? 1 : 0);
  h = fnv_mix(h, v.received);
  h = fnv_mix(h, v.grey_node);
  h = fnv_mix(h, v.conviction_event);
  h = fnv_mix(h, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(v.conviction_latency_ms * 1000)));
  h = fnv_mix(h, v.false_convictions);
  h = fnv_mix(h, v.takeovers);
  h = fnv_mix(h, v.non_ft);
  h = fnv_mix(h, static_cast<std::uint64_t>(v.sim_ns));
  v.digest = h;
  return v;
}

std::string GreyVerdict::report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "grey seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                ok() ? "all invariants held" : "INVARIANT VIOLATION");
  out += line;
  out += "  plan: " + plan + "\n";
  std::snprintf(line, sizeof(line),
                "  outcome: %s, %llu bytes; grey=%s convicted_by=%s "
                "latency=%.1fms false_convictions=%llu takeovers=%llu "
                "non_ft=%llu sim=%.3fs\n",
                complete ? "complete" : "INCOMPLETE",
                static_cast<unsigned long long>(received), grey_node.c_str(),
                conviction_event.empty() ? "(never)" : conviction_event.c_str(),
                conviction_latency_ms,
                static_cast<unsigned long long>(false_convictions),
                static_cast<unsigned long long>(takeovers),
                static_cast<unsigned long long>(non_ft),
                static_cast<double>(sim_ns) * 1e-9);
  out += line;
  for (const Violation& v : violations) out += "  violated " + v.str() + "\n";
  if (!ok()) {
    std::snprintf(line, sizeof(line),
                  "  replay: STTCP_GREY_SEED=%llu "
                  "./build/tests/integration_grey_chaos_test "
                  "--gtest_filter='*ReplaySeed*'\n",
                  static_cast<unsigned long long>(seed));
    out += line;
  }
  return out;
}

std::string ChaosVerdict::report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "chaos seed %llu: %s\n",
                static_cast<unsigned long long>(seed),
                ok() ? "all invariants held" : "INVARIANT VIOLATION");
  out += line;
  out += "  plan: " + plan + "\n";
  std::snprintf(line, sizeof(line),
                "  outcome: %s, %llu bytes; corrupted=%llu dup=%llu "
                "reordered=%llu burst_dropped=%llu checksum_drops=%llu "
                "takeovers=%llu non_ft=%llu sim=%.3fs\n",
                complete ? "complete" : "INCOMPLETE",
                static_cast<unsigned long long>(received),
                static_cast<unsigned long long>(corrupted),
                static_cast<unsigned long long>(duplicated),
                static_cast<unsigned long long>(reordered),
                static_cast<unsigned long long>(burst_dropped),
                static_cast<unsigned long long>(checksum_drops),
                static_cast<unsigned long long>(takeovers),
                static_cast<unsigned long long>(non_ft),
                static_cast<double>(sim_ns) * 1e-9);
  out += line;
  for (const Violation& v : violations) out += "  violated " + v.str() + "\n";
  if (!ok()) {
    std::snprintf(line, sizeof(line),
                  "  replay: STTCP_CHAOS_SEED=%llu "
                  "./build/tests/integration_chaos_fuzz_test "
                  "--gtest_filter='*ReplaySeed*'\n",
                  static_cast<unsigned long long>(seed));
    out += line;
  }
  return out;
}

}  // namespace sttcp::harness
