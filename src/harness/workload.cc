#include "harness/workload.h"

#include <algorithm>
#include <cmath>

#include "app/pattern.h"
#include "app/server.h"
#include "harness/scenario.h"

namespace sttcp::harness {

Workload::Workload(Scenario& sc, WorkloadConfig cfg)
    : Workload(sc.world(), sc.client_stack(), sc.client_ip(), sc.connect_addr(),
               std::move(cfg)) {}

Workload::Workload(sim::World& world, tcp::TcpStack& stack, net::Ipv4Addr client_ip,
                   net::SocketAddr server, WorkloadConfig cfg)
    : cfg_(std::move(cfg)),
      stack_(stack),
      loop_(world.loop()),
      client_ip_(client_ip),
      server_(server),
      rng_(world.rng().fork()),
      arrival_timer_(loop_),
      phase_timer_(loop_) {}

Workload::~Workload() {
  // Detach callbacks from still-open connections: they outlive us in the
  // stack and must not call into a destroyed generator.
  for (auto& [id, f] : active_) {
    if (f->conn != nullptr) f->conn->set_callbacks({});
  }
}

void Workload::start() {
  started_ = true;
  gen_end_ = now() + cfg_.duration;
  switch (cfg_.arrivals) {
    case WorkloadConfig::Arrivals::kPoisson:
      schedule_next_arrival();
      break;
    case WorkloadConfig::Arrivals::kOnOff:
      enter_phase(true);
      break;
    case WorkloadConfig::Arrivals::kClosedLoop:
      slots_.reserve(cfg_.closed_clients);
      for (std::size_t i = 0; i < cfg_.closed_clients; ++i) {
        slots_.push_back(std::make_unique<Slot>(loop_));
        // Stagger the population's first connects by one think time each so
        // the run does not open with a synchronized SYN burst.
        slots_[i]->timer.arm(draw_exp(cfg_.think_mean),
                             [this, i] { launch_flow(i); });
      }
      break;
  }
}

bool Workload::generation_done() const {
  if (!started_) return false;
  if (now() >= gen_end_) return true;
  return cfg_.max_flows != 0 && stats_.offered >= cfg_.max_flows;
}

std::uint64_t Workload::draw_size() {
  if (cfg_.flow_min_bytes >= cfg_.flow_max_bytes) return cfg_.flow_min_bytes;
  // Bounded-Pareto inverse CDF on [L, H] with shape a:
  //   x = (-(u·Hᵃ − u·Lᵃ − Hᵃ) / (Hᵃ·Lᵃ))^(−1/a)
  const double a = cfg_.pareto_alpha;
  const double la = std::pow(static_cast<double>(cfg_.flow_min_bytes), a);
  const double ha = std::pow(static_cast<double>(cfg_.flow_max_bytes), a);
  const double u = rng_.uniform01();
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / a);
  const auto sized = static_cast<std::uint64_t>(x);
  return std::clamp(sized, cfg_.flow_min_bytes, cfg_.flow_max_bytes);
}

sim::Duration Workload::draw_exp(sim::Duration mean) {
  const double s = rng_.exponential(mean.to_seconds());
  const sim::Duration d = sim::Duration::from_seconds(s);
  return d < sim::Duration::nanos(1) ? sim::Duration::nanos(1) : d;
}

void Workload::schedule_next_arrival() {
  if (generation_done()) return;
  if (cfg_.arrivals == WorkloadConfig::Arrivals::kOnOff && !on_) return;
  arrival_timer_.arm(
      draw_exp(sim::Duration::from_seconds(1.0 / cfg_.arrival_rate_cps)),
      [this] {
        if (generation_done()) return;
        launch_flow(0);
        schedule_next_arrival();
      });
}

void Workload::enter_phase(bool on) {
  on_ = on;
  phase_timer_.arm(draw_exp(on ? cfg_.on_mean : cfg_.off_mean),
                   [this] { enter_phase(!on_); });
  if (on_) {
    schedule_next_arrival();
  } else {
    arrival_timer_.cancel();
  }
}

void Workload::launch_flow(std::size_t slot) {
  ++stats_.offered;
  const std::uint64_t size = draw_size();
  if (active_.size() >= cfg_.max_concurrent) {
    ++stats_.shed;
    if (cfg_.arrivals == WorkloadConfig::Arrivals::kClosedLoop) arm_respawn(slot);
    return;
  }
  const std::uint64_t id = next_flow_id_++;
  auto fl = std::make_unique<Flow>();
  fl->id = id;
  fl->size = size;
  fl->slot = slot;
  fl->target = cfg_.target_for ? cfg_.target_for(id, slot) : server_;
  fl->started = now();
  Flow& f = *fl;
  active_.emplace(id, std::move(fl));
  ++stats_.started;
  ++per_target_[f.target].started;
  stats_.peak_concurrent = std::max(stats_.peak_concurrent, active_.size());

  // Callbacks capture the flow id, never the Flow pointer: on_closed erases
  // the flow from under every other callback.
  tcp::TcpConnection::Callbacks cb;
  cb.on_established = [this, id] { on_flow_established(id); };
  cb.on_readable = [this, id] { on_flow_readable(id); };
  cb.on_peer_closed = [this, id] {
    // Server finished and FINed: drain whatever is left, close our side.
    on_flow_readable(id);
    auto it = active_.find(id);
    if (it != active_.end() && it->second->conn != nullptr) {
      it->second->conn->close();
    }
  };
  cb.on_closed = [this, id](tcp::CloseReason r) { on_flow_closed(id, r); };
  f.conn = &stack_.connect(client_ip_, f.target, std::move(cb));
}

void Workload::arm_respawn(std::size_t slot) {
  if (generation_done()) return;
  slots_[slot]->timer.arm(draw_exp(cfg_.think_mean),
                          [this, slot] { launch_flow(slot); });
}

void Workload::on_flow_established(std::uint64_t id) {
  auto it = active_.find(id);
  if (it == active_.end() || it->second->conn == nullptr) return;
  Flow& f = *it->second;
  connect_us_.record(static_cast<std::uint64_t>((now() - f.started).us()));
  // SizedServer's fixed 8-byte big-endian size request. A fresh connection's
  // send buffer always accepts 8 bytes.
  net::Bytes req(app::SizedServer::kRequestBytes);
  for (std::size_t i = 0; i < req.size(); ++i) {
    req[i] = static_cast<std::uint8_t>(f.size >> (8 * (req.size() - 1 - i)));
  }
  f.conn->send(req);
}

void Workload::on_flow_readable(std::uint64_t id) {
  auto it = active_.find(id);
  if (it == active_.end() || it->second->conn == nullptr) return;
  Flow& f = *it->second;
  const net::Bytes in = f.conn->read(1 << 20);
  if (!app::pattern_verify(f.received, in)) f.corrupt = true;
  f.received += in.size();
  if (!f.fct_recorded && f.received >= f.size) {
    f.fct_recorded = true;
    const auto us = static_cast<std::uint64_t>((now() - f.started).us());
    fct_us_.record(us);
    per_target_[f.target].fct_us.record(us);
  }
}

void Workload::on_flow_closed(std::uint64_t id, tcp::CloseReason reason) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Flow& f = *it->second;
  f.conn = nullptr;
  const bool ok = reason == tcp::CloseReason::kGraceful && !f.corrupt &&
                  f.received == f.size;
  TargetStats& ts = per_target_[f.target];
  if (ok) {
    ++stats_.completed;
    ++ts.completed;
  } else {
    ++stats_.failed;
    ++ts.failed;
  }
  if (f.corrupt) ++stats_.corrupt;
  if (reason == tcp::CloseReason::kReset) {
    ++stats_.resets;
    ++ts.resets;
  }
  stats_.bytes_received += f.received;
  ts.bytes_received += f.received;
  fold(f.id);
  fold(f.size);
  fold(f.received);
  fold(static_cast<std::uint64_t>(reason) | (f.corrupt ? 0x100u : 0u));
  fold(static_cast<std::uint64_t>(now().ns()));
  const std::size_t slot = f.slot;
  active_.erase(it);
  if (cfg_.arrivals == WorkloadConfig::Arrivals::kClosedLoop) arm_respawn(slot);
}

std::uint64_t Workload::digest() const {
  // Fold the final counters on top of the per-flow stream.
  std::uint64_t d = digest_;
  const auto mix = [&d](std::uint64_t v) { d = (d ^ v) * 0x100000001b3ULL; };
  mix(stats_.offered);
  mix(stats_.started);
  mix(stats_.shed);
  mix(stats_.completed);
  mix(stats_.failed);
  mix(stats_.corrupt);
  mix(stats_.resets);
  mix(stats_.bytes_received);
  mix(stats_.peak_concurrent);
  mix(fct_us_.count());
  mix(fct_us_.sum());
  return d;
}

}  // namespace sttcp::harness
