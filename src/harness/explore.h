// Exhaustive interleaving explorer: bounded model checking over the event
// loop's ready set for the one-connection, one-server-pair failover.
//
// Chaos fuzzing samples schedules; this explorer ENUMERATES them. A trial is
// a stateless re-execution: build the deterministic Figure-2 scenario from a
// fixed seed, crash the primary mid-transfer, and step the event loop one
// event at a time through a choice window covering detection -> takeover.
// Wherever more than one pending event lies within `quantum` of the earliest
// one, the events are concurrent up to bounded delivery/scheduling delay and
// their execution order is a genuine nondeterminism of a real deployment —
// the explorer forks on it (EventLoop::run_event forces the chosen order;
// the bypassed event then runs late). Depth-first search over the recorded
// branching vectors visits every schedule; a state digest taken at each
// fresh choice point prunes subtrees rooted in an already-visited state.
//
// Every schedule runs under the InvariantChecker: no schedule may show the
// client a RST or two active servers, and every schedule must complete the
// transfer bit-exact. Re-running a recorded choice vector is bit-identical,
// so any schedule id from a report can be replayed one-command.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace sttcp::app {
class DownloadClient;
}
namespace sttcp::sim {
class EventLoop;
}

namespace sttcp::harness {

class Scenario;

struct ExploreOptions {
  std::uint64_t seed = 1;
  /// Small enough that a trial is milliseconds of sim; big enough that the
  /// transfer is mid-stream when the primary dies.
  std::uint64_t file_size = 400'000;
  sim::Duration crash_at = sim::Duration::millis(10);
  /// Wire-drain margin after the crash before choices begin: frames already
  /// in flight land in one fixed order (they are not schedule choices — the
  /// crash cannot retroactively reorder the past).
  sim::Duration margin = sim::Duration::millis(5);
  /// Choice-window length. The default covers the whole 3-miss/200 ms
  /// detection window plus takeover with slack.
  sim::Duration window = sim::Duration::millis(900);
  /// Keep branching this long past the takeover, then stop forking: the
  /// dual-active / client-RST hazards live around the takeover itself.
  sim::Duration takeover_tail = sim::Duration::millis(50);
  /// Events within this of the earliest pending one count as concurrent.
  sim::Duration quantum = sim::Duration::micros(50);
  /// Per-choice-point fan-out cap (the ready set is (at, seq)-ordered, so
  /// the capped prefix is the earliest — and most interesting — events).
  std::size_t max_branch = 3;
  /// Choice points per schedule cap.
  std::size_t max_depth = 64;
  /// Total schedule cap; the search reports truncated=true when it bites.
  std::uint64_t max_schedules = 20'000;
  /// Per-trial wall on simulated time after the choice window.
  sim::Duration run_cap = sim::Duration::seconds(30);
  /// Backups beyond the classic one. 0 explores the paper's 1+1 pair;
  /// 1 explores the three-host replication group, where the crash opens a
  /// PROMOTION RACE between the two surviving backups — the enumeration then
  /// proves no interleaving of conviction, vote and announce yields a
  /// dual-active pair or a client-visible RST.
  int extra_backups = 0;
  /// Also crash the rank-1 backup at `crash_at` (simultaneous double
  /// failure): the enumerated window must show rank-2 winning every race.
  bool crash_rank1 = false;
};

/// One explored schedule: its choice vector (index into the ready set at
/// each registered choice point) and the outcome digest of its run.
struct ScheduleOutcome {
  std::vector<std::uint8_t> choices;
  std::uint64_t digest = 0;
  bool ok = true;
};

struct ExploreStats {
  std::uint64_t schedules = 0;   // complete schedules executed
  std::uint64_t pruned = 0;      // choice points cut by state-digest match
  std::size_t max_depth = 0;     // deepest registered choice point
  std::uint64_t events = 0;      // events single-stepped across all trials
  std::uint64_t violations = 0;  // schedules with >= 1 invariant violation
  std::vector<std::string> violation_reports;  // first few, with schedule id
  bool truncated = false;        // a cap (schedules / depth) was hit
  /// FNV-1a fold of every schedule digest in exploration order: two explores
  /// of the same options must match bit-for-bit.
  std::uint64_t digest = 0;
};

class Explorer {
 public:
  explicit Explorer(ExploreOptions opts = {});

  /// Run the bounded-DFS enumeration. Idempotent per Explorer instance only
  /// in the sense that a fresh Explorer with equal options reproduces it.
  ExploreStats explore();

  /// Re-execute one schedule by its recorded choice vector (fresh scenario,
  /// no search bookkeeping) and return its outcome digest — bit-identical to
  /// the digest recorded during explore().
  std::uint64_t replay(const std::vector<std::uint8_t>& choices);

  /// Every schedule explored, in DFS order (schedule id = index).
  const std::vector<ScheduleOutcome>& schedules() const { return schedules_; }

 private:
  struct TrialResult {
    std::uint64_t digest = 0;
    bool complete = false;
    std::vector<std::string> violations;
  };

  /// Execute one schedule. While `depth < choices.size()` the prescribed
  /// branch is taken; beyond that, with `extend`, fresh choice points are
  /// registered (appending to choices/branches) unless their state digest
  /// was already seen — without `extend` (replay) the earliest event is
  /// taken, which is what the original run did at pruned points.
  TrialResult run_trial(std::vector<std::uint8_t>& choices,
                        std::vector<std::uint8_t>& branches, bool extend,
                        ExploreStats* stats);

  /// Semantic state fingerprint at a choice point: pending-event offsets
  /// relative to now, stream progress, host liveness, stack footprints, and
  /// failover mode markers. Schedule-history artifacts (sequence numbers,
  /// trace length) are deliberately excluded so converging interleavings
  /// collide and prune.
  static std::uint64_t state_digest(sim::EventLoop& loop, Scenario& sc,
                                    const app::DownloadClient& client);

  ExploreOptions opts_;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<ScheduleOutcome> schedules_;
};

}  // namespace sttcp::harness
