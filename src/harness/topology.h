// Composable topology: the harness layer that turns one Figure-2 cell into
// a routed, sharded fabric.
//
//   TopologyBuilder b(cfg);
//   int lan  = b.add_switch("lan");
//   b.add_host("client", {10,0,0,1}, lan, {.with_stack = true});
//   b.add_cell(lan, {});                       // a classic Figure-2 pair
//   b.add_host("gateway", {10,0,0,254}, lan);
//   auto topo = b.build();                     // ARP, routes, stacks, start
//
// Layering (docs/ARCHITECTURE.md):
//
//   Scenario (compat facade)      <- existing tests/benches, unchanged
//        |
//   TopologyBuilder / Topology    <- this file: switches, routers, cells
//        |
//   Cell (harness/cell.h)         <- one ST-TCP pair, stamped N times
//        |
//   net/ (switch, link, router, host), tcp/, sttcp/
//
// The builder constructs eagerly (hosts/links exist as soon as they are
// added, in call order — RNG fork order is therefore explicit and stable);
// build() then finalizes what needs global knowledge:
//
//   * a full static ARP mesh per switch (hosts + cell members);
//   * service-IP -> multicast-MAC ARP entries for every non-member on the
//     cell's subnet;
//   * default-gateway wiring + router-side ARP where a router port sits on
//     the subnet (including service-IP -> multicast MAC on the router's
//     egress port — how the ST-TCP tap crosses subnets, see
//     docs/ROUTING.md);
//   * TCP stacks for stack-bearing hosts, then Cell::start() per cell, in
//     creation order — reproducing the classic Scenario fork order for a
//     1-cell build.
//
// ShardDirector is the front end: a consistent-hash ring mapping client
// flows onto the cells' service addresses. It is control-plane only — the
// simulated packets just use the address it returns.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/cell.h"
#include "net/host.h"
#include "net/link.h"
#include "net/router.h"
#include "net/shard_link.h"
#include "net/switch.h"
#include "obs/metrics.h"
#include "obs/pcap.h"
#include "sim/parallel.h"
#include "tcp/stack.h"

namespace sttcp::harness {

struct TopologyConfig {
  std::uint64_t seed = 1;

  // Fabric defaults (cells and hosts may override per-link bandwidth).
  sim::Duration link_latency = sim::Duration::micros(50);
  std::uint64_t link_bandwidth_bps = 100'000'000;
  std::uint64_t serial_baud = net::SerialLink::kDefaultBaud;

  tcp::TcpConfig tcp;
  /// Template for every cell's endpoints; per-cell addressing (service,
  /// my/peer IPs, gateway, peer name) is filled in by the Cell.
  sttcp::StTcpConfig sttcp;
  bool enable_sttcp = true;
  /// Stream-logger address cells should replay from (zero = no logger; the
  /// logger host itself is wired by the owner — see Scenario).
  net::Ipv4Addr logger_ip;

  std::ostream* log_out = nullptr;
  sim::LogLevel log_level = sim::LogLevel::kOff;

  bool enable_metrics = false;
  /// Write every frame crossing switch 0 to this libpcap file.
  std::string pcap_path;
};

/// Options for TopologyBuilder::add_host.
struct HostOptions {
  net::MacAddr mac;              // zero -> derived (0x02:00:00:00:a0:xx)
  /// Create a TcpStack for this host at build() (clients need one; passive
  /// boxes like the paper's gateway do not).
  bool with_stack = false;
  std::uint64_t link_bandwidth_bps = 0;  // 0 -> topology default
  /// Must reference a controller in the host's own shard.
  int power_controller = 0;
};

/// Options for TopologyBuilder::add_trunk (a cross-shard router cable).
struct TrunkOptions {
  /// One-way latency per direction. This is what the parallel engine's
  /// lookahead is derived from: the smallest trunk latency bounds the
  /// conservative window, so longer trunks = fewer barriers.
  sim::Duration latency = sim::Duration::micros(200);
  std::uint64_t bandwidth_bps = 0;  // 0 -> topology default
  int prefix_len = 30;              // the /30 point-to-point convention
};

class TopologyBuilder;

class Topology {
 public:
  struct HostEntry {
    std::string name;
    net::Ipv4Addr ip;
    std::unique_ptr<net::Host> host;
    std::unique_ptr<tcp::TcpStack> stack;  // null unless with_stack
    net::Link* link = nullptr;
    int switch_id = 0;
    int port = 0;  // switch port index
    bool with_stack = false;
    int shard = 0;
  };
  struct RouterPortEntry {
    int router = 0;
    int port = 0;  // port index within the router
    int switch_id = 0;
    int prefix_len = 24;
  };

  ~Topology();
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Shard 0's world — the only world of a classic unsharded topology.
  sim::World& world() { return *worlds_.front(); }
  sim::World& world(std::size_t shard) { return *worlds_.at(shard); }
  std::size_t shard_count() const { return worlds_.size(); }

  /// Advance simulated time. One shard: the classic serial run. Multiple
  /// shards: the conservative ParallelExecutor advances every shard's loop
  /// in lockstep windows of the trunk-derived lookahead, draining the
  /// cross-shard queues at each boundary — bit-identical results for any
  /// thread count (see src/sim/parallel.h).
  void run_for(sim::Duration d);
  /// Worker threads for sharded runs (clamped to the shard count); call
  /// before the first run_for, or between runs. Default 1.
  void set_threads(int n);
  int threads() const { return threads_; }
  /// The conservative window width (minimum trunk latency).
  sim::Duration lookahead() const;

  const TopologyConfig& config() const { return cfg_; }

  net::EthernetSwitch& ethernet_switch(std::size_t i = 0) { return *switches_.at(i); }
  std::size_t switch_count() const { return switches_.size(); }

  net::Router& router(std::size_t i = 0) { return *routers_.at(i); }
  std::size_t router_count() const { return routers_.size(); }
  const std::vector<RouterPortEntry>& router_ports() const { return router_ports_; }

  Cell& cell(std::size_t i = 0) { return *cells_.at(i); }
  std::size_t cell_count() const { return cells_.size(); }

  net::PowerController& power(std::size_t i = 0) { return *power_.at(i); }
  std::size_t power_count() const { return power_.size(); }

  HostEntry& host(std::size_t i) { return hosts_.at(i); }
  std::size_t host_count() const { return hosts_.size(); }
  /// nullptr when no plain host has that name (cell members don't count).
  HostEntry* host_by_name(const std::string& name);

  /// Every link in creation order — host links and cell links interleaved
  /// exactly as the builder calls ran (this order is what deterministic
  /// impairment pre-forking keys on).
  net::Link& link(std::size_t i) { return *links_.at(i); }
  const std::string& link_name(std::size_t i) const { return link_names_.at(i); }
  std::size_t link_count() const { return links_.size(); }
  int link_shard(std::size_t i) const { return link_shards_.at(i); }

  net::ShardChannel& trunk(std::size_t i) { return *trunks_.at(i).channel; }
  std::size_t trunk_count() const { return trunks_.size(); }

  // --- telemetry ----------------------------------------------------------
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  obs::PcapWriter* pcap() { return pcap_.get(); }
  /// Snapshot cumulative Stats (links, switches, routers, serials, stacks,
  /// endpoints) into the registry. Names match the classic Scenario for a
  /// 1-cell topology ("net.link.primary", "net.switch.forwarded", ...);
  /// extra switches/cells/routers get name-qualified prefixes.
  void export_metrics();
  std::string metrics_json();

  /// Create a Link with topology defaults in the build-current shard's
  /// world, bind its metrics (shard 0 only), take ownership and return it.
  /// Builder/Cell plumbing — not for use after build().
  net::Link* make_link(const std::string& name, std::uint64_t bandwidth_bps);

  /// The world components under construction belong to (worlds_[build_shard_]).
  sim::World& build_world() { return *worlds_.at(static_cast<std::size_t>(build_shard_)); }
  int build_shard() const { return build_shard_; }

 private:
  friend class TopologyBuilder;
  friend class Cell;
  explicit Topology(TopologyConfig cfg);

  void ensure_executor();

  struct TrunkEntry {
    int shard_a = 0;
    int shard_b = 0;
    std::unique_ptr<net::ShardChannel> channel;
    sim::Duration latency;
  };

  TopologyConfig cfg_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;  // before worlds_: outlives them
  std::unique_ptr<obs::PcapWriter> pcap_;
  std::vector<std::unique_ptr<sim::World>> worlds_;  // [0] = the classic world
  int build_shard_ = 0;
  std::vector<std::unique_ptr<net::EthernetSwitch>> switches_;
  std::vector<std::string> switch_names_;
  std::vector<int> switch_shards_;
  std::vector<std::unique_ptr<net::PowerController>> power_;
  std::vector<int> power_shards_;
  std::vector<std::unique_ptr<net::Router>> routers_;
  std::vector<int> router_shards_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::string> link_names_;
  std::vector<int> link_shards_;
  std::vector<HostEntry> hosts_;
  std::vector<RouterPortEntry> router_ports_;
  std::vector<TrunkEntry> trunks_;                 // reference links_ + worlds_
  std::vector<std::unique_ptr<Cell>> cells_;       // last: reference all the above
  int threads_ = 1;
  std::unique_ptr<sim::ParallelExecutor> executor_;  // built on first sharded run
};

/// Eager builder: components exist (and fork the world RNG) in call order.
/// build() finalizes ARP/routes/stacks and returns the Topology; the
/// builder is then spent.
class TopologyBuilder {
 public:
  explicit TopologyBuilder(TopologyConfig cfg);

  int add_switch(std::string name);

  /// Plain host (client, gateway, logger...): host + NIC + link + switch
  /// port + STONITH registration. Returns the host index.
  int add_host(std::string name, net::Ipv4Addr ip, int switch_id,
               HostOptions opt = {});

  /// Stamp one ST-TCP pair onto `switch_id`. Returns the cell index.
  int add_cell(int switch_id, CellConfig cfg = {});

  /// Extra STONITH controller (index 0 always exists). Sharded fabrics give
  /// each cell its own so a controller fault stays cell-local.
  int add_power_controller();

  int add_router(std::string name);
  /// Attach a router port to a switch (new link + switch port) and install
  /// the connected route for port_ip/prefix_len. Returns the router port
  /// index. The first router port on a switch becomes the default gateway
  /// of every host on that switch.
  int connect_router(int router_id, int switch_id, net::Ipv4Addr port_ip,
                     int prefix_len = 24, net::MacAddr mac = net::MacAddr());

  /// Open a new shard: a fresh World (derived seed) that every subsequent
  /// add_* call builds into, running on its own thread under the parallel
  /// executor. A shard is an island — its switches, hosts, cells, routers
  /// and STONITH controllers must all be created inside it (add one with
  /// add_power_controller(); controller 0 belongs to shard 0) — connected to
  /// the rest of the fabric only through add_trunk. Returns the shard index.
  int begin_shard();

  /// Point-to-point cable between two routers in *different* shards: one
  /// net::Link per side (latency/bandwidth/stats as usual) bridged by a
  /// ShardChannel (net/shard_link.h). Installs both router ports, their
  /// connected /30 routes and the peer ARP entries; remote prefixes still
  /// need add_route(..., next_hop) like any router cable. The trunk carries
  /// the fabric's lookahead: opt.latency must stay >= the executor window
  /// you want, and trunk links must never get reorder/jitter impairments.
  /// Returns {port index on a, port index on b}.
  std::pair<int, int> add_trunk(int router_a, int router_b,
                                net::Ipv4Addr ip_a, net::Ipv4Addr ip_b,
                                TrunkOptions opt = {});

  /// Peek during build (addressing, world). The reference stays valid after
  /// build() — the Topology is heap-allocated from the start.
  Topology& topology() { return *topo_; }

  std::unique_ptr<Topology> build();

 private:
  std::unique_ptr<Topology> topo_;
  int auto_host_macs_ = 0;
  bool built_ = false;
};

/// Consistent-hash front end: maps a flow identifier onto one of N cells'
/// service addresses. Control-plane only — this is the piece of the "shard
/// director" a client-side load balancer would run; the simulated network
/// just uses the address it returns. Virtual nodes smooth the split; the
/// ring is deterministic in (cell set, vnodes), never in iteration order.
class ShardDirector {
 public:
  /// One ring point per (cell, vnode). 64 vnodes keeps the max/min load
  /// ratio within ~20% for small N.
  explicit ShardDirector(Topology& topo, int vnodes = 64);

  /// The cell index a flow lands on (FNV-1a of the flow id on the ring).
  std::size_t shard_for(std::uint64_t flow_id) const;
  net::SocketAddr target_for(std::uint64_t flow_id) const;
  std::size_t shard_count() const { return targets_.size(); }
  net::SocketAddr target(std::size_t shard) const { return targets_.at(shard); }

 private:
  struct Point {
    std::uint64_t hash;
    std::size_t shard;
  };
  std::vector<Point> ring_;
  std::vector<net::SocketAddr> targets_;
};

}  // namespace sttcp::harness
