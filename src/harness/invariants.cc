#include "harness/invariants.h"

#include <cstdio>
#include <stdexcept>

#include "app/client.h"
#include "harness/block_workload.h"
#include "harness/scenario.h"
#include "harness/topology.h"
#include "harness/workload.h"
#include "net/headers.h"
#include "tcp/segment.h"

namespace sttcp::harness {

namespace {

// Per-invariant detail cap: a systemic failure (e.g. split-brain for the rest
// of the run) would otherwise bury the verdict in thousands of identical
// lines. The total count is always reported.
constexpr int kMaxDetailsPerInvariant = 3;

std::string fmt_u64(const char* format, std::uint64_t a, std::uint64_t b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), format, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace

std::uint64_t InvariantChecker::fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

InvariantChecker::Scope InvariantChecker::scope_from(Topology& topo,
                                                     const Options& opt) {
  if (static_cast<std::size_t>(opt.cell) >= topo.cell_count()) {
    throw std::logic_error("InvariantChecker: topology has no such cell");
  }
  Scope s;
  Cell& cell = topo.cell(static_cast<std::size_t>(opt.cell));
  // The watched client: first stack-bearing host in the cell's own shard
  // (for a flat topology that is simply the first stack-bearing host).
  Topology::HostEntry* client = nullptr;
  for (std::size_t i = 0; i < topo.host_count(); ++i) {
    if (topo.host(i).with_stack && topo.host(i).shard == cell.shard()) {
      client = &topo.host(i);
      break;
    }
  }
  if (client == nullptr) {
    throw std::logic_error("InvariantChecker: no stack-bearing (client) host");
  }
  s.client_ip = client->ip;
  s.service_ip = cell.service_ip();
  s.client = client->host.get();
  s.primary = &cell.primary();
  s.backup = &cell.backup();
  s.client_stack = client->stack.get();
  s.primary_stack = &cell.primary_stack();
  s.backup_stack = &cell.backup_stack();
  s.primary_ep = cell.primary_endpoint();
  s.backup_ep = cell.backup_endpoint();
  for (int b = 0; b < cell.backup_count(); ++b) {
    s.backups.push_back(&cell.backup_host(b));
    s.backup_stacks.push_back(&cell.backup_stack(b));
    s.backup_eps.push_back(cell.backup_endpoint(b));
  }
  s.sw = &topo.ethernet_switch(static_cast<std::size_t>(cell.switch_id()));
  // Every link in the cell's shard except a logger host's, in creation
  // order: for the classic facade shape that is client, primary, backup,
  // gateway — the historical impairment pre-fork order the 200-seed chaos
  // suite depends on. Shard-locality matters twice: impairment creation
  // forks that shard's RNG, and the corrupt taps must only ever fire on the
  // shard's own thread.
  Topology::HostEntry* logger = topo.host_by_name("logger");
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    if (topo.link_shard(i) != cell.shard()) continue;
    net::Link* l = &topo.link(i);
    if (logger != nullptr && l == logger->link) continue;
    s.links.push_back(l);
  }
  s.hold_cap = topo.config().sttcp.hold_buffer_capacity;
  s.tcp = topo.config().tcp;
  return s;
}

InvariantChecker::InvariantChecker(Scenario& sc, Options opt)
    : InvariantChecker(scope_from(sc.topology(), opt), opt) {}

InvariantChecker::InvariantChecker(Topology& topo, Options opt)
    : InvariantChecker(scope_from(topo, opt), opt) {}

InvariantChecker::InvariantChecker(Scope scope, Options opt)
    : scope_(std::move(scope)), opt_(opt) {
  // Create every link's impairment engine up front, in fixed link order. Each
  // creation forks the world rng, so leaving it to the faults would make the
  // fork order (and every later draw) depend on which faults the plan arms.
  for (net::Link* l : scope_.links) {
    l->impairment().set_corrupt_tap(
        [this](const net::Frame& f, std::size_t off) {
          ++corrupt_events_;
          corrupted_[fnv1a(f.data(), f.size())] = off;
        });
  }

  // Chain in front of whatever tap is already installed (pcap).
  prev_tap_ = scope_.sw->frame_tap();
  scope_.sw->set_frame_tap(
      [this](sim::SimTime at, const net::Frame& frame) {
        on_switch_frame(at, frame);
      });

  const std::vector<net::Host*> hosts = watched_hosts();
  expected_bad_checksum_.assign(hosts.size(), 0);
  for (int i = 0; i < static_cast<int>(hosts.size()); ++i) {
    hosts[static_cast<std::size_t>(i)]->set_rx_tap(
        [this, i](const net::Frame& frame) { on_host_rx(i, frame); });
  }
}

std::vector<net::Host*> InvariantChecker::watched_hosts() const {
  std::vector<net::Host*> hosts = {scope_.client, scope_.primary};
  if (scope_.backups.empty()) {
    hosts.push_back(scope_.backup);
  } else {
    hosts.insert(hosts.end(), scope_.backups.begin(), scope_.backups.end());
  }
  return hosts;
}

std::vector<tcp::TcpStack*> InvariantChecker::watched_stacks() const {
  std::vector<tcp::TcpStack*> stacks = {scope_.client_stack,
                                        scope_.primary_stack};
  if (scope_.backup_stacks.empty()) {
    stacks.push_back(scope_.backup_stack);
  } else {
    stacks.insert(stacks.end(), scope_.backup_stacks.begin(),
                  scope_.backup_stacks.end());
  }
  return stacks;
}

std::string InvariantChecker::watched_name(std::size_t i) const {
  if (i == 0) return "client";
  if (i == 1) return "primary";
  return i == 2 ? "backup" : "backup" + std::to_string(i - 1);
}

int InvariantChecker::member_index(const net::MacAddr& mac) const {
  if (mac == scope_.primary->nic().mac()) return 0;
  for (std::size_t b = 0; b < scope_.backups.size(); ++b) {
    if (mac == scope_.backups[b]->nic().mac()) return 1 + static_cast<int>(b);
  }
  return -1;
}

std::string InvariantChecker::member_name(int m) const {
  if (m == 0) return scope_.primary->name();
  const std::size_t b = static_cast<std::size_t>(m - 1);
  return b < scope_.backups.size() ? scope_.backups[b]->name() : "?";
}

void InvariantChecker::add_streamed(const std::string& invariant,
                                    const std::string& detail) {
  int& n = streamed_counts_[invariant];
  ++n;
  if (n <= kMaxDetailsPerInvariant) streamed_.push_back({invariant, detail});
}

void InvariantChecker::on_switch_frame(sim::SimTime at,
                                       const net::Frame& frame) {
  if (prev_tap_) prev_tap_(at, frame);

  net::ParsedFrame p;
  try {
    p = net::parse_frame(frame.view());
  } catch (const std::exception&) {
    return;  // wire-corrupted IP header: every receiver drops it at parse
  }
  if (!p.ip.has_value() || p.ip->protocol != net::kIpProtoTcp) return;

  // No client-visible RST: a RST the client's own checksum verification
  // would accept must never be on the wire toward it. (A RST bit set by wire
  // corruption fails the checksum and is invisible — parse with verify.)
  if (p.ip->dst == scope_.client_ip) {
    const auto seg =
        tcp::TcpSegment::parse(p.ip->src, p.ip->dst, p.l4, /*verify=*/true);
    if (seg.has_value() && seg->flags.rst) {
      add_streamed("no-client-rst",
                   "RST toward client from " + p.ip->src.str() + " at " + at.str());
    }
  }

  // Split-brain audit over service->client traffic: once the backup has
  // spoken on the service connection (it only does so after STONITH +
  // takeover), the primary must stay silent, modulo frames already in
  // flight. Source MAC tells the two apart; the service IP does not.
  if (p.ip->src == scope_.service_ip && p.ip->dst == scope_.client_ip) {
    if (scope_.backups.size() <= 1) {
      // Classic pair rule, unchanged.
      if (p.eth.src == scope_.backup->nic().mac()) {
        if (first_backup_tx_.is_never()) first_backup_tx_ = at;
      } else if (p.eth.src == scope_.primary->nic().mac() &&
                 !first_backup_tx_.is_never() &&
                 at > first_backup_tx_ + opt_.split_brain_grace) {
        add_streamed("split-brain",
                     "primary transmitted to client at " + at.str() +
                         ", backup took over at " + first_backup_tx_.str());
      }
    } else {
      // Group speaker protocol: the member whose transmission most recently
      // BEGAN holds the floor; each member it superseded may only drain
      // in-flight frames for the grace, then must stay silent. A superseded
      // member transmitting later is dual-active — two unsuppressed servers
      // answering the same connection.
      const int m = member_index(p.eth.src);
      if (m >= 0) {
        if (current_speaker_ < 0) {
          current_speaker_ = m;
          speaker_since_ = at;
        } else if (m != current_speaker_) {
          const auto it = superseded_at_.find(m);
          if (it == superseded_at_.end()) {
            // A fresh claimant (promotion winner): the incumbent is
            // superseded as of now and gets the grace to drain.
            superseded_at_[current_speaker_] = at;
            current_speaker_ = m;
            speaker_since_ = at;
          } else if (at > it->second + opt_.split_brain_grace) {
            add_streamed("split-brain",
                         member_name(m) + " transmitted to client at " +
                             at.str() + " after " +
                             member_name(current_speaker_) +
                             " took over (superseded at " +
                             it->second.str() + ")");
          }
        }
      }
    }
  }
}

void InvariantChecker::on_host_rx(int host_idx, const net::Frame& frame) {
  if (corrupted_.empty()) return;
  const auto it = corrupted_.find(fnv1a(frame.data(), frame.size()));
  if (it == corrupted_.end()) return;

  // A corrupted frame reached a host. Only a flip inside a TCP segment must
  // surface as a stack checksum drop: an IP-header flip dies at IP parse and
  // a UDP flip at the UDP checksum, before any TCP accounting.
  constexpr std::size_t kL4Off =
      net::EthernetHeader::kSize + net::Ipv4Header::kSize;
  const net::BytesView v = frame.view();
  if (it->second < kL4Off || v.size() <= kL4Off) return;
  if (v[net::EthernetHeader::kSize + 9] != net::kIpProtoTcp) return;
  ++expected_bad_checksum_[static_cast<std::size_t>(host_idx)];
}

std::uint64_t InvariantChecker::expected_checksum_drops() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : expected_bad_checksum_) total += n;
  return total;
}

void InvariantChecker::collect_streamed(std::vector<Violation>& out) const {
  out.insert(out.end(), streamed_.begin(), streamed_.end());
  for (const auto& [inv, n] : streamed_counts_) {
    if (n > kMaxDetailsPerInvariant) {
      out.push_back({inv, fmt_u64("%llu occurrences in total (first %llu shown)",
                                  static_cast<std::uint64_t>(n),
                                  kMaxDetailsPerInvariant)});
    }
  }
}

void InvariantChecker::check_checksums(std::vector<Violation>& out) const {
  // Checksum-drop accounting: per stack, exactly the corrupted TCP frames we
  // delivered to that host were dropped for bad checksum. Fewer = a corrupt
  // segment was accepted (and possibly ACKed); more = a clean one rejected.
  const std::vector<tcp::TcpStack*> stacks = watched_stacks();
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    const std::uint64_t got = stacks[i]->stats().bad_checksum;
    if (got != expected_bad_checksum_[i]) {
      out.push_back({"checksum-drop",
                     watched_name(i) + ": " +
                         fmt_u64("%llu checksum drops, expected %llu", got,
                                 expected_bad_checksum_[i])});
    }
  }
}

void InvariantChecker::check_memory(std::vector<Violation>& out,
                                    std::size_t conn_table_cap) const {
  // Bounded memory: hold buffers honour their configured cap, replica
  // pending queues honour the per-tuple cap, connection tables stay within
  // the workload's configured concurrency, and total connection heap stays
  // inside the per-connection socket-buffer budget (no per-flow leak).
  const std::size_t hold_cap = scope_.hold_cap;
  std::vector<sttcp::StTcpEndpoint*> eps = {scope_.primary_ep};
  if (scope_.backup_eps.empty()) {
    eps.push_back(scope_.backup_ep);
  } else {
    eps.insert(eps.end(), scope_.backup_eps.begin(), scope_.backup_eps.end());
  }
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (eps[i] != nullptr && eps[i]->hold_peak_bytes() > hold_cap) {
      out.push_back({"bounded-memory",
                     watched_name(i + 1) + ": " +
                         fmt_u64("hold buffer peak %llu exceeds cap %llu",
                                 eps[i]->hold_peak_bytes(), hold_cap)});
    }
  }
  const tcp::TcpConfig& tc = scope_.tcp;
  // Send buffer at its cap, receive side counted twice (in-order ready bytes
  // plus a window's worth of out-of-order segments), plus fixed-struct slack.
  const std::size_t per_conn =
      tc.send_buffer + 2 * tc.recv_buffer + 4096;
  const std::vector<tcp::TcpStack*> stacks = watched_stacks();
  for (std::size_t i = 0; i < stacks.size(); ++i) {
    const std::size_t pending = stacks[i]->pending_segments();
    const std::size_t cap = tcp::TcpStack::max_buffered_segments() * 8;
    if (pending > cap) {
      out.push_back({"bounded-memory",
                     watched_name(i) + ": " +
                         fmt_u64("%llu replica-buffered segments (cap %llu)",
                                 pending, cap)});
    }
    if (stacks[i]->connection_count() > conn_table_cap) {
      out.push_back({"bounded-memory",
                     watched_name(i) + ": " +
                         fmt_u64("connection table grew to %llu (cap %llu)",
                                 stacks[i]->connection_count(), conn_table_cap)});
    }
    const std::size_t mem = stacks[i]->memory_bytes();
    const std::size_t budget =
        (stacks[i]->connection_count() + 1) * per_conn +
        pending * (sizeof(tcp::TcpSegment) + tc.mss);
    if (mem > budget) {
      out.push_back({"bounded-memory",
                     watched_name(i) + ": " +
                         fmt_u64("stack heap %llu exceeds budget %llu", mem,
                                 budget)});
    }
  }
}

std::vector<Violation> InvariantChecker::check(
    const app::DownloadClient& client) {
  std::vector<Violation> out;
  collect_streamed(out);

  // Stream bit-exactness. Corruption or a reset is a violation regardless of
  // the plan; completion is only demanded of survivable (masked) plans.
  if (client.corrupt()) {
    out.push_back({"stream-exact", "client observed corrupt payload bytes"});
  }
  if (opt_.expect_masked) {
    if (client.connection_failures() != 0) {
      out.push_back({"stream-exact",
                     "client connection failures: " +
                         std::to_string(client.connection_failures())});
    }
    if (!client.complete()) {
      out.push_back({"stream-exact",
                     fmt_u64("download incomplete: %llu of %llu bytes",
                             client.received(), opt_.expected_bytes)});
    } else if (opt_.expected_bytes != 0 &&
               client.received() != opt_.expected_bytes) {
      out.push_back({"stream-exact",
                     fmt_u64("byte count mismatch: received %llu, expected %llu",
                             client.received(), opt_.expected_bytes)});
    }
  }

  check_checksums(out);
  check_memory(out, /*conn_table_cap=*/8);
  return out;
}

void InvariantChecker::check_grey(const sim::TraceRecorder& trace, Node grey,
                                  sim::Duration budget,
                                  std::vector<Violation>& out) const {
  const bool grey_is_primary = grey == Node::kPrimary;
  const std::string& grey_name =
      grey_is_primary ? scope_.primary->name() : scope_.backup->name();
  const std::string& peer_name =
      grey_is_primary ? scope_.backup->name() : scope_.primary->name();

  const auto fault_at = trace.first_time("fault_injected");
  if (!fault_at.has_value()) {
    out.push_back({"grey-conviction", "no fault was ever injected"});
    return;
  }

  // The peer must have convicted the grey host, within budget, on a
  // counter-based criterion.
  const sim::TraceEntry* conviction = nullptr;
  for (const sim::TraceEntry& e : trace.entries()) {
    if (e.event == "peer_convicted" && e.component == peer_name) {
      conviction = &e;
      break;
    }
  }
  if (conviction == nullptr) {
    out.push_back({"grey-conviction",
                   peer_name + " never convicted the grey " + grey_name});
  } else {
    if (conviction->at - *fault_at > budget) {
      out.push_back({"grey-conviction",
                     "conviction took " + (conviction->at - *fault_at).str() +
                         " (budget " + budget.str() + ")"});
    }
    if (conviction->detail != "progress_stall_detected" &&
        conviction->detail != "app_failure_detected") {
      out.push_back({"grey-criterion",
                     peer_name + " convicted via \"" + conviction->detail +
                         "\", not a progress-counter criterion — the grey " +
                         grey_name + " was heartbeating throughout"});
    }
  }

  // The grey host must not have convicted its healthy peer.
  for (const sim::TraceEntry& e : trace.entries()) {
    if (e.event == "peer_convicted" && e.component == grey_name) {
      out.push_back({"grey-false-conviction",
                     grey_name + " convicted its healthy peer via \"" +
                         e.detail + "\" at " + e.at.str()});
      break;
    }
  }
}

std::vector<Violation> InvariantChecker::check(const Workload& workload) {
  std::vector<Violation> out;
  collect_streamed(out);

  // Every generated flow must have run to completion byte-exact. Corruption
  // is a violation regardless of the plan; completion and no-reset are only
  // demanded of survivable (masked) plans — an unsurvivable crash is allowed
  // to fail flows, just never to hand the client corrupt bytes.
  const Workload::Stats& s = workload.stats();
  if (!workload.drained()) {
    out.push_back({"stream-exact",
                   std::to_string(workload.active_flows()) +
                       " flows still open at end of run (not drained)"});
  }
  if (s.corrupt != 0) {
    out.push_back({"stream-exact",
                   fmt_u64("%llu of %llu started flows observed corrupt "
                           "payload bytes",
                           s.corrupt, s.started)});
  }
  if (opt_.expect_masked) {
    if (s.resets != 0) {
      out.push_back({"no-client-rst",
                     fmt_u64("%llu of %llu started flows were closed by a "
                             "client-visible reset",
                             s.resets, s.started)});
    }
    if (s.failed != 0) {
      out.push_back({"stream-exact",
                     fmt_u64("%llu of %llu started flows failed (short, "
                             "corrupt, or reset)",
                             s.failed, s.started)});
    }
    if (workload.drained() && s.completed + s.failed != s.started) {
      out.push_back({"stream-exact",
                     fmt_u64("flow accounting leak: completed+failed = %llu "
                             "of %llu started",
                             s.completed + s.failed, s.started)});
    }
  }

  check_checksums(out);
  // Under churn the table legitimately holds up to the configured concurrency
  // (plus a straggler margin for connections mid-teardown when the caller's
  // quiet period was tight).
  check_memory(out, /*conn_table_cap=*/workload.config().max_concurrent + 64);
  return out;
}

std::vector<Violation> InvariantChecker::check(const BlockWorkload& workload) {
  std::vector<Violation> out;
  collect_streamed(out);

  // Response-exactness: an oracle mismatch means an acknowledged write was
  // lost or a never-written block returned data — a violation regardless of
  // the plan, exactly like payload corruption in the byte-stream checker.
  const BlockWorkload::Stats& s = workload.stats();
  if (!workload.drained()) {
    out.push_back({"response-exact",
                   "block-store sessions still open at end of run (not "
                   "drained)"});
  }
  if (s.mismatches != 0) {
    out.push_back({"response-exact",
                   fmt_u64("%llu of %llu responses contradicted the client "
                           "oracle (lost acknowledged write or phantom read)",
                           s.mismatches, s.responses)});
  }
  if (s.protocol_errors != 0) {
    out.push_back({"response-exact",
                   fmt_u64("%llu response framing violations across %llu "
                           "responses",
                           s.protocol_errors, s.responses)});
  }
  if (opt_.expect_masked) {
    if (s.resets != 0) {
      out.push_back({"no-client-rst",
                     fmt_u64("%llu of %llu block-store sessions were closed "
                             "by a client-visible reset",
                             s.resets, s.sessions_started)});
    }
    if (s.failed != 0) {
      out.push_back({"response-exact",
                     fmt_u64("%llu of %llu block-store sessions failed "
                             "(short, unanswered, or reset)",
                             s.failed, s.sessions_started)});
    }
    if (s.bad_status != 0) {
      out.push_back({"response-exact",
                     fmt_u64("%llu of %llu responses carried a status the "
                             "oracle did not predict",
                             s.bad_status, s.responses)});
    }
    if (workload.drained() &&
        s.sessions_completed + s.failed != s.sessions_started) {
      out.push_back({"response-exact",
                     fmt_u64("session accounting leak: completed+failed = "
                             "%llu of %llu started",
                             s.sessions_completed + s.failed,
                             s.sessions_started)});
    }
  }

  check_checksums(out);
  // A closed-loop population holds at most one connection per client (plus
  // the mid-teardown straggler margin).
  check_memory(out, /*conn_table_cap=*/workload.config().clients + 64);
  return out;
}

}  // namespace sttcp::harness
