// Quickstart: the smallest end-to-end ST-TCP program.
//
// Builds the paper's topology (client, primary, backup, gateway on one
// switch + serial heartbeat cable), serves a file through the virtual
// service address, kills the primary halfway, and shows that the client's
// single TCP connection finishes intact on the backup.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"

namespace app = sttcp::app;
namespace sim = sttcp::sim;
using sttcp::harness::Fault;
using sttcp::harness::Node;
using sttcp::harness::Scenario;
using sttcp::harness::ScenarioConfig;

int main() {
  // 1. The world: Figure 2 of the paper, fully wired. ST-TCP endpoints are
  //    already heartbeating on the IP and serial channels.
  ScenarioConfig cfg;
  cfg.sttcp.hb_period = sim::Duration::millis(200);
  Scenario world(std::move(cfg));

  // 2. The service: a 30 MB file server. One instance per server — they are
  //    deterministic replicas; the backup's instance runs suppressed.
  constexpr std::uint64_t kFileSize = 30'000'000;
  app::FileServer primary_app(world.primary_stack(), world.service_port(), kFileSize);
  app::FileServer backup_app(world.backup_stack(), world.service_port(), kFileSize);

  // 3. The client: downloads from the service IP, verifying every byte.
  app::DownloadClient::Options opt;
  opt.expected_bytes = kFileSize;
  app::DownloadClient client(world.client_stack(), world.client_ip(),
                             {world.connect_addr()}, opt);
  client.start();

  // 4. Halfway through: the primary suffers a hardware crash.
  world.inject(Fault::Crash(Node::kPrimary).at(sim::Duration::seconds(1)));

  // 5. Run the simulation.
  world.run_for(sim::Duration::seconds(30));

  // 6. What the client experienced.
  std::printf("download complete:   %s\n", client.complete() ? "yes" : "no");
  std::printf("bytes received:      %llu / %llu (all verified: %s)\n",
              static_cast<unsigned long long>(client.received()),
              static_cast<unsigned long long>(kFileSize),
              client.corrupt() ? "NO" : "yes");
  std::printf("connection failures: %d (connects: %d)\n",
              client.connection_failures(), client.connects());
  std::printf("longest stall:       %s\n", client.max_stall().str().c_str());

  // 7. What happened behind the curtain.
  const auto& trace = world.world().trace();
  if (auto t = trace.first_time("takeover")) {
    std::printf("\nbackup took over at t=%s (crash at t=1s);"
                " the client never noticed.\n",
                t->str().c_str());
  }
  return client.complete() && !client.corrupt() ? 0 : 1;
}
