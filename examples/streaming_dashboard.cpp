// Streaming dashboard: Demo 1's GUI pie-chart client, rendered in ASCII.
//
// The client continuously downloads; the progress bar is sampled every
// 250 ms of simulated time. The primary is crashed mid-transfer — watch the
// bar stall briefly and continue, with no reconnect. Then the same scenario
// runs WITHOUT ST-TCP: the bar freezes until the client gives up,
// reconnects to the hot backup, and starts over from zero.
//
//   $ ./examples/streaming_dashboard
#include <cstdio>
#include <string>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"

namespace app = sttcp::app;
namespace sim = sttcp::sim;
using sttcp::harness::Fault;
using sttcp::harness::Node;
using sttcp::harness::Scenario;
using sttcp::harness::ScenarioConfig;

namespace {

constexpr std::uint64_t kFileSize = 60'000'000;

void render(double t_sec, std::uint64_t bytes, const char* note) {
  const double frac =
      static_cast<double>(bytes) / static_cast<double>(kFileSize);
  const int filled = static_cast<int>(frac * 40);
  std::string bar(static_cast<size_t>(filled), '#');
  bar.resize(40, '.');
  std::printf("  t=%5.2fs [%s] %5.1f%% %s\n", t_sec, bar.c_str(), frac * 100, note);
}

void run(bool with_sttcp) {
  std::printf("\n--- %s ---\n", with_sttcp
                                    ? "WITH ST-TCP (client never reconnects)"
                                    : "WITHOUT ST-TCP (hot backup, but the "
                                      "connection dies)");
  ScenarioConfig cfg;
  cfg.enable_sttcp = with_sttcp;
  cfg.enable_metrics = true;  // drive the dashboard footer off the registry
  Scenario world(std::move(cfg));
  app::FileServer primary_app(world.primary_stack(), world.service_port(), kFileSize);
  app::FileServer backup_app(world.backup_stack(), world.service_port(), kFileSize);

  app::DownloadClient::Options opt;
  opt.expected_bytes = kFileSize;
  std::vector<sttcp::net::SocketAddr> servers{world.connect_addr()};
  if (!with_sttcp) {
    opt.reconnect = true;
    opt.reconnect_delay = sim::Duration::millis(50);
    opt.stall_timeout = sim::Duration::seconds(3);  // the user's patience
    servers.push_back(world.backup_addr());
  }
  app::DownloadClient client(world.client_stack(), world.client_ip(), servers, opt);
  client.start();
  world.inject(Fault::Crash(Node::kPrimary).at(sim::Duration::millis(1500)));

  std::uint64_t last = 0;
  bool crash_reported = false;
  for (int tick = 1; tick <= 80 && !client.complete(); ++tick) {
    world.run_for(sim::Duration::millis(250));
    const double t = world.world().now().to_seconds();
    const char* note = "";
    if (!crash_reported && t >= 1.5) {
      note = "<- primary crashed here";
      crash_reported = true;
    } else if (client.received() < last) {
      note = "<- reconnected, starting over";
    } else if (client.received() == last && !client.complete()) {
      note = "(stalled)";
    }
    render(t, client.received(), note);
    last = client.received();
  }
  std::printf("  result: %s, %d connection failure(s), longest stall %s\n",
              client.complete() ? "complete" : "INCOMPLETE",
              client.connection_failures(), client.max_stall().str().c_str());

  // Telemetry footer, straight from the obs::MetricsRegistry.
  auto& reg = *world.metrics();
  world.export_metrics();
  std::printf("  telemetry: %llu frames on the client link, "
              "%llu client-side TCP retransmissions\n",
              static_cast<unsigned long long>(
                  reg.counter("net.link.client.frames_delivered").value()),
              static_cast<unsigned long long>(
                  reg.counter("tcp.client.retransmissions").value()));
  if (const auto seg = reg.timeline().segments()) {
    std::printf("  failover:  detection %.1f ms + takeover %.1f ms + "
                "retransmission wait %.1f ms = %.1f ms total\n",
                seg->detection_ms, seg->takeover_ms, seg->retransmission_ms,
                seg->total_ms);
  }
}

}  // namespace

int main() {
  std::printf("Demo 1: the pie-chart client (40-char progress bar, 250 ms frames)\n");
  run(/*with_sttcp=*/true);
  run(/*with_sttcp=*/false);
  return 0;
}
