// scenario_cli: a command-line driver for the ST-TCP simulator — run any
// single-failure scenario with chosen parameters and get a report. The tool
// an operator would use to explore configurations before deployment.
//
//   $ ./examples/scenario_cli --failure=primary-crash --hb-ms=500 --size-mb=50
//   $ ./examples/scenario_cli --failure=backup-nic --seed=7 --logger
//   $ ./examples/scenario_cli --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"

namespace app = sttcp::app;
namespace sim = sttcp::sim;
using sttcp::harness::Fault;
using sttcp::harness::Node;
using sttcp::harness::Scenario;
using sttcp::harness::ScenarioConfig;

namespace {

struct Options {
  std::string failure = "primary-crash";
  int hb_ms = 200;
  int miss = 3;
  std::uint64_t size_mb = 40;
  std::uint64_t seed = 1;
  int crash_ms = 1000;
  bool logger = false;
  bool no_sttcp = false;
  bool trace = false;
};

const char* const kFailures[] = {
    "none",         "primary-crash", "backup-crash",  "primary-app-hang",
    "backup-app-hang", "primary-app-fin", "backup-app-fin", "primary-nic",
    "backup-nic",   "serial-cut",    "backup-loss",
};

void usage() {
  std::puts(
      "scenario_cli — run one ST-TCP failure scenario and report\n"
      "  --failure=<kind>   failure to inject (see --list; default primary-crash)\n"
      "  --hb-ms=<n>        heartbeat period in ms (default 200)\n"
      "  --miss=<n>         heartbeat miss threshold (default 3)\n"
      "  --size-mb=<n>      file size the client downloads (default 40)\n"
      "  --crash-ms=<n>     injection time in ms (default 1000)\n"
      "  --seed=<n>         simulation seed (default 1)\n"
      "  --logger           add the stream-logger host\n"
      "  --no-sttcp         plain TCP baseline (no replication)\n"
      "  --trace            dump the full event trace at the end\n"
      "  --list             list failure kinds and exit\n");
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const char* f : kFailures) std::printf("%s\n", f);
      return 0;
    } else if (std::strcmp(argv[i], "--logger") == 0) {
      opt.logger = true;
    } else if (std::strcmp(argv[i], "--no-sttcp") == 0) {
      opt.no_sttcp = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = true;
    } else if (parse_flag(argv[i], "--failure", v)) {
      opt.failure = v;
    } else if (parse_flag(argv[i], "--hb-ms", v)) {
      opt.hb_ms = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--miss", v)) {
      opt.miss = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--size-mb", v)) {
      opt.size_mb = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (parse_flag(argv[i], "--crash-ms", v)) {
      opt.crash_ms = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--seed", v)) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      usage();
      return 2;
    }
  }

  ScenarioConfig cfg;
  cfg.seed = opt.seed;
  cfg.enable_sttcp = !opt.no_sttcp;
  cfg.enable_logger = opt.logger;
  cfg.sttcp.hb_period = sim::Duration::millis(opt.hb_ms);
  cfg.sttcp.hb_miss_threshold = opt.miss;
  Scenario sc(std::move(cfg));

  const std::uint64_t size = opt.size_mb * 1'000'000;
  app::FileServer p_app(sc.primary_stack(), sc.service_port(), size);
  app::FileServer b_app(sc.backup_stack(), sc.service_port(), size);
  app::DownloadClient::Options copt;
  copt.expected_bytes = size;
  app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                             {sc.connect_addr()}, copt);
  client.start();

  const auto at = sim::Duration::millis(opt.crash_ms);
  if (opt.failure == "none") {
  } else if (opt.failure == "primary-crash") {
    sc.inject(Fault::Crash(Node::kPrimary).at(at));
  } else if (opt.failure == "backup-crash") {
    sc.inject(Fault::Crash(Node::kBackup).at(at));
  } else if (opt.failure == "primary-app-hang") {
    sc.world().loop().schedule_after(at, [&] { p_app.hang(); });
  } else if (opt.failure == "backup-app-hang") {
    sc.world().loop().schedule_after(at, [&] { b_app.hang(); });
  } else if (opt.failure == "primary-app-fin") {
    sc.world().loop().schedule_after(at, [&] { p_app.crash_clean(); });
  } else if (opt.failure == "backup-app-fin") {
    sc.world().loop().schedule_after(at, [&] { b_app.crash_clean(); });
  } else if (opt.failure == "primary-nic") {
    sc.inject(Fault::NicFailure(Node::kPrimary).at(at));
  } else if (opt.failure == "backup-nic") {
    sc.inject(Fault::NicFailure(Node::kBackup).at(at));
  } else if (opt.failure == "serial-cut") {
    sc.inject(Fault::SerialCut().at(at));
  } else if (opt.failure == "backup-loss") {
    sc.inject(Fault::FrameLoss(Node::kBackup, 12).at(at));
  } else {
    std::fprintf(stderr, "unknown failure kind '%s' (see --list)\n",
                 opt.failure.c_str());
    return 2;
  }

  sc.run_for(sim::Duration::seconds(240));

  std::printf("scenario:    %s (hb=%dms, miss=%d, seed=%llu%s%s)\n",
              opt.failure.c_str(), opt.hb_ms, opt.miss,
              static_cast<unsigned long long>(opt.seed),
              opt.no_sttcp ? ", plain TCP" : "", opt.logger ? ", +logger" : "");
  std::printf("download:    %s (%llu / %llu bytes, %s)\n",
              client.complete() ? "complete" : "INCOMPLETE",
              static_cast<unsigned long long>(client.received()),
              static_cast<unsigned long long>(size),
              client.corrupt() ? "CORRUPT" : "verified");
  if (client.complete()) {
    std::printf("transfer:    %.3f s\n",
                (client.completed_at() - client.started_at()).to_seconds());
  }
  std::printf("client view: %d connection failure(s), longest stall %s\n",
              client.connection_failures(), client.max_stall().str().c_str());
  const auto& tr = sc.world().trace();
  for (const char* ev :
       {"peer_dead", "app_failure_detected", "nic_failure_detected",
        "hold_overflow", "watchdog_failure"}) {
    if (auto t = tr.first_time(ev)) {
      std::printf("detection:   %s at t=%s\n", ev, t->str().c_str());
      break;
    }
  }
  if (auto t = tr.first_time("takeover")) {
    std::printf("recovery:    backup takeover at t=%s\n", t->str().c_str());
  } else if (tr.count("non_ft_mode") > 0) {
    std::printf("recovery:    primary continued non-fault-tolerant\n");
  } else {
    std::printf("recovery:    none needed\n");
  }
  if (opt.trace) std::printf("\n--- trace ---\n%s", tr.dump().c_str());
  return client.corrupt() ? 1 : 0;
}
