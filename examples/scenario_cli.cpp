// scenario_cli: a command-line driver for the ST-TCP simulator — run any
// single-failure scenario with chosen parameters and get a report. The tool
// an operator would use to explore configurations before deployment.
//
// Built on TopologyBuilder (the composable topology API): the default is
// the classic Figure-2 LAN, --routed moves the client behind an IP router
// onto its own subnet — the one-cell slice of the sharded fabric.
//
//   $ ./examples/scenario_cli --failure=primary-crash --hb-ms=500 --size-mb=50
//   $ ./examples/scenario_cli --failure=backup-nic --seed=7 --logger
//   $ ./examples/scenario_cli --failure=router-crash --routed
//   $ ./examples/scenario_cli --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "app/client.h"
#include "app/server.h"
#include "harness/topology.h"
#include "sttcp/logger.h"

namespace app = sttcp::app;
namespace net = sttcp::net;
namespace sim = sttcp::sim;
using sttcp::harness::Cell;
using sttcp::harness::CellConfig;
using sttcp::harness::HostOptions;
using sttcp::harness::Topology;
using sttcp::harness::TopologyBuilder;
using sttcp::harness::TopologyConfig;

namespace {

struct Options {
  std::string failure = "primary-crash";
  int hb_ms = 200;
  int miss = 3;
  std::uint64_t size_mb = 40;
  std::uint64_t seed = 1;
  int crash_ms = 1000;
  bool logger = false;
  bool no_sttcp = false;
  bool routed = false;
  bool trace = false;
};

const char* const kFailures[] = {
    "none",         "primary-crash", "backup-crash",  "primary-app-hang",
    "backup-app-hang", "primary-app-fin", "backup-app-fin", "primary-nic",
    "backup-nic",   "serial-cut",    "backup-loss",   "router-crash",
};

void usage() {
  std::puts(
      "scenario_cli — run one ST-TCP failure scenario and report\n"
      "  --failure=<kind>   failure to inject (see --list; default primary-crash)\n"
      "  --hb-ms=<n>        heartbeat period in ms (default 200)\n"
      "  --miss=<n>         heartbeat miss threshold (default 3)\n"
      "  --size-mb=<n>      file size the client downloads (default 40)\n"
      "  --crash-ms=<n>     injection time in ms (default 1000)\n"
      "  --seed=<n>         simulation seed (default 1)\n"
      "  --logger           add the stream-logger host\n"
      "  --no-sttcp         plain TCP baseline (no replication)\n"
      "  --routed           client behind an IP router (separate subnets)\n"
      "  --trace            dump the full event trace at the end\n"
      "  --list             list failure kinds and exit\n");
}

bool parse_flag(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    out = arg + n + 1;
    return true;
  }
  return false;
}

/// Everything the report needs from the built world.
struct World {
  std::unique_ptr<Topology> topo;
  std::unique_ptr<sttcp::sttcp::StreamLogger> logger;
  Cell* cell = nullptr;
  net::Ipv4Addr client_ip;
};

/// Classic flat LAN (Figure 2) or the routed one-cell fabric. The logger
/// host, when requested, joins the cell's multicast group on the cell's LAN
/// exactly like the Scenario facade wires it.
World build_world(const Options& opt) {
  World w;
  const bool routed = opt.routed;
  const std::uint8_t subnet = routed ? 1 : 0;
  const net::Ipv4Addr service{10, subnet, 0, 100};
  const net::Ipv4Addr logger_ip{10, subnet, 0, 9};

  TopologyConfig tc;
  tc.seed = opt.seed;
  tc.enable_sttcp = !opt.no_sttcp;
  tc.sttcp.hb_period = sim::Duration::millis(opt.hb_ms);
  tc.sttcp.hb_miss_threshold = opt.miss;
  if (opt.logger) tc.logger_ip = logger_ip;

  TopologyBuilder b(tc);
  const int client_lan = b.add_switch(routed ? "clientlan" : "switch");
  const int server_lan = routed ? b.add_switch("serverlan") : client_lan;

  HostOptions client_opt;
  client_opt.with_stack = true;
  w.client_ip = net::Ipv4Addr{10, 0, 0, 1};
  b.add_host("client", w.client_ip, client_lan, client_opt);

  CellConfig cc;
  cc.primary_ip = {10, subnet, 0, 2};
  cc.backup_ip = {10, subnet, 0, 3};
  cc.service_ip = service;
  cc.gateway_ip = {10, subnet, 0, 254};
  b.add_cell(server_lan, cc);

  int logger_idx = -1;
  if (!routed) b.add_host("gateway", {10, 0, 0, 254}, client_lan);
  if (opt.logger) {
    logger_idx = b.add_host("logger", logger_ip, server_lan);
    Topology::HostEntry& lh = b.topology().host(static_cast<std::size_t>(logger_idx));
    lh.host->add_ip(service);
    Cell& c = b.topology().cell(0);
    lh.host->nic().subscribe_multicast(c.multicast_mac());
    b.topology().ethernet_switch(static_cast<std::size_t>(server_lan))
        .add_multicast_group(c.multicast_mac(),
                             {c.primary_port(), c.backup_port(), lh.port});
  }
  if (routed) {
    const int r = b.add_router("core");
    b.connect_router(r, client_lan, {10, 0, 0, 254});
    b.connect_router(r, server_lan, {10, 1, 0, 254});
  }
  w.topo = b.build();
  w.cell = &w.topo->cell(0);
  if (logger_idx >= 0) {
    sttcp::sttcp::StreamLogger::Config lc;
    lc.service_ip = service;
    w.logger = std::make_unique<sttcp::sttcp::StreamLogger>(
        *w.topo->host(static_cast<std::size_t>(logger_idx)).host, lc);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const char* f : kFailures) std::printf("%s\n", f);
      return 0;
    } else if (std::strcmp(argv[i], "--logger") == 0) {
      opt.logger = true;
    } else if (std::strcmp(argv[i], "--no-sttcp") == 0) {
      opt.no_sttcp = true;
    } else if (std::strcmp(argv[i], "--routed") == 0) {
      opt.routed = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = true;
    } else if (parse_flag(argv[i], "--failure", v)) {
      opt.failure = v;
    } else if (parse_flag(argv[i], "--hb-ms", v)) {
      opt.hb_ms = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--miss", v)) {
      opt.miss = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--size-mb", v)) {
      opt.size_mb = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else if (parse_flag(argv[i], "--crash-ms", v)) {
      opt.crash_ms = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--seed", v)) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(v.c_str()));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      usage();
      return 2;
    }
  }
  if (opt.failure == "router-crash" && !opt.routed) {
    std::fprintf(stderr, "--failure=router-crash requires --routed\n");
    return 2;
  }

  World w = build_world(opt);
  Topology& topo = *w.topo;
  Cell& cell = *w.cell;

  const std::uint64_t size = opt.size_mb * 1'000'000;
  app::FileServer p_app(cell.primary_stack(), cell.service_port(), size);
  app::FileServer b_app(cell.backup_stack(), cell.service_port(), size);
  app::DownloadClient::Options copt;
  copt.expected_bytes = size;
  app::DownloadClient client(*topo.host(0).stack, w.client_ip,
                             {cell.connect_addr()}, copt);
  client.start();

  // Faults act on the topology directly; each stamps the same
  // "fault_injected" trace marker the Scenario facade's Fault machinery
  // emits, so report tooling sees one vocabulary.
  const auto at = sim::Duration::millis(opt.crash_ms);
  const auto inject = [&](const std::string& label, std::function<void()> fn) {
    topo.world().loop().schedule_after(at, [&, label, fn = std::move(fn)] {
      topo.world().trace().record("harness", "fault_injected", label);
      fn();
    });
  };
  if (opt.failure == "none") {
  } else if (opt.failure == "primary-crash") {
    inject("crash:primary", [&] { cell.primary().crash("injected HW/OS crash"); });
  } else if (opt.failure == "backup-crash") {
    inject("crash:backup", [&] { cell.backup().crash("injected HW/OS crash"); });
  } else if (opt.failure == "primary-app-hang") {
    inject("app_hang:primary", [&] { p_app.hang(); });
  } else if (opt.failure == "backup-app-hang") {
    inject("app_hang:backup", [&] { b_app.hang(); });
  } else if (opt.failure == "primary-app-fin") {
    inject("app_fin:primary", [&] { p_app.crash_clean(); });
  } else if (opt.failure == "backup-app-fin") {
    inject("app_fin:backup", [&] { b_app.crash_clean(); });
  } else if (opt.failure == "primary-nic") {
    inject("nic_failure:primary", [&] {
      topo.world().trace().record("primary", "nic_failed");
      cell.primary().nic().fail();
    });
  } else if (opt.failure == "backup-nic") {
    inject("nic_failure:backup", [&] {
      topo.world().trace().record("backup", "nic_failed");
      cell.backup().nic().fail();
    });
  } else if (opt.failure == "serial-cut") {
    inject("serial_cut", [&] {
      topo.world().trace().record("serial", "serial_failed");
      cell.serial().fail();
    });
  } else if (opt.failure == "backup-loss") {
    inject("frame_loss:backup", [&] { cell.backup_link().drop_next(12); });
  } else if (opt.failure == "router-crash") {
    inject("router_crash:core", [&] { topo.router().crash(); });
    // A dead router is forever without repair; bring it back after 2 s so
    // the download can finish and the report shows the stall.
    topo.world().loop().schedule_after(at + sim::Duration::seconds(2),
                                       [&] { topo.router().restore(); });
  } else {
    std::fprintf(stderr, "unknown failure kind '%s' (see --list)\n",
                 opt.failure.c_str());
    return 2;
  }

  topo.run_for(sim::Duration::seconds(240));

  std::printf("scenario:    %s (hb=%dms, miss=%d, seed=%llu%s%s%s)\n",
              opt.failure.c_str(), opt.hb_ms, opt.miss,
              static_cast<unsigned long long>(opt.seed),
              opt.no_sttcp ? ", plain TCP" : "", opt.logger ? ", +logger" : "",
              opt.routed ? ", routed" : "");
  std::printf("download:    %s (%llu / %llu bytes, %s)\n",
              client.complete() ? "complete" : "INCOMPLETE",
              static_cast<unsigned long long>(client.received()),
              static_cast<unsigned long long>(size),
              client.corrupt() ? "CORRUPT" : "verified");
  if (client.complete()) {
    std::printf("transfer:    %.3f s\n",
                (client.completed_at() - client.started_at()).to_seconds());
  }
  std::printf("client view: %d connection failure(s), longest stall %s\n",
              client.connection_failures(), client.max_stall().str().c_str());
  const auto& tr = topo.world().trace();
  for (const char* ev :
       {"peer_dead", "app_failure_detected", "nic_failure_detected",
        "hold_overflow", "watchdog_failure"}) {
    if (auto t = tr.first_time(ev)) {
      std::printf("detection:   %s at t=%s\n", ev, t->str().c_str());
      break;
    }
  }
  if (auto t = tr.first_time("takeover")) {
    std::printf("recovery:    backup takeover at t=%s\n", t->str().c_str());
  } else if (tr.count("non_ft_mode") > 0) {
    std::printf("recovery:    primary continued non-fault-tolerant\n");
  } else {
    std::printf("recovery:    none needed\n");
  }
  if (opt.trace) std::printf("\n--- trace ---\n%s", tr.dump().c_str());
  return client.corrupt() ? 1 : 0;
}
