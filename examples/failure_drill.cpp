// Failure drill: walks every failure class of the paper's Table 1 against a
// live record-stream service and narrates what ST-TCP does about each —
// an operator's tour of the failure-detection machinery.
//
//   $ ./examples/failure_drill
#include <cstdio>
#include <memory>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"

namespace app = sttcp::app;
namespace sim = sttcp::sim;
using sttcp::harness::Fault;
using sttcp::harness::Node;
using sttcp::harness::Scenario;
using sttcp::harness::ScenarioConfig;

namespace {

/// Each drill builds its Fault once the servers exist (app-level faults wrap
/// a server method in Fault::Custom); Scenario::inject() arms it.
void drill(const char* title, const char* expectation,
           const std::function<Fault(app::StreamServer& primary_app,
                                     app::StreamServer& backup_app)>& make_fault) {
  std::printf("\n=== %s ===\n    expectation: %s\n", title, expectation);

  ScenarioConfig cfg;
  cfg.sttcp.max_delay_fin = sim::Duration::seconds(10);
  Scenario world(std::move(cfg));
  app::StreamServer primary_app(world.primary_stack(), world.service_port(), 4000);
  app::StreamServer backup_app(world.backup_stack(), world.service_port(), 4000);
  app::StreamClient client(world.client_stack(), world.client_ip(),
                           world.connect_addr(), 4000, /*pipeline=*/8);
  client.start();
  world.run_for(sim::Duration::millis(500));
  const std::uint64_t before = client.records_completed();

  world.inject(make_fault(primary_app, backup_app));
  world.run_for(sim::Duration::seconds(15));

  const auto& trace = world.world().trace();
  const char* detection = "(none)";
  for (const char* ev :
       {"peer_dead", "app_failure_detected", "nic_failure_detected",
        "fin_disagreement", "hold_overflow"}) {
    if (trace.count(ev) > 0) {
      detection = ev;
      break;
    }
  }
  const char* action = trace.count("takeover") > 0 ? "backup took over"
                       : trace.count("non_ft_mode") > 0
                           ? "primary continued non-fault-tolerant"
                           : "no failover (handled below TCP)";
  std::printf("    detection:   %s\n", detection);
  std::printf("    action:      %s\n", action);
  std::printf("    client:      %llu -> %llu records, stream %s, connection %s\n",
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(client.records_completed()),
              client.corrupt() ? "CORRUPT" : "intact",
              client.closed() ? "LOST" : "still open");
}

}  // namespace

int main() {
  std::printf("ST-TCP failure drill: one scenario per Table-1 row.\n"
              "A record-stream client keeps requesting throughout; every drill\n"
              "must end with the stream intact and the connection open.\n");

  drill("row 1: primary HW/OS crash",
        "both heartbeat channels die; backup takes over",
        [](app::StreamServer&, app::StreamServer&) {
          return Fault::Crash(Node::kPrimary);
        });

  drill("row 1: backup HW/OS crash",
        "primary shuts the backup down and continues alone",
        [](app::StreamServer&, app::StreamServer&) {
          return Fault::Crash(Node::kBackup);
        });

  drill("row 2: primary application hang (no FIN)",
        "AppMaxLag detection on the heartbeat counters; takeover",
        [](app::StreamServer& p, app::StreamServer&) {
          return Fault::Custom("app_hang:primary", [&p](Scenario&) { p.hang(); });
        });

  drill("row 3: primary application crash, OS closes socket (FIN)",
        "the FIN is withheld (MaxDelayFIN); lag detection convicts; takeover",
        [](app::StreamServer& p, app::StreamServer&) {
          return Fault::Custom("app_fin_crash:primary",
                               [&p](Scenario&) { p.crash_clean(); });
        });

  drill("row 3: backup application crash (FIN)",
        "the backup's FIN is discarded; primary goes non-fault-tolerant",
        [](app::StreamServer&, app::StreamServer& b) {
          return Fault::Custom("app_fin_crash:backup",
                               [&b](Scenario&) { b.crash_clean(); });
        });

  drill("row 4: primary NIC failure",
        "IP heartbeat dies, serial survives; gateway-ping arbitration; takeover",
        [](app::StreamServer&, app::StreamServer&) {
          return Fault::NicFailure(Node::kPrimary);
        });

  drill("row 4: backup NIC failure",
        "byte-count comparison over the serial heartbeat convicts the backup",
        [](app::StreamServer&, app::StreamServer&) {
          return Fault::NicFailure(Node::kBackup);
        });

  drill("row 5: temporary loss toward the backup",
        "missed bytes fetched from the primary's hold buffer; NO failover",
        [](app::StreamServer&, app::StreamServer&) {
          return Fault::FrameLoss(Node::kBackup, 12);
        });

  std::printf("\nDrill complete.\n");
  return 0;
}
