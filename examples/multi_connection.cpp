// Multi-connection failover: 50 concurrent downloads through one ST-TCP
// pair, primary crashed mid-flight — every connection must survive on the
// backup. Also prints the serial heartbeat budget for the connection count
// (paper §3: ~100 connections fit on the 115.2 kbps serial link).
//
//   $ ./examples/multi_connection
#include <cstdio>
#include <memory>
#include <vector>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"

namespace app = sttcp::app;
namespace sim = sttcp::sim;
using sttcp::harness::Fault;
using sttcp::harness::Node;
using sttcp::harness::Scenario;
using sttcp::harness::ScenarioConfig;

int main() {
  constexpr int kConnections = 50;
  constexpr std::uint64_t kFileSize = 2'000'000;

  Scenario world{ScenarioConfig{}};
  app::FileServer primary_app(world.primary_stack(), world.service_port(), kFileSize);
  app::FileServer backup_app(world.backup_stack(), world.service_port(), kFileSize);

  std::vector<std::unique_ptr<app::DownloadClient>> clients;
  for (int i = 0; i < kConnections; ++i) {
    app::DownloadClient::Options opt;
    opt.expected_bytes = kFileSize;
    clients.push_back(std::make_unique<app::DownloadClient>(
        world.client_stack(), world.client_ip(),
        std::vector<sttcp::net::SocketAddr>{world.connect_addr()}, opt));
    clients.back()->start();
  }

  world.run_for(sim::Duration::millis(600));
  std::printf("replicated connections on the backup: %zu / %d\n",
              world.backup_endpoint()->replicated_connections(), kConnections);
  std::printf("serial heartbeat queue: %s (limit: one 200 ms period)\n",
              world.serial().queue_delay(0).str().c_str());

  std::printf("\ncrashing the primary...\n");
  world.inject(Fault::Crash(Node::kPrimary).at(sim::Duration::zero()));
  world.run_for(sim::Duration::seconds(60));

  int complete = 0;
  int intact = 0;
  int failures = 0;
  sim::Duration worst_stall = sim::Duration::zero();
  for (const auto& c : clients) {
    if (c->complete()) ++complete;
    if (!c->corrupt()) ++intact;
    failures += c->connection_failures();
    if (c->max_stall() > worst_stall) worst_stall = c->max_stall();
  }
  std::printf("after takeover:\n");
  std::printf("  downloads complete:   %d / %d\n", complete, kConnections);
  std::printf("  streams intact:       %d / %d\n", intact, kConnections);
  std::printf("  connection failures:  %d\n", failures);
  std::printf("  worst client stall:   %s\n", worst_stall.str().c_str());
  std::printf("  takeovers:            %zu\n",
              world.world().trace().count("takeover"));
  return (complete == kConnections && failures == 0) ? 0 : 1;
}
