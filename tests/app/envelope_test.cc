// Envelope codec tests: roundtrip, incremental reassembly, and the
// fail-closed guarantees ISSUE acceptance demands — no truncation ever
// yields a frame, no single-bit flip is ever accepted, random garbage never
// aliases into a well-formed envelope, and a poisoned stream stays poisoned.
#include <gtest/gtest.h>

#include <cstdint>

#include "app/envelope.h"
#include "sim/random.h"

namespace sttcp::app {
namespace {

// A deterministic non-trivial frame: all-ones payload so that no shortened
// checksum range can sum to the stored value (every omitted suffix of 40
// one-bytes changes the internet checksum by a nonzero amount < 0xffff).
Envelope sample_request() {
  net::Bytes payload(40, 0x01);
  return make_request(MsgType::kPut, 0xAABBCCDD, 17, std::move(payload));
}

TEST(EnvelopeTest, RequestRoundtrip) {
  const Envelope req = sample_request();
  const net::Bytes wire = req.serialize();
  ASSERT_EQ(wire.size(), Envelope::kHeaderSize + 40);

  Decoder dec;
  dec.feed(wire);
  Envelope out;
  ASSERT_EQ(dec.next(&out), Decoder::Result::kOk);
  EXPECT_EQ(out.type, req.type);
  EXPECT_FALSE(out.is_response());
  EXPECT_EQ(out.request_type(), MsgType::kPut);
  EXPECT_EQ(out.session, 0xAABBCCDDu);
  EXPECT_EQ(out.req_id, 17u);
  EXPECT_EQ(out.payload, req.payload);
  EXPECT_EQ(dec.next(&out), Decoder::Result::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(EnvelopeTest, ResponseRoundtripAndBodyParse) {
  const Envelope req = make_request(MsgType::kGet, 9, 3, net::Bytes{1, 2, 3, 4});
  const net::Bytes data{0x10, 0x20, 0x30};
  const Envelope resp = make_response(req, Status::kNotFound, 123456789, data);
  EXPECT_TRUE(resp.is_response());
  EXPECT_EQ(resp.request_type(), MsgType::kGet);
  EXPECT_EQ(resp.req_id, req.req_id);

  Decoder dec;
  dec.feed(resp.serialize());
  Envelope out;
  ASSERT_EQ(dec.next(&out), Decoder::Result::kOk);
  const auto body = parse_response_body(out);
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(body->status, Status::kNotFound);
  EXPECT_EQ(body->timestamp_us, 123456789u);
  EXPECT_EQ(body->data, data);

  // A response payload shorter than status+timestamp cannot parse.
  Envelope stub = out;
  stub.payload.resize(4);
  EXPECT_FALSE(parse_response_body(stub).has_value());
}

TEST(EnvelopeTest, ReassemblesFramesFedByteByByte) {
  const Envelope a = sample_request();
  const Envelope b = make_request(MsgType::kClose, 1, 2, {});
  net::Bytes wire = a.serialize();
  const net::Bytes wb = b.serialize();
  wire.insert(wire.end(), wb.begin(), wb.end());

  Decoder dec;
  Envelope out;
  int decoded = 0;
  for (const std::uint8_t byte : wire) {
    dec.feed(net::BytesView(&byte, 1));
    while (dec.next(&out) == Decoder::Result::kOk) ++decoded;
  }
  EXPECT_EQ(decoded, 2);
  EXPECT_FALSE(dec.poisoned());
}

TEST(EnvelopeTest, EveryTruncationIsNeedMoreNeverOk) {
  const net::Bytes wire = sample_request().serialize();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Decoder dec;
    dec.feed(net::BytesView(wire.data(), cut));
    Envelope out;
    EXPECT_EQ(dec.next(&out), Decoder::Result::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(EnvelopeTest, EverySingleBitFlipIsRejected) {
  const net::Bytes wire = sample_request().serialize();
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    net::Bytes flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Decoder dec;
    dec.feed(flipped);
    Envelope out;
    const auto r = dec.next(&out);
    // A flip that grows the length field legitimately parks as kNeedMore;
    // everything else must fail closed. Accepting a frame is the one
    // forbidden outcome.
    EXPECT_NE(r, Decoder::Result::kOk) << "bit " << bit;
  }
}

TEST(EnvelopeTest, RandomGarbageNeverDecodes) {
  sim::Rng rng(0xE77E10FEu);
  Envelope out;
  for (int trial = 0; trial < 5000; ++trial) {
    Decoder dec;
    const std::size_t n = 1 + rng.below(64);
    net::Bytes junk(n);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    dec.feed(junk);
    const auto r = dec.next(&out);
    EXPECT_NE(r, Decoder::Result::kOk) << "trial " << trial;
  }
}

TEST(EnvelopeTest, GarbagePrefixPoisonsDespiteValidFrameBehind) {
  // A desynced length-prefixed stream must NOT resync: one bad frame kills
  // the connection even if pristine bytes follow.
  net::Bytes wire{0xDE, 0xAD};  // wrong magic
  const net::Bytes good = sample_request().serialize();
  wire.insert(wire.end(), good.begin(), good.end());

  Decoder dec;
  dec.feed(wire);
  Envelope out;
  EXPECT_EQ(dec.next(&out), Decoder::Result::kBad);
  EXPECT_TRUE(dec.poisoned());
  // Sticky: more valid bytes cannot revive it.
  dec.feed(good);
  EXPECT_EQ(dec.next(&out), Decoder::Result::kBad);
}

TEST(EnvelopeTest, OversizedLengthFailsClosed) {
  // A frame honestly declaring a payload over the decoder's cap is rejected
  // before the payload arrives — a corrupted length cannot stall detection.
  Envelope big = make_request(MsgType::kPut, 1, 1, net::Bytes(128, 0x55));
  Decoder small(/*max_payload=*/64);
  small.feed(big.serialize());
  Envelope out;
  EXPECT_EQ(small.next(&out), Decoder::Result::kBad);
  EXPECT_TRUE(small.poisoned());
}

TEST(EnvelopeTest, BufferedBytesExposeUndecodedBacklog) {
  const net::Bytes wire = sample_request().serialize();
  Decoder dec;
  dec.feed(net::BytesView(wire.data(), 10));
  Envelope out;
  ASSERT_EQ(dec.next(&out), Decoder::Result::kNeedMore);
  ASSERT_EQ(dec.buffered(), 10u);
  const net::BytesView backlog = dec.buffered_bytes();
  // Re-feeding the backlog into a fresh decoder plus the rest decodes: the
  // checkpoint carries exactly these bytes across reintegration.
  Decoder fresh;
  fresh.feed(backlog);
  fresh.feed(net::BytesView(wire.data() + 10, wire.size() - 10));
  EXPECT_EQ(fresh.next(&out), Decoder::Result::kOk);
}

}  // namespace
}  // namespace sttcp::app
