// BlockDevice + LruBlockCache unit tests, ending in the determinism proof
// the ISSUE demands: two caches — one drawing sampled-LRU eviction victims
// and recording them into a DecisionLog, one replaying that log — stay
// digest-identical through an arbitrary operation stream.
#include <gtest/gtest.h>

#include <vector>

#include "app/block_store.h"
#include "sim/random.h"
#include "sttcp/decision.h"

namespace sttcp::app {
namespace {

net::Bytes fill(std::size_t n, std::uint8_t seed) {
  net::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i);
  }
  return b;
}

TEST(BlockDeviceTest, WriteReadDeallocate) {
  BlockDevice dev(8, 32);
  EXPECT_FALSE(dev.allocated(3));
  const std::uint64_t empty = dev.digest();

  dev.write(3, fill(10, 0x40));  // short write zero-pads
  EXPECT_TRUE(dev.allocated(3));
  const net::BytesView back = dev.read(3);
  ASSERT_EQ(back.size(), 32u);
  EXPECT_EQ(back[0], 0x40);
  EXPECT_EQ(back[9], 0x49);
  EXPECT_EQ(back[10], 0x00);
  EXPECT_NE(dev.digest(), empty);

  dev.deallocate(3);
  EXPECT_FALSE(dev.allocated(3));
  EXPECT_EQ(dev.read(3)[0], 0x00);  // deleted blocks read back fresh
  EXPECT_EQ(dev.digest(), empty);
}

TEST(BlockDeviceTest, SerializeRestoreRoundtrip) {
  BlockDevice dev(8, 32);
  dev.write(1, fill(32, 0x01));
  dev.write(7, fill(32, 0x07));
  dev.deallocate(1);
  net::Bytes blob;
  net::ByteWriter w(blob);
  dev.serialize(w);

  BlockDevice other(8, 32);
  net::ByteReader r(blob);
  ASSERT_TRUE(other.restore(r));
  EXPECT_EQ(other.digest(), dev.digest());
  EXPECT_TRUE(other.allocated(7));
  EXPECT_FALSE(other.allocated(1));
}

TEST(LruBlockCacheTest, LruOrderAndVictimCandidates) {
  LruBlockCache cache(4, 32);
  for (std::uint32_t b = 0; b < 4; ++b) cache.insert_clean(b, fill(32, b));
  EXPECT_TRUE(cache.full());

  // Touch 0 and 1: LRU-most are now 2, then 3.
  cache.get(0);
  cache.get(1);
  const auto victims = cache.victim_candidates(2);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 2u);
  EXPECT_EQ(victims[1], 3u);
  // Asking for more than resident clamps.
  EXPECT_EQ(cache.victim_candidates(10).size(), 4u);
}

TEST(LruBlockCacheTest, DirtyTrackingAndWriteback) {
  BlockDevice dev(8, 32);
  LruBlockCache cache(4, 32);
  cache.put(5, fill(32, 0x55));  // dirty insert
  cache.put(2, fill(32, 0x22));
  cache.insert_clean(1, fill(32, 0x11));
  EXPECT_EQ(cache.dirty_count(), 2u);

  // Writeback order is dirty-age order, not LRU order.
  const auto batch = cache.oldest_dirty(8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 5u);
  EXPECT_EQ(batch[1], 2u);

  cache.flush(5, dev);
  EXPECT_EQ(cache.dirty_count(), 1u);
  EXPECT_TRUE(cache.contains(5));  // flush keeps the page resident
  EXPECT_EQ(dev.read(5)[0], 0x55);
  // Re-flushing a clean page is a no-op.
  cache.flush(5, dev);
  EXPECT_EQ(cache.dirty_count(), 1u);

  EXPECT_EQ(cache.flush_all(dev), 1u);
  EXPECT_EQ(cache.dirty_count(), 0u);
  EXPECT_EQ(dev.read(2)[0], 0x22);
}

TEST(LruBlockCacheTest, EvictWritesBackDirtyVictim) {
  BlockDevice dev(8, 32);
  LruBlockCache cache(2, 32);
  cache.put(0, fill(32, 0xA0));
  cache.insert_clean(1, fill(32, 0xB0));

  cache.evict(0, dev);  // dirty: must land on the device
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(dev.read(0)[0], 0xA0);

  cache.evict(1, dev);  // clean: dropped, device untouched
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(dev.allocated(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruBlockCacheTest, DropAllCleanKeepsDirtyPages) {
  LruBlockCache cache(4, 32);
  cache.put(0, fill(32, 1));
  cache.insert_clean(1, fill(32, 2));
  cache.insert_clean(2, fill(32, 3));
  cache.drop_all_clean();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_EQ(cache.dirty_count(), 1u);
}

TEST(LruBlockCacheTest, SerializeRestorePreservesLruAndDirtyOrder) {
  LruBlockCache cache(4, 32);
  cache.put(3, fill(32, 3));
  cache.insert_clean(1, fill(32, 1));
  cache.put(2, fill(32, 2));
  cache.get(3);  // reorder LRU so order != key order

  net::Bytes blob;
  net::ByteWriter w(blob);
  cache.serialize(w);
  LruBlockCache other(4, 32);
  net::ByteReader r(blob);
  ASSERT_TRUE(other.restore(r));

  EXPECT_EQ(other.digest(), cache.digest());
  EXPECT_EQ(other.victim_candidates(4), cache.victim_candidates(4));
  EXPECT_EQ(other.oldest_dirty(4), cache.oldest_dirty(4));
}

// The determinism proof: a recording cache and a replaying cache fed the
// same operation stream stay identical, even though eviction is sampled-LRU
// random — because the victim travels through the DecisionLog.
TEST(LruBlockCacheTest, TwinCachesEvictIdenticallyFromSharedDecisionLog) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kCandidates = 4;
  constexpr std::uint32_t kBlocks = 64;
  constexpr std::uint32_t kBlockSize = 64;

  BlockDevice p_dev(kBlocks, kBlockSize), b_dev(kBlocks, kBlockSize);
  LruBlockCache p_cache(kCapacity, kBlockSize), b_cache(kCapacity, kBlockSize);
  sttcp::DecisionLog p_log(sttcp::DecisionLog::Mode::kRecord);
  sttcp::DecisionLog b_log(sttcp::DecisionLog::Mode::kReplay);
  sim::Rng ops(42);      // shared op stream (the replicated input)
  sim::Rng victims(99);  // primary-only (the nondeterminism)

  const auto ensure_slot = [&](BlockDevice& dev, LruBlockCache& cache,
                               bool record) {
    if (!cache.full()) return;
    std::uint64_t victim = 0;
    if (record) {
      victim = p_log.choose(sttcp::DecisionKind::kEvict, [&] {
        const auto cands = p_cache.victim_candidates(kCandidates);
        return static_cast<std::uint64_t>(cands[victims.below(cands.size())]);
      });
    } else {
      ASSERT_TRUE(b_log.try_take(sttcp::DecisionKind::kEvict, &victim));
    }
    cache.evict(static_cast<std::uint32_t>(victim), dev);
  };

  const auto apply = [&](bool record, int op, std::uint32_t block,
                         const net::Bytes& data) {
    BlockDevice& dev = record ? p_dev : b_dev;
    LruBlockCache& cache = record ? p_cache : b_cache;
    switch (op) {
      case 0:  // GET-shaped: read through, faulting in on miss
        if (cache.get(block) == nullptr && dev.allocated(block)) {
          ensure_slot(dev, cache, record);
          cache.insert_clean(block, dev.read(block));
        }
        break;
      case 1:  // PUT-shaped
        if (!cache.contains(block)) ensure_slot(dev, cache, record);
        cache.put(block, data);
        dev.allocate(block);
        break;
      default:  // DELETE-shaped
        cache.drop(block);
        dev.deallocate(block);
        break;
    }
  };

  for (int step = 0; step < 500; ++step) {
    const std::uint32_t block = static_cast<std::uint32_t>(ops.below(kBlocks));
    const int op = static_cast<int>(ops.below(3));
    const net::Bytes data = fill(kBlockSize, static_cast<std::uint8_t>(step));

    apply(/*record=*/true, op, block, data);
    // Ship this step's decisions primary -> backup, as a heartbeat would,
    // then run the replay twin off the log.
    b_log.ingest(p_log.unacked(64));
    p_log.on_peer_ack(b_log.rx_cursor());
    apply(/*record=*/false, op, block, data);
  }

  EXPECT_GT(p_log.stats().appended, 0u);  // evictions actually happened
  EXPECT_EQ(b_log.pending_replay(), 0u);  // every one was consumed
  EXPECT_EQ(p_cache.digest(), b_cache.digest());
  EXPECT_EQ(p_dev.digest(), b_dev.digest());
  EXPECT_EQ(p_cache.victim_candidates(kCapacity),
            b_cache.victim_candidates(kCapacity));
}

}  // namespace
}  // namespace sttcp::app
