// RFC 793 state-machine edge cases: simultaneous close, data around FINs,
// duplicate SYNs, TIME_WAIT behaviour, challenge ACKs.
#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace sttcp::tcp {
namespace {

using testing::pattern_bytes;
using testing::TcpFixture;

class StateMachineTest : public TcpFixture {
 protected:
  TcpConnection* server_conn_ = nullptr;
  TcpConnection* client_conn_ = nullptr;
  bool client_closed_ = false;
  bool server_closed_ = false;

  void establish() {
    server_stack_->listen(80, [this](TcpConnection& c) {
      server_conn_ = &c;
      TcpConnection::Callbacks scb;
      scb.on_closed = [this](CloseReason) { server_closed_ = true; };
      c.set_callbacks(std::move(scb));
    });
    TcpConnection::Callbacks ccb;
    ccb.on_closed = [this](CloseReason) { client_closed_ = true; };
    client_conn_ = &client_stack_->connect(net_.ip(0),
                                           net::SocketAddr{net_.ip(1), 80},
                                           std::move(ccb));
    run_for(sim::Duration::millis(10));
    ASSERT_NE(server_conn_, nullptr);
    ASSERT_EQ(client_conn_->state(), TcpState::kEstablished);
  }
};

TEST_F(StateMachineTest, SimultaneousCloseReachesClosedOnBothSides) {
  establish();
  // Both sides close in the same instant: FINs cross on the wire
  // (FIN_WAIT_1 -> CLOSING -> TIME_WAIT on both).
  client_conn_->close();
  server_conn_->close();
  run_for(sim::Duration::millis(100));
  // Both must be in TIME_WAIT (or already closed), neither stuck.
  EXPECT_TRUE(client_conn_->state() == TcpState::kTimeWait ||
              client_conn_->state() == TcpState::kClosed);
  EXPECT_TRUE(server_conn_->state() == TcpState::kTimeWait ||
              server_conn_->state() == TcpState::kClosed);
  run_for(sim::Duration::seconds(5));  // 2*MSL
  EXPECT_TRUE(client_closed_);
  EXPECT_TRUE(server_closed_);
  EXPECT_EQ(client_stack_->connection_count(), 0u);
  EXPECT_EQ(server_stack_->connection_count(), 0u);
}

TEST_F(StateMachineTest, DataBeforeFinIsDeliveredThenEof) {
  establish();
  bool eof = false;
  net::Bytes got;
  TcpConnection::Callbacks scb;
  scb.on_readable = [this, &got] {
    net::Bytes b = server_conn_->read(65536);
    got.insert(got.end(), b.begin(), b.end());
  };
  scb.on_peer_closed = [&eof] { eof = true; };
  server_conn_->set_callbacks(std::move(scb));

  client_conn_->send(pattern_bytes(0, 5000));
  client_conn_->close();  // FIN rides right behind the data
  run_for(sim::Duration::millis(100));
  EXPECT_EQ(got, pattern_bytes(0, 5000));
  EXPECT_TRUE(eof);
  EXPECT_EQ(server_conn_->state(), TcpState::kCloseWait);
}

TEST_F(StateMachineTest, FinWait2ReceivesDataUntilPeerCloses) {
  establish();
  // Client half-closes; the server keeps sending, then closes.
  client_conn_->close();
  run_for(sim::Duration::millis(50));
  EXPECT_EQ(client_conn_->state(), TcpState::kFinWait2);
  server_conn_->send(pattern_bytes(0, 3000));
  run_for(sim::Duration::millis(50));
  EXPECT_EQ(client_conn_->readable(), 3000u);
  EXPECT_EQ(client_conn_->read(4096), pattern_bytes(0, 3000));
  server_conn_->close();
  run_for(sim::Duration::millis(50));
  EXPECT_EQ(client_conn_->state(), TcpState::kTimeWait);
}

TEST_F(StateMachineTest, DuplicateSynGetsSynAckAgain) {
  // A duplicate client SYN while the server sits in SYN_RCVD must re-elicit
  // the SYN-ACK, not break the pending connection. Drop the first SYN-ACK
  // so the server stays in SYN_RCVD and the client retransmits its SYN.
  server_stack_->listen(80, [this](TcpConnection& c) { server_conn_ = &c; });
  net_.link(1).drop_next(1);  // eat the first SYN-ACK (server -> switch)
  bool established = false;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&established] { established = true; };
  client_conn_ = &client_stack_->connect(net_.ip(0),
                                         net::SocketAddr{net_.ip(1), 80},
                                         std::move(ccb));
  run_for(sim::Duration::seconds(5));  // covers the SYN retransmission
  EXPECT_TRUE(established);
  ASSERT_NE(server_conn_, nullptr);
  EXPECT_EQ(server_conn_->state(), TcpState::kEstablished);
}

TEST_F(StateMachineTest, TimeWaitReAcksRetransmittedFin) {
  establish();
  // Orchestrate: server closes; client consumes FIN and closes too; the
  // server's LAST_ACK ack is dropped so the client (TIME_WAIT) sees a
  // retransmitted FIN and must re-ACK it.
  TcpConnection::Callbacks scb2;
  scb2.on_peer_closed = [this] { /* stay open */ };
  scb2.on_closed = [this](CloseReason) { server_closed_ = true; };
  server_conn_->set_callbacks(std::move(scb2));
  client_conn_->close();
  run_for(sim::Duration::millis(30));
  server_conn_->close();
  run_for(sim::Duration::millis(30));
  // Client should be in TIME_WAIT now, server closed gracefully.
  EXPECT_TRUE(client_conn_->state() == TcpState::kTimeWait ||
              client_conn_->state() == TcpState::kClosed);
  run_for(sim::Duration::seconds(5));
  EXPECT_TRUE(client_closed_);
  EXPECT_TRUE(server_closed_);
}

TEST_F(StateMachineTest, AckBeyondSndNxtElicitsChallengeAck) {
  establish();
  const auto sent_before = client_conn_->stats().segments_sent;
  // Forge a segment acknowledging data the client never sent.
  TcpSegment forged;
  forged.src_port = server_conn_->tuple().local.port;
  forged.dst_port = server_conn_->tuple().remote.port;
  forged.seq = server_conn_->iss() + 1;
  forged.ack = client_conn_->iss() + 50'000;  // far beyond snd_nxt
  forged.flags.ack = true;
  forged.window = 65535;
  client_conn_->on_segment(forged);
  run_for(sim::Duration::millis(10));
  // The client answered with a (challenge) ACK and did not advance.
  EXPECT_GT(client_conn_->stats().segments_sent, sent_before);
  EXPECT_EQ(client_conn_->bytes_acked_by_peer(), 0u);
  EXPECT_EQ(client_conn_->state(), TcpState::kEstablished);
}

TEST_F(StateMachineTest, RstIgnoredWhenFarOutOfWindow) {
  establish();
  TcpSegment forged;
  forged.src_port = server_conn_->tuple().local.port;
  forged.dst_port = server_conn_->tuple().remote.port;
  forged.seq = server_conn_->iss() + 0x40000000;  // nowhere near the window
  forged.flags.rst = true;
  client_conn_->on_segment(forged);
  run_for(sim::Duration::millis(10));
  EXPECT_EQ(client_conn_->state(), TcpState::kEstablished);
  EXPECT_FALSE(client_closed_);
}

TEST_F(StateMachineTest, CloseDuringHandshakeAbortsQuietly) {
  server_stack_->listen(80, [this](TcpConnection& c) { server_conn_ = &c; });
  // Crash the server host so the handshake hangs in SYN_SENT.
  net_.host(1).crash("gone");
  bool closed = false;
  TcpConnection::Callbacks ccb;
  ccb.on_closed = [&closed](CloseReason) { closed = true; };
  client_conn_ = &client_stack_->connect(net_.ip(0),
                                         net::SocketAddr{net_.ip(1), 80},
                                         std::move(ccb));
  run_for(sim::Duration::millis(50));
  EXPECT_EQ(client_conn_->state(), TcpState::kSynSent);
  client_conn_->close();  // app gives up
  EXPECT_TRUE(closed);
  run_for(sim::Duration::millis(10));
  EXPECT_EQ(client_stack_->connection_count(), 0u);
}

TEST_F(StateMachineTest, SendAfterCloseReturnsZero) {
  establish();
  client_conn_->close();
  EXPECT_EQ(client_conn_->send(pattern_bytes(0, 100)), 0u);
}

TEST_F(StateMachineTest, InOrderBurstInOneTickCoalescesToOneAck) {
  // Pin both ISNs so raw segments can be crafted against known sequence
  // numbers, then inject two in-order data segments into the server
  // connection within a single event-loop tick: exactly one cumulative ACK
  // (covering both) may leave, not one per segment.
  cfg_.isn_override = 1000;
  client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
  server_stack_ = std::make_unique<TcpStack>(net_.host(1), cfg_);
  establish();

  const std::uint64_t sent_before = server_conn_->stats().segments_sent;
  TcpSegment a;
  a.seq = 1001;  // client ISS+1
  a.ack = 1001;  // server ISS+1
  a.flags.ack = true;
  a.window = 65535;
  a.payload = testing::pattern_bytes(0, 4);
  TcpSegment b = a;
  b.seq = 1005;
  b.payload = testing::pattern_bytes(4, 4);
  server_conn_->on_segment(a);
  server_conn_->on_segment(b);
  // Nothing leaves synchronously; the flush runs in this same tick.
  EXPECT_EQ(server_conn_->stats().segments_sent - sent_before, 0u);
  run_for(sim::Duration::zero());
  EXPECT_EQ(server_conn_->stats().segments_sent - sent_before, 1u);
  EXPECT_EQ(server_conn_->readable(), 8u);

  // Out-of-order segments (a gap at 1009) must keep drawing one immediate
  // duplicate ACK each — the sender's fast-retransmit signal.
  const std::uint64_t dup_before = server_conn_->stats().segments_sent;
  TcpSegment o = a;
  o.seq = 1013;
  o.payload = testing::pattern_bytes(12, 4);
  server_conn_->on_segment(o);
  server_conn_->on_segment(o);
  EXPECT_EQ(server_conn_->stats().segments_sent - dup_before, 2u);
}

TEST_F(StateMachineTest, ServerInCloseWaitCanStillSend) {
  establish();
  net::Bytes got;
  TcpConnection::Callbacks ccb2;
  ccb2.on_readable = [this, &got] {
    net::Bytes b = client_conn_->read(65536);
    got.insert(got.end(), b.begin(), b.end());
  };
  ccb2.on_closed = [this](CloseReason) { client_closed_ = true; };
  client_conn_->set_callbacks(std::move(ccb2));
  client_conn_->close();
  run_for(sim::Duration::millis(30));
  ASSERT_EQ(server_conn_->state(), TcpState::kCloseWait);
  EXPECT_GT(server_conn_->send(pattern_bytes(0, 2000)), 0u);
  run_for(sim::Duration::millis(30));
  EXPECT_EQ(got, pattern_bytes(0, 2000));
}

}  // namespace
}  // namespace sttcp::tcp
