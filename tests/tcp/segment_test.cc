#include "tcp/segment.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace sttcp::tcp {
namespace {

const net::Ipv4Addr kSrc(10, 0, 0, 1);
const net::Ipv4Addr kDst(10, 0, 0, 2);

TEST(SegmentTest, RoundTripDataSegment) {
  TcpSegment s;
  s.src_port = 49152;
  s.dst_port = 80;
  s.seq = 0xdeadbeef;
  s.ack = 0x12345678;
  s.flags.ack = true;
  s.flags.psh = true;
  s.window = 65535;
  s.payload = net::to_bytes("GET / HTTP/1.0\r\n\r\n");
  const net::Bytes wire_bytes = s.serialize(kSrc, kDst);
  ASSERT_EQ(wire_bytes.size(), TcpSegment::kHeaderSize + s.payload.size());
  auto p = TcpSegment::parse(kSrc, kDst, wire_bytes, /*verify_checksum=*/true);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src_port, 49152);
  EXPECT_EQ(p->dst_port, 80);
  EXPECT_EQ(p->seq, 0xdeadbeef);
  EXPECT_EQ(p->ack, 0x12345678);
  EXPECT_TRUE(p->flags.ack);
  EXPECT_TRUE(p->flags.psh);
  EXPECT_FALSE(p->flags.syn);
  EXPECT_EQ(p->window, 65535);
  EXPECT_EQ(p->payload, s.payload);
}

TEST(SegmentTest, AllFlagCombinationsRoundTrip) {
  for (int mask = 0; mask < 32; ++mask) {
    TcpSegment s;
    s.flags.syn = (mask & 1) != 0;
    s.flags.ack = (mask & 2) != 0;
    s.flags.fin = (mask & 4) != 0;
    s.flags.rst = (mask & 8) != 0;
    s.flags.psh = (mask & 16) != 0;
    auto p = TcpSegment::parse(kSrc, kDst, s.serialize(kSrc, kDst), true);
    ASSERT_TRUE(p.has_value()) << mask;
    EXPECT_EQ(p->flags.syn, s.flags.syn);
    EXPECT_EQ(p->flags.ack, s.flags.ack);
    EXPECT_EQ(p->flags.fin, s.flags.fin);
    EXPECT_EQ(p->flags.rst, s.flags.rst);
    EXPECT_EQ(p->flags.psh, s.flags.psh);
  }
}

TEST(SegmentTest, ChecksumCatchesPayloadCorruption) {
  TcpSegment s;
  s.payload = net::to_bytes("data-to-protect");
  net::Bytes w = s.serialize(kSrc, kDst);
  w[TcpSegment::kHeaderSize + 3] ^= 0x20;
  EXPECT_FALSE(TcpSegment::parse(kSrc, kDst, w, true).has_value());
  // Parsing without verification still succeeds (corrupted content).
  EXPECT_TRUE(TcpSegment::parse(kSrc, kDst, w, false).has_value());
}

TEST(SegmentTest, ChecksumCoversPseudoHeader) {
  TcpSegment s;
  s.payload = net::to_bytes("x");
  const net::Bytes w = s.serialize(kSrc, kDst);
  // Same bytes claimed to come from a different source IP must fail.
  EXPECT_FALSE(TcpSegment::parse(net::Ipv4Addr(10, 0, 0, 9), kDst, w, true).has_value());
}

TEST(SegmentTest, TruncatedBufferRejected) {
  TcpSegment s;
  const net::Bytes w = s.serialize(kSrc, kDst);
  for (std::size_t cut = 0; cut < TcpSegment::kHeaderSize; cut += 5) {
    EXPECT_FALSE(
        TcpSegment::parse(kSrc, kDst, net::BytesView(w.data(), cut), false).has_value());
  }
}

TEST(SegmentTest, SeqLenCountsSynFinAndPayload) {
  TcpSegment s;
  EXPECT_EQ(s.seq_len(), 0u);
  s.flags.syn = true;
  EXPECT_EQ(s.seq_len(), 1u);
  s.payload = net::to_bytes("abc");
  EXPECT_EQ(s.seq_len(), 4u);
  s.flags.fin = true;
  EXPECT_EQ(s.seq_len(), 5u);
}

TEST(SegmentTest, ChecksumMemoMatchesFullSerialization) {
  // The RFC 1624 retransmit fast path must be byte-identical to a full
  // serialization across random ack/window mutations of the same payload.
  sim::Rng rng(0xfa57);
  for (int conn = 0; conn < 50; ++conn) {
    TcpSegment s;
    s.src_port = static_cast<std::uint16_t>(rng.next_u64());
    s.dst_port = static_cast<std::uint16_t>(rng.next_u64());
    s.seq = static_cast<SeqWire>(rng.next_u64());
    s.flags.ack = true;
    s.flags.psh = true;
    s.payload.resize(1 + rng.below(1460));
    for (auto& b : s.payload) b = static_cast<std::uint8_t>(rng.next_u64());

    TcpSegment::ChecksumMemo memo;
    for (int retx = 0; retx < 8; ++retx) {
      s.ack = static_cast<SeqWire>(rng.next_u64());
      s.window = static_cast<std::uint16_t>(rng.next_u64());
      EXPECT_EQ(s.serialize(kSrc, kDst, memo), s.serialize(kSrc, kDst))
          << "conn " << conn << " retx " << retx;
    }
    EXPECT_TRUE(memo.valid);
  }
}

TEST(SegmentTest, ChecksumMemoInvalidatesOnShapeChange) {
  TcpSegment s;
  s.src_port = 1;
  s.dst_port = 2;
  s.seq = 100;
  s.flags.ack = true;
  s.payload = net::to_bytes("the same bytes every time");
  TcpSegment::ChecksumMemo memo;
  EXPECT_EQ(s.serialize(kSrc, kDst, memo), s.serialize(kSrc, kDst));

  // A different sequence range or length must take the full path (and still
  // produce correct bytes), refreshing the memo.
  s.seq = 200;
  s.payload = net::to_bytes("entirely different payload!");
  EXPECT_EQ(s.serialize(kSrc, kDst, memo), s.serialize(kSrc, kDst));
  s.flags.fin = true;
  EXPECT_EQ(s.serialize(kSrc, kDst, memo), s.serialize(kSrc, kDst));
  auto p = TcpSegment::parse(kSrc, kDst, s.serialize(kSrc, kDst, memo), true);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->payload, s.payload);
}

TEST(SegmentTest, StrRendering) {
  TcpSegment s;
  s.flags.syn = true;
  s.flags.ack = true;
  s.seq = 7;
  const std::string str = s.str();
  EXPECT_NE(str.find("SYN"), std::string::npos);
  EXPECT_NE(str.find("ACK"), std::string::npos);
  EXPECT_NE(str.find("seq=7"), std::string::npos);
}

}  // namespace
}  // namespace sttcp::tcp
