// Bulk-transfer integration tests: a source app streams pattern bytes to a
// sink over the simulated network under various sizes and loss conditions.
#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace sttcp::tcp {
namespace {

using testing::pattern_bytes;
using testing::PatternSink;
using testing::TcpFixture;

/// Pumps `total` pattern bytes through a connection as send space allows.
class SourceApp {
 public:
  SourceApp(TcpConnection& conn, std::uint64_t total) : conn_(conn), total_(total) {}

  void pump() {
    while (sent_ < total_) {
      const std::size_t chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(total_ - sent_, 16384));
      const std::size_t n = conn_.send(pattern_bytes(sent_, chunk));
      sent_ += n;
      if (n < chunk) return;  // buffer full; resume on_writable
    }
    if (!closed_) {
      closed_ = true;
      conn_.close();
    }
  }

  std::uint64_t sent() const { return sent_; }

 private:
  TcpConnection& conn_;
  std::uint64_t total_;
  std::uint64_t sent_ = 0;
  bool closed_ = false;
};

struct TransferResult {
  PatternSink sink;
  bool client_done = false;
  sim::SimTime done_at;
};

class TransferTest : public TcpFixture,
                     public ::testing::WithParamInterface<std::uint64_t> {};

/// Server streams `total` bytes to the client, then closes.
void run_download(TcpFixture& f, std::uint64_t total, TransferResult& out,
                  sim::Duration limit) {
  std::unique_ptr<SourceApp> src;
  f.server_stack_->listen(80, [&](TcpConnection& s) {
    src = std::make_unique<SourceApp>(s, total);
    TcpConnection::Callbacks scb;
    scb.on_writable = [&] { src->pump(); };
    s.set_callbacks(std::move(scb));
    src->pump();
  });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_readable = [&] { out.sink.consume(cp->read(1 << 20)); };
  ccb.on_peer_closed = [&] {
    out.client_done = true;
    out.done_at = f.net_.world.now();
    cp->close();
  };
  cp = &f.client_stack_->connect(f.net_.ip(0), net::SocketAddr{f.net_.ip(1), 80},
                                 std::move(ccb));
  f.run_for(limit);
}

TEST_P(TransferTest, DownloadCompletesIntact) {
  const std::uint64_t total = GetParam();
  TransferResult r;
  run_download(*this, total, r, sim::Duration::seconds(120));
  EXPECT_TRUE(r.client_done);
  EXPECT_EQ(r.sink.received, total);
  EXPECT_FALSE(r.sink.corrupt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransferTest,
                         ::testing::Values(1, 1000, 1460, 1461, 65536, 1000000,
                                           10000000));

TEST_F(TransferTest, DemuxCacheServesSteadyStateSegments) {
  // Steady-state receive demux resolves from the flat slot cache: after the
  // first segment per direction fills the slot, every further segment on the
  // connection hits it (one cheap hash + tuple compare, no map probe).
  const std::uint64_t total = 256 * 1024;
  TransferResult r;
  run_download(*this, total, r, sim::Duration::seconds(30));
  ASSERT_TRUE(r.client_done);
  EXPECT_EQ(r.sink.received, total);
  const TcpStack::Stats& cs = client_stack_->stats();
  const TcpStack::Stats& ss = server_stack_->stats();
  EXPECT_GT(cs.demux_cache_hits, cs.segments_demuxed / 2);
  EXPECT_GT(ss.demux_cache_hits, ss.segments_demuxed / 2);
  EXPECT_LE(cs.demux_cache_hits, cs.segments_demuxed);
  EXPECT_LE(ss.demux_cache_hits, ss.segments_demuxed);
}

TEST_F(TransferTest, ThroughputApproachesLineRate) {
  // 10 MB over a 100 Mbps path should take just over 0.8s once the window
  // has opened; allow generous slack for slow start.
  const std::uint64_t total = 10'000'000;
  TransferResult r;
  run_download(*this, total, r, sim::Duration::seconds(60));
  ASSERT_TRUE(r.client_done);
  const double secs = (r.done_at - sim::SimTime::zero()).to_seconds();
  const double gbps = static_cast<double>(total) * 8 / secs / 1e6;  // Mbps
  EXPECT_GT(gbps, 50.0) << "took " << secs << "s";
  EXPECT_LT(gbps, 100.1);
}

class LossyTransferTest : public TcpFixture,
                          public ::testing::WithParamInterface<double> {};

TEST_P(LossyTransferTest, DownloadSurvivesRandomLoss) {
  const double loss = GetParam();
  net_.link(0).set_drop_probability(loss);
  net_.link(1).set_drop_probability(loss);
  const std::uint64_t total = 300'000;
  TransferResult r;
  run_download(*this, total, r, sim::Duration::seconds(600));
  EXPECT_TRUE(r.client_done) << "loss=" << loss;
  EXPECT_EQ(r.sink.received, total);
  EXPECT_FALSE(r.sink.corrupt);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyTransferTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1));

TEST_F(TransferTest, UploadDirectionAlsoWorks) {
  // Client streams to server (exercises the passive side's receive path).
  const std::uint64_t total = 500'000;
  PatternSink sink;
  TcpConnection* server_conn = nullptr;
  bool server_saw_eof = false;
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    TcpConnection::Callbacks scb;
    scb.on_readable = [&] { sink.consume(server_conn->read(1 << 20)); };
    scb.on_peer_closed = [&] {
      server_saw_eof = true;
      server_conn->close();
    };
    s.set_callbacks(std::move(scb));
  });
  TcpConnection* cp = nullptr;
  std::unique_ptr<SourceApp> src;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] {
    src = std::make_unique<SourceApp>(*cp, total);
    src->pump();
  };
  ccb.on_writable = [&] {
    if (src) src->pump();
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(60));
  EXPECT_TRUE(server_saw_eof);
  EXPECT_EQ(sink.received, total);
  EXPECT_FALSE(sink.corrupt);
}

TEST_F(TransferTest, TwoSimultaneousConnectionsShareTheLink) {
  std::unique_ptr<SourceApp> srcs[2];
  int idx = 0;
  server_stack_->listen(80, [&](TcpConnection& s) {
    auto& slot = srcs[idx++];
    slot = std::make_unique<SourceApp>(s, 200'000);
    TcpConnection::Callbacks scb;
    auto* raw = slot.get();
    scb.on_writable = [raw] { raw->pump(); };
    s.set_callbacks(std::move(scb));
    slot->pump();
  });
  PatternSink sinks[2];
  bool done[2] = {false, false};
  TcpConnection* conns[2] = {nullptr, nullptr};
  for (int i = 0; i < 2; ++i) {
    TcpConnection::Callbacks ccb;
    ccb.on_readable = [&, i] { sinks[i].consume(conns[i]->read(1 << 20)); };
    ccb.on_peer_closed = [&, i] {
      done[i] = true;
      conns[i]->close();
    };
    conns[i] = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                                       std::move(ccb));
  }
  run_for(sim::Duration::seconds(60));
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(done[i]) << i;
    EXPECT_EQ(sinks[i].received, 200'000u);
    EXPECT_FALSE(sinks[i].corrupt);
  }
}

TEST_F(TransferTest, OutageRecoveryIsPromptGoBackN) {
  // A multi-second total outage loses a full window of segments. After the
  // link heals, go-back-N retransmission must refill the hole within a few
  // RTOs — not one segment per timeout (a whole window of timeouts).
  const std::uint64_t total = 30'000'000;
  TransferResult r;
  net_.world.loop().schedule_after(sim::Duration::millis(500), [&] {
    net_.link(0).fail();
    net_.link(1).fail();
  });
  net_.world.loop().schedule_after(sim::Duration::millis(2500), [&] {
    net_.link(0).heal();
    net_.link(1).heal();
  });
  run_download(*this, total, r, sim::Duration::seconds(60));
  ASSERT_TRUE(r.client_done);
  EXPECT_EQ(r.sink.received, total);
  EXPECT_FALSE(r.sink.corrupt);
  // 30 MB at ~90 Mbps is ~2.7s; outage costs ~2s + backoff alignment.
  // Without go-back-N this took tens of seconds.
  const double secs = (r.done_at - sim::SimTime::zero()).to_seconds();
  EXPECT_LT(secs, 10.0);
}

TEST_F(TransferTest, BurstLossMidTransferRecovers) {
  const std::uint64_t total = 200'000;
  TransferResult r;
  // Drop a burst of 30 frames in each direction at t=30ms.
  net_.world.loop().schedule_after(sim::Duration::millis(30), [&] {
    net_.link(0).drop_next(30);
    net_.link(1).drop_next(30);
  });
  run_download(*this, total, r, sim::Duration::seconds(120));
  EXPECT_TRUE(r.client_done);
  EXPECT_EQ(r.sink.received, total);
  EXPECT_FALSE(r.sink.corrupt);
}

TEST_F(TransferTest, SequenceNumberWraparoundMidTransfer) {
  // Both ISNs pinned just below 2^32: every sequence counter wraps within
  // the first ~100 KB. The 64-bit internal tracking must make this
  // invisible.
  cfg_.isn_override = 0xffffff00u;
  client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
  server_stack_ = std::make_unique<TcpStack>(net_.host(1), cfg_);
  const std::uint64_t total = 2'000'000;
  TransferResult r;
  run_download(*this, total, r, sim::Duration::seconds(60));
  EXPECT_TRUE(r.client_done);
  EXPECT_EQ(r.sink.received, total);
  EXPECT_FALSE(r.sink.corrupt);
}

TEST_F(TransferTest, WraparoundWithLossStillIntact) {
  cfg_.isn_override = 0xfffffff0u;
  client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
  server_stack_ = std::make_unique<TcpStack>(net_.host(1), cfg_);
  net_.link(0).set_drop_probability(0.02);
  net_.link(1).set_drop_probability(0.02);
  const std::uint64_t total = 500'000;
  TransferResult r;
  run_download(*this, total, r, sim::Duration::seconds(120));
  EXPECT_TRUE(r.client_done);
  EXPECT_EQ(r.sink.received, total);
  EXPECT_FALSE(r.sink.corrupt);
}

}  // namespace
}  // namespace sttcp::tcp
