#include "tcp/send_buffer.h"

#include <gtest/gtest.h>

namespace sttcp::tcp {
namespace {

net::Bytes seq_bytes(std::size_t n, std::uint8_t start = 0) {
  net::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(start + i);
  return b;
}

TEST(SendBufferTest, AppendRespectsCapacity) {
  SendBuffer sb(10);
  EXPECT_EQ(sb.append(seq_bytes(6)), 6u);
  EXPECT_EQ(sb.append(seq_bytes(6)), 4u);  // only 4 left
  EXPECT_EQ(sb.size(), 10u);
  EXPECT_EQ(sb.free_space(), 0u);
  EXPECT_EQ(sb.append(seq_bytes(1)), 0u);
}

TEST(SendBufferTest, AckReleasesAndAdvances) {
  SendBuffer sb(100);
  sb.append(seq_bytes(50));
  EXPECT_EQ(sb.ack_to(20), 20u);
  EXPECT_EQ(sb.una_offset(), 20u);
  EXPECT_EQ(sb.size(), 30u);
  EXPECT_EQ(sb.end_offset(), 50u);
  // Duplicate / old ack releases nothing.
  EXPECT_EQ(sb.ack_to(20), 0u);
  EXPECT_EQ(sb.ack_to(10), 0u);
  // Ack beyond end clamps.
  EXPECT_EQ(sb.ack_to(1000), 30u);
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(sb.una_offset(), 50u);
}

TEST(SendBufferTest, SliceReturnsCorrectBytes) {
  SendBuffer sb(100);
  sb.append(seq_bytes(60));
  sb.ack_to(10);
  const net::Bytes s = sb.slice(15, 5);
  ASSERT_EQ(s.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], 15 + i);
}

TEST(SendBufferTest, SliceClampsAtEnd) {
  SendBuffer sb(100);
  sb.append(seq_bytes(20));
  EXPECT_EQ(sb.slice(15, 100).size(), 5u);
  EXPECT_TRUE(sb.slice(20, 5).empty());   // at end
  EXPECT_TRUE(sb.slice(99, 5).empty());   // beyond end
}

TEST(SendBufferTest, SliceBelowUnaIsEmpty) {
  SendBuffer sb(100);
  sb.append(seq_bytes(20));
  sb.ack_to(10);
  EXPECT_TRUE(sb.slice(5, 5).empty());
}

TEST(SendBufferTest, InterleavedAppendAckSlice) {
  SendBuffer sb(16);
  std::uint64_t acked = 0;
  std::uint8_t next_val = 0;
  std::uint64_t appended = 0;
  for (int round = 0; round < 50; ++round) {
    net::Bytes data(5);
    for (auto& b : data) b = next_val++;
    const std::size_t n = sb.append(data);
    appended += n;
    next_val = static_cast<std::uint8_t>(next_val - (5 - n));  // rewind unaccepted
    // Verify the buffer contents match the offset pattern.
    const net::Bytes view = sb.slice(sb.una_offset(), sb.size());
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_EQ(view[i], static_cast<std::uint8_t>(sb.una_offset() + i));
    }
    acked += 3;
    sb.ack_to(acked);
  }
  EXPECT_EQ(sb.end_offset(), appended);
}

}  // namespace
}  // namespace sttcp::tcp
