#include "tcp/congestion.h"

#include <gtest/gtest.h>

namespace sttcp::tcp {
namespace {

TcpConfig make_cfg(bool enabled = true, std::uint32_t iw = 10) {
  TcpConfig c;
  c.congestion_control = enabled;
  c.initial_cwnd_segments = iw;
  return c;
}

TEST(CongestionTest, InitialWindow) {
  TcpConfig c = make_cfg();
  CongestionControl cc(c);
  EXPECT_EQ(cc.cwnd(), 10u * c.mss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(CongestionTest, SlowStartDoublesPerRtt) {
  TcpConfig c = make_cfg(true, 2);
  CongestionControl cc(c);
  const std::uint64_t start = cc.cwnd();
  // Acking a full window in MSS chunks should roughly double cwnd.
  for (std::uint64_t acked = 0; acked < start; acked += c.mss) {
    cc.on_ack(c.mss);
  }
  EXPECT_EQ(cc.cwnd(), 2 * start);
}

TEST(CongestionTest, RtoCollapsesToOneSegment) {
  TcpConfig c = make_cfg();
  CongestionControl cc(c);
  for (int i = 0; i < 100; ++i) cc.on_ack(c.mss);
  const std::uint64_t flight = 50 * c.mss;
  cc.on_rto(flight);
  EXPECT_EQ(cc.cwnd(), c.mss);
  EXPECT_EQ(cc.ssthresh(), flight / 2);
}

TEST(CongestionTest, SsthreshFloorIsTwoMss) {
  TcpConfig c = make_cfg();
  CongestionControl cc(c);
  cc.on_rto(c.mss);  // tiny flight
  EXPECT_EQ(cc.ssthresh(), 2 * c.mss);
}

TEST(CongestionTest, FastRetransmitHalvesPlusThree) {
  TcpConfig c = make_cfg();
  CongestionControl cc(c);
  const std::uint64_t flight = 20 * c.mss;
  cc.on_fast_retransmit(flight);
  EXPECT_EQ(cc.ssthresh(), flight / 2);
  EXPECT_EQ(cc.cwnd(), flight / 2 + 3 * c.mss);
}

TEST(CongestionTest, CongestionAvoidanceGrowsLinearly) {
  TcpConfig c = make_cfg();
  CongestionControl cc(c);
  cc.on_rto(40 * c.mss);  // ssthresh = 20 MSS, cwnd = 1 MSS
  // Grow back into congestion avoidance.
  while (cc.in_slow_start()) cc.on_ack(c.mss);
  const std::uint64_t at_ca = cc.cwnd();
  // One window's worth of ACKs in CA adds ~one MSS.
  std::uint64_t acked = 0;
  while (acked < at_ca) {
    cc.on_ack(c.mss);
    acked += c.mss;
  }
  EXPECT_NEAR(static_cast<double>(cc.cwnd() - at_ca), static_cast<double>(c.mss),
              static_cast<double>(c.mss) / 2);
}

TEST(CongestionTest, DisabledIsUnbounded) {
  TcpConfig c = make_cfg(false);
  CongestionControl cc(c);
  EXPECT_EQ(cc.cwnd(), ~std::uint64_t{0});
  cc.on_rto(1000);
  EXPECT_EQ(cc.cwnd(), ~std::uint64_t{0});
}

TEST(CongestionTest, ZeroAckIsNoop) {
  TcpConfig c = make_cfg();
  CongestionControl cc(c);
  const std::uint64_t before = cc.cwnd();
  cc.on_ack(0);
  EXPECT_EQ(cc.cwnd(), before);
}

}  // namespace
}  // namespace sttcp::tcp
