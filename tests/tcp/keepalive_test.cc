#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace sttcp::tcp {
namespace {

using testing::TcpFixture;

class KeepaliveTest : public TcpFixture {
 protected:
  KeepaliveTest() {
    cfg_.keepalive = true;
    cfg_.keepalive_idle = sim::Duration::seconds(5);
    cfg_.keepalive_interval = sim::Duration::seconds(1);
    cfg_.keepalive_probes = 3;
    client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
    server_stack_ = std::make_unique<TcpStack>(net_.host(1), cfg_);
  }

  TcpConnection* connect_idle() {
    server_stack_->listen(80, [this](TcpConnection& c) { server_conn_ = &c; });
    TcpConnection::Callbacks cb;
    TcpConnection** slot = &conn_;
    cb.on_closed = [this, slot](CloseReason r) {
      closed_ = true;
      reason_ = r;
      // Snapshot stats now: the stack destroys the connection after close.
      probes_at_close_ = (*slot)->stats().keepalives_sent;
    };
    conn_ = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                                    std::move(cb));
    return conn_;
  }

  TcpConnection* conn_ = nullptr;
  TcpConnection* server_conn_ = nullptr;
  bool closed_ = false;
  CloseReason reason_{};
  std::uint64_t probes_at_close_ = 0;
};

TEST_F(KeepaliveTest, IdleConnectionWithLivePeerSurvives) {
  TcpConnection* c = connect_idle();
  run_for(sim::Duration::seconds(60));
  EXPECT_EQ(c->state(), TcpState::kEstablished);
  EXPECT_FALSE(closed_);
  // Probes were sent and answered.
  EXPECT_GT(c->stats().keepalives_sent, 5u);
}

TEST_F(KeepaliveTest, DeadPeerDetectedAfterProbesExhaust) {
  connect_idle();
  run_for(sim::Duration::millis(100));
  net_.host(1).crash("server dies silently");
  run_for(sim::Duration::seconds(60));
  EXPECT_TRUE(closed_);
  EXPECT_EQ(reason_, CloseReason::kTimeout);
  // Death took idle (5s) + probes * interval, not the full 60s.
  EXPECT_GE(probes_at_close_, 3u);
  EXPECT_LE(probes_at_close_, 6u);
}

TEST_F(KeepaliveTest, TrafficPostponesProbing) {
  TcpConnection* c = connect_idle();
  // Server pings a byte every 2 seconds — under the 5s idle threshold.
  sim::PeriodicTimer chatter(net_.world.loop());
  run_for(sim::Duration::millis(100));
  ASSERT_NE(server_conn_, nullptr);
  chatter.start(sim::Duration::seconds(2),
                [this] { server_conn_->send(net::to_bytes("x")); });
  run_for(sim::Duration::seconds(30));
  EXPECT_EQ(c->stats().keepalives_sent, 0u);
  EXPECT_FALSE(closed_);
}

TEST_F(KeepaliveTest, DisabledByDefault) {
  TcpConfig plain;
  EXPECT_FALSE(plain.keepalive);
  // Fixture base uses default config? No — this fixture enables it; build a
  // separate pair of stacks with defaults and verify no probes.
  TcpConfig def;
  auto cs = std::make_unique<TcpStack>(net_.host(0), def);
  auto ss = std::make_unique<TcpStack>(net_.host(1), def);
  TcpConnection* sconn = nullptr;
  ss->listen(81, [&](TcpConnection& c) { sconn = &c; });
  TcpConnection& c =
      cs->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 81}, {});
  run_for(sim::Duration::seconds(60));
  EXPECT_EQ(c.stats().keepalives_sent, 0u);
  EXPECT_EQ(c.state(), TcpState::kEstablished);
}

}  // namespace
}  // namespace sttcp::tcp
