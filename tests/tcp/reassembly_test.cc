#include "tcp/reassembly.h"

#include <gtest/gtest.h>

namespace sttcp::tcp {
namespace {

net::Bytes pattern(std::uint64_t offset, std::size_t n) {
  net::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((offset + i) * 7 + 1);
  }
  return b;
}

TEST(ReassemblyTest, InOrderDelivery) {
  ReassemblyBuffer rb(100);
  EXPECT_EQ(rb.insert(0, pattern(0, 10)), 10u);
  EXPECT_EQ(rb.next_expected(), 10u);
  EXPECT_EQ(rb.readable(), 10u);
  EXPECT_EQ(rb.read(100), pattern(0, 10));
}

TEST(ReassemblyTest, OutOfOrderHoleThenFill) {
  ReassemblyBuffer rb(100);
  EXPECT_EQ(rb.insert(10, pattern(10, 10)), 0u);
  EXPECT_TRUE(rb.has_gap());
  EXPECT_EQ(rb.gap_start(), 0u);
  EXPECT_EQ(rb.gap_end(), 10u);
  EXPECT_EQ(rb.readable(), 0u);
  EXPECT_EQ(rb.insert(0, pattern(0, 10)), 20u);  // hole filled, both delivered
  EXPECT_FALSE(rb.has_gap());
  EXPECT_EQ(rb.read(100), pattern(0, 20));
}

TEST(ReassemblyTest, DuplicatesDiscarded) {
  ReassemblyBuffer rb(100);
  rb.insert(0, pattern(0, 10));
  EXPECT_EQ(rb.insert(0, pattern(0, 10)), 0u);
  EXPECT_EQ(rb.insert(5, pattern(5, 3)), 0u);
  EXPECT_EQ(rb.next_expected(), 10u);
  EXPECT_EQ(rb.readable(), 10u);
}

TEST(ReassemblyTest, PartialOverlapWithDelivered) {
  ReassemblyBuffer rb(100);
  rb.insert(0, pattern(0, 10));
  // Retransmission covering [5, 15): only [10, 15) is new.
  EXPECT_EQ(rb.insert(5, pattern(5, 10)), 5u);
  EXPECT_EQ(rb.read(100), pattern(0, 15));
}

TEST(ReassemblyTest, WindowClipsBeyondCapacity) {
  ReassemblyBuffer rb(10);
  EXPECT_EQ(rb.insert(0, pattern(0, 20)), 10u);  // clipped at window
  EXPECT_EQ(rb.window(), 0u);
  EXPECT_EQ(rb.read(100).size(), 10u);
  EXPECT_EQ(rb.window(), 10u);  // reading frees window
  EXPECT_EQ(rb.insert(10, pattern(10, 10)), 10u);
}

TEST(ReassemblyTest, WindowAccountsForOutOfOrderBytes) {
  ReassemblyBuffer rb(20);
  rb.insert(10, pattern(10, 5));
  EXPECT_EQ(rb.window(), 15u);
  rb.insert(0, pattern(0, 10));
  EXPECT_EQ(rb.window(), 5u);
  EXPECT_EQ(rb.readable(), 15u);
}

TEST(ReassemblyTest, OverlappingOutOfOrderFragments) {
  ReassemblyBuffer rb(100);
  rb.insert(10, pattern(10, 10));  // [10,20)
  rb.insert(15, pattern(15, 10));  // [15,25): only [20,25) is new
  rb.insert(5, pattern(5, 7));     // [5,12): only [5,10) is new
  EXPECT_EQ(rb.insert(0, pattern(0, 5)), 25u);
  EXPECT_EQ(rb.read(100), pattern(0, 25));
}

TEST(ReassemblyTest, FragmentFullyCoveredByExisting) {
  ReassemblyBuffer rb(100);
  rb.insert(10, pattern(10, 20));  // [10,30)
  rb.insert(15, pattern(15, 5));   // fully inside
  rb.insert(0, pattern(0, 10));
  EXPECT_EQ(rb.read(100), pattern(0, 30));
}

TEST(ReassemblyTest, NewFragmentAbsorbsSmallerOnes) {
  ReassemblyBuffer rb(100);
  rb.insert(12, pattern(12, 2));
  rb.insert(16, pattern(16, 2));
  rb.insert(10, pattern(10, 15));  // covers both
  rb.insert(0, pattern(0, 10));
  EXPECT_EQ(rb.read(100), pattern(0, 25));
}

TEST(ReassemblyTest, ReadInChunks) {
  ReassemblyBuffer rb(100);
  rb.insert(0, pattern(0, 30));
  EXPECT_EQ(rb.read(10), pattern(0, 10));
  EXPECT_EQ(rb.read(10), pattern(10, 10));
  EXPECT_EQ(rb.readable(), 10u);
  EXPECT_EQ(rb.read(100), pattern(20, 10));
  EXPECT_TRUE(rb.read(10).empty());
}

TEST(ReassemblyTest, DeliverTapSeesEveryByteOnce) {
  ReassemblyBuffer rb(100);
  net::Bytes tapped;
  std::uint64_t expected_off = 0;
  rb.set_deliver_tap([&](std::uint64_t off, net::BytesView data) {
    EXPECT_EQ(off, expected_off);
    expected_off += data.size();
    tapped.insert(tapped.end(), data.begin(), data.end());
  });
  rb.insert(10, pattern(10, 10));
  EXPECT_TRUE(tapped.empty());  // nothing in-order yet
  rb.insert(0, pattern(0, 10));
  rb.insert(20, pattern(20, 5));
  EXPECT_EQ(tapped, pattern(0, 25));
}

TEST(ReassemblyTest, EmptyInsertIsNoop) {
  ReassemblyBuffer rb(100);
  EXPECT_EQ(rb.insert(0, {}), 0u);
  EXPECT_EQ(rb.next_expected(), 0u);
}

// Property sweep: random-ish segment arrival orders always reassemble the
// identical stream.
class ReassemblyOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(ReassemblyOrderTest, AnyArrivalOrderYieldsSameStream) {
  const int perm = GetParam();
  // 6 segments of 10 bytes; apply a permutation derived from `perm`.
  std::vector<int> order = {0, 1, 2, 3, 4, 5};
  int p = perm;
  for (int i = 5; i > 0; --i) {
    std::swap(order[static_cast<size_t>(i)], order[static_cast<size_t>(p % (i + 1))]);
    p /= (i + 1);
  }
  ReassemblyBuffer rb(1000);
  for (int idx : order) {
    rb.insert(static_cast<std::uint64_t>(idx) * 10,
              pattern(static_cast<std::uint64_t>(idx) * 10, 10));
  }
  EXPECT_EQ(rb.next_expected(), 60u);
  EXPECT_EQ(rb.read(1000), pattern(0, 60));
}

INSTANTIATE_TEST_SUITE_P(Permutations, ReassemblyOrderTest,
                         ::testing::Range(0, 720, 37));

}  // namespace
}  // namespace sttcp::tcp
