#include "tcp/rto.h"

#include <gtest/gtest.h>

namespace sttcp::tcp {
namespace {

using sim::Duration;

TcpConfig cfg_with(Duration min_rto = Duration::millis(200),
                   Duration max_rto = Duration::seconds(60)) {
  TcpConfig c;
  c.min_rto = min_rto;
  c.max_rto = max_rto;
  return c;
}

TEST(RtoTest, InitialRtoBeforeSamples) {
  TcpConfig c = cfg_with();
  RtoEstimator r(c);
  EXPECT_FALSE(r.has_samples());
  EXPECT_EQ(r.rto(), Duration::seconds(1));
}

TEST(RtoTest, FirstSampleSetsSrttAndVar) {
  TcpConfig c = cfg_with();
  RtoEstimator r(c);
  r.sample(Duration::millis(100));
  EXPECT_TRUE(r.has_samples());
  EXPECT_EQ(r.srtt(), Duration::millis(100));
  EXPECT_EQ(r.rttvar(), Duration::millis(50));
  // RTO = SRTT + 4*RTTVAR = 300ms.
  EXPECT_EQ(r.rto(), Duration::millis(300));
}

TEST(RtoTest, SmoothedUpdates) {
  TcpConfig c = cfg_with();
  RtoEstimator r(c);
  r.sample(Duration::millis(100));
  r.sample(Duration::millis(100));
  // Stable RTT: SRTT stays 100ms, RTTVAR shrinks 50 -> 37.5ms.
  EXPECT_EQ(r.srtt(), Duration::millis(100));
  EXPECT_EQ(r.rttvar().ns(), Duration::micros(37500).ns());
}

TEST(RtoTest, MinRtoFloorApplies) {
  TcpConfig c = cfg_with(Duration::millis(200));
  RtoEstimator r(c);
  // Tiny LAN RTT: raw RTO would be far below the floor.
  for (int i = 0; i < 10; ++i) r.sample(Duration::micros(200));
  EXPECT_EQ(r.rto(), Duration::millis(200));
}

TEST(RtoTest, BackoffDoublesAndAckResets) {
  TcpConfig c = cfg_with();
  RtoEstimator r(c);
  for (int i = 0; i < 10; ++i) r.sample(Duration::micros(100));
  const Duration base = r.rto();
  r.on_timeout();
  EXPECT_EQ(r.rto(), base * 2);
  r.on_timeout();
  EXPECT_EQ(r.rto(), base * 4);
  EXPECT_EQ(r.backoff_shift(), 2);
  r.on_ack();
  EXPECT_EQ(r.rto(), base);
}

TEST(RtoTest, BackoffClampsAtMax) {
  TcpConfig c = cfg_with(Duration::millis(200), Duration::seconds(5));
  RtoEstimator r(c);
  for (int i = 0; i < 20; ++i) r.on_timeout();
  EXPECT_EQ(r.rto(), Duration::seconds(5));
}

TEST(RtoTest, NegativeSampleIgnored) {
  TcpConfig c = cfg_with();
  RtoEstimator r(c);
  r.sample(Duration::zero() - Duration::millis(5));
  EXPECT_FALSE(r.has_samples());
}

TEST(RtoTest, VarianceGrowsWithJitter) {
  TcpConfig c = cfg_with();
  RtoEstimator r(c);
  r.sample(Duration::millis(100));
  for (int i = 0; i < 20; ++i) {
    r.sample(Duration::millis(i % 2 == 0 ? 50 : 150));
  }
  // Alternating 50/150ms keeps RTTVAR substantial, inflating RTO well above
  // the smoothed RTT.
  EXPECT_GT(r.rto(), r.srtt() + Duration::millis(50));
}

}  // namespace
}  // namespace sttcp::tcp
