// Two hosts with TCP stacks on one switch, plus tiny sink/source apps —
// the standard rig for connection-level TCP tests.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "tcp/stack.h"
#include "tests/net/testnet.h"

namespace sttcp::tcp::testing {

using ::sttcp::testing::TestNet;

/// Generates a deterministic byte pattern (same function everywhere so
/// integrity can be checked per-offset).
inline net::Bytes pattern_bytes(std::uint64_t offset, std::size_t n) {
  net::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = offset + i;
    b[i] = static_cast<std::uint8_t>((x * 131) ^ (x >> 8));
  }
  return b;
}

/// Sink that validates arriving bytes against pattern_bytes.
struct PatternSink {
  std::uint64_t received = 0;
  bool corrupt = false;
  bool eof = false;

  void consume(net::BytesView data) {
    const net::Bytes expect = pattern_bytes(received, data.size());
    if (!std::equal(data.begin(), data.end(), expect.begin())) corrupt = true;
    received += data.size();
  }
};

class TcpFixture : public ::testing::Test {
 public:
  explicit TcpFixture(std::uint64_t seed = 1) : net_(seed) {
    net_.add_host("client", 1);
    net_.add_host("server", 2);
    client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
    server_stack_ = std::make_unique<TcpStack>(net_.host(1), cfg_);
  }

  void run_for(sim::Duration d) { net_.run_for(d); }

  TestNet net_;
  TcpConfig cfg_;
  std::unique_ptr<TcpStack> client_stack_;
  std::unique_ptr<TcpStack> server_stack_;
};

}  // namespace sttcp::tcp::testing
