#include "tcp/seq.h"

#include <gtest/gtest.h>

namespace sttcp::tcp {
namespace {

TEST(SeqTest, WireTruncates) {
  EXPECT_EQ(wire(0x1'00000005ull), 5u);
  EXPECT_EQ(wire(0xffffffffull), 0xffffffffu);
}

TEST(SeqTest, UnwrapIdentityNearReference) {
  EXPECT_EQ(unwrap32(100, 100), 100u);
  EXPECT_EQ(unwrap32(150, 100), 150u);
  EXPECT_EQ(unwrap32(50, 100), 50u);
}

TEST(SeqTest, UnwrapAcrossForwardWrap) {
  const SeqAbs ref = 0xffffff00ull;
  // Wire value 0x10 is just past the 32-bit wrap.
  EXPECT_EQ(unwrap32(0x10, ref), 0x1'00000010ull);
}

TEST(SeqTest, UnwrapAcrossBackwardWrap) {
  const SeqAbs ref = 0x1'00000010ull;
  // Wire value slightly before the wrap resolves below the reference.
  EXPECT_EQ(unwrap32(0xffffff00u, ref), 0xffffff00ull);
}

TEST(SeqTest, UnwrapManyWraps) {
  const SeqAbs ref = 0x5'00000000ull;  // after 5 wraps
  EXPECT_EQ(unwrap32(0x42, ref), 0x5'00000042ull);
  EXPECT_EQ(unwrap32(0xffffffff, ref), 0x4'ffffffffull);
}

TEST(SeqTest, UnwrapChoosesNearestSide) {
  const SeqAbs ref = 0x1'80000000ull;
  // Values within +/- 2^31 of ref resolve exactly.
  EXPECT_EQ(unwrap32(wire(ref + 0x7fffffff), ref), ref + 0x7fffffff);
  EXPECT_EQ(unwrap32(wire(ref - 0x7fffffff), ref), ref - 0x7fffffff);
}

TEST(SeqTest, RoundTripPropertySweep) {
  // For any abs value within half-range of the reference, wire+unwrap is
  // the identity.
  const SeqAbs refs[] = {1000, 0xfffffff0ull, 0x2'00000000ull, 0x7'deadbeefull};
  for (const SeqAbs ref : refs) {
    for (std::int64_t d = -2000; d <= 2000; d += 97) {
      const SeqAbs v = ref + d;
      EXPECT_EQ(unwrap32(wire(v), ref), v) << "ref=" << ref << " d=" << d;
    }
  }
}

TEST(SeqTest, WireComparisons) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));  // across the wrap
  EXPECT_FALSE(seq_lt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5, 5));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_ge(5, 5));
}

}  // namespace
}  // namespace sttcp::tcp
