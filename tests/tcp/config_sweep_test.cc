// Configuration-space sweep: transfers must stay correct across MSS values,
// buffer sizes, RTO floors, and congestion-control settings — including the
// combinations the demo benches use.
#include <gtest/gtest.h>

#include <tuple>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"
#include "harness/sweep.h"
#include "tests/tcp/tcp_fixture.h"

namespace sttcp::tcp {
namespace {

using testing::pattern_bytes;
using testing::PatternSink;
using testing::TcpFixture;

struct SweepParam {
  std::size_t mss;
  std::size_t send_buffer;
  std::size_t recv_buffer;
  int min_rto_ms;
  bool congestion_control;
  const char* name;
};

const SweepParam kParams[] = {
    {536, 256 << 10, 64 << 10, 200, true, "mss536"},
    {1460, 256 << 10, 64 << 10, 200, true, "default"},
    {1460, 8 << 10, 64 << 10, 200, true, "tiny_send_buffer"},
    {1460, 256 << 10, 4 << 10, 200, true, "tiny_recv_buffer"},
    {1460, 256 << 10, 64 << 10, 50, true, "fast_rto"},
    {1460, 256 << 10, 64 << 10, 1000, true, "slow_rto"},
    {1460, 256 << 10, 64 << 10, 200, false, "no_congestion_control"},
    {9000, 1 << 20, 64 << 10, 200, true, "jumbo_mss"},
    {100, 16 << 10, 8 << 10, 200, true, "pathological_small"},
};

class ConfigSweepTest : public TcpFixture,
                        public ::testing::WithParamInterface<SweepParam> {};

TEST_P(ConfigSweepTest, TransferIntactUnderLoss) {
  const SweepParam& p = GetParam();
  cfg_.mss = p.mss;
  cfg_.send_buffer = p.send_buffer;
  cfg_.recv_buffer = p.recv_buffer;
  cfg_.min_rto = sim::Duration::millis(p.min_rto_ms);
  cfg_.congestion_control = p.congestion_control;
  client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
  server_stack_ = std::make_unique<TcpStack>(net_.host(1), cfg_);
  net_.link(0).set_drop_probability(0.01);
  net_.link(1).set_drop_probability(0.01);

  const std::uint64_t total = 300'000;
  PatternSink sink;
  bool done = false;
  TcpConnection* server_conn = nullptr;
  std::uint64_t served = 0;
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    TcpConnection::Callbacks scb;
    auto pump = [&] {
      while (served < total) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(total - served, 8192));
        const std::size_t n = server_conn->send(pattern_bytes(served, chunk));
        served += n;
        if (n < chunk) return;
      }
      server_conn->close();
    };
    scb.on_writable = pump;
    s.set_callbacks(std::move(scb));
    pump();
  });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_readable = [&] { sink.consume(cp->read(1 << 20)); };
  ccb.on_peer_closed = [&] {
    done = true;
    cp->close();
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(600));

  EXPECT_TRUE(done) << p.name;
  EXPECT_EQ(sink.received, total) << p.name;
  EXPECT_FALSE(sink.corrupt) << p.name;
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigSweepTest, ::testing::ValuesIn(kParams),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return info.param.name;
                         });

// The ST-TCP scenario must also hold together across TCP configs.
class SttcpConfigSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SttcpConfigSweepTest, FailoverIntact) {
  const SweepParam& p = GetParam();
  harness::ScenarioConfig cfg;
  cfg.tcp.mss = p.mss;
  cfg.tcp.send_buffer = p.send_buffer;
  cfg.tcp.recv_buffer = p.recv_buffer;
  cfg.tcp.min_rto = sim::Duration::millis(p.min_rto_ms);
  cfg.tcp.congestion_control = p.congestion_control;
  harness::Scenario sc(std::move(cfg));
  const std::uint64_t size = 3'000'000;
  app::FileServer p_app(sc.primary_stack(), sc.service_port(), size);
  app::FileServer b_app(sc.backup_stack(), sc.service_port(), size);
  app::DownloadClient::Options opt;
  opt.expected_bytes = size;
  app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                             {sc.connect_addr()}, opt);
  client.start();
  sc.inject(harness::Fault::Crash(harness::Node::kPrimary).at(sim::Duration::millis(300)));
  sc.run_for(sim::Duration::seconds(120));
  EXPECT_TRUE(client.complete()) << p.name;
  EXPECT_FALSE(client.corrupt()) << p.name;
  EXPECT_EQ(client.connection_failures(), 0) << p.name;
}

INSTANTIATE_TEST_SUITE_P(Configs, SttcpConfigSweepTest,
                         ::testing::ValuesIn(kParams),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return info.param.name;
                         });

// The demo benches run this grid through harness::SweepRunner; the pooled
// sweep must reproduce the serial one exactly (each job owns its World).
TEST(ConfigSweepRunnerTest, PooledSweepMatchesSerial) {
  const auto job = [](std::size_t i) {
    const SweepParam& p = kParams[i];
    harness::ScenarioConfig cfg;
    cfg.tcp.mss = p.mss;
    cfg.tcp.send_buffer = p.send_buffer;
    cfg.tcp.recv_buffer = p.recv_buffer;
    cfg.tcp.min_rto = sim::Duration::millis(p.min_rto_ms);
    cfg.tcp.congestion_control = p.congestion_control;
    harness::Scenario sc(std::move(cfg));
    const std::uint64_t size = 400'000;
    app::FileServer p_app(sc.primary_stack(), sc.service_port(), size);
    app::FileServer b_app(sc.backup_stack(), sc.service_port(), size);
    app::DownloadClient::Options opt;
    opt.expected_bytes = size;
    app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                               {sc.connect_addr()}, opt);
    client.start();
    sc.run_for(sim::Duration::seconds(60));
    return std::tuple(client.complete(), client.corrupt(), client.received(),
                      sc.world().trace().entries().size());
  };
  // A small slice of the grid keeps this fast even under sanitizers.
  constexpr std::size_t kJobs = 3;
  const auto serial = harness::SweepRunner(1).map(kJobs, job);
  const auto pooled = harness::SweepRunner(4).map(kJobs, job);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_TRUE(std::get<0>(serial[i])) << kParams[i].name;
    EXPECT_FALSE(std::get<1>(serial[i])) << kParams[i].name;
    EXPECT_EQ(serial[i], pooled[i]) << kParams[i].name;
  }
}

}  // namespace
}  // namespace sttcp::tcp
