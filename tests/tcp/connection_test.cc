#include "tcp/connection.h"

#include <gtest/gtest.h>

#include "tests/tcp/tcp_fixture.h"

namespace sttcp::tcp {
namespace {

using testing::pattern_bytes;
using testing::TcpFixture;

class ConnectionTest : public TcpFixture {
 protected:
  /// Standard server: echoes nothing, just records accepted connections.
  TcpConnection* accepted_ = nullptr;
  void listen_server(std::uint16_t port = 80) {
    server_stack_->listen(port, [this](TcpConnection& c) { accepted_ = &c; });
  }
};

TEST_F(ConnectionTest, HandshakeEstablishesBothSides) {
  listen_server();
  bool established = false;
  TcpConnection::Callbacks cb;
  cb.on_established = [&] { established = true; };
  TcpConnection& c =
      client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80}, std::move(cb));
  run_for(sim::Duration::millis(50));
  EXPECT_TRUE(established);
  EXPECT_EQ(c.state(), TcpState::kEstablished);
  ASSERT_NE(accepted_, nullptr);
  EXPECT_EQ(accepted_->state(), TcpState::kEstablished);
  EXPECT_EQ(accepted_->tuple().remote.port, c.tuple().local.port);
}

TEST_F(ConnectionTest, ConnectToClosedPortIsReset) {
  bool closed = false;
  CloseReason reason{};
  TcpConnection::Callbacks cb;
  cb.on_closed = [&](CloseReason r) {
    closed = true;
    reason = r;
  };
  client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 81}, std::move(cb));
  run_for(sim::Duration::millis(50));
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, CloseReason::kReset);
}

TEST_F(ConnectionTest, ConnectToDeadHostTimesOut) {
  net_.host(1).crash("dead");
  cfg_.syn_retries = 2;  // keep the test quick
  client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
  bool closed = false;
  CloseReason reason{};
  TcpConnection::Callbacks cb;
  cb.on_closed = [&](CloseReason r) {
    closed = true;
    reason = r;
  };
  client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80}, std::move(cb));
  run_for(sim::Duration::seconds(20));
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, CloseReason::kTimeout);
}

TEST_F(ConnectionTest, DataFlowsBothDirections) {
  listen_server();
  net::Bytes at_server, at_client;
  server_stack_->listen(80, [&](TcpConnection& s) {
    accepted_ = &s;
    TcpConnection::Callbacks scb;
    scb.on_readable = [&s, &at_server] {
      net::Bytes b = s.read(4096);
      at_server.insert(at_server.end(), b.begin(), b.end());
      s.send(net::to_bytes("pong"));
    };
    s.set_callbacks(std::move(scb));
  });
  TcpConnection::Callbacks ccb;
  TcpConnection* cp = nullptr;
  ccb.on_established = [&] { cp->send(net::to_bytes("ping")); };
  ccb.on_readable = [&] {
    net::Bytes b = cp->read(4096);
    at_client.insert(at_client.end(), b.begin(), b.end());
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::millis(100));
  EXPECT_EQ(at_server, net::to_bytes("ping"));
  EXPECT_EQ(at_client, net::to_bytes("pong"));
}

TEST_F(ConnectionTest, GracefulCloseBothSides) {
  TcpConnection* server_conn = nullptr;
  bool server_eof = false;
  bool server_closed = false;
  bool client_closed = false;
  CloseReason client_reason{};
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    TcpConnection::Callbacks scb;
    scb.on_peer_closed = [&] {
      server_eof = true;
      server_conn->close();  // close our side in response
    };
    scb.on_closed = [&](CloseReason) { server_closed = true; };
    s.set_callbacks(std::move(scb));
  });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] { cp->close(); };
  ccb.on_closed = [&](CloseReason r) {
    client_closed = true;
    client_reason = r;
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(10));  // covers TIME_WAIT (2 * 1s MSL)
  EXPECT_TRUE(server_eof);
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(client_reason, CloseReason::kGraceful);
  // Both stacks eventually GC the connections.
  EXPECT_EQ(client_stack_->connection_count(), 0u);
  EXPECT_EQ(server_stack_->connection_count(), 0u);
}

TEST_F(ConnectionTest, AbortSendsRstToPeer) {
  TcpConnection* server_conn = nullptr;
  bool server_closed = false;
  CloseReason server_reason{};
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    TcpConnection::Callbacks scb;
    scb.on_closed = [&](CloseReason r) {
      server_closed = true;
      server_reason = r;
    };
    s.set_callbacks(std::move(scb));
  });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  // Abort shortly after establishment so the server has completed its accept
  // (an abort racing the handshake legitimately never reaches the app).
  ccb.on_established = [&] {
    net_.world.loop().schedule_after(sim::Duration::millis(10), [&] { cp->abort(); });
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::millis(100));
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(server_reason, CloseReason::kReset);
  EXPECT_TRUE(cp->rst_generated());
}

TEST_F(ConnectionTest, LostDataSegmentIsRetransmitted) {
  TcpConnection* server_conn = nullptr;
  net::Bytes at_server;
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    TcpConnection::Callbacks scb;
    scb.on_readable = [&] {
      net::Bytes b = server_conn->read(65536);
      at_server.insert(at_server.end(), b.begin(), b.end());
    };
    s.set_callbacks(std::move(scb));
  });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] {
    // Drop the next two frames on the client's link (the data segments),
    // then send.
    net_.link(0).drop_next(2);
    cp->send(pattern_bytes(0, 3000));
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(5));
  EXPECT_EQ(at_server, pattern_bytes(0, 3000));
  EXPECT_GE(cp->stats().retransmissions, 1u);
}

TEST_F(ConnectionTest, ReceiverWindowThrottlesSender) {
  // Server app never reads: the client must stop after filling the 64KB
  // receive buffer, then resume when the app drains it.
  TcpConnection* server_conn = nullptr;
  server_stack_->listen(80, [&](TcpConnection& s) { server_conn = &s; });
  TcpConnection* cp = nullptr;
  std::uint64_t written = 0;
  TcpConnection::Callbacks ccb;
  auto pump = [&] {
    while (written < 200000) {
      const std::size_t chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(4096, 200000 - written));
      const std::size_t n = cp->send(pattern_bytes(written, chunk));
      written += n;
      if (n < chunk) break;
    }
  };
  ccb.on_established = pump;
  ccb.on_writable = pump;
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(5));
  ASSERT_NE(server_conn, nullptr);
  // Sender is blocked: receiver buffer (64KB) + sender buffer (256KB).
  EXPECT_LE(server_conn->bytes_received(), 65536u + 1u);
  EXPECT_EQ(cp->peer_window(), 0u);
  const std::uint64_t stalled_at = server_conn->bytes_received();
  EXPECT_GT(stalled_at, 60000u);
  // Drain on the server: everything eventually arrives.
  net::Bytes drained;
  TcpConnection::Callbacks scb;
  scb.on_readable = [&] {
    net::Bytes b = server_conn->read(65536);
    drained.insert(drained.end(), b.begin(), b.end());
  };
  server_conn->set_callbacks(std::move(scb));
  net::Bytes first = server_conn->read(65536);
  drained.insert(drained.begin(), first.begin(), first.end());
  run_for(sim::Duration::seconds(30));
  EXPECT_EQ(written, 200000u);
  EXPECT_EQ(drained, pattern_bytes(0, 200000));
}

TEST_F(ConnectionTest, ZeroWindowProbesKeepConnectionAlive) {
  TcpConnection* server_conn = nullptr;
  server_stack_->listen(80, [&](TcpConnection& s) { server_conn = &s; });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] { cp->send(pattern_bytes(0, 100000)); };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  // Far beyond max_retries * RTO: the connection must survive on probes.
  run_for(sim::Duration::seconds(60));
  EXPECT_EQ(cp->state(), TcpState::kEstablished);
  EXPECT_GT(cp->stats().probes_sent, 0u);
}

TEST_F(ConnectionTest, CountersTrackStreamPositions) {
  net::Bytes at_server;
  TcpConnection* server_conn = nullptr;
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    TcpConnection::Callbacks scb;
    scb.on_readable = [&] {
      net::Bytes b = server_conn->read(1000);  // reads lag writes
      at_server.insert(at_server.end(), b.begin(), b.end());
    };
    s.set_callbacks(std::move(scb));
  });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] { cp->send(pattern_bytes(0, 5000)); };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(2));
  EXPECT_EQ(cp->app_bytes_written(), 5000u);
  EXPECT_EQ(cp->bytes_acked_by_peer(), 5000u);
  EXPECT_EQ(server_conn->bytes_received(), 5000u);
  EXPECT_EQ(server_conn->app_bytes_read(), at_server.size());
  EXPECT_EQ(server_conn->app_bytes_written(), 0u);
}

TEST_F(ConnectionTest, FinGeneratedFlagSetOnClose) {
  TcpConnection* server_conn = nullptr;
  server_stack_->listen(80, [&](TcpConnection& s) { server_conn = &s; });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] { cp->close(); };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::millis(100));
  EXPECT_TRUE(cp->fin_generated());
  EXPECT_FALSE(cp->rst_generated());
  ASSERT_NE(server_conn, nullptr);
  EXPECT_TRUE(server_conn->peer_half_closed());
  EXPECT_EQ(server_conn->state(), TcpState::kCloseWait);
}

TEST_F(ConnectionTest, CloseGateWithholdsFinUntilRelease) {
  TcpConnection* server_conn = nullptr;
  server_stack_->listen(80, [&](TcpConnection& s) { server_conn = &s; });
  TcpConnection* cp = nullptr;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] {
    cp->set_close_gate([](bool) { return false; });
    cp->send(net::to_bytes("tail"));
    cp->close();
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(2));
  // Data before the FIN flowed; the FIN itself is withheld.
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->bytes_received(), 4u);
  EXPECT_FALSE(server_conn->peer_half_closed());
  EXPECT_TRUE(cp->fin_generated());
  EXPECT_EQ(cp->state(), TcpState::kEstablished);  // still pre-FIN
  cp->release_fin();
  run_for(sim::Duration::seconds(1));
  EXPECT_TRUE(server_conn->peer_half_closed());
}

TEST_F(ConnectionTest, SuppressedConnectionSendsNothing) {
  TcpConnection* server_conn = nullptr;
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    s.set_suppressed(true);
    s.send(pattern_bytes(0, 2000));
  });
  TcpConnection* cp = nullptr;
  net::Bytes at_client;
  TcpConnection::Callbacks ccb;
  ccb.on_readable = [&] {
    net::Bytes b = cp->read(65536);
    at_client.insert(at_client.end(), b.begin(), b.end());
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(3));
  // The server's handshake happened before suppression; data after it did not
  // reach the client.
  EXPECT_TRUE(at_client.empty());
  ASSERT_NE(server_conn, nullptr);
  EXPECT_GT(server_conn->stats().segments_suppressed, 0u);
  // Un-suppress via takeover: the data flows out on retransmission.
  server_conn->on_takeover(/*immediate_retransmit=*/true);
  run_for(sim::Duration::seconds(3));
  EXPECT_EQ(at_client, pattern_bytes(0, 2000));
}

TEST_F(ConnectionTest, HalfCloseAllowsContinuedServerSend) {
  // Client closes its direction immediately after sending a request;
  // server keeps streaming the response afterwards (classic FTP-ish flow).
  TcpConnection* server_conn = nullptr;
  server_stack_->listen(80, [&](TcpConnection& s) {
    server_conn = &s;
    TcpConnection::Callbacks scb;
    scb.on_peer_closed = [&] {
      server_conn->send(pattern_bytes(0, 20000));
      server_conn->close();
    };
    s.set_callbacks(std::move(scb));
  });
  TcpConnection* cp = nullptr;
  testing::PatternSink sink;
  bool client_closed = false;
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] { cp->close(); };
  ccb.on_readable = [&] { sink.consume(cp->read(65536)); };
  ccb.on_closed = [&](CloseReason) { client_closed = true; };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(10));
  EXPECT_EQ(sink.received, 20000u);
  EXPECT_FALSE(sink.corrupt);
  EXPECT_TRUE(client_closed);
}

TEST_F(ConnectionTest, RetransmissionsExhaustedKillsConnection) {
  cfg_.max_retries = 3;
  client_stack_ = std::make_unique<TcpStack>(net_.host(0), cfg_);
  listen_server();
  TcpConnection* cp = nullptr;
  bool closed = false;
  CloseReason reason{};
  TcpConnection::Callbacks ccb;
  ccb.on_established = [&] {
    net_.host(1).crash("server dies mid-connection");
    cp->send(pattern_bytes(0, 1000));
  };
  ccb.on_closed = [&](CloseReason r) {
    closed = true;
    reason = r;
  };
  cp = &client_stack_->connect(net_.ip(0), net::SocketAddr{net_.ip(1), 80},
                               std::move(ccb));
  run_for(sim::Duration::seconds(60));
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, CloseReason::kTimeout);
}

}  // namespace
}  // namespace sttcp::tcp
