#include "sim/clock_domain.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace sttcp::sim {
namespace {

using namespace sttcp::sim::literals;

TEST(LagProfile, NoneReleasesEverything) {
  const LagProfile p = LagProfile::none();
  EXPECT_FALSE(p.active());
  EXPECT_EQ(p.release(SimTime::zero(), SimTime::from_ns(123)), SimTime::from_ns(123));
}

TEST(LagProfile, StallWindowPushesToEnd) {
  const LagProfile p = LagProfile::stall(2_s);
  const SimTime anchor = SimTime::zero() + 1_s;
  // Before the anchor: untouched.
  EXPECT_EQ(p.release(anchor, SimTime::zero()), SimTime::zero());
  // Inside [anchor, anchor+2s): pushed to the end.
  EXPECT_EQ(p.release(anchor, anchor), anchor + 2_s);
  EXPECT_EQ(p.release(anchor, anchor + 1999_ms), anchor + 2_s);
  // At and after the end: untouched.
  EXPECT_EQ(p.release(anchor, anchor + 2_s), anchor + 2_s);
  EXPECT_EQ(p.release(anchor, anchor + 3_s), anchor + 3_s);
}

TEST(LagProfile, PulseTrainReleasesIntoRunWindows) {
  // run 100ms, stall 400ms, 2 cycles anchored at t=0.
  const LagProfile p = LagProfile::pulses(100_ms, 400_ms, 2);
  const SimTime a = SimTime::zero();
  EXPECT_EQ(p.release(a, a + 50_ms), a + 50_ms);        // cycle 0 run window
  EXPECT_EQ(p.release(a, a + 100_ms), a + 500_ms);      // cycle 0 stall start
  EXPECT_EQ(p.release(a, a + 499_ms), a + 500_ms);      // cycle 0 stall end
  EXPECT_EQ(p.release(a, a + 550_ms), a + 550_ms);      // cycle 1 run window
  EXPECT_EQ(p.release(a, a + 700_ms), a + 1000_ms);     // cycle 1 stall
  EXPECT_EQ(p.release(a, a + 1200_ms), a + 1200_ms);    // past the train
}

TEST(LagProfile, WedgedForeverReleasesNever) {
  const LagProfile p = LagProfile::pulses(Duration::zero(), 1_s, 0);
  EXPECT_TRUE(p.release(SimTime::zero(), SimTime::zero() + 5_s).is_never());
}

TEST(ClockDomain, PassthroughIsVerbatim) {
  EventLoop loop;
  ClockDomain dom(loop);
  std::vector<int> order;
  loop.schedule_at(SimTime::zero() + 10_ms, [&] { order.push_back(1); });
  const TimerId id = dom.schedule_at(SimTime::zero() + 5_ms, [&] { order.push_back(0); });
  EXPECT_EQ(id & (TimerId{1} << 63), 0u) << "healthy domain must return raw loop ids";
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(dom.deferred(), 0u);
}

TEST(ClockDomain, StallDefersCallbacksButNotTheRestOfTheWorld) {
  EventLoop loop;
  ClockDomain dom(loop);
  std::vector<std::pair<int, std::int64_t>> fired;  // (tag, ms)
  loop.run_for(100_ms);
  dom.set_lag(LagProfile::stall(1_s));  // anchored at 100ms
  dom.schedule_after(50_ms, [&] { fired.push_back({0, loop.now().ns() / 1000000}); });
  loop.schedule_after(50_ms, [&] { fired.push_back({1, loop.now().ns() / 1000000}); });
  loop.run_for(2_s);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<int, std::int64_t>{1, 150}));   // world on time
  EXPECT_EQ(fired[1], (std::pair<int, std::int64_t>{0, 1100}));  // domain deferred
  EXPECT_EQ(dom.deferred(), 1u);
  EXPECT_FALSE(dom.lagged());  // profile exhausted
}

TEST(ClockDomain, CancelWorksWhileDeferred) {
  EventLoop loop;
  ClockDomain dom(loop);
  bool ran = false;
  dom.set_lag(LagProfile::stall(1_s));
  const TimerId id = dom.schedule_after(10_ms, [&] { ran = true; });
  EXPECT_NE(id & (TimerId{1} << 63), 0u) << "deferred callbacks get domain ids";
  EXPECT_TRUE(dom.cancel(id));
  EXPECT_FALSE(dom.cancel(id)) << "second cancel must be a no-op";
  loop.run_for(3_s);
  EXPECT_FALSE(ran);
}

TEST(ClockDomain, SurfaceRechecksExtendedStall) {
  EventLoop loop;
  ClockDomain dom(loop);
  bool ran = false;
  dom.set_lag(LagProfile::stall(500_ms));
  dom.schedule_after(10_ms, [&] { ran = true; });
  // Extend the stall before the first release point.
  loop.run_for(200_ms);
  dom.set_lag(LagProfile::stall(2_s));  // re-anchored at 200ms
  loop.run_for(1_s);                    // old release (500ms) passes: re-deferred
  EXPECT_FALSE(ran);
  loop.run_for(2_s);
  EXPECT_TRUE(ran);
}

TEST(ClockDomain, ClearDropsPendingDeferredWork) {
  EventLoop loop;
  ClockDomain dom(loop);
  bool ran = false;
  dom.set_lag(LagProfile::stall(1_s));
  dom.schedule_after(10_ms, [&] { ran = true; });
  dom.clear();  // models a power transition: queued stalled work is gone
  loop.run_for(5_s);
  EXPECT_FALSE(ran);
  EXPECT_FALSE(dom.lagged());
}

TEST(ClockDomain, OneShotTimerThroughDomainSlidesAndRearms) {
  EventLoop loop;
  ClockDomain dom(loop);
  OneShotTimer timer(dom);
  int fires = 0;
  dom.set_lag(LagProfile::stall(1_s));
  timer.arm(100_ms, [&] { ++fires; });
  EXPECT_TRUE(timer.armed());
  loop.run_for(500_ms);
  EXPECT_EQ(fires, 0);
  // Re-arm mid-stall: must cancel the deferred shot cleanly.
  timer.arm(100_ms, [&] { fires += 10; });
  loop.run_for(5_s);
  EXPECT_EQ(fires, 10);
}

TEST(ClockDomain, PeriodicTimerThroughHealthyDomainKeepsPeriod) {
  EventLoop loop;
  ClockDomain dom(loop);
  PeriodicTimer timer(dom);
  int fires = 0;
  timer.start(100_ms, [&] { ++fires; });
  loop.run_for(1_s);
  EXPECT_EQ(fires, 10);
  timer.stop();
  loop.run_for(1_s);
  EXPECT_EQ(fires, 10);
}

TEST(ClockDomain, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    EventLoop loop;
    ClockDomain dom(loop);
    std::vector<std::int64_t> at;
    loop.schedule_after(50_ms, [&] { dom.set_lag(LagProfile::pulses(100_ms, 300_ms, 3)); });
    PeriodicTimer timer(dom);
    timer.start(70_ms, [&] { at.push_back(loop.now().ns()); });
    loop.run_for(3_s);
    return at;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventLoopExplorerHooks, ReadySetAndForcedOrder) {
  EventLoop loop;
  std::vector<int> order;
  const TimerId a = loop.schedule_at(SimTime::zero() + 10_ms, [&] { order.push_back(0); });
  const TimerId b = loop.schedule_at(SimTime::zero() + 20_ms, [&] { order.push_back(1); });
  auto ready = loop.ready_events(SimTime::zero() + 30_ms);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0].id, a);
  EXPECT_EQ(ready[1].id, b);
  EXPECT_EQ(loop.next_event_at(), SimTime::zero() + 10_ms);

  // Force b before a: the clock jumps to b's stamp; a then runs late.
  EXPECT_TRUE(loop.run_event(b));
  EXPECT_EQ(loop.now(), SimTime::zero() + 20_ms);
  EXPECT_FALSE(loop.run_event(b)) << "consumed ids are stale";
  EXPECT_TRUE(loop.run_event(a));
  EXPECT_EQ(loop.now(), SimTime::zero() + 20_ms) << "late events do not rewind time";
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
  EXPECT_EQ(loop.pending(), 0u);
  // The wheel still holds the consumed entries; draining must not re-run them.
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(EventLoopExplorerHooks, ReadySetHidesCancelledAndHorizonFiltered) {
  EventLoop loop;
  const TimerId a = loop.schedule_at(SimTime::zero() + 10_ms, [] {});
  loop.schedule_at(SimTime::zero() + 500_ms, [] {});
  loop.cancel(a);
  auto ready = loop.ready_events(SimTime::zero() + 100_ms);
  EXPECT_TRUE(ready.empty());
  ready = loop.ready_events(SimTime::never());
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].at, SimTime::zero() + 500_ms);
}

}  // namespace
}  // namespace sttcp::sim
