#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace sttcp::sim {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(SimTime::from_ns(300), [&] { order.push_back(3); });
  loop.schedule_at(SimTime::from_ns(100), [&] { order.push_back(1); });
  loop.schedule_at(SimTime::from_ns(200), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), SimTime::from_ns(300));
}

TEST(EventLoopTest, TiesBreakFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(SimTime::from_ns(50), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoopTest, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  SimTime fired;
  loop.schedule_after(Duration::millis(10), [&] {
    loop.schedule_after(Duration::millis(5), [&] { fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired, SimTime::zero() + Duration::millis(15));
}

TEST(EventLoopTest, PastTimesClampToNow) {
  EventLoop loop;
  bool ran = false;
  loop.schedule_after(Duration::millis(10), [&] {
    loop.schedule_at(SimTime::zero(), [&] {
      ran = true;
      EXPECT_EQ(loop.now(), SimTime::zero() + Duration::millis(10));
    });
  });
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  TimerId id = loop.schedule_after(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(SimTime::from_ns(100), [&] { ++count; });
  loop.schedule_at(SimTime::from_ns(200), [&] { ++count; });
  loop.schedule_at(SimTime::from_ns(300), [&] { ++count; });
  loop.run_until(SimTime::from_ns(200));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), SimTime::from_ns(200));
  loop.run_until(SimTime::from_ns(250));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), SimTime::from_ns(250));  // idle time still advances
}

TEST(EventLoopTest, RunForIsRelative) {
  EventLoop loop;
  int count = 0;
  loop.schedule_after(Duration::millis(5), [&] { ++count; });
  loop.schedule_after(Duration::millis(15), [&] { ++count; });
  loop.run_for(Duration::millis(10));
  EXPECT_EQ(count, 1);
  loop.run_for(Duration::millis(10));
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, StopHaltsRun) {
  EventLoop loop;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    loop.schedule_at(SimTime::from_ns(i), [&] {
      if (++count == 3) loop.stop();
    });
  }
  loop.run();
  EXPECT_EQ(count, 3);
  loop.run();  // resumes where it left off
  EXPECT_EQ(count, 10);
}

TEST(EventLoopTest, PendingCountsUncancelled) {
  EventLoop loop;
  TimerId a = loop.schedule_after(Duration::millis(1), [] {});
  loop.schedule_after(Duration::millis(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopTest, EventsExecutedCounter) {
  EventLoop loop;
  for (int i = 0; i < 5; ++i) loop.schedule_after(Duration::millis(i), [] {});
  loop.run();
  EXPECT_EQ(loop.events_executed(), 5u);
}

TEST(OneShotTimerTest, FiresOnceAndReportsDeadline) {
  EventLoop loop;
  OneShotTimer t(loop);
  int fired = 0;
  t.arm(Duration::millis(10), [&] { ++fired; });
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(t.deadline(), SimTime::zero() + Duration::millis(10));
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_TRUE(t.deadline().is_never());
}

TEST(OneShotTimerTest, RearmCancelsPrevious) {
  EventLoop loop;
  OneShotTimer t(loop);
  int a = 0;
  int b = 0;
  t.arm(Duration::millis(10), [&] { ++a; });
  t.arm(Duration::millis(20), [&] { ++b; });
  loop.run();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

TEST(OneShotTimerTest, CallbackCanRearm) {
  EventLoop loop;
  OneShotTimer t(loop);
  int fired = 0;
  std::function<void()> cb = [&] {
    if (++fired < 3) t.arm(Duration::millis(1), cb);
  };
  t.arm(Duration::millis(1), cb);
  loop.run();
  EXPECT_EQ(fired, 3);
}

TEST(OneShotTimerTest, DestructionCancels) {
  EventLoop loop;
  bool ran = false;
  {
    OneShotTimer t(loop);
    t.arm(Duration::millis(1), [&] { ran = true; });
  }
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(PeriodicTimerTest, FiresAtEachPeriod) {
  EventLoop loop;
  PeriodicTimer t(loop);
  std::vector<SimTime> fires;
  t.start(Duration::millis(100), [&] { fires.push_back(loop.now()); });
  loop.run_for(Duration::millis(350));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], SimTime::zero() + Duration::millis(100));
  EXPECT_EQ(fires[2], SimTime::zero() + Duration::millis(300));
}

TEST(PeriodicTimerTest, StopFromWithinCallback) {
  EventLoop loop;
  PeriodicTimer t(loop);
  int fired = 0;
  t.start(Duration::millis(10), [&] {
    if (++fired == 2) t.stop();
  });
  loop.run_for(Duration::seconds(1));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(t.running());
}

}  // namespace
}  // namespace sttcp::sim
