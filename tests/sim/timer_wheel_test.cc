// TimerWheel / EventLoop ordering tests.
//
// The wheel replaced the EventLoop's binary heap; the contract is that no
// observable ordering changed. The reference model here is exactly the old
// heap's semantics: execute in strict (timestamp, scheduling-seq) order.
#include "sim/timer_wheel.h"

#include <algorithm>
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_loop.h"
#include "sim/random.h"
#include "sim/time.h"

namespace sttcp::sim {
namespace {

TEST(TimerWheel, PopsInTimestampSeqOrder) {
  TimerWheel w;
  // Deliberately adversarial spread: same granule, adjacent granules, far
  // cascades, duplicate timestamps.
  const std::int64_t times[] = {0,    1,       1,      1023,    1024,
                                4095, 70000,   70000,  1 << 20, 1 << 21,
                                5,    1 << 28, 999999, 3,       1024};
  std::uint64_t seq = 0;
  for (std::int64_t t : times) {
    w.push(WheelEntry{SimTime::from_ns(t), seq++, 0, 1});
  }
  ASSERT_EQ(w.size(), std::size(times));
  SimTime prev_at = SimTime::zero();
  std::uint64_t prev_seq = 0;
  bool first = true;
  while (!w.empty()) {
    const WheelEntry e = w.pop_min();
    if (!first) {
      ASSERT_TRUE(e.at > prev_at || (e.at == prev_at && e.seq > prev_seq))
          << "out of (at, seq) order";
    }
    first = false;
    prev_at = e.at;
    prev_seq = e.seq;
  }
}

TEST(TimerWheel, RandomizedAgainstSortReference) {
  Rng rng(0x57ee1);
  TimerWheel w;
  std::vector<WheelEntry> ref;
  std::uint64_t seq = 0;
  // Mixed insert/pop phases so the cursor advances mid-stream, including
  // far-future entries beyond the wheel horizon.
  std::int64_t now_ns = 0;
  for (int round = 0; round < 50; ++round) {
    const int inserts = static_cast<int>(rng.below(64)) + 1;
    for (int i = 0; i < inserts; ++i) {
      std::int64_t delta;
      switch (rng.below(4)) {
        case 0: delta = static_cast<std::int64_t>(rng.below(1024)); break;
        case 1: delta = static_cast<std::int64_t>(rng.below(1 << 16)); break;
        case 2: delta = static_cast<std::int64_t>(rng.below(1ull << 32)); break;
        default:
          // Very far future: exercises the top cascade levels.
          delta = static_cast<std::int64_t>(rng.below(1ull << 50)) +
                  (std::int64_t{1} << 47);
          break;
      }
      WheelEntry e{SimTime::from_ns(now_ns + delta), seq++, 0, 1};
      w.push(e);
      ref.push_back(e);
    }
    const int pops = static_cast<int>(rng.below(static_cast<std::uint64_t>(ref.size())));
    std::sort(ref.begin(), ref.end(), [](const WheelEntry& a, const WheelEntry& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    });
    for (int i = 0; i < pops; ++i) {
      const WheelEntry got = w.pop_min();
      ASSERT_EQ(got.at, ref[static_cast<std::size_t>(i)].at);
      ASSERT_EQ(got.seq, ref[static_cast<std::size_t>(i)].seq);
      now_ns = got.at.ns();
    }
    ref.erase(ref.begin(), ref.begin() + pops);
  }
}

TEST(TimerWheel, SweepRemovesExactlyStaleEntries) {
  TimerWheel w;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    w.push(WheelEntry{SimTime::from_ns(static_cast<std::int64_t>(i) * 7777),
                      i, static_cast<std::uint32_t>(i), 1});
  }
  std::vector<std::uint32_t> reclaimed;
  w.sweep([](const WheelEntry& e) { return e.slot % 3 == 0; },
          [&](const WheelEntry& e) { reclaimed.push_back(e.slot); });
  EXPECT_EQ(reclaimed.size(), 334u);  // slots 0,3,...,999
  EXPECT_EQ(w.size(), 1000u - 334u);
  while (!w.empty()) {
    EXPECT_NE(w.pop_min().slot % 3, 0u);
  }
}

// --- EventLoop-level behavior on top of the wheel --------------------------

TEST(TimerWheelLoop, SameTickFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  // All at the same nanosecond: must run in scheduling order.
  for (int i = 0; i < 100; ++i) {
    loop.schedule_at(SimTime::from_ns(500), [&order, i] { order.push_back(i); });
  }
  loop.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TimerWheelLoop, ArmCancelRearmStorm) {
  EventLoop loop;
  Rng rng(7);
  // 10k timers constantly re-armed (the RTO-on-every-ACK pattern): the
  // lazily-cancelled backlog must be swept, not accumulated, and the
  // surviving shots must fire in order.
  constexpr int kTimers = 10000;
  std::vector<TimerId> ids(kTimers, 0);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < kTimers; ++i) {
      if (ids[static_cast<std::size_t>(i)] != 0) {
        loop.cancel(ids[static_cast<std::size_t>(i)]);
      }
      const auto d = Duration::micros(static_cast<std::int64_t>(rng.below(200000)) + 1);
      ids[static_cast<std::size_t>(i)] = loop.schedule_after(d, [] {});
    }
  }
  EXPECT_EQ(loop.pending(), static_cast<std::size_t>(kTimers));
  std::uint64_t ran = loop.run();
  EXPECT_EQ(ran, static_cast<std::uint64_t>(kTimers));
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(TimerWheelLoop, FarFutureCascades) {
  EventLoop loop;
  std::vector<int> order;
  // Hours and days ahead (multiple cascade levels + the overflow heap),
  // interleaved with near events.
  loop.schedule_at(SimTime::from_ns(Duration::seconds(86400 * 30).ns()),
                   [&] { order.push_back(4); });
  loop.schedule_at(SimTime::from_ns(Duration::seconds(7200).ns()),
                   [&] { order.push_back(3); });
  loop.schedule_at(SimTime::from_ns(Duration::millis(1).ns()),
                   [&] { order.push_back(1); });
  loop.schedule_at(SimTime::from_ns(Duration::seconds(1).ns()),
                   [&] { order.push_back(2); });
  loop.schedule_at(SimTime::from_ns(0), [&] { order.push_back(0); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(loop.now().ns(), Duration::seconds(86400 * 30).ns());
}

TEST(TimerWheelLoop, RunBeforeExcludesBoundary) {
  EventLoop loop;
  int before = 0, at = 0;
  loop.schedule_at(SimTime::from_ns(999), [&] { ++before; });
  loop.schedule_at(SimTime::from_ns(1000), [&] { ++at; });
  loop.schedule_at(SimTime::from_ns(1000), [&] { ++at; });
  EXPECT_EQ(loop.run_before(SimTime::from_ns(1000)), 1u);
  EXPECT_EQ(before, 1);
  EXPECT_EQ(at, 0);
  EXPECT_EQ(loop.now(), SimTime::from_ns(1000));
  // Boundary events are still pending and run first on the next call.
  EXPECT_EQ(loop.pending(), 2u);
  EXPECT_EQ(loop.run_until(SimTime::from_ns(1000)), 2u);
  EXPECT_EQ(at, 2);
}

TEST(TimerWheelLoop, CancelAcrossCascadeLevels) {
  EventLoop loop;
  int fired = 0;
  const TimerId far_id = loop.schedule_at(
      SimTime::from_ns(Duration::seconds(3600).ns()), [&] { ++fired; });
  const TimerId near_id =
      loop.schedule_at(SimTime::from_ns(100), [&] { ++fired; });
  loop.schedule_at(SimTime::from_ns(Duration::seconds(3600).ns() + 5),
                   [&] { ++fired; });
  EXPECT_TRUE(loop.cancel(far_id));
  EXPECT_TRUE(loop.cancel(near_id));
  EXPECT_FALSE(loop.cancel(far_id));  // already cancelled
  loop.run();
  EXPECT_EQ(fired, 1);
}

// A miniature reference loop with the old binary-heap semantics, used to
// cross-check a randomized schedule/cancel/run interleaving end to end.
struct HeapRef {
  struct E {
    SimTime at;
    std::uint64_t seq;
    int tag;
  };
  std::vector<E> v;
  std::uint64_t seq = 0;
  SimTime now;
  void schedule(SimTime t, int tag) {
    if (t < now) t = now;
    v.push_back({t, seq++, tag});
  }
  std::vector<int> run_all() {
    std::sort(v.begin(), v.end(), [](const E& a, const E& b) {
      return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    });
    std::vector<int> tags;
    for (const E& e : v) tags.push_back(e.tag);
    v.clear();
    return tags;
  }
};

TEST(TimerWheelLoop, RandomizedOrderMatchesHeapSemantics) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EventLoop loop;
    Rng rng(seed);
    HeapRef ref;
    std::vector<int> got;
    int tag = 0;
    for (int i = 0; i < 3000; ++i) {
      const auto t = SimTime::from_ns(static_cast<std::int64_t>(rng.below(1ull << 34)));
      loop.schedule_at(t, [&got, tag] { got.push_back(tag); });
      ref.schedule(t, tag);
      ++tag;
    }
    loop.run();
    EXPECT_EQ(got, ref.run_all()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sttcp::sim
