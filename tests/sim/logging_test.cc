#include "sim/logging.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_loop.h"

namespace sttcp::sim {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  EventLoop loop_;
  std::ostringstream out_;
};

TEST_F(LoggingTest, LevelsFilter) {
  LogSink sink(loop_, &out_, LogLevel::kWarn);
  Logger log(&sink, "component");
  log.debug("invisible");
  log.info("also invisible");
  log.warn("visible-warn");
  log.error("visible-error");
  const std::string s = out_.str();
  EXPECT_EQ(s.find("invisible"), std::string::npos);
  EXPECT_NE(s.find("visible-warn"), std::string::npos);
  EXPECT_NE(s.find("visible-error"), std::string::npos);
}

TEST_F(LoggingTest, TimestampsComeFromSimClock) {
  LogSink sink(loop_, &out_, LogLevel::kInfo);
  Logger log(&sink, "c");
  loop_.schedule_after(Duration::millis(1500), [&] { log.info("late"); });
  loop_.run();
  EXPECT_NE(out_.str().find("[1.500000s]"), std::string::npos);
}

TEST_F(LoggingTest, VariadicFormatting) {
  LogSink sink(loop_, &out_, LogLevel::kInfo);
  Logger log(&sink, "fmt");
  log.info("x=", 42, " y=", 2.5, " z=", std::string("s"));
  EXPECT_NE(out_.str().find("x=42 y=2.5 z=s"), std::string::npos);
}

TEST_F(LoggingTest, ChildComponentNames) {
  LogSink sink(loop_, &out_, LogLevel::kInfo);
  Logger parent(&sink, "host");
  Logger child = parent.child("tcp");
  child.info("hello");
  EXPECT_NE(out_.str().find("host/tcp:"), std::string::npos);
  // A child of an empty logger is just the suffix.
  Logger root(&sink, "");
  EXPECT_EQ(root.child("x").component(), "x");
}

TEST_F(LoggingTest, DefaultLoggerDiscardsSafely) {
  Logger log;  // no sink
  log.error("goes nowhere");  // must not crash
  EXPECT_FALSE(log.enabled(LogLevel::kError));
}

TEST_F(LoggingTest, EnabledGuardSkipsFormatting) {
  LogSink sink(loop_, &out_, LogLevel::kOff);
  Logger log(&sink, "quiet");
  EXPECT_FALSE(log.enabled(LogLevel::kError));
  log.error("never rendered");
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(LoggingTest, RuntimeLevelChange) {
  LogSink sink(loop_, &out_, LogLevel::kError);
  Logger log(&sink, "c");
  log.info("no");
  sink.set_level(LogLevel::kTrace);
  log.trace("yes");
  EXPECT_EQ(out_.str().find("no\n"), std::string::npos);
  EXPECT_NE(out_.str().find("yes"), std::string::npos);
}

TEST(LogLevelTest, Names) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace sttcp::sim
