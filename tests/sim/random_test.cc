#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sttcp::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng r(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 1000 draws
  EXPECT_EQ(r.range(5, 5), 5);
  EXPECT_EQ(r.range(5, 4), 5);  // degenerate
}

TEST(RngTest, Uniform01Bounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(RngTest, ChanceFrequencyRoughlyMatches) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(21);
  (void)b.next_u64();  // consume the value that seeded the fork
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ReseedResetsStream) {
  Rng r(5);
  const std::uint64_t first = r.next_u64();
  (void)r.next_u64();
  r.reseed(5);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace sttcp::sim
