// ParallelExecutor conservative-window tests, at the sim layer only: a ring
// of synthetic shards ping-ponging timestamped messages through SPSC queues,
// checked for (a) no event ever executing in a shard's past, (b) bit-equal
// execution traces across 1, 2 and 4 worker threads.
#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/spsc.h"
#include "sim/time.h"

namespace sttcp::sim {
namespace {

constexpr Duration kLatency = Duration::micros(100);

struct Msg {
  SimTime at;
  std::uint64_t payload = 0;
  int hops_left = 0;
};

// N shards in a ring; each event at time t sends payload+1 to the next shard
// arriving at t + latency, and respawns locally a little later, until its
// hop budget runs out. Every execution folds (timestamp, payload) into a
// per-shard FNV digest — any reordering or lost/duplicated injection changes
// some shard's digest.
struct Ring {
  explicit Ring(int n) : shards(static_cast<std::size_t>(n)) {
    for (auto& s : shards) s = std::make_unique<Shard>();
  }

  struct Shard {
    EventLoop loop;
    SpscQueue<Msg> inbox;
    std::uint64_t digest = 0xcbf29ce484222325ull;
    std::uint64_t executed = 0;
    void fold(std::uint64_t v) { digest = (digest ^ v) * 0x100000001b3ull; }
  };
  std::vector<std::unique_ptr<Shard>> shards;

  void bounce(std::size_t idx, std::uint64_t payload, int hops_left) {
    Shard& s = *shards[idx];
    const SimTime now = s.loop.now();
    s.fold(static_cast<std::uint64_t>(now.ns()));
    s.fold(payload);
    ++s.executed;
    if (hops_left <= 0) return;
    // "Transmit": arrival stamped with the full latency, queued to the peer.
    const std::size_t next = (idx + 1) % shards.size();
    shards[next]->inbox.push(Msg{now + kLatency, payload + 1, hops_left - 1});
    // Keep some local (intra-shard) churn around the same timestamps too.
    s.loop.schedule_after(Duration::micros(7),
                          [this, idx, payload, hops_left] {
                            bounce(idx, payload * 3 + 1, hops_left - 1);
                          });
  }

  std::vector<ParallelExecutor::Shard> executor_shards() {
    std::vector<ParallelExecutor::Shard> out;
    for (std::size_t i = 0; i < shards.size(); ++i) {
      Shard* s = shards[i].get();
      out.push_back(ParallelExecutor::Shard{
          &s->loop, [this, i, s](SimTime horizon) {
            while (Msg* m = s->inbox.front()) {
              if (m->at >= horizon) break;
              const std::uint64_t payload = m->payload;
              const int hops = m->hops_left;
              s->loop.schedule_at(m->at, [this, i, payload, hops] {
                bounce(i, payload, hops);
              });
              s->inbox.pop();
            }
          }});
    }
    return out;
  }
};

std::vector<std::uint64_t> run_ring(int n_shards, int threads) {
  Ring ring(n_shards);
  // Seed each shard with a few initial events; each spawns a binary tree of
  // depth 12 (one remote + one local child per node), lasting ~1.3ms.
  for (std::size_t i = 0; i < ring.shards.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      ring.shards[i]->loop.schedule_at(
          SimTime::from_ns(k * 333 + static_cast<std::int64_t>(i) * 77),
          [&ring, i, k] { ring.bounce(i, static_cast<std::uint64_t>(k), 12); });
    }
  }
  ParallelExecutor ex(ring.executor_shards(), kLatency, threads);
  // Several calls with boundaries inside the active burst: the executor must
  // keep shards in lockstep across calls and pick up boundary arrivals on
  // the next call's first drain.
  const Duration chunk = Duration::micros(300);
  for (int c = 1; c <= 5; ++c) {
    ex.run_until(SimTime::from_ns(c * chunk.ns()));
  }
  ex.run_until(SimTime::from_ns(Duration::millis(10).ns()));  // drain fully
  std::vector<std::uint64_t> digests;
  for (auto& s : ring.shards) {
    EXPECT_GT(s->executed, 0u);
    EXPECT_EQ(s->loop.now(), SimTime::from_ns(Duration::millis(10).ns()));
    EXPECT_EQ(s->loop.pending(), 0u);
    digests.push_back(s->digest);
  }
  return digests;
}

TEST(ParallelExecutor, DigestsIdenticalAcrossThreadCounts) {
  const auto serial = run_ring(4, 1);
  EXPECT_EQ(run_ring(4, 2), serial);
  EXPECT_EQ(run_ring(4, 4), serial);
}

TEST(ParallelExecutor, SingleShardMatchesPlainLoop) {
  // A 1-shard executor is just run_until in lookahead-sized bites.
  EventLoop plain;
  std::vector<std::int64_t> plain_times;
  for (int i = 0; i < 200; ++i) {
    plain.schedule_at(SimTime::from_ns(i * 919),
                      [&plain_times, &plain] { plain_times.push_back(plain.now().ns()); });
  }
  plain.run_until(SimTime::from_ns(1000000));

  EventLoop sharded;
  std::vector<std::int64_t> sharded_times;
  for (int i = 0; i < 200; ++i) {
    sharded.schedule_at(SimTime::from_ns(i * 919), [&sharded_times, &sharded] {
      sharded_times.push_back(sharded.now().ns());
    });
  }
  ParallelExecutor ex({ParallelExecutor::Shard{&sharded, nullptr}},
                      Duration::micros(50), 1);
  ex.run_until(SimTime::from_ns(1000000));
  EXPECT_EQ(sharded_times, plain_times);
  EXPECT_EQ(sharded.now(), plain.now());
}

TEST(ParallelExecutor, RejectsNonPositiveLookahead) {
  EventLoop loop;
  EXPECT_THROW(ParallelExecutor({ParallelExecutor::Shard{&loop, nullptr}},
                                Duration::zero(), 1),
               std::logic_error);
}

}  // namespace
}  // namespace sttcp::sim
