#include "sim/trace.h"

#include <gtest/gtest.h>

#include "sim/event_loop.h"

namespace sttcp::sim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  EventLoop loop_;
  TraceRecorder trace_{loop_};
};

TEST_F(TraceTest, RecordsTimestampedEntries) {
  loop_.schedule_after(Duration::millis(5), [&] { trace_.record("a", "ev1"); });
  loop_.schedule_after(Duration::millis(10), [&] { trace_.record("b", "ev2", "x", 7); });
  loop_.run();
  ASSERT_EQ(trace_.entries().size(), 2u);
  EXPECT_EQ(trace_.entries()[0].at, SimTime::zero() + Duration::millis(5));
  EXPECT_EQ(trace_.entries()[1].component, "b");
  EXPECT_EQ(trace_.entries()[1].detail, "x");
  EXPECT_EQ(trace_.entries()[1].value, 7);
}

TEST_F(TraceTest, CountsByEventAndComponent) {
  trace_.record("p", "takeover");
  trace_.record("b", "takeover");
  trace_.record("b", "hb_loss");
  EXPECT_EQ(trace_.count("takeover"), 2u);
  EXPECT_EQ(trace_.count("b", "takeover"), 1u);
  EXPECT_EQ(trace_.count("p", "hb_loss"), 0u);
  EXPECT_EQ(trace_.count("missing"), 0u);
}

TEST_F(TraceTest, FirstAndLastTimes) {
  loop_.schedule_after(Duration::millis(1), [&] { trace_.record("a", "x"); });
  loop_.schedule_after(Duration::millis(9), [&] { trace_.record("a", "x"); });
  loop_.run();
  EXPECT_EQ(trace_.first_time("x").value(), SimTime::zero() + Duration::millis(1));
  EXPECT_EQ(trace_.last_time("x").value(), SimTime::zero() + Duration::millis(9));
  EXPECT_FALSE(trace_.first_time("y").has_value());
}

TEST_F(TraceTest, StrictlyBefore) {
  loop_.schedule_after(Duration::millis(1), [&] { trace_.record("a", "detect"); });
  loop_.schedule_after(Duration::millis(2), [&] { trace_.record("a", "recover"); });
  loop_.run();
  EXPECT_TRUE(trace_.strictly_before("detect", "recover"));
  EXPECT_FALSE(trace_.strictly_before("recover", "detect"));
  EXPECT_FALSE(trace_.strictly_before("missing", "recover"));
  // An event with no following counterpart is trivially before it.
  EXPECT_TRUE(trace_.strictly_before("detect", "missing"));
}

TEST_F(TraceTest, AllReturnsMatchingEntries) {
  trace_.record("a", "x", "one", 1);
  trace_.record("a", "y");
  trace_.record("b", "x", "two", 2);
  auto xs = trace_.all("x");
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0].value, 1);
  EXPECT_EQ(xs[1].value, 2);
}

TEST_F(TraceTest, DumpRendersEntries) {
  trace_.record("comp", "event", "detail", 3);
  const std::string d = trace_.dump();
  EXPECT_NE(d.find("comp"), std::string::npos);
  EXPECT_NE(d.find("event"), std::string::npos);
  EXPECT_NE(d.find("[detail]"), std::string::npos);
  EXPECT_NE(d.find("value=3"), std::string::npos);
}

TEST_F(TraceTest, ClearEmpties) {
  trace_.record("a", "x");
  trace_.clear();
  EXPECT_TRUE(trace_.entries().empty());
  EXPECT_EQ(trace_.count("x"), 0u);
}

}  // namespace
}  // namespace sttcp::sim
