#include "sim/time.h"

#include <gtest/gtest.h>

namespace sttcp::sim {
namespace {

TEST(DurationTest, UnitConstructors) {
  EXPECT_EQ(Duration::nanos(5).ns(), 5);
  EXPECT_EQ(Duration::micros(5).ns(), 5000);
  EXPECT_EQ(Duration::millis(5).ns(), 5000000);
  EXPECT_EQ(Duration::seconds(5).ns(), 5000000000LL);
  EXPECT_EQ(Duration::minutes(2).ns(), 120000000000LL);
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(0.2).ms(), 200);
  EXPECT_EQ(Duration::from_seconds(1.5).ms(), 1500);
  EXPECT_EQ(Duration::from_seconds(0.0000000015).ns(), 2);  // rounds to nearest
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::millis(100);
  const Duration b = Duration::millis(40);
  EXPECT_EQ((a + b).ms(), 140);
  EXPECT_EQ((a - b).ms(), 60);
  EXPECT_EQ((a * 3).ms(), 300);
  EXPECT_EQ((a / 4).ms(), 25);
  EXPECT_EQ(a / b, 2);  // integer ratio
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((Duration::zero() - Duration::nanos(1)).is_negative());
}

TEST(DurationTest, ToSeconds) {
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).to_millis(), 1500.0);
}

TEST(DurationTest, Str) {
  EXPECT_EQ(Duration::zero().str(), "0s");
  EXPECT_EQ(Duration::nanos(12).str(), "12ns");
  EXPECT_EQ(Duration::micros(3).str(), "3.000us");
  EXPECT_EQ(Duration::millis(250).str(), "250.000ms");
  EXPECT_EQ(Duration::seconds(2).str(), "2.000s");
}

TEST(SimTimeTest, EpochAndAdvance) {
  const SimTime t0 = SimTime::zero();
  const SimTime t1 = t0 + Duration::millis(5);
  EXPECT_EQ((t1 - t0).ms(), 5);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - Duration::millis(5)), t0);
}

TEST(SimTimeTest, NeverIsBeyondEverything) {
  EXPECT_TRUE(SimTime::never().is_never());
  EXPECT_LT(SimTime::zero() + Duration::seconds(1000000), SimTime::never());
  EXPECT_FALSE(SimTime::zero().is_never());
}

TEST(SimTimeTest, Str) {
  EXPECT_EQ((SimTime::zero() + Duration::millis(1500)).str(), "1.500000s");
}

}  // namespace
}  // namespace sttcp::sim
