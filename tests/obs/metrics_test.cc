// Unit tests for the obs instruments: log-linear histogram bucketing and
// merge, gauge extremes, counter snapshots, registry JSON shape.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

namespace sttcp::obs {
namespace {

TEST(HistogramTest, LinearRegionIsExact) {
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), static_cast<int>(v)) << "v=" << v;
    EXPECT_EQ(Histogram::bucket_lower_bound(static_cast<int>(v)), v);
  }
}

TEST(HistogramTest, BucketIndexIsMonotonicAndSelfConsistent) {
  int prev = -1;
  // Sweep powers of two and their neighbours across the full range.
  for (int oct = 3; oct < 63; ++oct) {
    for (std::uint64_t v :
         {(1ull << oct) - 1, 1ull << oct, (1ull << oct) + 1,
          (1ull << oct) + (1ull << (oct - 1))}) {
      const int i = Histogram::bucket_index(v);
      ASSERT_GE(i, prev - 1);  // non-decreasing over increasing values
      ASSERT_LT(i, Histogram::kBucketCount);
      // The bucket's lower bound maps back to the same bucket, and the
      // value is not below the lower bound.
      EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower_bound(i)), i);
      EXPECT_GE(v, Histogram::bucket_lower_bound(i));
      prev = i;
    }
  }
}

TEST(HistogramTest, OctaveSplitsIntoEightLinearSubBuckets) {
  // Octave [64, 128): sub-bucket width 8.
  EXPECT_EQ(Histogram::bucket_index(64), Histogram::bucket_index(71));
  EXPECT_NE(Histogram::bucket_index(71), Histogram::bucket_index(72));
  EXPECT_EQ(Histogram::bucket_index(127),
            Histogram::bucket_index(120));
  EXPECT_EQ(Histogram::bucket_index(128), Histogram::bucket_index(127) + 1);
}

TEST(HistogramTest, RelativeErrorBoundedByOneEighth) {
  for (std::uint64_t v : {100ull, 1'000ull, 123'456ull, 987'654'321ull,
                          (1ull << 40) + 12345}) {
    const std::uint64_t lb =
        Histogram::bucket_lower_bound(Histogram::bucket_index(v));
    EXPECT_LE(lb, v);
    EXPECT_GT(lb, v - v / 8 - 1) << "v=" << v;  // width <= 12.5%
  }
}

TEST(HistogramTest, RecordsAndSummarises) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // p50 lands within a bucket width of the true median.
  const std::uint64_t p50 = h.percentile(0.5);
  EXPECT_GE(p50, 44u);
  EXPECT_LE(p50, 56u);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_LE(h.percentile(1.0), 100u);
}

TEST(HistogramTest, MergeIsPointwiseSum) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.record(10);
  for (int i = 0; i < 50; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.sum(), 50u * 10 + 50u * 1000);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  // Median sits between the two modes; p90 in the upper mode.
  EXPECT_GE(a.percentile(0.9), 900u);
  EXPECT_LE(a.percentile(0.25), 10u);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a, b;
  b.record(42);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
  EXPECT_EQ(a.max(), 42u);
}

TEST(GaugeTest, TracksExtremes) {
  Gauge g;
  g.set(5);
  g.add(-8);
  g.set(12);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max(), 12);
  EXPECT_EQ(g.min(), -3);
  EXPECT_EQ(g.samples(), 3u);
}

TEST(CounterTest, IncAndSnapshot) {
  Counter c;
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  c.set(123);  // snapshot import overwrites
  EXPECT_EQ(c.value(), 123u);
}

TEST(MetricsRegistryTest, StableReferencesAndJson) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a.count");
  reg.counter("b.count").inc(7);
  c.inc(3);  // reference taken before the second insertion stays valid
  reg.gauge("q.depth").set(4);
  reg.histogram("lat_us").record(100);
  EXPECT_EQ(reg.counter("a.count").value(), 3u);

  const std::string js = reg.json();
  EXPECT_NE(js.find("\"a.count\":3"), std::string::npos) << js;
  EXPECT_NE(js.find("\"b.count\":7"), std::string::npos) << js;
  EXPECT_NE(js.find("\"q.depth\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"lat_us\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"timeline\""), std::string::npos) << js;
}

}  // namespace
}  // namespace sttcp::obs
