// PCAP golden tests: byte-exact file header, record round-trip through the
// independent reader, and an end-to-end capture of a real simulated TCP
// handshake via the Scenario frame tap.
#include "obs/pcap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "app/client.h"
#include "app/server.h"
#include "harness/scenario.h"

namespace sttcp::obs {
namespace {

std::vector<std::uint8_t> bytes_of(const std::ostringstream& out) {
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> fake_frame(std::size_t len, std::uint8_t fill) {
  return std::vector<std::uint8_t>(len, fill);
}

TEST(PcapWriterTest, FileHeaderIsByteExactLittleEndian) {
  std::ostringstream out;
  PcapWriter w(out);
  EXPECT_TRUE(w.ok());
  const auto b = bytes_of(out);
  ASSERT_EQ(b.size(), 24u);
  // Magic 0xa1b2c3d4 little-endian, version 2.4, zone/sigfigs 0,
  // snaplen 65535, network LINKTYPE_ETHERNET (1).
  const std::uint8_t golden[24] = {0xd4, 0xc3, 0xb2, 0xa1, 0x02, 0x00, 0x04, 0x00,
                                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                   0xff, 0xff, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00};
  for (int i = 0; i < 24; ++i) EXPECT_EQ(b[static_cast<size_t>(i)], golden[i]) << i;
}

TEST(PcapWriterTest, HandshakeRoundTripsThroughReader) {
  // A synthetic three-way handshake: two 74-byte SYN/SYN-ACK frames (MAC +
  // IP + TCP with options) and a 66-byte ACK, at 1 ms / 1.1 ms / 1.2 ms.
  std::ostringstream out;
  PcapWriter w(out);
  const sim::SimTime t0 = sim::SimTime::zero();
  w.record(t0 + sim::Duration::micros(1000), fake_frame(74, 0x01));
  w.record(t0 + sim::Duration::micros(1100), fake_frame(74, 0x02));
  w.record(t0 + sim::Duration::micros(1200), fake_frame(66, 0x03));
  EXPECT_EQ(w.frames_written(), 3u);
  w.flush();

  const auto parsed = PcapReader::parse(bytes_of(out));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->magic, kPcapMagic);
  EXPECT_EQ(parsed->version_major, kPcapVersionMajor);
  EXPECT_EQ(parsed->version_minor, kPcapVersionMinor);
  EXPECT_EQ(parsed->snaplen, kPcapSnapLen);
  EXPECT_EQ(parsed->linktype, kLinkTypeEthernet);
  ASSERT_EQ(parsed->records.size(), 3u);
  EXPECT_EQ(parsed->records[0].frame.size(), 74u);
  EXPECT_EQ(parsed->records[1].frame.size(), 74u);
  EXPECT_EQ(parsed->records[2].frame.size(), 66u);
  EXPECT_EQ(parsed->records[0].ts_ns, 1'000'000);
  EXPECT_EQ(parsed->records[1].ts_ns, 1'100'000);
  EXPECT_EQ(parsed->records[2].ts_ns, 1'200'000);
  EXPECT_EQ(parsed->records[0].frame[0], 0x01);
  EXPECT_EQ(parsed->records[2].frame[0], 0x03);
}

TEST(PcapReaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(PcapReader::parse({}).has_value());
  const auto junk = fake_frame(24, 0xee);
  EXPECT_FALSE(PcapReader::parse(junk).has_value());  // bad magic
  // Truncated record: valid header then half a record header.
  std::ostringstream out;
  PcapWriter w(out);
  w.record(sim::SimTime::zero(), fake_frame(60, 0));
  auto b = bytes_of(out);
  b.resize(b.size() - 30);
  EXPECT_FALSE(PcapReader::parse(b).has_value());
}

TEST(PcapScenarioTest, CapturesARealHandshakeToDisk) {
  const std::string path = ::testing::TempDir() + "sttcp_handshake.pcap";
  {
    harness::ScenarioConfig cfg;
    cfg.pcap_path = path;
    harness::Scenario sc(std::move(cfg));
    app::FileServer p_app(sc.primary_stack(), sc.service_port(), 100'000);
    app::FileServer b_app(sc.backup_stack(), sc.service_port(), 100'000);
    app::DownloadClient::Options opt;
    opt.expected_bytes = 100'000;
    app::DownloadClient client(sc.client_stack(), sc.client_ip(),
                               {sc.connect_addr()}, opt);
    client.start();
    sc.run_for(sim::Duration::seconds(2));
    ASSERT_TRUE(client.complete());
    ASSERT_NE(sc.pcap(), nullptr);
    EXPECT_GT(sc.pcap()->frames_written(), 3u);
    sc.pcap()->flush();

    const auto parsed = PcapReader::parse_file(path);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->magic, kPcapMagic);
    EXPECT_EQ(parsed->linktype, kLinkTypeEthernet);
    EXPECT_EQ(parsed->records.size(), sc.pcap()->frames_written());
    std::int64_t prev_ts = -1;
    for (const PcapRecord& r : parsed->records) {
      EXPECT_GE(r.frame.size(), 12u);  // at least the Ethernet MAC pair
      EXPECT_LE(r.frame.size(), kPcapSnapLen);
      EXPECT_GE(r.ts_ns, prev_ts);  // switch-ingress order == time order
      prev_ts = r.ts_ns;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sttcp::obs
