// FailoverTimeline: milestone ordering, first-wins semantics, heartbeat
// freeze, client-byte gating, and the segment decomposition.
#include "obs/timeline.h"

#include <gtest/gtest.h>

namespace sttcp::obs {
namespace {

sim::SimTime at_ms(std::int64_t ms) {
  return sim::SimTime::zero() + sim::Duration::millis(ms);
}

TEST(FailoverTimelineTest, MarksAreFirstWins) {
  FailoverTimeline tl;
  tl.mark(Milestone::kFaultInjected, at_ms(100));
  tl.mark(Milestone::kFaultInjected, at_ms(200));  // ignored
  ASSERT_TRUE(tl.at(Milestone::kFaultInjected).has_value());
  EXPECT_EQ(*tl.at(Milestone::kFaultInjected), at_ms(100));
}

TEST(FailoverTimelineTest, HeartbeatFreezesAtChannelDead) {
  FailoverTimeline tl;
  tl.heartbeat_seen(at_ms(10));
  tl.heartbeat_seen(at_ms(20));  // overwrites while channel alive
  EXPECT_EQ(*tl.at(Milestone::kLastHeartbeat), at_ms(20));
  tl.mark(Milestone::kChannelDead, at_ms(50));
  tl.heartbeat_seen(at_ms(60));  // frozen: stale beat after conviction
  EXPECT_EQ(*tl.at(Milestone::kLastHeartbeat), at_ms(20));
}

TEST(FailoverTimelineTest, ClientByteGatedOnTakeover) {
  FailoverTimeline tl;
  tl.client_byte(at_ms(5));  // before takeover: ignored
  EXPECT_FALSE(tl.at(Milestone::kFirstByteAfterTakeover).has_value());
  tl.mark(Milestone::kTakeover, at_ms(100));
  tl.client_byte(at_ms(150));
  tl.client_byte(at_ms(160));  // first wins
  EXPECT_EQ(*tl.at(Milestone::kFirstByteAfterTakeover), at_ms(150));
}

TEST(FailoverTimelineTest, SegmentsDecomposeAndSum) {
  FailoverTimeline tl;
  EXPECT_FALSE(tl.complete());
  EXPECT_FALSE(tl.segments().has_value());

  tl.mark(Milestone::kFaultInjected, at_ms(1000));
  tl.mark(Milestone::kChannelDead, at_ms(1600));
  tl.mark(Milestone::kStonith, at_ms(1601));
  tl.mark(Milestone::kTakeover, at_ms(1650));
  EXPECT_FALSE(tl.complete());
  tl.client_byte(at_ms(1900));
  ASSERT_TRUE(tl.complete());

  const auto seg = tl.segments();
  ASSERT_TRUE(seg.has_value());
  EXPECT_DOUBLE_EQ(seg->detection_ms, 600.0);
  EXPECT_DOUBLE_EQ(seg->takeover_ms, 50.0);
  EXPECT_DOUBLE_EQ(seg->retransmission_ms, 250.0);
  EXPECT_DOUBLE_EQ(seg->total_ms, 900.0);
  EXPECT_DOUBLE_EQ(seg->detection_ms + seg->takeover_ms + seg->retransmission_ms,
                   seg->total_ms);
}

TEST(FailoverTimelineTest, MilestonesAppearInCausalOrder) {
  // The marks a real failover produces satisfy fault <= last_hb+period <=
  // dead <= stonith <= takeover <= first_byte; segments() relies on it.
  FailoverTimeline tl;
  tl.mark(Milestone::kFaultInjected, at_ms(10));
  tl.heartbeat_seen(at_ms(12));
  tl.mark(Milestone::kChannelDead, at_ms(40));
  tl.mark(Milestone::kStonith, at_ms(41));
  tl.mark(Milestone::kTakeover, at_ms(42));
  tl.client_byte(at_ms(60));
  sim::SimTime prev = sim::SimTime::zero();
  for (Milestone m : {Milestone::kFaultInjected, Milestone::kChannelDead,
                      Milestone::kStonith, Milestone::kTakeover,
                      Milestone::kFirstByteAfterTakeover}) {
    ASSERT_TRUE(tl.at(m).has_value()) << to_string(m);
    EXPECT_GE(*tl.at(m), prev) << to_string(m);
    prev = *tl.at(m);
  }
}

TEST(FailoverTimelineTest, ResetClearsEverything) {
  FailoverTimeline tl;
  tl.mark(Milestone::kFaultInjected, at_ms(1));
  tl.mark(Milestone::kTakeover, at_ms(2));
  tl.reset();
  for (int i = 0; i < static_cast<int>(Milestone::kCount); ++i) {
    EXPECT_FALSE(tl.at(static_cast<Milestone>(i)).has_value());
  }
}

TEST(FailoverTimelineTest, JsonCarriesMilestonesAndSegments) {
  FailoverTimeline tl;
  tl.mark(Milestone::kFaultInjected, at_ms(1000));
  std::string js = tl.json();
  EXPECT_NE(js.find("\"fault_injected\":1000"), std::string::npos) << js;
  EXPECT_EQ(js.find("segments_ms"), std::string::npos) << js;  // incomplete

  tl.mark(Milestone::kChannelDead, at_ms(1500));
  tl.mark(Milestone::kTakeover, at_ms(1550));
  tl.client_byte(at_ms(1800));
  js = tl.json();
  EXPECT_NE(js.find("\"segments_ms\""), std::string::npos) << js;
  EXPECT_NE(js.find("\"total\":800"), std::string::npos) << js;
}

}  // namespace
}  // namespace sttcp::obs
