// Router unit tests: longest-prefix match, TTL handling, local ICMP echo
// termination, crash/restore, and drop accounting.
#include "net/router.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/headers.h"
#include "sim/world.h"

namespace sttcp {
namespace {

using net::Ipv4Addr;
using net::MacAddr;
using net::Route;
using net::Router;
using net::RoutingTable;

TEST(RoutingTable, LongestPrefixWinsAmongOverlaps) {
  RoutingTable t;
  t.add({Ipv4Addr{10, 0, 0, 0}, 8, 1, Ipv4Addr()});
  t.add({Ipv4Addr{10, 1, 0, 0}, 16, 2, Ipv4Addr()});
  t.add({Ipv4Addr{10, 1, 2, 0}, 24, 3, Ipv4Addr()});

  ASSERT_NE(t.lookup(Ipv4Addr{10, 9, 9, 9}), nullptr);
  EXPECT_EQ(t.lookup(Ipv4Addr{10, 9, 9, 9})->port, 1);
  EXPECT_EQ(t.lookup(Ipv4Addr{10, 1, 9, 9})->port, 2);
  EXPECT_EQ(t.lookup(Ipv4Addr{10, 1, 2, 9})->port, 3);
}

TEST(RoutingTable, DefaultRouteCatchesEverythingElse) {
  RoutingTable t;
  t.add({Ipv4Addr{10, 1, 0, 0}, 16, 2, Ipv4Addr()});
  t.add({Ipv4Addr{0, 0, 0, 0}, 0, 7, Ipv4Addr{192, 168, 0, 1}});

  const Route* r = t.lookup(Ipv4Addr{8, 8, 8, 8});
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->port, 7);
  EXPECT_EQ(r->next_hop, (Ipv4Addr{192, 168, 0, 1}));
  EXPECT_EQ(t.lookup(Ipv4Addr{10, 1, 5, 5})->port, 2);
}

TEST(RoutingTable, NoRouteReturnsNull) {
  RoutingTable t;
  t.add({Ipv4Addr{10, 1, 0, 0}, 16, 2, Ipv4Addr()});
  EXPECT_EQ(t.lookup(Ipv4Addr{172, 16, 0, 1}), nullptr);
}

TEST(RoutingTable, EqualLengthPrefixesFirstAddedWins) {
  RoutingTable t;
  t.add({Ipv4Addr{10, 1, 0, 0}, 16, 2, Ipv4Addr()});
  t.add({Ipv4Addr{10, 1, 0, 0}, 16, 5, Ipv4Addr()});
  EXPECT_EQ(t.lookup(Ipv4Addr{10, 1, 3, 3})->port, 2);
}

/// Captures frames a router emits out of a link.
struct CaptureSink final : net::FrameSink {
  std::vector<net::Bytes> frames;
  void deliver_frame(net::Frame frame) override {
    frames.emplace_back(frame.view().begin(), frame.view().end());
  }
};

/// Two-port router with a test harness holding the far side of both links.
struct RouterRig {
  RouterRig()
      : world(1),
        router(world, "core"),
        left(world, sim::Duration::micros(10), 0),
        right(world, sim::Duration::micros(10), 0) {
    router.add_port(left.port(0), MacAddr::from_u64(0xf0), Ipv4Addr{10, 0, 0, 254});
    router.add_port(right.port(0), MacAddr::from_u64(0xf1), Ipv4Addr{10, 1, 0, 254});
    router.add_connected(Ipv4Addr{10, 0, 0, 0}, 24, 0);
    router.add_connected(Ipv4Addr{10, 1, 0, 0}, 24, 1);
    router.arp_set(0, Ipv4Addr{10, 0, 0, 1}, MacAddr::from_u64(0x01));
    router.arp_set(1, Ipv4Addr{10, 1, 0, 1}, MacAddr::from_u64(0x02));
    left.port(1).set_sink(&left_side);
    right.port(1).set_sink(&right_side);
  }

  /// A raw IP frame addressed (L2) to the router's left port.
  net::Bytes make_frame(Ipv4Addr src, Ipv4Addr dst, std::uint8_t ttl) {
    net::Bytes out;
    net::ByteWriter w(out);
    net::EthernetHeader{router.port_mac(0), MacAddr::from_u64(0x01),
                        net::kEtherTypeIpv4}
        .write(w);
    net::Ipv4Header ip;
    ip.src = src;
    ip.dst = dst;
    ip.ttl = ttl;
    ip.protocol = 250;  // payloadless experimental protocol
    ip.write(w, 0);
    return out;
  }

  void run() { world.loop().run_for(sim::Duration::millis(1)); }

  sim::World world;
  Router router;
  net::Link left, right;
  CaptureSink left_side, right_side;
};

TEST(Router, ForwardsAcrossSubnetsAndDecrementsTtl) {
  RouterRig rig;
  rig.left.port(1).send(net::Frame(
      rig.make_frame(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 1, 0, 1}, 64)));
  rig.run();

  ASSERT_EQ(rig.right_side.frames.size(), 1u);
  const net::ParsedFrame p = net::parse_frame(net::BytesView(
      rig.right_side.frames[0].data(), rig.right_side.frames[0].size()));
  ASSERT_TRUE(p.ip.has_value());
  EXPECT_EQ(p.ip->ttl, 63);  // decremented, checksum rewritten (parse verifies)
  EXPECT_EQ(p.eth.dst, MacAddr::from_u64(0x02));
  EXPECT_EQ(p.eth.src, rig.router.port_mac(1));
  EXPECT_EQ(rig.router.stats().forwarded, 1u);
}

TEST(Router, TtlExpiryDropsAndCounts) {
  RouterRig rig;
  rig.left.port(1).send(net::Frame(
      rig.make_frame(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 1, 0, 1}, 1)));
  rig.run();

  EXPECT_TRUE(rig.right_side.frames.empty());
  EXPECT_EQ(rig.router.stats().ttl_expired, 1u);
  EXPECT_EQ(rig.router.stats().forwarded, 0u);
  EXPECT_EQ(rig.world.trace().count("ttl_expired"), 1u);
}

TEST(Router, NoRouteDropsAndCounts) {
  RouterRig rig;
  rig.left.port(1).send(net::Frame(
      rig.make_frame(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{172, 16, 0, 1}, 64)));
  rig.run();

  EXPECT_TRUE(rig.right_side.frames.empty());
  EXPECT_EQ(rig.router.stats().no_route, 1u);
}

TEST(Router, ArpMissDropsAndCounts) {
  RouterRig rig;
  rig.left.port(1).send(net::Frame(
      rig.make_frame(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 1, 0, 99}, 64)));
  rig.run();

  EXPECT_TRUE(rig.right_side.frames.empty());
  EXPECT_EQ(rig.router.stats().arp_miss, 1u);
}

TEST(Router, AnswersIcmpEchoOnItsInterfaceIp) {
  RouterRig rig;
  const net::IcmpEcho echo{net::IcmpType::kEchoRequest, 7, 1};
  net::Bytes frame = net::build_ip_frame(
      rig.router.port_mac(0), MacAddr::from_u64(0x01), Ipv4Addr{10, 0, 0, 1},
      Ipv4Addr{10, 0, 0, 254}, net::kIpProtoIcmp, echo.serialize());
  rig.left.port(1).send(net::Frame(std::move(frame)));
  rig.run();

  ASSERT_EQ(rig.left_side.frames.size(), 1u);
  const net::ParsedFrame p = net::parse_frame(net::BytesView(
      rig.left_side.frames[0].data(), rig.left_side.frames[0].size()));
  ASSERT_TRUE(p.ip.has_value());
  EXPECT_EQ(p.ip->src, (Ipv4Addr{10, 0, 0, 254}));
  EXPECT_EQ(p.ip->dst, (Ipv4Addr{10, 0, 0, 1}));
  const auto reply = net::IcmpEcho::parse(p.l4);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::IcmpType::kEchoReply);
  EXPECT_EQ(reply->id, 7);
  EXPECT_EQ(rig.router.stats().delivered_local, 1u);
}

TEST(Router, CrashDropsEverythingUntilRestore) {
  RouterRig rig;
  rig.router.crash();
  rig.left.port(1).send(net::Frame(
      rig.make_frame(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 1, 0, 1}, 64)));
  rig.run();
  EXPECT_TRUE(rig.right_side.frames.empty());
  EXPECT_EQ(rig.router.stats().dropped_down, 1u);

  rig.router.restore();
  rig.left.port(1).send(net::Frame(
      rig.make_frame(Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 1, 0, 1}, 64)));
  rig.run();
  EXPECT_EQ(rig.right_side.frames.size(), 1u);
  EXPECT_EQ(rig.router.stats().forwarded, 1u);
}

}  // namespace
}  // namespace sttcp
