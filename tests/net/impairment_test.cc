#include "net/impairment.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/checksum.h"
#include "net/headers.h"
#include "net/link.h"
#include "sim/world.h"

namespace sttcp::net {
namespace {

class CollectSink final : public FrameSink {
 public:
  explicit CollectSink(sim::World& world) : world_(world) {}
  void deliver_frame(Frame frame) override {
    frames.push_back(std::move(frame));
    times.push_back(world_.now());
  }
  std::vector<Frame> frames;
  std::vector<sim::SimTime> times;

 private:
  sim::World& world_;
};

Bytes tagged_frame(std::size_t n, std::uint8_t tag) {
  Bytes b(n, 0xab);
  b[EthernetHeader::kSize] = tag;  // tag survives: flips land past the MAC area
  return b;
}

int bit_differences(const Frame& a, BytesView b) {
  if (a.size() != b.size()) return -1;
  int bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits += __builtin_popcount(static_cast<unsigned>(a[i] ^ b[i]));
  }
  return bits;
}

TEST(ImpairmentTest, IdleEngineIsPassThrough) {
  Impairment imp{sim::Rng(7)};
  EXPECT_FALSE(imp.active());
  const Bytes original = tagged_frame(100, 1);
  Impairment::Plan p = imp.plan(0, Frame(Bytes(original)));
  EXPECT_FALSE(p.drop);
  EXPECT_FALSE(p.reordered);
  EXPECT_EQ(p.copies, 1);
  EXPECT_TRUE(p.extra_delay.is_zero());
  EXPECT_EQ(bit_differences(p.frame, original), 0);
}

TEST(ImpairmentTest, CorruptionFlipsExactlyOneBitViaCopyOnWrite) {
  Impairment imp{sim::Rng(11)};
  imp.config().corrupt_probability = 1.0;
  std::size_t tapped_offset = 0;
  int taps = 0;
  imp.set_corrupt_tap([&](const Frame&, std::size_t off) {
    tapped_offset = off;
    ++taps;
  });
  for (int i = 0; i < 100; ++i) {
    const Bytes original = tagged_frame(120, static_cast<std::uint8_t>(i));
    const Frame before{Bytes(original)};  // second holder of the shared buffer
    Impairment::Plan p = imp.plan(0, before);
    EXPECT_EQ(bit_differences(p.frame, original), 1);
    // Copy-on-write: the pre-existing holder still sees the original bytes.
    EXPECT_EQ(bit_differences(before, original), 0);
    // Flips never land in the Ethernet MAC/ethertype area: a real NIC drops
    // an FCS-failing frame there, it does not mis-deliver it.
    ASSERT_EQ(taps, i + 1);
    EXPECT_GE(tapped_offset, EthernetHeader::kSize);
    EXPECT_LT(tapped_offset, original.size());
  }
  EXPECT_EQ(imp.stats().corrupted, 100u);
}

TEST(ImpairmentTest, SingleBitFlipAlwaysBreaksInternetChecksum) {
  Impairment imp{sim::Rng(13)};
  imp.config().corrupt_probability = 1.0;
  sim::Rng payload_rng(99);
  for (int i = 0; i < 300; ++i) {
    Bytes original(EthernetHeader::kSize + 2 + payload_rng.below(200), 0);
    for (auto& byte : original) {
      byte = static_cast<std::uint8_t>(payload_rng.next_u64());
    }
    const std::uint16_t before = internet_checksum(
        BytesView(original).subspan(EthernetHeader::kSize));
    Impairment::Plan p = imp.plan(0, Frame(Bytes(original)));
    const std::uint16_t after =
        internet_checksum(p.frame.view().subspan(EthernetHeader::kSize));
    // A one-bit flip shifts the ones'-complement sum by ±2^k, which never
    // cancels mod 0xffff — this is what makes 1-bit corruption provably
    // detectable by the IP/UDP/TCP checksums.
    EXPECT_NE(before, after) << "trial " << i;
  }
}

TEST(ImpairmentTest, GilbertElliottLossComesInBursts) {
  Impairment imp{sim::Rng(17)};
  imp.config().burst_p_enter = 0.05;
  imp.config().burst_p_exit = 0.3;
  imp.config().burst_loss = 1.0;
  const int n = 20000;
  int dropped = 0, runs = 0;
  bool in_run = false;
  for (int i = 0; i < n; ++i) {
    Impairment::Plan p = imp.plan(0, Frame(tagged_frame(60, 0)));
    if (p.drop) {
      ++dropped;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      in_run = false;
    }
  }
  EXPECT_EQ(imp.stats().burst_dropped, static_cast<std::uint64_t>(dropped));
  // Stationary loss ~ p_enter/(p_enter+p_exit) = 1/7; mean burst ~ 1/p_exit.
  const double loss = static_cast<double>(dropped) / n;
  EXPECT_GT(loss, 0.08);
  EXPECT_LT(loss, 0.22);
  ASSERT_GT(runs, 0);
  const double mean_burst = static_cast<double>(dropped) / runs;
  EXPECT_GT(mean_burst, 2.0);
  EXPECT_LT(mean_burst, 5.0);
}

TEST(ImpairmentTest, DuplicateOccupiesTheWireTwice) {
  sim::World w(1);
  // 1 Mbps: a 1250-byte frame takes exactly 10 ms to serialize.
  Link link(w, sim::Duration::zero(), 1'000'000);
  link.impairment().config().duplicate_probability = 1.0;
  CollectSink b(w);
  link.port(1).set_sink(&b);
  link.port(0).send(tagged_frame(1250, 7));
  w.loop().run();
  ASSERT_EQ(b.frames.size(), 2u);
  EXPECT_EQ(bit_differences(b.frames[0], b.frames[1].view()), 0);
  EXPECT_EQ(b.times[0], sim::SimTime::zero() + sim::Duration::millis(10));
  EXPECT_EQ(b.times[1], sim::SimTime::zero() + sim::Duration::millis(20));
  EXPECT_EQ(link.stats().frames_sent, 2u);
  EXPECT_EQ(link.stats().frames_delivered, 2u);
}

TEST(ImpairmentTest, ReorderedFramesAreOvertaken) {
  sim::World w(3);
  Link link(w, sim::Duration::millis(1), 0);
  link.impairment().config().reorder_probability = 0.2;
  link.impairment().config().reorder_delay = sim::Duration::millis(2);
  CollectSink b(w);
  link.port(1).set_sink(&b);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    w.loop().schedule_after(sim::Duration::micros(100 * i), [&link, i] {
      link.port(0).send(tagged_frame(60, static_cast<std::uint8_t>(i)));
    });
  }
  w.loop().run();
  ASSERT_EQ(b.frames.size(), static_cast<std::size_t>(n));
  EXPECT_GT(link.impairment().stats().reordered, 0u);
  int out_of_order = 0;
  for (std::size_t i = 1; i < b.frames.size(); ++i) {
    if (b.frames[i][EthernetHeader::kSize] <
        b.frames[i - 1][EthernetHeader::kSize]) {
      ++out_of_order;
    }
  }
  EXPECT_GT(out_of_order, 0) << "reordered frames never actually overtook";
}

TEST(ImpairmentTest, JitterNeverReordersByItself) {
  sim::World w(5);
  Link link(w, sim::Duration::millis(1), 0);
  link.impairment().config().jitter_max = sim::Duration::micros(500);
  CollectSink b(w);
  link.port(1).set_sink(&b);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    w.loop().schedule_after(sim::Duration::micros(i), [&link, i] {
      link.port(0).send(tagged_frame(60, static_cast<std::uint8_t>(i)));
    });
  }
  w.loop().run();
  ASSERT_EQ(b.frames.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < b.frames.size(); ++i) {
    EXPECT_EQ(b.frames[i][EthernetHeader::kSize],
              static_cast<std::uint8_t>(i & 0xff));
    EXPECT_GE(b.times[i], b.times[i - 1]);
  }
}

TEST(ImpairmentTest, SameSeedSameImpairmentDecisions) {
  auto run = [](std::uint64_t seed) {
    sim::World w(seed);
    Link link(w, sim::Duration::micros(50), 100'000'000);
    Impairment& imp = link.impairment();
    imp.config().corrupt_probability = 0.05;
    imp.config().duplicate_probability = 0.05;
    imp.config().reorder_probability = 0.05;
    imp.config().reorder_delay = sim::Duration::millis(1);
    imp.config().burst_p_enter = 0.02;
    imp.config().burst_p_exit = 0.3;
    imp.config().jitter_max = sim::Duration::micros(200);
    CollectSink b(w);
    link.port(1).set_sink(&b);
    for (int i = 0; i < 500; ++i) {
      w.loop().schedule_after(sim::Duration::micros(10 * i), [&link, i] {
        link.port(0).send(tagged_frame(200, static_cast<std::uint8_t>(i)));
      });
    }
    w.loop().run();
    std::vector<std::pair<std::int64_t, Bytes>> out;
    out.reserve(b.frames.size());
    for (std::size_t i = 0; i < b.frames.size(); ++i) {
      out.emplace_back(b.times[i].ns(), b.frames[i].clone());
    }
    return out;
  };
  const auto a = run(42);
  const auto c = run(42);
  const auto d = run(43);
  EXPECT_EQ(a, c) << "same seed must give a bit-identical delivery sequence";
  EXPECT_NE(a, d) << "different seed should perturb the impairments";
}

}  // namespace
}  // namespace sttcp::net
