#include "net/checksum.h"

#include <gtest/gtest.h>

namespace sttcp::net {
namespace {

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // One's-complement sum is 0xddf2; checksum is its complement.
  EXPECT_EQ(internet_checksum(BytesView(data, sizeof(data))),
            static_cast<std::uint16_t>(~0xddf2));
}

TEST(ChecksumTest, VerifyRoundTrip) {
  Bytes data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11};
  const std::uint16_t ck = internet_checksum(data);
  // Insert the checksum and re-sum: must be zero.
  data.push_back(static_cast<std::uint8_t>(ck >> 8));
  data.push_back(static_cast<std::uint8_t>(ck));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const std::uint8_t odd[] = {0xab, 0xcd, 0xef};
  const std::uint8_t padded[] = {0xab, 0xcd, 0xef, 0x00};
  EXPECT_EQ(internet_checksum(BytesView(odd, 3)), internet_checksum(BytesView(padded, 4)));
}

TEST(ChecksumTest, EmptyBufferIsAllOnesComplement) {
  EXPECT_EQ(internet_checksum(BytesView()), 0xffff);
}

TEST(ChecksumTest, AccumulatorSplitInvariance) {
  // Checksumming in chunks (even at odd offsets) must equal one pass.
  Bytes data;
  for (int i = 0; i < 33; ++i) data.push_back(static_cast<std::uint8_t>(i * 7 + 1));
  const std::uint16_t whole = internet_checksum(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    ChecksumAccumulator acc;
    acc.add(BytesView(data).subspan(0, split));
    acc.add(BytesView(data).subspan(split));
    EXPECT_EQ(acc.finish(), whole) << "split at " << split;
  }
}

TEST(ChecksumTest, TransportChecksumDetectsCorruption) {
  const Ipv4Addr src(10, 0, 0, 1);
  const Ipv4Addr dst(10, 0, 0, 2);
  Bytes seg = {0x04, 0xd2, 0x00, 0x50, 0x00, 0x0a, 0x00, 0x00, 0xde, 0xad};
  // Compute and embed a checksum at offset 6..7 (UDP-style layout).
  seg[6] = 0;
  seg[7] = 0;
  const std::uint16_t ck = transport_checksum(src, dst, 17, seg);
  seg[6] = static_cast<std::uint8_t>(ck >> 8);
  seg[7] = static_cast<std::uint8_t>(ck);
  EXPECT_EQ(transport_checksum(src, dst, 17, seg), 0);
  // Flip a payload bit: verification must fail.
  seg[8] ^= 0x01;
  EXPECT_NE(transport_checksum(src, dst, 17, seg), 0);
  seg[8] ^= 0x01;
  // Wrong pseudo-header (different destination) must also fail.
  EXPECT_NE(transport_checksum(src, Ipv4Addr(10, 0, 0, 3), 17, seg), 0);
}

}  // namespace
}  // namespace sttcp::net
