#include "net/checksum.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace sttcp::net {
namespace {

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // One's-complement sum is 0xddf2; checksum is its complement.
  EXPECT_EQ(internet_checksum(BytesView(data, sizeof(data))),
            static_cast<std::uint16_t>(~0xddf2));
}

TEST(ChecksumTest, VerifyRoundTrip) {
  Bytes data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11};
  const std::uint16_t ck = internet_checksum(data);
  // Insert the checksum and re-sum: must be zero.
  data.push_back(static_cast<std::uint8_t>(ck >> 8));
  data.push_back(static_cast<std::uint8_t>(ck));
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const std::uint8_t odd[] = {0xab, 0xcd, 0xef};
  const std::uint8_t padded[] = {0xab, 0xcd, 0xef, 0x00};
  EXPECT_EQ(internet_checksum(BytesView(odd, 3)), internet_checksum(BytesView(padded, 4)));
}

TEST(ChecksumTest, EmptyBufferIsAllOnesComplement) {
  EXPECT_EQ(internet_checksum(BytesView()), 0xffff);
}

TEST(ChecksumTest, AccumulatorSplitInvariance) {
  // Checksumming in chunks (even at odd offsets) must equal one pass.
  Bytes data;
  for (int i = 0; i < 33; ++i) data.push_back(static_cast<std::uint8_t>(i * 7 + 1));
  const std::uint16_t whole = internet_checksum(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    ChecksumAccumulator acc;
    acc.add(BytesView(data).subspan(0, split));
    acc.add(BytesView(data).subspan(split));
    EXPECT_EQ(acc.finish(), whole) << "split at " << split;
  }
}

TEST(ChecksumTest, TransportChecksumDetectsCorruption) {
  const Ipv4Addr src(10, 0, 0, 1);
  const Ipv4Addr dst(10, 0, 0, 2);
  Bytes seg = {0x04, 0xd2, 0x00, 0x50, 0x00, 0x0a, 0x00, 0x00, 0xde, 0xad};
  // Compute and embed a checksum at offset 6..7 (UDP-style layout).
  seg[6] = 0;
  seg[7] = 0;
  const std::uint16_t ck = transport_checksum(src, dst, 17, seg);
  seg[6] = static_cast<std::uint8_t>(ck >> 8);
  seg[7] = static_cast<std::uint8_t>(ck);
  EXPECT_EQ(transport_checksum(src, dst, 17, seg), 0);
  // Flip a payload bit: verification must fail.
  seg[8] ^= 0x01;
  EXPECT_NE(transport_checksum(src, dst, 17, seg), 0);
  seg[8] ^= 0x01;
  // Wrong pseudo-header (different destination) must also fail.
  EXPECT_NE(transport_checksum(src, Ipv4Addr(10, 0, 0, 3), 17, seg), 0);
}

TEST(ChecksumTest, IncrementalUpdateRfc1624Example) {
  // RFC 1624 §4: a header whose checksum field is 0xdd2f has the 16-bit
  // word 0x5555 replaced by 0x3285; Eqn. 3 yields 0x0000 (where the broken
  // RFC 1141 arithmetic yields 0xffff).
  EXPECT_EQ(checksum_update(0xdd2f, 0x5555, 0x3285), 0x0000);
}

TEST(ChecksumTest, IncrementalUpdateMatchesFullRecompute) {
  // Randomized equivalence against the full RFC 1071 sum: mutate one
  // aligned 16-bit word of a random buffer and require bit-identical
  // checksums from both paths. The buffers all have a nonzero sum (the
  // condition under which Eqn. 3 is exact; transport checksums always
  // satisfy it via the pseudo-header's protocol word).
  sim::Rng rng(0x1624);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t words = 1 + rng.below(64);
    Bytes data(words * 2);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    data[0] |= 1;  // nonzero sum
    const std::uint16_t hc = internet_checksum(data);

    const std::size_t at = 2 * rng.below(words);
    const std::uint16_t old_word =
        static_cast<std::uint16_t>((data[at] << 8) | data[at + 1]);
    const std::uint16_t new_word = static_cast<std::uint16_t>(rng.next_u64());
    data[at] = static_cast<std::uint8_t>(new_word >> 8);
    data[at + 1] = static_cast<std::uint8_t>(new_word);

    EXPECT_EQ(checksum_update(hc, old_word, new_word), internet_checksum(data))
        << "iter " << iter << " words=" << words << " at=" << at;
  }
}

TEST(ChecksumTest, IncrementalUpdate32MatchesFullRecompute) {
  sim::Rng rng(0x162432);
  for (int iter = 0; iter < 1000; ++iter) {
    Bytes data(40);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    data[0] |= 1;
    const std::uint16_t hc = internet_checksum(data);
    const std::size_t at = 4 * rng.below(10);
    std::uint32_t old_word = 0, new_word = static_cast<std::uint32_t>(rng.next_u64());
    for (int i = 0; i < 4; ++i) old_word = (old_word << 8) | data[at + i];
    for (int i = 0; i < 4; ++i) {
      data[at + i] = static_cast<std::uint8_t>(new_word >> (24 - 8 * i));
    }
    EXPECT_EQ(checksum_update32(hc, old_word, new_word), internet_checksum(data))
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace sttcp::net
