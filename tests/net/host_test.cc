#include "net/host.h"

#include <gtest/gtest.h>

#include "tests/net/testnet.h"

namespace sttcp::net {
namespace {

using sttcp::testing::TestNet;

class HostTest : public ::testing::Test {
 protected:
  HostTest() {
    net_.add_host("alice", 1);
    net_.add_host("bob", 2);
  }
  TestNet net_;
};

TEST_F(HostTest, UdpSendAndReceive) {
  Bytes got;
  Ipv4Addr from;
  std::uint16_t from_port = 0;
  net_.host(1).udp_bind(7000, [&](Ipv4Addr src, std::uint16_t sport, BytesView p) {
    from = src;
    from_port = sport;
    got = to_bytes(p);
  });
  net_.host(0).udp_send(net_.ip(0), 5555, net_.ip(1), 7000, to_bytes("ping!"));
  net_.run_for(sim::Duration::millis(10));
  EXPECT_EQ(got, to_bytes("ping!"));
  EXPECT_EQ(from, net_.ip(0));
  EXPECT_EQ(from_port, 5555);
}

TEST_F(HostTest, UdpToUnboundPortIsDropped) {
  net_.host(0).udp_send(net_.ip(0), 5555, net_.ip(1), 9999, to_bytes("x"));
  net_.run_for(sim::Duration::millis(10));
  EXPECT_EQ(net_.host(1).stats().packets_in, 1u);  // received, no handler
}

TEST_F(HostTest, UdpUnbindStopsDelivery) {
  int count = 0;
  net_.host(1).udp_bind(7000, [&](Ipv4Addr, std::uint16_t, BytesView) { ++count; });
  net_.host(0).udp_send(net_.ip(0), 1, net_.ip(1), 7000, to_bytes("a"));
  net_.run_for(sim::Duration::millis(5));
  net_.host(1).udp_unbind(7000);
  net_.host(0).udp_send(net_.ip(0), 1, net_.ip(1), 7000, to_bytes("b"));
  net_.run_for(sim::Duration::millis(5));
  EXPECT_EQ(count, 1);
}

TEST_F(HostTest, PingSucceedsToLiveHost) {
  bool ok = false;
  sim::Duration rtt;
  net_.host(0).ping(net_.ip(0), net_.ip(1), sim::Duration::seconds(1),
                    [&](bool success, sim::Duration r) {
                      ok = success;
                      rtt = r;
                    });
  net_.run_for(sim::Duration::millis(100));
  EXPECT_TRUE(ok);
  EXPECT_GT(rtt.ns(), 0);
  EXPECT_LT(rtt.ms(), 10);
}

TEST_F(HostTest, PingTimesOutToDeadHost) {
  net_.host(1).crash("test");
  bool called = false;
  bool ok = true;
  net_.host(0).ping(net_.ip(0), net_.ip(1), sim::Duration::millis(200),
                    [&](bool success, sim::Duration) {
                      called = true;
                      ok = success;
                    });
  net_.run_for(sim::Duration::millis(500));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST_F(HostTest, PingFailsWhenOwnNicDown) {
  net_.host(0).nic().fail();
  bool ok = true;
  net_.host(0).ping(net_.ip(0), net_.ip(1), sim::Duration::millis(200),
                    [&](bool success, sim::Duration) { ok = success; });
  net_.run_for(sim::Duration::millis(500));
  EXPECT_FALSE(ok);
}

TEST_F(HostTest, CrashStopsAllTraffic) {
  net_.host(1).crash("fault injection");
  EXPECT_FALSE(net_.host(1).alive());
  EXPECT_FALSE(net_.host(1).udp_send(net_.ip(1), 1, net_.ip(0), 2, to_bytes("x")));
  int received = 0;
  net_.host(1).udp_bind(7000, [&](Ipv4Addr, std::uint16_t, BytesView) { ++received; });
  net_.host(0).udp_send(net_.ip(0), 1, net_.ip(1), 7000, to_bytes("y"));
  net_.run_for(sim::Duration::millis(10));
  EXPECT_EQ(received, 0);
}

TEST_F(HostTest, CrashHooksFireOnce) {
  int fired = 0;
  net_.host(0).add_crash_hook([&] { ++fired; });
  net_.host(0).crash("first");
  net_.host(0).crash("second");
  EXPECT_EQ(fired, 1);
}

TEST_F(HostTest, CrashRecordsTraceEvent) {
  net_.host(0).crash("bang");
  EXPECT_EQ(net_.world.trace().count("alice", "host_crash"), 1u);
}

TEST_F(HostTest, IpAliasesAreLocal) {
  const Ipv4Addr service(10, 0, 0, 100);
  net_.host(1).add_ip(service);
  EXPECT_TRUE(net_.host(1).has_ip(service));
  net_.host(0).arp_set(service, net_.host_macs[1]);
  Bytes got;
  net_.host(1).udp_bind(7000,
                        [&](Ipv4Addr, std::uint16_t, BytesView p) { got = to_bytes(p); });
  net_.host(0).udp_send(net_.ip(0), 1, service, 7000, to_bytes("alias"));
  net_.run_for(sim::Duration::millis(10));
  EXPECT_EQ(got, to_bytes("alias"));
}

TEST_F(HostTest, PacketsToForeignIpNotDelivered) {
  // Deliver a frame to bob's NIC with an IP he does not own.
  const Ipv4Addr stranger(10, 0, 0, 200);
  net_.host(0).arp_set(stranger, net_.host_macs[1]);
  net_.host(0).udp_send(net_.ip(0), 1, stranger, 7000, to_bytes("not-yours"));
  net_.run_for(sim::Duration::millis(10));
  EXPECT_EQ(net_.host(1).stats().not_local, 1u);
  EXPECT_EQ(net_.host(1).stats().packets_in, 0u);
}

TEST_F(HostTest, SendWithoutArpFails) {
  EXPECT_FALSE(net_.host(0).udp_send(net_.ip(0), 1, Ipv4Addr(10, 9, 9, 9), 7,
                                     to_bytes("?")));
  EXPECT_EQ(net_.host(0).stats().arp_misses, 1u);
}

TEST_F(HostTest, PowerControllerKillsTarget) {
  PowerController power(net_.world);
  power.register_host(net_.host(0));
  power.register_host(net_.host(1));
  EXPECT_TRUE(power.power_off("bob"));
  EXPECT_FALSE(net_.host(1).alive());
  EXPECT_TRUE(net_.host(0).alive());
  EXPECT_EQ(power.power_off_count(), 1u);
  EXPECT_FALSE(power.power_off("nobody"));
  // Powering off an already-dead host is a harmless success.
  EXPECT_TRUE(power.power_off("bob"));
}

TEST_F(HostTest, DisabledPowerControllerRefuses) {
  PowerController power(net_.world);
  power.register_host(net_.host(1));
  power.set_functional(false);
  EXPECT_FALSE(power.power_off("bob"));
  EXPECT_TRUE(net_.host(1).alive());
}

TEST_F(HostTest, CpuPacketTimeDelaysProcessing) {
  // With 1ms per packet, 5 packets take 5ms to drain.
  net_.host(1).set_cpu_packet_time(sim::Duration::millis(1));
  int count = 0;
  sim::SimTime last;
  net_.host(1).udp_bind(7000, [&](Ipv4Addr, std::uint16_t, BytesView) {
    ++count;
    last = net_.world.now();
  });
  for (int i = 0; i < 5; ++i) {
    net_.host(0).udp_send(net_.ip(0), 1, net_.ip(1), 7000, to_bytes("x"));
  }
  net_.run_for(sim::Duration::millis(100));
  EXPECT_EQ(count, 5);
  EXPECT_GE((last - sim::SimTime::zero()).ms(), 5);
}

}  // namespace
}  // namespace sttcp::net
